//! # jt-dsu — a reproduction of *A Randomized Concurrent Algorithm for
//! Disjoint Set Union* (Jayanti & Tarjan, PODC 2016)
//!
//! This meta crate re-exports the whole workspace so examples and
//! downstream users can depend on one name:
//!
//! * [`concurrent_dsu`] — the paper's contribution: wait-free union-find
//!   with randomized linking ([`Dsu`], [`GrowableDsu`]);
//! * [`sequential_dsu`] — the Section 2 sequential baselines and the
//!   inverse-Ackermann utilities;
//! * [`dsu_baselines`] — Anderson–Woll-style rank linking and a global
//!   lock baseline;
//! * [`apram`] / [`apram_dsu`] — the APRAM model as an executable
//!   simulator, and the algorithms as step machines;
//! * [`linearize`] — Wing–Gong linearizability checking;
//! * [`dsu_graph`] — graph generators and the applications (connected
//!   components, MST, percolation, incremental connectivity);
//! * [`dsu_workloads`] — seeded workload generation, including the
//!   Lemma 5.3 lower-bound construction;
//! * [`dsu_harness`] — the experiment driver behind the `e01`–`e12`
//!   binaries.
//!
//! ## Quick start
//!
//! ```
//! use jt_dsu::Dsu;
//!
//! let dsu: Dsu = Dsu::new(8);
//! assert!(dsu.unite(0, 1));
//! assert!(dsu.same_set(1, 0));
//!
//! // Edges that arrive in bursts go through the batch path (gather
//! // waves + same-set filtering + seeded link CASes; see
//! // `concurrent_dsu::bulk`):
//! assert_eq!(dsu.unite_batch(&[(1, 2), (2, 0), (3, 4)]), 2);
//! assert_eq!(dsu.set_count(), 5);
//! ```
//!
//! See `README.md` for the tour, `DESIGN.md` for the system inventory and
//! experiment index, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use apram;
pub use apram_dsu;
pub use concurrent_dsu;
pub use dsu_baselines;
pub use dsu_graph;
pub use dsu_harness;
pub use dsu_workloads;
pub use linearize;
pub use sequential_dsu;

pub use concurrent_dsu::{
    ConcurrentUnionFind, Dsu, DsuHalving, DsuNoCompaction, DsuOneTry, DsuTwoTry, GrowableDsu,
    Halving, NoCompaction, OneTrySplit, OpStats, TwoTrySplit,
};
pub use sequential_dsu::{Compaction, Linking, Partition, SeqDsu};

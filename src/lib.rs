//! # jt-dsu — a reproduction of *A Randomized Concurrent Algorithm for
//! Disjoint Set Union* (Jayanti & Tarjan, PODC 2016)
//!
//! This meta crate re-exports the whole workspace so examples and
//! downstream users can depend on one name:
//!
//! * [`concurrent_dsu`] — the paper's contribution: wait-free union-find
//!   with randomized linking ([`Dsu`], [`GrowableDsu`]);
//! * [`sequential_dsu`] — the Section 2 sequential baselines and the
//!   inverse-Ackermann utilities;
//! * [`dsu_baselines`] — Anderson–Woll-style rank linking and a global
//!   lock baseline;
//! * [`apram`] / [`apram_dsu`] — the APRAM model as an executable
//!   simulator, and the algorithms as step machines;
//! * [`linearize`] — Wing–Gong linearizability checking;
//! * [`dsu_graph`] — graph generators and the applications (connected
//!   components, MST, percolation, incremental connectivity);
//! * [`dsu_workloads`] — seeded workload generation, including the
//!   Lemma 5.3 lower-bound construction;
//! * [`dsu_harness`] — the experiment driver behind the `e01`–`e14`
//!   binaries.
//!
//! ## Quick start
//!
//! ```
//! use jt_dsu::Dsu;
//!
//! let dsu: Dsu = Dsu::new(8);
//! assert!(dsu.unite(0, 1));
//! assert!(dsu.same_set(1, 0));
//!
//! // Edges that arrive in bursts go through the batch path (gather
//! // waves + same-set filtering + seeded link CASes; see
//! // `concurrent_dsu::bulk`):
//! assert_eq!(dsu.unite_batch(&[(1, 2), (2, 0), (3, 4)]), 2);
//! assert_eq!(dsu.set_count(), 5);
//!
//! // Duplicate-heavy bursts over huge universes can opt into the
//! // ingestion planner (intra-batch dedup + block-local radix buckets;
//! // see `concurrent_dsu::ingest` for when it pays):
//! assert_eq!(dsu.unite_batch_planned(&[(4, 5), (5, 4), (4, 5)]), 1);
//! ```
//!
//! ## Hot-root cache sessions and the `prefetch` feature
//!
//! Per-thread loops that keep touching the same sets can route their
//! operations through a hot-root cache session
//! ([`concurrent_dsu::Dsu::cached`]): finds start at the element's last
//! observed root, validated by a single load, with identical verdicts to
//! the plain operations (see `concurrent_dsu::cache`):
//!
//! ```
//! use jt_dsu::Dsu;
//!
//! let dsu: Dsu = Dsu::new(10);
//! let mut session = dsu.cached();
//! assert!(session.unite(0, 1));
//! assert!(session.same_set(1, 0));
//! assert_eq!(session.unite_batch(&[(1, 2), (0, 2)]), 1);
//! ```
//!
//! The batch path's gather-wave depth is tunable
//! (`concurrent_dsu::BatchTuning`, depths two/three), and building
//! `concurrent-dsu` with `--features prefetch` compiles software-prefetch
//! intrinsics (x86-64 `prefetcht0` / AArch64 `prfm pldl1keep`) that warm
//! the *next* gather wave's endpoint words one wave ahead (a no-op
//! elsewhere). Both knobs — and the cache — are measured by the
//! `cache_ab` example (`BENCH_PR4.json`); on the CI box the cache pays
//! only in predictable-hit loops, so it is opt-in, never the default
//! (`concurrent_dsu::store` docs, "when does the root cache pay").
//!
//! ## Keyed entity resolution
//!
//! Elements that are strings, sparse u64s, or any hashable keys go
//! through [`KeyedDsu`] — a lock-free sharded id table in front of the
//! growable core, replacing the `RwLock<HashMap>` facade real systems
//! deploy (measured against exactly that baseline in `keyed_ab`):
//!
//! ```
//! use jt_dsu::KeyedDsu;
//!
//! let dsu: KeyedDsu<String> = KeyedDsu::new();
//! dsu.merge_keys(&"alice".to_string(), &"al".to_string());
//! assert!(dsu.same_set(&"al".to_string(), &"alice".to_string()));
//! assert_eq!(dsu.key_count(), 2);
//! ```
//!
//! ## Choosing a storage layout
//!
//! [`Dsu`] is also generic over its parent store: packed (default), flat
//! (universes beyond `2^32`), or sharded (per-shard slabs for many-core /
//! NUMA placement) — see the layout-selection guide in
//! [`concurrent_dsu::store`]:
//!
//! ```
//! use jt_dsu::concurrent_dsu::{Dsu, ShardSpec, ShardedStore, TwoTrySplit};
//!
//! let store = ShardedStore::with_spec(1000, 42, ShardSpec::with_shards(8));
//! let dsu: Dsu<TwoTrySplit, ShardedStore> = Dsu::from_store(store);
//! assert!(dsu.unite(1, 999));
//! ```
//!
//! ## CI
//!
//! `.github/workflows/ci.yml` runs, on every push/PR: `lint` (fmt, clippy,
//! rustdoc, all `-D warnings`, plus the workspace doc-tests); a `test`
//! **matrix** over `{default, strict-sc}` orderings × `{packed, flat,
//! sharded}` store layouts (the `default-store-*` cargo features retarget
//! `Dsu`'s default store so the full suite exercises each layout) plus a
//! `prefetch` feature cell, a `planned` cell that runs the full workspace
//! with `DSU_BATCH_PLAN=1` (every count-only batch entry point routed
//! through the ingestion planner — planning must be invisible to link
//! counts and partitions), a `keyed` cell that re-runs the keyed-layer
//! suite under both orderings with `DSU_KEY_SHARDS=2`, and `variants` /
//! `flatten` / `epochs` cells that re-run the full core suite with
//! `default-link-index`, `DSU_FLATTEN=auto`, and `DSU_EPOCH_EVERY=1`
//! respectively; `bench-smoke`,
//! which runs the A/B examples in quick mode, archives their JSON
//! (machine-fingerprinted), and fail-soft-compares both medians *and* A/B
//! ratios against the previous run's cached baseline
//! (>15% regression warns in the job summary, never turns red; baselines
//! from a different machine are skipped, not compared); and
//! `harness-smoke` (real experiment binaries end to end, e09 + e14). A
//! weekly `schedule` (plus `workflow_dispatch`) triggers `bench-full`, the
//! non-quick A/B runs. Runs on the same ref cancel their predecessors.
//!
//! See `README.md` for the tour, `ARCHITECTURE.md` for the crate map and
//! layer diagram, `docs/benchmarks.md` for every measured claim and its
//! artifact, `DESIGN.md` for the system inventory and experiment index,
//! and `EXPERIMENTS.md` for paper-vs-measured results.

pub use apram;
pub use apram_dsu;
pub use concurrent_dsu;
pub use dsu_baselines;
pub use dsu_graph;
pub use dsu_harness;
pub use dsu_workloads;
pub use linearize;
pub use sequential_dsu;

pub use concurrent_dsu::{
    BatchOutcome, ConcurrentUnionFind, Dsu, DsuHalving, DsuNoCompaction, DsuOneTry, DsuTwoTry,
    Epoch, GrowableDsu, Halving, KeyedDsu, NoCompaction, OneTrySplit, OpStats, ShardSpec,
    ShardedStore, TwoTrySplit, VersionedDsu,
};
pub use sequential_dsu::{Compaction, Linking, Partition, SeqDsu};

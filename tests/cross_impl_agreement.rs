//! Cross-crate integration: every union-find implementation in the
//! workspace — four native find policies (standard and early ops), the
//! growable structure, the Anderson–Woll baseline, the lock baseline, all
//! twelve sequential variants, and the APRAM-simulated algorithms — must
//! realize the *same partition* for the same operation stream.

use jt_dsu::concurrent_dsu::{
    Compress, Dsu, FindPolicy, GrowableDsu, Halving, NoCompaction, OneTrySplit, TwoTrySplit,
};
use jt_dsu::dsu_baselines::{AwDsu, LockedDsu};
use jt_dsu::dsu_workloads::{Op, WorkloadSpec};
use jt_dsu::sequential_dsu::{NaiveDsu, Partition, SeqDsu, ALL_VARIANTS};

fn reference_partition(n: usize, ops: &[Op]) -> Partition {
    let mut oracle = NaiveDsu::new(n);
    for &op in ops {
        if let Op::Unite(x, y) = op {
            oracle.unite(x, y);
        }
    }
    oracle.partition()
}

fn native_partition<F: FindPolicy>(n: usize, ops: &[Op], early: bool, threads: usize) -> Partition {
    let dsu: Dsu<F> = Dsu::new(n);
    std::thread::scope(|s| {
        for t in 0..threads {
            let dsu = &dsu;
            s.spawn(move || {
                for (i, &op) in ops.iter().enumerate() {
                    if i % threads != t {
                        continue;
                    }
                    match (op, early) {
                        (Op::Unite(x, y), false) => {
                            dsu.unite(x, y);
                        }
                        (Op::SameSet(x, y), false) => {
                            dsu.same_set(x, y);
                        }
                        (Op::Unite(x, y), true) => {
                            dsu.unite_early(x, y);
                        }
                        (Op::SameSet(x, y), true) => {
                            dsu.same_set_early(x, y);
                        }
                    }
                }
            });
        }
    });
    Partition::from_labels(&dsu.labels_snapshot())
}

#[test]
fn every_implementation_reaches_the_same_partition() {
    let n = 400;
    let w = WorkloadSpec::new(n, 1200).unite_fraction(0.6).generate(0xA11);
    let expected = reference_partition(n, &w.ops);

    // Native, all policies × {standard, early} × {1, 8} threads.
    for threads in [1usize, 8] {
        for early in [false, true] {
            assert_eq!(native_partition::<NoCompaction>(n, &w.ops, early, threads), expected);
            assert_eq!(native_partition::<OneTrySplit>(n, &w.ops, early, threads), expected);
            assert_eq!(native_partition::<TwoTrySplit>(n, &w.ops, early, threads), expected);
            assert_eq!(native_partition::<Halving>(n, &w.ops, early, threads), expected);
            assert_eq!(native_partition::<Compress>(n, &w.ops, early, threads), expected);
        }
    }

    // Growable.
    let growable: GrowableDsu = GrowableDsu::with_initial(n);
    for &op in &w.ops {
        match op {
            Op::Unite(x, y) => {
                growable.unite(x, y);
            }
            Op::SameSet(x, y) => {
                growable.same_set(x, y);
            }
        }
    }
    assert_eq!(Partition::from_labels(&growable.labels_snapshot()), expected);

    // Baselines.
    let aw = AwDsu::new(n);
    let locked = LockedDsu::new(
        n,
        jt_dsu::sequential_dsu::Linking::ByRank,
        jt_dsu::sequential_dsu::Compaction::Halving,
    );
    for &op in &w.ops {
        match op {
            Op::Unite(x, y) => {
                aw.unite(x, y);
                locked.unite(x, y);
            }
            Op::SameSet(x, y) => {
                aw.same_set(x, y);
                locked.same_set(x, y);
            }
        }
    }
    assert_eq!(Partition::from_labels(&aw.labels_snapshot()), expected);
    assert_eq!(Partition::from_labels(&locked.labels_snapshot()), expected);

    // All twelve sequential variants.
    for (linking, compaction) in ALL_VARIANTS {
        let mut dsu = SeqDsu::new(n, linking, compaction);
        for &op in &w.ops {
            match op {
                Op::Unite(x, y) => {
                    dsu.unite(x, y);
                }
                Op::SameSet(x, y) => {
                    dsu.same_set(x, y);
                }
            }
        }
        assert_eq!(dsu.partition(), expected, "{linking}/{compaction}");
    }
}

#[test]
fn simulator_agrees_with_native_single_threaded() {
    use jt_dsu::apram::RoundRobin;
    use jt_dsu::apram_dsu::{random_ids, run_concurrent, DsuProcess, Policy};
    use jt_dsu::linearize::DsuOp;

    let n = 64;
    let w = WorkloadSpec::new(n, 300).unite_fraction(0.5).generate(0xA12);
    let sim_ops: Vec<DsuOp> = w
        .ops
        .iter()
        .map(|&op| match op {
            Op::Unite(x, y) => DsuOp::Unite(x, y),
            Op::SameSet(x, y) => DsuOp::SameSet(x, y),
        })
        .collect();

    for (policy, early) in [
        (Policy::NoCompaction, false),
        (Policy::OneTry, false),
        (Policy::TwoTry, false),
        (Policy::Halving, false),
        (Policy::TwoTry, true),
    ] {
        let ids = random_ids(n, 5);
        let procs = vec![DsuProcess::new(sim_ops.clone(), policy, early, ids)];
        let outcome = run_concurrent(n, procs, &mut RoundRobin::new(), 10_000_000);

        // Results must equal the sequential oracle op-for-op.
        let mut oracle = NaiveDsu::new(n);
        for (rec, &op) in outcome.records[0].iter().zip(&w.ops) {
            let expected = match op {
                Op::Unite(x, y) => oracle.unite(x, y),
                Op::SameSet(x, y) => oracle.same_set(x, y),
            };
            assert_eq!(rec.result, expected, "{policy:?} early={early} diverged on {op:?}");
        }
        assert_eq!(
            Partition::from_labels(&outcome.labels()),
            oracle.partition(),
            "{policy:?} early={early} final state"
        );
    }
}

#[test]
fn harness_driver_agrees_with_direct_execution() {
    use jt_dsu::dsu_harness::{run_shards, run_shards_instrumented};

    let n = 256;
    let w = WorkloadSpec::new(n, 2000).unite_fraction(0.5).generate(0xA13);
    let expected = reference_partition(n, &w.ops);

    let plain: Dsu = Dsu::new(n);
    let metrics = run_shards(&plain, &w, 4);
    assert_eq!(metrics.ops, 2000);
    assert_eq!(Partition::from_labels(&plain.labels_snapshot()), expected);

    let instrumented: Dsu = Dsu::new(n);
    let metrics = run_shards_instrumented(&instrumented, &w, 4, false);
    let stats = metrics.stats.unwrap();
    assert_eq!(stats.ops, 2000);
    assert_eq!(Partition::from_labels(&instrumented.labels_snapshot()), expected);
    // Links observed == n - final set count.
    assert_eq!(stats.links_ok as usize, n - instrumented.set_count());
}

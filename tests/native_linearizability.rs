//! Lemma 3.2 on the real threads: timed histories recorded from native
//! threaded executions — with faults injected — must be linearizable, and
//! a deliberately broken store must be *caught*.
//!
//! Until this suite, linearizability was only checked on the APRAM
//! simulator (e08), where the "threads" are cooperatively scheduled step
//! machines. Here the histories come from actual `std::thread` executions
//! of the production operations, stamped by `linearize::HistoryRecorder`'s
//! shared `SeqCst` clock (so happens-before in the history implies
//! happens-before in real time), with `FaultyStore` injecting spurious CAS
//! failures, delayed loads, and stall windows to force the retry paths the
//! paper's proofs must survive.
//!
//! The `BrokenStore` canary closes the loop: an unconditional CAS keeps
//! trees acyclic (operations still terminate) but loses concurrent links,
//! so its histories must be *refuted* — by the checker or by the
//! more-than-`n - 1`-true-unites invariant. If the canary ever stops
//! tripping, the harness itself has rotted.

use jt_dsu::concurrent_dsu::order::splitmix64;
use jt_dsu::concurrent_dsu::{
    BrokenStore, Dsu, DsuStore, FaultPlan, FaultyStore, FlatStore, PackedStore, ShardedStore,
    TestWatchdog, TwoTrySplit,
};
use jt_dsu::linearize::{check_linearizable, CompletedOp, DsuOp, DsuSpec, HistoryRecorder};
use std::time::Duration;

/// Deterministic op stream for thread `t`, seeded by `seed`: mostly
/// unites (to force link races) with same-set probes mixed in.
fn thread_ops(n: usize, t: usize, ops: usize, seed: u64) -> Vec<DsuOp> {
    (0..ops)
        .map(|i| {
            let h = splitmix64(seed ^ ((t as u64) << 32) ^ i as u64);
            let x = (h >> 8) as usize % n;
            let y = (h >> 24) as usize % n;
            if h.is_multiple_of(4) {
                DsuOp::SameSet(x, y)
            } else {
                DsuOp::Unite(x, y)
            }
        })
        .collect()
}

/// Records one timed history of `threads × ops_per_thread` operations on
/// `dsu`, concatenating the per-thread logs at join time.
fn record_history<S: DsuStore>(
    dsu: &Dsu<TwoTrySplit, S>,
    threads: usize,
    ops_per_thread: usize,
    seed: u64,
) -> Vec<CompletedOp<DsuOp>> {
    let n = dsu.len();
    let recorder = HistoryRecorder::new();
    // Without a start barrier the bursts are so short that threads run
    // back to back and never actually race.
    let barrier = std::sync::Barrier::new(threads);
    let mut history = Vec::with_capacity(threads * ops_per_thread);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let recorder = &recorder;
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    thread_ops(n, t, ops_per_thread, seed)
                        .into_iter()
                        .map(|op| {
                            recorder.record(op, || match op {
                                DsuOp::Unite(x, y) => dsu.unite(x, y),
                                DsuOp::SameSet(x, y) => dsu.same_set(x, y),
                            })
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            history.extend(h.join().unwrap());
        }
    });
    history
}

/// In any linearization of a history over `0..n`, at most `n - 1` unites
/// can return `true`; counting trues is the cheap necessary condition
/// that catches lost updates even in histories too coarse to search.
fn true_unites(history: &[CompletedOp<DsuOp>]) -> usize {
    history.iter().filter(|c| matches!(c.op, DsuOp::Unite(_, _)) && c.result).count()
}

fn check_faulted_layout<S: DsuStore>(histories: usize, rate: f64) {
    let threads = 4;
    let ops_per_thread = 5; // 4 × 5 = 20 ops per history, well under the checker's 64
    let n = 6;
    for h in 0..histories {
        let seed = h as u64 * 7919 + 13;
        let plan = FaultPlan::rate(seed ^ 0xC4A05, rate);
        let dsu: Dsu<TwoTrySplit, FaultyStore<S>> =
            Dsu::from_store(FaultyStore::with_plan(S::with_seed(n, seed), plan));
        let history = record_history(&dsu, threads, ops_per_thread, seed);
        if let Err(e) = check_linearizable(&DsuSpec::new(n), &history) {
            panic!(
                "REFUTATION on {} (seed {seed}, rate {rate}): {e}\nreport: {:?}\n{history:#?}",
                S::NAME,
                dsu.store().fault_report(),
            );
        }
        assert!(true_unites(&history) < n);
    }
}

/// ≥ 3 threads, fault rate > 0, all three layouts: every recorded history
/// linearizes. (The strict-sc cell of CI's matrix re-runs this file with
/// all orderings pinned to SeqCst.)
#[test]
fn faulted_native_histories_linearizable_all_layouts() {
    let _wd = TestWatchdog::arm(
        "faulted_native_histories_linearizable_all_layouts",
        Duration::from_secs(300),
    );
    check_faulted_layout::<PackedStore>(40, 0.4);
    check_faulted_layout::<FlatStore>(40, 0.4);
    check_faulted_layout::<ShardedStore>(40, 0.4);
    // A brutal-rate pass on the default layout: retries dominate, the
    // verdicts still linearize.
    check_faulted_layout::<PackedStore>(10, FaultPlan::MAX_RATE);
}

/// The regression canary: the unconditional-CAS store must be caught
/// within a modest seed budget. Lost updates split merged sets, which
/// surfaces as a non-linearizable history or as more than `n - 1` `true`
/// unites (impossible in any sequential order).
#[test]
fn broken_store_is_refuted() {
    let _wd = TestWatchdog::arm("broken_store_is_refuted", Duration::from_secs(300));
    let threads = 4;
    let ops_per_thread = 8; // heavy contention on a tiny universe
    let n = 4;
    let budget = 400;
    let mut caught = 0;
    // Stack the decorators: delayed loads *around* the broken CAS widen
    // the load→CAS window from nanoseconds to thousands of spin hints, so
    // the lost-update race actually fires in a small seed budget. (A
    // correct store survives exactly this schedule — the faulted suites
    // above prove it; only the unconditional CAS turns it into a bug.)
    let delay_only = FaultPlan {
        seed: 0, // overwritten per history
        cas_fail_rate: 0.0,
        stale_load_rate: 0.8,
        max_spin: 5_000,
        stall_period: 0,
        stall_spins: 0,
    };
    for h in 0..budget {
        let seed = h as u64 * 31 + 5;
        let dsu: Dsu<TwoTrySplit, FaultyStore<BrokenStore<PackedStore>>> =
            Dsu::from_store(FaultyStore::with_plan(
                BrokenStore::new(PackedStore::with_seed(n, seed)),
                FaultPlan { seed, ..delay_only },
            ));
        let history = record_history(&dsu, threads, ops_per_thread, seed);
        let refuted = check_linearizable(&DsuSpec::new(n), &history).is_err()
            || true_unites(&history) > n - 1;
        if refuted {
            caught += 1;
            if caught >= 3 {
                return; // caught repeatedly — the canary trips as required
            }
        }
    }
    panic!(
        "BrokenStore refuted only {caught}/{budget} histories — \
         the chaos harness can no longer catch a lost-update bug"
    );
}

/// Heavier-than-the-checker invariant run: on a universe far beyond 64
/// ops, a faulted multi-threaded ingestion must still satisfy
/// `true unites == n - set_count` exactly — the counting shadow of
/// linearizability that scales to any history size.
#[test]
fn faulted_stress_true_unites_match_set_count() {
    let _wd =
        TestWatchdog::arm("faulted_stress_true_unites_match_set_count", Duration::from_secs(300));
    let n = 1 << 10;
    let threads = 4;
    for seed in [1u64, 2, 3] {
        let plan = FaultPlan::rate(seed, 0.3);
        let dsu: Dsu<TwoTrySplit, FaultyStore<PackedStore>> =
            Dsu::from_store(FaultyStore::with_plan(PackedStore::with_seed(n, seed), plan));
        let trues: usize = std::thread::scope(|s| {
            (0..threads)
                .map(|t| {
                    let dsu = &dsu;
                    s.spawn(move || {
                        let mut trues = 0;
                        for i in 0..4 * n {
                            let h = splitmix64(seed ^ ((t as u64) << 40) ^ i as u64);
                            let x = (h >> 8) as usize % n;
                            let y = (h >> 32) as usize % n;
                            trues += dsu.unite(x, y) as usize;
                        }
                        trues
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(
            trues,
            n - dsu.set_count(),
            "true unites must equal sets merged (seed {seed}; report: {:?})",
            dsu.store().fault_report()
        );
        assert!(dsu.store().fault_report().total() > 0, "faults must actually fire");
    }
}

//! Integration tests pinning the paper's *quantitative* claims at test
//! scale (the experiment binaries regenerate them at full scale):
//! logarithmic heights, the lockstep simulation, the lower-bound workload,
//! bounded per-op work, and the work-bound predictions' shape.

use jt_dsu::concurrent_dsu::{Dsu, OpStats, TwoTrySplit};
use jt_dsu::dsu_workloads::{binomial_build_ops, lower_bound_workload, WorkloadSpec};
use jt_dsu::sequential_dsu::{alpha, one_try_work_bound, two_try_work_bound};

#[test]
fn corollary_4_2_1_logarithmic_height_at_test_scale() {
    // 3 seeds × n = 2^13, m = 2n random unites on 8 threads: height must
    // stay within 6·lg n (the w.h.p. bound with a generous constant).
    let n = 1 << 13;
    for seed in [11u64, 22, 33] {
        let dsu: Dsu = Dsu::with_seed(n, seed);
        let w = WorkloadSpec::new(n, 2 * n).unite_fraction(1.0).generate(seed);
        jt_dsu::dsu_harness::run_shards(&dsu, &w, 8);
        let h = dsu.union_forest_height();
        assert!(h <= 6 * 13, "height {h} exceeds 6 lg n for seed {seed}");
    }
}

#[test]
fn theorem_4_3_per_op_steps_bounded() {
    // Under contention, no single operation may take more than c·lg n
    // find-loop iterations (tripwire constant c = 20 avoids flakes while
    // still catching any loss of the O(log n) w.h.p. behavior).
    let n = 1 << 12;
    let dsu: Dsu = Dsu::new(n);
    let w = WorkloadSpec::new(n, 4 * n).unite_fraction(0.5).generate(99);
    let metrics = jt_dsu::dsu_harness::run_shards_instrumented(&dsu, &w, 8, false);
    assert!(
        metrics.max_op_iters <= 20 * 12,
        "an operation took {} loop iterations",
        metrics.max_op_iters
    );
}

#[test]
fn section_3_lockstep_simulation_is_exact() {
    for k in [16usize, 100, 512] {
        let cmp = jt_dsu::apram_dsu::lockstep_halving_vs_splitting(k);
        assert!(cmp.memories_match(), "k = {k}");
        assert_eq!(cmp.halving_updates, cmp.splitting_updates, "k = {k}");
    }
}

#[test]
fn lemma_5_3_lower_bound_workload_forces_log_work() {
    // Accesses per storm query must grow with lg δ: compare δ = 4 against
    // δ = 256 on the simulator.
    use jt_dsu::apram::{Machine, Memory, Program, RoundRobin};
    use jt_dsu::apram_dsu::{random_ids, DsuProcess, Policy};
    use jt_dsu::linearize::DsuOp;

    let per_query = |delta: usize| -> f64 {
        let n = 1024;
        let p = 4;
        let wl = lower_bound_workload(n, delta, 5);
        let ids = random_ids(n, 6);
        let to_sim = |ops: &[jt_dsu::dsu_workloads::Op]| -> Vec<DsuOp> {
            ops.iter()
                .map(|&op| match op {
                    jt_dsu::dsu_workloads::Op::Unite(x, y) => DsuOp::Unite(x, y),
                    jt_dsu::dsu_workloads::Op::SameSet(x, y) => DsuOp::SameSet(x, y),
                })
                .collect()
        };
        let mut machine = Machine::new(Memory::identity(n));
        let mut builder =
            DsuProcess::new(to_sim(&wl.build.ops), Policy::TwoTry, false, ids.clone());
        {
            let mut refs: Vec<&mut dyn Program> = vec![&mut builder];
            assert!(machine.run(&mut refs, &mut RoundRobin::new(), u64::MAX / 2).completed);
        }
        let storm = to_sim(&wl.queries.ops);
        let mut procs: Vec<DsuProcess> = (0..p)
            .map(|_| DsuProcess::new(storm.clone(), Policy::TwoTry, false, ids.clone()))
            .collect();
        let report = {
            let mut refs: Vec<&mut dyn Program> =
                procs.iter_mut().map(|q| q as &mut dyn Program).collect();
            machine.run(&mut refs, &mut RoundRobin::new(), u64::MAX / 2)
        };
        assert!(report.completed);
        report.memory_accesses as f64 / (p * wl.queries.len()) as f64
    };

    let small = per_query(4);
    let large = per_query(256);
    assert!(
        large >= small + 2.0,
        "lower-bound workload did not scale with lg δ: {small:.2} vs {large:.2}"
    );
}

#[test]
fn lemma_5_3_binomial_trees_have_linear_average_depth_in_log_k() {
    use jt_dsu::sequential_dsu::{Compaction, Linking, SeqDsu};
    let k = 512;
    let (ops, _) = binomial_build_ops(0, k);
    let mut dsu = SeqDsu::with_seed(k, Linking::Randomized, Compaction::Splitting, 3);
    for op in &ops {
        let (x, y) = op.operands();
        dsu.unite(x, y);
    }
    let avg: f64 = (0..k).map(|x| dsu.depth_of(x)).sum::<usize>() as f64 / k as f64;
    assert!(avg >= (k as f64).log2() / 8.0, "avg depth {avg:.2} too shallow");
}

#[test]
fn work_bound_formulas_have_the_paper_shape() {
    let n = 1u64 << 20;
    let m = n;
    // Two-try: grows ~ log p once np > m.
    let w1 = two_try_work_bound(n, m, 1);
    let w64 = two_try_work_bound(n, m, 64);
    assert!(w64 > w1 + 4.0, "log(np/m) term missing: {w1} vs {w64}");
    // One-try carries p² inside: at least as large as two-try everywhere.
    for p in [1u64, 2, 8, 32, 128] {
        assert!(one_try_work_bound(n, m, p) + 1e-9 >= two_try_work_bound(n, m, p));
    }
    // α is tiny for any practical input (the "constant for all practical
    // purposes" remark).
    assert!(alpha(u64::MAX, 1.0) <= 5);
}

#[test]
fn instrumented_work_matches_structure_between_runs() {
    // The same workload on the same seed gives identical single-threaded
    // work counters — determinism end to end (workload gen + structure).
    let n = 1 << 10;
    let w = WorkloadSpec::new(n, 4096).generate(0xD0);
    let run = || -> OpStats {
        let dsu: Dsu<TwoTrySplit> = Dsu::with_seed(n, 1);
        let m = jt_dsu::dsu_harness::run_shards_instrumented(&dsu, &w, 1, false);
        m.stats.unwrap()
    };
    assert_eq!(run(), run());
}

//! The lock-based baseline: a sequential union-find behind one mutex.
//!
//! Trivially linearizable (the critical section *is* the linearization
//! point) and trivially non-scalable: all threads serialize. The speedup
//! experiment (E4) uses it as the floor that any wait-free design must
//! clear, mirroring the paper's remark that Anderson & Woll's algorithm has
//! "insignificant speed-up" over sequential execution.

use concurrent_dsu::ConcurrentUnionFind;
use parking_lot::Mutex;
use sequential_dsu::{Compaction, Linking, SeqDsu};

/// A [`SeqDsu`] wrapped in a global [`Mutex`], exposing the concurrent
/// interface.
///
/// # Example
///
/// ```
/// use dsu_baselines::LockedDsu;
/// use sequential_dsu::{Linking, Compaction};
///
/// let dsu = LockedDsu::new(4, Linking::ByRank, Compaction::Halving);
/// assert!(dsu.unite(0, 1));
/// assert!(dsu.same_set(1, 0));
/// ```
pub struct LockedDsu {
    inner: Mutex<SeqDsu>,
    n: usize,
}

impl std::fmt::Debug for LockedDsu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockedDsu")
            .field("len", &self.n)
            .field("set_count", &self.set_count())
            .finish()
    }
}

impl LockedDsu {
    /// Creates `n` singletons guarded by one lock, with the given
    /// sequential rules. Rank + halving is the classic high-performance
    /// sequential choice.
    pub fn new(n: usize, linking: Linking, compaction: Compaction) -> Self {
        LockedDsu { inner: Mutex::new(SeqDsu::new(n, linking, compaction)), n }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of disjoint sets right now.
    pub fn set_count(&self) -> usize {
        self.inner.lock().set_count()
    }

    /// Root of `x`'s tree (under the lock).
    ///
    /// # Panics
    ///
    /// Panics if `x >= self.len()`.
    pub fn find(&self, x: usize) -> usize {
        self.inner.lock().find(x)
    }

    /// `true` iff `x` and `y` share a set (under the lock).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn same_set(&self, x: usize, y: usize) -> bool {
        self.inner.lock().same_set(x, y)
    }

    /// Unites the sets of `x` and `y`; `true` iff they were distinct.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn unite(&self, x: usize, y: usize) -> bool {
        self.inner.lock().unite(x, y)
    }

    /// Canonical labels; takes the lock, so safe at any time.
    pub fn labels_snapshot(&self) -> Vec<usize> {
        let mut guard = self.inner.lock();
        let n = guard.len();
        let mut labels: Vec<usize> = (0..n).map(|i| guard.find(i)).collect();
        for i in 0..n {
            labels[i] = labels[labels[i]];
        }
        labels
    }
}

impl ConcurrentUnionFind for LockedDsu {
    fn len(&self) -> usize {
        LockedDsu::len(self)
    }

    fn same_set(&self, x: usize, y: usize) -> bool {
        LockedDsu::same_set(self, x, y)
    }

    fn unite(&self, x: usize, y: usize) -> bool {
        LockedDsu::unite(self, x, y)
    }

    fn find(&self, x: usize) -> usize {
        LockedDsu::find(self, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sequential_dsu::{NaiveDsu, Partition};

    #[test]
    fn basics() {
        let dsu = LockedDsu::new(5, Linking::ByRank, Compaction::Halving);
        assert_eq!(dsu.len(), 5);
        assert!(!dsu.is_empty());
        assert!(dsu.unite(0, 4));
        assert!(!dsu.unite(4, 0));
        assert!(dsu.same_set(0, 4));
        assert!(!dsu.same_set(1, 2));
        assert_eq!(dsu.set_count(), 4);
        assert_eq!(dsu.find(0), dsu.find(4));
    }

    #[test]
    fn concurrent_use_is_safe_and_confluent() {
        let n = 256;
        let dsu = LockedDsu::new(n, Linking::BySize, Compaction::Splitting);
        let pairs: Vec<(usize, usize)> = (0..n).map(|i| (i, (i * 37 + 11) % n)).collect();
        std::thread::scope(|s| {
            for t in 0..4 {
                let dsu = &dsu;
                let pairs = &pairs;
                s.spawn(move || {
                    for (i, &(x, y)) in pairs.iter().enumerate() {
                        if i % 4 == t {
                            dsu.unite(x, y);
                        } else {
                            dsu.same_set(x, y);
                        }
                    }
                });
            }
        });
        let mut oracle = NaiveDsu::new(n);
        for &(x, y) in &pairs {
            oracle.unite(x, y);
        }
        assert_eq!(Partition::from_labels(&dsu.labels_snapshot()), oracle.partition());
    }

    #[test]
    fn behaves_as_trait_object() {
        let dsu: Box<dyn concurrent_dsu::ConcurrentUnionFind> =
            Box::new(LockedDsu::new(3, Linking::Randomized, Compaction::Compression));
        assert!(dsu.unite(0, 2));
        assert!(dsu.same_set(2, 0));
    }

    #[test]
    fn debug_format() {
        let dsu = LockedDsu::new(2, Linking::ByRank, Compaction::None);
        assert!(format!("{dsu:?}").contains("LockedDsu"));
    }
}

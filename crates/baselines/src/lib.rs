//! Concurrent union-find **baselines** for the Jayanti–Tarjan reproduction.
//!
//! The paper positions its randomized-linking algorithm against two natural
//! alternatives, both provided here behind the same
//! [`ConcurrentUnionFind`](concurrent_dsu::ConcurrentUnionFind) interface:
//!
//! * [`AwDsu`] — a wait-free *linking-by-rank* union-find in the spirit of
//!   Anderson & Woll (STOC '91). Their algorithm needs the parent and rank
//!   of a node to be compared and updated atomically, which they achieved
//!   with a level of indirection; we use the modern equivalent — packing
//!   both fields into one 64-bit word — which preserves exactly the
//!   properties the paper discusses (rank ties must be resolved inside the
//!   data structure; updates touch two logical fields). Finds use path
//!   halving, as in their paper.
//! * [`LockedDsu`] — the classical sequential structure behind a global
//!   mutex: the trivially correct baseline every concurrent design must
//!   beat, and the zero-scalability yardstick for the speedup experiment
//!   (E4).
//! * [`LockedKeyedDsu`] — the **keyed** deployment shape real systems use
//!   (an `RwLock<HashMap>` facade over a sequential forest, as in optd's
//!   query-plan memo): the baseline the `keyed_ab` experiment measures
//!   [`KeyedDsu`](concurrent_dsu::KeyedDsu) against.
//!
//! # Example
//!
//! ```
//! use dsu_baselines::AwDsu;
//! use concurrent_dsu::ConcurrentUnionFind;
//!
//! let dsu = AwDsu::new(8);
//! assert!(dsu.unite(1, 2));
//! assert!(dsu.same_set(2, 1));
//! assert_eq!(dsu.len(), 8);
//! ```

pub mod aw;
pub mod keyed;
pub mod locked;

pub use aw::AwDsu;
pub use keyed::LockedKeyedDsu;
pub use locked::LockedDsu;

//! Anderson–Woll-style concurrent union-find: linking by rank with path
//! halving.
//!
//! ## Relationship to the original
//!
//! Anderson & Woll (STOC '91) make rank linking wait-free by introducing one
//! level of indirection so that a node's parent and rank can be read and
//! CASed together. On 64-bit hardware the same atomicity is obtained by
//! packing `(rank: 16 bits, parent: 48 bits)` into a single `AtomicU64`,
//! which is what this implementation does (the substitution is recorded in
//! `DESIGN.md` §6). Everything the Jayanti–Tarjan paper criticizes about the
//! approach is faithfully present:
//!
//! * rank ties must be detected and resolved *in the data structure* (an
//!   extra CAS to bump the surviving root's rank, which can fail and leave
//!   equal-rank parent/child pairs);
//! * a link must re-validate the full `(parent, rank)` word, so unrelated
//!   rank bumps force retries;
//! * compaction is *path halving*, which Section 3 of the paper proves
//!   cannot beat splitting concurrently.
//!
//! ## Safety argument (no cycles)
//!
//! A link CAS succeeds only if the linked node's whole word — parent *and*
//! rank — is unchanged since it was read as a root. Ranks never decrease,
//! and along any parent path ranks are non-decreasing with ties only along
//! strictly increasing element indices (ties link the smaller index under
//! the larger). A cycle would therefore need a path from the new parent
//! back to the linked root with non-decreasing ranks ending at a rank that
//! the CAS proved unchanged — forcing an all-ties path with decreasing
//! index, a contradiction.

use std::sync::atomic::{AtomicU64, Ordering};

use concurrent_dsu::ConcurrentUnionFind;

const ORD: Ordering = Ordering::SeqCst;
const PARENT_BITS: u32 = 48;
const PARENT_MASK: u64 = (1 << PARENT_BITS) - 1;

/// Packs `(parent, rank)` into one word. `rank` occupies the high 16 bits.
fn pack(parent: usize, rank: u16) -> u64 {
    debug_assert!((parent as u64) <= PARENT_MASK);
    ((rank as u64) << PARENT_BITS) | parent as u64
}

/// Inverse of [`pack`].
fn unpack(word: u64) -> (usize, u16) {
    ((word & PARENT_MASK) as usize, (word >> PARENT_BITS) as u16)
}

/// Wait-free concurrent union-find with **linking by rank** and **path
/// halving**, the Anderson–Woll design re-expressed with packed words.
///
/// Implements [`ConcurrentUnionFind`], so it slots into every harness and
/// application that accepts the Jayanti–Tarjan structure. Expect it to be
/// correct but to scale worse: the paper's Theorem 5.1 algorithm avoids the
/// rank machinery entirely.
///
/// # Example
///
/// ```
/// use dsu_baselines::AwDsu;
///
/// let dsu = AwDsu::new(4);
/// assert!(dsu.unite(0, 1));
/// assert!(dsu.unite(2, 3));
/// assert!(dsu.unite(0, 3));
/// assert!(dsu.same_set(1, 2));
/// ```
pub struct AwDsu {
    words: Box<[AtomicU64]>,
    links: std::sync::atomic::AtomicUsize,
}

impl std::fmt::Debug for AwDsu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AwDsu")
            .field("len", &self.len())
            .field("set_count", &self.set_count())
            .finish()
    }
}

impl AwDsu {
    /// Creates `n` singleton sets.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the 48-bit parent field (`n >= 2^48`).
    pub fn new(n: usize) -> Self {
        assert!((n as u64) <= PARENT_MASK, "AwDsu supports at most 2^48 elements");
        AwDsu {
            words: (0..n).map(|i| AtomicU64::new(pack(i, 0))).collect(),
            links: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` if the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Number of disjoint sets right now.
    pub fn set_count(&self) -> usize {
        self.len() - self.links.load(ORD)
    }

    fn check(&self, x: usize) {
        assert!(x < self.len(), "element {x} out of range (len {})", self.len());
    }

    /// Root of the tree containing `x`, halving the path on the way. The
    /// result may be stale; see
    /// [`ConcurrentUnionFind::find`].
    ///
    /// # Panics
    ///
    /// Panics if `x >= self.len()`.
    pub fn find(&self, x: usize) -> usize {
        self.check(x);
        let mut u = x;
        loop {
            let wu = self.words[u].load(ORD);
            let (v, _) = unpack(wu);
            if v == u {
                return u;
            }
            let (w, _) = unpack(self.words[v].load(ORD));
            if w == v {
                return v;
            }
            // Halve: swing u's parent to its grandparent, keeping u's rank
            // bits intact; jump two levels regardless of the CAS outcome.
            let (_, ru) = unpack(wu);
            let _ = self.words[u].compare_exchange(wu, pack(w, ru), ORD, ORD);
            u = w;
        }
    }

    /// `true` iff `x` and `y` are in the same set at the linearization
    /// point (same retry structure as paper Algorithm 2).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn same_set(&self, x: usize, y: usize) -> bool {
        self.check(x);
        self.check(y);
        let mut u = x;
        let mut v = y;
        loop {
            u = self.find(u);
            v = self.find(v);
            if u == v {
                return true;
            }
            let (pu, _) = unpack(self.words[u].load(ORD));
            if pu == u {
                return false;
            }
        }
    }

    /// Unites the sets containing `x` and `y` by rank; `true` iff this call
    /// performed the link.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn unite(&self, x: usize, y: usize) -> bool {
        self.check(x);
        self.check(y);
        let mut u = x;
        let mut v = y;
        loop {
            u = self.find(u);
            v = self.find(v);
            if u == v {
                return false;
            }
            let wu = self.words[u].load(ORD);
            let (pu, ru) = unpack(wu);
            if pu != u {
                continue; // u stopped being a root; re-find
            }
            let wv = self.words[v].load(ORD);
            let (pv, rv) = unpack(wv);
            if pv != v {
                continue;
            }
            let linked = if ru < rv {
                self.try_link(u, wu, v)
            } else if rv < ru {
                self.try_link(v, wv, u)
            } else {
                // Rank tie: resolve by element index (smaller goes under),
                // then try once to bump the survivor's rank — exactly the
                // tie machinery randomized linking makes unnecessary.
                let (child, wchild, parent, wparent) =
                    if u < v { (u, wu, v, wv) } else { (v, wv, u, wu) };
                if self.try_link(child, wchild, parent) {
                    let _ = self.words[parent].compare_exchange(
                        wparent,
                        pack(parent, ru + 1),
                        ORD,
                        ORD,
                    );
                    true
                } else {
                    false
                }
            };
            if linked {
                return true;
            }
        }
    }

    /// CAS `child`'s whole word (known root state `wchild`) to point at
    /// `parent`, preserving the child's rank bits.
    fn try_link(&self, child: usize, wchild: u64, parent: usize) -> bool {
        let (_, rank) = unpack(wchild);
        if self.words[child].compare_exchange(wchild, pack(parent, rank), ORD, ORD).is_ok() {
            self.links.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Canonical labels; call only at quiescence.
    pub fn labels_snapshot(&self) -> Vec<usize> {
        let mut labels: Vec<usize> = (0..self.len()).map(|i| self.find(i)).collect();
        for i in 0..labels.len() {
            labels[i] = labels[labels[i]];
        }
        labels
    }

    /// `(parent, rank)` of `x` right now (diagnostics/tests).
    pub fn parent_rank(&self, x: usize) -> (usize, u16) {
        unpack(self.words[x].load(ORD))
    }
}

impl ConcurrentUnionFind for AwDsu {
    fn len(&self) -> usize {
        AwDsu::len(self)
    }

    fn same_set(&self, x: usize, y: usize) -> bool {
        AwDsu::same_set(self, x, y)
    }

    fn unite(&self, x: usize, y: usize) -> bool {
        AwDsu::unite(self, x, y)
    }

    fn find(&self, x: usize) -> usize {
        AwDsu::find(self, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sequential_dsu::{NaiveDsu, Partition};

    #[test]
    fn pack_roundtrip() {
        for &(p, r) in &[(0usize, 0u16), (1, 1), ((1 << 48) - 1, u16::MAX), (12345, 77)] {
            assert_eq!(unpack(pack(p, r)), (p, r));
        }
    }

    #[test]
    fn basics() {
        let dsu = AwDsu::new(6);
        assert_eq!(dsu.set_count(), 6);
        assert!(!dsu.same_set(0, 1));
        assert!(dsu.unite(0, 1));
        assert!(!dsu.unite(0, 1));
        assert!(dsu.same_set(0, 1));
        assert!(dsu.unite(2, 3));
        assert!(dsu.unite(1, 3));
        assert!(dsu.same_set(0, 2));
        assert_eq!(dsu.set_count(), 3);
    }

    #[test]
    fn rank_tie_bumps_rank() {
        let dsu = AwDsu::new(4);
        dsu.unite(0, 1); // tie at 0: 0 -> 1, rank(1) = 1
        let (p0, _) = dsu.parent_rank(0);
        assert_eq!(p0, 1);
        let (_, r1) = dsu.parent_rank(1);
        assert_eq!(r1, 1);
        dsu.unite(2, 3); // 2 -> 3, rank(3) = 1
        dsu.unite(0, 2); // roots 1, 3 tie at rank 1: 1 -> 3, rank(3) = 2
        let (_, r3) = dsu.parent_rank(3);
        assert_eq!(r3, 2);
    }

    #[test]
    fn ranks_never_decrease_along_paths() {
        let dsu = AwDsu::new(256);
        for i in 0..255 {
            dsu.unite(i, i + 1);
        }
        for x in 0..256 {
            let (p, rx) = dsu.parent_rank(x);
            if p != x {
                let (_, rp) = dsu.parent_rank(p);
                assert!(rp >= rx, "parent rank below child rank");
            }
        }
    }

    #[test]
    fn single_threaded_matches_oracle() {
        use rand::{Rng, SeedableRng};
        let n = 48;
        let dsu = AwDsu::new(n);
        let mut oracle = NaiveDsu::new(n);
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(31);
        for _ in 0..600 {
            let x = rng.gen_range(0..n);
            let y = rng.gen_range(0..n);
            if rng.gen_bool(0.5) {
                assert_eq!(dsu.unite(x, y), oracle.unite(x, y));
            } else {
                assert_eq!(dsu.same_set(x, y), oracle.same_set(x, y));
            }
        }
        assert_eq!(Partition::from_labels(&dsu.labels_snapshot()), oracle.partition());
        assert_eq!(dsu.set_count(), oracle.set_count());
    }

    #[test]
    fn concurrent_confluence() {
        let n = 512;
        let dsu = AwDsu::new(n);
        let pairs: Vec<(usize, usize)> =
            (0..2 * n).map(|i| ((i * 31) % n, (i * 101 + 7) % n)).collect();
        std::thread::scope(|s| {
            for t in 0..8 {
                let dsu = &dsu;
                let pairs = &pairs;
                s.spawn(move || {
                    for (i, &(x, y)) in pairs.iter().enumerate() {
                        if i % 8 == t {
                            dsu.unite(x, y);
                        } else if i % 3 == 0 {
                            dsu.same_set(x, y);
                        }
                    }
                });
            }
        });
        let mut oracle = NaiveDsu::new(n);
        for &(x, y) in &pairs {
            oracle.unite(x, y);
        }
        assert_eq!(Partition::from_labels(&dsu.labels_snapshot()), oracle.partition());
    }

    #[test]
    fn concurrent_unite_true_count_is_exact() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = 1024;
        let dsu = AwDsu::new(n);
        let trues = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..8usize {
                let dsu = &dsu;
                let trues = &trues;
                s.spawn(move || {
                    use rand::{Rng, SeedableRng};
                    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(500 + t as u64);
                    let mut local = 0;
                    for _ in 0..3000 {
                        if dsu.unite(rng.gen_range(0..n), rng.gen_range(0..n)) {
                            local += 1;
                        }
                    }
                    trues.fetch_add(local, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(trues.load(Ordering::Relaxed), n - dsu.set_count());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bounds_checked() {
        AwDsu::new(2).find(2);
    }

    #[test]
    fn debug_format() {
        let dsu = AwDsu::new(2);
        assert!(format!("{dsu:?}").contains("AwDsu"));
    }
}

//! The lock-based **keyed** baseline: `RwLock<HashMap>` in front of a
//! sequential union-find.
//!
//! This is the shape production systems actually deploy (optd guards its
//! query-plan group unions with exactly this structure — SNIPPETS 2/3),
//! and therefore the honest yardstick for [`KeyedDsu`]: same semantics,
//! same key types, one reader–writer lock where the lock-free id table and
//! CAS forest sit. We give the baseline every reasonable advantage —
//! queries walk the forest under a *shared* read guard (a non-mutating
//! find, so lookups scale until a writer shows up), writers do union by
//! rank with full path compression, and the batch entry points amortize
//! one guard acquisition over the whole burst — so any measured gap is the
//! lock, not a strawman.
//!
//! [`KeyedDsu`]: concurrent_dsu::KeyedDsu

use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::Hash;

struct Inner<K> {
    ids: HashMap<K, usize>,
    parent: Vec<usize>,
    rank: Vec<u8>,
    links: usize,
}

impl<K: Hash + Eq + Clone> Inner<K> {
    fn id_of(&mut self, key: &K) -> usize {
        if let Some(&id) = self.ids.get(key) {
            return id;
        }
        let id = self.parent.len();
        self.ids.insert(key.clone(), id);
        self.parent.push(id);
        self.rank.push(0);
        id
    }

    /// Mutating find: full path compression (every visited node re-pointed
    /// at the root) — the strongest sequential choice.
    fn find_compress(&mut self, mut x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        while self.parent[x] != root {
            let next = self.parent[x];
            self.parent[x] = root;
            x = next;
        }
        root
    }

    /// Non-mutating find, callable under a shared read guard.
    fn find_ro(&self, mut x: usize) -> usize {
        while self.parent[x] != x {
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find_compress(a), self.find_compress(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] { (ra, rb) } else { (rb, ra) };
        self.parent[lo] = hi;
        if self.rank[ra] == self.rank[rb] {
            self.rank[hi] += 1;
        }
        self.links += 1;
        true
    }
}

/// A keyed union-find behind one [`RwLock`]: the deployment-shaped
/// baseline `keyed_ab` measures [`KeyedDsu`](concurrent_dsu::KeyedDsu)
/// against. Semantics match `KeyedDsu` exactly (insert-on-merge, implicit
/// singletons for unseen query keys), so the two can be driven by the same
/// trace and cross-checked verdict for verdict.
///
/// # Example
///
/// ```
/// use dsu_baselines::LockedKeyedDsu;
///
/// let dsu: LockedKeyedDsu<String> = LockedKeyedDsu::new();
/// dsu.merge_keys(&"a".into(), &"b".into());
/// assert!(dsu.same_set(&"b".into(), &"a".into()));
/// assert!(!dsu.same_set(&"a".into(), &"c".into()));
/// assert_eq!(dsu.key_count(), 2);
/// ```
pub struct LockedKeyedDsu<K> {
    inner: RwLock<Inner<K>>,
}

impl<K: Hash + Eq + Clone> Default for LockedKeyedDsu<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K> std::fmt::Debug for LockedKeyedDsu<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("LockedKeyedDsu")
            .field("keys", &inner.ids.len())
            .field("set_count", &(inner.parent.len() - inner.links))
            .finish()
    }
}

impl<K: Hash + Eq + Clone> LockedKeyedDsu<K> {
    /// An empty keyed structure.
    pub fn new() -> Self {
        LockedKeyedDsu {
            inner: RwLock::new(Inner {
                ids: HashMap::new(),
                parent: Vec::new(),
                rank: Vec::new(),
                links: 0,
            }),
        }
    }

    /// Maps `key` to its dense id, inserting it as a singleton if unseen
    /// (write lock).
    pub fn insert(&self, key: &K) -> usize {
        self.inner.write().id_of(key)
    }

    /// The id of `key`, or `None` if never inserted (read lock).
    pub fn get(&self, key: &K) -> Option<usize> {
        self.inner.read().ids.get(key).copied()
    }

    /// Unites the sets of `a` and `b`, inserting unseen keys; `true` iff
    /// this call linked (write lock).
    pub fn merge_keys(&self, a: &K, b: &K) -> bool {
        let mut inner = self.inner.write();
        let (ia, ib) = (inner.id_of(a), inner.id_of(b));
        inner.union(ia, ib)
    }

    /// `true` iff `a` and `b` share a set; unseen keys are implicit
    /// singletons (read lock, non-mutating find).
    pub fn same_set(&self, a: &K, b: &K) -> bool {
        let inner = self.inner.read();
        match (inner.ids.get(a), inner.ids.get(b)) {
            (Some(&ia), Some(&ib)) => inner.find_ro(ia) == inner.find_ro(ib),
            _ => a == b,
        }
    }

    /// Batched [`merge_keys`](LockedKeyedDsu::merge_keys): one write-guard
    /// acquisition for the whole burst. Returns the number of links.
    pub fn merge_keys_batch(&self, pairs: &[(K, K)]) -> usize {
        let mut inner = self.inner.write();
        pairs
            .iter()
            .filter(|(a, b)| {
                let (ia, ib) = (inner.id_of(a), inner.id_of(b));
                inner.union(ia, ib)
            })
            .count()
    }

    /// Batched [`same_set`](LockedKeyedDsu::same_set): one read-guard
    /// acquisition for the whole burst.
    pub fn same_set_batch(&self, pairs: &[(K, K)]) -> Vec<bool> {
        let inner = self.inner.read();
        pairs
            .iter()
            .map(|(a, b)| match (inner.ids.get(a), inner.ids.get(b)) {
                (Some(&ia), Some(&ib)) => inner.find_ro(ia) == inner.find_ro(ib),
                _ => a == b,
            })
            .collect()
    }

    /// Number of distinct keys inserted so far.
    pub fn key_count(&self) -> usize {
        self.inner.read().ids.len()
    }

    /// Number of disjoint sets right now.
    pub fn set_count(&self) -> usize {
        let inner = self.inner.read();
        inner.parent.len() - inner.links
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semantics_match_keyed_dsu_contract() {
        let dsu: LockedKeyedDsu<u64> = LockedKeyedDsu::new();
        assert_eq!(dsu.insert(&5), dsu.insert(&5));
        assert!(dsu.merge_keys(&10, &20));
        assert!(!dsu.merge_keys(&20, &10));
        assert!(dsu.same_set(&10, &20));
        assert!(dsu.same_set(&99, &99), "unseen key together with itself");
        assert!(!dsu.same_set(&98, &99));
        assert!(!dsu.merge_keys(&7, &7), "self-merge inserts, never links");
        assert_eq!(dsu.key_count(), 4);
        assert_eq!(dsu.set_count(), 3);
        assert_eq!(dsu.get(&123), None);
    }

    #[test]
    fn batch_matches_per_op() {
        let pairs: Vec<(u64, u64)> = (0..300).map(|i| (i % 40, (i * 13 + 1) % 40)).collect();
        let batched: LockedKeyedDsu<u64> = LockedKeyedDsu::new();
        let per_op: LockedKeyedDsu<u64> = LockedKeyedDsu::new();
        let links = batched.merge_keys_batch(&pairs);
        let expected = pairs.iter().filter(|(a, b)| per_op.merge_keys(a, b)).count();
        assert_eq!(links, expected);
        let queries: Vec<(u64, u64)> = (0..40).map(|i| (i, (i * 7) % 41)).collect();
        assert_eq!(
            batched.same_set_batch(&queries),
            queries.iter().map(|(a, b)| per_op.same_set(a, b)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn concurrent_use_agrees_with_a_sequential_replay() {
        let dsu: LockedKeyedDsu<String> = LockedKeyedDsu::new();
        let pairs: Vec<(String, String)> = (0..256u32)
            .map(|i| (format!("k{}", i % 64), format!("k{}", (i * 37 + 11) % 64)))
            .collect();
        std::thread::scope(|s| {
            for t in 0..4 {
                let dsu = &dsu;
                let pairs = &pairs;
                s.spawn(move || {
                    for (i, (a, b)) in pairs.iter().enumerate() {
                        if i % 4 == t {
                            dsu.merge_keys(a, b);
                        } else {
                            dsu.same_set(a, b);
                        }
                    }
                });
            }
        });
        let oracle: LockedKeyedDsu<String> = LockedKeyedDsu::new();
        for (a, b) in &pairs {
            oracle.merge_keys(a, b);
        }
        assert_eq!(dsu.key_count(), oracle.key_count());
        assert_eq!(dsu.set_count(), oracle.set_count());
        for (a, b) in &pairs {
            assert_eq!(dsu.same_set(a, b), oracle.same_set(a, b));
        }
    }

    #[test]
    fn debug_format() {
        let dsu: LockedKeyedDsu<u64> = LockedKeyedDsu::new();
        dsu.insert(&1);
        assert!(format!("{dsu:?}").contains("LockedKeyedDsu"));
    }
}

//! Shared helpers for the Criterion benches.
//!
//! The benches complement the `dsu-harness` experiment binaries: the
//! binaries regenerate the paper-claim tables (E1–E12 in `DESIGN.md`),
//! while these give statistically disciplined micro-timings for the same
//! code paths:
//!
//! * `find_variants` — single-thread cost per find policy (E3's unit cost);
//! * `concurrent_throughput` — multi-thread ops/s per structure (E4);
//! * `sequential_variants` — the twelve Section 2 baselines (E7);
//! * `applications` — connected components / MST / percolation (E9).

use dsu_workloads::{Workload, WorkloadSpec};

/// The standard benchmark workload: `m` half-unite/half-query ops over
/// `0..n`, fixed seed.
pub fn standard_workload(n: usize, m: usize) -> Workload {
    WorkloadSpec::new(n, m).unite_fraction(0.5).generate(0xBE7C)
}

/// Applies one op to anything implementing the concurrent interface.
pub fn apply<D: concurrent_dsu::ConcurrentUnionFind + ?Sized>(dsu: &D, op: dsu_workloads::Op) {
    match op {
        dsu_workloads::Op::Unite(x, y) => {
            dsu.unite(x, y);
        }
        dsu_workloads::Op::SameSet(x, y) => {
            dsu.same_set(x, y);
        }
    }
}

/// Runs a workload sharded over `threads` threads; returns elapsed time.
/// (Criterion's `iter_custom` needs the duration, not a harness struct, so
/// this is a lean sibling of `dsu_harness::run_shards`.)
pub fn timed_parallel_run<D: concurrent_dsu::ConcurrentUnionFind>(
    dsu: &D,
    workload: &Workload,
    threads: usize,
) -> std::time::Duration {
    let shards = workload.shard(threads);
    let barrier = std::sync::Barrier::new(threads + 1);
    let started = std::thread::scope(|s| {
        for shard in &shards {
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for &op in shard {
                    apply(dsu, op);
                }
            });
        }
        // Take the timestamp *before* releasing the barrier: workers cannot
        // start until this thread arrives, but once the barrier opens this
        // thread may be descheduled while workers run (oversubscribed
        // hosts), which would deflate an after-the-wait timestamp.
        let t0 = std::time::Instant::now();
        barrier.wait();
        t0
    });
    started.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        assert_eq!(standard_workload(64, 100), standard_workload(64, 100));
    }

    #[test]
    fn timed_run_executes() {
        let dsu: concurrent_dsu::Dsu = concurrent_dsu::Dsu::new(64);
        let w = standard_workload(64, 500);
        let d = timed_parallel_run(&dsu, &w, 2);
        assert!(d.as_nanos() > 0);
    }
}

//! Shared helpers for the Criterion benches.
//!
//! The benches complement the `dsu-harness` experiment binaries: the
//! binaries regenerate the paper-claim tables (E1–E12 in `DESIGN.md`),
//! while these give statistically disciplined micro-timings for the same
//! code paths:
//!
//! * `find_variants` — single-thread cost per find policy (E3's unit cost);
//! * `concurrent_throughput` — multi-thread ops/s per structure (E4);
//! * `sequential_variants` — the twelve Section 2 baselines (E7);
//! * `applications` — connected components / MST / percolation (E9).

use std::sync::atomic::{AtomicUsize, Ordering};

use dsu_workloads::{EdgeBatchSpec, EdgeBatches, ElementDist, Workload, WorkloadSpec};

/// The standard benchmark workload: `m` half-unite/half-query ops over
/// `0..n`, fixed seed.
pub fn standard_workload(n: usize, m: usize) -> Workload {
    WorkloadSpec::new(n, m).unite_fraction(0.5).generate(0xBE7C)
}

/// The shard-skew workload: like [`standard_workload`] but `bias` of the
/// operand mass aimed at the first of `shards` contiguous index blocks —
/// the adversarial placement shape for the sharded store
/// ([`ElementDist::ShardSkew`]), fixed seed.
pub fn shard_skew_workload(n: usize, m: usize, shards: usize, bias: f64) -> Workload {
    WorkloadSpec::new(n, m)
        .unite_fraction(0.5)
        .element_dist(ElementDist::ShardSkew { shards, bias })
        .generate(0xBE7C)
}

/// The standard batched-arrival workload: `batches` bursts of `batch_size`
/// edges over `0..n`, endpoints Zipf-skewed with exponent `zipf`, fixed
/// seed. Skew plus volume make most edges redundant after the early
/// bursts — the regime the batch path's same-set filter targets.
pub fn standard_edge_batches(
    n: usize,
    batches: usize,
    batch_size: usize,
    zipf: f64,
) -> EdgeBatches {
    EdgeBatchSpec::new(n, batches, batch_size)
        .element_dist(ElementDist::Zipf(zipf))
        .generate(0xBA7C)
}

/// Median of a sample vector, sorting in place (upper middle for even
/// lengths) — the statistic all the interleaved A/B examples report.
///
/// # Panics
///
/// Panics on an empty slice or NaN samples.
pub fn median(xs: &mut [f64]) -> f64 {
    assert!(!xs.is_empty(), "median of zero samples");
    xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    xs[xs.len() / 2]
}

/// Applies one op to anything implementing the concurrent interface.
pub fn apply<D: concurrent_dsu::ConcurrentUnionFind + ?Sized>(dsu: &D, op: dsu_workloads::Op) {
    match op {
        dsu_workloads::Op::Unite(x, y) => {
            dsu.unite(x, y);
        }
        dsu_workloads::Op::SameSet(x, y) => {
            dsu.same_set(x, y);
        }
    }
}

/// Runs a workload sharded over `threads` threads; returns elapsed time.
/// (Criterion's `iter_custom` needs the duration, not a harness struct, so
/// this is a lean sibling of `dsu_harness::run_shards`.)
pub fn timed_parallel_run<D: concurrent_dsu::ConcurrentUnionFind>(
    dsu: &D,
    workload: &Workload,
    threads: usize,
) -> std::time::Duration {
    let shards = workload.shard(threads);
    let barrier = std::sync::Barrier::new(threads + 1);
    let started = std::thread::scope(|s| {
        for shard in &shards {
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for &op in shard {
                    apply(dsu, op);
                }
            });
        }
        // Take the timestamp *before* releasing the barrier: workers cannot
        // start until this thread arrives, but once the barrier opens this
        // thread may be descheduled while workers run (oversubscribed
        // hosts), which would deflate an after-the-wait timestamp.
        let t0 = std::time::Instant::now();
        barrier.wait();
        t0
    });
    started.elapsed()
}

/// Ingests `batches` on `threads` threads — workers claim whole bursts
/// from a shared cursor (the same dynamic scheduling both contenders get)
/// and apply `ingest` to each — returning elapsed wall time. The two
/// public wrappers differ *only* in `ingest`, isolating the batch-API
/// effect from the scheduler.
fn timed_ingest<D>(
    dsu: &D,
    batches: &[Vec<(usize, usize)>],
    threads: usize,
    ingest: impl Fn(&D, &[(usize, usize)]) + Copy + Send,
) -> std::time::Duration
where
    D: concurrent_dsu::ConcurrentUnionFind,
{
    let cursor = AtomicUsize::new(0);
    let barrier = std::sync::Barrier::new(threads + 1);
    let started = std::thread::scope(|s| {
        for _ in 0..threads {
            let cursor = &cursor;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= batches.len() {
                        break;
                    }
                    ingest(dsu, &batches[i]);
                }
            });
        }
        // Timestamp before releasing the barrier (see timed_parallel_run).
        let t0 = std::time::Instant::now();
        barrier.wait();
        t0
    });
    started.elapsed()
}

/// Per-op ingestion baseline: every edge of every burst goes through a
/// separate [`unite`](concurrent_dsu::ConcurrentUnionFind::unite) call.
pub fn timed_ingest_per_op<D: concurrent_dsu::ConcurrentUnionFind>(
    dsu: &D,
    batches: &[Vec<(usize, usize)>],
    threads: usize,
) -> std::time::Duration {
    timed_ingest(dsu, batches, threads, |d, burst| {
        for &(x, y) in burst {
            d.unite(x, y);
        }
    })
}

/// Batched ingestion: each burst goes through one
/// [`unite_batch`](concurrent_dsu::ConcurrentUnionFind::unite_batch) call
/// (the filtered, word-seeded bulk path on [`concurrent_dsu::Dsu`]).
pub fn timed_ingest_batched<D: concurrent_dsu::ConcurrentUnionFind>(
    dsu: &D,
    batches: &[Vec<(usize, usize)>],
    threads: usize,
) -> std::time::Duration {
    timed_ingest(dsu, batches, threads, |d, burst| {
        d.unite_batch(burst);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        assert_eq!(standard_workload(64, 100), standard_workload(64, 100));
    }

    #[test]
    fn median_picks_the_middle() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 3.0, 2.0]), 3.0, "upper middle for even lengths");
        assert_eq!(median(&mut [7.0]), 7.0);
    }

    #[test]
    fn ingest_runners_cover_every_edge() {
        let arrivals = standard_edge_batches(256, 16, 32, 1.1);
        let per_op: concurrent_dsu::Dsu = concurrent_dsu::Dsu::new(256);
        let batched: concurrent_dsu::Dsu = concurrent_dsu::Dsu::new(256);
        let a = timed_ingest_per_op(&per_op, &arrivals.batches, 2);
        let b = timed_ingest_batched(&batched, &arrivals.batches, 2);
        assert!(a.as_nanos() > 0 && b.as_nanos() > 0);
        // Confluence: both ingestion shapes produce the same partition.
        assert_eq!(per_op.set_count(), batched.set_count());
        assert_eq!(per_op.labels_snapshot(), batched.labels_snapshot());
    }

    #[test]
    fn timed_run_executes() {
        let dsu: concurrent_dsu::Dsu = concurrent_dsu::Dsu::new(64);
        let w = standard_workload(64, 500);
        let d = timed_parallel_run(&dsu, &w, 2);
        assert!(d.as_nanos() > 0);
    }
}

//! Shared helpers for the Criterion benches.
//!
//! The benches complement the `dsu-harness` experiment binaries: the
//! binaries regenerate the paper-claim tables (E1–E12 in `DESIGN.md`),
//! while these give statistically disciplined micro-timings for the same
//! code paths:
//!
//! * `find_variants` — single-thread cost per find policy (E3's unit cost);
//! * `concurrent_throughput` — multi-thread ops/s per structure (E4);
//! * `sequential_variants` — the twelve Section 2 baselines (E7);
//! * `applications` — connected components / MST / percolation (E9).

use std::sync::atomic::{AtomicUsize, Ordering};

use concurrent_dsu::{BatchTuning, Dsu, DsuStore, FindPolicy, OpStats, RootCache};
use dsu_workloads::{EdgeBatchSpec, EdgeBatches, ElementDist, Workload, WorkloadSpec};

/// The machine fingerprint `(cpus, arch, os)` every A/B example stamps
/// into its JSON, so archived records from different hosts can be told
/// apart (the ROADMAP's per-machine bench matrix) and the regression gate
/// can refuse to compare across machines.
pub fn machine_fingerprint() -> (usize, &'static str, &'static str) {
    (
        std::thread::available_parallelism().map_or(1, |p| p.get()),
        std::env::consts::ARCH,
        std::env::consts::OS,
    )
}

/// [`machine_fingerprint`] as the JSON object the A/B examples embed
/// under the `"machine"` key.
pub fn machine_fingerprint_json() -> String {
    let (cpus, arch, os) = machine_fingerprint();
    format!("{{\"cpus\": {cpus}, \"arch\": \"{arch}\", \"os\": \"{os}\"}}")
}

/// The standard benchmark workload: `m` half-unite/half-query ops over
/// `0..n`, fixed seed.
pub fn standard_workload(n: usize, m: usize) -> Workload {
    WorkloadSpec::new(n, m).unite_fraction(0.5).generate(0xBE7C)
}

/// The shard-skew workload: like [`standard_workload`] but `bias` of the
/// operand mass aimed at the first of `shards` contiguous index blocks —
/// the adversarial placement shape for the sharded store
/// ([`ElementDist::ShardSkew`]), fixed seed.
pub fn shard_skew_workload(n: usize, m: usize, shards: usize, bias: f64) -> Workload {
    WorkloadSpec::new(n, m)
        .unite_fraction(0.5)
        .element_dist(ElementDist::ShardSkew { shards, bias })
        .generate(0xBE7C)
}

/// The standard batched-arrival workload: `batches` bursts of `batch_size`
/// edges over `0..n`, endpoints Zipf-skewed with exponent `zipf`, fixed
/// seed. Skew plus volume make most edges redundant after the early
/// bursts — the regime the batch path's same-set filter targets.
pub fn standard_edge_batches(
    n: usize,
    batches: usize,
    batch_size: usize,
    zipf: f64,
) -> EdgeBatches {
    rehit_edge_batches(n, batches, batch_size, zipf, 0.0)
}

/// [`standard_edge_batches`] with an intra-burst endpoint re-hit
/// probability ([`EdgeBatchSpec::repeat_within_burst`]) on top of the Zipf
/// skew — the temporal-locality axis the `cache_ab` example sweeps.
/// `repeat = 0.0` reproduces [`standard_edge_batches`] byte for byte.
pub fn rehit_edge_batches(
    n: usize,
    batches: usize,
    batch_size: usize,
    zipf: f64,
    repeat: f64,
) -> EdgeBatches {
    EdgeBatchSpec::new(n, batches, batch_size)
        .element_dist(ElementDist::Zipf(zipf))
        .repeat_within_burst(repeat)
        .generate(0xBA7C)
}

/// [`standard_edge_batches`] with an exact-duplicate injection
/// probability ([`EdgeBatchSpec::duplicate_fraction`]) on top of the Zipf
/// skew — the dup-heavy axis the `bucket_ab` example sweeps (the shape
/// the ingestion planner's intra-batch dedup targets). `dup = 0.0`
/// reproduces [`standard_edge_batches`] byte for byte.
pub fn dup_edge_batches(
    n: usize,
    batches: usize,
    batch_size: usize,
    zipf: f64,
    dup: f64,
) -> EdgeBatches {
    EdgeBatchSpec::new(n, batches, batch_size)
        .element_dist(ElementDist::Zipf(zipf))
        .duplicate_fraction(dup)
        .generate(0xBA7C)
}

/// Median of a sample vector, sorting in place (upper middle for even
/// lengths) — the statistic all the interleaved A/B examples report.
///
/// # Panics
///
/// Panics on an empty slice or NaN samples.
pub fn median(xs: &mut [f64]) -> f64 {
    assert!(!xs.is_empty(), "median of zero samples");
    xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    xs[xs.len() / 2]
}

/// Applies one op to anything implementing the concurrent interface.
pub fn apply<D: concurrent_dsu::ConcurrentUnionFind + ?Sized>(dsu: &D, op: dsu_workloads::Op) {
    match op {
        dsu_workloads::Op::Unite(x, y) => {
            dsu.unite(x, y);
        }
        dsu_workloads::Op::SameSet(x, y) => {
            dsu.same_set(x, y);
        }
    }
}

/// Runs a workload sharded over `threads` threads; returns elapsed time.
/// (Criterion's `iter_custom` needs the duration, not a harness struct, so
/// this is a lean sibling of `dsu_harness::run_shards`.)
pub fn timed_parallel_run<D: concurrent_dsu::ConcurrentUnionFind>(
    dsu: &D,
    workload: &Workload,
    threads: usize,
) -> std::time::Duration {
    let shards = workload.shard(threads);
    let barrier = std::sync::Barrier::new(threads + 1);
    let started = std::thread::scope(|s| {
        for shard in &shards {
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for &op in shard {
                    apply(dsu, op);
                }
            });
        }
        // Take the timestamp *before* releasing the barrier: workers cannot
        // start until this thread arrives, but once the barrier opens this
        // thread may be descheduled while workers run (oversubscribed
        // hosts), which would deflate an after-the-wait timestamp.
        let t0 = std::time::Instant::now();
        barrier.wait();
        t0
    });
    started.elapsed()
}

/// Ingests `batches` on `threads` threads — workers claim whole bursts
/// from a shared cursor (the same dynamic scheduling both contenders get)
/// and apply `ingest` to each — returning elapsed wall time. The two
/// public wrappers differ *only* in `ingest`, isolating the batch-API
/// effect from the scheduler.
fn timed_ingest<D>(
    dsu: &D,
    batches: &[Vec<(usize, usize)>],
    threads: usize,
    ingest: impl Fn(&D, &[(usize, usize)]) + Copy + Send,
) -> std::time::Duration
where
    D: concurrent_dsu::ConcurrentUnionFind,
{
    let cursor = AtomicUsize::new(0);
    let barrier = std::sync::Barrier::new(threads + 1);
    let started = std::thread::scope(|s| {
        for _ in 0..threads {
            let cursor = &cursor;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= batches.len() {
                        break;
                    }
                    ingest(dsu, &batches[i]);
                }
            });
        }
        // Timestamp before releasing the barrier (see timed_parallel_run).
        let t0 = std::time::Instant::now();
        barrier.wait();
        t0
    });
    started.elapsed()
}

/// Like [`timed_ingest`], but each worker thread builds its own stateful
/// ingest closure via `make_worker` — the shape session-carrying
/// contenders (a per-thread hot-root cache) need.
fn timed_ingest_sessions<D, W, M>(
    dsu: &D,
    batches: &[Vec<(usize, usize)>],
    threads: usize,
    make_worker: M,
) -> std::time::Duration
where
    D: concurrent_dsu::ConcurrentUnionFind,
    W: FnMut(&D, &[(usize, usize)]),
    M: Fn() -> W + Copy + Send,
{
    let cursor = AtomicUsize::new(0);
    let barrier = std::sync::Barrier::new(threads + 1);
    let started = std::thread::scope(|s| {
        for _ in 0..threads {
            let cursor = &cursor;
            let barrier = &barrier;
            s.spawn(move || {
                let mut ingest = make_worker();
                barrier.wait();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= batches.len() {
                        break;
                    }
                    ingest(dsu, &batches[i]);
                }
            });
        }
        // Timestamp before releasing the barrier (see timed_parallel_run).
        let t0 = std::time::Instant::now();
        barrier.wait();
        t0
    });
    started.elapsed()
}

/// Batched ingestion under explicit [`BatchTuning`], with the hot-root
/// cache per worker thread either on (persistent across the worker's
/// bursts) or off entirely — the four-arm contender of the `cache_ab`
/// example.
pub fn timed_ingest_batched_tuned<F: FindPolicy, S: DsuStore>(
    dsu: &Dsu<F, S>,
    batches: &[Vec<(usize, usize)>],
    threads: usize,
    tuning: BatchTuning,
    cached: bool,
) -> std::time::Duration {
    timed_ingest_sessions(dsu, batches, threads, || {
        let mut cache = cached.then(RootCache::default);
        move |d: &Dsu<F, S>, burst: &[(usize, usize)]| {
            d.unite_batch_tuned_with(burst, tuning, cache.as_mut(), &mut ());
        }
    })
}

/// Single-threaded instrumented twin of [`timed_ingest_batched_tuned`]:
/// ingests the whole trace through one (optionally cached) session and
/// returns the merged [`OpStats`] — the attribution record (`cache_hits`,
/// `cache_stale`, `prefetch_waves`, reads, CASes) the A/B JSON archives
/// next to the timings.
pub fn ingest_stats_tuned<F: FindPolicy, S: DsuStore>(
    dsu: &Dsu<F, S>,
    batches: &[Vec<(usize, usize)>],
    tuning: BatchTuning,
    cached: bool,
) -> OpStats {
    let mut stats = OpStats::default();
    let mut cache = cached.then(RootCache::default);
    for burst in batches {
        dsu.unite_batch_tuned_with(burst, tuning, cache.as_mut(), &mut stats);
    }
    stats
}

/// [`timed_parallel_run`] where every worker routes its operations
/// through its own hot-root cache session ([`Dsu::cached`]) — the cached
/// contender of the criterion throughput group. Delegates to the harness
/// driver's [`run_shards_cached`](dsu_harness::run_shards_cached) so this
/// row and the e04 cached row measure the *same* session-per-worker
/// harness.
pub fn timed_parallel_run_cached<F: FindPolicy, S: DsuStore>(
    dsu: &Dsu<F, S>,
    workload: &Workload,
    threads: usize,
) -> std::time::Duration {
    dsu_harness::run_shards_cached(dsu, workload, threads).elapsed
}

/// Renders an [`OpStats`] as the flat JSON object the A/B examples embed.
pub fn stats_json(stats: &OpStats) -> String {
    format!(
        "{{\"reads\": {}, \"loop_iters\": {}, \"compact_cas_ok\": {}, \"compact_cas_fail\": {}, \
         \"links_ok\": {}, \"links_fail\": {}, \"cache_hits\": {}, \"cache_stale\": {}, \
         \"prefetch_waves\": {}, \"dup_edges_dropped\": {}, \"bucket_count\": {}, \
         \"spill_edges\": {}, \"cas_retries\": {}, \"faults_injected\": {}}}",
        stats.reads,
        stats.loop_iters,
        stats.compact_cas_ok,
        stats.compact_cas_fail,
        stats.links_ok,
        stats.links_fail,
        stats.cache_hits,
        stats.cache_stale,
        stats.prefetch_waves,
        stats.dup_edges_dropped,
        stats.bucket_count,
        stats.spill_edges,
        stats.cas_retries,
        stats.faults_injected
    )
}

/// Per-op ingestion baseline: every edge of every burst goes through a
/// separate [`unite`](concurrent_dsu::ConcurrentUnionFind::unite) call.
pub fn timed_ingest_per_op<D: concurrent_dsu::ConcurrentUnionFind>(
    dsu: &D,
    batches: &[Vec<(usize, usize)>],
    threads: usize,
) -> std::time::Duration {
    timed_ingest(dsu, batches, threads, |d, burst| {
        for &(x, y) in burst {
            d.unite(x, y);
        }
    })
}

/// Per-op ingestion through a per-worker hot-root cache session
/// ([`Dsu::cached`]): every edge is a separate `unite`, but each worker's
/// finds start at its cached roots. The cached-vs-plain per-op pair
/// isolates the cache's effect on the *serial* find path, where — unlike
/// the batch path, whose gather waves already preload two or three levels
/// — every hop is a dependent load.
pub fn timed_ingest_per_op_cached<F: FindPolicy, S: DsuStore>(
    dsu: &Dsu<F, S>,
    batches: &[Vec<(usize, usize)>],
    threads: usize,
) -> std::time::Duration {
    timed_ingest_sessions(dsu, batches, threads, || {
        let mut session = dsu.cached();
        move |_d: &Dsu<F, S>, burst: &[(usize, usize)]| {
            for &(x, y) in burst {
                session.unite(x, y);
            }
        }
    })
}

/// Batched ingestion: each burst goes through one
/// [`unite_batch`](concurrent_dsu::ConcurrentUnionFind::unite_batch) call
/// (the filtered, word-seeded bulk path on [`concurrent_dsu::Dsu`]).
pub fn timed_ingest_batched<D: concurrent_dsu::ConcurrentUnionFind>(
    dsu: &D,
    batches: &[Vec<(usize, usize)>],
    threads: usize,
) -> std::time::Duration {
    timed_ingest(dsu, batches, threads, |d, burst| {
        d.unite_batch(burst);
    })
}

/// Planned batched ingestion: each burst goes through one
/// [`unite_batch_planned`](concurrent_dsu::ConcurrentUnionFind::unite_batch_planned)
/// call (the ingestion planner in front of the bulk path — intra-batch
/// dedup + block-local radix buckets + spillover; the `bucket_ab`
/// contender).
pub fn timed_ingest_batched_planned<D: concurrent_dsu::ConcurrentUnionFind>(
    dsu: &D,
    batches: &[Vec<(usize, usize)>],
    threads: usize,
) -> std::time::Duration {
    timed_ingest(dsu, batches, threads, |d, burst| {
        d.unite_batch_planned(burst);
    })
}

/// [`timed_parallel_run`] where every worker accumulates its consecutive
/// unites into planner-ingested bursts
/// ([`dsu_harness::run_shards_planned`]) — the planned contender of the
/// criterion throughput group, measuring the *same* burst-buffering
/// harness as the e04 planned row.
pub fn timed_parallel_run_planned<D: concurrent_dsu::ConcurrentUnionFind>(
    dsu: &D,
    workload: &Workload,
    threads: usize,
) -> std::time::Duration {
    dsu_harness::run_shards_planned(dsu, workload, threads).elapsed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        assert_eq!(standard_workload(64, 100), standard_workload(64, 100));
    }

    #[test]
    fn median_picks_the_middle() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 3.0, 2.0]), 3.0, "upper middle for even lengths");
        assert_eq!(median(&mut [7.0]), 7.0);
    }

    #[test]
    fn ingest_runners_cover_every_edge() {
        let arrivals = standard_edge_batches(256, 16, 32, 1.1);
        let per_op: concurrent_dsu::Dsu = concurrent_dsu::Dsu::new(256);
        let batched: concurrent_dsu::Dsu = concurrent_dsu::Dsu::new(256);
        let a = timed_ingest_per_op(&per_op, &arrivals.batches, 2);
        let b = timed_ingest_batched(&batched, &arrivals.batches, 2);
        assert!(a.as_nanos() > 0 && b.as_nanos() > 0);
        // Confluence: both ingestion shapes produce the same partition.
        assert_eq!(per_op.set_count(), batched.set_count());
        assert_eq!(per_op.labels_snapshot(), batched.labels_snapshot());
    }

    #[test]
    fn timed_run_executes() {
        let dsu: concurrent_dsu::Dsu = concurrent_dsu::Dsu::new(64);
        let w = standard_workload(64, 500);
        let d = timed_parallel_run(&dsu, &w, 2);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn tuned_and_cached_ingest_agree_with_plain() {
        use concurrent_dsu::WaveDepth;
        let arrivals = rehit_edge_batches(256, 12, 40, 1.1, 0.4);
        let plain: concurrent_dsu::Dsu = concurrent_dsu::Dsu::new(256);
        timed_ingest_batched(&plain, &arrivals.batches, 1);
        for depth in [WaveDepth::Two, WaveDepth::Three] {
            for cached in [false, true] {
                let dsu: concurrent_dsu::Dsu = concurrent_dsu::Dsu::new(256);
                let d = timed_ingest_batched_tuned(
                    &dsu,
                    &arrivals.batches,
                    2,
                    BatchTuning::new().wave_depth(depth),
                    cached,
                );
                assert!(d.as_nanos() > 0);
                assert_eq!(dsu.set_count(), plain.set_count(), "depth {depth:?} cached {cached}");
                assert_eq!(dsu.labels_snapshot(), plain.labels_snapshot());
            }
        }
    }

    #[test]
    fn cached_parallel_run_matches_plain_partition() {
        let w = standard_workload(128, 2000);
        let plain: concurrent_dsu::Dsu = concurrent_dsu::Dsu::new(128);
        timed_parallel_run(&plain, &w, 2);
        let cached: concurrent_dsu::Dsu = concurrent_dsu::Dsu::new(128);
        let d = timed_parallel_run_cached(&cached, &w, 2);
        assert!(d.as_nanos() > 0);
        assert_eq!(cached.set_count(), plain.set_count());
        assert_eq!(cached.labels_snapshot(), plain.labels_snapshot());
    }

    #[test]
    fn ingest_stats_attribute_cache_traffic() {
        let arrivals = rehit_edge_batches(512, 8, 64, 1.2, 0.5);
        let dsu: concurrent_dsu::Dsu = concurrent_dsu::Dsu::new(512);
        let on = ingest_stats_tuned(&dsu, &arrivals.batches, BatchTuning::new(), true);
        assert!(on.cache_hits > 0, "re-hit burst must produce cache hits: {on:?}");
        let dsu2: concurrent_dsu::Dsu = concurrent_dsu::Dsu::new(512);
        let off = ingest_stats_tuned(&dsu2, &arrivals.batches, BatchTuning::new(), false);
        assert_eq!(off.cache_hits + off.cache_stale, 0, "cache-off must not touch the cache");
        let json = stats_json(&on);
        assert!(json.contains("\"cache_hits\""));
        assert!(json.contains("\"prefetch_waves\""));
    }

    #[test]
    fn planned_ingest_matches_plain_partition() {
        let arrivals = dup_edge_batches(256, 16, 32, 1.1, 0.4);
        let plain: concurrent_dsu::Dsu = concurrent_dsu::Dsu::new(256);
        let planned: concurrent_dsu::Dsu = concurrent_dsu::Dsu::new(256);
        let a = timed_ingest_batched(&plain, &arrivals.batches, 2);
        let b = timed_ingest_batched_planned(&planned, &arrivals.batches, 2);
        assert!(a.as_nanos() > 0 && b.as_nanos() > 0);
        assert_eq!(planned.set_count(), plain.set_count());
        assert_eq!(planned.labels_snapshot(), plain.labels_snapshot());
        // The planner's counters show up in the instrumented twin, and a
        // dup-injected trace actually exercises the dedup.
        let dsu: concurrent_dsu::Dsu = concurrent_dsu::Dsu::new(256);
        let stats = ingest_stats_tuned(
            &dsu,
            &arrivals.batches,
            BatchTuning::new().planned(concurrent_dsu::PlanTuning::new()),
            false,
        );
        assert!(stats.dup_edges_dropped > 0, "dup-injected trace must dedup: {stats:?}");
        assert!(stats.bucket_count > 0);
        let json = stats_json(&stats);
        assert!(json.contains("\"dup_edges_dropped\""));
        assert!(json.contains("\"spill_edges\""));
        // Retry hygiene counters render too. The batch path may retry even
        // single-threaded (a wave-gathered root goes stale when an earlier
        // link in the same burst moves it), but an unfaulted run must
        // attribute exactly zero injected faults.
        assert!(json.contains("\"cas_retries\""));
        assert!(json.contains("\"faults_injected\": 0"));
    }

    #[test]
    fn planned_parallel_run_matches_plain_partition() {
        let w = standard_workload(128, 2000);
        let plain: concurrent_dsu::Dsu = concurrent_dsu::Dsu::new(128);
        timed_parallel_run(&plain, &w, 2);
        let planned: concurrent_dsu::Dsu = concurrent_dsu::Dsu::new(128);
        let d = timed_parallel_run_planned(&planned, &w, 2);
        assert!(d.as_nanos() > 0);
        assert_eq!(planned.set_count(), plain.set_count());
        assert_eq!(planned.labels_snapshot(), plain.labels_snapshot());
    }

    #[test]
    fn dup_batches_zero_matches_standard() {
        assert_eq!(dup_edge_batches(512, 4, 16, 1.0, 0.0), standard_edge_batches(512, 4, 16, 1.0));
    }

    /// `ElementDist::ShardSkew` hardcodes the sharded store's 256-shard
    /// clamp (the workloads crate has no dependency edge to assert it);
    /// this cross-crate check trips if `ShardSpec::MAX_SHARDS` ever moves
    /// without the generator following.
    #[test]
    fn shard_skew_clamp_matches_shard_spec() {
        assert_eq!(concurrent_dsu::ShardSpec::MAX_SHARDS, 256);
        assert_eq!(concurrent_dsu::ShardSpec::with_shards(512).shards(), 256);
    }

    #[test]
    fn fingerprint_is_sane() {
        let (cpus, arch, os) = machine_fingerprint();
        assert!(cpus >= 1);
        assert!(!arch.is_empty() && !os.is_empty());
        let json = machine_fingerprint_json();
        assert!(json.contains("\"cpus\"") && json.contains(arch));
    }
}

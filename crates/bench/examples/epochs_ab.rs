//! Epoch-layer A/B: what does versioning cost when you don't use it, when
//! you hold it ready, and what does it buy when you do?
//!
//! **Part 1 — snapshot overhead.** Per universe, the same pipeline (burst
//! ingest then a query-only storm, all timed) runs on three arms:
//!
//! * **plain** — `GrowableDsu` on the default segmented store: the
//!   unversioned baseline, paying zero epoch machinery.
//! * **versioned** — [`VersionedDsu`] with *no* snapshots taken: measures
//!   the standing cost of the [`EpochStore`] directory indirection alone.
//!   The attribution block asserts its fork/copy counters stay zero.
//! * **snap** — `snapshot_every = 1`: a copy-on-write guard point before
//!   every burst (the `ingest_batch` auto-snap policy), the worst-case
//!   cadence. This is the price of "always able to roll back one batch".
//!
//! **Part 2 — the first payoff.** Exact percolation thresholds per grid:
//!
//! * **linear** — [`percolation_threshold`]: open sites one by one,
//!   checking connectivity after each (exact by construction).
//! * **batched** — [`percolation_threshold_batched`]: burst ingestion,
//!   threshold rounded up to the burst boundary (fast but *inexact* —
//!   shown as the floor exactness has to be paid for).
//! * **binsearch** — [`percolation_threshold_versioned`]: burst ingestion
//!   plus binary search over snapshot forks inside the crossing burst,
//!   recovering the exact one-by-one answer without linear re-sweeps.
//!
//! Samples interleave round-robin across arms so host drift cancels;
//! per-cell medians and speedups vs the first arm are printed and, with
//! `--json PATH`, archived in the row shape `check_bench_regression.py`
//! gates (`BENCH_PR10.json`). Honest negatives welcome: versioning is
//! opt-in, so Part 1 is allowed to cost — the archive is what keeps the
//! cost visible.
//!
//! Run: `cargo run --release -p dsu-bench --example epochs_ab --
//!       [--samples 5] [--json out.json] [--quick true]`

use std::fmt::Write as _;
use std::num::NonZeroUsize;
use std::time::Instant;

use concurrent_dsu::epoch::EpochFork;
use concurrent_dsu::{GrowableDsu, TwoTrySplit, VersionedDsu};
use dsu_bench::{machine_fingerprint_json, median, standard_edge_batches};
use dsu_graph::percolation::{
    percolation_threshold, percolation_threshold_batched, percolation_threshold_versioned,
};
use dsu_harness::Args;
use dsu_workloads::{Op, Workload, WorkloadSpec};

const INGEST_MODES: [&str; 3] = ["plain", "versioned", "snap"];
const PERC_MODES: [&str; 3] = ["linear", "batched", "binsearch"];

struct Probe {
    label: &'static str,
    n: usize,
    batches: Vec<Vec<(usize, usize)>>,
    storm: Workload,
}

fn probes(quick: bool) -> Vec<Probe> {
    // Same shape as flatten_ab: n edges in 1024-edge bursts, then a
    // query-only storm at 2 ops per element. The snap arm guards every
    // burst, so burst count — not edge count — is what it pays per.
    let (n_small, n_big) = if quick { (1 << 13, 1 << 16) } else { (1 << 16, 1 << 20) };
    [("cache-mix", n_small), ("dram-mix", n_big)]
        .into_iter()
        .map(|(label, n)| Probe {
            label,
            n,
            batches: standard_edge_batches(n, n / 1024, 1024, 1.1).batches,
            storm: WorkloadSpec::new(n, 2 * n).unite_fraction(0.0).generate(0xE90C_2016),
        })
        .collect()
}

fn run_storm(find: impl Fn(usize, usize) -> bool, storm: &Workload) {
    for &op in &storm.ops {
        if let Op::SameSet(x, y) = op {
            std::hint::black_box(find(x, y));
        }
    }
}

/// One timed pipeline run of an ingest arm: fresh structure, burst
/// ingest (with the arm's snapshot cadence), query storm. Wall ns.
fn timed_ingest_mode(mode: &str, probe: &Probe) -> f64 {
    let t0 = Instant::now();
    match mode {
        "plain" => {
            let dsu = GrowableDsu::<TwoTrySplit>::with_initial(probe.n);
            for batch in &probe.batches {
                dsu.unite_batch(batch);
            }
            run_storm(|x, y| dsu.same_set(x, y), &probe.storm);
        }
        "versioned" => {
            let dsu: VersionedDsu = VersionedDsu::with_initial(probe.n);
            for batch in &probe.batches {
                dsu.unite_batch(batch);
            }
            run_storm(|x, y| dsu.same_set(x, y), &probe.storm);
        }
        "snap" => {
            let mut dsu: VersionedDsu = VersionedDsu::with_initial(probe.n);
            dsu.set_snapshot_every(NonZeroUsize::new(1));
            for batch in &probe.batches {
                dsu.ingest_batch(batch);
            }
            run_storm(|x, y| dsu.same_set(x, y), &probe.storm);
        }
        _ => unreachable!(),
    }
    t0.elapsed().as_nanos() as f64
}

/// The mechanism check behind the Part 1 timings: the versioned arm with
/// no snapshots must fork nothing (zero CoW anywhere in the run), while
/// the snap-every-burst arm's fork count bounds what the timing gap can
/// legitimately be blamed on.
fn attribution(probe: &Probe) -> String {
    let idle: VersionedDsu = VersionedDsu::with_initial(probe.n);
    for batch in &probe.batches {
        idle.unite_batch(batch);
    }
    let idle_report = idle.dsu().store().epoch_report();
    assert_eq!(
        (idle_report.segments_forked, idle_report.cow_copies),
        (0, 0),
        "an unsnapshotted run forked segments — versioning is not free-when-unused"
    );
    let mut snap: VersionedDsu = VersionedDsu::with_initial(probe.n);
    snap.set_snapshot_every(NonZeroUsize::new(1));
    for batch in &probe.batches {
        snap.ingest_batch(batch);
    }
    let report = snap.dsu().store().epoch_report();
    format!(
        "{{\"probe\":\"{}\",\"n\":{},\"bursts\":{},\"idle_segments_forked\":0,\
         \"idle_cow_copies\":0,\"snap_snapshots_taken\":{},\"snap_segments_forked\":{},\
         \"snap_cow_copies\":{}}}",
        probe.label,
        probe.n,
        probe.batches.len(),
        snap.snapshots_taken(),
        report.segments_forked,
        report.cow_copies
    )
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let samples = args.usize("samples", if quick { 3 } else { 5 });

    let mut rows = String::new();
    let mut attrs = String::new();
    let push_row = |rows: &mut String, n: usize, modes: &[&str], meds: &[f64]| {
        if !rows.is_empty() {
            rows.push(',');
        }
        let _ = write!(rows, "\n    {{\"threads\":1,\"n\":{n}");
        for (i, mode) in modes.iter().enumerate() {
            let speedup = meds[0] / meds[i];
            let _ = write!(
                rows,
                ",\"{mode}_median_ns\":{:.0},\"{mode}_speedup\":{speedup:.4}",
                meds[i]
            );
        }
        rows.push('}');
    };

    for probe in &probes(quick) {
        println!(
            "\n== snapshot overhead: {} (n = {}, {} bursts, {} queries, {} samples) ==",
            probe.label,
            probe.n,
            probe.batches.len(),
            probe.storm.len(),
            samples
        );
        println!("{:>10} {:>14} {:>9}", "mode", "median ns", "vs plain");
        let mut buckets: Vec<Vec<f64>> = vec![Vec::with_capacity(samples); INGEST_MODES.len()];
        for round in 0..samples + 1 {
            for (i, mode) in INGEST_MODES.iter().enumerate() {
                let ns = timed_ingest_mode(mode, probe);
                if round > 0 {
                    // Round 0 is the uncounted warm-up.
                    buckets[i].push(ns);
                }
            }
        }
        let meds: Vec<f64> = buckets.iter_mut().map(|b| median(b)).collect();
        for (i, mode) in INGEST_MODES.iter().enumerate() {
            println!("{:>10} {:>14.0} {:>9.3}", mode, meds[i], meds[0] / meds[i]);
        }
        push_row(&mut rows, probe.n, &INGEST_MODES, &meds);
        let attr = attribution(probe);
        println!("attribution: {attr}");
        if !attrs.is_empty() {
            attrs.push(',');
        }
        let _ = write!(attrs, "\n    {attr}");
    }

    let grids: &[usize] = if quick { &[24, 48] } else { &[64, 128] };
    for &size in grids {
        let batch = size; // one burst per opened row, the natural cadence
        println!(
            "\n== exact percolation threshold: {size}x{size} grid (batch = {batch}, {} samples) ==",
            samples
        );
        println!("{:>10} {:>14} {:>10} {:>7}", "mode", "median ns", "vs linear", "exact");
        let mut buckets: Vec<Vec<f64>> = vec![Vec::with_capacity(samples); PERC_MODES.len()];
        let mut answers = [0.0f64; 3];
        for round in 0..samples + 1 {
            for (i, mode) in PERC_MODES.iter().enumerate() {
                let t0 = Instant::now();
                let p = match *mode {
                    "linear" => percolation_threshold(size, 0xE90C + round as u64),
                    "batched" => percolation_threshold_batched(size, 0xE90C + round as u64, batch),
                    "binsearch" => {
                        percolation_threshold_versioned(size, 0xE90C + round as u64, batch)
                    }
                    _ => unreachable!(),
                };
                if round > 0 {
                    buckets[i].push(t0.elapsed().as_nanos() as f64);
                }
                answers[i] = p;
            }
            // The payoff claim, checked inside the bench: binsearch must
            // reproduce linear's exact threshold on every sample.
            assert_eq!(
                answers[0], answers[2],
                "binary-search threshold diverged from the one-by-one answer"
            );
        }
        let meds: Vec<f64> = buckets.iter_mut().map(|b| median(b)).collect();
        for (i, mode) in PERC_MODES.iter().enumerate() {
            let exact = if answers[i] == answers[0] { "yes" } else { "no" };
            println!("{:>10} {:>14.0} {:>10.3} {:>7}", mode, meds[i], meds[0] / meds[i], exact);
        }
        push_row(&mut rows, size * size, &PERC_MODES, &meds);
    }

    if let Some(path) = args.get("json") {
        let json = format!(
            "{{\n  \"example\": \"epochs_ab\",\n  \"machine\": {},\n  \"samples\": {samples},\n  \
             \"results\": [{rows}\n  ],\n  \"attribution\": [{attrs}\n  ]\n}}\n",
            machine_fingerprint_json()
        );
        std::fs::write(path, json).expect("write json");
        println!("wrote {path}");
    }
}

//! Interleaved A/B comparison of the lock-free keyed layer vs. the
//! `RwLock<HashMap>` facade it replaces.
//!
//! Both contenders resolve the **same keyed entity-resolution trace**
//! (string keys, insert-heavy churn, recency-biased revisits — the
//! `KeyedSpec` shape no dense array workload can express) sharded
//! round-robin over `p` threads: `KeyedDsu` runs its lock-free sharded id
//! table over the packed core; `LockedKeyedDsu` is the deployment-shaped
//! baseline (optd's memo guards group unions with exactly this structure),
//! given every reasonable advantage — shared read guards for queries,
//! rank + full-compression unions, one guard per batch. Samples alternate
//! back to back so host drift cancels; per-thread-count medians and the
//! locked/keyed throughput ratio are printed and, with `--json PATH`,
//! written out for archiving (`BENCH_PR7.json`) or CI artifacts.
//!
//! A second trace axis (`--mode sparse`) swaps string keys for sparse
//! 64-bit keys: cheaper hashing, no heap traffic — the axis that isolates
//! how much of the gap is the lock versus the `String` clone on claim.
//!
//! Run: `cargo run --release -p dsu-bench --example keyed_ab --
//!       [--ops 400000] [--fresh 0.4] [--merges 0.7] [--window 4096]
//!       [--mode strings|sparse] [--samples 9] [--threads 1,2,4,8]
//!       [--json out.json] [--quick true]`

use std::fmt::Write as _;
use std::hash::Hash;
use std::time::{Duration, Instant};

use concurrent_dsu::KeyedDsu;
use dsu_baselines::LockedKeyedDsu;
use dsu_bench::{machine_fingerprint_json, median};
use dsu_harness::Args;
use dsu_workloads::{KeyedOp, KeyedSpec, KeyedWorkload};

/// Runs `shards[t]` on thread `t` against `apply`; returns wall time from
/// the barrier release (taken before the release, like every timed runner
/// in dsu-bench, so a descheduled main thread cannot deflate it).
fn timed_keyed_run<K: Sync, D: Sync>(
    dsu: &D,
    shards: &[Vec<KeyedOp<K>>],
    apply: impl Fn(&D, &KeyedOp<K>) + Copy + Send,
) -> Duration {
    let barrier = std::sync::Barrier::new(shards.len() + 1);
    let started = std::thread::scope(|s| {
        for shard in shards {
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for op in shard {
                    apply(dsu, op);
                }
            });
        }
        let t0 = Instant::now();
        barrier.wait();
        t0
    });
    started.elapsed()
}

fn sample_pair<K: Hash + Eq + Clone + Sync + Send>(
    shards: &[Vec<KeyedOp<K>>],
) -> (Duration, Duration) {
    let locked: LockedKeyedDsu<K> = LockedKeyedDsu::new();
    let locked_t = timed_keyed_run(&locked, shards, |d, op| match op {
        KeyedOp::Merge(a, b) => {
            d.merge_keys(a, b);
        }
        KeyedOp::SameSet(a, b) => {
            d.same_set(a, b);
        }
    });
    let keyed: KeyedDsu<K> = KeyedDsu::new();
    let keyed_t = timed_keyed_run(&keyed, shards, |d, op| match op {
        KeyedOp::Merge(a, b) => {
            d.merge_keys(a, b);
        }
        KeyedOp::SameSet(a, b) => {
            d.same_set(a, b);
        }
    });
    // Cross-check while both structures are still warm: identical final
    // populations, or the timing comparison measured different work.
    assert_eq!(keyed.key_count(), locked.key_count(), "contenders diverged on keys");
    assert_eq!(keyed.set_count(), locked.set_count(), "contenders diverged on sets");
    (locked_t, keyed_t)
}

fn run_mode<K: Hash + Eq + Clone + Sync + Send>(
    trace: &KeyedWorkload<K>,
    threads: &[usize],
    samples: usize,
    rows: &mut String,
) {
    println!("{:>7} {:>14} {:>14} {:>8}", "threads", "locked ns", "keyed ns", "speedup");
    for &p in threads {
        let shards = trace.shard(p);
        // Warm-up one run of each contender.
        sample_pair(&shards);
        let mut locked_ns = Vec::with_capacity(samples);
        let mut keyed_ns = Vec::with_capacity(samples);
        for _ in 0..samples {
            let (l, k) = sample_pair(&shards);
            locked_ns.push(l.as_nanos() as f64);
            keyed_ns.push(k.as_nanos() as f64);
        }
        let (lm, km) = (median(&mut locked_ns), median(&mut keyed_ns));
        println!("{:>7} {:>14.0} {:>14.0} {:>8.3}", p, lm, km, lm / km);
        if !rows.is_empty() {
            rows.push(',');
        }
        let _ = write!(
            rows,
            "\n    {{\"threads\":{p},\"locked_median_ns\":{lm:.0},\"keyed_median_ns\":{km:.0},\
             \"keyed_speedup\":{:.4}}}",
            lm / km
        );
    }
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let samples = args.usize("samples", if quick { 5 } else { 9 });
    let ops = args.usize("ops", if quick { 1 << 15 } else { 400_000 });
    let fresh = args.f64("fresh", 0.4);
    let merges = args.f64("merges", 0.7);
    let window = args.usize("window", 4096);
    let mode = args.get("mode").unwrap_or("strings").to_string();
    let threads = args.thread_ladder();

    let spec =
        KeyedSpec::new(ops).merge_fraction(merges).fresh_fraction(fresh).revisit_window(window);
    let indices = spec.generate(0x4B45);
    println!(
        "{ops} keyed ops ({mode}), {:.0}% merges, {:.0}% fresh keys, window {window}, \
         {} distinct keys, {samples} interleaved samples per mode",
        merges * 100.0,
        fresh * 100.0,
        indices.distinct_keys
    );

    let mut rows = String::new();
    match mode.as_str() {
        "sparse" => run_mode(&indices.into_sparse_u64(0x4B45), &threads, samples, &mut rows),
        "strings" => {
            run_mode(&indices.into_strings("record", 0x4B45), &threads, samples, &mut rows)
        }
        other => panic!("--mode expects strings|sparse, got {other:?}"),
    }

    if let Some(path) = args.get("json") {
        let json = format!(
            "{{\n  \"example\": \"keyed_ab\",\n  \"machine\": {},\n  \
             \"workload\": {{\"n\": {ops}, \"mode\": \"{mode}\", \"fresh\": {fresh}, \
             \"merges\": {merges}, \"window\": {window}, \"distinct_keys\": {}, \
             \"seed\": \"0x4B45\"}},\n  \"samples\": {samples},\n  \"results\": [{rows}\n  ]\n}}\n",
            machine_fingerprint_json(),
            indices.distinct_keys
        );
        std::fs::write(path, json).expect("write json");
        println!("wrote {path}");
    }
}

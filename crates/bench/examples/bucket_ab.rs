//! Interleaved A/B of the ingestion planner: planned vs unplanned batch
//! ingestion vs per-op dispatch, on a clean Zipf trace *and* a dup-heavy
//! twin.
//!
//! Six contenders, two workloads x three ingestion modes, all through the
//! same burst-cursor scheduler:
//!
//! * `plain` / `dup_plain` — `unite_batch` per burst (the PR 2 bulk path,
//!   wave depth 2, no planner): the baseline both A/B ratios divide by;
//! * `planned` / `dup_planned` — `unite_batch_planned` per burst (the
//!   ingestion planner: intra-batch dedup + block-local radix buckets +
//!   spillover pass, then the same gather waves per bucket);
//! * `perop` / `dup_perop` — a `unite` call per edge (the serial-find
//!   baseline, for scale).
//!
//! The `dup_*` arms ingest the same spec with
//! [`EdgeBatchSpec::duplicate_fraction`] > 0 (exact-copy injection), so
//! the dedup win/loss is measurable independently of Zipf skew. Samples
//! alternate round-robin so host drift cancels; per-thread-count medians
//! and planned/plain speedups are printed and, with `--json PATH`,
//! archived (`BENCH_PR5.json`) with the machine fingerprint and
//! single-threaded `OpStats` attribution (`dup_edges_dropped` /
//! `bucket_count` / `spill_edges` next to the read and CAS counters), so
//! a win or a loss is traced to counters rather than guessed at.
//!
//! Size matters twice over here: run once DRAM-resident (`--n 4194304`,
//! the default) and once cache-resident (`--n 262144`) — bucketing exists
//! to shrink each wave's working set below the LLC, so a cache-resident
//! store is exactly where it can only lose its planning overhead (see the
//! ingestion-plan selection guide in `concurrent_dsu::ingest`).
//!
//! Run: `cargo run --release -p dsu-bench --example bucket_ab --
//!       [--samples 11] [--n 4194304] [--batches 2048] [--batch-size 1024]
//!       [--zipf 1.0] [--dup 0.25] [--threads 1,2,4,8] [--json out.json]
//!       [--quick true]`
//!
//! [`EdgeBatchSpec::duplicate_fraction`]:
//!     dsu_workloads::EdgeBatchSpec::duplicate_fraction

use std::fmt::Write as _;

use concurrent_dsu::{BatchTuning, Dsu, PlanTuning, TwoTrySplit};
use dsu_bench::{
    dup_edge_batches, ingest_stats_tuned, machine_fingerprint_json, median, standard_edge_batches,
    stats_json, timed_ingest_batched, timed_ingest_batched_planned, timed_ingest_per_op,
};
use dsu_harness::Args;
use dsu_workloads::EdgeBatches;

/// Arm names in sample order: clean trace then dup-heavy trace, each
/// plain / planned / per-op.
const ARMS: [&str; 6] = ["plain", "planned", "perop", "dup_plain", "dup_planned", "dup_perop"];

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let samples = args.usize("samples", if quick { 5 } else { 11 });
    let n = args.usize("n", if quick { 1 << 14 } else { 1 << 22 });
    let batches = args.usize("batches", if quick { 1 << 6 } else { 1 << 11 });
    let batch_size = args.usize("batch-size", 1 << 10);
    let zipf = args.f64("zipf", 1.0);
    let dup = args.f64("dup", 0.25);
    let threads = args.thread_ladder();

    let clean = standard_edge_batches(n, batches, batch_size, zipf);
    let duppy = dup_edge_batches(n, batches, batch_size, zipf, dup);
    let m = clean.total_edges();
    println!(
        "n = {n}, {batches} bursts x {batch_size} edges = {m} edges, zipf {zipf}, \
         dup arm {dup}, {samples} interleaved samples per arm"
    );

    // Arm index -> one timed run at thread count p, on a fresh structure.
    let run_arm = |arm: usize, p: usize| -> f64 {
        let trace: &EdgeBatches = if arm < 3 { &clean } else { &duppy };
        let dsu: Dsu<TwoTrySplit> = Dsu::new(n);
        let d = match arm % 3 {
            0 => timed_ingest_batched(&dsu, &trace.batches, p),
            1 => timed_ingest_batched_planned(&dsu, &trace.batches, p),
            _ => timed_ingest_per_op(&dsu, &trace.batches, p),
        };
        d.as_nanos() as f64
    };

    println!(
        "{:>7} {:>13} {:>13} {:>13} {:>13} {:>13} {:>13} {:>9} {:>9}",
        "threads",
        "plain",
        "planned",
        "perop",
        "dup_plain",
        "dup_planned",
        "dup_perop",
        "plan_x",
        "dplan_x"
    );

    let mut rows = String::new();
    for &p in &threads {
        for arm in 0..ARMS.len() {
            run_arm(arm, p); // warm-up
        }
        let mut ns: [Vec<f64>; 6] = Default::default();
        for _ in 0..samples {
            for (arm, samples_vec) in ns.iter_mut().enumerate() {
                samples_vec.push(run_arm(arm, p));
            }
        }
        let med: Vec<f64> = ns.iter_mut().map(|v| median(v)).collect();
        let (plain, planned, perop) = (med[0], med[1], med[2]);
        let (dplain, dplanned, dperop) = (med[3], med[4], med[5]);
        println!(
            "{:>7} {:>13.0} {:>13.0} {:>13.0} {:>13.0} {:>13.0} {:>13.0} {:>9.3} {:>9.3}",
            p,
            plain,
            planned,
            perop,
            dplain,
            dplanned,
            dperop,
            plain / planned,
            dplain / dplanned
        );
        if !rows.is_empty() {
            rows.push(',');
        }
        let _ = write!(
            rows,
            "\n    {{\"threads\":{p},\"n\":{n},\"plain_median_ns\":{plain:.0},\
             \"planned_median_ns\":{planned:.0},\"perop_median_ns\":{perop:.0},\
             \"dup_plain_median_ns\":{dplain:.0},\"dup_planned_median_ns\":{dplanned:.0},\
             \"dup_perop_median_ns\":{dperop:.0},\"planned_speedup\":{:.4},\
             \"dup_planned_speedup\":{:.4},\"batched_speedup\":{:.4}}}",
            plain / planned,
            dplain / dplanned,
            perop / plain
        );
    }

    // Single-threaded attribution: the counters that explain the deltas.
    let mut attribution = String::new();
    for (name, trace, planned) in [
        ("plain", &clean, false),
        ("planned", &clean, true),
        ("dup_plain", &duppy, false),
        ("dup_planned", &duppy, true),
    ] {
        let dsu: Dsu<TwoTrySplit> = Dsu::new(n);
        let tuning = if planned {
            BatchTuning::new().planned(PlanTuning::new())
        } else {
            BatchTuning::new()
        };
        let stats = ingest_stats_tuned(&dsu, &trace.batches, tuning, false);
        println!(
            "{name}: reads {} dup_dropped {} buckets {} spill {}",
            stats.reads, stats.dup_edges_dropped, stats.bucket_count, stats.spill_edges
        );
        if !attribution.is_empty() {
            attribution.push(',');
        }
        let _ = write!(attribution, "\n    \"{name}\": {}", stats_json(&stats));
    }

    if let Some(path) = args.get("json") {
        let json = format!(
            "{{\n  \"example\": \"bucket_ab\",\n  \"machine\": {},\n  \"workload\": {{\"n\": {n}, \
             \"batches\": {batches}, \"batch_size\": {batch_size}, \"zipf\": {zipf}, \
             \"dup\": {dup}, \"seed\": \"0xBA7C\"}},\n  \"samples\": {samples},\n  \
             \"results\": [{rows}\n  ],\n  \"attribution_1thread\": {{{attribution}\n  }}\n}}\n",
            machine_fingerprint_json(),
        );
        std::fs::write(path, json).expect("write json");
        println!("wrote {path}");
    }
}

//! Work-count cross-check and phase attribution for packed vs. flat vs.
//! sharded.
//!
//! Runs the standard mixed workload single-threaded on all layouts with
//! full `OpStats` instrumentation. The counters (loop iterations, reads,
//! CAS outcomes) must be *identical* — same ids, same decisions — so any
//! timing difference is pure per-access cost, attributed separately to the
//! mixed phase and a pure-find storm.
//!
//! Run: `cargo run --release -p dsu-bench --example store_diag [log2_n]`

use concurrent_dsu::{Dsu, DsuStore, FlatStore, OpStats, PackedStore, ShardedStore, TwoTrySplit};
use dsu_bench::standard_workload;
use std::time::Instant;

fn run<S: DsuStore>(label: &str) {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(17);
    let n = 1usize << n;
    let m = 2 * n;
    let w = standard_workload(n, m);
    let dsu: Dsu<TwoTrySplit, S> = Dsu::new(n);
    let mut stats = OpStats::default();
    // Split workload into unite-only and query-only passes for attribution.
    let t0 = Instant::now();
    for op in &w.ops {
        match *op {
            dsu_workloads::Op::Unite(x, y) => {
                dsu.unite_with(x, y, &mut stats);
            }
            dsu_workloads::Op::SameSet(x, y) => {
                dsu.same_set_with(x, y, &mut stats);
            }
        }
    }
    let total = t0.elapsed();
    // Pure find storm afterwards (paths now shallow).
    let t1 = Instant::now();
    let mut acc = 0usize;
    for i in 0..n {
        acc = acc.wrapping_add(dsu.find(i));
    }
    let finds = t1.elapsed();
    std::hint::black_box(acc);
    println!(
        "{label}: mixed {:>12?} finds {:>12?} | iters {} reads {} cas_ok {} cas_fail {} links_ok {} links_fail {}",
        total, finds, stats.loop_iters, stats.reads, stats.compact_cas_ok,
        stats.compact_cas_fail, stats.links_ok, stats.links_fail
    );
}

fn main() {
    for _ in 0..3 {
        run::<PackedStore>("packed ");
        run::<FlatStore>("flat   ");
        run::<ShardedStore>("sharded");
    }
}

//! Work-count cross-check and phase attribution for packed vs. flat vs.
//! sharded.
//!
//! Runs the standard mixed workload single-threaded on all layouts with
//! full `OpStats` instrumentation. The counters (loop iterations, reads,
//! CAS outcomes — and, for the cached phase, cache hits/stale) must be
//! *identical* — same ids, same decisions — so any timing difference is
//! pure per-access cost, attributed separately to the mixed phase, a
//! pure-find storm, a hot-root-cached find storm (the storm repeated
//! through a `Dsu::cached` session: its hit/stale counters say exactly
//! how much walk work the cache replaced with validation loads), and a
//! planned-ingestion phase (a dup-heavy burst trace through the ingestion
//! planner vs the plain batch path: `dup_edges_dropped` / `bucket_count`
//! / `spill_edges` next to the read delta say exactly what the planner
//! thinned and how it carved the index space).
//!
//! Run: `cargo run --release -p dsu-bench --example store_diag [log2_n]`

use concurrent_dsu::{
    BatchTuning, Dsu, DsuStore, FlatStore, OpStats, PackedStore, PlanTuning, ShardedStore,
    TwoTrySplit,
};
use dsu_bench::{dup_edge_batches, standard_workload};
use std::time::Instant;

fn run<S: DsuStore>(label: &str) {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(17);
    let n = 1usize << n;
    let m = 2 * n;
    let w = standard_workload(n, m);
    let dsu: Dsu<TwoTrySplit, S> = Dsu::new(n);
    let mut stats = OpStats::default();
    // Split workload into unite-only and query-only passes for attribution.
    let t0 = Instant::now();
    for op in &w.ops {
        match *op {
            dsu_workloads::Op::Unite(x, y) => {
                dsu.unite_with(x, y, &mut stats);
            }
            dsu_workloads::Op::SameSet(x, y) => {
                dsu.same_set_with(x, y, &mut stats);
            }
        }
    }
    let total = t0.elapsed();
    // Pure find storm afterwards (paths now shallow).
    let t1 = Instant::now();
    let mut acc = 0usize;
    for i in 0..n {
        acc = acc.wrapping_add(dsu.find(i));
    }
    let finds = t1.elapsed();
    std::hint::black_box(acc);
    // The same storm through a hot-root cache session: every element is
    // touched once (worst case for the cache — no re-hits except roots),
    // so the hit/stale split reports exactly what fraction of entries the
    // direct-mapped table could retain.
    let mut cached_stats = OpStats::default();
    let mut session = dsu.cached();
    let t2 = Instant::now();
    let mut acc2 = 0usize;
    for i in 0..n {
        acc2 = acc2.wrapping_add(session.find_with(i, &mut cached_stats));
    }
    let cached_finds = t2.elapsed();
    std::hint::black_box(acc2);
    // Planned-ingestion phase: a dup-heavy Zipf burst trace through the
    // ingestion planner on a fresh structure, next to the plain batch
    // path on another — work counters per arm, so every planner delta
    // (reads saved by dedup, the bucket/spill split) is attributable.
    let trace = dup_edge_batches(n, (m / 1024).max(1), 1024, 1.0, 0.25);
    let plain_dsu: Dsu<TwoTrySplit, S> = Dsu::new(n);
    let mut plain_batch = OpStats::default();
    let t3 = Instant::now();
    for burst in &trace.batches {
        plain_dsu.unite_batch_with(burst, &mut plain_batch);
    }
    let plain_ingest = t3.elapsed();
    let planned_dsu: Dsu<TwoTrySplit, S> = Dsu::new(n);
    let mut planned_batch = OpStats::default();
    let planned_tuning = BatchTuning::new().planned(PlanTuning::new());
    let t4 = Instant::now();
    for burst in &trace.batches {
        planned_dsu.unite_batch_tuned_with(burst, planned_tuning, None, &mut planned_batch);
    }
    let planned_ingest = t4.elapsed();
    println!(
        "{label}: mixed {:>12?} finds {:>12?} cached-finds {:>12?} | iters {} reads {} cas_ok {} \
         cas_fail {} links_ok {} links_fail {} | cached: reads {} hits {} stale {}",
        total,
        finds,
        cached_finds,
        stats.loop_iters,
        stats.reads,
        stats.compact_cas_ok,
        stats.compact_cas_fail,
        stats.links_ok,
        stats.links_fail,
        cached_stats.reads,
        cached_stats.cache_hits,
        cached_stats.cache_stale
    );
    println!(
        "{label}: ingest plain {:>12?} reads {} | planned {:>12?} reads {} dup_dropped {} \
         buckets {} spill {}",
        plain_ingest,
        plain_batch.reads,
        planned_ingest,
        planned_batch.reads,
        planned_batch.dup_edges_dropped,
        planned_batch.bucket_count,
        planned_batch.spill_edges
    );
}

fn main() {
    for _ in 0..3 {
        run::<PackedStore>("packed ");
        run::<FlatStore>("flat   ");
        run::<ShardedStore>("sharded");
    }
}

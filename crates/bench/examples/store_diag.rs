//! Work-count cross-check and phase attribution for packed vs. flat vs.
//! sharded.
//!
//! Runs the standard mixed workload single-threaded on all layouts with
//! full `OpStats` instrumentation. The counters (loop iterations, reads,
//! CAS outcomes — and, for the cached phase, cache hits/stale) must be
//! *identical* — same ids, same decisions — so any timing difference is
//! pure per-access cost, attributed separately to the mixed phase, a
//! pure-find storm, and a hot-root-cached find storm (the storm repeated
//! through a `Dsu::cached` session: its hit/stale counters say exactly
//! how much walk work the cache replaced with validation loads).
//!
//! Run: `cargo run --release -p dsu-bench --example store_diag [log2_n]`

use concurrent_dsu::{Dsu, DsuStore, FlatStore, OpStats, PackedStore, ShardedStore, TwoTrySplit};
use dsu_bench::standard_workload;
use std::time::Instant;

fn run<S: DsuStore>(label: &str) {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(17);
    let n = 1usize << n;
    let m = 2 * n;
    let w = standard_workload(n, m);
    let dsu: Dsu<TwoTrySplit, S> = Dsu::new(n);
    let mut stats = OpStats::default();
    // Split workload into unite-only and query-only passes for attribution.
    let t0 = Instant::now();
    for op in &w.ops {
        match *op {
            dsu_workloads::Op::Unite(x, y) => {
                dsu.unite_with(x, y, &mut stats);
            }
            dsu_workloads::Op::SameSet(x, y) => {
                dsu.same_set_with(x, y, &mut stats);
            }
        }
    }
    let total = t0.elapsed();
    // Pure find storm afterwards (paths now shallow).
    let t1 = Instant::now();
    let mut acc = 0usize;
    for i in 0..n {
        acc = acc.wrapping_add(dsu.find(i));
    }
    let finds = t1.elapsed();
    std::hint::black_box(acc);
    // The same storm through a hot-root cache session: every element is
    // touched once (worst case for the cache — no re-hits except roots),
    // so the hit/stale split reports exactly what fraction of entries the
    // direct-mapped table could retain.
    let mut cached_stats = OpStats::default();
    let mut session = dsu.cached();
    let t2 = Instant::now();
    let mut acc2 = 0usize;
    for i in 0..n {
        acc2 = acc2.wrapping_add(session.find_with(i, &mut cached_stats));
    }
    let cached_finds = t2.elapsed();
    std::hint::black_box(acc2);
    println!(
        "{label}: mixed {:>12?} finds {:>12?} cached-finds {:>12?} | iters {} reads {} cas_ok {} \
         cas_fail {} links_ok {} links_fail {} | cached: reads {} hits {} stale {}",
        total,
        finds,
        cached_finds,
        stats.loop_iters,
        stats.reads,
        stats.compact_cas_ok,
        stats.compact_cas_fail,
        stats.links_ok,
        stats.links_fail,
        cached_stats.reads,
        cached_stats.cache_hits,
        cached_stats.cache_stale
    );
}

fn main() {
    for _ in 0..3 {
        run::<PackedStore>("packed ");
        run::<FlatStore>("flat   ");
        run::<ShardedStore>("sharded");
    }
}

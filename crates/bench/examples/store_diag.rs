//! Work-count cross-check and phase attribution for packed vs. flat vs.
//! sharded.
//!
//! Runs the standard mixed workload single-threaded on all layouts with
//! full `OpStats` instrumentation. The counters (loop iterations, reads,
//! CAS outcomes — and, for the cached phase, cache hits/stale) must be
//! *identical* — same ids, same decisions — so any timing difference is
//! pure per-access cost, attributed separately to the mixed phase, a
//! pure-find storm, a hot-root-cached find storm (the storm repeated
//! through a `Dsu::cached` session: its hit/stale counters say exactly
//! how much walk work the cache replaced with validation loads), and a
//! planned-ingestion phase (a dup-heavy burst trace through the ingestion
//! planner vs the plain batch path: `dup_edges_dropped` / `bucket_count`
//! / `spill_edges` next to the read delta say exactly what the planner
//! thinned and how it carved the index space).
//!
//! A final fault-attribution phase re-runs the mixed workload through a
//! `FaultyStore` wrapper at a fixed injection rate: `faults_injected` is
//! what the plan charged, `cas_retries` is what the retry loops paid, and
//! the unfaulted phases above assert both counters are **exactly zero** —
//! retries on a clean single-threaded run would mean the store is
//! contending with itself.
//!
//! A tuner-attribution phase drives the self-tuning dispatcher
//! (`TunedDsu`) through the same mixed workload in each `DSU_TUNER` mode
//! and prints its decision trail: `tuner_samples` (ops profiled on the
//! sampling default), `tuner_switches` (dispatch moves committed), and
//! the chosen `<find>/<link>` tag — the three numbers a harness needs to
//! attribute a tuned run's throughput to the variant that actually
//! served it.
//!
//! An epoch-attribution phase drives a `VersionedDsu` through a guarded
//! burst trace (snapshot before every burst, one rollback, one rejected
//! speculative batch) and reconciles the live `OpStats` stream with the
//! structure's lifetime counters and the store's copy-on-write report —
//! while every *unversioned* phase above asserts all four epoch columns
//! (`snapshots_taken` / `segments_forked` / `rollbacks` / `cow_copies`)
//! are **exactly zero**: versioning must cost nothing when unused.
//!
//! Run: `cargo run --release -p dsu-bench --example store_diag [log2_n]`

use concurrent_dsu::epoch::EpochFork;
use concurrent_dsu::{
    BatchTuning, Dsu, DsuStore, FaultPlan, FaultyStore, FlatStore, GrowableStore, KeyedDsu,
    OpStats, PackedSegmentedStore, PackedStore, PlanTuning, SegmentedStore, ShardSpec,
    ShardedSegmentedStore, ShardedStore, TunedDsu, TunerMode, TwoTrySplit, Variant, VersionedDsu,
};
use dsu_bench::{dup_edge_batches, standard_workload};
use dsu_workloads::{KeyedOp, KeyedSpec};
use std::time::Instant;

fn run<S: DsuStore>(label: &str) {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(17);
    let n = 1usize << n;
    let m = 2 * n;
    let w = standard_workload(n, m);
    let dsu: Dsu<TwoTrySplit, S> = Dsu::new(n);
    let mut stats = OpStats::default();
    // Split workload into unite-only and query-only passes for attribution.
    let t0 = Instant::now();
    for op in &w.ops {
        match *op {
            dsu_workloads::Op::Unite(x, y) => {
                dsu.unite_with(x, y, &mut stats);
            }
            dsu_workloads::Op::SameSet(x, y) => {
                dsu.same_set_with(x, y, &mut stats);
            }
        }
    }
    let total = t0.elapsed();
    // Pure find storm afterwards (paths now shallow).
    let t1 = Instant::now();
    let mut acc = 0usize;
    for i in 0..n {
        acc = acc.wrapping_add(dsu.find(i));
    }
    let finds = t1.elapsed();
    std::hint::black_box(acc);
    // The same storm through a hot-root cache session: every element is
    // touched once (worst case for the cache — no re-hits except roots),
    // so the hit/stale split reports exactly what fraction of entries the
    // direct-mapped table could retain.
    let mut cached_stats = OpStats::default();
    let mut session = dsu.cached();
    let t2 = Instant::now();
    let mut acc2 = 0usize;
    for i in 0..n {
        acc2 = acc2.wrapping_add(session.find_with(i, &mut cached_stats));
    }
    let cached_finds = t2.elapsed();
    std::hint::black_box(acc2);
    // Flatten-attribution phase: one sequential sweep on the quiesced
    // mixed-phase structure, then a re-run of the find storm. The sweep's
    // own work lands in `reads` / `compact_cas_*` with the `flatten_*`
    // counters attributing it; the post-sweep storm's `find_hops` proves
    // the depth-≤-1 contract operationally (every find pays at most one
    // hop), and a second sweep must find nothing left to jump.
    let mut flatten_stats = OpStats::default();
    let t2b = Instant::now();
    dsu.flatten_with(&mut flatten_stats);
    let flatten_t = t2b.elapsed();
    let mut post_stats = OpStats::default();
    let t2c = Instant::now();
    let mut acc3 = 0usize;
    for i in 0..n {
        acc3 = acc3.wrapping_add(dsu.find_with(i, &mut post_stats));
    }
    let post_finds = t2c.elapsed();
    std::hint::black_box(acc3);
    println!(
        "{label}: flatten {:>12?} post-finds {:>12?} | passes {} jumps {} cas_lost {} reads {} | \
         mixed hops/find {:.3} post hops/find {:.3}",
        flatten_t,
        post_finds,
        flatten_stats.flatten_passes,
        flatten_stats.flatten_jumps,
        flatten_stats.flatten_cas_lost,
        flatten_stats.reads,
        stats.hops_per_find(),
        post_stats.hops_per_find()
    );
    assert_eq!(flatten_stats.flatten_passes, 1, "{label}: exactly one sweep reported");
    assert_eq!(
        flatten_stats.flatten_cas_lost, 0,
        "{label}: a quiesced single-threaded sweep can lose no CAS"
    );
    assert!(
        post_stats.find_hops <= n as u64,
        "{label}: depth > 1 survived the sweep ({} hops over {n} finds)",
        post_stats.find_hops
    );
    let mut second = OpStats::default();
    dsu.flatten_with(&mut second);
    assert_eq!(second.flatten_jumps, 0, "{label}: second sweep found leftover depth");
    // Shape check through the offline histogram: exactly zero nodes
    // deeper than 1 after a quiesced sweep.
    let hist = concurrent_dsu::viz::depth_histogram(&dsu.parents_snapshot());
    println!("{label}: post-flatten {}", hist.summary());
    assert_eq!(hist.nodes_deeper_than_one(), 0, "{label}: {}", hist.summary());
    // Planned-ingestion phase: a dup-heavy Zipf burst trace through the
    // ingestion planner on a fresh structure, next to the plain batch
    // path on another — work counters per arm, so every planner delta
    // (reads saved by dedup, the bucket/spill split) is attributable.
    let trace = dup_edge_batches(n, (m / 1024).max(1), 1024, 1.0, 0.25);
    let plain_dsu: Dsu<TwoTrySplit, S> = Dsu::new(n);
    let mut plain_batch = OpStats::default();
    let t3 = Instant::now();
    for burst in &trace.batches {
        plain_dsu.unite_batch_with(burst, &mut plain_batch);
    }
    let plain_ingest = t3.elapsed();
    let planned_dsu: Dsu<TwoTrySplit, S> = Dsu::new(n);
    let mut planned_batch = OpStats::default();
    let planned_tuning = BatchTuning::new().planned(PlanTuning::new());
    let t4 = Instant::now();
    for burst in &trace.batches {
        planned_dsu.unite_batch_tuned_with(burst, planned_tuning, None, &mut planned_batch);
    }
    let planned_ingest = t4.elapsed();
    println!(
        "{label}: mixed {:>12?} finds {:>12?} cached-finds {:>12?} | iters {} reads {} cas_ok {} \
         cas_fail {} links_ok {} links_fail {} | cached: reads {} hits {} stale {}",
        total,
        finds,
        cached_finds,
        stats.loop_iters,
        stats.reads,
        stats.compact_cas_ok,
        stats.compact_cas_fail,
        stats.links_ok,
        stats.links_fail,
        cached_stats.reads,
        cached_stats.cache_hits,
        cached_stats.cache_stale
    );
    println!(
        "{label}: ingest plain {:>12?} reads {} | planned {:>12?} reads {} dup_dropped {} \
         buckets {} spill {}",
        plain_ingest,
        plain_batch.reads,
        planned_ingest,
        planned_batch.reads,
        planned_batch.dup_edges_dropped,
        planned_batch.bucket_count,
        planned_batch.spill_edges
    );
    // Unfaulted runs must attribute exactly zero injected faults, and the
    // *per-op* phases zero retries too — single-threaded, a per-op retry
    // loop only fires when someone else moved the root, and there is no
    // one else. (The batch phases may retry legitimately: a wave-gathered
    // root goes stale when an earlier link in the same burst moves it, so
    // for those only the injection counter must be zero.)
    for (phase, s) in [
        ("mixed", &stats),
        ("cached", &cached_stats),
        ("plain", &plain_batch),
        ("planned", &planned_batch),
    ] {
        assert_eq!(s.faults_injected, 0, "{label}/{phase}: phantom fault attribution");
        // None of these phases runs through a `VersionedDsu`, so the
        // epoch columns must be exactly zero: an unversioned run pays no
        // snapshots, no forks, no rollbacks, no copy-on-write.
        assert_eq!(
            (s.snapshots_taken, s.segments_forked, s.rollbacks, s.cow_copies),
            (0, 0, 0, 0),
            "{label}/{phase}: phantom epoch attribution on an unversioned run"
        );
        // Unless the env knob armed the batch-ingest trigger, no phase
        // above runs a sweep, so flatten attribution must be exactly zero.
        if dsu.flatten_policy() == concurrent_dsu::FlattenPolicy::Off {
            assert_eq!(
                (s.flatten_passes, s.flatten_jumps, s.flatten_cas_lost),
                (0, 0, 0),
                "{label}/{phase}: phantom flatten attribution"
            );
        }
    }
    for (phase, s) in [("mixed", &stats), ("cached", &cached_stats)] {
        assert_eq!(
            s.cas_retries, 0,
            "{label}/{phase}: retries on an unfaulted single-threaded run"
        );
    }
    // Fault attribution: the same mixed workload through a FaultyStore at
    // a fixed rate. faults_injected (charged by the plan, folded in from
    // the store's report) sits next to cas_retries (paid by the retry
    // loops); single-threaded, every spurious CAS failure on the link CAS
    // is exactly one retry, so the columns reconcile the injection.
    let faulted: Dsu<TwoTrySplit, FaultyStore<S>> = Dsu::from_store(FaultyStore::with_plan(
        S::with_seed(n, 0xD1A6),
        FaultPlan::rate(0xD1A6, 0.2),
    ));
    let mut fault_stats = OpStats::default();
    let t5 = Instant::now();
    for op in &w.ops {
        match *op {
            dsu_workloads::Op::Unite(x, y) => {
                faulted.unite_with(x, y, &mut fault_stats);
            }
            dsu_workloads::Op::SameSet(x, y) => {
                faulted.same_set_with(x, y, &mut fault_stats);
            }
        }
    }
    let faulted_total = t5.elapsed();
    let report = faulted.store().fault_report();
    fault_stats.faults_injected += report.total();
    println!(
        "{label}: faulted mixed {:>12?} (rate 0.2) | faults_injected {} (cas {} load {} stall {}) \
         cas_retries {} links_fail {}",
        faulted_total,
        fault_stats.faults_injected,
        report.spurious_cas_failures,
        report.delayed_loads,
        report.stalls,
        fault_stats.cas_retries,
        fault_stats.links_fail
    );
    assert!(fault_stats.faults_injected > 0, "{label}: fault phase injected nothing");
    assert_eq!(
        fault_stats.cas_retries, fault_stats.links_fail,
        "{label}: single-threaded, every failed link is exactly one retry"
    );
}

/// Keyed attribution: a sparse-u64 entity-resolution trace through the
/// lock-free id table, with the keyed counters splitting key-table work
/// (probes, claims, segment growth) from the set operations underneath.
/// Every insert is charged exactly once, every probe step is attributed,
/// the structure's own resize count reconciles with the stats stream, and
/// the unfaulted invariants of the dense phases hold here too.
fn keyed<S: GrowableStore>(label: &str) {
    let spec = KeyedSpec::new(1 << 15).merge_fraction(0.7).fresh_fraction(0.5);
    let trace = spec.generate(0xD1A6).into_sparse_u64(0xD1A6);
    let dsu: KeyedDsu<u64, TwoTrySplit, S> =
        KeyedDsu::from_store(S::with_seed(0xD1A6), 0xD1A6, ShardSpec::with_shards(4));
    let mut stats = OpStats::default();
    let t0 = Instant::now();
    for op in &trace.ops {
        match op {
            KeyedOp::Merge(a, b) => {
                dsu.merge_keys_with(a, b, &mut stats);
            }
            KeyedOp::SameSet(a, b) => {
                dsu.same_set_with(a, b, &mut stats);
            }
        }
    }
    let keyed_t = t0.elapsed();
    println!(
        "{label}: keyed {:>12?} | keys {} probe_steps {} resizes {} | iters {} reads {} \
         links_ok {}",
        keyed_t,
        stats.keys_inserted,
        stats.key_probe_steps,
        stats.id_table_resizes,
        stats.loop_iters,
        stats.reads,
        stats.links_ok
    );
    // Queries never insert, so the claim count is exactly the distinct
    // keys that appeared as a merge operand — not `trace.distinct_keys`.
    let merged: std::collections::HashSet<u64> = trace
        .ops
        .iter()
        .filter(|op| op.is_merge())
        .flat_map(|op| {
            let (a, b) = op.keys();
            [*a, *b]
        })
        .collect();
    assert_eq!(stats.keys_inserted, merged.len() as u64, "{label}: every merged key claims once");
    assert_eq!(stats.keys_inserted, dsu.key_count() as u64, "{label}: stats vs table key count");
    assert_eq!(
        stats.id_table_resizes,
        dsu.id_table_resizes() as u64,
        "{label}: stats vs table resizes"
    );
    assert!(stats.id_table_resizes > 0, "{label}: this trace must outgrow the base segments");
    assert!(
        stats.key_probe_steps >= 2 * trace.ops.len() as u64,
        "{label}: two key resolutions per op minimum"
    );
    assert_eq!(stats.faults_injected, 0, "{label}/keyed: phantom fault attribution");
    assert_eq!(stats.cas_retries, 0, "{label}/keyed: retries on an unfaulted single-threaded run");
    assert_eq!(
        (stats.snapshots_taken, stats.segments_forked, stats.rollbacks, stats.cow_copies),
        (0, 0, 0, 0),
        "{label}/keyed: phantom epoch attribution on an unversioned run"
    );
}

/// Epoch attribution: a versioned burst trace with a guard point before
/// every burst, one explicit rollback, and one validator-rejected
/// speculative batch. Two accounting streams exist — the live `*_with`
/// sinks fed per event, and [`VersionedDsu::report_into`]'s lifetime
/// fold — and they must reconcile exactly with each other and with the
/// store's own fork report. (The unversioned phases above assert all
/// four epoch columns are exactly zero; this phase is where they earn
/// their nonzero values.)
fn epochs() {
    let n = 1 << 15;
    let trace = dsu_bench::standard_edge_batches(n, 16, 1024, 1.1);
    let mut dsu: VersionedDsu = VersionedDsu::with_initial(n);
    let mut live = OpStats::default();
    let t0 = Instant::now();
    let mut guards = Vec::new();
    for burst in &trace.batches {
        guards.push(dsu.snapshot_with(&mut live));
        dsu.unite_batch(burst);
    }
    // Roll the last burst off, then reject a speculative one (its
    // internal snapshot + rollback land in the same live stream).
    let last = *guards.last().expect("at least one burst");
    dsu.rollback_with(last, &mut live);
    let edges: Vec<(usize, usize)> = (0..512).map(|i| (i, n - 1 - i)).collect();
    let outcome = dsu.try_unite_batch_with(&edges, |_, _| false, &mut live);
    let elapsed = t0.elapsed();
    assert!(!outcome.is_committed(), "the rejecting validator must roll back");
    let report = dsu.dsu().store().epoch_report();
    println!(
        "epochs : versioned {elapsed:>12?} | snapshots {} rollbacks {} segments_forked {} \
         cow_copies {}",
        dsu.snapshots_taken(),
        dsu.rollbacks(),
        report.segments_forked,
        report.cow_copies
    );
    // Live stream vs structure counters: every snapshot/rollback above
    // went through a `*_with` entry point, so the streams are equal.
    assert_eq!(live.snapshots_taken, dsu.snapshots_taken(), "live stream vs snapshot counter");
    assert_eq!(live.rollbacks, dsu.rollbacks(), "live stream vs rollback counter");
    assert_eq!(live.snapshots_taken, trace.batches.len() as u64 + 1, "one guard per burst + 1");
    assert_eq!(live.rollbacks, 2, "the explicit rollback + the rejected batch");
    // Lifetime fold vs the store's report: report_into is the protocol a
    // harness uses when it never held the live sinks.
    let mut folded = OpStats::default();
    dsu.report_into(&mut folded);
    assert_eq!(folded.snapshots_taken, dsu.snapshots_taken());
    assert_eq!(folded.rollbacks, dsu.rollbacks());
    assert_eq!(folded.segments_forked, report.segments_forked, "fold vs store fork report");
    assert_eq!(folded.cow_copies, report.cow_copies, "fold vs store copy report");
    assert!(report.segments_forked > 0, "guarded bursts must have forked");
    assert!(
        report.cow_copies >= report.segments_forked,
        "every fork copies at least one cell's worth"
    );
}

/// Tuner attribution: the mixed workload through the self-tuning
/// dispatcher in every `DSU_TUNER` mode. The printed trail (samples,
/// switches, chosen tag) is the decision record; the asserts pin the
/// accounting exactly — off never samples, auto samples exactly its
/// budget, forced never samples and reports its construction-time
/// dispatch — and the partition must match an untuned run whatever was
/// chosen.
fn tuner() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(17);
    let n = 1usize << n;
    let m = 2 * n;
    let w = standard_workload(n, m);
    let reference: Dsu<TwoTrySplit, PackedStore> = Dsu::new(n);
    for op in &w.ops {
        match *op {
            dsu_workloads::Op::Unite(x, y) => {
                reference.unite(x, y);
            }
            dsu_workloads::Op::SameSet(..) => {}
        }
    }
    let forced = Variant::parse("halving/index").expect("valid tag");
    for (mode_label, mode) in [
        ("off   ", TunerMode::Off),
        ("auto  ", TunerMode::Auto),
        ("forced", TunerMode::Forced(forced)),
    ] {
        let dsu = TunedDsu::with_mode(n, Dsu::<TwoTrySplit>::DEFAULT_SEED, mode);
        let t0 = Instant::now();
        for op in &w.ops {
            match *op {
                dsu_workloads::Op::Unite(x, y) => {
                    dsu.unite(x, y);
                }
                dsu_workloads::Op::SameSet(x, y) => {
                    dsu.same_set(x, y);
                }
            }
        }
        let elapsed = t0.elapsed();
        let mut stats = OpStats::default();
        dsu.report_into(&mut stats);
        println!(
            "tuner/{mode_label}: mixed {:>12?} | tuner_samples {} tuner_switches {} chosen {}",
            elapsed,
            stats.tuner_samples,
            stats.tuner_switches,
            dsu.chosen_variant().tag()
        );
        assert_eq!(dsu.set_count(), reference.set_count(), "tuned partition diverged");
        match mode {
            TunerMode::Off => {
                assert_eq!((stats.tuner_samples, stats.tuner_switches), (0, 0));
            }
            TunerMode::Auto => {
                assert_eq!(
                    stats.tuner_samples,
                    concurrent_dsu::tune::DEFAULT_SAMPLE_BUDGET,
                    "auto samples exactly its budget on a long run"
                );
                assert!(stats.tuner_switches <= 1);
            }
            TunerMode::Forced(v) => {
                assert_eq!(stats.tuner_samples, 0, "forced mode never samples");
                assert_eq!(dsu.chosen_variant(), v);
                assert_eq!(stats.tuner_switches, 1);
            }
        }
    }
}

fn main() {
    for _ in 0..3 {
        run::<PackedStore>("packed ");
        run::<FlatStore>("flat   ");
        run::<ShardedStore>("sharded");
    }
    keyed::<PackedSegmentedStore>("packed ");
    keyed::<SegmentedStore>("flat   ");
    keyed::<ShardedSegmentedStore>("sharded");
    tuner();
    epochs();
}

//! Chaos sweep: throughput degradation and linearizability verdicts under
//! injected faults, across fault rates × layouts × thread counts.
//!
//! Each cell wraps the layout in `FaultyStore` with a seeded `FaultPlan`
//! (spurious CAS failures + delayed loads + stall windows at the given
//! rate) and measures batched ingestion throughput against the same
//! layout's rate-0 baseline — the degradation column is the price of the
//! injected adversary, and a wait-free implementation must degrade
//! *smoothly* (no cliff, no hang: every injected failure costs at most a
//! bounded retry). Alongside the timing, each cell records a handful of
//! small timed histories (4 threads on a 6-element universe) through
//! `linearize::HistoryRecorder` and checks them with the Wing–Gong
//! checker: the `lin` column must read `ok` everywhere, or the sweep
//! exits nonzero — chaos is only useful if correctness is checked *under*
//! it, not after it.
//!
//! The rate-0 cell doubles as the off-path honesty check: it runs the
//! same decorated store with `FaultPlan::off`, so comparing it against an
//! undecorated run (see `batch_vs_perop_ab`) bounds the decorator's
//! overhead when nothing is injected.
//!
//! Run: `cargo run --release -p dsu-bench --example chaos_ab --
//!       [--samples 7] [--n 1048576] [--batches 512] [--batch-size 1024]
//!       [--rates 0,0.05,0.2,0.5] [--histories 20] [--threads 1,2,4,8]
//!       [--json out.json] [--quick true]`

use std::fmt::Write as _;

use concurrent_dsu::{
    Dsu, DsuStore, FaultPlan, FaultyStore, FlatStore, PackedStore, ShardedStore, TwoTrySplit,
};
use dsu_bench::{median, standard_edge_batches, timed_ingest_batched};
use dsu_harness::Args;
use dsu_workloads::EdgeBatches;
use linearize::{check_linearizable, CompletedOp, DsuOp, DsuSpec, HistoryRecorder};

/// One faulted `Dsu` over layout `S`.
fn faulted<S: DsuStore>(n: usize, seed: u64, plan: FaultPlan) -> Dsu<TwoTrySplit, FaultyStore<S>> {
    Dsu::from_store(FaultyStore::with_plan(S::with_seed(n, seed), plan))
}

/// Records `histories` small native histories on a fresh faulted instance
/// of `S` and checks each; returns (passed, total).
fn lin_verdicts<S: DsuStore>(histories: usize, rate: f64, base_seed: u64) -> (usize, usize) {
    let (n, threads, ops_per_thread) = (6, 4, 5);
    let mut ok = 0;
    for h in 0..histories {
        let seed = base_seed ^ (h as u64 * 7919 + 1);
        let dsu = faulted::<S>(n, seed, FaultPlan::rate(seed, rate));
        let recorder = HistoryRecorder::new();
        let barrier = std::sync::Barrier::new(threads);
        let mut history: Vec<CompletedOp<DsuOp>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let (dsu, recorder, barrier) = (&dsu, &recorder, &barrier);
                    s.spawn(move || {
                        barrier.wait();
                        (0..ops_per_thread)
                            .map(|i| {
                                let z = concurrent_dsu::order::splitmix64(
                                    seed ^ ((t as u64) << 32) ^ i as u64,
                                );
                                let (x, y) = ((z >> 8) as usize % n, (z >> 24) as usize % n);
                                if z.is_multiple_of(4) {
                                    recorder.record(DsuOp::SameSet(x, y), || dsu.same_set(x, y))
                                } else {
                                    recorder.record(DsuOp::Unite(x, y), || dsu.unite(x, y))
                                }
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                history.extend(handle.join().unwrap());
            }
        });
        match check_linearizable(&DsuSpec::new(n), &history) {
            Ok(_) => ok += 1,
            Err(e) => {
                eprintln!("REFUTATION ({}, rate {rate}, seed {seed}): {e}\n{history:#?}", S::NAME);
            }
        }
    }
    (ok, histories)
}

/// Sweeps one layout over rates × thread counts; appends JSON rows and
/// returns `false` if any history refused to linearize.
#[allow(clippy::too_many_arguments)]
fn sweep<S: DsuStore>(
    arrivals: &EdgeBatches,
    n: usize,
    rates: &[f64],
    threads: &[usize],
    samples: usize,
    histories: usize,
    rows: &mut String,
    all_linearizable: &mut bool,
) {
    println!(
        "\n{:>8} {:>6} {:>7} {:>14} {:>12} {:>9} {:>12}",
        "layout", "rate", "threads", "batched ns", "degradation", "lin", "faults"
    );
    // Undecorated baseline per thread count: the same layout with no
    // FaultyStore wrapper at all. The rate-0 decorated row divided by
    // this is the decorator's true off-path overhead — the acceptance
    // bar for "zero cost when unused".
    let mut bare: Vec<(usize, f64)> = Vec::new();
    for &p in threads {
        let mk = || Dsu::<TwoTrySplit, S>::from_store(S::with_seed(n, 0xBA7C));
        timed_ingest_batched(&mk(), &arrivals.batches, p);
        let mut ns = Vec::with_capacity(samples);
        for _ in 0..samples {
            ns.push(timed_ingest_batched(&mk(), &arrivals.batches, p).as_nanos() as f64);
        }
        let m = median(&mut ns);
        println!(
            "{:>8} {:>6} {:>7} {:>14.0} {:>12} {:>9} {:>12}",
            S::NAME,
            "bare",
            p,
            m,
            "-",
            "-",
            "-"
        );
        bare.push((p, m));
    }
    for &rate in rates {
        for &p in threads {
            let plan = if rate > 0.0 { FaultPlan::rate(0xC4A05, rate) } else { FaultPlan::off() };
            // Warm-up, then interleave nothing — cells are independent;
            // the baseline is the same layout's rate-0 row.
            timed_ingest_batched(&faulted::<S>(n, 0xBA7C, plan), &arrivals.batches, p);
            let mut ns = Vec::with_capacity(samples);
            let mut faults = 0u64;
            for _ in 0..samples {
                let dsu = faulted::<S>(n, 0xBA7C, plan);
                ns.push(timed_ingest_batched(&dsu, &arrivals.batches, p).as_nanos() as f64);
                faults += dsu.store().fault_report().total();
            }
            let m = median(&mut ns);
            // Baseline lookup: the rate-0 row of this layout/threads was
            // pushed first (rates[0] must be 0 for degradation to mean
            // anything; enforced in main).
            let base = baseline(rows, S::NAME, p).unwrap_or(m);
            let (ok, total) = lin_verdicts::<S>(histories, rate.max(0.05), 0xC4A05);
            *all_linearizable &= ok == total;
            println!(
                "{:>8} {:>6.2} {:>7} {:>14.0} {:>12.3} {:>6}/{:<2} {:>12}",
                S::NAME,
                rate,
                p,
                m,
                m / base,
                ok,
                total,
                faults
            );
            if !rows.is_empty() {
                rows.push(',');
            }
            let _ = write!(
                rows,
                "\n    {{\"layout\":\"{}\",\"rate\":{rate},\"threads\":{p},\
                 \"batched_median_ns\":{m:.0},\"degradation\":{:.4},\
                 \"lin_ok\":{ok},\"lin_total\":{total},\"faults_injected\":{faults}",
                S::NAME,
                m / base
            );
            if rate == 0.0 {
                // The off-path honesty numbers live on the rate-0 row.
                let b = bare.iter().find(|&&(bp, _)| bp == p).map(|&(_, bm)| bm).unwrap_or(m);
                let _ =
                    write!(rows, ",\"bare_median_ns\":{b:.0},\"off_path_overhead\":{:.4}", m / b);
                println!(
                    "{:>8} {:>6} {:>7} off-path overhead vs bare: {:.4}x",
                    S::NAME,
                    "off",
                    p,
                    m / b
                );
            }
            rows.push('}');
        }
    }
}

/// Finds this layout × thread count's rate-0 median in the rows emitted so
/// far (cheap string scan; the row format is ours).
fn baseline(rows: &str, layout: &str, threads: usize) -> Option<f64> {
    let tag = format!("{{\"layout\":\"{layout}\",\"rate\":0,\"threads\":{threads},");
    let at = rows.find(&tag)?;
    let rest = &rows[at..];
    let key = "\"batched_median_ns\":";
    let v = &rest[rest.find(key)? + key.len()..];
    v[..v.find(',')?].parse().ok()
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let samples = args.usize("samples", if quick { 3 } else { 7 });
    let n = args.usize("n", if quick { 1 << 14 } else { 1 << 20 });
    let batches = args.usize("batches", if quick { 1 << 5 } else { 1 << 9 });
    let batch_size = args.usize("batch-size", 1 << 10);
    let histories = args.usize("histories", if quick { 5 } else { 20 });
    let threads = args.thread_ladder();
    let rates: Vec<f64> = args
        .get("rates")
        .map(|s| s.split(',').map(|r| r.trim().parse().expect("rate")).collect())
        .unwrap_or_else(|| if quick { vec![0.0, 0.2] } else { vec![0.0, 0.05, 0.2, 0.5] });
    assert_eq!(rates[0], 0.0, "first rate must be 0: it is every cell's degradation baseline");

    let arrivals = standard_edge_batches(n, batches, batch_size, 1.0);
    println!(
        "chaos sweep: n = {n}, {batches} bursts x {batch_size} edges, rates {rates:?}, \
         {samples} samples, {histories} checked histories per cell"
    );

    let mut rows = String::new();
    let mut all_linearizable = true;
    sweep::<PackedStore>(
        &arrivals,
        n,
        &rates,
        &threads,
        samples,
        histories,
        &mut rows,
        &mut all_linearizable,
    );
    sweep::<FlatStore>(
        &arrivals,
        n,
        &rates,
        &threads,
        samples,
        histories,
        &mut rows,
        &mut all_linearizable,
    );
    sweep::<ShardedStore>(
        &arrivals,
        n,
        &rates,
        &threads,
        samples,
        histories,
        &mut rows,
        &mut all_linearizable,
    );

    if let Some(path) = args.get("json") {
        let json = format!(
            "{{\n  \"example\": \"chaos_ab\",\n  \"machine\": {},\n  \
             \"workload\": {{\"n\": {n}, \"batches\": {batches}, \
             \"batch_size\": {batch_size}, \"zipf\": 1.0, \"seed\": \"0xBA7C\"}},\n  \
             \"samples\": {samples},\n  \"histories_per_cell\": {histories},\n  \
             \"all_linearizable\": {all_linearizable},\n  \"results\": [{rows}\n  ]\n}}\n",
            dsu_bench::machine_fingerprint_json()
        );
        std::fs::write(path, json).expect("write json");
        println!("wrote {path}");
    }
    assert!(all_linearizable, "at least one chaos history refused to linearize — see stderr");
    println!("\nall recorded chaos histories linearizable.");
}

//! Flatten-sweep A/B: does paying an `O(n)` pointer-jumping pass at the
//! ingest→query boundary beat just running the queries?
//!
//! The contender triple, per (universe, threads) cell — all three run the
//! *same* burst-ingest phase followed by the *same* query-only storm, and
//! the measured time is the whole pipeline (ingest + any sweeps + storm),
//! so the sweep's cost is inside the number it has to win back:
//!
//! * **off** — the do-nothing baseline: ingest the bursts, run the storm
//!   over whatever forest the unites left behind.
//! * **sweep** — one explicit [`Dsu::flatten_parallel`] between ingest and
//!   storm (the phase-boundary pattern `IncrementalConnectivity::flatten`
//!   and the percolation `_flattened` route expose): after it, every find
//!   in the storm is a single load.
//! * **auto** — [`FlattenPolicy::Auto`] armed during ingest: the trigger
//!   probes sampled depth after every burst and sweeps whenever it exceeds
//!   the threshold. This arm measures what the *adaptive* path costs when
//!   nobody hand-places the sweep.
//!
//! Two universes (cache-resident and DRAM-resident at the ISSUE's
//! n = 2^18 / 2^22; `--quick` shrinks both) × the thread ladder; samples
//! interleave round-robin across arms so host drift cancels. Per-cell
//! medians and each arm's speedup over `off` (same run) are printed and,
//! with `--json PATH`, archived with the machine fingerprint and a
//! single-threaded counter-attribution block (storm `find_hops` with and
//! without the sweep, sweep `flatten_jumps`) in the row shape
//! `check_bench_regression.py` gates (`BENCH_PR9.json`).
//!
//! Run: `cargo run --release -p dsu-bench --example flatten_ab --
//!       [--samples 5] [--threads 1,2,4,8] [--json out.json]
//!       [--quick true]`

use std::fmt::Write as _;
use std::time::Instant;

use concurrent_dsu::{Dsu, FlattenPolicy, OpStats};
use dsu_bench::{machine_fingerprint_json, median, timed_ingest_batched, timed_parallel_run};
use dsu_harness::Args;
use dsu_workloads::{EdgeBatches, Op, Workload, WorkloadSpec};

const MODES: [&str; 3] = ["off", "sweep", "auto"];

struct Probe {
    label: &'static str,
    n: usize,
    ingest: EdgeBatches,
    storm: Workload,
}

fn probes(quick: bool) -> Vec<Probe> {
    // Cache-resident vs DRAM-resident universes (the tuner's 8 MB budget
    // as the dividing line, as in variants_ab). The ingest phase unites
    // n edges in 1024-edge bursts — enough to leave multi-hop paths —
    // and the storm is query-only at 4 ops per element: the read-heavy
    // steady state the flatten pass is *for*. Uniform endpoints, so the
    // storm walks cold tails instead of re-hitting a few hot roots.
    let (n_cache, n_dram) = if quick { (1 << 15, 1 << 18) } else { (1 << 18, 1 << 22) };
    [("cache-mix", n_cache), ("dram-mix", n_dram)]
        .into_iter()
        .map(|(label, n)| Probe {
            label,
            n,
            ingest: dsu_bench::standard_edge_batches(n, n / 1024, 1024, 1.1),
            storm: WorkloadSpec::new(n, 4 * n).unite_fraction(0.0).generate(0xF1A7_2016),
        })
        .collect()
}

/// One timed pipeline run of a mode: fresh structure, burst ingest,
/// mode-specific sweeping, query storm. Returns total wall nanoseconds.
fn timed_mode(mode: &str, probe: &Probe, threads: usize) -> f64 {
    let mut dsu: Dsu = Dsu::with_seed(probe.n, 0xF1A7);
    if mode == "auto" {
        dsu.set_flatten_policy(FlattenPolicy::Auto);
    }
    let mut total = timed_ingest_batched(&dsu, &probe.ingest.batches, threads);
    if mode == "sweep" {
        let t0 = Instant::now();
        dsu.flatten_parallel(threads);
        total += t0.elapsed();
    }
    total += timed_parallel_run(&dsu, &probe.storm, threads);
    total.as_nanos() as f64
}

/// One interleaved sampling round: every arm gets one pipeline run, in
/// order, so slow host phases land on all arms equally.
fn sample_round(probe: &Probe, threads: usize, buckets: &mut [Vec<f64>]) {
    for (i, mode) in MODES.iter().enumerate() {
        buckets[i].push(timed_mode(mode, probe, threads));
    }
}

/// Single-threaded counter attribution: the storm's measured path lengths
/// with and without the sweep, plus what the sweep itself did. This is
/// the mechanism check behind the timings — `find_hops/find` must drop
/// to ~0 after the sweep or the A/B is measuring something else.
fn attribution(probe: &Probe) -> String {
    let storm_hops = |dsu: &Dsu, stats: &mut OpStats| {
        for &op in &probe.storm.ops {
            if let Op::SameSet(x, y) = op {
                dsu.same_set_with(x, y, stats);
            }
        }
    };
    // Two fresh structures over the same seeded ingest — one storms the
    // forest as the unites left it, the other sweeps first — so the hop
    // counts compare exactly what the timed `off` and `sweep` arms run.
    let dsu: Dsu = Dsu::with_seed(probe.n, 0xF1A7);
    timed_ingest_batched(&dsu, &probe.ingest.batches, 1);
    let mut off = OpStats::default();
    storm_hops(&dsu, &mut off);
    let dsu: Dsu = Dsu::with_seed(probe.n, 0xF1A7);
    timed_ingest_batched(&dsu, &probe.ingest.batches, 1);
    let mut sweep = OpStats::default();
    sweep.merge(&dsu.flatten_parallel(2));
    let mut post = OpStats::default();
    storm_hops(&dsu, &mut post);
    format!(
        "{{\"probe\":\"{}\",\"n\":{},\"storm_finds\":{},\"off_find_hops\":{},\
         \"off_hops_per_find\":{:.4},\"sweep_flatten_jumps\":{},\"sweep_flatten_cas_lost\":{},\
         \"post_find_hops\":{},\"post_hops_per_find\":{:.4}}}",
        probe.label,
        probe.n,
        off.finds,
        off.find_hops,
        off.hops_per_find(),
        sweep.flatten_jumps,
        sweep.flatten_cas_lost,
        post.find_hops,
        post.hops_per_find()
    )
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let samples = args.usize("samples", if quick { 3 } else { 5 });
    let threads = args.thread_ladder();

    let mut rows = String::new();
    let mut attrs = String::new();
    for probe in &probes(quick) {
        println!(
            "\n== {} (n = {}, ingest {} edges, storm {} queries, {} interleaved samples) ==",
            probe.label,
            probe.n,
            probe.ingest.batches.iter().map(Vec::len).sum::<usize>(),
            probe.storm.len(),
            samples
        );
        println!("{:>7} {:>6} {:>14} {:>8}", "threads", "mode", "median ns", "vs off");
        for &p in &threads {
            let mut buckets: Vec<Vec<f64>> = vec![Vec::with_capacity(samples); MODES.len()];
            // Warm-up round (uncounted), then the counted rounds.
            sample_round(probe, p, &mut buckets);
            for b in &mut buckets {
                b.clear();
            }
            for _ in 0..samples {
                sample_round(probe, p, &mut buckets);
            }
            let meds: Vec<f64> = buckets.iter_mut().map(|b| median(b)).collect();
            let off_med = meds[0];
            if !rows.is_empty() {
                rows.push(',');
            }
            let _ = write!(rows, "\n    {{\"threads\":{p},\"n\":{}", probe.n);
            for (i, mode) in MODES.iter().enumerate() {
                let speedup = off_med / meds[i];
                let marker = if meds[i] == meds.iter().copied().fold(f64::MAX, f64::min) {
                    " <- best"
                } else {
                    ""
                };
                println!("{:>7} {:>6} {:>14.0} {:>8.3}{marker}", p, mode, meds[i], speedup);
                let _ = write!(
                    rows,
                    ",\"{mode}_median_ns\":{:.0},\"{mode}_speedup\":{speedup:.4}",
                    meds[i]
                );
            }
            rows.push('}');
        }
        let attr = attribution(probe);
        println!("attribution: {attr}");
        if !attrs.is_empty() {
            attrs.push(',');
        }
        let _ = write!(attrs, "\n    {attr}");
    }

    if let Some(path) = args.get("json") {
        let json = format!(
            "{{\n  \"example\": \"flatten_ab\",\n  \"machine\": {},\n  \"samples\": {samples},\n  \
             \"results\": [{rows}\n  ],\n  \"attribution\": [{attrs}\n  ]\n}}\n",
            machine_fingerprint_json()
        );
        std::fs::write(path, json).expect("write json");
        println!("wrote {path}");
    }
}

//! The (find × link) × workload variant matrix, with the auto-tuner's
//! decision cross-checked against the measured winners.
//!
//! Every variant of the plane (five find policies × three link policies,
//! rank paired with `RankedStore` — the same fifteen points `VariantDsu`
//! dispatches over) runs the same two probe workloads the tuner's
//! [`DecisionTable`] distinguishes at its extremes:
//!
//! * **cache-uniform** — a universe whose parent array fits in cache,
//!   uniform endpoints (the regime where variant differences drown in
//!   core-local noise and the default should simply not lose), and
//! * **dram-zipf** — a DRAM-resident universe with Zipf-skewed endpoints
//!   (hot roots, long cold tails — the regime where path length is
//!   measured in cache misses and compaction strategy matters).
//!
//! Samples interleave across variants round-robin so host drift lands on
//! every arm equally; per-(workload, threads) medians and each variant's
//! speedup over the paper default (`two-try/random`, same run) are
//! printed and, with `--json PATH`, archived with the machine fingerprint
//! (`BENCH_PR8.json`) in the row shape `check_bench_regression.py` gates.
//!
//! The tuner cross-check then runs `TunedDsu` (auto mode, builtin table)
//! once per probe and reports whether its post-sampling choice matches
//! the matrix winner at the highest thread count — the acceptance probe
//! for the shipped decision table. "Matches" is tie-tolerant: when the
//! tuner's variant is within `TIE_TOLERANCE` of the winner's median it is
//! a statistical tie, reported as `MATCH (tie)` — on a shared box several
//! variants routinely land within run-to-run noise of first place, and
//! demanding an exact argmin would make the check a coin flip. A choice
//! that nominally misses the band is re-measured **head-to-head** against
//! the winner (tightly interleaved, so host drift cancels — the matrix
//! medians it replaces were taken a full round-robin apart) before the
//! verdict is final. A gap that survives that prints an honest `MISMATCH`
//! line (and lands in the JSON), not a panic: on a differently shaped
//! host the measured winner can legitimately disagree with a table
//! measured on the reference machine.
//!
//! Run: `cargo run --release -p dsu-bench --example variants_ab --
//!       [--samples 5] [--threads 1,2,4,8] [--json out.json]
//!       [--quick true]`

use std::fmt::Write as _;

use concurrent_dsu::tune::DEFAULT_VARIANT;
use concurrent_dsu::{TunedDsu, TunerMode, Variant, VariantDsu};
use dsu_bench::{machine_fingerprint_json, median, timed_parallel_run};
use dsu_harness::Args;
use dsu_workloads::{ElementDist, Workload, WorkloadSpec};

/// The tuner's choice counts as matching the winner when its median is
/// within this factor of the winner's — variants inside this band are
/// statistically tied on a shared box. The width is calibrated to the
/// measured noise floor of the reference machine, not picked for
/// comfort: across back-to-back full runs the *same variant's* DRAM
/// median moved 10–22% and the nominal winner rotated through three
/// different variants, while within one run the tied cluster spread
/// under ~10%. A band narrower than the drift would make the verdict a
/// coin flip; a real regime signal (cache-resident `halving/index` at
/// ~1.15x, `compress` losing 2-2.8x) clears it with margin.
const TIE_TOLERANCE: f64 = 1.10;

struct Probe {
    label: &'static str,
    n: usize,
    workload: Workload,
}

fn probes(quick: bool) -> Vec<Probe> {
    // Cache-resident: 2^14 × 8 B = 128 KB (quick) / 2^16 × 8 B = 512 KB —
    // both well under the tuner's 8 MB budget. DRAM-resident: 2^21 × 8 B
    // = 16 MB (quick) / 2^23 × 8 B = 64 MB — both over it, so the quick
    // run exercises the same decision-table rows as the full one.
    let (n_cache, n_dram) = if quick { (1 << 14, 1 << 21) } else { (1 << 16, 1 << 23) };
    let (m_cache, m_dram) = (2 * n_cache, n_dram / 2);
    vec![
        Probe {
            label: "cache-uniform",
            n: n_cache,
            workload: WorkloadSpec::new(n_cache, m_cache).unite_fraction(0.5).generate(0xAB_2016),
        },
        Probe {
            label: "dram-zipf",
            n: n_dram,
            workload: WorkloadSpec::new(n_dram, m_dram)
                .unite_fraction(0.5)
                .element_dist(ElementDist::Zipf(1.1))
                .generate(0xAB_2016),
        },
    ]
}

/// One interleaved sampling round: every variant gets one timed run on a
/// fresh structure, in plane order, so slow host phases hit all arms.
fn sample_round(probe: &Probe, threads: usize, medians: &mut [Vec<f64>]) {
    for (i, v) in Variant::all().enumerate() {
        let dsu = VariantDsu::build(v, probe.n, 0xAB);
        let t = timed_parallel_run(&dsu, &probe.workload, threads);
        medians[i].push(t.as_nanos() as f64);
    }
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let samples = args.usize("samples", if quick { 3 } else { 5 });
    let threads = args.thread_ladder();
    let variants: Vec<Variant> = Variant::all().collect();

    let mut rows = String::new();
    let mut checks = String::new();
    for probe in &probes(quick) {
        println!(
            "\n== {} (n = {}, m = {}, {} interleaved samples) ==",
            probe.label,
            probe.n,
            probe.workload.len(),
            samples
        );
        println!("{:>7} {:>22} {:>14} {:>8}", "threads", "find/link", "median ns", "vs dflt");
        let mut winner_at_max: Option<Variant> = None;
        let mut medians_at_max: Vec<f64> = Vec::new();
        for &p in &threads {
            let mut buckets: Vec<Vec<f64>> = vec![Vec::with_capacity(samples); variants.len()];
            // Warm-up round (uncounted), then the counted rounds.
            sample_round(probe, p, &mut buckets);
            for b in &mut buckets {
                b.clear();
            }
            for _ in 0..samples {
                sample_round(probe, p, &mut buckets);
            }
            let meds: Vec<f64> = buckets.iter_mut().map(|b| median(b)).collect();
            let default_med = meds[variants
                .iter()
                .position(|&v| v == DEFAULT_VARIANT)
                .expect("default variant is in the plane")];
            let best = meds
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| variants[i])
                .expect("non-empty plane");
            if p == *threads.last().unwrap() {
                winner_at_max = Some(best);
                medians_at_max = meds.clone();
            }
            if !rows.is_empty() {
                rows.push(',');
            }
            let _ = write!(rows, "\n    {{\"threads\":{p},\"n\":{}", probe.n);
            for (i, v) in variants.iter().enumerate() {
                let tag = v.tag();
                let marker = if *v == best { " <- best" } else { "" };
                println!(
                    "{:>7} {:>22} {:>14.0} {:>8.3}{marker}",
                    p,
                    tag,
                    meds[i],
                    default_med / meds[i]
                );
                let _ = write!(
                    rows,
                    ",\"{tag}_median_ns\":{:.0},\"{tag}_speedup\":{:.4}",
                    meds[i],
                    default_med / meds[i]
                );
            }
            rows.push('}');
        }
        // Tuner cross-check at this probe: does the builtin table's
        // choice match the measured winner at the top of the ladder?
        let p_max = *threads.last().unwrap();
        let tuned = TunedDsu::with_mode(probe.n, 0xAB, TunerMode::Auto);
        timed_parallel_run(&tuned, &probe.workload, p_max);
        let choice = tuned.chosen_variant();
        let winner = winner_at_max.expect("ladder is non-empty");
        let mut choice_med = medians_at_max
            [variants.iter().position(|&v| v == choice).expect("choice is in the plane")];
        let mut winner_med = medians_at_max
            [variants.iter().position(|&v| v == winner).expect("winner is in the plane")];
        // Head-to-head refinement: the matrix argmin compares medians
        // measured a full round-robin apart, so slow host phases land
        // between the arms and a nominal gap can be pure drift (observed
        // here: the same variant's DRAM median moves 10-25% across runs).
        // When the choice nominally misses the band, re-measure just
        // {choice, winner} back-to-back interleaved — the drift-cancelling
        // arrangement every A/B in this repo trusts — and let that pair
        // decide the verdict.
        let mut refined = false;
        if choice != winner && choice_med > TIE_TOLERANCE * winner_med {
            let mut cm = Vec::with_capacity(2 * samples);
            let mut wm = Vec::with_capacity(2 * samples);
            for _ in 0..2 * samples {
                let d = VariantDsu::build(choice, probe.n, 0xAB);
                cm.push(timed_parallel_run(&d, &probe.workload, p_max).as_nanos() as f64);
                let d = VariantDsu::build(winner, probe.n, 0xAB);
                wm.push(timed_parallel_run(&d, &probe.workload, p_max).as_nanos() as f64);
            }
            choice_med = median(&mut cm);
            winner_med = median(&mut wm);
            refined = true;
        }
        let matches = choice == winner || choice_med <= TIE_TOLERANCE * winner_med;
        let verdict = if choice == winner {
            "MATCH"
        } else if matches && refined {
            "MATCH (tie, head-to-head)"
        } else if matches {
            "MATCH (tie)"
        } else {
            "MISMATCH"
        };
        println!(
            "tuner cross-check [{}]: sampled {} ops, switched {}, chose {} ({:.0} ns) | matrix \
             winner {} ({:.0} ns) -> {verdict}",
            probe.label,
            tuned.tuner_samples(),
            tuned.tuner_switches(),
            choice.tag(),
            choice_med,
            winner.tag(),
            winner_med
        );
        if !checks.is_empty() {
            checks.push(',');
        }
        let _ = write!(
            checks,
            "\n    {{\"probe\":\"{}\",\"n\":{},\"tuner_choice\":\"{}\",\"matrix_winner\":\"{}\",\
             \"tuner_matches_winner\":{},\"head_to_head_refined\":{},\"tuner_samples\":{},\
             \"tuner_switches\":{}}}",
            probe.label,
            probe.n,
            choice.tag(),
            winner.tag(),
            matches,
            refined,
            tuned.tuner_samples(),
            tuned.tuner_switches()
        );
    }

    if let Some(path) = args.get("json") {
        let json = format!(
            "{{\n  \"example\": \"variants_ab\",\n  \"machine\": {},\n  \"samples\": {samples},\n  \
             \"results\": [{rows}\n  ],\n  \"tuner_checks\": [{checks}\n  ]\n}}\n",
            machine_fingerprint_json()
        );
        std::fs::write(path, json).expect("write json");
        println!("wrote {path}");
    }
}

//! Interleaved A/B comparison of the packed vs. flat parent store.
//!
//! The criterion benches time each structure in its own window, which on a
//! busy host lets CPU-steal drift masquerade as a layout effect. This
//! harness alternates packed and flat samples back to back, so both see
//! the same environment, and reports per-thread-count medians and the
//! packed/flat throughput ratio — printed as a table and, with
//! `--json PATH`, written out for archiving or CI artifacts.
//!
//! Run: `cargo run --release -p dsu-bench --example packed_vs_flat_ab --
//!       [--samples 15] [--n 1048576] [--m 2097152] [--threads 1,2,4,8]
//!       [--json out.json] [--quick true]`

use std::fmt::Write as _;

use concurrent_dsu::{Dsu, FlatStore, PackedStore, TwoTrySplit};
use dsu_bench::{median, standard_workload, timed_parallel_run};
use dsu_harness::Args;

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let samples = args.usize("samples", if quick { 5 } else { 15 });
    let n = args.usize("n", if quick { 1 << 14 } else { 1 << 20 });
    let m = args.usize("m", 2 * n);
    let threads = args.thread_ladder();

    let w = standard_workload(n, m);
    println!("n = {n}, m = {m}, {samples} interleaved samples per layout");
    println!("{:>7} {:>14} {:>14} {:>8}", "threads", "packed ns", "flat ns", "ratio");
    let mut rows = String::new();
    for &p in &threads {
        // Warm-up one run of each.
        let dsu: Dsu<TwoTrySplit, PackedStore> = Dsu::new(n);
        timed_parallel_run(&dsu, &w, p);
        let dsu: Dsu<TwoTrySplit, FlatStore> = Dsu::new(n);
        timed_parallel_run(&dsu, &w, p);
        let mut packed_ns = Vec::with_capacity(samples);
        let mut flat_ns = Vec::with_capacity(samples);
        for _ in 0..samples {
            let dsu: Dsu<TwoTrySplit, PackedStore> = Dsu::new(n);
            packed_ns.push(timed_parallel_run(&dsu, &w, p).as_nanos() as f64);
            let dsu: Dsu<TwoTrySplit, FlatStore> = Dsu::new(n);
            flat_ns.push(timed_parallel_run(&dsu, &w, p).as_nanos() as f64);
        }
        let (pm, fm) = (median(&mut packed_ns), median(&mut flat_ns));
        println!("{:>7} {:>14.0} {:>14.0} {:>8.3}", p, pm, fm, fm / pm);
        if !rows.is_empty() {
            rows.push(',');
        }
        let _ = write!(
            rows,
            "\n    {{\"threads\":{p},\"packed_median_ns\":{pm:.0},\"flat_median_ns\":{fm:.0},\
             \"packed_speedup\":{:.4}}}",
            fm / pm
        );
    }

    if let Some(path) = args.get("json") {
        let json = format!(
            "{{\n  \"example\": \"packed_vs_flat_ab\",\n  \"machine\": {},\n  \
             \"workload\": {{\"n\": {n}, \
             \"m\": {m}, \"unite_fraction\": 0.5, \"seed\": \"0xBE7C\"}},\n  \
             \"samples\": {samples},\n  \"results\": [{rows}\n  ]\n}}\n",
            dsu_bench::machine_fingerprint_json()
        );
        std::fs::write(path, json).expect("write json");
        println!("wrote {path}");
    }
}

//! Interleaved A/B comparison of the packed vs. flat parent store.
//!
//! The criterion benches time each structure in its own window, which on a
//! busy host lets CPU-steal drift masquerade as a layout effect. This
//! harness alternates packed and flat samples back to back, so both see
//! the same environment, and reports per-thread-count medians and the
//! packed/flat throughput ratio.
//!
//! Run: `cargo run --release -p dsu-bench --example packed_vs_flat_ab [samples]`

use concurrent_dsu::{Dsu, FlatStore, PackedStore, TwoTrySplit};
use dsu_bench::{standard_workload, timed_parallel_run};

const N: usize = 1 << 20;
const M: usize = 1 << 21;

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let samples: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(15);
    let w = standard_workload(N, M);
    println!("n = {N}, m = {M}, {samples} interleaved samples per layout");
    println!("{:>7} {:>14} {:>14} {:>8}", "threads", "packed ns", "flat ns", "ratio");
    for &p in &[1usize, 2, 4, 8] {
        // Warm-up one run of each.
        let dsu: Dsu<TwoTrySplit, PackedStore> = Dsu::new(N);
        timed_parallel_run(&dsu, &w, p);
        let dsu: Dsu<TwoTrySplit, FlatStore> = Dsu::new(N);
        timed_parallel_run(&dsu, &w, p);
        let mut packed_ns = Vec::with_capacity(samples);
        let mut flat_ns = Vec::with_capacity(samples);
        for _ in 0..samples {
            let dsu: Dsu<TwoTrySplit, PackedStore> = Dsu::new(N);
            packed_ns.push(timed_parallel_run(&dsu, &w, p).as_nanos() as f64);
            let dsu: Dsu<TwoTrySplit, FlatStore> = Dsu::new(N);
            flat_ns.push(timed_parallel_run(&dsu, &w, p).as_nanos() as f64);
        }
        let (pm, fm) = (median(&mut packed_ns), median(&mut flat_ns));
        println!("{:>7} {:>14.0} {:>14.0} {:>8.3}", p, pm, fm, fm / pm);
    }
}

//! Interleaved A/B comparison of the sharded vs. packed parent store.
//!
//! Same discipline as `packed_vs_flat_ab` / `batch_vs_perop_ab` (and the
//! same flag set): samples of the two contenders alternate back to back so
//! host drift cancels, and per-thread-count medians plus the
//! sharded/packed throughput ratio are printed and, with `--json PATH`,
//! archived (`BENCH_PR3.json`) or uploaded as CI artifacts.
//!
//! The layouts are semantically identical (same seed, same ids, same
//! linking decisions — CI cross-checks this), so the ratio isolates pure
//! placement: per-shard slabs + one extra dependent indirection vs. one
//! contiguous slab. On a single memory domain expect sharded to *lose*
//! (0.6–0.7× in `BENCH_PR3.json` — the indirection sits on the find's
//! serial pointer chase and there is no placement win to repay it); the
//! layout is built for multi-socket/NUMA placement, which this harness
//! measures when run there. `--skew-shards`/`--skew-bias` switch the
//! workload to the shard-skew distribution (`ElementDist::ShardSkew`) to
//! aim traffic at one shard — the adversarial placement shape.
//!
//! Run: `cargo run --release -p dsu-bench --example sharded_vs_packed_ab --
//!       [--samples 15] [--n 4194304] [--m 8388608] [--shards 0=auto]
//!       [--skew-shards 0] [--skew-bias 0.8] [--threads 1,2,4,8]
//!       [--json out.json] [--quick true]`

use std::fmt::Write as _;

use concurrent_dsu::{Dsu, PackedStore, ShardSpec, ShardedStore, TwoTrySplit};
use dsu_bench::{median, shard_skew_workload, standard_workload, timed_parallel_run};
use dsu_harness::Args;

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let samples = args.usize("samples", if quick { 5 } else { 15 });
    // Default past the last-level cache: placement effects vanish on a
    // cache-resident store (BENCH_PR2's caveat).
    let n = args.usize("n", if quick { 1 << 14 } else { 1 << 22 });
    let m = args.usize("m", 2 * n);
    let shards = args.usize("shards", 0);
    let skew_shards = args.usize("skew-shards", 0);
    let skew_bias = args.f64("skew-bias", 0.8);
    let threads = args.thread_ladder();

    let spec = if shards == 0 { ShardSpec::auto() } else { ShardSpec::with_shards(shards) };
    let w = if skew_shards == 0 {
        standard_workload(n, m)
    } else {
        shard_skew_workload(n, m, skew_shards, skew_bias)
    };
    let seed = Dsu::<TwoTrySplit, PackedStore>::DEFAULT_SEED;
    println!(
        "n = {n}, m = {m}, {} shards, {samples} interleaved samples per layout{}",
        spec.shards(),
        if skew_shards == 0 {
            String::new()
        } else {
            format!(", skew {skew_bias} -> 1/{skew_shards} of the universe")
        }
    );
    println!("{:>7} {:>14} {:>14} {:>8}", "threads", "packed ns", "sharded ns", "ratio");
    let mut rows = String::new();
    for &p in &threads {
        // Warm-up one run of each.
        let dsu: Dsu<TwoTrySplit, PackedStore> = Dsu::new(n);
        timed_parallel_run(&dsu, &w, p);
        let dsu: Dsu<TwoTrySplit, ShardedStore> =
            Dsu::from_store(ShardedStore::with_spec(n, seed, spec));
        timed_parallel_run(&dsu, &w, p);
        let mut packed_ns = Vec::with_capacity(samples);
        let mut sharded_ns = Vec::with_capacity(samples);
        for _ in 0..samples {
            let dsu: Dsu<TwoTrySplit, PackedStore> = Dsu::new(n);
            packed_ns.push(timed_parallel_run(&dsu, &w, p).as_nanos() as f64);
            let dsu: Dsu<TwoTrySplit, ShardedStore> =
                Dsu::from_store(ShardedStore::with_spec(n, seed, spec));
            sharded_ns.push(timed_parallel_run(&dsu, &w, p).as_nanos() as f64);
        }
        let (pm, sm) = (median(&mut packed_ns), median(&mut sharded_ns));
        println!("{:>7} {:>14.0} {:>14.0} {:>8.3}", p, pm, sm, pm / sm);
        if !rows.is_empty() {
            rows.push(',');
        }
        let _ = write!(
            rows,
            "\n    {{\"threads\":{p},\"packed_median_ns\":{pm:.0},\"sharded_median_ns\":{sm:.0},\
             \"sharded_speedup\":{:.4}}}",
            pm / sm
        );
    }

    if let Some(path) = args.get("json") {
        let json = format!(
            "{{\n  \"example\": \"sharded_vs_packed_ab\",\n  \"machine\": {},\n  \
             \"workload\": {{\"n\": {n}, \
             \"m\": {m}, \"unite_fraction\": 0.5, \"shards\": {}, \"skew_shards\": {skew_shards}, \
             \"skew_bias\": {skew_bias}, \"seed\": \"0xBE7C\"}},\n  \"samples\": {samples},\n  \
             \"results\": [{rows}\n  ]\n}}\n",
            dsu_bench::machine_fingerprint_json(),
            spec.shards()
        );
        std::fs::write(path, json).expect("write json");
        println!("wrote {path}");
    }
}

//! Interleaved A/B comparison of batched vs. per-op edge ingestion.
//!
//! Both contenders ingest the same Zipf-skewed batched-arrival trace
//! through the same dynamic burst-cursor scheduler; the only difference is
//! `unite_batch` per burst (the filtered, word-seeded bulk path) versus a
//! `unite` call per edge. Samples alternate back to back so host drift
//! cancels; per-thread-count medians and the batched/per-op throughput
//! ratio are printed and, with `--json PATH`, written out for archiving
//! (`BENCH_PR2.json`) or CI artifacts.
//!
//! The default workload keeps the parent store (32 MB at `n = 2^22`)
//! larger than the last-level cache: that is both the production-scale
//! regime (millions of elements) and the one where the batch path's
//! gather waves pay — with a cache-resident store the two ingestion modes
//! tie, because there are no misses left to overlap.
//!
//! Run: `cargo run --release -p dsu-bench --example batch_vs_perop_ab --
//!       [--samples 15] [--n 4194304] [--batches 2048] [--batch-size 1024]
//!       [--zipf 1.0] [--threads 1,2,4,8] [--json out.json] [--quick true]`

use std::fmt::Write as _;

use concurrent_dsu::{Dsu, TwoTrySplit};
use dsu_bench::{median, standard_edge_batches, timed_ingest_batched, timed_ingest_per_op};
use dsu_harness::Args;

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let samples = args.usize("samples", if quick { 5 } else { 15 });
    let n = args.usize("n", if quick { 1 << 14 } else { 1 << 22 });
    let batches = args.usize("batches", if quick { 1 << 6 } else { 1 << 11 });
    let batch_size = args.usize("batch-size", 1 << 10);
    let zipf = args.f64("zipf", 1.0);
    let threads = args.thread_ladder();

    let arrivals = standard_edge_batches(n, batches, batch_size, zipf);
    let m = arrivals.total_edges();
    println!(
        "n = {n}, {batches} bursts x {batch_size} edges = {m} edges, zipf {zipf}, \
         {samples} interleaved samples per mode"
    );
    println!("{:>7} {:>14} {:>14} {:>8}", "threads", "per-op ns", "batched ns", "speedup");

    let mut rows = String::new();
    for &p in &threads {
        // Warm-up one run of each.
        let dsu: Dsu<TwoTrySplit> = Dsu::new(n);
        timed_ingest_per_op(&dsu, &arrivals.batches, p);
        let dsu: Dsu<TwoTrySplit> = Dsu::new(n);
        timed_ingest_batched(&dsu, &arrivals.batches, p);
        let mut per_op_ns = Vec::with_capacity(samples);
        let mut batched_ns = Vec::with_capacity(samples);
        for _ in 0..samples {
            let dsu: Dsu<TwoTrySplit> = Dsu::new(n);
            per_op_ns.push(timed_ingest_per_op(&dsu, &arrivals.batches, p).as_nanos() as f64);
            let dsu: Dsu<TwoTrySplit> = Dsu::new(n);
            batched_ns.push(timed_ingest_batched(&dsu, &arrivals.batches, p).as_nanos() as f64);
        }
        let (om, bm) = (median(&mut per_op_ns), median(&mut batched_ns));
        println!("{:>7} {:>14.0} {:>14.0} {:>8.3}", p, om, bm, om / bm);
        if !rows.is_empty() {
            rows.push(',');
        }
        let _ = write!(
            rows,
            "\n    {{\"threads\":{p},\"per_op_median_ns\":{om:.0},\"batched_median_ns\":{bm:.0},\
             \"batched_speedup\":{:.4}}}",
            om / bm
        );
    }

    if let Some(path) = args.get("json") {
        let json = format!(
            "{{\n  \"example\": \"batch_vs_perop_ab\",\n  \"machine\": {},\n  \
             \"workload\": {{\"n\": {n}, \
             \"batches\": {batches}, \"batch_size\": {batch_size}, \"zipf\": {zipf}, \
             \"seed\": \"0xBA7C\"}},\n  \"samples\": {samples},\n  \"results\": [{rows}\n  ]\n}}\n",
            dsu_bench::machine_fingerprint_json()
        );
        std::fs::write(path, json).expect("write json");
        println!("wrote {path}");
    }
}

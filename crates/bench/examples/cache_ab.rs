//! Interleaved A/B of the hot-root cache and the gather-wave depth.
//!
//! Six contenders ingest the same Zipf-skewed batched-arrival trace
//! through the same burst-cursor scheduler:
//!
//! * `nocache_d2` — batch path, wave depth 2, no hot-root cache (the
//!   PR 2/3 baseline);
//! * `nocache_d3` — batch path, wave depth 3, no cache (isolates the
//!   third gather level);
//! * `cache_d2`  — batch path, wave depth 2, per-worker cache persistent
//!   across bursts (isolates the cache on the wave-fed path);
//! * `cache_d3`  — batch path, wave depth 3 + cache (the default batch
//!   configuration);
//! * `perop`     — a `unite` call per edge (the serial-find baseline);
//! * `perop_cached` — a `unite` per edge through a per-worker
//!   [`Dsu::cached`] session: the pair that isolates the cache's effect
//!   on the *serial* find path, where every hop is a dependent load the
//!   batch path's gather waves would have preloaded.
//!
//! Samples alternate round-robin so host drift cancels; per-thread-count
//! medians and speedups over the matching baseline are printed and, with
//! `--json PATH`, archived (`BENCH_PR4.json`) with the machine
//! fingerprint and single-threaded `OpStats` attribution records
//! (`cache_hits` / `cache_stale` / `prefetch_waves`), so a win or a loss
//! is traced to counters rather than guessed at.
//!
//! Size matters: run once DRAM-resident (`--n 4194304`, the default) and
//! once cache-resident (e.g. `--n 262144`) — layout and MLP effects only
//! exist when the store outruns the LLC (see `BENCH_PR2.json`).
//!
//! Run: `cargo run --release -p dsu-bench --example cache_ab --
//!       [--samples 11] [--n 4194304] [--batches 2048] [--batch-size 1024]
//!       [--zipf 1.0] [--repeat 0.0] [--threads 1,2,4,8] [--json out.json]
//!       [--quick true]`

use std::fmt::Write as _;

use concurrent_dsu::{BatchTuning, Dsu, TwoTrySplit, WaveDepth};
use dsu_bench::{
    ingest_stats_tuned, machine_fingerprint_json, median, rehit_edge_batches, stats_json,
    timed_ingest_batched_tuned, timed_ingest_per_op, timed_ingest_per_op_cached,
};
use dsu_harness::Args;

const BATCH_ARMS: [(&str, WaveDepth, bool); 4] = [
    ("nocache_d2", WaveDepth::Two, false),
    ("nocache_d3", WaveDepth::Three, false),
    ("cache_d2", WaveDepth::Two, true),
    ("cache_d3", WaveDepth::Three, true),
];

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let samples = args.usize("samples", if quick { 5 } else { 11 });
    let n = args.usize("n", if quick { 1 << 14 } else { 1 << 22 });
    let batches = args.usize("batches", if quick { 1 << 6 } else { 1 << 11 });
    let batch_size = args.usize("batch-size", 1 << 10);
    let zipf = args.f64("zipf", 1.0);
    let repeat = args.f64("repeat", 0.0);
    let threads = args.thread_ladder();

    let arrivals = rehit_edge_batches(n, batches, batch_size, zipf, repeat);
    let m = arrivals.total_edges();
    println!(
        "n = {n}, {batches} bursts x {batch_size} edges = {m} edges, zipf {zipf}, \
         repeat {repeat}, {samples} interleaved samples per arm, prefetch {}",
        if concurrent_dsu::store::prefetch_enabled() { "on" } else { "off" }
    );

    // Arm index -> one timed run at thread count p, on a fresh structure.
    let run_arm = |arm: usize, p: usize| -> f64 {
        let dsu: Dsu<TwoTrySplit> = Dsu::new(n);
        let d = match arm {
            0..=3 => {
                let (_, depth, cached) = BATCH_ARMS[arm];
                timed_ingest_batched_tuned(
                    &dsu,
                    &arrivals.batches,
                    p,
                    BatchTuning::new().wave_depth(depth),
                    cached,
                )
            }
            4 => timed_ingest_per_op(&dsu, &arrivals.batches, p),
            _ => timed_ingest_per_op_cached(&dsu, &arrivals.batches, p),
        };
        d.as_nanos() as f64
    };

    println!(
        "{:>7} {:>13} {:>13} {:>13} {:>13} {:>13} {:>13} {:>7} {:>7} {:>7} {:>7}",
        "threads",
        "nocache_d2",
        "nocache_d3",
        "cache_d2",
        "cache_d3",
        "perop",
        "perop_cached",
        "d3_x",
        "c2_x",
        "c3_x",
        "pcache_x"
    );

    let mut rows = String::new();
    for &p in &threads {
        for arm in 0..6 {
            run_arm(arm, p); // warm-up
        }
        let mut ns: [Vec<f64>; 6] = Default::default();
        for _ in 0..samples {
            for (arm, samples_vec) in ns.iter_mut().enumerate() {
                samples_vec.push(run_arm(arm, p));
            }
        }
        let med: Vec<f64> = ns.iter_mut().map(|v| median(v)).collect();
        let (base, d3, c2, c3) = (med[0], med[1], med[2], med[3]);
        let (po, poc) = (med[4], med[5]);
        println!(
            "{:>7} {:>13.0} {:>13.0} {:>13.0} {:>13.0} {:>13.0} {:>13.0} {:>7.3} {:>7.3} \
             {:>7.3} {:>7.3}",
            p,
            base,
            d3,
            c2,
            c3,
            po,
            poc,
            base / d3,
            base / c2,
            base / c3,
            po / poc
        );
        if !rows.is_empty() {
            rows.push(',');
        }
        let _ = write!(
            rows,
            "\n    {{\"threads\":{p},\"nocache_d2_median_ns\":{base:.0},\
             \"nocache_d3_median_ns\":{d3:.0},\"cache_d2_median_ns\":{c2:.0},\
             \"cache_d3_median_ns\":{c3:.0},\"perop_median_ns\":{po:.0},\
             \"perop_cached_median_ns\":{poc:.0},\"depth3_speedup\":{:.4},\
             \"cache_d2_speedup\":{:.4},\"cache_d3_speedup\":{:.4},\
             \"perop_cache_speedup\":{:.4}}}",
            base / d3,
            base / c2,
            base / c3,
            po / poc
        );
    }

    // Single-threaded attribution: the counters that explain the deltas.
    let mut attribution = String::new();
    for &(name, depth, cached) in &BATCH_ARMS {
        let dsu: Dsu<TwoTrySplit> = Dsu::new(n);
        let stats = ingest_stats_tuned(
            &dsu,
            &arrivals.batches,
            BatchTuning::new().wave_depth(depth),
            cached,
        );
        println!(
            "{name}: reads {} cache_hits {} cache_stale {} prefetch_waves {}",
            stats.reads, stats.cache_hits, stats.cache_stale, stats.prefetch_waves
        );
        if !attribution.is_empty() {
            attribution.push(',');
        }
        let _ = write!(attribution, "\n    \"{name}\": {}", stats_json(&stats));
    }
    // Per-op pair attribution: one instrumented pass each.
    {
        let dsu: Dsu<TwoTrySplit> = Dsu::new(n);
        let mut plain = concurrent_dsu::OpStats::default();
        for burst in &arrivals.batches {
            for &(x, y) in burst {
                dsu.unite_with(x, y, &mut plain);
            }
        }
        let dsu: Dsu<TwoTrySplit> = Dsu::new(n);
        let mut session = dsu.cached();
        let mut cached = concurrent_dsu::OpStats::default();
        for burst in &arrivals.batches {
            for &(x, y) in burst {
                session.unite_with(x, y, &mut cached);
            }
        }
        for (name, stats) in [("perop", &plain), ("perop_cached", &cached)] {
            println!(
                "{name}: reads {} cache_hits {} cache_stale {}",
                stats.reads, stats.cache_hits, stats.cache_stale
            );
            attribution.push(',');
            let _ = write!(attribution, "\n    \"{name}\": {}", stats_json(stats));
        }
    }

    if let Some(path) = args.get("json") {
        let json = format!(
            "{{\n  \"example\": \"cache_ab\",\n  \"machine\": {},\n  \"workload\": {{\"n\": {n}, \
             \"batches\": {batches}, \"batch_size\": {batch_size}, \"zipf\": {zipf}, \
             \"repeat\": {repeat}, \"seed\": \"0xBA7C\"}},\n  \"prefetch\": {},\n  \
             \"samples\": {samples},\n  \"results\": [{rows}\n  ],\n  \
             \"attribution_1thread\": {{{attribution}\n  }}\n}}\n",
            machine_fingerprint_json(),
            concurrent_dsu::store::prefetch_enabled(),
        );
        std::fs::write(path, json).expect("write json");
        println!("wrote {path}");
    }
}

//! Application benchmarks (the micro version of experiment E9): connected
//! components, minimum spanning forest, and percolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dsu_graph::components::{parallel_components, sequential_components};
use dsu_graph::gen;
use dsu_graph::mst::{boruvka_parallel, kruskal};
use dsu_graph::percolation::percolation_threshold;

fn bench_components(c: &mut Criterion) {
    let scale = 15u32;
    let n = 1usize << scale;
    let gnm = gen::gnm(n, 4 * n, 0xB1);
    let rmat = gen::rmat_standard(scale, 4 * n, 0xB2);
    let mut group = c.benchmark_group("connected_components");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for (name, g) in [("gnm", &gnm), ("rmat", &rmat)] {
        group.bench_function(BenchmarkId::new("sequential", name), |b| {
            b.iter(|| black_box(sequential_components(g)))
        });
        for p in [4usize, 8] {
            group.bench_function(BenchmarkId::new(format!("parallel-p{p}"), name), |b| {
                b.iter(|| black_box(parallel_components(g, p)))
            });
        }
    }
    group.finish();
}

fn bench_msf(c: &mut Criterion) {
    let n = 1usize << 14;
    let g = gen::gnm(n, 4 * n, 0xB3);
    let mut group = c.benchmark_group("minimum_spanning_forest");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.bench_function("kruskal", |b| b.iter(|| black_box(kruskal(&g))));
    for p in [4usize, 8] {
        group.bench_function(BenchmarkId::new("boruvka", p), |b| {
            b.iter(|| black_box(boruvka_parallel(&g, p)))
        });
    }
    group.finish();
}

fn bench_percolation(c: &mut Criterion) {
    let mut group = c.benchmark_group("percolation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for size in [64usize, 128] {
        group.bench_function(BenchmarkId::new("trial", size), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(percolation_threshold(size, seed))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_components, bench_msf, bench_percolation);
criterion_main!(benches);

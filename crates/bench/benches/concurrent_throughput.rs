//! Multi-threaded throughput per structure (the micro version of
//! experiment E4): the Jayanti–Tarjan structure — on the packed and flat
//! parent stores — vs the Anderson–Woll-style and lock baselines at 1, 2,
//! 4, and 8 threads.
//!
//! The `jt-two-try-packed` / `jt-two-try-flat` pair isolates the storage
//! layout (same policy, same ids, same workload); its ratio is the number
//! tracked in `BENCH_PR1.json`. The `ingest-per-op` / `ingest-batched`
//! pair isolates the batch ingestion path (same structure, same bursts,
//! same dynamic scheduler); its ratio is the number tracked in
//! `BENCH_PR2.json` (the drift-cancelling twin is the
//! `batch_vs_perop_ab` example).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use concurrent_dsu::{
    Dsu, FlatStore, GrowableDsu, OneTrySplit, PackedStore, ShardSpec, ShardedStore, TwoTrySplit,
};
use dsu_baselines::{AwDsu, LockedDsu};
use dsu_bench::{
    standard_edge_batches, standard_workload, timed_ingest_batched, timed_ingest_batched_planned,
    timed_ingest_per_op, timed_parallel_run, timed_parallel_run_cached, timed_parallel_run_planned,
};
use sequential_dsu::{Compaction, Linking};

const N: usize = 1 << 20;
const M: usize = 1 << 21;
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Batched-arrival shape: 2^11 bursts of 2^10 edges = 2^21 edges over
/// 2^22 vertices, Zipf-skewed endpoints. The universe is sized so the
/// parent store (32 MB) exceeds the last-level cache — the regime where
/// the batch path's gather waves can overlap misses per-op dispatch
/// serializes (with a cache-resident store the two modes tie).
const N_INGEST: usize = 1 << 22;
const BATCHES: usize = 1 << 11;
const BATCH_SIZE: usize = 1 << 10;
const ZIPF: f64 = 1.0;

fn bench_structures(c: &mut Criterion) {
    let w = standard_workload(N, M);
    let mut group = c.benchmark_group("concurrent_throughput");
    group.throughput(Throughput::Elements(M as u64));
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(600));
    group.measurement_time(std::time::Duration::from_millis(4000));
    for &p in &THREADS {
        group.bench_function(BenchmarkId::new("jt-two-try-packed", p), |b| {
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let dsu: Dsu<TwoTrySplit, PackedStore> = Dsu::new(N);
                    total += timed_parallel_run(&dsu, &w, p);
                }
                total
            })
        });
        group.bench_function(BenchmarkId::new("jt-two-try-flat", p), |b| {
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let dsu: Dsu<TwoTrySplit, FlatStore> = Dsu::new(N);
                    total += timed_parallel_run(&dsu, &w, p);
                }
                total
            })
        });
        group.bench_function(BenchmarkId::new("jt-two-try-sharded", p), |b| {
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    // One shard per measured thread count, not per host
                    // core: keeps the criterion numbers comparable across
                    // machines (the A/B example sweeps the auto spec).
                    let store = ShardedStore::with_spec(
                        N,
                        Dsu::<TwoTrySplit, PackedStore>::DEFAULT_SEED,
                        ShardSpec::with_shards(p),
                    );
                    let dsu: Dsu<TwoTrySplit, ShardedStore> = Dsu::from_store(store);
                    total += timed_parallel_run(&dsu, &w, p);
                }
                total
            })
        });
        group.bench_function(BenchmarkId::new("jt-two-try-cached", p), |b| {
            // Same structure and workload as jt-two-try-packed, but every
            // worker routes its ops through a per-thread hot-root cache
            // session (Dsu::cached): the pair isolates the cache layer on
            // the serial per-op path (the number cache_ab tracks in
            // BENCH_PR4.json).
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let dsu: Dsu<TwoTrySplit, PackedStore> = Dsu::new(N);
                    total += timed_parallel_run_cached(&dsu, &w, p);
                }
                total
            })
        });
        group.bench_function(BenchmarkId::new("jt-two-try-planned", p), |b| {
            // Same structure and workload as jt-two-try-packed, but every
            // worker buffers its consecutive unites into bursts ingested
            // through the ingestion planner (run_shards_planned): the row
            // that shows what planner-routed ingestion buys (or costs) on
            // the mixed workload (the number bucket_ab tracks in
            // BENCH_PR5.json on the pure burst shape).
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let dsu: Dsu<TwoTrySplit, PackedStore> = Dsu::new(N);
                    total += timed_parallel_run_planned(&dsu, &w, p);
                }
                total
            })
        });
        group.bench_function(BenchmarkId::new("jt-one-try", p), |b| {
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let dsu: Dsu<OneTrySplit> = Dsu::new(N);
                    total += timed_parallel_run(&dsu, &w, p);
                }
                total
            })
        });
        group.bench_function(BenchmarkId::new("jt-growable", p), |b| {
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let dsu: GrowableDsu<TwoTrySplit> = GrowableDsu::with_initial(N);
                    total += timed_parallel_run(&dsu, &w, p);
                }
                total
            })
        });
        group.bench_function(BenchmarkId::new("aw-rank-halving", p), |b| {
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let dsu = AwDsu::new(N);
                    total += timed_parallel_run(&dsu, &w, p);
                }
                total
            })
        });
        group.bench_function(BenchmarkId::new("global-lock", p), |b| {
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let dsu = LockedDsu::new(N, Linking::ByRank, Compaction::Halving);
                    total += timed_parallel_run(&dsu, &w, p);
                }
                total
            })
        });
    }
    group.finish();
}

fn bench_ingestion(c: &mut Criterion) {
    let arrivals = standard_edge_batches(N_INGEST, BATCHES, BATCH_SIZE, ZIPF);
    let m = arrivals.total_edges();
    let mut group = c.benchmark_group("batch_ingest");
    group.throughput(Throughput::Elements(m as u64));
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(600));
    group.measurement_time(std::time::Duration::from_millis(4000));
    for &p in &THREADS {
        group.bench_function(BenchmarkId::new("ingest-per-op", p), |b| {
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let dsu: Dsu<TwoTrySplit, PackedStore> = Dsu::new(N_INGEST);
                    total += timed_ingest_per_op(&dsu, &arrivals.batches, p);
                }
                total
            })
        });
        group.bench_function(BenchmarkId::new("ingest-batched", p), |b| {
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let dsu: Dsu<TwoTrySplit, PackedStore> = Dsu::new(N_INGEST);
                    total += timed_ingest_batched(&dsu, &arrivals.batches, p);
                }
                total
            })
        });
        group.bench_function(BenchmarkId::new("ingest-planned", p), |b| {
            // Same bursts through the ingestion planner — the pair with
            // ingest-batched isolates the planner exactly (the drift-free
            // twin is the bucket_ab example).
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let dsu: Dsu<TwoTrySplit, PackedStore> = Dsu::new(N_INGEST);
                    total += timed_ingest_batched_planned(&dsu, &arrivals.batches, p);
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_structures, bench_ingestion);
criterion_main!(benches);

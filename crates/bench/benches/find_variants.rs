//! Single-thread per-operation cost of each find policy (the unit costs
//! behind experiment E3), plus the early-termination variants on deep
//! forests where they shine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use concurrent_dsu::{Compress, Dsu, FindPolicy, Halving, NoCompaction, OneTrySplit, TwoTrySplit};
use dsu_bench::standard_workload;
use dsu_workloads::Op;

const N: usize = 1 << 16;
const M: usize = 1 << 17;

fn run_policy<F: FindPolicy>(early: bool) {
    let dsu: Dsu<F> = Dsu::new(N);
    let w = standard_workload(N, M);
    for &op in &w.ops {
        match (op, early) {
            (Op::Unite(x, y), false) => {
                black_box(dsu.unite(x, y));
            }
            (Op::SameSet(x, y), false) => {
                black_box(dsu.same_set(x, y));
            }
            (Op::Unite(x, y), true) => {
                black_box(dsu.unite_early(x, y));
            }
            (Op::SameSet(x, y), true) => {
                black_box(dsu.same_set_early(x, y));
            }
        }
    }
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("find_variants_single_thread");
    group.throughput(Throughput::Elements(M as u64));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.bench_function(BenchmarkId::new("no-compaction", "std"), |b| {
        b.iter(|| run_policy::<NoCompaction>(false))
    });
    group.bench_function(BenchmarkId::new("one-try", "std"), |b| {
        b.iter(|| run_policy::<OneTrySplit>(false))
    });
    group.bench_function(BenchmarkId::new("two-try", "std"), |b| {
        b.iter(|| run_policy::<TwoTrySplit>(false))
    });
    group.bench_function(BenchmarkId::new("halving", "std"), |b| {
        b.iter(|| run_policy::<Halving>(false))
    });
    group.bench_function(BenchmarkId::new("compress", "std"), |b| {
        b.iter(|| run_policy::<Compress>(false))
    });
    group.bench_function(BenchmarkId::new("two-try", "early"), |b| {
        b.iter(|| run_policy::<TwoTrySplit>(true))
    });
    group.finish();
}

fn bench_find_on_deep_path(c: &mut Criterion) {
    // A chain build gives the deepest forests randomized linking produces;
    // repeated finds then measure pure traversal + compaction cost.
    let mut group = c.benchmark_group("find_deep_forest");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for (name, runner) in [
        ("one-try", run_deep::<OneTrySplit> as fn() -> usize),
        ("two-try", run_deep::<TwoTrySplit> as fn() -> usize),
        ("halving", run_deep::<Halving> as fn() -> usize),
        ("compress", run_deep::<Compress> as fn() -> usize),
    ] {
        group.bench_function(name, |b| b.iter(|| black_box(runner())));
    }
    group.finish();
}

fn run_deep<F: FindPolicy>() -> usize {
    let n = 1 << 14;
    let dsu: Dsu<F> = Dsu::new(n);
    for i in 0..n - 1 {
        dsu.unite(i, i + 1);
    }
    let mut acc = 0;
    for i in 0..n {
        acc ^= dsu.find(i);
    }
    acc
}

criterion_group!(benches, bench_policies, bench_find_on_deep_path);
criterion_main!(benches);

//! The twelve Section 2 sequential baselines (the micro version of
//! experiment E7): every linking × compaction combination on the standard
//! mixed workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use dsu_bench::standard_workload;
use dsu_workloads::Op;
use sequential_dsu::{SeqDsu, ALL_VARIANTS};

const N: usize = 1 << 15;
const M: usize = 1 << 17;

fn bench_all_variants(c: &mut Criterion) {
    let w = standard_workload(N, M);
    let mut group = c.benchmark_group("sequential_variants");
    group.throughput(Throughput::Elements(M as u64));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for (linking, compaction) in ALL_VARIANTS {
        let id = BenchmarkId::new(linking.label(), compaction.label());
        group.bench_function(id, |b| {
            b.iter(|| {
                let mut dsu = SeqDsu::new(N, linking, compaction);
                for &op in &w.ops {
                    match op {
                        Op::Unite(x, y) => {
                            black_box(dsu.unite(x, y));
                        }
                        Op::SameSet(x, y) => {
                            black_box(dsu.same_set(x, y));
                        }
                    }
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_all_variants);
criterion_main!(benches);

//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot):
//! thin wrappers over `std::sync` primitives exposing the poison-free
//! `parking_lot` API surface this workspace uses (`Mutex::lock` returning the
//! guard directly). Poisoning is dissolved by taking the inner value — these
//! baselines hold locks only around memory-safe operations.

/// A mutual-exclusion lock with `parking_lot`'s panic-transparent API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A reader–writer lock with `parking_lot`'s panic-transparent API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps `value` in a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn mutex_is_usable_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}

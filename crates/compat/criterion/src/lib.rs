//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the API subset the workspace benches use — `criterion_group!`
//! / `criterion_main!`, [`Criterion::benchmark_group`], group knobs
//! (`throughput`, `sample_size`, `warm_up_time`, `measurement_time`),
//! `bench_function` with [`Bencher::iter`] / [`Bencher::iter_custom`],
//! [`BenchmarkId`], and [`black_box`] — as a plain wall-clock runner: warm
//! up for the configured duration, take `sample_size` timed samples, report
//! the per-iteration mean and min.
//!
//! Results are printed human-readably and, when `CRITERION_JSON` names a
//! file, appended there as JSON lines
//! (`{"group":..,"bench":..,"mean_ns":..,"min_ns":..,"throughput":..}`)
//! so runs can be archived (e.g. `BENCH_PR1.json`).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units-of-work declaration for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per benchmark iteration.
    Elements(u64),
    /// Bytes processed per benchmark iteration.
    Bytes(u64),
}

/// A `group/function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label `"{function}/{parameter}"`.
    pub fn new(function: impl ToString, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{parameter}", function.to_string()) }
    }

    /// Label from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Things acceptable as a `bench_function` identifier.
pub trait IntoBenchmarkId {
    /// The final label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Per-benchmark timing driver passed to the closure of `bench_function`.
pub struct Bencher<'a> {
    iters: u64,
    elapsed: Duration,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    /// Times `iters` back-to-back calls of `f`.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Hands the iteration count to `f`, which returns the measured time.
    pub fn iter_custom(&mut self, mut f: impl FnMut(u64) -> Duration) {
        self.elapsed = f(self.iters);
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Declares units of work per iteration for throughput lines.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Untimed warm-up budget before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total timed budget (bounds how many samples actually run).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark: warm-up, then up to `sample_size` samples within
    /// the measurement budget; reports mean/min ns per iteration.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher<'_>),
    ) -> &mut Self {
        let label = id.into_label();
        if !self.criterion.matches(&self.name, &label) {
            return self;
        }
        let mut run_once = || {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO, _marker: Default::default() };
            f(&mut b);
            b.elapsed
        };
        // Warm-up: at least one run, then keep going until the budget is
        // spent.
        let warm_start = Instant::now();
        let mut last = run_once();
        while warm_start.elapsed() < self.warm_up_time {
            last = run_once();
        }
        // Sampling: each sample is one iteration (these benches do a full
        // workload per iteration); stop early when over budget.
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        let measure_start = Instant::now();
        for i in 0..self.sample_size {
            if i > 0 && measure_start.elapsed() > self.measurement_time {
                break;
            }
            samples_ns.push(run_once().as_nanos() as f64);
        }
        if samples_ns.is_empty() {
            samples_ns.push(last.as_nanos() as f64);
        }
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let min = samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let mut line = format!(
            "{}/{label}: mean {:.0} ns, min {:.0} ns over {} samples",
            self.name,
            mean,
            min,
            samples_ns.len()
        );
        let mut throughput = None;
        if let Some(Throughput::Elements(e) | Throughput::Bytes(e)) = self.throughput {
            let per_sec = e as f64 / (mean / 1e9);
            throughput = Some(per_sec);
            let _ = write!(line, " ({:.3} Melem/s)", per_sec / 1e6);
        }
        println!("{line}");
        self.criterion.record(&self.name, &label, mean, min, throughput);
        self
    }

    /// Ends the group (printing is incremental, so this is bookkeeping only).
    pub fn finish(&mut self) {}
}

/// JSON-line sink plus global state for one bench binary invocation.
pub struct Criterion {
    json_path: Option<std::path::PathBuf>,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First free CLI arg (as passed by `cargo bench -- <filter>`)
        // filters benchmarks by substring, mirroring upstream behavior.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with("--") && !a.is_empty());
        Criterion { json_path: std::env::var_os("CRITERION_JSON").map(Into::into), filter }
    }
}

impl Criterion {
    /// Opens a benchmark group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
            criterion: self,
        }
    }

    /// `true` if this benchmark should run under the CLI filter.
    pub fn matches(&self, group: &str, label: &str) -> bool {
        match &self.filter {
            Some(f) => format!("{group}/{label}").contains(f.as_str()),
            None => true,
        }
    }

    fn record(&mut self, group: &str, bench: &str, mean_ns: f64, min_ns: f64, tp: Option<f64>) {
        if let Some(path) = &self.json_path {
            let tp_field = match tp {
                Some(t) => format!("{t:.1}"),
                None => "null".to_string(),
            };
            let line = format!(
                "{{\"group\":\"{group}\",\"bench\":\"{bench}\",\"mean_ns\":{mean_ns:.1},\"min_ns\":{min_ns:.1},\"throughput_per_s\":{tp_field}}}\n",
            );
            use std::io::Write;
            let file = std::fs::OpenOptions::new().create(true).append(true).open(path);
            match file {
                Ok(mut f) => {
                    let _ = f.write_all(line.as_bytes());
                }
                Err(e) => eprintln!("criterion stub: cannot append to {}: {e}", path.display()),
            }
        }
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_reports() {
        let mut c = Criterion { json_path: None, filter: None };
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("smoke");
            g.sample_size(3)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(50))
                .throughput(Throughput::Elements(10));
            g.bench_function(BenchmarkId::new("spin", 1), |b| {
                b.iter(|| {
                    ran += 1;
                    std::hint::black_box(ran)
                })
            });
            g.finish();
        }
        assert!(ran >= 2, "warm-up plus samples must run the closure, ran = {ran}");
    }

    #[test]
    fn iter_custom_reports_duration() {
        let mut b = Bencher { iters: 4, elapsed: Duration::ZERO, _marker: Default::default() };
        b.iter_custom(|iters| Duration::from_nanos(iters * 10));
        assert_eq!(b.elapsed, Duration::from_nanos(40));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).into_label(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("p").into_label(), "p");
        assert_eq!("raw".into_label(), "raw");
    }
}

//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]` header),
//! [`Strategy`](strategy::Strategy) with `prop_map`, integer-range and
//! tuple strategies, `any::<T>()`, `prop::collection::vec`,
//! `prop::bool::ANY`, and the `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Cases are generated from a fixed seed (deterministic across runs) with
//! no shrinking: a failing case panics with the case number and seed so it
//! can be replayed by re-running the test.

pub mod strategy {
    //! Value-generation strategies.

    use rand::Rng;
    use rand_chacha::ChaCha12Rng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut ChaCha12Rng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut ChaCha12Rng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
        type Value = T;
        fn new_value(&self, rng: &mut ChaCha12Rng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn new_value(&self, rng: &mut ChaCha12Rng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut ChaCha12Rng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.new_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A / a);
    impl_tuple_strategy!(A / a, B / b);
    impl_tuple_strategy!(A / a, B / b, C / c);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d);

    /// Strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: rand::SampleStandard> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut ChaCha12Rng) -> T {
            rng.gen()
        }
    }

    /// The constant strategy: always yields a clone of its value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut ChaCha12Rng) -> T {
            self.0.clone()
        }
    }

    /// Weighted union over same-`Value` strategies — what
    /// [`prop_oneof!`](crate::prop_oneof) builds. Arms are boxed because
    /// the macro mixes heterogeneous strategy types.
    pub struct WeightedUnion<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u32,
    }

    impl<T> WeightedUnion<T> {
        /// A union drawing each arm with probability `weight / Σ weights`.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            WeightedUnion { arms, total }
        }
    }

    impl<T> Strategy for WeightedUnion<T> {
        type Value = T;
        fn new_value(&self, rng: &mut ChaCha12Rng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (w, arm) in &self.arms {
                if pick < *w {
                    return arm.new_value(rng);
                }
                pick -= w;
            }
            unreachable!("pick < total by construction")
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the "whole domain of `T`" strategy.

    /// A uniform strategy over all of `T`.
    pub fn any<T: rand::SampleStandard>() -> super::strategy::Any<T> {
        super::strategy::Any(std::marker::PhantomData)
    }
}

pub mod prop {
    //! The `prop::` namespace (`collection`, `bool`).

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use rand::Rng;
        use rand_chacha::ChaCha12Rng;

        /// Strategy for `Vec<S::Value>` with length drawn from `len`.
        pub struct VecStrategy<S> {
            elem: S,
            lo: usize,
            hi: usize, // exclusive
        }

        /// `vec(element_strategy, length_range)`.
        pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { elem, lo: len.start, hi: len.end }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut ChaCha12Rng) -> Self::Value {
                let len = rng.gen_range(self.lo..self.hi);
                (0..len).map(|_| self.elem.new_value(rng)).collect()
            }
        }
    }

    pub mod bool {
        //! Boolean strategies.

        /// A fair coin.
        pub struct BoolAny;

        impl crate::strategy::Strategy for BoolAny {
            type Value = bool;
            fn new_value(&self, rng: &mut rand_chacha::ChaCha12Rng) -> bool {
                use rand::Rng;
                rng.gen()
            }
        }

        /// The fair-coin strategy value (`prop::bool::ANY`).
        pub const ANY: BoolAny = BoolAny;
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The upstream default is 256; 64 keeps the single-core CI quick
        // while still exploring a meaningful slice of the input space.
        ProptestConfig { cases: 64 }
    }
}

/// Error type carried by failing `prop_assert!`s.
pub type TestCaseError = String;

#[doc(hidden)]
pub fn __run_cases(
    test_name: &str,
    cases: u32,
    mut body: impl FnMut(&mut rand_chacha::ChaCha12Rng) -> Result<(), TestCaseError>,
) {
    use rand::SeedableRng;
    // Fixed base seed: deterministic, still distinct per test via the name.
    let base = test_name
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3));
    for case in 0..cases {
        let seed = base.wrapping_add(case as u64);
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
        if let Err(msg) = body(&mut rng) {
            panic!("proptest case {case}/{cases} (seed {seed:#x}) failed: {msg}");
        }
    }
}

/// Source-compatible subset of proptest's entry macro. Each contained
/// `fn name(pat in strategy, ...) { body }` becomes a `#[test]` running
/// `cases` random instantiations of the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg [$cfg] $($rest)*);
    };
    (@cfg [$cfg:expr] $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            $crate::__run_cases(stringify!($name), cfg.cases, |__rng| {
                $(let $pat = $crate::strategy::Strategy::new_value(&($strat), __rng);)*
                $body
                Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg [$crate::ProptestConfig::default()] $($rest)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args..)`: fail the
/// current case without panicking through foreign frames.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// `prop_assert_eq!(left, right)`: fail the current case if `left != right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: `{} == {}` (left: {l:?}, right: {r:?})",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Source-compatible subset of proptest's `prop_oneof!`: a weighted
/// (`w => strategy`) or unweighted (`strategy, strategy, ...`) union of
/// strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $(($weight, ::std::boxed::Box::new($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $((1u32, ::std::boxed::Box::new($strat))),+
        ])
    };
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in 0u8..3) {
            prop_assert!(x < 10);
            prop_assert!(y < 3);
        }

        #[test]
        fn vec_and_tuple_strategies(v in prop::collection::vec((0..5, prop::bool::ANY), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (n, _b) in v {
                prop_assert!((0..5).contains(&n));
            }
        }

        #[test]
        fn prop_map_applies(s in (0..3, 0..3).prop_map(|(a, b)| a + b), flag in any::<bool>()) {
            prop_assert!(s <= 4, "sum {} out of range (flag {})", s, flag);
        }

        #[test]
        fn oneof_draws_every_arm(
            picks in prop::collection::vec(
                prop_oneof![
                    3 => (0usize..4).prop_map(|x| x),
                    1 => Just(100usize),
                ],
                200..201,
            )
        ) {
            prop_assert!(picks.iter().all(|&p| p < 4 || p == 100));
            prop_assert!(picks.iter().any(|&p| p < 4), "heavy arm never drawn");
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_reports_seed() {
        crate::__run_cases("always_fails", 3, |_| Err("boom".to_string()));
    }
}

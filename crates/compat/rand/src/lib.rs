//! Offline stand-in for the subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched; this crate provides source-compatible replacements for exactly
//! the items the workspace imports: [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`RngCore`], [`SeedableRng`] (`seed_from_u64`, `from_seed`), and
//! [`seq::SliceRandom`] (`shuffle`, `choose`). Generators are deterministic
//! for a given seed, which is all the experiments require; streams are *not*
//! bit-compatible with the upstream crate.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform raw bits.
pub trait RngCore {
    /// The next 32 uniform random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample of type `T` (the upstream `Standard` distribution:
    /// full range for integers, `[0, 1)` for floats, fair coin for `bool`).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly over their natural domain (`Rng::gen`).
pub trait SampleStandard: Sized {
    /// Draws one sample from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types samplable uniformly from a caller-supplied range (`Rng::gen_range`).
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform sample from `[lo, hi)` (`inclusive == false`) or
    /// `[lo, hi]` (`inclusive == true`). The caller guarantees non-emptiness.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                // Width as u128 so `lo..=MAX` ranges cannot overflow.
                let width = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                debug_assert!(width > 0);
                let r = ((rng.next_u64() as u128) % width) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from an empty range");
        T::sample_in(rng, lo, hi, true)
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded to a full seed with
    /// SplitMix64 (same construction as the upstream crate's default).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut z = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= x >> 31;
            let bytes = x.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices: in-place shuffling and random choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Uniformly shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = Lcg(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Lcg(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut Lcg(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_covers_slice() {
        let v = [1, 2, 3];
        let mut rng = Lcg(9);
        for _ in 0..10 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

//! Offline stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate: [`ChaCha12Rng`], a genuine 12-round ChaCha keystream generator
//! implementing the workspace `rand` stub's [`RngCore`]/[`SeedableRng`].
//!
//! Deterministic per seed (which is what every experiment relies on), but
//! the stream is *not* bit-compatible with the upstream crate.

use rand::{RngCore, SeedableRng};

/// A ChaCha generator with 12 rounds, seeded with a 256-bit key.
#[derive(Clone, Debug)]
pub struct ChaCha12Rng {
    /// 8 key words (seed).
    key: [u32; 8],
    /// 64-bit block counter (original djb variant: 64-bit counter + nonce).
    counter: u64,
    /// Output buffer of the current block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill".
    idx: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 12;

#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&CHACHA_CONST);
        input[4..12].copy_from_slice(&self.key);
        input[12] = self.counter as u32;
        input[13] = (self.counter >> 32) as u32;
        // Words 14/15: zero nonce.
        let mut state = input;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter(&mut state, 0, 4, 8, 12);
            quarter(&mut state, 1, 5, 9, 13);
            quarter(&mut state, 2, 6, 10, 14);
            quarter(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut state, 0, 5, 10, 15);
            quarter(&mut state, 1, 6, 11, 12);
            quarter(&mut state, 2, 7, 8, 13);
            quarter(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buf[i] = state[i].wrapping_add(input[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha12Rng { key, counter: 0, buf: [0; 16], idx: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        let mut c = ChaCha12Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn clone_continues_the_stream() {
        let mut a = ChaCha12Rng::seed_from_u64(7);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn output_looks_uniform() {
        // Bit-balance smoke test: the mean of many unit samples is ~0.5.
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let total: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum();
        let mean = total / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn blocks_differ() {
        // Consecutive 16-word blocks must not repeat (counter advances).
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}

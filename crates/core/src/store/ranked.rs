//! The rank-carrying layout backing union-by-rank linking.
//!
//! ```text
//!   63            32 31             0
//!  +----------------+----------------+
//!  |      rank      |  parent index  |
//!  +----------------+----------------+
//!    mutable (root-     mutable
//!     only bumps)
//! ```
//!
//! [`RankLink`](crate::RankLink) needs a rank that travels with the parent
//! under one word-exact CAS: a link that expects the observed word then
//! fails if the rank moved since the comparison, which is exactly the
//! freezing property the acyclicity argument needs (see
//! [`order`](crate::order)). The random ids — still required, because the
//! layout must remain a full [`DsuStore`] usable with every link policy —
//! live in a side array like the flat layout's, read only when the
//! [`RandomLink`](crate::RandomLink) policy asks for priorities.
//!
//! Unlike every other layout, the *high* half of the word is mutable too
//! (rank bumps), but only while the node is a root and only upward:
//! [`ParentStore::try_bump_rank`] re-checks both under CAS. A node's rank
//! is frozen from the moment it is linked, so observed `(rank, index)`
//! keys strictly increase along parent paths — rank linking's Lemma 3.1.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::order::{IdOrder, PermutationOrder};
use crate::store::{
    pack_word, packed_id, packed_parent, packed_with_parent, DsuStore, ParentStore, CAS_FAILURE,
    CAS_SUCCESS, LOAD, STAT,
};

/// The rank-carrying store: parent index in the low 32 bits, union-by-rank
/// rank in the high 32, random ids in a side array (see the module docs).
///
/// Supports universes up to [`RankedStore::MAX_UNIVERSE`] elements.
pub struct RankedStore {
    words: Box<[AtomicU64]>,
    order: PermutationOrder,
}

impl std::fmt::Debug for RankedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankedStore").field("len", &self.words.len()).finish()
    }
}

impl RankedStore {
    /// Largest universe the 32-bit parent half can address.
    pub const MAX_UNIVERSE: u64 = 1 << 32;

    /// `n` singleton cells at rank 0 with permutation ids (see
    /// [`DsuStore::with_seed`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`RankedStore::MAX_UNIVERSE`].
    pub fn with_seed(n: usize, seed: u64) -> Self {
        assert!(
            n as u64 <= Self::MAX_UNIVERSE,
            "RankedStore packs parent and rank into 32 bits each and supports at most 2^32 \
             elements, but n = {n}; use the flat layout (`Dsu<_, FlatStore>`) for larger \
             universes"
        );
        let order = PermutationOrder::new(n, seed);
        let words = (0..n).map(|i| AtomicU64::new(pack_word(0, i))).collect();
        RankedStore { words, order }
    }

    /// The current rank of element `i` (a test/diagnostic read; the hot
    /// path reads ranks from words it already holds).
    pub fn rank(&self, i: usize) -> u64 {
        packed_id(self.words[i].load(STAT))
    }
}

impl ParentStore for RankedStore {
    type Word = u64;

    #[inline]
    fn load_word(&self, i: usize) -> u64 {
        self.words[i].load(LOAD)
    }

    #[inline]
    fn parent_of(w: u64) -> usize {
        packed_parent(w)
    }

    #[inline]
    fn cas_from(&self, i: usize, seen: u64, new_parent: usize) -> bool {
        // The rank half rides along unchanged: a parent CAS never moves the
        // rank, and expecting `seen` means a concurrent rank bump fails
        // this CAS instead of being silently overwritten.
        self.words[i]
            .compare_exchange(seen, packed_with_parent(seen, new_parent), CAS_SUCCESS, CAS_FAILURE)
            .is_ok()
    }

    #[inline]
    fn priority(&self, i: usize, _w: u64) -> u64 {
        // Random ids live in the side array — the word's high half is the
        // rank, which is NOT the priority (RandomLink and RankLink are
        // different orders on this layout, by design).
        self.order.id_of(i)
    }

    #[inline]
    fn prefetch(&self, i: usize) {
        crate::store::prefetch_read(&self.words[i] as *const AtomicU64);
    }

    #[inline]
    fn rank_of(w: u64) -> u64 {
        packed_id(w)
    }

    #[inline]
    fn try_bump_rank(&self, i: usize, rank: u64) -> bool {
        let seen = self.words[i].load(LOAD);
        packed_parent(seen) == i
            && packed_id(seen) == rank
            && self.words[i]
                .compare_exchange(seen, pack_word(rank + 1, i), CAS_SUCCESS, CAS_FAILURE)
                .is_ok()
    }
}

impl IdOrder for RankedStore {
    #[inline]
    fn less(&self, u: usize, v: usize) -> bool {
        self.order.less(u, v)
    }
}

impl DsuStore for RankedStore {
    const NAME: &'static str = "ranked";

    fn with_seed(n: usize, seed: u64) -> Self {
        RankedStore::with_seed(n, seed)
    }

    fn len(&self) -> usize {
        self.words.len()
    }

    fn id_of(&self, u: usize) -> u64 {
        self.order.id_of(u)
    }

    fn snapshot(&self) -> Vec<usize> {
        self.words.iter().map(|w| packed_parent(w.load(Ordering::Relaxed))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranked_store_starts_as_rank_zero_singletons() {
        let s = RankedStore::with_seed(5, 7);
        assert_eq!(DsuStore::len(&s), 5);
        for i in 0..5 {
            assert_eq!(s.load_parent(i), i);
            assert_eq!(s.rank(i), 0);
        }
        assert_eq!(DsuStore::snapshot(&s), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ids_match_other_layouts_for_same_seed() {
        let ranked = RankedStore::with_seed(64, 99);
        let flat = crate::store::FlatStore::with_seed(64, 99);
        for i in 0..64 {
            assert_eq!(DsuStore::id_of(&ranked, i), DsuStore::id_of(&flat, i));
        }
    }

    #[test]
    fn bump_rank_is_root_only_and_exact() {
        let s = RankedStore::with_seed(4, 1);
        assert!(s.try_bump_rank(2, 0));
        assert_eq!(s.rank(2), 1);
        assert!(!s.try_bump_rank(2, 0), "stale rank must fail");
        assert!(s.try_bump_rank(2, 1));
        assert_eq!(s.rank(2), 2);
        // Link 0 under 2, then a bump of the non-root 0 must fail.
        assert!(s.cas_parent(0, 0, 2));
        assert!(!s.try_bump_rank(0, 0), "non-roots must never be bumped");
        assert_eq!(s.rank(0), 0, "a non-root's rank is frozen");
    }

    #[test]
    fn parent_cas_preserves_rank_and_expects_rank_bits() {
        let s = RankedStore::with_seed(4, 3);
        let stale = s.load_word(1);
        assert!(s.try_bump_rank(1, 0));
        // A CAS against the pre-bump word must fail: the rank moved.
        assert!(!s.cas_from(1, stale, 3), "rank bump must invalidate old words");
        let fresh = s.load_word(1);
        assert!(s.cas_from(1, fresh, 3));
        assert_eq!(s.load_parent(1), 3);
        assert_eq!(s.rank(1), 1, "linking preserves the rank half");
    }

    #[test]
    fn rank_of_reads_the_high_half() {
        let s = RankedStore::with_seed(2, 0);
        assert_eq!(RankedStore::rank_of(s.load_word(0)), 0);
        s.try_bump_rank(0, 0);
        assert_eq!(RankedStore::rank_of(s.load_word(0)), 1);
    }

    #[test]
    #[should_panic(expected = "at most 2^32")]
    fn ranked_store_rejects_oversized_universe() {
        let _ = RankedStore::with_seed(RankedStore::MAX_UNIVERSE as usize + 1, 0);
    }

    #[test]
    fn empty_ranked_store() {
        assert!(DsuStore::is_empty(&RankedStore::with_seed(0, 0)));
    }
}

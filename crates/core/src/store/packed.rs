//! The packed single-word layout: parent and id in one `AtomicU64`.
//!
//! ```text
//!   63            32 31             0
//!  +----------------+----------------+
//!  |   random id    |  parent index  |
//!  +----------------+----------------+
//!      immutable          mutable
//! ```
//!
//! A find reads the parent *and* the linking priority of a node in one
//! load, eight elements share a cache line, and the whole structure is one
//! 8-byte word per element — half the footprint of the flat layout's
//! parent-array-plus-id-array. `Unite` compares root priorities straight
//! from the packed words; there is no side array to miss on. Because the
//! high 32 bits never change after construction, a CAS that only moves the
//! parent can reconstruct the full expected/new words from any read of the
//! cell, and the id bits can be read at any ordering.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::order::{IdOrder, PermutationOrder};
use crate::store::{DsuStore, ParentStore, CAS_FAILURE, CAS_SUCCESS, LOAD, STAT};

/// Low half of a packed word: the mutable parent index (shared by every
/// packed layout — [`PackedStore`], the sharded slabs, and the growable
/// packed segments).
pub(crate) const PARENT_MASK: u64 = 0xFFFF_FFFF;
/// Bit offset of the immutable id half of a packed word.
pub(crate) const ID_SHIFT: u32 = 32;

/// Packs an id/parent pair into one word (shared by all packed layouts).
#[inline]
pub(crate) const fn pack_word(id: u64, parent: usize) -> u64 {
    (id << ID_SHIFT) | parent as u64
}

/// The parent index carried by a packed word.
#[inline]
pub(crate) const fn packed_parent(w: u64) -> usize {
    (w & PARENT_MASK) as usize
}

/// The id carried by a packed word.
#[inline]
pub(crate) const fn packed_id(w: u64) -> u64 {
    w >> ID_SHIFT
}

/// The word `seen` with its parent half replaced by `new_parent` (id half
/// untouched — ids are immutable, so this is the CAS replacement word).
#[inline]
pub(crate) const fn packed_with_parent(seen: u64, new_parent: usize) -> u64 {
    (seen & !PARENT_MASK) | new_parent as u64
}

/// The packed single-word store: parent index in the low 32 bits, random id
/// in the high 32 (see the [`store`](crate::store) module docs for layout
/// and ordering rationale).
///
/// The default store of [`Dsu`](crate::Dsu); supports universes up to
/// [`PackedStore::MAX_UNIVERSE`] elements.
pub struct PackedStore {
    words: Box<[AtomicU64]>,
}

impl std::fmt::Debug for PackedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackedStore").field("len", &self.words.len()).finish()
    }
}

impl PackedStore {
    /// Largest universe the 32-bit parent/id halves can address.
    pub const MAX_UNIVERSE: u64 = 1 << 32;

    /// `n` singleton cells with permutation ids (see [`DsuStore::with_seed`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`PackedStore::MAX_UNIVERSE`].
    pub fn with_seed(n: usize, seed: u64) -> Self {
        assert!(
            n as u64 <= Self::MAX_UNIVERSE,
            "PackedStore packs parent and id into 32 bits each and supports at most 2^32 \
             elements, but n = {n}; use the flat layout (`Dsu<_, FlatStore>`) for larger \
             universes"
        );
        let order = PermutationOrder::new(n, seed);
        let words = (0..n).map(|i| AtomicU64::new(pack_word(order.id_of(i), i))).collect();
        PackedStore { words }
    }
}

impl ParentStore for PackedStore {
    type Word = u64;

    #[inline]
    fn load_word(&self, i: usize) -> u64 {
        self.words[i].load(LOAD)
    }

    #[inline]
    fn parent_of(w: u64) -> usize {
        packed_parent(w)
    }

    #[inline]
    fn cas_from(&self, i: usize, seen: u64, new_parent: usize) -> bool {
        // The id half never changes, so `seen`'s high bits are the id bits
        // of the replacement word too — no re-read needed.
        self.words[i]
            .compare_exchange(seen, packed_with_parent(seen, new_parent), CAS_SUCCESS, CAS_FAILURE)
            .is_ok()
    }

    #[inline]
    fn priority(&self, _i: usize, w: u64) -> u64 {
        packed_id(w)
    }

    #[inline]
    fn prefetch(&self, i: usize) {
        crate::store::prefetch_read(&self.words[i] as *const AtomicU64);
    }
}

impl IdOrder for PackedStore {
    #[inline]
    fn less(&self, u: usize, v: usize) -> bool {
        // Priorities come straight from the packed words — no side array.
        packed_id(self.words[u].load(STAT)) < packed_id(self.words[v].load(STAT))
    }
}

impl DsuStore for PackedStore {
    const NAME: &'static str = "packed";

    fn with_seed(n: usize, seed: u64) -> Self {
        PackedStore::with_seed(n, seed)
    }

    fn len(&self) -> usize {
        self.words.len()
    }

    fn id_of(&self, u: usize) -> u64 {
        packed_id(self.words[u].load(STAT))
    }

    fn snapshot(&self) -> Vec<usize> {
        self.words.iter().map(|w| packed_parent(w.load(Ordering::Relaxed))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_store_starts_as_singletons() {
        let s = PackedStore::with_seed(5, 7);
        assert_eq!(DsuStore::len(&s), 5);
        for i in 0..5 {
            assert_eq!(s.load_parent(i), i);
        }
        assert_eq!(DsuStore::snapshot(&s), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn packed_ids_survive_parent_changes() {
        let s = PackedStore::with_seed(8, 3);
        let ids_before: Vec<u64> = (0..8).map(|i| s.id_of(i)).collect();
        assert!(s.cas_parent(2, 2, 5));
        assert!(s.cas_parent(5, 5, 7));
        let ids_after: Vec<u64> = (0..8).map(|i| s.id_of(i)).collect();
        assert_eq!(ids_before, ids_after, "ids are immutable under parent CASes");
        assert_eq!(s.load_parent(2), 5);
    }

    #[test]
    fn packed_ids_are_a_permutation() {
        let s = PackedStore::with_seed(100, 5);
        let mut seen = [false; 100];
        for i in 0..100 {
            let id = s.id_of(i) as usize;
            assert!(id < 100 && !seen[id], "id {id} out of range or duplicated");
            seen[id] = true;
        }
    }

    #[test]
    #[should_panic(expected = "at most 2^32")]
    fn packed_store_rejects_oversized_universe() {
        // Keep the allocation from actually happening: the bound check
        // fires before any memory is touched.
        let _ = PackedStore::with_seed(PackedStore::MAX_UNIVERSE as usize + 1, 0);
    }

    /// The panic must not just state the bound — it must point the caller
    /// at the layout that *does* support the universe. (Regression: the
    /// guidance half of the message was previously untested.)
    #[test]
    fn packed_store_panic_names_the_flat_fallback() {
        let err = std::panic::catch_unwind(|| {
            let _ = PackedStore::with_seed(PackedStore::MAX_UNIVERSE as usize + 1, 0);
        })
        .expect_err("oversized universe must panic");
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("FlatStore"), "panic must point at the flat layout: {msg}");
        assert!(msg.contains("at most 2^32"), "panic must state the bound: {msg}");
    }

    #[test]
    fn empty_packed_store() {
        assert!(DsuStore::is_empty(&PackedStore::with_seed(0, 0)));
    }
}

//! The sharded layout: per-shard packed slabs with independent allocations.
//!
//! [`ShardedStore`] splits the universe `0..n` into power-of-two
//! contiguous blocks — *shards* — indexed by the **high bits** of the
//! element index. Each shard owns a separately allocated, cache-line-padded
//! slab of packed `id << 32 | parent` words (the
//! [`PackedStore`](crate::PackedStore) word format, same `2^32` universe
//! bound). The split is invisible to the algorithms: element indices stay
//! global, and the [`ParentStore`] word contract is bit-for-bit the packed
//! layout's — a one-shard [`ShardedStore`] *is* a [`PackedStore`] with an
//! extra pointer hop (regression-tested).
//!
//! Why high bits? Linking priorities are a uniform random permutation, so
//! the hot high-priority roots sit at uniformly random indices — spread
//! uniformly across contiguous index blocks. Every shard therefore carries
//! an equal share of root traffic in expectation ([`ShardedStore::shard_report`]
//! measures the realized skew), no slab's cache lines are hammered by all
//! threads at once, and false sharing cannot cross a shard boundary
//! because shards never share an allocation. On NUMA machines the
//! per-shard allocations give the OS natural units for first-touch or
//! interleaved page placement.
//!
//! [`ShardSpec`] chooses the shard count: [`ShardSpec::auto`] derives it
//! from the machine's available parallelism (override with the
//! `DSU_SHARDS` environment variable or [`ShardSpec::with_shards`]).
//!
//! [`ShardedSegmentedStore`] is the growable twin. A growing universe has
//! no top bits to split on, so it stripes by the **low** bits instead
//! (element `e` lives on shard `e mod S`) and gives each shard its own
//! directory of doubling segments; ids are the same on-the-fly index
//! hashes as [`PackedSegmentedStore`](crate::PackedSegmentedStore), so the
//! two growable packed layouts make identical linking decisions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::growable::{locate, GrowableStore, SEGMENTS};
use crate::order::{splitmix64, IdOrder, PermutationOrder};
use crate::stats::ShardSkew;
use crate::store::packed::{pack_word, packed_id, packed_parent, packed_with_parent};
use crate::store::{DsuStore, PackedStore, ParentStore, CAS_FAILURE, CAS_SUCCESS, LOAD, STAT};

/// Pads (and aligns) a shard header to two cache lines so neighboring
/// shards' headers never share a line (128 covers the common 64-byte line
/// and spatial-prefetch pairs on x86).
#[repr(align(128))]
struct CachePadded<T>(T);

/// How many shards a sharded store should use.
///
/// Shard counts are always a power of two (construction rounds up) so the
/// shard of an element is a shift of its index, never a division.
///
/// # Example
///
/// ```
/// use concurrent_dsu::ShardSpec;
///
/// assert_eq!(ShardSpec::with_shards(3).shards(), 4); // rounded up
/// assert!(ShardSpec::auto().shards() >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    shards: usize,
}

impl ShardSpec {
    /// Upper bound on the shard count: beyond a few hundred shards the
    /// headers outgrow L1 and the placement benefit is long exhausted.
    pub const MAX_SHARDS: usize = 256;

    /// Shard count derived from the machine: the available parallelism,
    /// rounded up to a power of two — one shard per hardware thread is
    /// enough to spread hot roots without fragmenting the universe.
    ///
    /// The `DSU_SHARDS` environment variable (a positive integer)
    /// overrides the derivation, so deployments and CI can pin the count
    /// without a code change.
    pub fn auto() -> Self {
        if let Some(s) = std::env::var("DSU_SHARDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&s| s > 0)
        {
            return Self::with_shards(s);
        }
        Self::with_shards(std::thread::available_parallelism().map_or(1, |p| p.get()))
    }

    /// Exactly `shards` shards, rounded up to the next power of two and
    /// clamped to [`ShardSpec::MAX_SHARDS`].
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards > 0, "a sharded store needs at least one shard");
        ShardSpec { shards: shards.next_power_of_two().min(Self::MAX_SHARDS) }
    }

    /// The (power-of-two) shard count this spec requests.
    pub fn shards(&self) -> usize {
        self.shards
    }
}

impl Default for ShardSpec {
    fn default() -> Self {
        Self::auto()
    }
}

/// One fixed-universe shard: a separately allocated slab of packed words.
struct Shard {
    words: Box<[AtomicU64]>,
}

/// The sharded packed store: contiguous high-bit-indexed blocks of the
/// universe, each a cache-line-padded, separately allocated slab of packed
/// `id | parent` words (see this file's module docs for the rationale and
/// the [`store`](crate::store) module for the layout-selection guide).
///
/// Same `2^32` universe bound as [`PackedStore`]; construction beyond it
/// panics with a pointer at [`FlatStore`](crate::FlatStore).
pub struct ShardedStore {
    shards: Box<[CachePadded<Shard>]>,
    /// log2 of the per-shard capacity: `shard(i) = i >> offset_bits`.
    offset_bits: u32,
    /// Per-shard capacity minus one: `offset(i) = i & offset_mask`.
    offset_mask: usize,
    len: usize,
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("len", &self.len)
            .field("shards", &self.shards.len())
            .field("capacity_per_shard", &(self.offset_mask + 1))
            .finish()
    }
}

impl ShardedStore {
    /// `n` singleton cells with permutation ids, sharded per `spec` (see
    /// [`DsuStore::with_seed`]; this is the spec-carrying constructor
    /// behind it — pair with [`Dsu::from_store`](crate::Dsu::from_store)
    /// to pick a shard count explicitly).
    ///
    /// The realized shard count is `min(spec.shards(), blocks needed)`:
    /// a tiny universe never allocates empty shards.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`PackedStore::MAX_UNIVERSE`].
    pub fn with_spec(n: usize, seed: u64, spec: ShardSpec) -> Self {
        assert!(
            n as u64 <= PackedStore::MAX_UNIVERSE,
            "ShardedStore shards packed 32-bit parent/id words and supports at most 2^32 \
             elements, but n = {n}; use the flat layout (`Dsu<_, FlatStore>`) for larger \
             universes"
        );
        let capacity = n.div_ceil(spec.shards()).next_power_of_two();
        let order = PermutationOrder::new(n, seed);
        let shards = (0..n.div_ceil(capacity))
            .map(|s| {
                let base = s * capacity;
                let top = ((s + 1) * capacity).min(n);
                let words =
                    (base..top).map(|g| AtomicU64::new(pack_word(order.id_of(g), g))).collect();
                CachePadded(Shard { words })
            })
            .collect();
        ShardedStore {
            shards,
            offset_bits: capacity.trailing_zeros(),
            offset_mask: capacity - 1,
            len: n,
        }
    }

    /// Number of shards actually allocated.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard element `i` lives on.
    pub fn shard_of(&self, i: usize) -> usize {
        i >> self.offset_bits
    }

    #[inline]
    fn cell(&self, i: usize) -> &AtomicU64 {
        // The two-level lookup puts one extra dependent (but always
        // L1-resident) load — the shard's slab pointer — on every
        // traversal hop. That is the whole single-socket cost of this
        // layout (measured in BENCH_PR3.json; an unchecked-indexing
        // variant was tried and bought nothing, so the safe version
        // stays).
        &self.shards[i >> self.offset_bits].0.words[i & self.offset_mask]
    }

    /// Per-shard occupancy snapshot — cells, current roots, and parent
    /// pointers that leave the shard — for diagnosing placement and skew.
    /// Like every snapshot, only meaningful at quiescence.
    pub fn shard_report(&self) -> ShardReport {
        let mut report = ShardReport {
            cells: Vec::with_capacity(self.shards.len()),
            roots: Vec::with_capacity(self.shards.len()),
            cross_parents: Vec::with_capacity(self.shards.len()),
        };
        for (s, shard) in self.shards.iter().enumerate() {
            let base = s << self.offset_bits;
            let (mut roots, mut cross) = (0, 0);
            for (off, w) in shard.0.words.iter().enumerate() {
                let p = packed_parent(w.load(Ordering::Relaxed));
                if p == base + off {
                    roots += 1;
                } else if self.shard_of(p) != s {
                    cross += 1;
                }
            }
            report.cells.push(shard.0.words.len());
            report.roots.push(roots);
            report.cross_parents.push(cross);
        }
        report
    }
}

/// Quiescent per-shard occupancy counts from [`ShardedStore::shard_report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// Elements allocated on each shard.
    pub cells: Vec<usize>,
    /// Elements that are currently roots, per shard — the cells hot finds
    /// and link CASes converge on.
    pub roots: Vec<usize>,
    /// Elements whose current parent lives on a *different* shard: each is
    /// a traversal step that crosses slabs (and, on NUMA, possibly nodes).
    pub cross_parents: Vec<usize>,
}

impl ShardReport {
    /// Number of shards covered by the report.
    pub fn shard_count(&self) -> usize {
        self.cells.len()
    }

    /// Skew of current roots across shards — the load-balance number:
    /// roots are where contending operations meet, so a root imbalance is
    /// a traffic imbalance.
    pub fn root_skew(&self) -> ShardSkew {
        ShardSkew::from_counts(self.roots.iter().map(|&r| r as u64))
    }

    /// Skew of allocated cells across shards (1.0 unless the universe is
    /// much smaller than the shard count).
    pub fn cell_skew(&self) -> ShardSkew {
        ShardSkew::from_counts(self.cells.iter().map(|&c| c as u64))
    }
}

impl ParentStore for ShardedStore {
    type Word = u64;

    #[inline]
    fn load_word(&self, i: usize) -> u64 {
        self.cell(i).load(LOAD)
    }

    #[inline]
    fn parent_of(w: u64) -> usize {
        packed_parent(w)
    }

    #[inline]
    fn cas_from(&self, i: usize, seen: u64, new_parent: usize) -> bool {
        self.cell(i)
            .compare_exchange(seen, packed_with_parent(seen, new_parent), CAS_SUCCESS, CAS_FAILURE)
            .is_ok()
    }

    #[inline]
    fn priority(&self, _i: usize, w: u64) -> u64 {
        packed_id(w)
    }

    #[inline]
    fn prefetch(&self, i: usize) {
        crate::store::prefetch_read(self.cell(i) as *const AtomicU64);
    }
}

impl IdOrder for ShardedStore {
    #[inline]
    fn less(&self, u: usize, v: usize) -> bool {
        packed_id(self.cell(u).load(STAT)) < packed_id(self.cell(v).load(STAT))
    }
}

impl DsuStore for ShardedStore {
    const NAME: &'static str = "sharded";

    fn with_seed(n: usize, seed: u64) -> Self {
        ShardedStore::with_spec(n, seed, ShardSpec::auto())
    }

    fn len(&self) -> usize {
        self.len
    }

    fn id_of(&self, u: usize) -> u64 {
        packed_id(self.cell(u).load(STAT))
    }

    fn snapshot(&self) -> Vec<usize> {
        (0..self.len).map(|i| packed_parent(self.cell(i).load(Ordering::Relaxed))).collect()
    }

    fn scan_ranges(&self) -> Vec<std::ops::Range<usize>> {
        // One range per slab: flatten chunks are carved within ranges, so
        // a sweep worker never pays the shard lookup across a slab edge
        // mid-chunk and each slab's pages are touched by one linear pass.
        (0..self.shards.len())
            .map(|s| {
                let base = s << self.offset_bits;
                base..(base + (self.offset_mask + 1)).min(self.len)
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Growable sharded store
// ---------------------------------------------------------------------------

/// One growable shard: its own directory of doubling packed segments.
struct SegShard {
    segments: [OnceLock<Box<[AtomicU64]>>; SEGMENTS],
}

/// The growable sharded layout: element `e` lives on shard
/// `e mod shards` (low-bit striping — a growing universe has no fixed high
/// bits), and each shard is an independently allocated directory of
/// doubling packed segments, so growth on one shard never touches
/// another's memory. Ids are the same on-the-fly 32-bit index hashes as
/// [`PackedSegmentedStore`](crate::PackedSegmentedStore) — identical seed,
/// identical linking decisions — including the `2^32` element bound
/// (beyond it, `make_set` panics with a pointer at
/// [`SegmentedStore`](crate::SegmentedStore)).
pub struct ShardedSegmentedStore {
    shards: Box<[CachePadded<SegShard>]>,
    /// log2 of the shard count: `local(e) = e >> shard_bits`.
    shard_bits: u32,
    /// Shard count minus one: `shard(e) = e & shard_mask`.
    shard_mask: usize,
    salt: u64,
}

impl std::fmt::Debug for ShardedSegmentedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSegmentedStore").field("shards", &self.shards.len()).finish()
    }
}

impl ShardedSegmentedStore {
    /// An empty store striped over `spec.shards()` shards, ids salted by
    /// `seed` (the spec-carrying constructor behind
    /// [`GrowableStore::with_seed`]).
    pub fn with_spec(seed: u64, spec: ShardSpec) -> Self {
        let shards = (0..spec.shards())
            .map(|_| CachePadded(SegShard { segments: std::array::from_fn(|_| OnceLock::new()) }))
            .collect();
        ShardedSegmentedStore {
            shards,
            shard_bits: spec.shards().trailing_zeros(),
            shard_mask: spec.shards() - 1,
            salt: seed,
        }
    }

    /// Number of shards (fixed at construction).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The packed word a fresh singleton `e` is born with: the same
    /// top-32-bits-of-SplitMix64 id as `PackedSegmentedStore`, so the two
    /// layouts order elements identically for a given seed.
    fn singleton_word(&self, e: usize) -> u64 {
        let id = splitmix64((e as u64).wrapping_add(self.salt)) >> 32;
        pack_word(id, e)
    }

    fn cell(&self, i: usize) -> &AtomicU64 {
        let (s, off) = locate(i >> self.shard_bits);
        let seg = self.shards[i & self.shard_mask].0.segments[s]
            .get()
            .expect("element's segment not allocated: use indices returned by make_set");
        &seg[off]
    }

    /// The `(hash id, index)` priority key of `i`, read from its word.
    fn key(&self, i: usize) -> (u64, usize) {
        (packed_id(self.cell(i).load(STAT)), i)
    }
}

impl ParentStore for ShardedSegmentedStore {
    type Word = u64;

    #[inline]
    fn load_word(&self, i: usize) -> u64 {
        self.cell(i).load(LOAD)
    }

    #[inline]
    fn parent_of(w: u64) -> usize {
        packed_parent(w)
    }

    #[inline]
    fn cas_from(&self, i: usize, seen: u64, new_parent: usize) -> bool {
        self.cell(i)
            .compare_exchange(seen, packed_with_parent(seen, new_parent), CAS_SUCCESS, CAS_FAILURE)
            .is_ok()
    }

    #[inline]
    fn priority(&self, _i: usize, w: u64) -> u64 {
        packed_id(w)
    }

    #[inline]
    fn prefetch(&self, i: usize) {
        crate::store::prefetch_read(self.cell(i) as *const AtomicU64);
    }
}

impl IdOrder for ShardedSegmentedStore {
    fn less(&self, u: usize, v: usize) -> bool {
        // 32-bit hash ids can collide; the index tie-break keeps the order
        // total (paper Section 7's tie-breaking rule).
        self.key(u) < self.key(v)
    }
}

impl GrowableStore for ShardedSegmentedStore {
    const NAME: &'static str = "sharded-seg";

    fn with_seed(seed: u64) -> Self {
        ShardedSegmentedStore::with_spec(seed, ShardSpec::auto())
    }

    fn ensure(&self, e: usize) {
        assert!(
            (e as u64) < (1 << 32),
            "ShardedSegmentedStore packs parent and id into 32 bits each and supports at most \
             2^32 elements, but make_set would create element {e}; use \
             GrowableDsu<_, SegmentedStore> for larger universes"
        );
        let shard = e & self.shard_mask;
        let (s, off) = locate(e >> self.shard_bits);
        let seg = self.shards[shard].0.segments[s].get_or_init(|| {
            let base = (1usize << s) - 1;
            (0..1usize << s)
                .map(|j| {
                    let global = ((base + j) << self.shard_bits) | shard;
                    AtomicU64::new(self.singleton_word(global))
                })
                .collect()
        });
        debug_assert_eq!(packed_parent(seg[off].load(Ordering::Relaxed)), e);
    }

    fn scan_runs(&self, len: usize) -> Vec<crate::store::ScanRun> {
        // Low-bit striping means consecutive *global* indices hop shards,
        // so a contiguous scan would touch every slab per cache line. One
        // strided run per allocated (shard, segment) instead walks that
        // segment's slab in allocation order: local index l on shard k is
        // global element (l << shard_bits) | k, so the run is base
        // (segment_base << shard_bits) | k with stride = shard count.
        let stride = self.shard_mask + 1;
        let mut runs = Vec::new();
        for (k, shard) in self.shards.iter().enumerate() {
            if k >= len {
                break;
            }
            // Locals on shard k that exist below len: l < ceil((len - k) / stride).
            let locals = (len - k).div_ceil(stride);
            for s in 0..SEGMENTS {
                let seg_base = (1usize << s) - 1;
                if seg_base >= locals {
                    break;
                }
                if shard.0.segments[s].get().is_none() {
                    continue;
                }
                let count = (1usize << s).min(locals - seg_base);
                runs.push(crate::store::ScanRun {
                    base: (seg_base << self.shard_bits) | k,
                    stride,
                    count,
                });
            }
        }
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::FlatStore;

    #[test]
    fn spec_rounds_up_and_clamps() {
        assert_eq!(ShardSpec::with_shards(1).shards(), 1);
        assert_eq!(ShardSpec::with_shards(3).shards(), 4);
        assert_eq!(ShardSpec::with_shards(8).shards(), 8);
        assert_eq!(ShardSpec::with_shards(100_000).shards(), ShardSpec::MAX_SHARDS);
        assert!(ShardSpec::auto().shards().is_power_of_two());
        assert_eq!(ShardSpec::default().shards(), ShardSpec::auto().shards());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ShardSpec::with_shards(0);
    }

    #[test]
    fn starts_as_singletons_across_shard_counts() {
        for shards in [1, 2, 4, 8] {
            let s = ShardedStore::with_spec(23, 7, ShardSpec::with_shards(shards));
            assert_eq!(DsuStore::len(&s), 23);
            for i in 0..23 {
                assert_eq!(s.load_parent(i), i, "{shards} shards");
            }
            assert_eq!(DsuStore::snapshot(&s), (0..23).collect::<Vec<_>>());
            // Ids are a permutation regardless of the split.
            let mut seen = [false; 23];
            for i in 0..23 {
                let id = DsuStore::id_of(&s, i) as usize;
                assert!(id < 23 && !seen[id]);
                seen[id] = true;
            }
        }
    }

    #[test]
    fn small_universe_never_allocates_empty_shards() {
        let s = ShardedStore::with_spec(3, 0, ShardSpec::with_shards(64));
        assert!(s.shard_count() <= 3, "{} shards for 3 elements", s.shard_count());
        assert_eq!(DsuStore::len(&s), 3);
    }

    #[test]
    fn shard_of_partitions_contiguously() {
        let s = ShardedStore::with_spec(64, 1, ShardSpec::with_shards(4));
        assert_eq!(s.shard_count(), 4);
        for i in 0..64 {
            assert_eq!(s.shard_of(i), i / 16, "high-bit split is contiguous");
        }
    }

    /// A one-shard sharded store must be *bit-identical* to a PackedStore:
    /// same words after the same CAS history, not just the same semantics.
    #[test]
    fn one_shard_is_bit_identical_to_packed() {
        let n = 65;
        let seed = 0xDECAF;
        let packed = PackedStore::with_seed(n, seed);
        let sharded = ShardedStore::with_spec(n, seed, ShardSpec::with_shards(1));
        assert_eq!(sharded.shard_count(), 1);
        for i in 0..n {
            assert_eq!(packed.load_word(i), sharded.load_word(i), "initial word {i}");
        }
        // Drive an identical CAS history through both.
        for i in 0..n - 1 {
            let (wp, ws) = (packed.load_word(i), sharded.load_word(i));
            assert_eq!(packed.cas_from(i, wp, i + 1), sharded.cas_from(i, ws, i + 1));
            assert!(!sharded.cas_from(i, ws, i), "stale word must fail");
        }
        for i in 0..n {
            assert_eq!(packed.load_word(i), sharded.load_word(i), "post-CAS word {i}");
        }
    }

    #[test]
    fn ids_survive_parent_changes() {
        let s = ShardedStore::with_spec(16, 3, ShardSpec::with_shards(4));
        let before: Vec<u64> = (0..16).map(|i| DsuStore::id_of(&s, i)).collect();
        assert!(s.cas_parent(2, 2, 9));
        assert!(s.cas_parent(9, 9, 15));
        let after: Vec<u64> = (0..16).map(|i| DsuStore::id_of(&s, i)).collect();
        assert_eq!(before, after);
    }

    #[test]
    #[should_panic(expected = "at most 2^32")]
    fn sharded_store_rejects_oversized_universe() {
        let _ = ShardedStore::with_spec(
            PackedStore::MAX_UNIVERSE as usize + 1,
            0,
            ShardSpec::with_shards(4),
        );
    }

    /// Like the packed layout, the panic must point at the flat fallback.
    #[test]
    fn sharded_panic_names_the_flat_fallback() {
        let err = std::panic::catch_unwind(|| {
            let _ =
                <ShardedStore as DsuStore>::with_seed(PackedStore::MAX_UNIVERSE as usize + 1, 0);
        })
        .expect_err("oversized universe must panic");
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("FlatStore"), "panic must point at the flat layout: {msg}");
        // The assert fires before any shard is allocated, so the message
        // must also carry the bound itself.
        assert!(msg.contains("at most 2^32"), "{msg}");
        // FlatStore really does accept what the message promises (probe a
        // constructor-path-only check: a zero-size flat store is cheap).
        let _ = FlatStore::new(0);
    }

    #[test]
    fn empty_sharded_store() {
        let s = ShardedStore::with_spec(0, 0, ShardSpec::with_shards(8));
        assert!(DsuStore::is_empty(&s));
        assert_eq!(s.shard_count(), 0);
        assert_eq!(DsuStore::snapshot(&s), Vec::<usize>::new());
        assert!(s.shard_report().cells.is_empty());
    }

    #[test]
    fn shard_report_counts_roots_and_crossings() {
        let s = ShardedStore::with_spec(16, 5, ShardSpec::with_shards(4));
        let fresh = s.shard_report();
        assert_eq!(fresh.cells, vec![4, 4, 4, 4]);
        assert_eq!(fresh.roots, vec![4, 4, 4, 4], "every element starts as a root");
        assert_eq!(fresh.cross_parents, vec![0, 0, 0, 0]);
        assert_eq!(fresh.shard_count(), 4);
        assert!((fresh.root_skew().imbalance - 1.0).abs() < 1e-12);
        assert!((fresh.cell_skew().imbalance - 1.0).abs() < 1e-12);
        // 0 -> 1 stays inside shard 0; 4 -> 8 crosses shard 1 -> 2.
        assert!(s.cas_parent(0, 0, 1));
        assert!(s.cas_parent(4, 4, 8));
        let after = s.shard_report();
        assert_eq!(after.roots, vec![3, 3, 4, 4]);
        assert_eq!(after.cross_parents, vec![0, 1, 0, 0]);
        assert!(after.root_skew().imbalance > 1.0);
    }

    #[test]
    fn scan_ranges_are_slab_local_and_cover() {
        let s = ShardedStore::with_spec(23, 7, ShardSpec::with_shards(4));
        let ranges = DsuStore::scan_ranges(&s);
        assert_eq!(ranges.len(), s.shard_count());
        let mut next = 0;
        for r in &ranges {
            assert_eq!(r.start, next, "ranges must be ascending and disjoint");
            assert!(!r.is_empty());
            assert_eq!(s.shard_of(r.start), s.shard_of(r.end - 1), "range must stay on one slab");
            next = r.end;
        }
        assert_eq!(next, DsuStore::len(&s), "ranges must cover the universe");
        assert!(DsuStore::scan_ranges(&ShardedStore::with_spec(0, 0, ShardSpec::with_shards(2)))
            .is_empty());
    }

    // ----- growable -----

    #[test]
    fn growable_sharded_matches_packed_seg_ids() {
        use crate::growable::PackedSegmentedStore;
        let seed = 42;
        let sharded = ShardedSegmentedStore::with_spec(seed, ShardSpec::with_shards(4));
        let packed = <PackedSegmentedStore as GrowableStore>::with_seed(seed);
        for e in 0..200 {
            sharded.ensure(e);
            packed.ensure(e);
            assert_eq!(
                sharded.load_word(e),
                packed.load_word(e),
                "element {e}: same seed must give the same singleton word"
            );
        }
        // Same priorities, so the same linking order.
        for u in 0..200 {
            for v in 0..200 {
                assert_eq!(IdOrder::less(&sharded, u, v), IdOrder::less(&packed, u, v));
            }
        }
    }

    #[test]
    fn growable_sharded_cas_and_stripe() {
        let s = ShardedSegmentedStore::with_spec(9, ShardSpec::with_shards(4));
        assert_eq!(s.shard_count(), 4);
        for e in 0..64 {
            s.ensure(e);
            assert_eq!(s.load_parent(e), e);
        }
        assert!(s.cas_parent(3, 3, 7));
        assert!(!s.cas_parent(3, 3, 9), "stale expected value must fail");
        assert_eq!(s.load_parent(3), 7);
        let w = s.load_word(10);
        assert!(s.cas_from(10, w, 11));
        assert!(!s.cas_from(10, w, 12), "stale word must fail");
    }

    #[test]
    fn growable_sharded_one_shard_degenerates_cleanly() {
        let s = ShardedSegmentedStore::with_spec(3, ShardSpec::with_shards(1));
        for e in 0..40 {
            s.ensure(e);
            assert_eq!(s.load_parent(e), e);
        }
    }

    #[test]
    #[should_panic(expected = "SegmentedStore")]
    fn growable_sharded_rejects_oversized_element() {
        let s = ShardedSegmentedStore::with_spec(0, ShardSpec::with_shards(2));
        s.ensure(1 << 32);
    }
}

//! Parent-pointer storage: the packed, flat, and sharded layouts, and the
//! memory-ordering contract of the hot path.
//!
//! # Why storage is a type parameter
//!
//! The paper's algorithms touch shared state only through single-word reads
//! and CASes of parent pointers, plus reads of each element's *immutable*
//! random id. Everything else — where those words live, whether the id
//! travels with the parent, which memory orderings the accesses use — is a
//! layout decision the algorithms never observe. [`ParentStore`] abstracts
//! the mutable word, [`DsuStore`] bundles it with the random order, and
//! [`Dsu`](crate::Dsu) is generic over the bundle.
//!
//! # Layout-selection guide
//!
//! Three fixed-universe layouts implement [`DsuStore`]; all three draw ids
//! from the same seeded permutation, so for a given `(n, seed)` they make
//! identical linking decisions and are interchangeable mid-experiment. Pick
//! by universe size and thread count:
//!
//! | layout | word | footprint | universe bound | pick when |
//! |---|---|---|---|---|
//! | [`PackedStore`] (default) | `id << 32 \| parent` in one `AtomicU64` | 8 B/elem | `2^32` | single socket, universe fits the bound — the all-round fastest |
//! | [`FlatStore`] | bare `AtomicUsize` parent + side id array | 16 B/elem | `usize` | universes beyond `2^32`, or as the reference/baseline layout |
//! | [`ShardedStore`] | packed words in per-shard slabs | 8 B/elem + shard headers | `2^32` | multi-socket / NUMA placement: each slab is its own allocation, so page placement can follow threads — accept a measured single-socket penalty for it |
//!
//! **Packed vs flat.** A find on the packed layout reads the parent *and*
//! the linking priority in one load, eight elements share a cache line,
//! and the structure is half the flat layout's footprint; `BENCH_PR1.json`
//! measures it 13–23% faster on the mixed workload. The flat layout's only
//! structural advantages are the full-width universe and a layout the
//! simulators can poke directly ([`FlatStore::parent_cell`]).
//!
//! **When sharding pays (and what it costs).** [`ShardedStore`] splits the
//! universe into power-of-two contiguous blocks indexed by the *high* bits
//! of the element index, each block a separately allocated,
//! cache-line-padded packed slab ([`ShardSpec`] picks the count from the
//! machine's parallelism unless overridden). Because ids are a uniform
//! random permutation, the hot high-id roots land in uniformly random
//! *indices* — i.e. uniformly across shards — so no single allocation (or
//! NUMA node, under first-touch or interleaved placement) carries all the
//! root traffic, and false sharing cannot cross a shard boundary. The
//! price is one extra *dependent* load per traversal hop (the shard's slab
//! pointer — always L1-resident, but it sits on the serial pointer-chase
//! path that is a find): `BENCH_PR3.json` measures sharded at 0.6–0.7× the
//! packed store's throughput on a single-socket box, uniformly across
//! thread counts. **Do not shard on one memory domain** — the layout
//! exists for machines where parent-word misses cross sockets, where the
//! placement win has room to repay the hop (unverified here: the bench box
//! has one domain; see ROADMAP).
//!
//! **Cache-residency caveat** (from `BENCH_PR2.json`): layout effects only
//! show once the parent store exceeds the last-level cache. At `n = 2^20`
//! (8 MB packed) every layout is cache-resident on a big LLC and they all
//! tie; size experiments at `n ≥ 2^22` before concluding anything about
//! placement.
//!
//! Growable twins: [`PackedSegmentedStore`](crate::PackedSegmentedStore)
//! (default), [`SegmentedStore`](crate::SegmentedStore) (flat), and
//! [`ShardedSegmentedStore`] (sharded) make the same trades for universes
//! that grow via `make_set`.
//!
//! **Keys instead of indices.** If your elements are strings, sparse
//! 64-bit ids, or any other hashable keys rather than dense `0..n`,
//! don't build your own map in front of these layouts —
//! [`KeyedDsu`](crate::KeyedDsu) (the [`keyed`](crate::keyed) module) is
//! that map, done lock-free: a sharded CAS-claimed id table assigns dense
//! ids on first touch and every set operation runs on the growable twin
//! of your chosen layout. Its shard count has its own knob
//! (`DSU_KEY_SHARDS`) because id-table sharding is a hash-capacity
//! question, not a placement one.
//!
//! **When does the root cache pay?** Orthogonal to the layout choice, the
//! [`cache`](crate::cache) module can start finds at each element's last
//! observed root ([`Dsu::cached`](crate::Dsu::cached) sessions,
//! [`unite_batch_cached`](crate::ConcurrentUnionFind::unite_batch_cached)),
//! validated by one load. It pays exactly when that validation load
//! replaces walk loads that would have **missed in the hardware caches**
//! — long paths over a DRAM-resident store whose hot set is *wider than
//! the LLC but narrower than the table*. It does **not** pay when the
//! hardware already absorbs the walk, which `BENCH_PR4.json` shows is the
//! common case on a single busy box: Zipf-hot elements keep their own
//! path nodes L1/L2-resident precisely because they are hot, so on the
//! bench host the cached arms ran 0.22–0.68x the uncached ones at every
//! size and thread count — the counters attribute it (12–18% fewer reads, yet
//! slower: the saved loads were cache-hot, while every find paid the
//! probe's bookkeeping plus a ~50/50 validation branch predictors cannot
//! learn, the same lesson as PR 2's Algorithm-6 filter). Use a cached
//! session when the hit branch is *predictable* (hit rates near 1: a
//! Borůvka scan's few surviving roots, percolation's virtual top/bottom
//! probes) or when path nodes genuinely miss (universe ≫ LLC with flat
//! skew); skip it for wave-fed batch ingestion, whose gather waves
//! already preload the levels a hit would skip. Cache-residency caveat
//! applies as everywhere: measure at `n ≥ 2^22` before believing either
//! direction.
//!
//! The default store behind [`Dsu`](crate::Dsu)'s `S` parameter follows the
//! `default-store-flat` / `default-store-sharded` cargo features (see
//! [`DefaultStore`](crate::DefaultStore)); CI runs the whole test suite
//! under every layout × ordering combination.
//!
//! **Testing under faults.** Any layout above wraps in
//! [`FaultyStore`](crate::FaultyStore) (the [`fault`](crate::fault)
//! module), a decorator that injects *legal* adversity from a seeded
//! [`FaultPlan`](crate::FaultPlan): spurious CAS failures (a lost race),
//! delayed loads (a preemption between load and CAS), and per-thread
//! stall windows (a slow thread) — each indistinguishable from a schedule
//! a real adversary could produce, so every invariant in this guide must
//! survive them. Because it is a generic decorator, production
//! monomorphizations over bare layouts compile with zero fault-check
//! code; tests opt in per instance (or via the `DSU_FAULT_SEED` /
//! `DSU_FAULT_RATE` env knobs through `FaultyStore::with_seed`). The
//! injected retries surface through
//! [`OpStats::cas_retries`](crate::OpStats) /
//! [`OpStats::faults_injected`](crate::OpStats), a
//! [`RetryBudget`](crate::RetryBudget) sink converts livelock into a fast
//! panic with a counter dump, and
//! [`BrokenStore`](crate::BrokenStore) (an intentionally unconditional
//! CAS) is the regression canary proving the checkers still catch a
//! lost-update bug. See `tests/fault_semantics.rs`, the repo-level
//! `native_linearizability.rs`, and the `chaos_ab` /
//! `e13_fault_injection` harnesses.
//!
//! **Which layouts support cheap scans.** Maintenance passes (the
//! [`flatten`](crate::flatten) sweep) iterate the parent words in *store
//! order* — the order the bytes sit in memory — via
//! [`DsuStore::scan_ranges`] /
//! [`GrowableStore::scan_runs`](crate::GrowableStore::scan_runs), which hand
//! back [`ScanRun`]s a sweep streams through at hardware-prefetch speed:
//!
//! * [`PackedStore`], [`FlatStore`], [`RankedStore`]:
//!   one contiguous run covering `0..n` — the ideal scan surface.
//! * [`ShardedStore`]: one run **per slab**, so a sweep stays slab-local
//!   and never interleaves allocations (the same geometry argument as
//!   placement: consecutive indices within a slab are consecutive bytes).
//! * Growable layouts ([`SegmentedStore`](crate::SegmentedStore) and
//!   friends): one run per *allocated* segment, skipping directory holes —
//!   a concurrently reserved-but-uninitialized index is a root-shaped
//!   singleton no sweep needs to visit.
//!
//! Scans only ever *read* words and retarget them with
//! [`ParentStore::cas_from`], so they obey the same ordering contract as
//! finds and are safe concurrently with unites.
//!
//! **Versioning.** When the workload needs O(1) snapshots, rollback, or
//! speculative all-or-nothing batches, use the epoch-forking growable
//! layout [`EpochStore`](crate::EpochStore) under a
//! [`VersionedDsu`](crate::VersionedDsu) (the [`epoch`](crate::epoch)
//! module). Like fault injection it is a separate type, so the layouts in
//! this guide pay nothing for its existence; and it composes with
//! [`FaultyStore`](crate::FaultyStore) for chaos-tested rollback.
//!
//! # Memory orderings (and the `strict-sc` feature)
//!
//! The paper's APRAM model assumes sequentially consistent single-word
//! registers, but its proofs lean only on the *per-cell* modification order
//! of the parent words, never on a global total order of unrelated
//! accesses:
//!
//! * Lemma 3.1 (parents strictly increase in the random order) is a
//!   property of each cell's CAS history in isolation — every successful
//!   CAS is justified by a value read from that same cell, which
//!   [`Ordering::Relaxed`] already guarantees (cache coherence).
//! * Linearizability (Lemma 3.2) needs a find that reaches a root to have
//!   seen every link CAS on the path it walked. A successful link/compact
//!   CAS publishes with **`Release`** ([`CAS_SUCCESS`]) and every traversal
//!   read is an **`Acquire`** load ([`LOAD`]), so walking `u → parent(u)`
//!   synchronizes-with the CAS that installed that parent: the classic
//!   message-passing pattern, applied edge by edge up the tree.
//! * A *failed* CAS publishes nothing — it only tells the caller "retry or
//!   move on" — so its failure ordering is **`Relaxed`** ([`CAS_FAILURE`]).
//!   Likewise the statistics counters ([`STAT`]) are mere tallies.
//!
//! One honest caveat: the per-path message-passing argument above covers
//! the orderings each operation *relies on*, but Release/Acquire alone does
//! not forbid IRIW-style outcomes (two readers disagreeing about the order
//! of two independent links), which full linearizability of query-only
//! histories formally needs. On multi-copy-atomic hardware — x86-64 and
//! ARMv8, every tier-1 Rust target — such outcomes cannot occur, so the
//! default build is linearizable there; on non-multi-copy-atomic machines
//! (e.g. POWER) the paper-exact guarantee needs the `strict-sc` build,
//! which pins every access back to `SeqCst` and restores the literal APRAM
//! translation for model-fidelity experiments (`e12_cas_anatomy`, the
//! APRAM cross-checks). The test suite passes under both configurations,
//! and `tests/packed_vs_flat.rs` cross-checks all layouts operation by
//! operation.

use std::sync::atomic::Ordering;

use crate::order::IdOrder;

mod flat;
mod packed;
mod ranked;
mod sharded;

pub use flat::FlatStore;
pub use packed::PackedStore;
pub(crate) use packed::{pack_word, packed_id, packed_parent, packed_with_parent};
pub use ranked::RankedStore;
pub use sharded::{ShardReport, ShardSpec, ShardedSegmentedStore, ShardedStore};

/// Ordering of every traversal load of a parent word: `Acquire`, so a read
/// of a parent installed by a `Release` CAS also sees the writes that
/// preceded the CAS (`SeqCst` under `strict-sc`).
#[cfg(not(feature = "strict-sc"))]
pub const LOAD: Ordering = Ordering::Acquire;
/// Ordering of every traversal load of a parent word (strict-sc: `SeqCst`).
#[cfg(feature = "strict-sc")]
pub const LOAD: Ordering = Ordering::SeqCst;

/// Success ordering of link and compaction CASes: `Release`, publishing the
/// new parent edge to subsequent `Acquire` traversals (`SeqCst` under
/// `strict-sc`).
#[cfg(not(feature = "strict-sc"))]
pub const CAS_SUCCESS: Ordering = Ordering::Release;
/// Success ordering of link and compaction CASes (strict-sc: `SeqCst`).
#[cfg(feature = "strict-sc")]
pub const CAS_SUCCESS: Ordering = Ordering::SeqCst;

/// Failure ordering of link and compaction CASes: `Relaxed` — a failed CAS
/// publishes nothing and the loser re-reads with [`LOAD`] anyway (`SeqCst`
/// under `strict-sc`).
#[cfg(not(feature = "strict-sc"))]
pub const CAS_FAILURE: Ordering = Ordering::Relaxed;
/// Failure ordering of link and compaction CASes (strict-sc: `SeqCst`).
#[cfg(feature = "strict-sc")]
pub const CAS_FAILURE: Ordering = Ordering::SeqCst;

/// Ordering for reads of immutable id bits and for statistic counters:
/// `Relaxed` — ids never change after construction and counters are
/// tallies, not synchronization (`SeqCst` under `strict-sc`).
#[cfg(not(feature = "strict-sc"))]
pub const STAT: Ordering = Ordering::Relaxed;
/// Ordering for immutable-id reads and statistic counters (strict-sc:
/// `SeqCst`).
#[cfg(feature = "strict-sc")]
pub const STAT: Ordering = Ordering::SeqCst;

/// `true` when the `strict-sc` feature pinned all orderings to `SeqCst`.
pub const fn strict_sc() -> bool {
    cfg!(feature = "strict-sc")
}

/// `true` when the `prefetch` feature compiled software-prefetch
/// intrinsics into [`ParentStore::prefetch`] (x86-64 / AArch64 only; the
/// method is a no-op everywhere else regardless of the feature).
pub const fn prefetch_enabled() -> bool {
    cfg!(all(feature = "prefetch", any(target_arch = "x86_64", target_arch = "aarch64")))
}

/// Read-intent software prefetch of the cache line holding `*p` — the
/// primitive behind [`ParentStore::prefetch`]. Purely a hint: it never
/// faults, never synchronizes, and compiles to nothing unless the
/// `prefetch` feature is enabled on a target with an instruction for it
/// (x86-64 `prefetcht0`, AArch64 `prfm pldl1keep`).
#[inline(always)]
pub(crate) fn prefetch_read<T>(p: *const T) {
    #[cfg(all(feature = "prefetch", target_arch = "x86_64"))]
    // SAFETY: prefetch instructions are hints — they cannot fault even on
    // invalid addresses (the pointer here is in-bounds regardless).
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8)
    };
    #[cfg(all(feature = "prefetch", target_arch = "aarch64"))]
    // SAFETY: PRFM is a hint and cannot fault; the asm touches no state
    // beyond issuing it.
    unsafe {
        core::arch::asm!("prfm pldl1keep, [{0}]", in(reg) p, options(nostack, preserves_flags))
    };
    #[cfg(not(all(feature = "prefetch", any(target_arch = "x86_64", target_arch = "aarch64"))))]
    let _ = p;
}

/// One unit of sequential scan work: `count` elements starting at `base`,
/// `stride` apart — the common currency of the [`flatten`](crate::flatten)
/// sweep's chunking across layouts.
///
/// Contiguous layouts ([`DsuStore::scan_ranges`]) use stride 1; the
/// low-bit-striped growable sharded layout
/// ([`ShardedSegmentedStore`]) uses stride = shard count so each run walks
/// one shard's slab in allocation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanRun {
    /// First element index of the run.
    pub base: usize,
    /// Distance between consecutive elements of the run (≥ 1).
    pub stride: usize,
    /// Number of elements in the run.
    pub count: usize,
}

impl ScanRun {
    /// A stride-1 run covering `range`.
    pub fn contiguous(range: std::ops::Range<usize>) -> Self {
        ScanRun { base: range.start, stride: 1, count: range.len() }
    }

    /// The element index at position `j` of the run (`j < count`).
    #[inline]
    pub fn at(&self, j: usize) -> usize {
        self.base + j * self.stride
    }
}

/// A table of atomic parent words indexed by element.
///
/// The *word* ([`ParentStore::Word`]) is the store's unit of atomicity:
/// the raw `u64` for the packed layouts, the bare parent `usize` for the
/// flat ones. The traversal loop works on words — one load yields both the
/// next parent ([`parent_of`](ParentStore::parent_of)) and, in the packed
/// layouts, the element's linking priority — and every CAS expects the
/// *exact word previously seen* ([`cas_from`](ParentStore::cas_from)), so
/// no layout ever needs a second read to reconstruct its CAS operands.
///
/// Implementations must expose, for each existing element, one logical
/// cell with a coherent modification order, and must only be asked about
/// elements that exist (callers bounds-check first; implementations may
/// panic otherwise).
pub trait ParentStore: Send + Sync {
    /// The atomically accessed unit (parent index plus any inline fields).
    type Word: Copy + PartialEq;

    /// Loads the word of `i` ([`LOAD`] ordering).
    fn load_word(&self, i: usize) -> Self::Word;

    /// The parent index carried by a word.
    fn parent_of(w: Self::Word) -> usize;

    /// CASes `i`'s cell from exactly `seen` to the word carrying
    /// `new_parent` (and `seen`'s immutable fields); `true` on success
    /// ([`CAS_SUCCESS`] / [`CAS_FAILURE`] orderings).
    fn cas_from(&self, i: usize, seen: Self::Word, new_parent: usize) -> bool;

    /// The linking priority of element `i` as carried by its word `w` —
    /// free for packed layouts, an id lookup for flat ones.
    ///
    /// Contract: `(priority(u, wu), u) < (priority(v, wv), v)` must agree
    /// with the store's [`IdOrder`] — i.e. the
    /// index breaks priority ties — so `Unite` may link by priority
    /// without consulting the order again.
    fn priority(&self, i: usize, w: Self::Word) -> u64;

    /// Convenience: the parent of `i` ([`LOAD`] ordering).
    #[inline]
    fn load_parent(&self, i: usize) -> usize {
        Self::parent_of(self.load_word(i))
    }

    /// CASes the parent of `i` from `old` to `new` by value; `true` on
    /// success. Used by call sites that have no previously seen word (the
    /// blind link of early-termination `Unite`); packed layouts pay one
    /// extra (cache-hot) read here to learn the immutable id bits.
    #[inline]
    fn cas_parent(&self, i: usize, old: usize, new: usize) -> bool {
        let seen = self.load_word(i);
        Self::parent_of(seen) == old && self.cas_from(i, seen, new)
    }

    /// `true` iff `u` precedes `v` in the store's random linking order —
    /// the `(priority, index)` comparison of the [`priority`] contract.
    /// This is the *only* order the concurrent operations consult, so a
    /// store can never be driven by two disagreeing orders.
    ///
    /// [`priority`]: ParentStore::priority
    #[inline]
    fn precedes(&self, u: usize, v: usize) -> bool {
        (self.priority(u, self.load_word(u)), u) < (self.priority(v, self.load_word(v)), v)
    }

    /// Hints the hardware to pull element `i`'s parent word toward the
    /// cache with read intent. Purely a performance hint with no memory
    /// effects — the batch path issues it for the *next* gather wave's
    /// endpoints while the current wave is being filtered, so the next
    /// wave's loads hit. A no-op unless the crate is built with the
    /// `prefetch` feature on a target with a prefetch instruction (see
    /// [`prefetch_enabled`]). Like every other access, `i` must exist.
    #[inline]
    fn prefetch(&self, _i: usize) {}

    /// The union-by-rank rank carried by a word, consulted only by the
    /// [`RankLink`](crate::RankLink) policy. Layouts whose words carry no
    /// rank return the defaulted constant 0, which makes rank linking
    /// degenerate to index linking on them; [`RankedStore`] packs the rank
    /// into the word so the rank travels with the parent under the same
    /// word-exact CAS.
    #[inline]
    fn rank_of(_w: Self::Word) -> u64 {
        0
    }

    /// Best-effort union-by-rank tie bump: if `i` is *still a root* whose
    /// word carries exactly `rank`, CAS the word to the same parent with
    /// rank `rank + 1`; `true` on success. Losing any of those checks (the
    /// node was linked meanwhile, or another bump got there first) simply
    /// skips the bump — rank is a balance heuristic, never a correctness
    /// input, so a missed bump costs at most tree height. The root-only
    /// restriction is load-bearing for the *observers*, though: it is what
    /// freezes every non-root's key, keeping observed keys strictly
    /// increasing along parent paths (see [`LinkPolicy`](crate::LinkPolicy)).
    /// Defaulted to a no-op `false` for rank-less layouts.
    #[inline]
    fn try_bump_rank(&self, _i: usize, _rank: u64) -> bool {
        false
    }
}

/// A [`ParentStore`] bundled with the random total order on its elements —
/// everything [`Dsu`](crate::Dsu) needs from its storage type parameter.
pub trait DsuStore: ParentStore + IdOrder {
    /// Short layout name for reports (e.g. `"packed"`, `"flat"`,
    /// `"sharded"`).
    const NAME: &'static str;

    /// `n` singleton cells (`parent[i] == i`) with ids drawn as a uniform
    /// random permutation of `0..n` seeded by `seed`.
    ///
    /// Two stores built with the same `(n, seed)` — of *any* layout —
    /// assign identical ids, so layouts are interchangeable mid-experiment.
    fn with_seed(n: usize, seed: u64) -> Self;

    /// Number of cells.
    fn len(&self) -> usize;

    /// `true` when the store has no cells.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The random id (position in the random total order) of element `u`.
    fn id_of(&self, u: usize) -> u64;

    /// A non-atomic snapshot of all parents. Only meaningful at quiescence;
    /// used by tests and offline analysis.
    fn snapshot(&self) -> Vec<usize>;

    /// Contiguous index ranges that together cover `0..len()`, each of
    /// which the layout can scan sequentially without crossing an
    /// allocation boundary — the iteration surface the
    /// [`flatten`](crate::flatten) sweep chunks over.
    ///
    /// The default single range is right for every layout whose words live
    /// in one allocation (packed, flat, ranked). [`ShardedStore`] overrides
    /// it with one range per shard so a sweep chunk never straddles slabs
    /// (chunks are carved *within* ranges, keeping each chunk slab-local).
    /// Ranges must be disjoint, in ascending order, and non-empty.
    fn scan_ranges(&self) -> Vec<std::ops::Range<usize>> {
        if self.len() == 0 {
            return Vec::new();
        }
        // One whole-universe range (not a per-index expansion — the
        // lint fires on the literal, but a single range is the point).
        #[allow(clippy::single_range_in_vec_init)]
        {
            vec![0..self.len()]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_cas<P: ParentStore>(s: &P) {
        assert!(s.cas_parent(0, 0, 2));
        assert!(!s.cas_parent(0, 0, 1), "stale expected value must fail");
        assert_eq!(s.load_parent(0), 2);
        // Word-exact CAS: a stale word fails, the current one succeeds.
        let seen = s.load_word(0);
        assert_eq!(P::parent_of(seen), 2);
        assert!(s.cas_from(0, seen, 1));
        assert!(!s.cas_from(0, seen, 0), "stale word must fail");
        assert_eq!(s.load_parent(0), 1);
    }

    #[test]
    fn cas_succeeds_once_all_layouts() {
        exercise_cas(&FlatStore::new(3));
        exercise_cas(&PackedStore::with_seed(3, 0));
        exercise_cas(&ShardedStore::with_spec(3, 0, ShardSpec::with_shards(2)));
    }

    #[test]
    fn all_layouts_assign_identical_ids() {
        let flat = FlatStore::with_seed(64, 99);
        let packed = PackedStore::with_seed(64, 99);
        let sharded = ShardedStore::with_spec(64, 99, ShardSpec::with_shards(4));
        for i in 0..64 {
            assert_eq!(DsuStore::id_of(&flat, i), DsuStore::id_of(&packed, i));
            assert_eq!(DsuStore::id_of(&flat, i), DsuStore::id_of(&sharded, i));
        }
        // And therefore the same linking order.
        for u in 0..64 {
            for v in 0..64 {
                assert_eq!(IdOrder::less(&flat, u, v), IdOrder::less(&packed, u, v));
                assert_eq!(IdOrder::less(&flat, u, v), IdOrder::less(&sharded, u, v));
            }
        }
    }

    #[test]
    fn orderings_match_feature() {
        if strict_sc() {
            assert_eq!(LOAD, Ordering::SeqCst);
            assert_eq!(CAS_SUCCESS, Ordering::SeqCst);
            assert_eq!(CAS_FAILURE, Ordering::SeqCst);
            assert_eq!(STAT, Ordering::SeqCst);
        } else {
            assert_eq!(LOAD, Ordering::Acquire);
            assert_eq!(CAS_SUCCESS, Ordering::Release);
            assert_eq!(CAS_FAILURE, Ordering::Relaxed);
            assert_eq!(STAT, Ordering::Relaxed);
        }
    }
}

//! The flat two-array layout: the direct translation of the paper.
//!
//! An `AtomicUsize` parent slab plus a separate random-permutation id
//! array. Full `usize` range, one extra cache-line touch whenever an
//! operation needs an id. Kept as the reference layout, the `n > 2^32`
//! fallback, and the baseline the packed layouts are benchmarked against.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::order::{IdOrder, PermutationOrder};
use crate::store::{DsuStore, ParentStore, CAS_FAILURE, CAS_SUCCESS, LOAD};

/// The flat two-array store: an `AtomicUsize` parent slab plus a separate
/// permutation id array. Full `usize` universe range; the reference layout
/// the packed store is cross-checked and benchmarked against.
#[derive(Debug)]
pub struct FlatStore {
    parents: Box<[AtomicUsize]>,
    order: PermutationOrder,
}

impl FlatStore {
    /// Seed used by [`FlatStore::new`] (tests that don't care about ids).
    const DEFAULT_SEED: u64 = 0;

    /// `n` singleton cells (`parent[i] == i`) with a default id seed.
    pub fn new(n: usize) -> Self {
        Self::with_seed(n, Self::DEFAULT_SEED)
    }

    /// `n` singleton cells with permutation ids (see [`DsuStore::with_seed`]).
    pub fn with_seed(n: usize, seed: u64) -> Self {
        FlatStore {
            parents: (0..n).map(AtomicUsize::new).collect(),
            order: PermutationOrder::new(n, seed),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// `true` when the store has no cells.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// The atomic parent cell of element `i` — for tests and simulators
    /// that build forests directly.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not an existing element.
    pub fn parent_cell(&self, i: usize) -> &AtomicUsize {
        &self.parents[i]
    }

    /// A non-atomic snapshot of all parents (quiescence only).
    pub fn snapshot(&self) -> Vec<usize> {
        self.parents.iter().map(|p| p.load(Ordering::Relaxed)).collect()
    }
}

impl ParentStore for FlatStore {
    type Word = usize;

    #[inline]
    fn load_word(&self, i: usize) -> usize {
        self.parents[i].load(LOAD)
    }

    #[inline]
    fn parent_of(w: usize) -> usize {
        w
    }

    #[inline]
    fn cas_from(&self, i: usize, seen: usize, new_parent: usize) -> bool {
        self.parents[i].compare_exchange(seen, new_parent, CAS_SUCCESS, CAS_FAILURE).is_ok()
    }

    #[inline]
    fn cas_parent(&self, i: usize, old: usize, new: usize) -> bool {
        // The word *is* the parent — CAS directly, no pre-read.
        self.cas_from(i, old, new)
    }

    #[inline]
    fn priority(&self, i: usize, _w: usize) -> u64 {
        self.order.id_of(i)
    }

    #[inline]
    fn precedes(&self, u: usize, v: usize) -> bool {
        // The default would load both parent words only to discard them
        // (flat priorities live in the id array); go straight to the order.
        self.order.less(u, v)
    }

    #[inline]
    fn prefetch(&self, i: usize) {
        crate::store::prefetch_read(&self.parents[i] as *const AtomicUsize);
    }
}

impl IdOrder for FlatStore {
    fn less(&self, u: usize, v: usize) -> bool {
        self.order.less(u, v)
    }
}

impl DsuStore for FlatStore {
    const NAME: &'static str = "flat";

    fn with_seed(n: usize, seed: u64) -> Self {
        FlatStore::with_seed(n, seed)
    }

    fn len(&self) -> usize {
        self.parents.len()
    }

    fn id_of(&self, u: usize) -> u64 {
        self.order.id_of(u)
    }

    fn snapshot(&self) -> Vec<usize> {
        FlatStore::snapshot(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_store_starts_as_singletons() {
        let s = FlatStore::new(5);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        for i in 0..5 {
            assert_eq!(s.load_parent(i), i);
        }
        assert_eq!(s.snapshot(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_flat_store() {
        assert!(FlatStore::new(0).is_empty());
        assert_eq!(FlatStore::new(0).snapshot(), Vec::<usize>::new());
    }
}

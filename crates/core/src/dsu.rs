//! The fixed-universe concurrent union-find ([`Dsu`]).

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::bulk::{self, BatchTuning};
use crate::cache::{self, RootCache};
use crate::find::{FindPolicy, TwoTrySplit};
use crate::flatten::{self, FlattenPolicy, FlattenTrigger};
use crate::ingest::PlanTuning;
use crate::ops;
use crate::order::LinkPolicy;
use crate::stats::{OpStats, StatsSink};
use crate::store::{DsuStore, ScanRun};
use crate::ConcurrentUnionFind;

/// A wait-free concurrent disjoint-set union over the fixed universe
/// `0..n`, parameterized by the find compaction policy `F` (default:
/// [`TwoTrySplit`], the paper's best variant), the parent storage layout
/// `S` (default: [`DefaultStore`](crate::DefaultStore) —
/// [`PackedStore`](crate::PackedStore) unless a `default-store-*` feature
/// retargets it; see the layout-selection guide in the
/// [`store`](crate::store) module docs; universes larger than `2^32` must
/// pick [`FlatStore`](crate::store::FlatStore) explicitly), and the link
/// policy `L` (default: [`DefaultLink`](crate::DefaultLink) —
/// [`RandomLink`](crate::RandomLink), the paper's randomized linking,
/// unless the `default-link-index` feature retargets it; the axis and its
/// acyclicity contract live in the [`order`](crate::order) module docs).
///
/// All operations take `&self` and may be called from any number of threads
/// simultaneously; results are linearizable (paper Lemma 3.2 — on
/// multi-copy-atomic hardware such as x86-64/ARMv8 under the default
/// orderings, on every machine under `strict-sc`; see the
/// [`store`](crate::store) module docs) and every operation finishes in
/// `O(log n)` steps w.h.p. (Theorem 4.3) regardless of scheduling
/// (wait-freedom, Lemma 3.3).
///
/// # Example
///
/// ```
/// use concurrent_dsu::{Dsu, FlatStore, OneTrySplit};
///
/// let dsu: Dsu<OneTrySplit> = Dsu::with_seed(10, 42);
/// assert!(dsu.unite(3, 4));
/// assert!(dsu.same_set(3, 4));
/// assert_eq!(dsu.set_count(), 9);
///
/// // Same semantics on the flat reference layout:
/// let flat: Dsu<OneTrySplit, FlatStore> = Dsu::with_seed(10, 42);
/// assert!(flat.unite(3, 4));
/// assert_eq!(flat.set_count(), 9);
/// ```
pub struct Dsu<
    F: FindPolicy = TwoTrySplit,
    S: DsuStore = crate::DefaultStore,
    L: LinkPolicy = crate::DefaultLink,
> {
    store: S,
    /// Parent in the *union forest*: written exactly once per element, when
    /// its link CAS succeeds. Read for offline analysis (heights, depths) at
    /// quiescence; never read by the operations themselves.
    union_parent: Box<[AtomicUsize]>,
    /// Number of successful links ever; `set_count = n - links`.
    links: AtomicUsize,
    /// Adaptive flatten trigger, consulted after every ingested batch
    /// (configured by `DSU_FLATTEN` at construction; default off).
    flatten: FlattenTrigger,
    _policy: std::marker::PhantomData<(F, L)>,
}

impl<F: FindPolicy, S: DsuStore, L: LinkPolicy> std::fmt::Debug for Dsu<F, S, L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dsu")
            .field("len", &self.len())
            .field("set_count", &self.set_count())
            .field("policy", &F::NAME)
            .field("store", &S::NAME)
            .field("link", &L::NAME)
            .finish()
    }
}

impl<F: FindPolicy, S: DsuStore, L: LinkPolicy> Dsu<F, S, L> {
    /// Default seed for the random node order; fixed so runs are
    /// reproducible unless a seed is supplied via [`Dsu::with_seed`].
    pub const DEFAULT_SEED: u64 = 0x7461_726a_616e_2016; // "tarjan 2016"

    /// Creates `n` singleton sets with a deterministic default seed for the
    /// random node order.
    pub fn new(n: usize) -> Self {
        Self::with_seed(n, Self::DEFAULT_SEED)
    }

    /// Creates `n` singleton sets; `seed` drives the uniformly random node
    /// order that randomized linking requires.
    ///
    /// # Panics
    ///
    /// Panics if the storage layout cannot address `n` elements (the
    /// default [`PackedStore`](crate::PackedStore) supports at most `2^32`).
    pub fn with_seed(n: usize, seed: u64) -> Self {
        Self::from_store(S::with_seed(n, seed))
    }

    /// Wraps an already-constructed store — the entry point for stores
    /// whose constructors take more than `(n, seed)`, such as a
    /// [`ShardedStore`](crate::ShardedStore) with an explicit
    /// [`ShardSpec`](crate::ShardSpec):
    ///
    /// ```
    /// use concurrent_dsu::{Dsu, ShardSpec, ShardedStore, TwoTrySplit};
    ///
    /// let store = ShardedStore::with_spec(100, 42, ShardSpec::with_shards(8));
    /// let dsu: Dsu<TwoTrySplit, ShardedStore> = Dsu::from_store(store);
    /// assert!(dsu.unite(3, 4));
    /// ```
    ///
    /// The store must be freshly constructed (all singletons): `Dsu`
    /// tracks the set count and union forest from zero.
    pub fn from_store(store: S) -> Self {
        Dsu {
            union_parent: (0..store.len()).map(AtomicUsize::new).collect(),
            store,
            links: AtomicUsize::new(0),
            flatten: FlattenTrigger::from_env(),
            _policy: std::marker::PhantomData,
        }
    }

    /// Number of elements in the universe.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// `true` if the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Number of disjoint sets (`n` minus successful links). The counter
    /// is maintained with relaxed atomics: exact at quiescence and
    /// monotonically non-increasing, but a concurrent reader may observe
    /// it lag links that are already visible through `find` (under
    /// `strict-sc` the counter is sequentially consistent).
    pub fn set_count(&self) -> usize {
        self.len() - self.links.load(crate::store::STAT)
    }

    /// The random id (position in the random total order) of element `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= self.len()`.
    pub fn id_of(&self, x: usize) -> u64 {
        self.store.id_of(x)
    }

    /// The name of the find policy (e.g. `"two-try"`), for reports.
    pub fn policy_name(&self) -> &'static str {
        F::NAME
    }

    /// The name of the storage layout (e.g. `"packed"`), for reports.
    pub fn store_name(&self) -> &'static str {
        S::NAME
    }

    /// The name of the link policy (e.g. `"random"`), for reports.
    pub fn link_name(&self) -> &'static str {
        L::NAME
    }

    /// The underlying store — for layout-specific inspection (a sharded
    /// store's [`ShardReport`](crate::ShardReport), a
    /// [`FaultyStore`](crate::FaultyStore)'s fault report). Read-only: the
    /// forest is only ever mutated through the operations.
    pub fn store(&self) -> &S {
        &self.store
    }

    fn check(&self, x: usize) {
        assert!(x < self.len(), "element {x} out of range (len {})", self.len());
    }

    /// Returns the root of the tree containing `x`, compacting the find
    /// path per the policy. See
    /// [`ConcurrentUnionFind::find`](crate::ConcurrentUnionFind::find) for
    /// the staleness caveat.
    ///
    /// # Panics
    ///
    /// Panics if `x >= self.len()`.
    pub fn find(&self, x: usize) -> usize {
        self.find_with(x, &mut ())
    }

    /// [`find`](Dsu::find) reporting work into `stats`.
    pub fn find_with<Sk: StatsSink>(&self, x: usize, stats: &mut Sk) -> usize {
        self.check(x);
        F::find(&self.store, x, stats).0
    }

    /// Returns `true` iff `x` and `y` are in the same set at the operation's
    /// linearization point (paper Algorithm 2).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn same_set(&self, x: usize, y: usize) -> bool {
        self.same_set_with(x, y, &mut ())
    }

    /// [`same_set`](Dsu::same_set) reporting work into `stats`.
    pub fn same_set_with<Sk: StatsSink>(&self, x: usize, y: usize, stats: &mut Sk) -> bool {
        self.check(x);
        self.check(y);
        ops::same_set::<F, _, _>(&self.store, x, y, stats)
    }

    /// Unites the sets containing `x` and `y` (paper Algorithm 3). Returns
    /// `true` iff this call performed the link.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn unite(&self, x: usize, y: usize) -> bool {
        self.unite_with(x, y, &mut ())
    }

    /// [`unite`](Dsu::unite) reporting work into `stats`.
    pub fn unite_with<Sk: StatsSink>(&self, x: usize, y: usize, stats: &mut Sk) -> bool {
        self.check(x);
        self.check(y);
        ops::unite::<F, L, _, _>(&self.store, x, y, stats, |child, parent| {
            self.record_link(child, parent)
        })
    }

    /// `SameSet` with early termination (paper Algorithm 6): walks only the
    /// smaller of the two find paths and stops as soon as the answer is
    /// certain. Same linearizable semantics as [`same_set`](Dsu::same_set).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn same_set_early(&self, x: usize, y: usize) -> bool {
        self.same_set_early_with(x, y, &mut ())
    }

    /// [`same_set_early`](Dsu::same_set_early) reporting work into `stats`.
    pub fn same_set_early_with<Sk: StatsSink>(&self, x: usize, y: usize, stats: &mut Sk) -> bool {
        self.check(x);
        self.check(y);
        ops::same_set_early::<F, L, _, _>(&self.store, x, y, stats)
    }

    /// `Unite` with early termination (paper Algorithm 7). Same semantics
    /// as [`unite`](Dsu::unite).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn unite_early(&self, x: usize, y: usize) -> bool {
        self.unite_early_with(x, y, &mut ())
    }

    /// [`unite_early`](Dsu::unite_early) reporting work into `stats`.
    pub fn unite_early_with<Sk: StatsSink>(&self, x: usize, y: usize, stats: &mut Sk) -> bool {
        self.check(x);
        self.check(y);
        ops::unite_early::<F, L, _, _>(&self.store, x, y, stats, |child, parent| {
            self.record_link(child, parent)
        })
    }

    /// Batched [`unite`](Dsu::unite) over an edge slice (see the
    /// [`bulk`](crate::bulk) module): a read-mostly filter pass drops
    /// already-connected edges via early-termination same-set walks, then a
    /// link pass CASes each survivor's root straight from the word the
    /// filter observed. Returns the number of successful links.
    ///
    /// Single-threaded, the final partition, the set count, and the
    /// returned link count are exactly those of calling
    /// [`unite`](Dsu::unite) one edge at a time; concurrent callers get
    /// the usual linearizable semantics per edge. (Those quantities are
    /// order-invariant, which is what lets the `DSU_BATCH_PLAN`
    /// environment variable route this count-only entry point through the
    /// ingestion planner — [`bulk::runtime_default_tuning`] — without any
    /// observable change. Per-edge verdicts come from
    /// [`unite_batch_results`](Dsu::unite_batch_results), which always
    /// keeps the original-order contract.)
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    pub fn unite_batch(&self, edges: &[(usize, usize)]) -> usize {
        self.unite_batch_with(edges, &mut ())
    }

    /// [`unite_batch`](Dsu::unite_batch) reporting work into `stats`.
    pub fn unite_batch_with<Sk: StatsSink>(
        &self,
        edges: &[(usize, usize)],
        stats: &mut Sk,
    ) -> usize {
        self.unite_batch_tuned_with(edges, bulk::runtime_default_tuning(), None, stats)
    }

    /// [`unite_batch`](Dsu::unite_batch) routed through the ingestion
    /// planner ([`ingest`](crate::ingest)) at the default [`PlanTuning`]:
    /// intra-batch duplicates are dropped before touching the store, and
    /// the remaining edges drain bucket by block-local bucket (spillover
    /// pass last) so each gather wave's loads stay inside one resident
    /// index range. Returns the number of successful links — identical to
    /// the unplanned path (link counts and the final partition are
    /// order-invariant).
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    pub fn unite_batch_planned(&self, edges: &[(usize, usize)]) -> usize {
        self.unite_batch_planned_with(edges, &mut ())
    }

    /// [`unite_batch_planned`](Dsu::unite_batch_planned) reporting work —
    /// including the planner's `dup_edges_dropped` / `bucket_count` /
    /// `spill_edges` counters — into `stats`.
    pub fn unite_batch_planned_with<Sk: StatsSink>(
        &self,
        edges: &[(usize, usize)],
        stats: &mut Sk,
    ) -> usize {
        self.unite_batch_tuned_with(
            edges,
            BatchTuning::new().planned(PlanTuning::new()),
            None,
            stats,
        )
    }

    /// [`unite_batch_planned`](Dsu::unite_batch_planned) that also
    /// reports, per edge (indexed as in the input slice), whether this
    /// batch performed the link. Unlike
    /// [`unite_batch_results`](Dsu::unite_batch_results) the verdicts
    /// follow the **plan order** — bit-identical, single-threaded, to a
    /// per-op `unite` loop over
    /// [`BatchPlan::execution_order`](crate::BatchPlan::execution_order),
    /// with dropped duplicates reporting `false`; see the verdict
    /// contract in [`ingest`](crate::ingest). Callers that need
    /// original-arrival-order verdicts want the unplanned variant.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    pub fn unite_batch_planned_results(&self, edges: &[(usize, usize)]) -> Vec<bool> {
        for &(x, y) in edges {
            self.check(x);
            self.check(y);
        }
        let mut results = vec![false; edges.len()];
        bulk::unite_batch_sink_tuned::<L, _, _>(
            &self.store,
            edges,
            BatchTuning::new().planned(PlanTuning::new()),
            None,
            &mut (),
            |child, parent| self.record_link(child, parent),
            |i, linked| results[i] = linked,
        );
        self.maybe_flatten(&mut ());
        results
    }

    /// [`unite_batch`](Dsu::unite_batch) with explicit [`BatchTuning`]
    /// (gather-wave depth) and an optional caller-owned hot-root cache:
    /// `Some` memoizes hot endpoints across this call *and* any other
    /// calls sharing the cache (the per-thread session shape —
    /// [`Dsu::cached`] packages it); `None` disables memoization entirely
    /// (the cache-off arm of the `cache_ab` A/B). Tuning is performance
    /// only — every combination returns the same verdicts.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    pub fn unite_batch_tuned_with<Sk: StatsSink>(
        &self,
        edges: &[(usize, usize)],
        tuning: BatchTuning,
        cache: Option<&mut RootCache>,
        stats: &mut Sk,
    ) -> usize {
        for &(x, y) in edges {
            self.check(x);
            self.check(y);
        }
        let linked = bulk::unite_batch_sink_tuned::<L, _, _>(
            &self.store,
            edges,
            tuning,
            cache,
            stats,
            |child, parent| self.record_link(child, parent),
            |_, _| {},
        );
        self.maybe_flatten(stats);
        linked
    }

    /// Opens a hot-root cache session: a thread-private handle whose
    /// finds start at the last root each element was observed under,
    /// falling back to the normal walk when a single validation load says
    /// the entry went stale (see the [`cache`](crate::cache) module for
    /// the semantics argument). Results are identical to the plain
    /// operations; only the work changes. One handle per thread — its
    /// methods take `&mut self`. The cache capacity is
    /// [`RootCache::DEFAULT_CAPACITY`] unless the `DSU_CACHE_SLOTS`
    /// environment variable overrides it (via [`RootCache::default`]).
    ///
    /// # Example
    ///
    /// ```
    /// use concurrent_dsu::Dsu;
    ///
    /// let dsu: Dsu = Dsu::new(100);
    /// let mut session = dsu.cached();
    /// for i in 0..99 {
    ///     session.unite(i, i + 1);
    /// }
    /// assert!(session.same_set(0, 99));
    /// assert!(dsu.same_set(0, 99)); // plain ops see the same sets
    /// ```
    pub fn cached(&self) -> CachedHandle<'_, F, S, L> {
        CachedHandle { dsu: self, cache: RootCache::default() }
    }

    /// [`cached`](Dsu::cached) with an explicit cache capacity (slots,
    /// rounded up to a power of two). Capacity trades hit rate against
    /// footprint and never affects results.
    pub fn cached_with_capacity(&self, capacity: usize) -> CachedHandle<'_, F, S, L> {
        CachedHandle { dsu: self, cache: RootCache::with_capacity(capacity) }
    }

    /// [`unite_batch`](Dsu::unite_batch) that also reports, per edge,
    /// whether this batch performed the link — for clients (Borůvka, cycle
    /// classification) that need the edge-level verdicts.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    pub fn unite_batch_results(&self, edges: &[(usize, usize)]) -> Vec<bool> {
        for &(x, y) in edges {
            self.check(x);
            self.check(y);
        }
        let mut results = vec![false; edges.len()];
        bulk::unite_batch_sink::<L, _, _>(
            &self.store,
            edges,
            &mut (),
            |child, parent| self.record_link(child, parent),
            |i, linked| results[i] = linked,
        );
        self.maybe_flatten(&mut ());
        results
    }

    // ----- Flatten maintenance pass (see the [`flatten`] module) -----

    /// One sequential store-ordered flatten sweep: pointer-jumps every
    /// element until the whole forest has depth ≤ 1. Safe to run
    /// concurrently with ongoing operations (a lost CAS just means someone
    /// moved the root); at quiescence one sweep leaves every subsequent
    /// find O(1).
    pub fn flatten(&self) {
        self.flatten_with(&mut ());
    }

    /// [`flatten`](Dsu::flatten) reporting work into a [`StatsSink`]
    /// (loads as `read`, jumps as `compact_cas_*` plus the
    /// `flatten_*` attribution counters).
    pub fn flatten_with<Sk: StatsSink>(&self, stats: &mut Sk) {
        flatten::flatten_runs(&self.store, &self.scan_runs(), stats);
    }

    /// Parallel flatten sweep over `threads` workers using the same
    /// dynamic chunk-cursor scheduling as the parallel batch ingest.
    /// Returns the merged per-worker counters.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn flatten_parallel(&self, threads: usize) -> OpStats {
        flatten::flatten_runs_parallel(&self.store, &self.scan_runs(), threads)
    }

    /// The active [`FlattenPolicy`] (from `DSU_FLATTEN` at construction
    /// unless overridden by [`set_flatten_policy`](Dsu::set_flatten_policy)).
    pub fn flatten_policy(&self) -> FlattenPolicy {
        self.flatten.policy()
    }

    /// Replaces the flatten policy (e.g. to enable the adaptive trigger
    /// on a handle built with the knob unset).
    pub fn set_flatten_policy(&mut self, policy: FlattenPolicy) {
        self.flatten.set_policy(policy);
    }

    /// Store-ordered scan chunks for this store's layout (slab-local for
    /// sharded stores).
    fn scan_runs(&self) -> Vec<ScanRun> {
        self.store.scan_ranges().into_iter().map(ScanRun::contiguous).collect()
    }

    /// Consulted after every ingested batch: runs a sequential flatten
    /// sweep when the configured policy says the forest is deep enough to
    /// pay for one. `Off` (the default) is a single branch.
    fn maybe_flatten<Sk: StatsSink>(&self, stats: &mut Sk) {
        if self.flatten.batch_done(|| flatten::trigger_probe(&self.store, self.len())) {
            self.flatten_with(stats);
        }
    }

    fn record_link(&self, child: usize, parent: usize) {
        // Relaxed is enough: union_parent is only read offline at
        // quiescence, and `links` is a statistic whose own atomicity
        // suffices for set_count.
        self.union_parent[child].store(parent, Ordering::Relaxed);
        self.links.fetch_add(1, Ordering::Relaxed);
    }

    // ----- Offline analysis (call only at quiescence) -----

    /// Snapshot of the current parent pointers. Meaningful only when no
    /// other thread is operating.
    pub fn parents_snapshot(&self) -> Vec<usize> {
        self.store.snapshot()
    }

    /// Snapshot of the *union forest* (links only, compaction ignored;
    /// paper Section 3). Meaningful only at quiescence.
    pub fn union_forest_snapshot(&self) -> Vec<usize> {
        self.union_parent.iter().map(|p| p.load(Ordering::Relaxed)).collect()
    }

    /// Height of the union forest — the quantity Corollary 4.2.1 bounds by
    /// `O(log n)` w.h.p. Call only at quiescence; `O(n)` time.
    pub fn union_forest_height(&self) -> usize {
        forest_height(&self.union_forest_snapshot())
    }

    /// Canonical labels (root of each element, fully compacted): suitable
    /// for building a `Partition`. Call only at quiescence; compacts as a
    /// side effect.
    pub fn labels_snapshot(&self) -> Vec<usize> {
        let mut labels: Vec<usize> = (0..self.len()).map(|i| self.find(i)).collect();
        // One more pass: find() already returns roots, but a concurrent-free
        // second resolution makes labels idempotent even if compaction
        // changed roots mid-scan (it cannot at quiescence; belt and braces).
        for i in 0..labels.len() {
            labels[i] = labels[labels[i]];
        }
        labels
    }
}

/// A thread-private hot-root cache session over a [`Dsu`] (from
/// [`Dsu::cached`]): the same operations, with every find first probing a
/// small element-to-last-observed-root table and validating the entry with
/// one load (see [`cache`](crate::cache)). Verdicts are identical to the
/// plain operations — proptested in `tests/cache_semantics.rs` — so a
/// handle can be dropped and recreated, or mixed freely with plain and
/// batched calls from other threads.
///
/// Methods take `&mut self` (the cache is the handle's private state), so
/// a handle serves one thread at a time; share the underlying [`Dsu`]
/// across threads and give each thread its own handle.
pub struct CachedHandle<
    'a,
    F: FindPolicy = TwoTrySplit,
    S: DsuStore = crate::DefaultStore,
    L: LinkPolicy = crate::DefaultLink,
> {
    dsu: &'a Dsu<F, S, L>,
    cache: RootCache,
}

impl<F: FindPolicy, S: DsuStore, L: LinkPolicy> std::fmt::Debug for CachedHandle<'_, F, S, L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedHandle")
            .field("dsu", self.dsu)
            .field("cache_capacity", &self.cache.capacity())
            .finish()
    }
}

impl<'a, F: FindPolicy, S: DsuStore, L: LinkPolicy> CachedHandle<'a, F, S, L> {
    /// The structure this session operates on.
    pub fn dsu(&self) -> &'a Dsu<F, S, L> {
        self.dsu
    }

    /// Empties the session's cache (e.g. between phases with different
    /// hot sets). Never required for correctness.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Root of the tree containing `x`, starting from the cached root when
    /// the entry validates. Same staleness caveat as [`Dsu::find`].
    ///
    /// # Panics
    ///
    /// Panics if `x >= self.dsu().len()`.
    pub fn find(&mut self, x: usize) -> usize {
        self.find_with(x, &mut ())
    }

    /// [`find`](CachedHandle::find) reporting work (including
    /// `cache_hits` / `cache_stale`) into `stats`.
    pub fn find_with<Sk: StatsSink>(&mut self, x: usize, stats: &mut Sk) -> usize {
        self.dsu.check(x);
        cache::find_cached::<F, _, _>(&self.dsu.store, &mut self.cache, x, stats).0
    }

    /// [`Dsu::same_set`] with cached finds — identical verdicts.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn same_set(&mut self, x: usize, y: usize) -> bool {
        self.same_set_with(x, y, &mut ())
    }

    /// [`same_set`](CachedHandle::same_set) reporting work into `stats`.
    pub fn same_set_with<Sk: StatsSink>(&mut self, x: usize, y: usize, stats: &mut Sk) -> bool {
        self.dsu.check(x);
        self.dsu.check(y);
        cache::same_set_cached::<F, _, _>(&self.dsu.store, &mut self.cache, x, y, stats)
    }

    /// [`Dsu::unite`] with cached finds — identical verdicts; the link CAS
    /// expects the exact word the cache validation (or fallback walk)
    /// observed.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn unite(&mut self, x: usize, y: usize) -> bool {
        self.unite_with(x, y, &mut ())
    }

    /// [`unite`](CachedHandle::unite) reporting work into `stats`.
    pub fn unite_with<Sk: StatsSink>(&mut self, x: usize, y: usize, stats: &mut Sk) -> bool {
        self.dsu.check(x);
        self.dsu.check(y);
        cache::unite_cached::<F, L, _, _>(&self.dsu.store, &mut self.cache, x, y, stats, |c, p| {
            self.dsu.record_link(c, p)
        })
    }

    /// [`Dsu::unite_batch`] with the session's cache carried across calls,
    /// so hot endpoints stay memoized from one burst to the next.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    pub fn unite_batch(&mut self, edges: &[(usize, usize)]) -> usize {
        self.unite_batch_with(edges, &mut ())
    }

    /// [`unite_batch`](CachedHandle::unite_batch) reporting work into
    /// `stats`.
    pub fn unite_batch_with<Sk: StatsSink>(
        &mut self,
        edges: &[(usize, usize)],
        stats: &mut Sk,
    ) -> usize {
        self.dsu.unite_batch_tuned_with(edges, BatchTuning::default(), Some(&mut self.cache), stats)
    }
}

/// Height (max arc count root-to-leaf) of a self-loop-rooted parent forest.
pub(crate) fn forest_height(parent: &[usize]) -> usize {
    let mut depth = vec![usize::MAX; parent.len()];
    let mut tallest = 0;
    for start in 0..parent.len() {
        let mut path = Vec::new();
        let mut u = start;
        while depth[u] == usize::MAX && parent[u] != u {
            path.push(u);
            u = parent[u];
        }
        let mut d = if parent[u] == u && depth[u] == usize::MAX {
            depth[u] = 0;
            0
        } else {
            depth[u]
        };
        for &node in path.iter().rev() {
            d += 1;
            depth[node] = d;
        }
        tallest = tallest.max(depth[start]);
    }
    tallest
}

impl<F: FindPolicy, S: DsuStore, L: LinkPolicy> ConcurrentUnionFind for Dsu<F, S, L> {
    fn len(&self) -> usize {
        Dsu::len(self)
    }

    fn same_set(&self, x: usize, y: usize) -> bool {
        Dsu::same_set(self, x, y)
    }

    fn unite(&self, x: usize, y: usize) -> bool {
        Dsu::unite(self, x, y)
    }

    fn unite_batch(&self, edges: &[(usize, usize)]) -> usize {
        Dsu::unite_batch(self, edges)
    }

    fn unite_batch_cached(&self, edges: &[(usize, usize)], cache: &mut RootCache) -> usize {
        self.unite_batch_tuned_with(edges, BatchTuning::default(), Some(cache), &mut ())
    }

    fn unite_batch_planned(&self, edges: &[(usize, usize)]) -> usize {
        Dsu::unite_batch_planned(self, edges)
    }

    fn find(&self, x: usize) -> usize {
        Dsu::find(self, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find::{Halving, NoCompaction, OneTrySplit};
    use crate::order::{IndexLink, RandomLink, RankLink};
    use crate::store::RankedStore;
    use crate::OpStats;
    use sequential_dsu::{NaiveDsu, Partition};

    /// The paper's linking, pinned explicitly: tests that assert *random-id*
    /// semantics (Lemma 3.1 on ids, the log-height theorem) must not float
    /// with the `default-link-index` feature the CI variants cell flips.
    type RandomDsu<F = TwoTrySplit> = Dsu<F, crate::DefaultStore, RandomLink>;

    fn exercise_basic<F: FindPolicy>() {
        let dsu: Dsu<F> = Dsu::new(10);
        assert_eq!(dsu.len(), 10);
        assert_eq!(dsu.set_count(), 10);
        assert!(!dsu.same_set(0, 9));
        assert!(dsu.unite(0, 9));
        assert!(dsu.same_set(0, 9));
        assert!(!dsu.unite(9, 0));
        assert_eq!(dsu.set_count(), 9);
        assert!(dsu.same_set_early(0, 9));
        assert!(dsu.unite_early(1, 2));
        assert!(!dsu.unite_early(2, 1));
        assert_eq!(dsu.set_count(), 8);
    }

    #[test]
    fn basics_all_policies() {
        exercise_basic::<NoCompaction>();
        exercise_basic::<OneTrySplit>();
        exercise_basic::<TwoTrySplit>();
        exercise_basic::<Halving>();
    }

    #[test]
    fn debug_is_informative() {
        let dsu: RandomDsu = Dsu::new(3);
        let s = format!("{dsu:?}");
        assert!(s.contains("two-try"), "{s}");
        assert!(s.contains("len"), "{s}");
        assert!(s.contains("random"), "{s}");
        assert_eq!(dsu.link_name(), "random");
    }

    #[test]
    fn single_threaded_matches_oracle() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(77);
        let n = 64;
        let dsu: Dsu = Dsu::with_seed(n, 5);
        let mut oracle = NaiveDsu::new(n);
        for _ in 0..500 {
            let x = rng.gen_range(0..n);
            let y = rng.gen_range(0..n);
            match rng.gen_range(0..4) {
                0 => assert_eq!(dsu.unite(x, y), oracle.unite(x, y)),
                1 => assert_eq!(dsu.same_set(x, y), oracle.same_set(x, y)),
                2 => assert_eq!(dsu.unite_early(x, y), oracle.unite(x, y)),
                _ => assert_eq!(dsu.same_set_early(x, y), oracle.same_set(x, y)),
            }
        }
        assert_eq!(dsu.set_count(), oracle.set_count());
        assert_eq!(Partition::from_labels(&dsu.labels_snapshot()), oracle.partition());
    }

    #[test]
    fn concurrent_final_state_is_order_independent() {
        // Set union is confluent: the final partition equals the connected
        // components of all unite pairs, however the threads interleaved.
        let n = 512;
        let pairs: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, (i * 7919 + 13) % n)).collect();
        let dsu: Dsu = Dsu::new(n);
        std::thread::scope(|s| {
            for t in 0..8 {
                let dsu = &dsu;
                let pairs = &pairs;
                s.spawn(move || {
                    for (i, &(x, y)) in pairs.iter().enumerate() {
                        if i % 8 == t {
                            dsu.unite(x, y);
                        } else {
                            dsu.same_set(x, y);
                        }
                    }
                });
            }
        });
        let mut oracle = NaiveDsu::new(n);
        for &(x, y) in &pairs {
            oracle.unite(x, y);
        }
        assert_eq!(Partition::from_labels(&dsu.labels_snapshot()), oracle.partition());
        assert_eq!(dsu.set_count(), oracle.set_count());
    }

    #[test]
    fn true_unite_returns_equal_links() {
        // Across all threads, the number of `unite` calls returning true
        // must equal n - (final number of sets): each successful link
        // reduces the set count by exactly one.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = 1024;
        let dsu: Dsu<OneTrySplit> = Dsu::new(n);
        let trues = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..8usize {
                let dsu = &dsu;
                let trues = &trues;
                s.spawn(move || {
                    use rand::{Rng, SeedableRng};
                    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(t as u64);
                    let mut local = 0;
                    for _ in 0..2000 {
                        let x = rng.gen_range(0..n);
                        let y = rng.gen_range(0..n);
                        if dsu.unite(x, y) {
                            local += 1;
                        }
                    }
                    trues.fetch_add(local, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(trues.load(Ordering::Relaxed), n - dsu.set_count());
    }

    #[test]
    fn parent_ids_strictly_increase_along_paths() {
        // Lemma 3.1 under real concurrency.
        let n = 2048;
        let dsu: RandomDsu = Dsu::new(n);
        std::thread::scope(|s| {
            for t in 0..8usize {
                let dsu = &dsu;
                s.spawn(move || {
                    use rand::{Rng, SeedableRng};
                    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(100 + t as u64);
                    for _ in 0..4000 {
                        dsu.unite(rng.gen_range(0..n), rng.gen_range(0..n));
                    }
                });
            }
        });
        let parents = dsu.parents_snapshot();
        for (x, &p) in parents.iter().enumerate() {
            if p != x {
                assert!(dsu.id_of(x) < dsu.id_of(p));
            }
        }
        // The union forest is a sub-relation with the same property, and is
        // acyclic (walking up terminates within n steps).
        let forest = dsu.union_forest_snapshot();
        for x in 0..n {
            let mut u = x;
            let mut steps = 0;
            while forest[u] != u {
                assert!(dsu.id_of(u) < dsu.id_of(forest[u]));
                u = forest[u];
                steps += 1;
                assert!(steps <= n, "cycle in union forest");
            }
        }
    }

    #[test]
    fn union_forest_height_is_logarithmic() {
        // Corollary 4.2.1 (statistical): height = O(log n) w.h.p. Use a
        // generous constant so the test never flakes: c = 6 over 3 seeds.
        for seed in [1, 2, 3] {
            let n = 1 << 14;
            let dsu: RandomDsu = Dsu::with_seed(n, seed);
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed ^ 0xABCD);
            for _ in 0..2 * n {
                dsu.unite(rng.gen_range(0..n), rng.gen_range(0..n));
            }
            let h = dsu.union_forest_height();
            let bound = 6 * (n as f64).log2() as usize;
            assert!(h <= bound, "height {h} > {bound} for seed {seed}");
        }
    }

    #[test]
    fn stats_capture_work() {
        let dsu: Dsu = Dsu::new(128);
        let mut stats = OpStats::default();
        for i in 0..127 {
            dsu.unite_with(i, i + 1, &mut stats);
        }
        assert_eq!(stats.links_ok, 127);
        assert_eq!(stats.ops, 127);
        assert!(stats.reads >= 2 * 127); // at least two reads per unite
        let mut qstats = OpStats::default();
        dsu.same_set_with(0, 127, &mut qstats);
        assert_eq!(qstats.ops, 1);
        assert!(qstats.loop_iters >= 1);
    }

    #[test]
    fn wait_freedom_smoke_bounded_steps() {
        // Not a proof, a tripwire: no operation should ever take more than
        // a few hundred loop iterations at this scale (union forest height
        // is O(log n) w.h.p.; find sequences are bounded by it).
        let n = 1 << 12;
        let dsu: Dsu = Dsu::new(n);
        std::thread::scope(|s| {
            for t in 0..8usize {
                let dsu = &dsu;
                s.spawn(move || {
                    use rand::{Rng, SeedableRng};
                    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(7 + t as u64);
                    for _ in 0..5000 {
                        let mut stats = OpStats::default();
                        let x = rng.gen_range(0..n);
                        let y = rng.gen_range(0..n);
                        if rng.gen_bool(0.5) {
                            dsu.unite_with(x, y, &mut stats);
                        } else {
                            dsu.same_set_with(x, y, &mut stats);
                        }
                        assert!(
                            stats.loop_iters < 600,
                            "operation took {} iterations",
                            stats.loop_iters
                        );
                    }
                });
            }
        });
    }

    #[test]
    fn unite_batch_matches_per_op_sequence() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(404);
        let n = 48;
        let edges: Vec<(usize, usize)> =
            (0..300).map(|_| (rng.gen_range(0..n), rng.gen_range(0..n))).collect();
        let batched: Dsu = Dsu::with_seed(n, 8);
        let per_op: Dsu = Dsu::with_seed(n, 8);
        let results = batched.unite_batch_results(&edges);
        let expected: Vec<bool> = edges.iter().map(|&(x, y)| per_op.unite(x, y)).collect();
        assert_eq!(results, expected);
        assert_eq!(batched.set_count(), per_op.set_count());
        assert_eq!(
            Partition::from_labels(&batched.labels_snapshot()),
            Partition::from_labels(&per_op.labels_snapshot())
        );
        // Count view agrees with the per-edge view.
        let recount: Dsu = Dsu::with_seed(n, 8);
        assert_eq!(recount.unite_batch(&edges), results.iter().filter(|&&b| b).count());
    }

    #[test]
    fn unite_batch_concurrent_chunks_match_oracle() {
        let n = 1024;
        let edges: Vec<(usize, usize)> =
            (0..2 * n).map(|i| ((i * 2654435761) % n, (i * 911 + 3) % n)).collect();
        let dsu: Dsu = Dsu::new(n);
        std::thread::scope(|s| {
            for chunk in edges.chunks(edges.len() / 8 + 1) {
                let dsu = &dsu;
                s.spawn(move || dsu.unite_batch(chunk));
            }
        });
        let mut oracle = NaiveDsu::new(n);
        for &(x, y) in &edges {
            oracle.unite(x, y);
        }
        assert_eq!(Partition::from_labels(&dsu.labels_snapshot()), oracle.partition());
        assert_eq!(dsu.set_count(), oracle.set_count());
    }

    #[test]
    fn unite_batch_with_reports_stats() {
        let dsu: Dsu = Dsu::new(8);
        let mut stats = OpStats::default();
        let links = dsu.unite_batch_with(&[(0, 1), (1, 0), (2, 3)], &mut stats);
        assert_eq!(links, 2);
        assert_eq!(stats.ops, 3);
        assert_eq!(stats.links_ok, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unite_batch_rejects_out_of_range() {
        let dsu: Dsu = Dsu::new(4);
        dsu.unite_batch(&[(0, 1), (2, 4)]);
    }

    #[test]
    fn planned_batch_matches_per_op_invariants() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(909);
        let n = 64;
        let edges: Vec<(usize, usize)> =
            (0..400).map(|_| (rng.gen_range(0..n), rng.gen_range(0..n))).collect();
        let planned: Dsu = Dsu::with_seed(n, 6);
        let per_op: Dsu = Dsu::with_seed(n, 6);
        let links = planned.unite_batch_planned(&edges);
        let expected = edges.iter().filter(|&&(x, y)| per_op.unite(x, y)).count();
        assert_eq!(links, expected, "link counts are order-invariant");
        assert_eq!(planned.set_count(), per_op.set_count());
        assert_eq!(
            Partition::from_labels(&planned.labels_snapshot()),
            Partition::from_labels(&per_op.labels_snapshot())
        );
        // The verdict-reporting planned variant agrees on the invariants
        // too (per-edge assignment is covered by tests/batch_semantics.rs).
        let again: Dsu = Dsu::with_seed(n, 6);
        let results = again.unite_batch_planned_results(&edges);
        assert_eq!(results.iter().filter(|&&b| b).count(), expected);
        assert_eq!(again.set_count(), per_op.set_count());
        // And through the trait.
        let via_trait: Dsu = Dsu::with_seed(n, 6);
        assert_eq!(ConcurrentUnionFind::unite_batch_planned(&via_trait, &edges), expected);
    }

    #[test]
    fn planned_batch_reports_planner_counters() {
        let dsu: Dsu = Dsu::new(1 << 20);
        let mut stats = OpStats::default();
        // A duplicate, a cross-block edge (the default bucket spans 2^18
        // elements), and two block-local edges.
        let edges = [(0, 1), (1, 0), (0, 1 << 19), (5, 6)];
        let links = dsu.unite_batch_planned_with(&edges, &mut stats);
        assert_eq!(links, 3);
        assert_eq!(stats.ops, 4, "dropped duplicates still count as ops");
        assert_eq!(stats.dup_edges_dropped, 1);
        assert_eq!(stats.spill_edges, 1);
        assert_eq!(stats.bucket_count, 1);
        assert_eq!(stats.links_ok, 3);
    }

    #[test]
    fn link_axis_variants_match_oracle_and_each_other() {
        // Every link policy is a different tree shape, never a different
        // partition: index linking on the default layout and rank linking
        // on the ranked layout must return the oracle's verdicts and agree
        // on the final sets — single-threaded, per-op AND batched.
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(2025);
        let n = 96;
        let random: RandomDsu = Dsu::with_seed(n, 12);
        let index: Dsu<TwoTrySplit, crate::DefaultStore, IndexLink> = Dsu::with_seed(n, 12);
        let rank: Dsu<TwoTrySplit, RankedStore, RankLink> = Dsu::with_seed(n, 12);
        let mut oracle = NaiveDsu::new(n);
        for i in 0..600 {
            let x = rng.gen_range(0..n);
            let y = rng.gen_range(0..n);
            match i % 3 {
                0 => {
                    let want = oracle.unite(x, y);
                    assert_eq!(random.unite(x, y), want);
                    assert_eq!(index.unite(x, y), want);
                    assert_eq!(rank.unite(x, y), want);
                }
                1 => {
                    let want = oracle.same_set(x, y);
                    assert_eq!(random.same_set(x, y), want);
                    assert_eq!(index.same_set_early(x, y), want);
                    assert_eq!(rank.same_set_early(x, y), want);
                }
                _ => {
                    let batch = [(x, y), (y, x)];
                    let want = oracle.unite(x, y) as usize;
                    assert_eq!(random.unite_batch(&batch), want);
                    assert_eq!(index.unite_batch(&batch), want);
                    assert_eq!(rank.unite_batch(&batch), want);
                }
            }
        }
        let want = oracle.partition();
        assert_eq!(Partition::from_labels(&random.labels_snapshot()), want);
        assert_eq!(Partition::from_labels(&index.labels_snapshot()), want);
        assert_eq!(Partition::from_labels(&rank.labels_snapshot()), want);
        // Index linking's invariant: parents are index-upward.
        for (x, &p) in index.parents_snapshot().iter().enumerate() {
            assert!(p == x || x < p, "index linking let {x} point down at {p}");
        }
    }

    #[test]
    fn link_axis_concurrent_partitions_match_oracle() {
        // Lemma 3.1's acyclicity (and hence termination + correct sets)
        // must survive real concurrency on the non-default policies too —
        // rank linking's mutable keys are exactly the risky case.
        fn hammer<S: DsuStore + Sync, L: LinkPolicy>() {
            let n = 1024;
            let pairs: Vec<(usize, usize)> =
                (0..2 * n).map(|i| ((i * 2654435761) % n, (i * 421 + 9) % n)).collect();
            let dsu: Dsu<TwoTrySplit, S, L> = Dsu::new(n);
            std::thread::scope(|s| {
                for t in 0..4usize {
                    let dsu = &dsu;
                    let pairs = &pairs;
                    s.spawn(move || {
                        for (i, &(x, y)) in pairs.iter().enumerate() {
                            if i % 4 == t {
                                dsu.unite(x, y);
                            } else {
                                dsu.same_set(x, y);
                            }
                        }
                    });
                }
            });
            let mut oracle = NaiveDsu::new(n);
            for &(x, y) in &pairs {
                oracle.unite(x, y);
            }
            assert_eq!(Partition::from_labels(&dsu.labels_snapshot()), oracle.partition());
            assert_eq!(dsu.set_count(), oracle.set_count());
        }
        hammer::<crate::DefaultStore, IndexLink>();
        hammer::<RankedStore, RankLink>();
        hammer::<RankedStore, RandomLink>(); // ranked layout, paper linking
    }

    #[test]
    fn forest_height_helper() {
        assert_eq!(forest_height(&[0, 0, 1, 2]), 3);
        assert_eq!(forest_height(&[0, 1, 2]), 0);
        assert_eq!(forest_height(&[]), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let dsu: Dsu = Dsu::new(4);
        dsu.unite(0, 4);
    }

    #[test]
    fn zero_and_one_element_universes() {
        let empty: Dsu = Dsu::new(0);
        assert!(empty.is_empty());
        assert_eq!(empty.set_count(), 0);
        let one: Dsu = Dsu::new(1);
        assert!(one.same_set(0, 0));
        assert!(!one.unite(0, 0));
        assert_eq!(one.set_count(), 1);
    }

    /// Deterministic deep tree: NoCompaction + index linking over chain
    /// unites leaves the path 0→1→…→n-1 intact, so the pre-flatten depth
    /// is provably n-1, not a w.h.p. accident.
    fn deep_chain<S: DsuStore>(n: usize) -> Dsu<NoCompaction, S, IndexLink> {
        let dsu: Dsu<NoCompaction, S, IndexLink> = Dsu::with_seed(n, 7);
        for i in 1..n {
            dsu.unite(0, i);
        }
        assert!(
            forest_height(&dsu.parents_snapshot()) > 1,
            "{}: chain workload failed to build depth",
            S::NAME
        );
        dsu
    }

    #[test]
    fn quiesced_flatten_reaches_depth_one_on_every_layout() {
        fn check<S: DsuStore>() {
            let n = 128;
            let dsu = deep_chain::<S>(n);
            dsu.flatten();
            assert!(
                forest_height(&dsu.parents_snapshot()) <= 1,
                "{}: flatten left depth > 1",
                S::NAME
            );
            assert_eq!(dsu.set_count(), 1, "{}: flatten changed the partition", S::NAME);
            assert!(dsu.same_set(0, n - 1));
        }
        check::<crate::PackedStore>();
        check::<crate::store::FlatStore>();
        check::<crate::ShardedStore>();
        check::<RankedStore>();
    }

    #[test]
    fn parallel_flatten_flattens_and_reports() {
        let n = 256;
        let dsu = deep_chain::<crate::DefaultStore>(n);
        let before = Partition::from_labels(&dsu.labels_snapshot());
        let stats = dsu.flatten_parallel(4);
        assert_eq!(stats.flatten_passes, 1);
        assert!(stats.flatten_jumps > 0, "a depth-{} path must need jumps", n - 1);
        assert!(forest_height(&dsu.parents_snapshot()) <= 1);
        assert_eq!(Partition::from_labels(&dsu.labels_snapshot()), before);
    }

    #[test]
    fn flatten_trigger_fires_through_batch_ingest() {
        // Depth is built per-op (batch ingest may compact internally);
        // the empty batch then just ticks the trigger.
        let mut dsu = deep_chain::<crate::store::FlatStore>(96);
        dsu.set_flatten_policy(FlattenPolicy::EveryKBatches(1));
        dsu.unite_batch(&[]);
        assert!(forest_height(&dsu.parents_snapshot()) <= 1, "every-1 trigger did not fire");

        let mut dsu = deep_chain::<crate::store::FlatStore>(96);
        dsu.set_flatten_policy(FlattenPolicy::HopsThreshold(1.0));
        dsu.unite_batch(&[]);
        assert!(
            forest_height(&dsu.parents_snapshot()) <= 1,
            "hops-threshold trigger did not fire on a deep chain"
        );

        // Off is inert: the same empty batch leaves the chain deep.
        let mut dsu = deep_chain::<crate::store::FlatStore>(96);
        dsu.set_flatten_policy(FlattenPolicy::Off);
        dsu.unite_batch(&[]);
        assert!(forest_height(&dsu.parents_snapshot()) > 1, "Off must never flatten");
    }

    #[test]
    fn flatten_policy_accessors() {
        let mut dsu: Dsu = Dsu::new(4);
        dsu.set_flatten_policy(FlattenPolicy::EveryKBatches(3));
        assert_eq!(dsu.flatten_policy(), FlattenPolicy::EveryKBatches(3));
    }
}

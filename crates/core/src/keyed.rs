//! Keyed entity resolution: arbitrary hashable keys over the packed core.
//!
//! Every production consumer of union-find in the related-work sets is
//! *keyed*, not array-indexed: structural-variant mergers unite records by
//! row key, query optimizers unite plan-group ids through an
//! `RwLock<HashMap>`. The bottleneck in those systems is the keyed facade —
//! a lock around a hash map — not the union-find underneath. [`KeyedDsu`]
//! replaces that facade with a **lock-free sharded id table**: keys hash to
//! dense element indices of a [`GrowableDsu`], and all
//! set operations run on the packed word store this repo has spent six PRs
//! optimizing.
//!
//! # The id table
//!
//! The table maps `K → usize` (a dense id, assigned by
//! [`make_set`](crate::GrowableDsu::make_set) in insertion order) and never
//! deletes. It is sharded by the **high bits** of a seeded 64-bit hash —
//! the same high-bit block geometry as
//! [`ShardedStore`](crate::ShardedStore), applied where it actually pays:
//! inserts of unrelated keys touch different shards' allocations, so no
//! cache line is hammered by every thread, and false sharing cannot cross
//! a shard boundary. Each shard is a directory of doubling open-addressed
//! *segments* (64, 128, 256, … slots). Slots are claimed by CAS and
//! entries **never move or rehash** — growth allocates a fresh segment
//! (counted as [`id_table_resizes`](crate::OpStats::id_table_resizes))
//! and leaves every published slot exactly where a concurrent reader may
//! be probing it.
//!
//! A key's probe path is a deterministic sequence: **one** hashed
//! candidate slot per segment, visited in segment order (a multi-slot
//! window per segment would force every operation to re-scan the
//! saturated early segments' windows end to end; one candidate per
//! segment keeps the whole path at ~one load per allocated segment).
//! Inserts claim the **first empty slot** on that path with a CAS;
//! because slots only ever go from empty to occupied, two racing inserts
//! of the same unseen key cannot both claim — the loser's CAS fails, it
//! re-examines the slot, finds the winner's tag, and adopts the winner's
//! id (proved in the comment on `resolve`; stress-tested in
//! `tests/keyed_semantics.rs`). Exactly one dense id is ever allocated
//! per distinct key.
//!
//! The one wait in the structure: a thread that loses a same-key race
//! spins until the winner publishes its id (typically a handful of
//! cycles: the winner is between its claim CAS and one release store).
//! This mirrors the segment-allocation wait the growable store already
//! has — the operations are lock-free in aggregate, not wait-free, which
//! is the paper's own caveat for unbounded universes.
//!
//! # Batched resolution
//!
//! [`merge_keys_batch`](KeyedDsu::merge_keys_batch) resolves a burst of
//! key pairs to dense ids in one gather pass (hashing and probing are
//! independent per key — exactly the memory-level-parallelism shape the
//! `bulk` module exploits for parent words), then routes
//! the resolved edge list through [`unite_batch`], so keyed ingestion
//! inherits the measured batch win instead of re-deriving it.
//! [`same_set_batch`](KeyedDsu::same_set_batch) resolves without
//! inserting and answers queries on the packed core.
//!
//! # When to use which layer
//!
//! | your elements are | use |
//! |---|---|
//! | dense `0..n`, known up front | [`Dsu`](crate::Dsu) |
//! | dense, created on the fly | [`GrowableDsu`] |
//! | strings, sparse u64s, uuids, row keys | [`KeyedDsu`] |
//!
//! The keyed layer costs one hash + a short probe per key touch on top of
//! the underlying operation; the `keyed_ab` example measures it against
//! the lock-based facade it replaces (see `docs/benchmarks.md`).
//!
//! [`unite_batch`]: crate::GrowableDsu::unite_batch

use std::cell::UnsafeCell;
use std::hash::{Hash, Hasher};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::bulk;
use crate::find::{FindPolicy, TwoTrySplit};
use crate::growable::{GrowableDsu, GrowableStore};
use crate::order::splitmix64;
use crate::stats::{ShardSkew, StatsSink};
use crate::store::ShardSpec;

/// Slot states, kept in the low bits of `Slot::meta`; the rest of the word
/// is the key's hash tag, so probes skip non-matching slots without
/// touching key storage.
const STATUS_MASK: u64 = 0b11;
const EMPTY: u64 = 0;
const BUSY: u64 = 0b01;
const FULL: u64 = 0b10;

/// log2 of the first segment's slot count per shard.
///
/// Each key has exactly **one** candidate slot per segment (no linear
/// window): early segments saturate under load, and a multi-slot window
/// would make every later operation scan those full windows end to end —
/// measured at >100 wasted probes per op at a few ten-thousand keys. With
/// one candidate per segment the whole probe path is one load per
/// *allocated* segment (~log₂ of the key count), at the cost of segments
/// cascading to the next doubling a little before 100% fill.
const BASE_BITS: u32 = 8;

/// Maximum doubling segments per shard (the first has `2^BASE_BITS` slots;
/// 48 more than covers any addressable key count).
const KEY_SEGMENTS: usize = 48;

/// One id-table slot: a tagged state word, the dense id, and inline key
/// storage written exactly once (by the claim winner, before `meta` is
/// released to `FULL`).
struct Slot<K> {
    meta: AtomicU64,
    id: AtomicUsize,
    key: UnsafeCell<MaybeUninit<K>>,
}

impl<K> Slot<K> {
    fn new() -> Self {
        Slot {
            meta: AtomicU64::new(EMPTY),
            id: AtomicUsize::new(0),
            key: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }
}

/// One shard of the id table: a directory of doubling open-addressed
/// segments plus its local bookkeeping, padded so neighboring shards'
/// headers never share a cache line.
#[repr(align(128))]
struct KeyShard<K> {
    segments: [OnceLock<Box<[Slot<K>]>>; KEY_SEGMENTS],
    /// Published keys in this shard (incremented by claim winners after
    /// their release store, so it may momentarily trail a racing reader's
    /// view — a report counter, not a synchronization point).
    keys: AtomicUsize,
    /// Segments allocated after construction.
    resizes: AtomicUsize,
}

// SAFETY: the only non-Sync field is the `UnsafeCell<MaybeUninit<K>>` in
// each slot. It is written exactly once, by the thread whose CAS moved the
// slot's `meta` from EMPTY to BUSY (unique by CAS), strictly before the
// release store of FULL; every read happens after an acquire load observes
// FULL and treats the key as immutable from then on. So all access is
// either exclusive (the claim winner, pre-publication) or shared read-only
// (post-publication), which is exactly the `Sync` contract for `K: Sync`;
// `K: Send` is required because drop happens on whatever thread drops the
// table.
unsafe impl<K: Send + Sync> Sync for KeyShard<K> {}

impl<K> KeyShard<K> {
    fn new() -> Self {
        KeyShard {
            segments: std::array::from_fn(|_| OnceLock::new()),
            keys: AtomicUsize::new(0),
            resizes: AtomicUsize::new(0),
        }
    }
}

impl<K> Drop for KeyShard<K> {
    fn drop(&mut self) {
        for seg in &mut self.segments {
            if let Some(slots) = seg.get_mut() {
                for slot in slots.iter_mut() {
                    // &mut self: no concurrent claimers, so BUSY is
                    // impossible and FULL keys are fully initialized.
                    if slot.meta.load(Ordering::Relaxed) & STATUS_MASK == FULL {
                        // SAFETY: FULL ⇒ the key was written and published;
                        // exclusive access ⇒ nobody reads it after this.
                        unsafe { (*slot.key.get()).assume_init_drop() };
                    }
                }
            }
        }
    }
}

/// A concurrent union-find over **arbitrary hashable keys**: a lock-free
/// sharded id table in front of a [`GrowableDsu`].
///
/// This is the deployment shape of every real entity-resolution consumer:
/// records arrive identified by row keys, uuids, or sparse 64-bit ids, get
/// mapped to dense indices exactly once, and all merge/query traffic runs
/// on the packed parent-word core. See the [module docs](self) for the id
/// table's design and the race-freedom argument.
///
/// # Example
///
/// ```
/// use concurrent_dsu::KeyedDsu;
///
/// let dsu: KeyedDsu<String> = KeyedDsu::new();
/// let a = dsu.insert(&"alice@example.com".to_string());
/// assert_eq!(dsu.insert(&"alice@example.com".to_string()), a); // idempotent
///
/// dsu.merge_keys(&"alice@example.com".to_string(), &"a.smith@work.test".to_string());
/// assert!(dsu.same_set(&"a.smith@work.test".to_string(), &"alice@example.com".to_string()));
/// // Unseen keys are implicit singletons: equal keys are trivially together,
/// // distinct ones are not.
/// assert!(dsu.same_set(&"nobody".to_string(), &"nobody".to_string()));
/// assert!(!dsu.same_set(&"nobody".to_string(), &"alice@example.com".to_string()));
/// assert_eq!(dsu.key_count(), 2);
/// ```
///
/// Batched ingestion resolves keys in a gather pass and routes the dense
/// edges through the batch waves:
///
/// ```
/// use concurrent_dsu::KeyedDsu;
///
/// let dsu: KeyedDsu<u64> = KeyedDsu::new();
/// // Sparse 64-bit keys — the universe never materializes.
/// let burst: Vec<(u64, u64)> = (0..99).map(|i| (i << 40, (i + 1) << 40)).collect();
/// assert_eq!(dsu.merge_keys_batch(&burst), 99);
/// assert_eq!(dsu.set_count(), 1);
/// assert_eq!(dsu.key_count(), 100);
/// ```
pub struct KeyedDsu<K, F: FindPolicy = TwoTrySplit, S: GrowableStore = crate::DefaultGrowableStore>
{
    dsu: GrowableDsu<F, S>,
    shards: Box<[KeyShard<K>]>,
    shard_bits: u32,
    salt: u64,
}

impl<K: Hash + Eq, F: FindPolicy, S: GrowableStore> std::fmt::Debug for KeyedDsu<K, F, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyedDsu")
            .field("keys", &self.key_count())
            .field("set_count", &self.set_count())
            .field("key_shards", &self.shards.len())
            .field("policy", &F::NAME)
            .field("store", &S::NAME)
            .finish()
    }
}

impl<K: Hash + Eq, F: FindPolicy, S: GrowableStore> Default for KeyedDsu<K, F, S> {
    fn default() -> Self {
        Self::new()
    }
}

/// The id-table shard count: `DSU_KEY_SHARDS` if set (a positive integer,
/// rounded up to a power of two), else one shard per hardware thread —
/// the same derivation [`ShardSpec::auto`] uses for parent-store shards,
/// under a separate knob because the two tables have independent
/// contention profiles.
fn key_shard_spec() -> ShardSpec {
    if let Some(s) = std::env::var("DSU_KEY_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&s| s > 0)
    {
        return ShardSpec::with_shards(s);
    }
    ShardSpec::with_shards(std::thread::available_parallelism().map_or(1, |p| p.get()))
}

impl<K: Hash + Eq, F: FindPolicy, S: GrowableStore> KeyedDsu<K, F, S> {
    /// Default seed for the key hash and the underlying id order.
    pub const DEFAULT_SEED: u64 = 0x6b65_7973; // "keys"

    /// An empty keyed structure with the default seed and an id-table
    /// shard count derived from the machine (override with the
    /// `DSU_KEY_SHARDS` environment variable).
    pub fn new() -> Self {
        Self::with_seed(Self::DEFAULT_SEED)
    }

    /// An empty keyed structure whose key hash and id order are salted by
    /// `seed`.
    pub fn with_seed(seed: u64) -> Self {
        Self::with_spec(seed, key_shard_spec())
    }

    /// An empty keyed structure with an explicit id-table [`ShardSpec`].
    pub fn with_spec(seed: u64, spec: ShardSpec) -> Self {
        Self::from_store(S::with_seed(seed), seed, spec)
    }

    /// Wraps an already-constructed (still empty) growable store — the
    /// entry point for stores whose constructors take more than a seed,
    /// such as a [`ShardedSegmentedStore`](crate::ShardedSegmentedStore)
    /// with its own [`ShardSpec`].
    pub fn from_store(store: S, seed: u64, spec: ShardSpec) -> Self {
        let shards: Box<[KeyShard<K>]> = (0..spec.shards()).map(|_| KeyShard::new()).collect();
        // Pre-allocate every shard's first segment: the common case never
        // pays the directory's OnceLock initialization race, and
        // `id_table_resizes` cleanly means "growth", not "first touch".
        for shard in shards.iter() {
            let _ = shard.segments[0].get_or_init(|| Self::alloc_segment(0));
        }
        let shard_bits = spec.shards().trailing_zeros();
        KeyedDsu { dsu: GrowableDsu::from_store(store), shards, shard_bits, salt: seed }
    }

    fn alloc_segment(s: usize) -> Box<[Slot<K>]> {
        (0..1usize << (BASE_BITS as usize + s)).map(|_| Slot::new()).collect()
    }

    /// The seeded 64-bit hash all table geometry derives from.
    fn hash_key(&self, key: &K) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.salt.hash(&mut h);
        key.hash(&mut h);
        h.finish()
    }

    #[inline]
    fn shard_of(&self, h: u64) -> usize {
        if self.shard_bits == 0 {
            0
        } else {
            (h >> (64 - self.shard_bits)) as usize
        }
    }

    /// Resolves `key` to its dense id, inserting (when `insert_key` is
    /// `Some`) or answering `None` on a miss.
    ///
    /// The probe path is the same deterministic slot sequence for every
    /// thread: **one** hashed candidate slot per segment, in segment order
    /// (one candidate, not a window — see the note on [`BASE_BITS`]).
    /// **Why the same key can never claim two slots:** slots move only
    /// from empty to occupied, and a claim is a CAS on the *first empty
    /// slot of the path*. Suppose inserts A and B of one key both claim,
    /// at path positions `i < j`. B claimed at `j`, so B observed position
    /// `i` occupied — and since occupancy is permanent, `i` is occupied by
    /// the same entry forever. That entry carries either B's key (then B
    /// adopts it and never claims, a contradiction) or a different key —
    /// but A's successful CAS at `i` means `i` was *empty* when A claimed,
    /// after which it holds A's key forever, contradicting "a different
    /// key". So at most one claim per key, and every resolver converges on
    /// the winner's id.
    fn resolve<Sk: StatsSink>(
        &self,
        key: &K,
        insert_key: Option<&dyn Fn() -> K>,
        stats: &mut Sk,
    ) -> Option<usize> {
        let h = self.hash_key(key);
        let shard = &self.shards[self.shard_of(h)];
        let tag = h & !STATUS_MASK;
        let mut probes = 0usize;
        for s in 0..KEY_SEGMENTS {
            let seg = match shard.segments[s].get() {
                Some(seg) => seg,
                None if insert_key.is_some() => {
                    let mut allocated = false;
                    let seg = shard.segments[s].get_or_init(|| {
                        allocated = true;
                        Self::alloc_segment(s)
                    });
                    if allocated {
                        shard.resizes.fetch_add(1, Ordering::Relaxed);
                        stats.id_table_resize();
                    }
                    seg
                }
                // Lookup-only: an unallocated segment cannot hold the key,
                // and later segments only exist if this one does — miss.
                None => {
                    stats.key_probe_steps(probes);
                    return None;
                }
            };
            let slot = &seg[splitmix64(h ^ s as u64) as usize & (seg.len() - 1)];
            probes += 1;
            loop {
                let meta = slot.meta.load(Ordering::Acquire);
                if meta == EMPTY {
                    let Some(make_key) = insert_key else {
                        // A completed insert would have claimed this slot
                        // or an earlier one on the path: miss.
                        stats.key_probe_steps(probes);
                        return None;
                    };
                    if slot
                        .meta
                        .compare_exchange(EMPTY, tag | BUSY, Ordering::Acquire, Ordering::Relaxed)
                        .is_ok()
                    {
                        // Claim won: this thread owns the slot's key cell
                        // until the release store below.
                        // SAFETY: exclusive by the CAS; see KeyShard's
                        // Sync justification.
                        unsafe { (*slot.key.get()).write(make_key()) };
                        let id = self.dsu.make_set();
                        slot.id.store(id, Ordering::Relaxed);
                        slot.meta.store(tag | FULL, Ordering::Release);
                        shard.keys.fetch_add(1, Ordering::Relaxed);
                        stats.key_inserted();
                        stats.key_probe_steps(probes);
                        return Some(id);
                    }
                    // Someone claimed this slot first — re-examine it: it
                    // may be carrying this very key.
                    continue;
                }
                if meta & !STATUS_MASK == tag {
                    if meta & STATUS_MASK == BUSY {
                        // A matching claim is between its CAS and its
                        // release store — the structure's one wait.
                        std::hint::spin_loop();
                        continue;
                    }
                    // FULL with a matching tag: the acquire load above
                    // synchronized with the winner's release store, so
                    // the key cell is initialized and immutable.
                    // SAFETY: published ⇒ read-only; see KeyShard.
                    let stored = unsafe { (*slot.key.get()).assume_init_ref() };
                    if stored == key {
                        stats.key_probe_steps(probes);
                        return Some(slot.id.load(Ordering::Relaxed));
                    }
                }
                // Occupied by a different key (or a colliding tag): next
                // segment on the path.
                break;
            }
        }
        // A lookup that walked every allocated segment without meeting an
        // empty slot simply missed; only an *insert* that failed to claim
        // anywhere in 48 doubling segments indicates a broken table.
        if insert_key.is_none() {
            stats.key_probe_steps(probes);
            return None;
        }
        panic!(
            "KeyedDsu id table exhausted all {KEY_SEGMENTS} doubling segments in one shard — \
             astronomically unlikely under any honest Hash implementation; check the key type's \
             Hash for degenerate output"
        );
    }

    /// Maps `key` to its dense id, inserting it as a fresh singleton if
    /// unseen. Idempotent and race-free: every call with equal keys — on
    /// any thread, at any interleaving — returns the same id, and exactly
    /// one [`make_set`](crate::GrowableDsu::make_set) ever runs per
    /// distinct key.
    pub fn insert(&self, key: &K) -> usize
    where
        K: Clone,
    {
        self.insert_with(key, &mut ())
    }

    /// [`insert`](KeyedDsu::insert) reporting work (probe steps, claim
    /// wins, table growth) into `stats`.
    pub fn insert_with<Sk: StatsSink>(&self, key: &K, stats: &mut Sk) -> usize
    where
        K: Clone,
    {
        let make = || key.clone();
        self.resolve(key, Some(&make), stats).expect("insert always resolves")
    }

    /// The dense id of `key`, or `None` if it was never inserted. Never
    /// allocates or claims anything.
    pub fn get(&self, key: &K) -> Option<usize> {
        self.get_with(key, &mut ())
    }

    /// [`get`](KeyedDsu::get) reporting probe work into `stats`.
    pub fn get_with<Sk: StatsSink>(&self, key: &K, stats: &mut Sk) -> Option<usize> {
        self.resolve(key, None, stats)
    }

    /// Unites the sets containing `a` and `b`, inserting unseen keys as
    /// singletons first; `true` iff **this call** performed the link (the
    /// two sets were distinct at its linearization point).
    pub fn merge_keys(&self, a: &K, b: &K) -> bool
    where
        K: Clone,
    {
        self.merge_keys_with(a, b, &mut ())
    }

    /// [`merge_keys`](KeyedDsu::merge_keys) reporting work into `stats`.
    pub fn merge_keys_with<Sk: StatsSink>(&self, a: &K, b: &K, stats: &mut Sk) -> bool
    where
        K: Clone,
    {
        let ia = self.insert_with(a, stats);
        let ib = self.insert_with(b, stats);
        self.dsu.unite_with(ia, ib, stats)
    }

    /// `true` iff `a` and `b` are in the same set at the operation's
    /// linearization point. Never inserts: unseen keys are implicit
    /// singletons, so two equal unseen keys are together and any other
    /// pairing with an unseen key is not.
    pub fn same_set(&self, a: &K, b: &K) -> bool {
        self.same_set_with(a, b, &mut ())
    }

    /// [`same_set`](KeyedDsu::same_set) reporting work into `stats`.
    pub fn same_set_with<Sk: StatsSink>(&self, a: &K, b: &K, stats: &mut Sk) -> bool {
        match (self.resolve(a, None, stats), self.resolve(b, None, stats)) {
            (Some(ia), Some(ib)) => self.dsu.same_set_with(ia, ib, stats),
            // At most one key exists: same set exactly when both name the
            // same implicit singleton.
            _ => a == b,
        }
    }

    /// Batched [`merge_keys`](KeyedDsu::merge_keys): resolves every key of
    /// the burst to a dense id in a gather pass (inserting unseen keys),
    /// then routes the resolved edge list through the batch ingestion
    /// waves (`bulk`). Returns the number of edges that
    /// performed a link. Honors the `DSU_BATCH_PLAN` environment variable
    /// like every count-only batch entry point.
    pub fn merge_keys_batch(&self, pairs: &[(K, K)]) -> usize
    where
        K: Clone,
    {
        self.merge_keys_batch_with(pairs, &mut ())
    }

    /// [`merge_keys_batch`](KeyedDsu::merge_keys_batch) reporting both the
    /// resolution work (probes, claims, growth) and the batch-wave work
    /// into `stats`.
    pub fn merge_keys_batch_with<Sk: StatsSink>(&self, pairs: &[(K, K)], stats: &mut Sk) -> usize
    where
        K: Clone,
    {
        let edges = self.resolve_pairs(pairs, stats);
        self.dsu.unite_batch_tuned_with(&edges, bulk::runtime_default_tuning(), None, stats)
    }

    /// Batched [`same_set`](KeyedDsu::same_set): one verdict per pair,
    /// resolved without inserting.
    pub fn same_set_batch(&self, pairs: &[(K, K)]) -> Vec<bool> {
        self.same_set_batch_with(pairs, &mut ())
    }

    /// [`same_set_batch`](KeyedDsu::same_set_batch) reporting work into
    /// `stats`.
    pub fn same_set_batch_with<Sk: StatsSink>(
        &self,
        pairs: &[(K, K)],
        stats: &mut Sk,
    ) -> Vec<bool> {
        pairs.iter().map(|(a, b)| self.same_set_with(a, b, stats)).collect()
    }

    /// The gather pass of the batch paths: every key resolved (inserting)
    /// before any parent word is touched, so the subsequent waves run on a
    /// plain dense edge list.
    fn resolve_pairs<Sk: StatsSink>(&self, pairs: &[(K, K)], stats: &mut Sk) -> Vec<(usize, usize)>
    where
        K: Clone,
    {
        pairs
            .iter()
            .map(|(a, b)| (self.insert_with(a, stats), self.insert_with(b, stats)))
            .collect()
    }

    /// Number of distinct keys inserted so far.
    pub fn key_count(&self) -> usize {
        self.shards.iter().map(|s| s.keys.load(Ordering::Relaxed)).sum()
    }

    /// `true` before the first insert.
    pub fn is_empty(&self) -> bool {
        self.key_count() == 0
    }

    /// Number of disjoint sets right now (each unseen key would be one
    /// more).
    pub fn set_count(&self) -> usize {
        self.dsu.set_count()
    }

    /// Number of id-table shards.
    pub fn key_shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total open-addressing segments allocated after construction,
    /// summed over shards — the table-growth half of
    /// [`OpStats::id_table_resizes`](crate::OpStats::id_table_resizes),
    /// readable at quiescence without a sink.
    pub fn id_table_resizes(&self) -> usize {
        self.shards.iter().map(|s| s.resizes.load(Ordering::Relaxed)).sum()
    }

    /// How evenly keys spread across the id-table shards (uniform hash ⇒
    /// imbalance near 1.0; a hot shard means a degenerate `Hash`).
    pub fn key_skew(&self) -> ShardSkew {
        ShardSkew::from_counts(self.shards.iter().map(|s| s.keys.load(Ordering::Relaxed) as u64))
    }

    /// The underlying dense-id structure. Ids returned by
    /// [`insert`](KeyedDsu::insert)/[`get`](KeyedDsu::get) are its element
    /// indices, so mixed-mode pipelines (keyed ingest, dense analytics)
    /// can drop to the array API at any time.
    pub fn dsu(&self) -> &GrowableDsu<F, S> {
        &self.dsu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpStats;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn keyed_dsu_is_send_and_sync() {
        assert_send_sync::<KeyedDsu<String>>();
        assert_send_sync::<KeyedDsu<u64>>();
    }

    #[test]
    fn insert_is_idempotent_and_dense() {
        let dsu: KeyedDsu<String> = KeyedDsu::new();
        let ids: Vec<usize> = (0..100).map(|i| dsu.insert(&format!("k{i}"))).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>(), "ids are dense 0..n");
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(dsu.insert(&format!("k{i}")), *id, "re-insert returns the same id");
            assert_eq!(dsu.get(&format!("k{i}")), Some(*id));
        }
        assert_eq!(dsu.key_count(), 100);
        assert_eq!(dsu.set_count(), 100);
        assert_eq!(dsu.get(&"unseen".to_string()), None);
    }

    #[test]
    fn merge_and_query_semantics() {
        let dsu: KeyedDsu<u64> = KeyedDsu::new();
        assert!(dsu.merge_keys(&10, &20));
        assert!(!dsu.merge_keys(&20, &10), "already united");
        assert!(dsu.same_set(&10, &20));
        assert!(!dsu.same_set(&10, &30), "30 is an unseen singleton");
        assert!(dsu.same_set(&99, &99), "an unseen key is together with itself");
        assert!(!dsu.same_set(&98, &99), "two distinct unseen keys are not");
        assert!(!dsu.merge_keys(&7, &7), "self-merge inserts but never links");
        assert_eq!(dsu.key_count(), 3);
        assert_eq!(dsu.set_count(), 2);
    }

    #[test]
    fn batch_matches_per_op() {
        let pairs: Vec<(u64, u64)> =
            (0..200).map(|i| (splitmix64(i) % 64, splitmix64(i + 1000) % 64)).collect();
        let batched: KeyedDsu<u64> = KeyedDsu::with_seed(7);
        let per_op: KeyedDsu<u64> = KeyedDsu::with_seed(7);
        let links = batched.merge_keys_batch(&pairs);
        let expected = pairs.iter().filter(|(a, b)| per_op.merge_keys(a, b)).count();
        assert_eq!(links, expected);
        assert_eq!(batched.key_count(), per_op.key_count());
        assert_eq!(batched.set_count(), per_op.set_count());
        let queries: Vec<(u64, u64)> = (0..64).map(|i| (i, (i * 7) % 64)).collect();
        let lhs = batched.same_set_batch(&queries);
        let rhs: Vec<bool> = queries.iter().map(|(a, b)| per_op.same_set(a, b)).collect();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn counters_attribute_the_keyed_work() {
        let dsu: KeyedDsu<String> = KeyedDsu::with_spec(3, ShardSpec::with_shards(2));
        let mut stats = OpStats::default();
        for i in 0..500 {
            dsu.insert_with(&format!("key-{i}"), &mut stats);
        }
        assert_eq!(stats.keys_inserted, 500);
        assert!(stats.key_probe_steps >= 500, "every resolve probes at least once");
        // 500 keys over 2 shards × 256 base slots with one candidate per
        // segment must have cascaded into fresh segments.
        assert!(stats.id_table_resizes > 0);
        assert_eq!(stats.id_table_resizes as usize, dsu.id_table_resizes());
        let mut lookups = OpStats::default();
        for i in 0..500 {
            assert!(dsu.get_with(&format!("key-{i}"), &mut lookups).is_some());
        }
        assert_eq!(lookups.keys_inserted, 0, "lookups never claim");
        assert_eq!(lookups.id_table_resizes, 0, "lookups never grow the table");
        assert!(lookups.key_probe_steps >= 500);
    }

    #[test]
    fn absent_lookups_miss_cleanly_at_any_fill() {
        // Regression: a miss whose probe path runs past the last allocated
        // segment (or through 48 full windows) must return None, not
        // panic. Fill a single-shard table well past segment 0 so absent
        // probes regularly traverse full windows and hit the unallocated
        // tail.
        let dsu: KeyedDsu<String> = KeyedDsu::with_spec(9, ShardSpec::with_shards(1));
        for i in 0..2_000 {
            dsu.insert(&format!("present-{i}"));
        }
        for i in 0..2_000 {
            assert_eq!(dsu.get(&format!("absent-{i}")), None);
            assert!(!dsu.same_set(&format!("absent-{i}"), &"present-0".to_string()));
        }
        assert_eq!(dsu.key_count(), 2_000);
    }

    #[test]
    fn shard_spec_and_skew() {
        let dsu: KeyedDsu<u64> = KeyedDsu::with_spec(0, ShardSpec::with_shards(8));
        assert_eq!(dsu.key_shard_count(), 8);
        for i in 0..4096 {
            dsu.insert(&splitmix64(i));
        }
        let skew = dsu.key_skew();
        assert_eq!(skew.shards, 8);
        assert!(skew.imbalance < 1.5, "uniform keys must spread across high-bit shards: {skew:?}");
    }

    #[test]
    fn single_shard_still_works() {
        let dsu: KeyedDsu<String> = KeyedDsu::with_spec(0, ShardSpec::with_shards(1));
        assert_eq!(dsu.key_shard_count(), 1);
        assert!(dsu.merge_keys(&"a".into(), &"b".into()));
        assert!(dsu.same_set(&"b".into(), &"a".into()));
    }

    #[test]
    fn dense_ids_interoperate_with_the_array_api() {
        let dsu: KeyedDsu<String> = KeyedDsu::new();
        let a = dsu.insert(&"a".to_string());
        let b = dsu.insert(&"b".to_string());
        assert!(dsu.dsu().unite(a, b));
        assert!(dsu.same_set(&"a".to_string(), &"b".to_string()));
    }

    #[test]
    fn debug_format() {
        let dsu: KeyedDsu<u64> = KeyedDsu::new();
        dsu.insert(&42);
        let s = format!("{dsu:?}");
        assert!(s.contains("KeyedDsu") && s.contains("two-try"), "{s}");
    }

    #[test]
    fn drop_runs_key_destructors() {
        // Miri-style sanity: dropping the table drops exactly the owned
        // keys (Arc counts return to 1).
        use std::sync::Arc;
        let probe = Arc::new(());
        #[derive(Clone, PartialEq, Eq, Hash)]
        struct Tracked(usize, Arc<()>);
        {
            let dsu: KeyedDsu<Tracked> = KeyedDsu::new();
            for i in 0..64 {
                dsu.insert(&Tracked(i, probe.clone()));
            }
            assert!(Arc::strong_count(&probe) >= 65);
        }
        assert_eq!(Arc::strong_count(&probe), 1, "drop leaked or double-freed keys");
    }
}

//! Self-tuning variant dispatch: sample the workload, pick a variant,
//! switch.
//!
//! The crate ships a plane of interchangeable variants — five find
//! policies ([`find`](crate::find)) × three link policies
//! ([`order`](crate::order)) — all proven observationally equivalent by
//! the semantics suites. Equivalent is not equally fast: which variant
//! wins depends on the workload (cache-resident vs DRAM-resident
//! universes, uniform vs skewed edge endpoints), and callers rarely know
//! their regime up front. [`TunedDsu`] closes that loop:
//!
//! 1. **Sample.** The first `sample_budget` operations run on the paper
//!    default (`two-try/random`) while their [`OpStats`] counters are
//!    profiled and every unite edge is buffered.
//! 2. **Score.** At the decision point the sampled profile is classified
//!    into a regime (resident × skew, see [`WorkloadProfile`]) and looked
//!    up in a shipped [`DecisionTable`] — the table is *data*, measured by
//!    the `variants_ab` bench and recorded in `docs/benchmarks.md`, not a
//!    heuristic buried in code.
//! 3. **Switch.** If the table picks a non-default variant, a fresh
//!    structure of that variant is built and the buffered edges are
//!    replayed into it, then dispatch swaps over. Set union is confluent,
//!    so the replayed structure's partition equals the sampled one's at
//!    the swap point and every verdict stays linearizable.
//!
//! Replay-and-swap rather than relinking in place is deliberate: the
//! acyclicity argument of every link policy is *per-policy* (random ids,
//! indices, or rank words must increase along parent paths), and a forest
//! built by one policy is not a reachable state of another — mutating the
//! link rule mid-structure could create key inversions and, with them,
//! cycles. A fresh build under the new policy re-establishes the new
//! invariant from scratch.
//!
//! Dispatch after the switch is a single enum discriminant branch at the
//! operation boundary ([`VariantDsu`] holds fifteen monomorphized `Dsu`
//! instantiations), so the steady-state cost over a hand-picked variant
//! is one predictable jump — no trait objects on the find loop.
//!
//! The `DSU_TUNER` environment variable overrides the whole mechanism:
//! `off` pins the default variant and never samples, `auto` (and unset)
//! samples and decides, and an explicit `<find>/<link>` tag (e.g.
//! `halving/index`) forces that variant from construction. See
//! [`TunerMode`].

use crate::dsu::Dsu;
use crate::find::{Compress, Halving, NoCompaction, OneTrySplit, TwoTrySplit};
use crate::flatten::FlattenPolicy;
use crate::order::{IndexLink, RandomLink, RankLink};
use crate::stats::{OpStats, StatsSink};
use crate::store::RankedStore;
use crate::ConcurrentUnionFind;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, RwLock};

/// The find-policy axis of a [`Variant`], as runtime data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FindKind {
    /// [`NoCompaction`]: pure traversal, pointers never rewritten.
    NoCompaction,
    /// [`OneTrySplit`]: one splitting CAS attempt per iteration.
    OneTry,
    /// [`TwoTrySplit`]: the paper default — retry the split once.
    TwoTry,
    /// [`Halving`]: advance two levels per splitting attempt.
    Halving,
    /// [`Compress`]: full path compression to the found root.
    Compress,
}

impl FindKind {
    /// All find kinds, in `find` module declaration order.
    pub const ALL: [FindKind; 5] = [
        FindKind::NoCompaction,
        FindKind::OneTry,
        FindKind::TwoTry,
        FindKind::Halving,
        FindKind::Compress,
    ];

    /// The `FindPolicy::NAME` of the corresponding policy type.
    pub fn name(self) -> &'static str {
        match self {
            FindKind::NoCompaction => "no-compaction",
            FindKind::OneTry => "one-try",
            FindKind::TwoTry => "two-try",
            FindKind::Halving => "halving",
            FindKind::Compress => "compress",
        }
    }
}

/// The link-policy axis of a [`Variant`], as runtime data.
///
/// `Rank` pairs [`RankLink`] with [`RankedStore`] (the only fixed-universe
/// layout carrying a rank word); the other two run on the crate's
/// [`DefaultStore`](crate::DefaultStore). That pairing is what makes the
/// axis meaningful — on a rank-less layout `RankLink` degenerates to index
/// linking and the variant would be a duplicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// [`RandomLink`]: the paper's randomized linking.
    Random,
    /// [`IndexLink`]: deterministic index-order linking.
    Index,
    /// [`RankLink`] on [`RankedStore`]: link-by-rank with best-effort
    /// root bumps.
    Rank,
}

impl LinkKind {
    /// All link kinds, in `order` module declaration order.
    pub const ALL: [LinkKind; 3] = [LinkKind::Random, LinkKind::Index, LinkKind::Rank];

    /// The `LinkPolicy::NAME` of the corresponding policy type.
    pub fn name(self) -> &'static str {
        match self {
            LinkKind::Random => "random",
            LinkKind::Index => "index",
            LinkKind::Rank => "rank",
        }
    }
}

/// One point of the (find × link) variant plane, as runtime data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Variant {
    /// Find policy.
    pub find: FindKind,
    /// Link policy (with its paired store, see [`LinkKind`]).
    pub link: LinkKind,
}

/// The sampling default: the paper's `two-try/random`.
pub const DEFAULT_VARIANT: Variant = Variant { find: FindKind::TwoTry, link: LinkKind::Random };

impl Variant {
    /// The canonical `<find>/<link>` tag, e.g. `"two-try/random"` — the
    /// format `DSU_TUNER` accepts and diagnostics print.
    pub fn tag(self) -> String {
        format!("{}/{}", self.find.name(), self.link.name())
    }

    /// Parses a `<find>/<link>` tag. Inverse of [`tag`](Variant::tag).
    pub fn parse(s: &str) -> Option<Variant> {
        let (f, l) = s.split_once('/')?;
        let find = FindKind::ALL.into_iter().find(|k| k.name() == f)?;
        let link = LinkKind::ALL.into_iter().find(|k| k.name() == l)?;
        Some(Variant { find, link })
    }

    /// Every variant in the plane, find-major.
    pub fn all() -> impl Iterator<Item = Variant> {
        FindKind::ALL
            .into_iter()
            .flat_map(|find| LinkKind::ALL.into_iter().map(move |link| Variant { find, link }))
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.find.name(), self.link.name())
    }
}

macro_rules! variants {
    ($( $arm:ident : $fk:ident, $lk:ident, $f:ty, $s:ty, $l:ty; )*) => {
        /// One monomorphized (find × link) variant, dispatched by enum
        /// discriminant at the operation boundary.
        ///
        /// Each arm is a concrete [`Dsu`] instantiation — the find loops
        /// inside are fully monomorphized, so the only dynamic cost of
        /// tuned dispatch is the `match` below each method.
        #[derive(Debug)]
        pub enum VariantDsu {
            $(
                #[doc = concat!("`", stringify!($fk), "` × `", stringify!($lk), "`.")]
                $arm(Dsu<$f, $s, $l>),
            )*
        }

        impl VariantDsu {
            /// Builds a fresh structure of the given variant over `n`
            /// elements, ids seeded from `seed`.
            pub fn build(v: Variant, n: usize, seed: u64) -> Self {
                match (v.find, v.link) {
                    $( (FindKind::$fk, LinkKind::$lk) => VariantDsu::$arm(Dsu::with_seed(n, seed)), )*
                }
            }

            /// Which point of the plane this is.
            pub fn variant(&self) -> Variant {
                match self {
                    $( VariantDsu::$arm(_) => Variant { find: FindKind::$fk, link: LinkKind::$lk }, )*
                }
            }

            /// See [`Dsu::len`].
            pub fn len(&self) -> usize {
                match self { $( VariantDsu::$arm(d) => d.len(), )* }
            }

            /// `true` if the universe is empty.
            pub fn is_empty(&self) -> bool {
                self.len() == 0
            }

            /// See [`Dsu::set_count`].
            pub fn set_count(&self) -> usize {
                match self { $( VariantDsu::$arm(d) => d.set_count(), )* }
            }

            /// See [`Dsu::find`].
            pub fn find(&self, x: usize) -> usize {
                match self { $( VariantDsu::$arm(d) => d.find(x), )* }
            }

            /// See [`Dsu::same_set`].
            pub fn same_set(&self, x: usize, y: usize) -> bool {
                match self { $( VariantDsu::$arm(d) => d.same_set(x, y), )* }
            }

            /// See [`Dsu::unite`].
            pub fn unite(&self, x: usize, y: usize) -> bool {
                match self { $( VariantDsu::$arm(d) => d.unite(x, y), )* }
            }

            /// See [`Dsu::same_set_with`].
            pub fn same_set_with<Sk: StatsSink>(&self, x: usize, y: usize, stats: &mut Sk) -> bool {
                match self { $( VariantDsu::$arm(d) => d.same_set_with(x, y, stats), )* }
            }

            /// See [`Dsu::unite_with`].
            pub fn unite_with<Sk: StatsSink>(&self, x: usize, y: usize, stats: &mut Sk) -> bool {
                match self { $( VariantDsu::$arm(d) => d.unite_with(x, y, stats), )* }
            }

            /// See [`Dsu::unite_batch`].
            pub fn unite_batch(&self, edges: &[(usize, usize)]) -> usize {
                match self { $( VariantDsu::$arm(d) => d.unite_batch(edges), )* }
            }

            /// See [`Dsu::labels_snapshot`].
            pub fn labels_snapshot(&self) -> Vec<usize> {
                match self { $( VariantDsu::$arm(d) => d.labels_snapshot(), )* }
            }

            /// See [`Dsu::flatten`].
            pub fn flatten(&self) {
                match self { $( VariantDsu::$arm(d) => d.flatten(), )* }
            }

            /// See [`Dsu::flatten_parallel`].
            pub fn flatten_parallel(&self, threads: usize) -> OpStats {
                match self { $( VariantDsu::$arm(d) => d.flatten_parallel(threads), )* }
            }

            /// See [`Dsu::flatten_policy`].
            pub fn flatten_policy(&self) -> FlattenPolicy {
                match self { $( VariantDsu::$arm(d) => d.flatten_policy(), )* }
            }

            /// See [`Dsu::set_flatten_policy`].
            pub fn set_flatten_policy(&mut self, policy: FlattenPolicy) {
                match self { $( VariantDsu::$arm(d) => d.set_flatten_policy(policy), )* }
            }
        }
    };
}

variants! {
    NoCompactionRandom: NoCompaction, Random, NoCompaction, crate::DefaultStore, RandomLink;
    OneTryRandom:       OneTry,       Random, OneTrySplit,  crate::DefaultStore, RandomLink;
    TwoTryRandom:       TwoTry,       Random, TwoTrySplit,  crate::DefaultStore, RandomLink;
    HalvingRandom:      Halving,      Random, Halving,      crate::DefaultStore, RandomLink;
    CompressRandom:     Compress,     Random, Compress,     crate::DefaultStore, RandomLink;
    NoCompactionIndex:  NoCompaction, Index,  NoCompaction, crate::DefaultStore, IndexLink;
    OneTryIndex:        OneTry,       Index,  OneTrySplit,  crate::DefaultStore, IndexLink;
    TwoTryIndex:        TwoTry,       Index,  TwoTrySplit,  crate::DefaultStore, IndexLink;
    HalvingIndex:       Halving,      Index,  Halving,      crate::DefaultStore, IndexLink;
    CompressIndex:      Compress,     Index,  Compress,     crate::DefaultStore, IndexLink;
    NoCompactionRank:   NoCompaction, Rank,   NoCompaction, RankedStore,         RankLink;
    OneTryRank:         OneTry,       Rank,   OneTrySplit,  RankedStore,         RankLink;
    TwoTryRank:         TwoTry,       Rank,   TwoTrySplit,  RankedStore,         RankLink;
    HalvingRank:        Halving,      Rank,   Halving,      RankedStore,         RankLink;
    CompressRank:       Compress,     Rank,   Compress,     RankedStore,         RankLink;
}

/// What the tuner learned from the sampling prefix, as the decision
/// table's input.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadProfile {
    /// Universe size (elements).
    pub n: usize,
    /// Counters merged over every sampled operation.
    pub stats: OpStats,
}

impl WorkloadProfile {
    /// `true` if the parent array overflows `cache_budget_bytes` — the
    /// regime where pointer chases miss to DRAM and shorter paths beat
    /// cheaper iterations.
    pub fn dram_resident(&self, cache_budget_bytes: usize) -> bool {
        self.n.saturating_mul(8) > cache_budget_bytes
    }

    /// Fraction of sampled operations that performed a link. Uniform
    /// fresh-edge streams link on most unites; skewed (hot-endpoint)
    /// streams keep re-uniting already-merged elements and link rarely.
    pub fn link_rate(&self) -> f64 {
        if self.stats.ops == 0 {
            return 0.0;
        }
        self.stats.links_ok as f64 / self.stats.ops as f64
    }
}

/// One regime row of a [`DecisionTable`].
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Matches profiles whose parent array spills past the cache budget.
    pub dram_resident: bool,
    /// Matches profiles whose sampled link rate falls below the skew
    /// threshold.
    pub skewed: bool,
    /// The variant this regime dispatches to.
    pub variant: Variant,
    /// The flatten-pass policy this regime prescribes, applied to the
    /// dispatched structure at commit (see [`crate::flatten`]).
    pub flatten: FlattenPolicy,
}

/// The shipped variant × regime table the tuner scores against.
///
/// Regimes are the cross product of two booleans — resident (does the
/// parent array fit the cache budget?) × skew (did the sampled prefix
/// keep linking, or mostly re-unite?) — so the table is four rows. The
/// variants in [`builtin`](DecisionTable::builtin) are *measured*, by
/// `variants_ab` (see `docs/benchmarks.md` and `BENCH_PR8.json`), and the
/// two extreme probes (cache-resident uniform, DRAM-resident skewed) are
/// re-checked against the live matrix by the harness.
#[derive(Debug, Clone, Copy)]
pub struct DecisionTable {
    /// One rule per regime; [`choose`](DecisionTable::choose) returns the
    /// first match, or the default variant if none matches.
    pub rules: [Rule; 4],
    /// Parent-array bytes above which a profile counts as DRAM-resident.
    pub cache_budget_bytes: usize,
    /// Sampled link rate below which a profile counts as skewed.
    pub skew_link_rate: f64,
}

impl DecisionTable {
    /// The shipped table. Variants per regime come from the PR 8
    /// `variants_ab` matrix on the reference machine; the bench's JSON
    /// carries the fingerprint that ties the numbers to the hardware.
    pub fn builtin() -> Self {
        DecisionTable {
            rules: [
                // Cache-resident: halving/index won the cache-uniform
                // probe by 1.14x over the paper default — with every word
                // in cache the win goes to the variant that touches the
                // fewest of them per op (halving writes half the compaction
                // CASes of splitting; index linking drops the permutation
                // lookup). Both skew rows carry the regime winner: the
                // matrix probed residency, not skew, and the cache gap
                // between the two was inside noise.
                Rule {
                    dram_resident: false,
                    skewed: false,
                    variant: Variant { find: FindKind::Halving, link: LinkKind::Index },
                    flatten: FlattenPolicy::Off,
                },
                Rule {
                    dram_resident: false,
                    skewed: true,
                    variant: Variant { find: FindKind::Halving, link: LinkKind::Index },
                    flatten: FlattenPolicy::Off,
                },
                // DRAM-resident: keep the paper default. On the dram-zipf
                // probe the splitting/halving cluster is tied within ~1%
                // and the nominal winner jitters run to run, but
                // two-try/random stayed inside the tie band of every
                // winner measured — and the decisive result is negative:
                // compress measured ~2.5x WORSE (its extra full pass is
                // all misses), refuting the "aggressive compaction for
                // DRAM" intuition, and no-compaction 1.4-2.3x worse. When
                // no variant beats the default outside noise, the honest
                // table row is the default: a switch costs a replay and
                // buys nothing.
                Rule {
                    dram_resident: true,
                    skewed: false,
                    variant: DEFAULT_VARIANT,
                    flatten: FlattenPolicy::Off,
                },
                Rule {
                    dram_resident: true,
                    skewed: true,
                    variant: DEFAULT_VARIANT,
                    flatten: FlattenPolicy::Off,
                },
                // Every builtin row keeps flatten Off: the tuner's profile
                // is an *ingest* stream (it samples unites), so it cannot
                // see a read-heavy phase a sweep might serve — and the
                // PR 9 `flatten_ab` A/B (BENCH_PR9.json) measured no
                // regime, even a 4-queries-per-element storm, where any
                // flatten arm beat `off` outside the noise band: splitting
                // finds self-compact the paths a sweep would have fixed.
                // Consumers with a known ingest→query phase boundary can
                // still opt in via `DSU_FLATTEN` or an explicit
                // post-ingest `flatten()`.
            ],
            cache_budget_bytes: 8 << 20,
            skew_link_rate: 0.5,
        }
    }

    /// Classifies `profile` and returns its regime's rule (`None` if no
    /// rule matches, which the builtin table makes impossible).
    pub fn rule_for(&self, profile: &WorkloadProfile) -> Option<&Rule> {
        let dram = profile.dram_resident(self.cache_budget_bytes);
        let skewed = profile.link_rate() < self.skew_link_rate;
        self.rules.iter().find(|r| r.dram_resident == dram && r.skewed == skewed)
    }

    /// Classifies `profile` and returns its regime's variant (the default
    /// variant if no rule matches, which the builtin table makes
    /// impossible).
    pub fn choose(&self, profile: &WorkloadProfile) -> Variant {
        self.rule_for(profile).map(|r| r.variant).unwrap_or(DEFAULT_VARIANT)
    }
}

impl Default for DecisionTable {
    fn default() -> Self {
        DecisionTable::builtin()
    }
}

/// How a [`TunedDsu`] decides, parsed from the `DSU_TUNER` environment
/// variable at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TunerMode {
    /// Never sample, never switch: the structure is exactly the default
    /// variant with a discriminant check per op.
    Off,
    /// Sample a prefix, score it against the table, switch once.
    Auto,
    /// Skip sampling and build this variant at construction.
    Forced(Variant),
}

impl TunerMode {
    /// Parses a `DSU_TUNER` value: `off`, `auto`, or a `<find>/<link>`
    /// tag. Unrecognized values fall back to `Auto` (the unset default)
    /// silently — a misspelled knob should degrade to the self-tuning
    /// behavior, not abort the host process. Use
    /// [`parse_recognized`](TunerMode::parse_recognized) to detect the
    /// degradation.
    pub fn parse(s: &str) -> TunerMode {
        Self::parse_recognized(s).unwrap_or(TunerMode::Auto)
    }

    /// [`parse`](TunerMode::parse) distinguishing recognized values from
    /// the degradation fallback: `None` iff `s` is neither a mode keyword
    /// nor a valid variant tag.
    pub fn parse_recognized(s: &str) -> Option<TunerMode> {
        match s.trim() {
            "off" => Some(TunerMode::Off),
            "" | "auto" => Some(TunerMode::Auto),
            tag => Variant::parse(tag).map(TunerMode::Forced),
        }
    }

    /// Reads `DSU_TUNER` from the environment (`Auto` when unset); a
    /// set-but-unrecognized value degrades to `Auto` with a one-time
    /// stderr warning ([`knob`](crate::knob)).
    pub fn from_env() -> TunerMode {
        match std::env::var("DSU_TUNER") {
            Err(_) => TunerMode::Auto,
            Ok(v) => Self::parse_recognized(&v).unwrap_or_else(|| {
                crate::knob::warn_unrecognized(
                    "DSU_TUNER",
                    &v,
                    "off | auto | <find>/<link> (e.g. `halving/index`)",
                    "auto",
                );
                TunerMode::Auto
            }),
        }
    }
}

const STATE_SAMPLING: u8 = 0;
const STATE_DECIDING: u8 = 1;
const STATE_COMMITTED: u8 = 2;

/// Default number of operations the tuner samples before deciding.
pub const DEFAULT_SAMPLE_BUDGET: u64 = 4096;

/// A union-find that picks its own (find × link) variant from the
/// workload.
///
/// Operations before the decision point run on the default variant while
/// their counters are profiled and their unite edges buffered; at the
/// decision point the profile is scored against the [`DecisionTable`] and,
/// if a different variant wins, a fresh structure is built, the buffer is
/// replayed into it, and dispatch switches over (see the module docs for
/// why replay rather than in-place relinking). All of it is safe under
/// concurrency: sampling ops hold a read lock, the switch holds the write
/// lock, so the buffer is complete when replay starts and verdicts stay
/// linearizable across the swap.
///
/// Diagnostics: [`tuner_samples`](TunedDsu::tuner_samples),
/// [`tuner_switches`](TunedDsu::tuner_switches), and
/// [`chosen_variant`](TunedDsu::chosen_variant) expose the decision;
/// [`report_into`](TunedDsu::report_into) feeds them to a [`StatsSink`]
/// for harness attribution.
///
/// # Example
///
/// ```
/// use concurrent_dsu::{TunedDsu, TunerMode, ConcurrentUnionFind};
///
/// // Forced mode pins a variant up front (what `DSU_TUNER=halving/index`
/// // does process-wide).
/// let dsu = TunedDsu::with_mode(100, 7, TunerMode::parse("halving/index"));
/// assert!(dsu.unite(1, 2));
/// assert!(dsu.same_set(2, 1));
/// assert_eq!(dsu.chosen_variant().tag(), "halving/index");
/// ```
pub struct TunedDsu {
    n: usize,
    seed: u64,
    inner: RwLock<VariantDsu>,
    state: AtomicU8,
    sampled: AtomicU64,
    switches: AtomicU64,
    sample_budget: u64,
    buffer: Mutex<Vec<(usize, usize)>>,
    profile: Mutex<OpStats>,
    table: DecisionTable,
}

impl std::fmt::Debug for TunedDsu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TunedDsu")
            .field("len", &self.n)
            .field("variant", &self.chosen_variant().tag())
            .field("committed", &(self.state.load(Ordering::Acquire) == STATE_COMMITTED))
            .field("tuner_samples", &self.tuner_samples())
            .field("tuner_switches", &self.tuner_switches())
            .finish()
    }
}

impl TunedDsu {
    /// `n` singleton sets, mode from `DSU_TUNER`, the crate's default
    /// id seed.
    pub fn new(n: usize) -> Self {
        Self::with_mode(n, Dsu::<TwoTrySplit>::DEFAULT_SEED, TunerMode::from_env())
    }

    /// `n` singleton sets with a fixed seed, mode from `DSU_TUNER`.
    pub fn with_seed(n: usize, seed: u64) -> Self {
        Self::with_mode(n, seed, TunerMode::from_env())
    }

    /// `n` singleton sets with an explicit mode (ignoring the
    /// environment) and the builtin table.
    pub fn with_mode(n: usize, seed: u64, mode: TunerMode) -> Self {
        Self::with_config(n, seed, mode, DEFAULT_SAMPLE_BUDGET, DecisionTable::builtin())
    }

    /// Full-control constructor: mode, sampling budget, and table.
    pub fn with_config(
        n: usize,
        seed: u64,
        mode: TunerMode,
        sample_budget: u64,
        table: DecisionTable,
    ) -> Self {
        let (start, state, switches) = match mode {
            TunerMode::Off => (DEFAULT_VARIANT, STATE_COMMITTED, 0),
            TunerMode::Auto => (DEFAULT_VARIANT, STATE_SAMPLING, 0),
            // A forced non-default variant counts as a switch so that
            // attribution reports show forced runs as "dispatched away
            // from the default", same as auto runs that decided to move.
            TunerMode::Forced(v) => (v, STATE_COMMITTED, u64::from(v != DEFAULT_VARIANT)),
        };
        TunedDsu {
            n,
            seed,
            inner: RwLock::new(VariantDsu::build(start, n, seed)),
            state: AtomicU8::new(state),
            sampled: AtomicU64::new(0),
            switches: AtomicU64::new(switches),
            sample_budget,
            buffer: Mutex::new(Vec::new()),
            profile: Mutex::new(OpStats::default()),
            table,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Operations routed through the sampling prefix so far.
    pub fn tuner_samples(&self) -> u64 {
        self.sampled.load(Ordering::Relaxed)
    }

    /// Variant switches committed (0 or 1; forced non-default modes
    /// count their construction-time dispatch).
    pub fn tuner_switches(&self) -> u64 {
        self.switches.load(Ordering::Relaxed)
    }

    /// The variant currently dispatched to. Before the decision point
    /// this is the sampling default.
    pub fn chosen_variant(&self) -> Variant {
        self.inner.read().unwrap().variant()
    }

    /// `true` once the decision point has passed (immediately, for `Off`
    /// and `Forced` modes).
    pub fn committed(&self) -> bool {
        self.state.load(Ordering::Acquire) == STATE_COMMITTED
    }

    /// Number of disjoint sets.
    pub fn set_count(&self) -> usize {
        self.inner.read().unwrap().set_count()
    }

    /// Set labels for every element (see [`Dsu::labels_snapshot`]).
    pub fn labels_snapshot(&self) -> Vec<usize> {
        self.inner.read().unwrap().labels_snapshot()
    }

    /// One sequential flatten sweep on the currently dispatched variant
    /// (see [`Dsu::flatten`]); safe concurrently with ongoing operations.
    pub fn flatten(&self) {
        self.inner.read().unwrap().flatten();
    }

    /// Parallel flatten sweep on the currently dispatched variant (see
    /// [`Dsu::flatten_parallel`]).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn flatten_parallel(&self, threads: usize) -> OpStats {
        self.inner.read().unwrap().flatten_parallel(threads)
    }

    /// The flatten policy of the currently dispatched variant. After the
    /// decision point this is the committed regime's
    /// [`Rule::flatten`] arm.
    pub fn flatten_policy(&self) -> FlattenPolicy {
        self.inner.read().unwrap().flatten_policy()
    }

    /// Reports the tuner's dispatch accounting into a harness sink: one
    /// `tuner_samples` bulk event and one `tuner_switch` per committed
    /// switch. Call at quiescence, once per structure — the events
    /// describe the structure's lifetime, not a per-thread share.
    pub fn report_into<Sk: StatsSink>(&self, sink: &mut Sk) {
        sink.tuner_samples(self.tuner_samples() as usize);
        for _ in 0..self.tuner_switches() {
            sink.tuner_switch();
        }
    }

    /// Returns the root of the tree currently containing `x` (stale by
    /// the time the caller looks; see [`ConcurrentUnionFind::find`]).
    pub fn find(&self, x: usize) -> usize {
        self.inner.read().unwrap().find(x)
    }

    /// Linearizable same-set test.
    pub fn same_set(&self, x: usize, y: usize) -> bool {
        let guard = self.inner.read().unwrap();
        if self.state.load(Ordering::Acquire) == STATE_COMMITTED {
            return guard.same_set(x, y);
        }
        // Sampling: profile the op. Queries don't need buffering — the
        // replayed structure reproduces the partition, and verdicts are
        // partition-determined.
        let mut local = OpStats::default();
        let verdict = guard.same_set_with(x, y, &mut local);
        drop(guard);
        self.absorb_sample(local, 1);
        verdict
    }

    /// Unites the sets containing `x` and `y`; `true` iff this call
    /// performed the link.
    pub fn unite(&self, x: usize, y: usize) -> bool {
        let guard = self.inner.read().unwrap();
        if self.state.load(Ordering::Acquire) == STATE_COMMITTED {
            return guard.unite(x, y);
        }
        let mut local = OpStats::default();
        let verdict = guard.unite_with(x, y, &mut local);
        // Buffered while still holding the read guard: the committer
        // drains the buffer under the *write* lock, so every edge pushed
        // under a read guard is visible to the replay.
        self.buffer.lock().unwrap().push((x, y));
        drop(guard);
        self.absorb_sample(local, 1);
        verdict
    }

    /// Batch ingestion; returns the number of edges that performed a
    /// link.
    pub fn unite_batch(&self, edges: &[(usize, usize)]) -> usize {
        let guard = self.inner.read().unwrap();
        if self.state.load(Ordering::Acquire) == STATE_COMMITTED {
            return guard.unite_batch(edges);
        }
        let mut local = OpStats::default();
        let mut links = 0usize;
        for &(x, y) in edges {
            links += guard.unite_with(x, y, &mut local) as usize;
        }
        self.buffer.lock().unwrap().extend_from_slice(edges);
        drop(guard);
        self.absorb_sample(local, edges.len() as u64);
        links
    }

    /// Merges a sampled op's counters into the profile, advances the
    /// sample count, and commits a decision once the budget is spent.
    fn absorb_sample(&self, local: OpStats, ops: u64) {
        self.profile.lock().unwrap().merge(&local);
        let seen = self.sampled.fetch_add(ops, Ordering::Relaxed) + ops;
        if seen >= self.sample_budget {
            self.try_commit();
        }
    }

    /// Races to become the deciding thread; the loser returns
    /// immediately. The winner scores the profile, optionally builds and
    /// replays the chosen variant, and swaps dispatch — all under the
    /// write lock, so no sampled edge can be missed and no op observes a
    /// half-switched structure.
    fn try_commit(&self) {
        if self
            .state
            .compare_exchange(STATE_SAMPLING, STATE_DECIDING, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        let mut guard = self.inner.write().unwrap();
        let profile = WorkloadProfile { n: self.n, stats: *self.profile.lock().unwrap() };
        let rule = self.table.rule_for(&profile).copied();
        let chosen = rule.map(|r| r.variant).unwrap_or(DEFAULT_VARIANT);
        let edges = std::mem::take(&mut *self.buffer.lock().unwrap());
        if chosen != guard.variant() {
            let fresh = VariantDsu::build(chosen, self.n, self.seed);
            fresh.unite_batch(&edges);
            *guard = fresh;
            self.switches.fetch_add(1, Ordering::Relaxed);
        }
        // The regime's maintenance arm rides along with its variant: the
        // committed structure adopts the rule's flatten policy (a fresh
        // build starts from the env default, so this applies either way).
        if let Some(r) = rule {
            guard.set_flatten_policy(r.flatten);
        }
        self.state.store(STATE_COMMITTED, Ordering::Release);
    }
}

impl ConcurrentUnionFind for VariantDsu {
    fn len(&self) -> usize {
        VariantDsu::len(self)
    }

    fn same_set(&self, x: usize, y: usize) -> bool {
        VariantDsu::same_set(self, x, y)
    }

    fn unite(&self, x: usize, y: usize) -> bool {
        VariantDsu::unite(self, x, y)
    }

    fn unite_batch(&self, edges: &[(usize, usize)]) -> usize {
        VariantDsu::unite_batch(self, edges)
    }

    fn find(&self, x: usize) -> usize {
        VariantDsu::find(self, x)
    }
}

impl ConcurrentUnionFind for TunedDsu {
    fn len(&self) -> usize {
        TunedDsu::len(self)
    }

    fn same_set(&self, x: usize, y: usize) -> bool {
        TunedDsu::same_set(self, x, y)
    }

    fn unite(&self, x: usize, y: usize) -> bool {
        TunedDsu::unite(self, x, y)
    }

    fn unite_batch(&self, edges: &[(usize, usize)]) -> usize {
        TunedDsu::unite_batch(self, edges)
    }

    fn find(&self, x: usize) -> usize {
        TunedDsu::find(self, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sequential_dsu::{NaiveDsu, Partition};

    #[test]
    fn variant_tags_roundtrip() {
        let mut seen = std::collections::HashSet::new();
        for v in Variant::all() {
            let tag = v.tag();
            assert_eq!(Variant::parse(&tag), Some(v), "tag {tag} must parse back");
            assert!(seen.insert(tag), "tags must be distinct");
        }
        assert_eq!(seen.len(), 15);
        assert_eq!(Variant::parse("two-try"), None);
        assert_eq!(Variant::parse("two-try/bogus"), None);
        assert_eq!(Variant::parse("bogus/random"), None);
    }

    #[test]
    fn tuner_mode_parses() {
        assert_eq!(TunerMode::parse("off"), TunerMode::Off);
        assert_eq!(TunerMode::parse("auto"), TunerMode::Auto);
        assert_eq!(TunerMode::parse(""), TunerMode::Auto);
        assert_eq!(
            TunerMode::parse(" halving/index "),
            TunerMode::Forced(Variant::parse("halving/index").unwrap())
        );
        // Misspellings degrade to auto, never panic.
        assert_eq!(TunerMode::parse("halving/indx"), TunerMode::Auto);
    }

    #[test]
    fn tuner_mode_parse_recognized_detects_degradation() {
        assert_eq!(TunerMode::parse_recognized("off"), Some(TunerMode::Off));
        assert_eq!(TunerMode::parse_recognized(""), Some(TunerMode::Auto));
        assert!(matches!(TunerMode::parse_recognized("halving/index"), Some(TunerMode::Forced(_))));
        // The misspellings that `parse` degrades to Auto are surfaced as
        // unrecognized here, which is what lets `from_env` warn.
        assert_eq!(TunerMode::parse_recognized("halving/indx"), None);
        assert_eq!(TunerMode::parse_recognized("bogus"), None);
    }

    #[test]
    fn every_variant_builds_and_matches_oracle() {
        let n = 64;
        let edges: Vec<(usize, usize)> =
            (0..3 * n).map(|i| ((i * 2654435761) % n, (i * 40503 + 11) % n)).collect();
        let mut oracle = NaiveDsu::new(n);
        for &(x, y) in &edges {
            oracle.unite(x, y);
        }
        for v in Variant::all() {
            let dsu = VariantDsu::build(v, n, 9);
            assert_eq!(dsu.variant(), v);
            assert_eq!(dsu.len(), n);
            let mut links = 0;
            for &(x, y) in &edges {
                links += dsu.unite(x, y) as usize;
            }
            assert_eq!(links, n - oracle.set_count(), "{v}");
            assert_eq!(dsu.set_count(), oracle.set_count(), "{v}");
            assert_eq!(Partition::from_labels(&dsu.labels_snapshot()), oracle.partition(), "{v}");
            assert!(dsu.same_set(edges[0].0, dsu.find(edges[0].0)), "{v}");
        }
    }

    #[test]
    fn off_mode_never_samples_or_switches() {
        let dsu = TunedDsu::with_mode(32, 1, TunerMode::Off);
        for i in 0..31 {
            dsu.unite(i, i + 1);
        }
        assert_eq!(dsu.tuner_samples(), 0);
        assert_eq!(dsu.tuner_switches(), 0);
        assert_eq!(dsu.chosen_variant(), DEFAULT_VARIANT);
        assert!(dsu.committed());
        assert_eq!(dsu.set_count(), 1);
    }

    #[test]
    fn forced_mode_dispatches_immediately() {
        let v = Variant::parse("compress/rank").unwrap();
        let dsu = TunedDsu::with_mode(32, 1, TunerMode::Forced(v));
        assert!(dsu.committed());
        assert_eq!(dsu.chosen_variant(), v);
        assert_eq!(dsu.tuner_switches(), 1, "forced non-default counts as a dispatch switch");
        dsu.unite(0, 1);
        assert_eq!(dsu.tuner_samples(), 0);
        // Forcing the default is not a switch.
        let dflt = TunedDsu::with_mode(32, 1, TunerMode::Forced(DEFAULT_VARIANT));
        assert_eq!(dflt.tuner_switches(), 0);
    }

    #[test]
    fn auto_mode_commits_table_choice_and_keeps_partition() {
        // Tiny budget so the switch happens mid-stream; a DRAM-sized
        // universe is impractical here, so this exercises the
        // cache-resident rows (choice = default → no switch) and the
        // forced path covers non-default dispatch. The mid-stream
        // *switching* replay is exercised with a custom table below.
        let n = 256;
        let table = DecisionTable {
            rules: [
                // Same regime split as builtin, but the cache-resident
                // rows pick a non-default variant so the replay path runs.
                Rule {
                    dram_resident: false,
                    skewed: false,
                    variant: Variant::parse("halving/index").unwrap(),
                    flatten: FlattenPolicy::Off,
                },
                Rule {
                    dram_resident: false,
                    skewed: true,
                    variant: Variant::parse("halving/index").unwrap(),
                    flatten: FlattenPolicy::Off,
                },
                Rule {
                    dram_resident: true,
                    skewed: false,
                    variant: DEFAULT_VARIANT,
                    flatten: FlattenPolicy::Off,
                },
                Rule {
                    dram_resident: true,
                    skewed: true,
                    variant: DEFAULT_VARIANT,
                    flatten: FlattenPolicy::Off,
                },
            ],
            ..DecisionTable::builtin()
        };
        let dsu = TunedDsu::with_config(n, 5, TunerMode::Auto, 64, table);
        let edges: Vec<(usize, usize)> =
            (0..2 * n).map(|i| ((i * 2654435761) % n, (i * 40503 + 7) % n)).collect();
        let mut oracle = NaiveDsu::new(n);
        let mut links = 0;
        for &(x, y) in &edges {
            assert_eq!(dsu.unite(x, y), oracle.unite(x, y), "verdicts diverged at ({x},{y})");
            links += 1;
            if links == 64 {
                // Decision point: the cache-resident table row must have
                // switched us onto halving/index.
                assert!(dsu.committed());
                assert_eq!(dsu.chosen_variant(), Variant::parse("halving/index").unwrap());
                assert_eq!(dsu.tuner_switches(), 1);
            }
        }
        assert_eq!(dsu.tuner_samples(), 64);
        assert_eq!(Partition::from_labels(&dsu.labels_snapshot()), oracle.partition());
        assert_eq!(dsu.set_count(), oracle.set_count());
        let mut stats = OpStats::default();
        dsu.report_into(&mut stats);
        assert_eq!((stats.tuner_samples, stats.tuner_switches), (64, 1));
    }

    #[test]
    fn auto_mode_keeps_default_when_table_says_so() {
        // A table whose every row names the default variant: committing
        // must not count a switch and must keep the original structure.
        let keep = DecisionTable {
            rules: DecisionTable::builtin().rules.map(|r| Rule { variant: DEFAULT_VARIANT, ..r }),
            ..DecisionTable::builtin()
        };
        let dsu = TunedDsu::with_config(128, 5, TunerMode::Auto, 32, keep);
        let mut oracle = NaiveDsu::new(128);
        for i in 0..127 {
            assert_eq!(dsu.unite(i, i + 1), oracle.unite(i, i + 1));
        }
        assert!(dsu.committed());
        assert_eq!(dsu.chosen_variant(), DEFAULT_VARIANT);
        assert_eq!(dsu.tuner_switches(), 0);
        assert_eq!(dsu.tuner_samples(), 32);
        assert_eq!(dsu.set_count(), 1);
    }

    #[test]
    fn profile_classifies_regimes() {
        let stats = OpStats { ops: 100, links_ok: 90, ..OpStats::default() };
        let uniform = WorkloadProfile { n: 1 << 10, stats };
        let table = DecisionTable::builtin();
        assert!(!uniform.dram_resident(table.cache_budget_bytes));
        assert!(uniform.link_rate() > table.skew_link_rate);
        assert_eq!(table.choose(&uniform), table.rules[0].variant);

        let skewed_stats = OpStats { ops: 100, links_ok: 5, ..OpStats::default() };
        let dram_skewed = WorkloadProfile { n: 1 << 28, stats: skewed_stats };
        assert!(dram_skewed.dram_resident(table.cache_budget_bytes));
        assert_eq!(table.choose(&dram_skewed), table.rules[3].variant);
    }

    #[test]
    fn commit_applies_regime_flatten_arm() {
        // A table whose every row keeps the default variant but
        // prescribes an every-k flatten: the committed structure must
        // adopt the rule's policy regardless of the DSU_FLATTEN env the
        // structure was constructed under.
        let table = DecisionTable {
            rules: DecisionTable::builtin()
                .rules
                .map(|r| Rule { flatten: FlattenPolicy::EveryKBatches(7), ..r }),
            ..DecisionTable::builtin()
        };
        let dsu = TunedDsu::with_config(64, 5, TunerMode::Auto, 8, table);
        for i in 0..16 {
            dsu.unite(i, i + 1);
        }
        assert!(dsu.committed());
        assert_eq!(dsu.flatten_policy(), FlattenPolicy::EveryKBatches(7));
        // The builtin table's honest-negative arm is Off everywhere.
        for rule in DecisionTable::builtin().rules {
            assert_eq!(rule.flatten, FlattenPolicy::Off);
        }
    }
}

//! The random total order on elements ("ids").
//!
//! Randomized linking (paper Section 2, after Goel et al. SODA '14) fixes a
//! uniformly random total order over the elements before any operation runs;
//! `Unite` always links the root that is *smaller in this order* under the
//! larger. The order is immutable, which is exactly why a single-word CAS
//! suffices for linking (paper Section 3).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// A fixed total order on element indices.
///
/// Implementations must be immutable after construction, total, and
/// antisymmetric: for `u != v` exactly one of `less(u, v)` / `less(v, u)`
/// holds, and `less(u, u)` is always `false`.
pub trait IdOrder: Send + Sync {
    /// `true` iff `u` precedes `v` in the order.
    fn less(&self, u: usize, v: usize) -> bool;
}

/// The order used by the fixed-universe [`Dsu`](crate::Dsu): an explicit
/// uniformly random permutation of `0..n`, drawn once from a seeded ChaCha
/// generator so experiments are reproducible.
#[derive(Debug, Clone)]
pub struct PermutationOrder {
    ids: Box<[u64]>,
}

impl PermutationOrder {
    /// Draws a uniform permutation of `0..n` with Fisher–Yates.
    pub fn new(n: usize, seed: u64) -> Self {
        let mut ids: Vec<u64> = (0..n as u64).collect();
        ids.shuffle(&mut ChaCha12Rng::seed_from_u64(seed));
        PermutationOrder { ids: ids.into_boxed_slice() }
    }

    /// The id (position in the random order, `0..n`) of element `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    pub fn id_of(&self, u: usize) -> u64 {
        self.ids[u]
    }

    /// Number of elements in the order.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the order covers no elements.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

impl IdOrder for PermutationOrder {
    fn less(&self, u: usize, v: usize) -> bool {
        self.ids[u] < self.ids[v]
    }
}

/// The order used by [`GrowableDsu`](crate::GrowableDsu), where elements are
/// created on the fly (paper Section 7): each element's id is a pseudorandom
/// 64-bit hash of its index, with the index itself breaking the (rare) ties
/// so the order stays total. This realizes the paper's suggestion of
/// "assigning to each new element a random number selected uniformly from a
/// universe large enough that the chance of a tie is sufficiently small, and
/// adding a tie-breaking rule".
#[derive(Debug, Clone, Copy)]
pub struct HashOrder {
    salt: u64,
}

impl HashOrder {
    /// A hash order salted by `seed` (different seeds give independent
    /// orders).
    pub fn new(seed: u64) -> Self {
        HashOrder { salt: seed }
    }

    /// The 128-bit comparison key of element `u`.
    pub fn key_of(&self, u: usize) -> (u64, usize) {
        (splitmix64((u as u64).wrapping_add(self.salt)), u)
    }
}

impl IdOrder for HashOrder {
    fn less(&self, u: usize, v: usize) -> bool {
        self.key_of(u) < self.key_of(v)
    }
}

/// SplitMix64: a fast, well-distributed 64-bit mixing function (Steele,
/// Lea & Flood 2014). Used to give growable elements i.i.d.-looking ids
/// without storing them.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_total_order<O: IdOrder>(order: &O, n: usize) {
        for u in 0..n {
            assert!(!order.less(u, u), "irreflexive");
            for v in 0..n {
                if u != v {
                    assert_ne!(order.less(u, v), order.less(v, u), "antisymmetric & total");
                }
            }
        }
        // Transitivity on all triples (n is small in tests).
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    if order.less(a, b) && order.less(b, c) {
                        assert!(order.less(a, c), "transitive");
                    }
                }
            }
        }
    }

    #[test]
    fn permutation_order_is_a_total_order() {
        let order = PermutationOrder::new(12, 42);
        assert_eq!(order.len(), 12);
        check_total_order(&order, 12);
    }

    #[test]
    fn permutation_is_a_bijection() {
        let order = PermutationOrder::new(100, 7);
        let mut seen = [false; 100];
        for u in 0..100 {
            let id = order.id_of(u) as usize;
            assert!(!seen[id], "id {id} assigned twice");
            seen[id] = true;
        }
    }

    #[test]
    fn different_seeds_give_different_orders() {
        let a = PermutationOrder::new(64, 1);
        let b = PermutationOrder::new(64, 2);
        assert_ne!(
            (0..64).map(|u| a.id_of(u)).collect::<Vec<_>>(),
            (0..64).map(|u| b.id_of(u)).collect::<Vec<_>>()
        );
        // Same seed reproduces exactly.
        let c = PermutationOrder::new(64, 1);
        assert_eq!(
            (0..64).map(|u| a.id_of(u)).collect::<Vec<_>>(),
            (0..64).map(|u| c.id_of(u)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn hash_order_is_a_total_order() {
        check_total_order(&HashOrder::new(0xDEAD_BEEF), 12);
    }

    #[test]
    fn hash_order_looks_uniform() {
        // Crude uniformity check: among consecutive pairs (i, i+1), about
        // half should have less(i, i+1). SplitMix64 is far better than this
        // test requires.
        let order = HashOrder::new(3);
        let ups = (0..10_000).filter(|&i| order.less(i, i + 1)).count();
        assert!((4_000..=6_000).contains(&ups), "ups = {ups}");
    }

    #[test]
    fn splitmix_avalanche_smoke() {
        // Flipping one input bit flips ~half the output bits on average.
        let mut total = 0;
        for i in 0..1_000u64 {
            total += (splitmix64(i) ^ splitmix64(i ^ 1)).count_ones();
        }
        let avg = total as f64 / 1_000.0;
        assert!((24.0..40.0).contains(&avg), "avg flipped bits = {avg}");
    }

    #[test]
    fn empty_permutation() {
        let order = PermutationOrder::new(0, 9);
        assert!(order.is_empty());
    }
}

//! The random total order on elements ("ids") and the linking-policy axis.
//!
//! Randomized linking (paper Section 2, after Goel et al. SODA '14) fixes a
//! uniformly random total order over the elements before any operation runs;
//! `Unite` always links the root that is *smaller in this order* under the
//! larger. The order is immutable, which is exactly why a single-word CAS
//! suffices for linking (paper Section 3).
//!
//! The paper's choice is one point on a design axis. "In Search of the
//! Fastest Concurrent Union-Find Algorithm" (Alistarh, Fedorov & Koval;
//! arXiv 1911.06347, journal version 2003.01203) shows the winner shifts
//! with workload shape and adds two more linking rules: *index* linking
//! (link the smaller array index under the larger — no ids at all, zero
//! extra loads) and *rank* linking (union by rank with a CAS-bumped rank
//! word). [`LinkPolicy`] abstracts the rule; the three implementations are
//! [`RandomLink`] (the paper default), [`IndexLink`], and [`RankLink`].
//!
//! ### What keeps every policy acyclic
//!
//! Lemma 3.1's argument needs exactly one structural property: each link
//! replaces a root's self-pointer by a node that is **strictly larger in
//! the policy's key order at link time**, and a node's key is *frozen from
//! the moment it stops being a root*. Random ids and indices are immutable
//! outright; ranks are mutable, but [`RankLink`] computes the child's key
//! from the very word the link CAS expects (so a concurrent rank bump
//! fails the CAS rather than corrupting the comparison) and rank bumps are
//! root-only CASes that strictly increase the rank. Along any parent path
//! the observed keys are therefore strictly increasing for every policy,
//! which is the invariant the find loops, the batch linker, and the
//! early-termination arguments all rest on.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

use crate::store::ParentStore;

/// A fixed total order on element indices.
///
/// Implementations must be immutable after construction, total, and
/// antisymmetric: for `u != v` exactly one of `less(u, v)` / `less(v, u)`
/// holds, and `less(u, u)` is always `false`.
pub trait IdOrder: Send + Sync {
    /// `true` iff `u` precedes `v` in the order.
    fn less(&self, u: usize, v: usize) -> bool;
}

/// The order used by the fixed-universe [`Dsu`](crate::Dsu): an explicit
/// uniformly random permutation of `0..n`, drawn once from a seeded ChaCha
/// generator so experiments are reproducible.
#[derive(Debug, Clone)]
pub struct PermutationOrder {
    ids: Box<[u64]>,
}

impl PermutationOrder {
    /// Draws a uniform permutation of `0..n` with Fisher–Yates.
    pub fn new(n: usize, seed: u64) -> Self {
        let mut ids: Vec<u64> = (0..n as u64).collect();
        ids.shuffle(&mut ChaCha12Rng::seed_from_u64(seed));
        PermutationOrder { ids: ids.into_boxed_slice() }
    }

    /// The id (position in the random order, `0..n`) of element `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    pub fn id_of(&self, u: usize) -> u64 {
        self.ids[u]
    }

    /// Number of elements in the order.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the order covers no elements.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

impl IdOrder for PermutationOrder {
    fn less(&self, u: usize, v: usize) -> bool {
        self.ids[u] < self.ids[v]
    }
}

/// The order used by [`GrowableDsu`](crate::GrowableDsu), where elements are
/// created on the fly (paper Section 7): each element's id is a pseudorandom
/// 64-bit hash of its index, with the index itself breaking the (rare) ties
/// so the order stays total. This realizes the paper's suggestion of
/// "assigning to each new element a random number selected uniformly from a
/// universe large enough that the chance of a tie is sufficiently small, and
/// adding a tie-breaking rule".
#[derive(Debug, Clone, Copy)]
pub struct HashOrder {
    salt: u64,
}

impl HashOrder {
    /// A hash order salted by `seed` (different seeds give independent
    /// orders).
    pub fn new(seed: u64) -> Self {
        HashOrder { salt: seed }
    }

    /// The 128-bit comparison key of element `u`.
    pub fn key_of(&self, u: usize) -> (u64, usize) {
        (splitmix64((u as u64).wrapping_add(self.salt)), u)
    }
}

impl IdOrder for HashOrder {
    fn less(&self, u: usize, v: usize) -> bool {
        self.key_of(u) < self.key_of(v)
    }
}

/// SplitMix64: a fast, well-distributed 64-bit mixing function (Steele,
/// Lea & Flood 2014). Used to give growable elements i.i.d.-looking ids
/// without storing them.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

mod sealed {
    /// Prevents downstream crates from implementing [`super::LinkPolicy`]:
    /// the set of linking rules is the plane from arXiv 1911.06347, and
    /// sealing lets the trait evolve without breaking users (C-SEALED),
    /// exactly like [`FindPolicy`](crate::find::FindPolicy).
    pub trait Sealed {}
}

/// A strategy for choosing which of two roots becomes the child in `Unite`.
///
/// Every policy is a total order on elements expressed as a `(u64, usize)`
/// key with the element index as the tie-break; the root with the
/// **smaller key loses** (is linked under the other). The operations
/// compute the child's key from the exact word the link CAS expects, so
/// the comparison and the link are one atomic observation.
///
/// This trait is **sealed**: the implementations are [`RandomLink`] (the
/// paper's randomized linking), [`IndexLink`], and [`RankLink`].
pub trait LinkPolicy: sealed::Sealed + Send + Sync + 'static {
    /// Short name used in experiment tables (e.g. `"random"`).
    const NAME: &'static str;

    /// `true` when keys can change while a node is a root (rank linking).
    /// Mutable keys invalidate the Section 6 early-termination arguments
    /// (which compare keys *before* loading the word they would CAS), so
    /// the early operations fall back to the standard ones when this is
    /// set — a compile-time branch, free for the immutable policies.
    const MUTABLE_KEYS: bool = false;

    /// The linking key of root `u` observed as word `wu`. Smaller key
    /// loses. The caller must CAS against the same `wu` it passed here:
    /// that word-exactness is what freezes a mutable key at link time.
    fn key<P: ParentStore + ?Sized>(store: &P, u: usize, wu: P::Word) -> (u64, usize);

    /// Whether `u` precedes `v` in this policy's order, loading fresh
    /// words as needed. Used by the early-termination operations, which
    /// compare nodes they have not loaded yet — immutable-key policies
    /// only (see [`MUTABLE_KEYS`](LinkPolicy::MUTABLE_KEYS)).
    fn precedes<P: ParentStore + ?Sized>(store: &P, u: usize, v: usize) -> bool;

    /// Called after a successful link CAS with the child's observed word
    /// and the new parent. [`RankLink`] uses it to bump the parent's rank
    /// on a tie (best-effort, root-only); the immutable policies do
    /// nothing.
    #[inline]
    fn on_linked<P: ParentStore + ?Sized>(_store: &P, _wchild: P::Word, _parent: usize) {}
}

/// The paper's randomized linking: keys are the store's immutable random
/// ids ([`ParentStore::priority`]), index tie-broken. This is the default
/// and the policy all of the paper's theorems are stated for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomLink;

impl sealed::Sealed for RandomLink {}

impl LinkPolicy for RandomLink {
    const NAME: &'static str = "random";

    #[inline]
    fn key<P: ParentStore + ?Sized>(store: &P, u: usize, wu: P::Word) -> (u64, usize) {
        (store.priority(u, wu), u)
    }

    #[inline]
    fn precedes<P: ParentStore + ?Sized>(store: &P, u: usize, v: usize) -> bool {
        // Route through the store so layouts with a side order (the
        // growable segment directory) keep their zero-load override.
        store.precedes(u, v)
    }
}

/// Index linking: the smaller array index loses. No ids are consulted at
/// all — the comparison is free — at the price of the adversary choosing
/// the order (the O(log n) height guarantee becomes average-case over the
/// workload, not worst-case over inputs). arXiv 1911.06347 finds this
/// competitive when the workload itself is random.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexLink;

impl sealed::Sealed for IndexLink {}

impl LinkPolicy for IndexLink {
    const NAME: &'static str = "index";

    #[inline]
    fn key<P: ParentStore + ?Sized>(_store: &P, u: usize, _wu: P::Word) -> (u64, usize) {
        (0, u)
    }

    #[inline]
    fn precedes<P: ParentStore + ?Sized>(_store: &P, u: usize, v: usize) -> bool {
        u < v
    }
}

/// Union by rank, concurrent: keys are `(rank, index)` where the rank
/// lives in the parent word of a rank-carrying layout
/// ([`RankedStore`](crate::RankedStore)); after linking two roots of equal
/// rank the winner's rank is bumped by a best-effort root-only CAS
/// ([`ParentStore::try_bump_rank`]).
///
/// On layouts whose words carry no rank ([`ParentStore::rank_of`] is the
/// defaulted constant 0) every comparison ties and this degenerates to
/// [`IndexLink`] — intentional, so the policy is instantiable everywhere
/// and the rank effect is isolated to the `ranked` store in experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankLink;

impl sealed::Sealed for RankLink {}

impl LinkPolicy for RankLink {
    const NAME: &'static str = "rank";
    const MUTABLE_KEYS: bool = true;

    #[inline]
    fn key<P: ParentStore + ?Sized>(_store: &P, u: usize, wu: P::Word) -> (u64, usize) {
        (P::rank_of(wu), u)
    }

    #[inline]
    fn precedes<P: ParentStore + ?Sized>(store: &P, u: usize, v: usize) -> bool {
        let (wu, wv) = (store.load_word(u), store.load_word(v));
        (P::rank_of(wu), u) < (P::rank_of(wv), v)
    }

    #[inline]
    fn on_linked<P: ParentStore + ?Sized>(store: &P, wchild: P::Word, parent: usize) {
        // Union-by-rank's tie bump. The child's rank is frozen (it just
        // stopped being a root), so "tie" means the parent still has
        // exactly this rank; `try_bump_rank` re-checks root-ness and the
        // rank under CAS, so a lost race is simply a skipped bump.
        store.try_bump_rank(parent, P::rank_of(wchild));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_total_order<O: IdOrder>(order: &O, n: usize) {
        for u in 0..n {
            assert!(!order.less(u, u), "irreflexive");
            for v in 0..n {
                if u != v {
                    assert_ne!(order.less(u, v), order.less(v, u), "antisymmetric & total");
                }
            }
        }
        // Transitivity on all triples (n is small in tests).
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    if order.less(a, b) && order.less(b, c) {
                        assert!(order.less(a, c), "transitive");
                    }
                }
            }
        }
    }

    #[test]
    fn permutation_order_is_a_total_order() {
        let order = PermutationOrder::new(12, 42);
        assert_eq!(order.len(), 12);
        check_total_order(&order, 12);
    }

    #[test]
    fn permutation_is_a_bijection() {
        let order = PermutationOrder::new(100, 7);
        let mut seen = [false; 100];
        for u in 0..100 {
            let id = order.id_of(u) as usize;
            assert!(!seen[id], "id {id} assigned twice");
            seen[id] = true;
        }
    }

    #[test]
    fn different_seeds_give_different_orders() {
        let a = PermutationOrder::new(64, 1);
        let b = PermutationOrder::new(64, 2);
        assert_ne!(
            (0..64).map(|u| a.id_of(u)).collect::<Vec<_>>(),
            (0..64).map(|u| b.id_of(u)).collect::<Vec<_>>()
        );
        // Same seed reproduces exactly.
        let c = PermutationOrder::new(64, 1);
        assert_eq!(
            (0..64).map(|u| a.id_of(u)).collect::<Vec<_>>(),
            (0..64).map(|u| c.id_of(u)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn hash_order_is_a_total_order() {
        check_total_order(&HashOrder::new(0xDEAD_BEEF), 12);
    }

    #[test]
    fn hash_order_looks_uniform() {
        // Crude uniformity check: among consecutive pairs (i, i+1), about
        // half should have less(i, i+1). SplitMix64 is far better than this
        // test requires.
        let order = HashOrder::new(3);
        let ups = (0..10_000).filter(|&i| order.less(i, i + 1)).count();
        assert!((4_000..=6_000).contains(&ups), "ups = {ups}");
    }

    #[test]
    fn splitmix_avalanche_smoke() {
        // Flipping one input bit flips ~half the output bits on average.
        let mut total = 0;
        for i in 0..1_000u64 {
            total += (splitmix64(i) ^ splitmix64(i ^ 1)).count_ones();
        }
        let avg = total as f64 / 1_000.0;
        assert!((24.0..40.0).contains(&avg), "avg flipped bits = {avg}");
    }

    #[test]
    fn empty_permutation() {
        let order = PermutationOrder::new(0, 9);
        assert!(order.is_empty());
    }
}

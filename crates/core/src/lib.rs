//! Wait-free concurrent disjoint set union with randomized linking.
//!
//! This crate is a faithful, production-oriented implementation of the
//! algorithms of **Jayanti & Tarjan, "A Randomized Concurrent Algorithm for
//! Disjoint Set Union" (PODC 2016)**. It maintains a collection of disjoint
//! sets over elements `0..n` under concurrent [`unite`](Dsu::unite) and
//! [`same_set`](Dsu::same_set) operations, each executed by any thread with
//! no locks and no waiting: every update is a single-word compare-and-swap
//! on a parent pointer, and every operation completes in `O(log n)` steps
//! with high probability regardless of what other threads do.
//!
//! # The algorithm in one paragraph
//!
//! Each element has an immutable, uniformly random *id* and a mutable
//! *parent* pointer; sets are trees, roots point to themselves. `Unite`
//! finds the two roots and links the root with the smaller id under the
//! other with a CAS — because ids never change, no rank or size field has to
//! be updated atomically together with the parent, which is the paper's key
//! simplification over Anderson & Woll (STOC '91). Finds optionally compact
//! paths by *splitting* (each visited node's parent is swung to its
//! grandparent), trying each CAS once ([`OneTrySplit`]) or twice
//! ([`TwoTrySplit`], paper Algorithms 4 and 5). Under the paper's
//! independence assumption, two-try splitting does
//! `Θ(m (α(n, m/np) + log(np/m + 1)))` expected total work for `m`
//! operations on `p` threads (Theorem 5.1).
//!
//! # Quick start
//!
//! ```
//! use concurrent_dsu::Dsu;
//! use std::thread;
//!
//! let dsu: Dsu = Dsu::new(1000);
//! thread::scope(|s| {
//!     for t in 0..4 {
//!         let dsu = &dsu;
//!         s.spawn(move || {
//!             for i in (t..999).step_by(4) {
//!                 dsu.unite(i, i + 1);
//!             }
//!         });
//!     }
//! });
//! assert!(dsu.same_set(0, 999));
//! assert_eq!(dsu.set_count(), 1);
//! ```
//!
//! # Choosing a find policy
//!
//! [`Dsu`] is generic over a [`FindPolicy`]; the default, [`TwoTrySplit`],
//! has the paper's best work bound. [`OneTrySplit`] does one fewer CAS per
//! visited node (Theorem 5.2 gives it a slightly weaker bound);
//! [`NoCompaction`] never restructures and is the right choice when finds
//! are rare; [`Halving`] is the compaction Anderson & Woll used, included
//! for ablations (paper Section 3 argues it cannot beat splitting
//! concurrently); [`Compress`] is a concurrent two-pass path compression —
//! the variant paper Section 6 conjectures about, implemented here as the
//! future-work item.
//!
//! # Early termination
//!
//! [`Dsu::same_set_early`] and [`Dsu::unite_early`] implement the Section 6
//! variants (Algorithms 6 and 7) that interleave the two finds and walk only
//! the smaller current node, terminating as soon as the answer is known.
//!
//! # Batched ingestion
//!
//! Edges that arrive in bursts should go through
//! [`Dsu::unite_batch`] rather than a `unite` loop: a read-mostly filter
//! pass drops already-connected edges with early-termination same-set
//! walks, and the link pass CASes each survivor's root straight from the
//! word the filter observed — no re-traversal on the common path (see the
//! [`bulk`] module docs for the argument). On dense or Zipf-skewed edge
//! streams, where most edges become redundant, batching is markedly faster
//! than per-op dispatch:
//!
//! ```
//! use concurrent_dsu::Dsu;
//!
//! let dsu: Dsu = Dsu::new(100);
//! let burst: Vec<(usize, usize)> = (0..99).map(|i| (i, i + 1)).collect();
//! assert_eq!(dsu.unite_batch(&burst), 99);
//! assert_eq!(dsu.set_count(), 1);
//! ```
//!
//! Bursts over a DRAM-resident store (or duplicate-heavy streams) can
//! additionally be routed through the **ingestion planner**
//! ([`Dsu::unite_batch_planned`], the [`ingest`] module): duplicates are
//! dropped and the rest drains in block-local radix buckets, keeping each
//! gather wave's loads inside a resident index range. The planner is
//! opt-in (`DSU_BATCH_PLAN=1` flips the count-only default paths); see
//! [`ingest`] for when it pays and the exact verdict contract.
//!
//! # Hot-root cache sessions
//!
//! Threads whose operations keep landing on the same few sets can open a
//! [`cached`](Dsu::cached) session: a thread-private [`RootCache`] maps
//! elements to their last observed roots, and each find validates the
//! entry with one load instead of walking (falling back transparently
//! when a concurrent link demoted the root). Verdicts are identical to
//! the plain operations — the [`cache`] module docs give the argument —
//! so sessions, plain calls, and batches mix freely:
//!
//! ```
//! use concurrent_dsu::Dsu;
//!
//! let dsu: Dsu = Dsu::new(100);
//! let mut session = dsu.cached();
//! for i in 0..99 {
//!     session.unite(i, i + 1);
//! }
//! assert!(session.same_set(0, 99));
//! assert!(dsu.same_set(0, 99));
//! ```
//!
//! Whether the cache *pays* is workload- and machine-dependent — see the
//! "when does the root cache pay" section of the [`store`] module docs.
//! On the bench box it lost on every measured Zipf regime (the saved
//! loads were hardware-cache-hot), so treat a session as a hypothesis to
//! A/B on your workload, not a default.
//!
//! # Growing universes
//!
//! [`GrowableDsu`] adds `make_set` (paper Section 3 remark): elements can be
//! created concurrently with other operations, ids are generated on the fly
//! (Section 7 remark), and operations stay lock-free.
//!
//! # Keyed entity resolution
//!
//! Real consumers rarely have dense `0..n` elements — they have row keys,
//! strings, sparse 64-bit ids. [`KeyedDsu`] maps arbitrary
//! `K: Hash + Eq` keys to dense ids through a **lock-free sharded id
//! table** (CAS-claimed slots in doubling segments; entries never move)
//! and runs all set operations on a [`GrowableDsu`] underneath, replacing
//! the `RwLock<HashMap>` facade such systems usually deploy:
//!
//! ```
//! use concurrent_dsu::KeyedDsu;
//!
//! let dsu: KeyedDsu<String> = KeyedDsu::new();
//! dsu.merge_keys(&"alice@a.example".into(), &"al@b.example".into());
//! assert!(dsu.same_set(&"al@b.example".into(), &"alice@a.example".into()));
//! // Unseen keys are implicit singletons; queries never insert.
//! assert!(!dsu.same_set(&"alice@a.example".into(), &"mallory@c.example".into()));
//!
//! // Bursts resolve keys in one gather pass, then ride `unite_batch`:
//! let pairs = vec![("a".to_string(), "b".to_string()), ("b".into(), "c".into())];
//! assert_eq!(dsu.merge_keys_batch(&pairs), 2);
//! assert_eq!(dsu.key_count(), 5);
//! ```
//!
//! See the [`keyed`] module docs for the id-table protocol and the
//! layer-selection table (dense fixed → [`Dsu`], dense growing →
//! [`GrowableDsu`], keyed → [`KeyedDsu`]), and `docs/benchmarks.md` for
//! its measured cost against the lock-based facade.
//!
//! # Instrumentation
//!
//! Every operation has a `*_with` twin taking an [`OpStats`] sink that
//! counts loop iterations, reads, and CAS successes/failures into
//! caller-owned (typically thread-local) storage, so experiments can measure
//! *work* exactly as the paper defines it without slowing the default path.
//!
//! # Environment variables
//!
//! Every runtime knob in the crate, in one place. All are optional; unset
//! means the documented default. They are read at structure construction
//! (or first use), never per operation.
//!
//! | variable | read by | meaning |
//! |---|---|---|
//! | `DSU_SHARDS` | [`ShardSpec::auto`] (used by [`ShardedStore`] / [`ShardedSegmentedStore`]) | shard count for the sharded parent stores; rounded to a power of two, clamped to 256. Default: `available_parallelism` |
//! | `DSU_KEY_SHARDS` | [`KeyedDsu::new`] / [`KeyedDsu::with_seed`] | shard count for the keyed id table (same rounding). More shards shorten probe paths and spread claim traffic at the cost of base-segment memory. Default: `available_parallelism` |
//! | `DSU_CACHE_SLOTS` | `RootCache::default` | slot count of a hot-root cache session's direct-mapped table. Default: [`RootCache::DEFAULT_CAPACITY`] (512, 8 KB — L1-resident) |
//! | `DSU_BATCH_PLAN` | [`bulk::runtime_default_tuning`] | set to `1`/`true` to route count-only batch entry points through the ingestion planner ([`ingest`]); verdict-returning paths are unaffected. Default: off |
//! | `DSU_FAULT_SEED` | [`FaultPlan::from_env`] | seed for the fault-injection plan a [`FaultyStore`] runs; only consulted by fault-test binaries that opt in. Default: 0 |
//! | `DSU_FAULT_RATE` | [`FaultPlan::from_env`] | probability in `[0, 1]` of injecting a fault at each eligible store access. Default: 0.0 |
//! | `DSU_TUNER` | [`TunerMode::from_env`] (used by [`TunedDsu`] constructors) | `off` pins the paper-default variant, `auto` samples a prefix and dispatches to the [`DecisionTable`] winner, an explicit `<find>/<link>` tag (e.g. `halving/index`) forces that variant from construction. Unrecognized values degrade to `auto` with a one-time stderr warning ([`knob`]). Default: `auto` |
//! | `DSU_FLATTEN` | [`FlattenPolicy::from_env`] (used by [`Dsu`] / [`GrowableDsu`] constructors) | adaptive flatten-pass trigger consulted after every ingested batch: `off` never sweeps, `every=<k>` sweeps after each `k`-th batch, `hops=<x>` sweeps when a sampled mean tree depth exceeds `x`, `auto` = `hops=1.75`. Unrecognized values degrade to `auto` with a one-time stderr warning ([`knob`]). Default: `off` |
//! | `DSU_EPOCH_EVERY` | [`epoch::epoch_every_from_env`] (used by [`VersionedDsu`] constructors) | auto-snapshot cadence for [`VersionedDsu::ingest_batch`]: a positive integer `k` records an O(1) snapshot before every `k`-th batch (replacing the previous auto snapshot), `off`/`0` never does. Unrecognized values degrade to `off` with a one-time stderr warning ([`knob`]). Default: `off` |
//!
//! The `strict-sc` cargo feature (not an env var) restores the paper's
//! sequentially consistent orderings crate-wide; the `default-store-flat`
//! / `default-store-sharded` features retarget [`DefaultStore`] /
//! [`DefaultGrowableStore`]; `default-link-index` retargets
//! [`DefaultLink`] from the paper's randomized linking to index linking;
//! `prefetch` compiles software-prefetch intrinsics into the gather waves.

pub mod bulk;
pub mod cache;
pub mod epoch;
pub mod fault;
pub mod find;
pub mod flatten;
pub mod growable;
pub mod ingest;
pub mod keyed;
pub mod knob;
pub mod ops;
pub mod order;
pub mod stats;
pub mod store;
pub mod tune;
pub mod viz;

mod dsu;

pub use bulk::{BatchTuning, WaveDepth};
pub use cache::RootCache;
pub use dsu::{CachedHandle, Dsu};
pub use epoch::{
    BatchOutcome, Epoch, EpochFork, EpochReport, EpochStore, SegmentSnapshot, VersionedDsu,
    ENV_EPOCH_EVERY,
};
pub use fault::{BrokenStore, FaultPlan, FaultReport, FaultyStore, RetryBudget, TestWatchdog};
pub use find::{Compress, FindPolicy, Halving, NoCompaction, OneTrySplit, TwoTrySplit};
pub use flatten::{FlattenPolicy, FlattenTrigger};
pub use growable::{
    GrowableCachedHandle, GrowableDsu, GrowableStore, PackedSegmentedStore, SegmentedStore,
};
pub use ingest::{BatchPlan, PlanTuning};
pub use keyed::KeyedDsu;
pub use order::{
    HashOrder, IdOrder, IndexLink, LinkPolicy, PermutationOrder, RandomLink, RankLink,
};
pub use stats::{OpStats, ShardSkew, StatsSink};
pub use store::{
    DsuStore, FlatStore, PackedStore, ParentStore, RankedStore, ScanRun, ShardReport, ShardSpec,
    ShardedSegmentedStore, ShardedStore,
};
pub use tune::{
    DecisionTable, FindKind, LinkKind, TunedDsu, TunerMode, Variant, VariantDsu, WorkloadProfile,
};

/// The storage layout [`Dsu`] defaults to, selected at compile time by the
/// mutually exclusive `default-store-flat` / `default-store-sharded` cargo
/// features (neither: [`PackedStore`]). CI's test matrix builds the crate
/// once per layout so the whole suite runs on every store; explicit type
/// parameters (`Dsu<F, FlatStore>`) always override the default.
#[cfg(feature = "default-store-sharded")]
pub type DefaultStore = ShardedStore;
/// The storage layout [`Dsu`] defaults to (see the `default-store-*`
/// features; this build: flat).
#[cfg(all(feature = "default-store-flat", not(feature = "default-store-sharded")))]
pub type DefaultStore = FlatStore;
/// The storage layout [`Dsu`] defaults to (see the `default-store-*`
/// features; this build: packed, the fastest single-socket layout).
#[cfg(not(any(feature = "default-store-sharded", feature = "default-store-flat")))]
pub type DefaultStore = PackedStore;

/// The growable layout [`GrowableDsu`] defaults to — the growable twin of
/// [`DefaultStore`], following the same `default-store-*` features.
#[cfg(feature = "default-store-sharded")]
pub type DefaultGrowableStore = ShardedSegmentedStore;
/// The growable layout [`GrowableDsu`] defaults to (this build: flat).
#[cfg(all(feature = "default-store-flat", not(feature = "default-store-sharded")))]
pub type DefaultGrowableStore = SegmentedStore;
/// The growable layout [`GrowableDsu`] defaults to (this build: packed).
#[cfg(not(any(feature = "default-store-sharded", feature = "default-store-flat")))]
pub type DefaultGrowableStore = PackedSegmentedStore;

/// The link policy [`Dsu`] and [`GrowableDsu`] default to, selected at
/// compile time by the `default-link-index` cargo feature (unset:
/// [`RandomLink`], the paper's randomized linking). CI's variants cell
/// builds the crate once with the feature on so the whole suite runs under
/// index linking too; explicit type parameters
/// (`Dsu<F, S, IndexLink>`) always override the default. The axis and its
/// acyclicity contract live in the [`order`] module docs.
#[cfg(feature = "default-link-index")]
pub type DefaultLink = IndexLink;
/// The link policy [`Dsu`] and [`GrowableDsu`] default to (this build:
/// random — the paper's randomized linking; see `default-link-index`).
#[cfg(not(feature = "default-link-index"))]
pub type DefaultLink = RandomLink;

/// Convenient alias: the paper's headline configuration (two-try splitting).
pub type DsuTwoTry = Dsu<TwoTrySplit>;
/// Alias for the one-try splitting configuration (paper Algorithm 4).
pub type DsuOneTry = Dsu<OneTrySplit>;
/// Alias for the compaction-free configuration (paper Algorithm 1).
pub type DsuNoCompaction = Dsu<NoCompaction>;
/// Alias for the halving configuration (ablation; cf. paper Section 3).
pub type DsuHalving = Dsu<Halving>;
/// Alias for the two-pass compression configuration (the Section 6
/// conjecture, implemented as future work).
pub type DsuCompress = Dsu<Compress>;

/// Common interface for every concurrent union-find in this workspace
/// (this crate's [`Dsu`] and [`GrowableDsu`], and the baselines crate's
/// structures), so harnesses and applications can be generic over them.
///
/// All methods take `&self`: implementations must be safe to call from many
/// threads at once, and results must be linearizable.
pub trait ConcurrentUnionFind: Send + Sync {
    /// Number of elements currently in the universe.
    fn len(&self) -> usize;

    /// `true` if the universe is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` iff `x` and `y` are in the same set at the operation's
    /// linearization point.
    fn same_set(&self, x: usize, y: usize) -> bool;

    /// Unites the sets containing `x` and `y`. Returns `true` iff **this
    /// call** performed the link (at its linearization point the two sets
    /// were distinct and became one).
    fn unite(&self, x: usize, y: usize) -> bool;

    /// Unites along every edge of a burst; returns the number of edges that
    /// performed a link. The default implementation loops
    /// [`unite`](ConcurrentUnionFind::unite); [`Dsu`] and [`GrowableDsu`]
    /// override it with the filtered, word-seeded batch path (see the
    /// [`bulk`] module), so generic ingestion loops get the optimized path
    /// on the structures that have one.
    fn unite_batch(&self, edges: &[(usize, usize)]) -> usize {
        edges.iter().filter(|&&(x, y)| self.unite(x, y)).count()
    }

    /// [`unite_batch`](ConcurrentUnionFind::unite_batch) reusing a
    /// caller-owned (typically per-worker-thread) hot-root cache across
    /// calls, so an ingestion loop's hot endpoints stay memoized from one
    /// burst to the next — the [`cache`] module explains why acting on the
    /// (validated) entries is sound. [`RootCache`] is layout-agnostic, so
    /// the session state travels through this trait; structures without a
    /// cached path ignore the cache and fall back to their plain batch
    /// ingestion, which keeps generic pipelines (the graph crate's chunked
    /// workers) writable against the trait.
    ///
    /// The cache must only ever be used with **one structure**: its
    /// entries are observations of this instance's forest, and replaying
    /// them against another instance yields wrong results or panics (see
    /// the ownership note on [`RootCache`]). [`RootCache::clear`] resets a
    /// cache for reuse elsewhere.
    fn unite_batch_cached(&self, edges: &[(usize, usize)], cache: &mut RootCache) -> usize {
        let _ = cache;
        self.unite_batch(edges)
    }

    /// [`unite_batch`](ConcurrentUnionFind::unite_batch) routed through
    /// the ingestion planner ([`ingest`]): intra-batch duplicates dropped,
    /// the rest drained bucket by block-local bucket so each gather
    /// wave's loads stay index-local. Returns the number of successful
    /// links — which, like the final partition, is identical to unplanned
    /// ingestion (set union is confluent; see [`ingest`] for the per-edge
    /// verdict contract planned execution follows). Structures without a
    /// planner fall back to their plain batch path, so generic pipelines
    /// (the graph crate's chunked workers) can offer a planned variant
    /// against this trait.
    fn unite_batch_planned(&self, edges: &[(usize, usize)]) -> usize {
        self.unite_batch(edges)
    }

    /// Returns the root of the tree currently containing `x`. The result
    /// may be stale by the time the caller inspects it; `find(x) == find(y)`
    /// is *not* a linearizable same-set test — use
    /// [`same_set`](ConcurrentUnionFind::same_set).
    fn find(&self, x: usize) -> usize;
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn public_types_are_send_and_sync() {
        assert_send_sync::<Dsu<TwoTrySplit>>();
        assert_send_sync::<Dsu<OneTrySplit>>();
        assert_send_sync::<Dsu<NoCompaction>>();
        assert_send_sync::<Dsu<Halving>>();
        assert_send_sync::<Dsu<Compress>>();
        assert_send_sync::<GrowableDsu>();
    }

    #[test]
    fn trait_object_usable() {
        let dsu: Box<dyn ConcurrentUnionFind> = Box::new(Dsu::<TwoTrySplit>::new(4));
        assert!(dsu.unite(0, 1));
        assert!(dsu.same_set(0, 1));
        assert!(!dsu.is_empty());
        assert_eq!(dsu.len(), 4);
        let r = dsu.find(2);
        assert_eq!(r, 2);
        // The batch entry point dispatches through the trait too (here to
        // Dsu's optimized override).
        assert_eq!(dsu.unite_batch(&[(1, 2), (0, 2), (2, 3)]), 2);
        assert!(dsu.same_set(0, 3));
    }

    /// A minimal structure that only implements the required methods: the
    /// trait's default `unite_batch` must fall back to a `unite` loop.
    struct LoopOnly(Dsu<TwoTrySplit>);

    impl ConcurrentUnionFind for LoopOnly {
        fn len(&self) -> usize {
            self.0.len()
        }
        fn same_set(&self, x: usize, y: usize) -> bool {
            self.0.same_set(x, y)
        }
        fn unite(&self, x: usize, y: usize) -> bool {
            self.0.unite(x, y)
        }
        fn find(&self, x: usize) -> usize {
            self.0.find(x)
        }
    }

    #[test]
    fn default_unite_batch_loops_unite() {
        let dsu = LoopOnly(Dsu::new(5));
        assert_eq!(dsu.unite_batch(&[(0, 1), (1, 0), (3, 4)]), 2);
        assert!(dsu.same_set(3, 4));
    }
}

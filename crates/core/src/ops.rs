//! The concurrent set operations (paper Algorithms 2, 3, 6, 7), written
//! once, generically over the parent store, id order, and find policy, so
//! [`Dsu`](crate::Dsu) and [`GrowableDsu`](crate::GrowableDsu) share the
//! exact same verified code.
//!
//! ### Why the loops retry
//!
//! Both `SameSet` and `Unite` rest on two observations (due to Anderson &
//! Woll, restated in paper Section 3): once the two walks meet (`u == v`),
//! the inputs are in the same set now and forever; and if `u < v` and `u`
//! is a root, the inputs are — at that instant — in different sets. The
//! complication relative to the sequential code is that a node that was a
//! root when read can stop being one a moment later, so the operations
//! re-find and re-check until one of the two certainties holds.

use crate::find::FindPolicy;
use crate::order::LinkPolicy;
use crate::stats::StatsSink;
use crate::store::ParentStore;

/// Paper Algorithm 2: `SameSet(x, y)`.
///
/// Returns `true` iff `x` and `y` are in the same set at the linearization
/// point (the last root read performed by the final `find(v)` or the
/// `u.parent` re-read).
pub fn same_set<F, P, S>(store: &P, x: usize, y: usize, stats: &mut S) -> bool
where
    F: FindPolicy,
    P: ParentStore + ?Sized,
    S: StatsSink,
{
    stats.op_start();
    let mut u = x;
    let mut v = y;
    loop {
        u = F::find(store, u, stats).0;
        v = F::find(store, v, stats).0;
        if u == v {
            return true;
        }
        // u was a root during its find; if it still is, u and v were
        // simultaneously roots of different trees.
        let up = store.load_parent(u);
        stats.read();
        if up == u {
            return false;
        }
    }
}

/// Paper Algorithm 3: `Unite(x, y)`.
///
/// Returns `true` iff this call performed the link (the sets were distinct
/// at the linearization point and this CAS merged them), `false` if the
/// inputs were already together.
///
/// `record_link(child, parent)` is invoked after each successful link CAS;
/// the wrappers use it to maintain the union-forest snapshot and the live
/// set count.
pub fn unite<F, L, P, S>(
    store: &P,
    x: usize,
    y: usize,
    stats: &mut S,
    record_link: impl Fn(usize, usize),
) -> bool
where
    F: FindPolicy,
    L: LinkPolicy,
    P: ParentStore + ?Sized,
    S: StatsSink,
{
    stats.op_start();
    let mut u = x;
    let mut v = y;
    loop {
        let (ru, wu) = F::find(store, u, stats);
        let (rv, wv) = F::find(store, v, stats);
        u = ru;
        v = rv;
        if u == v {
            return false;
        }
        // Link the root with the smaller linking key under the other. The
        // keys come from the words the finds already loaded (free in the
        // packed layout; under the paper's `RandomLink` this is exactly
        // the store's random order). The CAS expects the exact word the
        // key was computed from, so it fails iff the candidate stopped
        // being a root — or, under rank linking, changed rank — since the
        // comparison, in which case we re-find and retry.
        if L::key(store, u, wu) < L::key(store, v, wv) {
            if store.cas_from(u, wu, v) {
                stats.link_ok();
                record_link(u, v);
                L::on_linked(store, wu, v);
                return true;
            }
            stats.link_fail();
        } else {
            if store.cas_from(v, wv, u) {
                stats.link_ok();
                record_link(v, u);
                L::on_linked(store, wv, u);
                return true;
            }
            stats.link_fail();
        }
        stats.cas_retry();
    }
}

/// Paper Algorithm 6: `SameSet` with early termination (Section 6).
///
/// The two find paths are walked concurrently, always stepping from the
/// *smaller* current node, so the operation touches only one path's worth
/// of nodes. The compaction step per iteration is the policy's
/// [`advance`](FindPolicy::advance) (two-try splitting in the paper's
/// listing; one-try executes the body once; no-compaction just walks).
///
/// The early-termination argument compares nodes *before* loading the
/// words it acts on, which is only sound when linking keys are immutable;
/// under a mutable-key policy ([`LinkPolicy::MUTABLE_KEYS`], i.e. rank
/// linking) this falls back to the standard [`same_set`] — a compile-time
/// branch, free for the immutable policies.
pub fn same_set_early<F, L, P, S>(store: &P, x: usize, y: usize, stats: &mut S) -> bool
where
    F: FindPolicy,
    L: LinkPolicy,
    P: ParentStore + ?Sized,
    S: StatsSink,
{
    if L::MUTABLE_KEYS {
        return same_set::<F, P, S>(store, x, y, stats);
    }
    stats.op_start();
    let mut u = x;
    let mut v = y;
    loop {
        if u == v {
            return true;
        }
        if L::precedes(store, v, u) {
            std::mem::swap(&mut u, &mut v);
        }
        // u < v here. If u is a root it cannot be in v's tree (roots have
        // the largest key of their tree), so the sets are distinct.
        let up = store.load_parent(u);
        stats.read();
        if up == u {
            return false;
        }
        u = F::advance(store, u, stats);
    }
}

/// Paper Algorithm 7: `Unite` with early termination (Section 6).
///
/// Like [`same_set_early`], but when the smaller current node turns out to
/// be a root it is immediately linked under the other current node (which
/// need not be a root — linking under any larger-key node preserves every
/// invariant). Falls back to the standard [`unite`] under a mutable-key
/// policy, for the reason documented on [`same_set_early`].
pub fn unite_early<F, L, P, S>(
    store: &P,
    x: usize,
    y: usize,
    stats: &mut S,
    record_link: impl Fn(usize, usize),
) -> bool
where
    F: FindPolicy,
    L: LinkPolicy,
    P: ParentStore + ?Sized,
    S: StatsSink,
{
    if L::MUTABLE_KEYS {
        return unite::<F, L, P, S>(store, x, y, stats, record_link);
    }
    stats.op_start();
    let mut u = x;
    let mut v = y;
    loop {
        if u == v {
            return false;
        }
        if L::precedes(store, v, u) {
            std::mem::swap(&mut u, &mut v);
        }
        if store.cas_parent(u, u, v) {
            stats.link_ok();
            record_link(u, v);
            return true;
        }
        // u was not a root (or just stopped being one): compact and climb.
        u = F::advance(store, u, stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find::{Halving, NoCompaction, OneTrySplit, TwoTrySplit};
    use crate::order::{IdOrder, IndexLink, PermutationOrder, RandomLink, RankLink};
    use crate::store::{FlatStore, RankedStore};

    fn fixture(n: usize, seed: u64) -> (FlatStore, PermutationOrder) {
        // Same seed for both: the store's embedded order (which `unite`
        // links by) and the standalone order the assertions consult are
        // the same permutation.
        (FlatStore::with_seed(n, seed), PermutationOrder::new(n, seed))
    }

    fn run_all_policies(
        test: impl Fn(
            &dyn Fn(&FlatStore, usize, usize) -> bool,
            &dyn Fn(&FlatStore, usize, usize) -> bool,
        ),
    ) {
        macro_rules! with_policy {
            ($f:ty) => {
                test(
                    &|s, x, y| unite::<$f, RandomLink, _, _>(s, x, y, &mut (), |_, _| {}),
                    &|s, x, y| same_set::<$f, _, _>(s, x, y, &mut ()),
                );
                test(
                    &|s, x, y| unite_early::<$f, RandomLink, _, _>(s, x, y, &mut (), |_, _| {}),
                    &|s, x, y| same_set_early::<$f, RandomLink, _, _>(s, x, y, &mut ()),
                );
            };
        }
        with_policy!(NoCompaction);
        with_policy!(OneTrySplit);
        with_policy!(TwoTrySplit);
        with_policy!(Halving);
    }

    #[test]
    fn unite_then_same_set_all_policies() {
        run_all_policies(|unite_fn, same_fn| {
            let (store, _order) = fixture(8, 11);
            assert!(!same_fn(&store, 0, 5));
            assert!(unite_fn(&store, 0, 5));
            assert!(same_fn(&store, 0, 5));
            assert!(!unite_fn(&store, 5, 0), "re-unite returns false");
            assert!(unite_fn(&store, 5, 6));
            assert!(same_fn(&store, 0, 6));
            assert!(!same_fn(&store, 0, 7));
        });
    }

    #[test]
    fn self_operations() {
        run_all_policies(|unite_fn, same_fn| {
            let (store, _order) = fixture(4, 3);
            assert!(same_fn(&store, 2, 2));
            assert!(!unite_fn(&store, 2, 2));
        });
    }

    #[test]
    fn links_always_point_id_upward() {
        // Lemma 3.1: if x is not a root then x < x.parent in the random
        // order. Exercise all policies on a merge-everything workload.
        run_all_policies(|unite_fn, _| {
            let (store, order) = fixture(64, 99);
            for i in 0..63 {
                unite_fn(&store, i, i + 1);
            }
            for x in 0..64 {
                let p = store.load_parent(x);
                if p != x {
                    assert!(order.less(x, p), "child id must be below parent id");
                }
            }
        });
    }

    #[test]
    fn record_link_sees_every_link_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let (store, order) = fixture(32, 5);
        let links = AtomicUsize::new(0);
        for i in 0..31 {
            unite::<TwoTrySplit, RandomLink, _, _>(&store, i, i + 1, &mut (), |child, parent| {
                assert!(order.less(child, parent));
                links.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(links.load(Ordering::Relaxed), 31);
    }

    #[test]
    fn early_termination_agrees_with_standard() {
        // Interleave unites built by the standard algorithm with queries by
        // the early-termination one (and vice versa) — they share the store.
        let (store, _order) = fixture(16, 21);
        let mut s = ();
        assert!(unite::<TwoTrySplit, RandomLink, _, _>(&store, 0, 1, &mut s, |_, _| {}));
        assert!(same_set_early::<TwoTrySplit, RandomLink, _, _>(&store, 0, 1, &mut s));
        assert!(unite_early::<TwoTrySplit, RandomLink, _, _>(&store, 1, 2, &mut s, |_, _| {}));
        assert!(same_set::<TwoTrySplit, _, _>(&store, 0, 2, &mut s));
        assert!(!same_set_early::<TwoTrySplit, RandomLink, _, _>(&store, 0, 15, &mut s));
    }

    #[test]
    fn stats_account_finds_and_links() {
        let (store, _order) = fixture(8, 2);
        let mut stats = crate::OpStats::default();
        unite::<OneTrySplit, RandomLink, _, _>(&store, 0, 1, &mut stats, |_, _| {});
        assert_eq!(stats.ops, 1);
        assert_eq!(stats.finds, 2);
        assert_eq!(stats.links_ok, 1);
        assert_eq!(stats.links_fail, 0);
        same_set::<OneTrySplit, _, _>(&store, 0, 1, &mut stats);
        assert_eq!(stats.ops, 2);
        assert_eq!(stats.finds, 4);
    }

    #[test]
    fn index_linking_links_index_upward() {
        // IndexLink ignores the store's random ids entirely: after any
        // sequence of unites, every non-root's parent has a larger index.
        let (store, _order) = fixture(64, 99);
        for i in 0..63 {
            unite::<TwoTrySplit, IndexLink, _, _>(&store, i, i + 1, &mut (), |c, p| {
                assert!(c < p, "index linking must point index-upward");
            });
        }
        for x in 0..64 {
            let p = store.load_parent(x);
            if p != x {
                assert!(x < p, "child index must be below parent index");
            }
        }
        // The early variants use the same order.
        let (store2, _) = fixture(8, 5);
        assert!(unite_early::<TwoTrySplit, IndexLink, _, _>(&store2, 6, 1, &mut (), |c, p| {
            assert!(c < p);
        }));
        assert!(same_set_early::<TwoTrySplit, IndexLink, _, _>(&store2, 1, 6, &mut ()));
    }

    #[test]
    fn rank_linking_bumps_ties_and_bounds_height() {
        // A union chain on the ranked layout: rank linking must produce a
        // forest whose observed (rank, index) keys strictly increase along
        // parent paths, and at least one tie bump must have fired.
        let store = RankedStore::with_seed(64, 7);
        for i in 0..63 {
            unite::<TwoTrySplit, RankLink, _, _>(&store, i, i + 1, &mut (), |_, _| {});
        }
        let mut bumped = false;
        for x in 0..64usize {
            let wx = store.load_word(x);
            let p = RankedStore::parent_of(wx);
            bumped |= RankedStore::rank_of(store.load_word(x)) > 0;
            if p != x {
                let wp = store.load_word(p);
                assert!(
                    (RankedStore::rank_of(wx), x) < (RankedStore::rank_of(wp), p),
                    "observed rank keys must increase along paths"
                );
            }
        }
        assert!(bumped, "63 sequential unites must bump at least one rank");
        assert!(same_set::<TwoTrySplit, _, _>(&store, 0, 63, &mut ()));
    }

    #[test]
    fn rank_linking_on_rankless_layouts_degenerates_to_index() {
        // FlatStore's words carry no rank, so RankLink's keys all tie and
        // the index tie-break decides: same links as IndexLink.
        let (store, _order) = fixture(32, 13);
        for i in 0..31 {
            unite::<TwoTrySplit, RankLink, _, _>(&store, i, i + 1, &mut (), |c, p| {
                assert!(c < p, "rank-less rank linking must fall back to index order");
            });
        }
    }

    #[test]
    fn mutable_key_early_ops_fall_back_to_standard() {
        // Under RankLink the early entry points must behave exactly like
        // the standard ops (same verdicts, same counters shape).
        let store = RankedStore::with_seed(16, 3);
        let mut stats = crate::OpStats::default();
        assert!(unite_early::<TwoTrySplit, RankLink, _, _>(&store, 0, 1, &mut stats, |_, _| {}));
        assert_eq!(stats.finds, 2, "fallback runs the standard two-find unite");
        assert!(same_set_early::<TwoTrySplit, RankLink, _, _>(&store, 0, 1, &mut stats));
        assert!(!same_set_early::<TwoTrySplit, RankLink, _, _>(&store, 0, 15, &mut stats));
    }
}

//! Batched edge ingestion: `unite_batch` (the bulk counterpart of `unite`).
//!
//! Applications that maintain connected components rarely insert one edge at
//! a time — edges arrive in bursts (a scanned adjacency chunk, a network
//! batch, a Borůvka round). Dispatching each edge through a full `Unite`
//! wastes work on two fronts:
//!
//! 1. **Serialized loads.** Each operation's find is a dependent pointer
//!    chase, and a per-op loop starts the next edge's first load only
//!    after the previous edge retires. A batch knows every future
//!    endpoint, so the filter pass front-loads each group's parent words
//!    in **gather waves** of mutually independent loads the memory system
//!    overlaps — memory-level parallelism per-op dispatch cannot express.
//!    [`WaveDepth`] selects how many parent levels are front-loaded (two
//!    or three); with the `prefetch` feature the next group's endpoint
//!    words are additionally software-prefetched one wave ahead, so by the
//!    time that wave's gather issues, its lines are already inbound.
//! 2. **Redundant work per edge.** The walks then run *seeded*: the word
//!    in hand is carried from step to step (one fresh load per visited
//!    node, where the standalone find policies pay two), same-set edges
//!    are dropped with no validation re-read and no CAS, and each
//!    surviving edge's link CAS is issued against the exact root word the
//!    filter observed — no re-traversal between deciding and linking.
//!    Callers can additionally thread a [`RootCache`] through the filter
//!    ([`unite_batch_sink_tuned`], [`Dsu::cached`](crate::Dsu::cached),
//!    [`unite_batch_cached`](crate::ConcurrentUnionFind::unite_batch_cached)):
//!    a memoized endpoint re-resolves with a single validated load of its
//!    cached root, and even that load rides the overlapped wave (the
//!    endpoint's wave-1 gather slot loads the *root's* word instead of the
//!    endpoint's). This is deliberately **opt-in**, not the `unite_batch`
//!    default — see the measured negative on [`unite_batch_sink`].
//!
//! `unite_batch` structures this as a **filter pass** (gather waves, then
//! seeded root walks, recording for each survivor the `(root, word,
//! target)` observation that nominated the link) and a **link pass** (one
//! seeded CAS per survivor, falling back to the full retry loop only when
//! another link moved the root first).
//!
//! # Ingestion-plan selection
//!
//! On top of the wave structure, [`BatchTuning::planned`] routes a batch
//! through the **ingestion planner** ([`ingest`](crate::ingest)): dedup
//! intra-batch duplicate edges, radix-partition the rest into power-of-two
//! index buckets by endpoint high bits, and drain one bucket at a time
//! through these gather waves — so each wave's loads land in a small,
//! resident index range instead of sampling the whole universe — with
//! cross-bucket edges deferred to a spillover pass. Pick it the way the
//! [`store`](crate::store) docs pick layouts:
//!
//! * **plan when the store is much larger than the LLC** (`n ≥ 2^22`) and
//!   batches are big enough that a bucket's edges re-touch its block, or
//!   when the stream is duplicate-heavy (each drop saves two root walks);
//! * **don't plan cache-resident stores or tiny batches** — the hash probe
//!   and counting sort per edge buy no locality there
//!   (`BENCH_PR5.json` records the measured verdict either way).
//!
//! Planning reorders execution, which reorders which edge of a cycle
//! reports the link — the planner docs ([`ingest`](crate::ingest)) state
//! the exact verdict contract. Count-only callers observe no difference;
//! the `DSU_BATCH_PLAN` environment variable flips their default path to
//! planned ([`runtime_default_tuning`]).
//!
//! # Why the seeded CAS is still linearizable
//!
//! A recorded survivor `(r, w, v)` has `key(r) < key(v)` under the batch's
//! [`LinkPolicy`], with `r`'s key computed from the very
//! word `w` the CAS expects (immutable outright for random/index linking;
//! frozen by the word-exact CAS for rank linking — a concurrent rank bump
//! changes the word and fails the CAS). If the link CAS succeeds, `r` was
//! still a root — and a root has the largest observed key of its tree
//! (Lemma 3.1's invariant, which every policy preserves; see
//! [`order`](crate::order)), so `v`, with its larger key, cannot be inside
//! `r`'s tree: the two sets were distinct at the CAS, which is therefore a
//! correct link at its linearization point, exactly the argument behind
//! Algorithm 7.
//! Any staleness (the root moved, the sets merged meanwhile) makes the CAS
//! fail, and the fallback loop re-establishes the answer from fresh reads.
//! A hot-root cache entry adds no new kind of staleness: it is only an
//! older observation whose validation load *is* the find's linearization
//! point (see the [`cache`](crate::cache) module docs for the argument).
//! Consequently a single-threaded `unite_batch` returns, edge by edge, the
//! *same* booleans a one-at-a-time `unite` sequence would — the property
//! `tests/batch_semantics.rs` and `tests/cache_semantics.rs` check
//! exhaustively. (The union *forest* may shape differently than per-op's:
//! a batch link can attach a root under a node an earlier link of the same
//! wave already demoted — Algorithm 7's "link under any larger-id node"
//! case. The partition, the verdicts, and Lemma 3.1's id ordering are
//! unaffected.)
//!
//! The batch path's climb always compacts by *seeded one-try splitting*
//! (the carried word doubles as the CAS expectation), independent of the
//! structure's [`FindPolicy`](crate::find::FindPolicy): compaction is a
//! performance-only effect — it never moves a node out of its set and
//! never changes a root — so no operation's result depends on it, and the
//! splitting step is the one whose operands the filter already holds.

use crate::cache::RootCache;
use crate::ingest::{BatchPlan, PlanTuning};
use crate::order::LinkPolicy;
use crate::stats::StatsSink;
use crate::store::ParentStore;

/// Edges per gather wave (one filter-then-link round). Each wave issues a
/// group's parent-word loads back to back; the loads are mutually
/// independent, so the memory system overlaps the misses — the
/// memory-level parallelism a per-op `unite` loop cannot express, because
/// each operation's find chain is a dependent pointer chase. 128 edges
/// keeps the wave's scratch a few KB (L1-resident) while giving the
/// hardware far more outstanding misses than it can retire; empirically
/// (A/B on the Zipf ingestion workload, store larger than cache) 128 beat
/// 16/32/64 and 256 on the benchmark host.
pub const GATHER: usize = 128;

/// How many parent levels a gather wave front-loads before the seeded
/// walks start (the `cache_ab` example sweeps the two settings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WaveDepth {
    /// Front-load each endpoint's word and its parent's word (the PR 2
    /// shape): walks start with one unrolled step in hand. The default:
    /// on the tracked Zipf ingestion workload the third wave measured
    /// 0.93–0.99x (a consistent slight loss) on the bench host — at all
    /// sizes and thread counts, and in deep-forest (`m ≥ n`) probes too —
    /// because splitting keeps almost every endpoint within the first two
    /// levels, so wave 3 adds ~45% more gather loads to save a serial
    /// tail that is already only ~2% of reads (`BENCH_PR4.json`
    /// counters).
    #[default]
    Two,
    /// Additionally front-load the grandparent's word, unrolling a second
    /// walk step. A candidate only where paths regularly exceed two hops
    /// *and* memory latency dwarfs the extra wave's cost — unverified on
    /// the 1-vCPU bench box (every measured regime lost slightly);
    /// re-evaluate on real multi-core hardware (ROADMAP) before
    /// defaulting to it.
    Three,
}

/// Tuning knobs for the batch path. `Default` is the measured-best
/// configuration; the A/B examples construct explicit variants.
///
/// # Example
///
/// ```
/// use concurrent_dsu::bulk::{BatchTuning, WaveDepth};
/// use concurrent_dsu::ingest::PlanTuning;
///
/// let t = BatchTuning::new().wave_depth(WaveDepth::Three).planned(PlanTuning::new());
/// assert_eq!(t.wave_depth, WaveDepth::Three);
/// assert!(t.planner.is_some());
/// assert_eq!(BatchTuning::default().wave_depth, WaveDepth::Two);
/// assert!(BatchTuning::default().planner.is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchTuning {
    /// Parent levels front-loaded per gather wave.
    pub wave_depth: WaveDepth,
    /// Route the batch through the ingestion planner first
    /// ([`ingest`](crate::ingest): intra-batch dedup + radix-bucketed
    /// waves + spillover pass). `None` (the default) feeds the edges to
    /// the gather waves in their original order; `Some` executes the
    /// deterministic plan order instead — see the verdict-semantics
    /// section of the [`ingest`](crate::ingest) module docs.
    pub planner: Option<PlanTuning>,
}

impl BatchTuning {
    /// The default tuning (same as `Default::default()`, usable in const
    /// contexts).
    pub const fn new() -> Self {
        BatchTuning { wave_depth: WaveDepth::Two, planner: None }
    }

    /// Replaces the wave depth.
    pub fn wave_depth(mut self, depth: WaveDepth) -> Self {
        self.wave_depth = depth;
        self
    }

    /// Routes the batch through the ingestion planner with `plan`.
    pub fn planned(mut self, plan: PlanTuning) -> Self {
        self.planner = Some(plan);
        self
    }
}

/// The tuning the count-only default entry points
/// ([`Dsu::unite_batch`](crate::Dsu::unite_batch),
/// [`GrowableDsu::unite_batch`](crate::GrowableDsu::unite_batch)) run
/// with: wave depth two, and the planner switched by the `DSU_BATCH_PLAN`
/// environment variable ([`ingest::env_planner`](crate::ingest::env_planner)).
/// Planning changes none of what those entry points report — link counts
/// and the final partition are order-invariant — so the env knob lets a
/// deployment (or a CI matrix cell) flip the default ingestion path
/// without a code change. Verdict-reporting entry points
/// ([`Dsu::unite_batch_results`](crate::Dsu::unite_batch_results)) ignore
/// it and keep the original-order contract.
pub fn runtime_default_tuning() -> BatchTuning {
    BatchTuning { wave_depth: WaveDepth::Two, planner: crate::ingest::env_planner() }
}

/// The climb at the heart of the filter: walk from `u` — whose word `wu`
/// the caller already holds — to a node observed as a root, compacting by
/// *seeded splitting*: each step probes the grandparent with the
/// iteration's single load and tries to swing `u`'s parent to it, CASing
/// against the carried word. One load per visited node (the probe doubles
/// as the next carried word), where the standalone find policies pay two.
///
/// The carried word can be stale under concurrency; that is harmless. A
/// stale parent still names a same-set node of strictly larger id (every
/// value a cell ever holds does, Lemma 3.1), so the climb stays in-set and
/// makes progress; a stale compaction CAS just fails; and a stale "root"
/// observation is caught by whichever CAS the caller issues against the
/// returned word.
fn find_from<P, S>(store: &P, mut u: usize, mut wu: P::Word, stats: &mut S) -> (usize, P::Word)
where
    P: ParentStore + ?Sized,
    S: StatsSink,
{
    loop {
        stats.loop_iter();
        let z = P::parent_of(wu);
        if z == u {
            return (u, wu);
        }
        let wz = store.load_word(z);
        stats.read();
        let w = P::parent_of(wz);
        if z != w {
            if store.cas_from(u, wu, w) {
                stats.compact_cas_ok();
            } else {
                stats.compact_cas_fail();
            }
        }
        u = z;
        wu = wz;
    }
}

/// Resolves one endpoint to its observed root given the gather waves'
/// words: `wx` is `x`'s word, `wp` the word of `parent(wx)`, and — at
/// [`WaveDepth::Three`] — `wpp` the word of `parent(wp)`. Each preloaded
/// level unrolls one climb step against words already in hand; with
/// compaction keeping almost every node within two hops of its root, most
/// endpoints resolve here without issuing a single serial load, and the
/// remainder falls through to [`find_from`].
#[inline]
fn resolve<P, S>(
    store: &P,
    x: usize,
    wx: P::Word,
    wp: P::Word,
    wpp: Option<P::Word>,
    stats: &mut S,
) -> (usize, P::Word)
where
    P: ParentStore + ?Sized,
    S: StatsSink,
{
    stats.loop_iter();
    let z = P::parent_of(wx);
    if z == x {
        return (x, wx);
    }
    let w = P::parent_of(wp);
    if z != w {
        if store.cas_from(x, wx, w) {
            stats.compact_cas_ok();
        } else {
            stats.compact_cas_fail();
        }
    }
    let Some(wpp) = wpp else {
        return find_from(store, z, wp, stats);
    };
    // Third-level unroll: [`find_from`]'s first iteration at `z` with its
    // grandparent load replaced by the wave-3 word.
    stats.loop_iter();
    if w == z {
        return (z, wp);
    }
    let w2 = P::parent_of(wpp);
    if w != w2 {
        if store.cas_from(z, wp, w2) {
            stats.compact_cas_ok();
        } else {
            stats.compact_cas_fail();
        }
    }
    find_from(store, w, wpp, stats)
}

/// Resolves the endpoint whose wave-1 slot was seeded from the hot-root
/// cache: `r` is the cached root, `w` the wave-1 word loaded *from `r`*.
/// A passing validation (still a root) costs nothing beyond that
/// overlapped load; a failed one falls back to a fresh seeded walk from
/// the node itself (the gather loaded the stale root's words, not the
/// node's). Either way the cache ends up holding the current root.
fn resolve_seeded<P, S>(
    store: &P,
    cache: &mut RootCache,
    node: usize,
    r: usize,
    w: P::Word,
    stats: &mut S,
) -> (usize, P::Word)
where
    P: ParentStore + ?Sized,
    S: StatsSink,
{
    if P::parent_of(w) == r {
        stats.cache_hit();
        return (r, w); // entry already present and correct
    }
    stats.cache_stale();
    let wx = store.load_word(node);
    stats.read();
    let (root, word) = find_from(store, node, wx, stats);
    cache.insert(node, root);
    (root, word)
}

/// Retry loop for survivors whose seeded CAS lost a race: paper
/// Algorithm 3's loop (re-find both roots, link the smaller, retry on CAS
/// failure), built on the word-carrying climb. No `op_start` — the edge
/// was already counted by its filter.
fn unite_from<L, P, S>(
    store: &P,
    mut u: usize,
    mut v: usize,
    stats: &mut S,
    record_link: impl Fn(usize, usize),
) -> bool
where
    L: LinkPolicy,
    P: ParentStore + ?Sized,
    S: StatsSink,
{
    loop {
        let wu = store.load_word(u);
        let wv = store.load_word(v);
        stats.read();
        stats.read();
        let (ru, wru) = find_from(store, u, wu, stats);
        let (rv, wrv) = find_from(store, v, wv, stats);
        if ru == rv {
            return false;
        }
        let (child, wc, parent) = if L::key(store, ru, wru) < L::key(store, rv, wrv) {
            (ru, wru, rv)
        } else {
            (rv, wrv, ru)
        };
        if store.cas_from(child, wc, parent) {
            stats.link_ok();
            record_link(child, parent);
            L::on_linked(store, wc, parent);
            return true;
        }
        stats.link_fail();
        stats.cas_retry();
        // The loser's root moved: restart the finds from the roots just
        // observed (they are ancestors of the originals, so nothing below
        // them needs re-walking).
        u = ru;
        v = rv;
    }
}

/// Batched `unite` over `edges` with explicit [`BatchTuning`] and an
/// optional caller-owned hot-root cache (`None` disables memoization — the
/// cache-off arm of the A/B). Reports each edge's outcome (its index and
/// whether *this batch* performed the link) into `outcome`; returns the
/// number of successful links.
///
/// Processes the slice in [`GATHER`]-sized waves: gather the group's
/// parent-word levels (wave-1 slots of cached endpoints load the cached
/// root's word instead — the validation load, overlapped with everything
/// else), software-prefetch the *next* group's endpoints (`prefetch`
/// feature), filter every edge (read-mostly — same-set drops cost no link
/// CAS), then link the group's survivors from their recorded observations.
/// Outcomes are reported exactly once per edge but *not* in index order
/// (same-set edges report during the filter step of their wave).
pub fn unite_batch_sink_tuned<L, P, S>(
    store: &P,
    edges: &[(usize, usize)],
    tuning: BatchTuning,
    cache: Option<&mut RootCache>,
    stats: &mut S,
    record_link: impl Fn(usize, usize),
    outcome: impl FnMut(usize, bool),
) -> usize
where
    L: LinkPolicy,
    P: ParentStore + ?Sized,
    S: StatsSink,
{
    if tuning.planner.is_some() {
        return batch_planned::<L, P, S>(store, edges, tuning, cache, stats, record_link, outcome);
    }
    batch_unplanned::<L, P, S>(store, edges, tuning, cache, stats, record_link, outcome)
}

/// The unplanned batch dispatcher — two monomorphic loops rather than one
/// cache-optional loop: threading `Option<&mut RootCache>` through every
/// endpoint taxed the cache-off filter ~3x on the quick ingestion shape
/// (per-endpoint Option checks, target bookkeeping, and an outlined
/// resolve), and the cache-off path is the default everyone pays.
/// (Separate from [`unite_batch_sink_tuned`] so the planned loop can call
/// it per segment without re-entering the planner dispatch, which would
/// monomorphize without bound.)
fn batch_unplanned<L, P, S>(
    store: &P,
    edges: &[(usize, usize)],
    tuning: BatchTuning,
    cache: Option<&mut RootCache>,
    stats: &mut S,
    record_link: impl Fn(usize, usize),
    outcome: impl FnMut(usize, bool),
) -> usize
where
    L: LinkPolicy,
    P: ParentStore + ?Sized,
    S: StatsSink,
{
    match cache {
        None => batch_plain::<L, P, S>(store, edges, tuning, stats, record_link, outcome),
        Some(cache) => {
            batch_cached::<L, P, S>(store, edges, tuning, cache, stats, record_link, outcome)
        }
    }
}

/// The planned batch loop: build the [`BatchPlan`] (dedup + radix
/// partition — no parent word touched), then drain each planned segment —
/// the block-local buckets in ascending order, the cross-bucket spillover
/// last — through the unplanned gather-wave loop, so every segment's loads
/// land in one small index range. Dropped duplicates report `false` after
/// the segments drain (their first occurrence has executed by then, which
/// is what justifies the verdict — see [`ingest`](crate::ingest)). Each
/// dropped edge still counts as one operation, so `OpStats::ops` keeps
/// meaning "edges ingested" across planned and unplanned runs.
fn batch_planned<L, P, S>(
    store: &P,
    edges: &[(usize, usize)],
    tuning: BatchTuning,
    mut cache: Option<&mut RootCache>,
    stats: &mut S,
    record_link: impl Fn(usize, usize),
    mut outcome: impl FnMut(usize, bool),
) -> usize
where
    L: LinkPolicy,
    P: ParentStore + ?Sized,
    S: StatsSink,
{
    let plan = BatchPlan::build(edges, tuning.planner.expect("routed here by Some planner"));
    stats.dup_edges_dropped(plan.dup_edges());
    stats.plan_buckets(plan.bucket_count());
    stats.spill_edges(plan.spill_edges());
    let inner = BatchTuning { planner: None, ..tuning };
    let mut links = 0;
    for (segment, orig) in plan.segments() {
        links += batch_unplanned::<L, P, _>(
            store,
            segment,
            inner,
            cache.as_deref_mut(),
            stats,
            &record_link,
            |local, linked| outcome(orig[local], linked),
        );
    }
    for &i in plan.dropped() {
        stats.op_start();
        outcome(i, false);
    }
    links
}

/// Nominates the link direction for two distinct observed roots: the
/// smaller-key root (under the batch's [`LinkPolicy`]) goes under the
/// other, the same choice `Unite` makes (index breaks ties). Unlike
/// `SameSet` (paper Algorithm 2), no validation re-read happens at
/// nomination: the filter does not claim the sets are distinct, it only
/// nominates a link for the link pass, whose CAS against the recorded word
/// is the validation (see the module docs).
#[inline]
fn nominate<L, P>(
    store: &P,
    ru: usize,
    wru: P::Word,
    rv: usize,
    wrv: P::Word,
) -> (usize, P::Word, usize)
where
    L: LinkPolicy,
    P: ParentStore + ?Sized,
{
    if L::key(store, ru, wru) < L::key(store, rv, wrv) {
        (ru, wru, rv)
    } else {
        (rv, wrv, ru)
    }
}

/// The link pass over one group's survivors: one seeded CAS per survivor
/// on the common path, the full retry loop on a lost race.
fn link_survivors<L, P, S>(
    store: &P,
    survivors: &[(usize, usize, P::Word, usize)],
    stats: &mut S,
    record_link: &impl Fn(usize, usize),
    outcome: &mut impl FnMut(usize, bool),
) -> usize
where
    L: LinkPolicy,
    P: ParentStore + ?Sized,
    S: StatsSink,
{
    let mut links = 0;
    for &(i, root, word, under) in survivors {
        let linked = if store.cas_from(root, word, under) {
            stats.link_ok();
            record_link(root, under);
            L::on_linked(store, word, under);
            true
        } else {
            stats.link_fail();
            stats.cas_retry();
            unite_from::<L, P, S>(store, root, under, stats, record_link)
        };
        links += linked as usize;
        outcome(i, linked);
    }
    links
}

/// Software-prefetch of group `g + 1`'s endpoint words, issued while group
/// `g`'s gather loads are still outstanding: by the time that wave's
/// gather issues, its lines are inbound. `lens` maps each endpoint to the
/// cell its wave-1 slot will actually load (identity for the plain loop;
/// the cached loop substitutes the endpoint's cached root, since that is
/// the word its seeded gather reads). A pure hint — compiled in only
/// under the `prefetch` feature.
#[inline]
fn prefetch_next_group<P, S>(
    store: &P,
    edges: &[(usize, usize)],
    g: usize,
    lens: impl Fn(usize) -> usize,
    stats: &mut S,
) where
    P: ParentStore + ?Sized,
    S: StatsSink,
{
    let next_start = (g + 1) * GATHER;
    if crate::store::prefetch_enabled() && next_start < edges.len() {
        for &(x, y) in &edges[next_start..(next_start + GATHER).min(edges.len())] {
            store.prefetch(lens(x));
            store.prefetch(lens(y));
        }
        stats.prefetch_wave();
    }
}

/// The cache-less batch loop (the default path): gather waves straight
/// from the endpoints, unrolled resolves, link pass.
fn batch_plain<L, P, S>(
    store: &P,
    edges: &[(usize, usize)],
    tuning: BatchTuning,
    stats: &mut S,
    record_link: impl Fn(usize, usize),
    mut outcome: impl FnMut(usize, bool),
) -> usize
where
    L: LinkPolicy,
    P: ParentStore + ?Sized,
    S: StatsSink,
{
    let mut links = 0;
    let depth3 = tuning.wave_depth == WaveDepth::Three;
    let mut words: Vec<(P::Word, P::Word)> = Vec::with_capacity(GATHER);
    let mut parents: Vec<(P::Word, P::Word)> = Vec::with_capacity(GATHER);
    // Depth-2 (the default) never touches the third-level scratch; don't
    // make every call pay its allocation.
    let mut grands: Vec<(P::Word, P::Word)> =
        if depth3 { Vec::with_capacity(GATHER) } else { Vec::new() };
    let mut survivors: Vec<(usize, usize, P::Word, usize)> = Vec::with_capacity(GATHER);
    for (g, group) in edges.chunks(GATHER).enumerate() {
        let base = g * GATHER;
        // Gather wave 1: the group's first-level words.
        words.clear();
        words.extend(group.iter().map(|&(x, y)| (store.load_word(x), store.load_word(y))));
        stats.reads(2 * group.len());
        // Gather wave 2: the words of those words' parents (a root's
        // "parent" is itself — that re-load stays in L1). Still mutually
        // independent, so the second level of every walk overlaps too.
        parents.clear();
        parents.extend(words.iter().map(|&(wx, wy)| {
            (store.load_word(P::parent_of(wx)), store.load_word(P::parent_of(wy)))
        }));
        stats.reads(2 * group.len());
        // Gather wave 3 (depth three): the grandparents' words.
        if depth3 {
            grands.clear();
            grands.extend(parents.iter().map(|&(wpx, wpy)| {
                (store.load_word(P::parent_of(wpx)), store.load_word(P::parent_of(wpy)))
            }));
            stats.reads(2 * group.len());
        }
        prefetch_next_group(store, edges, g, |x| x, stats);
        // Filter: seeded root walks from the gathered words.
        survivors.clear();
        for (k, &(x, y)) in group.iter().enumerate() {
            stats.op_start();
            if x == y {
                outcome(base + k, false);
                continue;
            }
            let (wx, wy) = words[k];
            let (wpx, wpy) = parents[k];
            let (wppx, wppy) =
                if depth3 { (Some(grands[k].0), Some(grands[k].1)) } else { (None, None) };
            let (ru, wru) = resolve(store, x, wx, wpx, wppx, stats);
            let (rv, wrv) = resolve(store, y, wy, wpy, wppy, stats);
            if ru == rv {
                outcome(base + k, false);
                continue;
            }
            let (root, word, under) = nominate::<L, P>(store, ru, wru, rv, wrv);
            survivors.push((base + k, root, word, under));
        }
        links += link_survivors::<L, P, S>(store, &survivors, stats, &record_link, &mut outcome);
    }
    links
}

/// The cache-carrying batch loop: each endpoint's wave-1 slot loads its
/// cached root's word when an entry exists (the validation load rides the
/// overlapped wave), resolutions are memoized, and the cache persists for
/// whatever scope the caller gave it (per-batch, per-thread session, ...).
fn batch_cached<L, P, S>(
    store: &P,
    edges: &[(usize, usize)],
    tuning: BatchTuning,
    cache: &mut RootCache,
    stats: &mut S,
    record_link: impl Fn(usize, usize),
    mut outcome: impl FnMut(usize, bool),
) -> usize
where
    L: LinkPolicy,
    P: ParentStore + ?Sized,
    S: StatsSink,
{
    let mut links = 0;
    let depth3 = tuning.wave_depth == WaveDepth::Three;
    // Per endpoint: the wave-1 gather target — `Some(root)` when seeded
    // from the cache, `None` for the endpoint itself (an entry can map an
    // element to itself, so an index alone could not encode "seeded").
    let mut targets: Vec<Option<usize>> = Vec::with_capacity(2 * GATHER);
    let mut w1: Vec<P::Word> = Vec::with_capacity(2 * GATHER);
    let mut w2: Vec<P::Word> = Vec::with_capacity(2 * GATHER);
    // Unused at depth 2: allocate nothing there.
    let mut w3: Vec<P::Word> = if depth3 { Vec::with_capacity(2 * GATHER) } else { Vec::new() };
    let mut survivors: Vec<(usize, usize, P::Word, usize)> = Vec::with_capacity(GATHER);
    for (g, group) in edges.chunks(GATHER).enumerate() {
        let base = g * GATHER;
        // Decide each endpoint's gather target: cached root or itself.
        targets.clear();
        for &(x, y) in group {
            targets.push(cache.get(x));
            targets.push(cache.get(y));
        }
        // Gather wave 1 (seeded): the endpoint's word, or the cached
        // root's word — its validation load rides the wave.
        w1.clear();
        w1.extend(group.iter().zip(targets.chunks_exact(2)).flat_map(|(&(x, y), t)| {
            [store.load_word(t[0].unwrap_or(x)), store.load_word(t[1].unwrap_or(y))]
        }));
        stats.reads(w1.len());
        // Gather waves 2 and 3 — for *unseeded* slots only: a seeded
        // slot's deeper words are never read (a validated hit uses just
        // w1, and the stale fallback restarts from the node), so loading
        // them would waste exactly the hot-endpoint loads the cache
        // exists to save and pad the read counters the A/B attributes
        // with. Seeded slots carry their w1 word down as a placeholder.
        let mut fresh = 0usize;
        w2.clear();
        w2.extend(w1.iter().zip(&targets).map(|(&w, t)| {
            if t.is_some() {
                w
            } else {
                fresh += 1;
                store.load_word(P::parent_of(w))
            }
        }));
        stats.reads(fresh);
        if depth3 {
            let mut fresh = 0usize;
            w3.clear();
            w3.extend(w2.iter().zip(&targets).map(|(&w, t)| {
                if t.is_some() {
                    w
                } else {
                    fresh += 1;
                    store.load_word(P::parent_of(w))
                }
            }));
            stats.reads(fresh);
        }
        // Prefetch the next group through the same cache lens its wave 1
        // will use: a seeded endpoint's gather reads its cached *root's*
        // word, so that is the line worth warming, not the endpoint's.
        // (The entry may change before that gather runs — the filter
        // below inserts and evicts — but a prefetch is free to be
        // slightly stale.)
        let lens_cache: &RootCache = cache;
        prefetch_next_group(store, edges, g, |e| lens_cache.get(e).unwrap_or(e), stats);
        // Filter: validate seeded slots, walk the rest, memoize results.
        survivors.clear();
        for (k, &(x, y)) in group.iter().enumerate() {
            stats.op_start();
            if x == y {
                outcome(base + k, false);
                continue;
            }
            let mut resolve_at = |j: usize, node: usize, stats: &mut S| match targets[j] {
                Some(r) => resolve_seeded(store, cache, node, r, w1[j], stats),
                None => {
                    let wpp = if depth3 { Some(w3[j]) } else { None };
                    let (root, word) = resolve(store, node, w1[j], w2[j], wpp, stats);
                    cache.insert(node, root);
                    (root, word)
                }
            };
            let (ru, wru) = resolve_at(2 * k, x, stats);
            let (rv, wrv) = resolve_at(2 * k + 1, y, stats);
            if ru == rv {
                outcome(base + k, false);
                continue;
            }
            let (root, word, under) = nominate::<L, P>(store, ru, wru, rv, wrv);
            survivors.push((base + k, root, word, under));
        }
        links += link_survivors::<L, P, S>(store, &survivors, stats, &record_link, &mut outcome);
    }
    links
}

/// Batched `unite` over `edges`, reporting each edge's outcome into
/// `outcome` — [`unite_batch_sink_tuned`] at the default tuning, with
/// **no** hot-root cache: on the bench box the intra-batch memoization is
/// a measured loss for the wave-fed filter (the gather waves already
/// preload the levels a hit would skip, so the probe's bookkeeping and
/// its 50/50-unpredictable validation branch buy nothing —
/// `BENCH_PR4.json` attributes it via the `cache_hits`/read counters,
/// echoing the PR 2 Algorithm-6 branch lesson). Callers whose workloads
/// re-hit endpoints across bursts opt in explicitly via
/// [`Dsu::cached`](crate::Dsu::cached) or
/// [`unite_batch_cached`](crate::ConcurrentUnionFind::unite_batch_cached).
/// Returns the number of successful links.
pub fn unite_batch_sink<L, P, S>(
    store: &P,
    edges: &[(usize, usize)],
    stats: &mut S,
    record_link: impl Fn(usize, usize),
    outcome: impl FnMut(usize, bool),
) -> usize
where
    L: LinkPolicy,
    P: ParentStore + ?Sized,
    S: StatsSink,
{
    unite_batch_sink_tuned::<L, P, S>(
        store,
        edges,
        BatchTuning::default(),
        None,
        stats,
        record_link,
        outcome,
    )
}

/// Batched `unite` over `edges`; returns the number of successful links.
/// See [`unite_batch_sink`] for the two-pass structure.
pub fn unite_batch<L, P, S>(
    store: &P,
    edges: &[(usize, usize)],
    stats: &mut S,
    record_link: impl Fn(usize, usize),
) -> usize
where
    L: LinkPolicy,
    P: ParentStore + ?Sized,
    S: StatsSink,
{
    unite_batch_sink::<L, P, S>(store, edges, stats, record_link, |_, _| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find::TwoTrySplit;
    use crate::ops;
    use crate::order::RandomLink;
    use crate::store::{DsuStore, FlatStore, PackedStore};

    fn batch_on<P: ParentStore + DsuStore>(store: &P, edges: &[(usize, usize)]) -> usize {
        unite_batch::<RandomLink, _, _>(store, edges, &mut (), |_, _| {})
    }

    #[test]
    fn batch_links_and_filters_both_layouts() {
        let flat = FlatStore::with_seed(8, 11);
        assert_eq!(batch_on(&flat, &[(0, 1), (1, 2), (0, 2), (3, 3)]), 2);
        assert!(ops::same_set::<TwoTrySplit, _, _>(&flat, 0, 2, &mut ()));
        assert!(!ops::same_set::<TwoTrySplit, _, _>(&flat, 0, 3, &mut ()));
        let packed = PackedStore::with_seed(8, 11);
        assert_eq!(batch_on(&packed, &[(0, 1), (1, 2), (0, 2), (3, 3)]), 2);
        assert!(ops::same_set::<TwoTrySplit, _, _>(&packed, 0, 2, &mut ()));
    }

    #[test]
    fn duplicate_edges_in_one_batch_link_once() {
        let store = PackedStore::with_seed(4, 7);
        // Both duplicates survive the filter pass (no links happen during
        // it); the link pass CAS-succeeds once and falls back to a same-set
        // verdict for the second copy.
        assert_eq!(batch_on(&store, &[(0, 1), (0, 1), (1, 0)]), 1);
    }

    #[test]
    fn empty_and_self_loop_batches() {
        let store = PackedStore::with_seed(4, 1);
        assert_eq!(batch_on(&store, &[]), 0);
        assert_eq!(batch_on(&store, &[(2, 2), (0, 0)]), 0);
        assert_eq!(store.snapshot(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn outcomes_report_every_edge_exactly_once() {
        let store = FlatStore::with_seed(6, 3);
        let edges = [(0, 1), (1, 0), (2, 3), (4, 4), (3, 2), (0, 5)];
        let mut seen = vec![0u32; edges.len()];
        let mut bools = vec![false; edges.len()];
        let links = unite_batch_sink::<RandomLink, _, _>(
            &store,
            &edges,
            &mut (),
            |_, _| {},
            |i, linked| {
                seen[i] += 1;
                bools[i] = linked;
            },
        );
        assert!(seen.iter().all(|&c| c == 1), "each edge reported once: {seen:?}");
        assert_eq!(bools, vec![true, false, true, false, false, true]);
        assert_eq!(links, 3);
    }

    #[test]
    fn record_link_fires_per_successful_link() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let store = PackedStore::with_seed(16, 5);
        let count = AtomicUsize::new(0);
        let edges: Vec<(usize, usize)> = (0..15).map(|i| (i, i + 1)).collect();
        let links = unite_batch::<RandomLink, _, _>(&store, &edges, &mut (), |child, parent| {
            assert!(DsuStore::id_of(&store, child) < DsuStore::id_of(&store, parent));
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(links, 15);
        assert_eq!(count.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn stats_count_each_edge_as_one_op() {
        let store = FlatStore::with_seed(8, 2);
        let mut stats = crate::OpStats::default();
        unite_batch::<RandomLink, _, _>(&store, &[(0, 1), (0, 1), (2, 2)], &mut stats, |_, _| {});
        assert_eq!(stats.ops, 3);
        assert_eq!(stats.links_ok, 1);
    }

    #[test]
    fn batches_larger_than_gather_wave() {
        // A path over many gather waves, one edge per hop: every wave
        // boundary must carry the partial forest over.
        let n = 40 * GATHER + 1;
        let store = FlatStore::with_seed(n, 9);
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        assert_eq!(batch_on(&store, &edges), n - 1);
        assert!(ops::same_set::<TwoTrySplit, _, _>(&store, 0, n - 1, &mut ()));
    }

    /// Every `(wave depth, cache on/off, planner on/off)` tuning
    /// combination produces the same link count and the same final
    /// partition — tuning is performance only. (Per-edge verdicts under
    /// the planner follow the plan order; the partition and the count are
    /// the order-invariant quantities this test pins.)
    #[test]
    fn tunings_are_semantically_invisible() {
        use crate::find::FindPolicy;
        let n = 300;
        let edges: Vec<(usize, usize)> =
            (0..1000).map(|i| ((i * 7919) % n, (i * 104729 + 5) % n)).collect();
        let mut snapshots = Vec::new();
        for depth in [WaveDepth::Two, WaveDepth::Three] {
            for cached in [false, true] {
                for planner in [None, Some(PlanTuning::new().bucket_elems_log2(6))] {
                    let store = PackedStore::with_seed(n, 4);
                    let mut cache = RootCache::with_capacity(32);
                    let mut tuning = BatchTuning::new().wave_depth(depth);
                    tuning.planner = planner;
                    let links = unite_batch_sink_tuned::<RandomLink, _, _>(
                        &store,
                        &edges,
                        tuning,
                        cached.then_some(&mut cache),
                        &mut (),
                        |_, _| {},
                        |_, _| {},
                    );
                    let labels: Vec<usize> =
                        (0..n).map(|i| TwoTrySplit::find(&store, i, &mut ()).0).collect();
                    snapshots.push((links, labels));
                }
            }
        }
        for s in &snapshots[1..] {
            assert_eq!(s.0, snapshots[0].0, "link counts diverged across tunings");
            assert_eq!(s.1, snapshots[0].1, "partitions diverged across tunings");
        }
    }

    /// The planned loop reports every edge exactly once — bucketed,
    /// spilled, and dropped-duplicate edges alike — and dropped
    /// duplicates report `false`.
    #[test]
    fn planned_outcomes_cover_every_edge_once() {
        let store = PackedStore::with_seed(64, 3);
        // Blocks of 8: (0,1)/(1,2) in block 0, (40,41) in block 5,
        // (3, 60) spills, (1,0) and (41,40) are duplicates.
        let edges = [(0, 1), (1, 0), (40, 41), (3, 60), (41, 40), (1, 2), (9, 9)];
        let mut stats = crate::OpStats::default();
        let mut seen = vec![0u32; edges.len()];
        let mut verdicts = vec![false; edges.len()];
        let links = unite_batch_sink_tuned::<RandomLink, _, _>(
            &store,
            &edges,
            BatchTuning::new().planned(PlanTuning::new().bucket_elems_log2(3)),
            None,
            &mut stats,
            |_, _| {},
            |i, linked| {
                seen[i] += 1;
                verdicts[i] = linked;
            },
        );
        assert!(seen.iter().all(|&c| c == 1), "each edge reported once: {seen:?}");
        assert_eq!(links, 4);
        assert_eq!(verdicts, vec![true, false, true, true, false, true, false]);
        assert_eq!(stats.ops, edges.len() as u64);
        assert_eq!(stats.dup_edges_dropped, 2);
        assert_eq!(stats.spill_edges, 1);
        // Blocks 0 (with the self-loop's block 1) and 5 — self-loop (9,9)
        // lands in block 1, so three non-empty buckets.
        assert_eq!(stats.bucket_count, 3);
    }

    /// The intra-batch cache actually fires on hot-endpoint batches (and
    /// goes stale when the hot root is demoted by the batch's own links);
    /// the default path, which opts out of the cache, must not touch it.
    #[test]
    fn hot_endpoints_hit_the_cache_across_waves() {
        let n = 4 * GATHER;
        let store = PackedStore::with_seed(n, 77);
        // Every edge shares endpoint 0: later waves should validate 0's
        // cached root instead of re-walking.
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (0, i)).collect();
        let mut stats = crate::OpStats::default();
        let mut cache = RootCache::default();
        let links = unite_batch_sink_tuned::<RandomLink, _, _>(
            &store,
            &edges,
            BatchTuning::default(),
            Some(&mut cache),
            &mut stats,
            |_, _| {},
            |_, _| {},
        );
        assert_eq!(links, n - 1);
        assert!(stats.cache_hits > 0, "hot endpoint never hit: {stats:?}");
        // Links demote roots between waves, so some validations must have
        // gone stale too (0's root changes as its set grows).
        assert!(stats.cache_hits + stats.cache_stale >= (n - GATHER) as u64 / 2);

        // The cache-less default path reports no cache traffic at all.
        let store = PackedStore::with_seed(n, 77);
        let mut plain = crate::OpStats::default();
        unite_batch::<RandomLink, _, _>(&store, &edges, &mut plain, |_, _| {});
        assert_eq!(plain.cache_hits + plain.cache_stale, 0);
    }

    #[test]
    fn prefetch_wave_counter_matches_feature() {
        let n = 3 * GATHER;
        let store = PackedStore::with_seed(n, 1);
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let mut stats = crate::OpStats::default();
        unite_batch::<RandomLink, _, _>(&store, &edges, &mut stats, |_, _| {});
        if crate::store::prefetch_enabled() {
            // One prefetch wave per group except the last.
            assert_eq!(stats.prefetch_waves, 2);
        } else {
            assert_eq!(stats.prefetch_waves, 0);
        }
    }
}

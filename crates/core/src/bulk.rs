//! Batched edge ingestion: `unite_batch` (the bulk counterpart of `unite`).
//!
//! Applications that maintain connected components rarely insert one edge at
//! a time — edges arrive in bursts (a scanned adjacency chunk, a network
//! batch, a Borůvka round). Dispatching each edge through a full `Unite`
//! wastes work on two fronts:
//!
//! 1. **Serialized loads.** Each operation's find is a dependent pointer
//!    chase, and a per-op loop starts the next edge's first load only
//!    after the previous edge retires. A batch knows every future
//!    endpoint, so the filter pass front-loads each group's first-level
//!    parent words in a **gather wave** of mutually independent loads the
//!    memory system overlaps — memory-level parallelism per-op dispatch
//!    cannot express.
//! 2. **Redundant work per edge.** The walks then run *seeded*: the word
//!    in hand is carried from step to step (one fresh load per visited
//!    node, where the standalone find policies pay two), same-set edges
//!    are dropped with no validation re-read and no CAS, and each
//!    surviving edge's link CAS is issued against the exact root word the
//!    filter observed — no re-traversal between deciding and linking.
//!
//! `unite_batch` structures this as a **filter pass** (gather wave, then
//! seeded root walks, recording for each survivor the `(root, word,
//! target)` observation that nominated the link) and a **link pass** (one
//! seeded CAS per survivor, falling back to the full retry loop only when
//! another link moved the root first).
//!
//! # Why the seeded CAS is still linearizable
//!
//! A recorded survivor `(r, w, v)` has `id(r) < id(v)` (the filter walks
//! from the smaller node; ids are immutable). If the link CAS succeeds, `r`
//! was still a root — and a root has the largest id of its tree
//! (Lemma 3.1), so `v`, with its larger id, cannot be inside `r`'s tree:
//! the two sets were distinct at the CAS, which is therefore a correct link
//! at its linearization point, exactly the argument behind Algorithm 7.
//! Any staleness (the root moved, the sets merged meanwhile) makes the CAS
//! fail, and the fallback loop re-establishes the answer from fresh reads.
//! Consequently a single-threaded `unite_batch` returns, edge by edge, the
//! *same* booleans a one-at-a-time `unite` sequence would — the property
//! `tests/batch_semantics.rs` checks exhaustively. (The union *forest* may
//! shape differently than per-op's: a batch link can attach a root under a
//! node an earlier link of the same wave already demoted — Algorithm 7's
//! "link under any larger-id node" case. The partition, the verdicts, and
//! Lemma 3.1's id ordering are unaffected.)
//!
//! The batch path's climb always compacts by *seeded one-try splitting*
//! (the carried word doubles as the CAS expectation), independent of the
//! structure's [`FindPolicy`](crate::find::FindPolicy): compaction is a
//! performance-only effect — it never moves a node out of its set and
//! never changes a root — so no operation's result depends on it, and the
//! splitting step is the one whose operands the filter already holds.

use crate::stats::StatsSink;
use crate::store::ParentStore;

/// Edges per gather wave (one filter-then-link round). Each wave issues a
/// group's parent-word loads back to back; the loads are mutually
/// independent, so the memory system overlaps the misses — the
/// memory-level parallelism a per-op `unite` loop cannot express, because
/// each operation's find chain is a dependent pointer chase. 128 edges
/// keeps the wave's scratch a few KB (L1-resident) while giving the
/// hardware far more outstanding misses than it can retire; empirically
/// (A/B on the Zipf ingestion workload, store larger than cache) 128 beat
/// 16/32/64 and 256 on the benchmark host.
pub const GATHER: usize = 128;

/// Outcome of the filter walk over one edge.
enum Filter<W> {
    /// Both walks reached the same root: the endpoints share a set now and
    /// forever — drop the edge.
    Same,
    /// `root` was observed as a root via `word`, with `id(root) < id(under)`
    /// at that instant: the sets were distinct, link `root` under `under`.
    Candidate { root: usize, word: W, under: usize },
}

/// The climb at the heart of the filter: walk from `u` — whose word `wu`
/// the caller already holds — to a node observed as a root, compacting by
/// *seeded splitting*: each step probes the grandparent with the
/// iteration's single load and tries to swing `u`'s parent to it, CASing
/// against the carried word. One load per visited node (the probe doubles
/// as the next carried word), where the standalone find policies pay two.
///
/// The carried word can be stale under concurrency; that is harmless. A
/// stale parent still names a same-set node of strictly larger id (every
/// value a cell ever holds does, Lemma 3.1), so the climb stays in-set and
/// makes progress; a stale compaction CAS just fails; and a stale "root"
/// observation is caught by whichever CAS the caller issues against the
/// returned word.
fn find_from<P, S>(store: &P, mut u: usize, mut wu: P::Word, stats: &mut S) -> (usize, P::Word)
where
    P: ParentStore + ?Sized,
    S: StatsSink,
{
    loop {
        stats.loop_iter();
        let z = P::parent_of(wu);
        if z == u {
            return (u, wu);
        }
        let wz = store.load_word(z);
        stats.read();
        let w = P::parent_of(wz);
        if z != w {
            if store.cas_from(u, wu, w) {
                stats.compact_cas_ok();
            } else {
                stats.compact_cas_fail();
            }
        }
        u = z;
        wu = wz;
    }
}

/// Resolves one endpoint to its observed root given the two gather waves'
/// words: `wx` is `x`'s word, `wp` the word of `parent(wx)`. The first
/// climb step is unrolled against the preloaded grandparent word — with
/// compaction keeping almost every node within two hops of its root, most
/// endpoints resolve here without issuing a single serial load — and the
/// remainder falls through to [`find_from`].
#[inline]
fn resolve<P, S>(store: &P, x: usize, wx: P::Word, wp: P::Word, stats: &mut S) -> (usize, P::Word)
where
    P: ParentStore + ?Sized,
    S: StatsSink,
{
    stats.loop_iter();
    let z = P::parent_of(wx);
    if z == x {
        return (x, wx);
    }
    let w = P::parent_of(wp);
    if z != w {
        if store.cas_from(x, wx, w) {
            stats.compact_cas_ok();
        } else {
            stats.compact_cas_fail();
        }
    }
    find_from(store, z, wp, stats)
}

/// The filter over one edge: climb both endpoints to their observed roots
/// (seeded by the gather waves' words) and compare. Equal roots mean the
/// endpoints share a set now and forever — the edge is dropped without a
/// single link CAS. Distinct roots yield a candidate carrying the
/// smaller-priority root *and the word it was observed with*, so the link
/// pass needs no re-traversal.
///
/// Unlike `SameSet` (paper Algorithm 2), the distinct-roots exit performs
/// no validation re-read: the filter does not claim the sets are distinct,
/// it only nominates a link for the link pass, whose CAS against the
/// returned word is the validation (see the module docs).
///
/// An interleaved early-termination walk (paper Algorithm 6) was tried
/// here first and lost by 3–4x: its priority comparison per step is a
/// data-dependent branch the predictor cannot learn, which costs more
/// than the loads it saves once compaction has flattened the forest.
#[allow(clippy::too_many_arguments)]
fn filter_edge<P, S>(
    store: &P,
    x: usize,
    y: usize,
    wx: P::Word,
    wy: P::Word,
    wpx: P::Word,
    wpy: P::Word,
    stats: &mut S,
) -> Filter<P::Word>
where
    P: ParentStore + ?Sized,
    S: StatsSink,
{
    stats.op_start();
    if x == y {
        return Filter::Same;
    }
    let (ru, wru) = resolve(store, x, wx, wpx, stats);
    let (rv, wrv) = resolve(store, y, wy, wpy, stats);
    if ru == rv {
        return Filter::Same;
    }
    // Nominate the smaller-priority root for linking under the other, the
    // same choice `Unite` makes (index breaks ties per the store contract).
    if (store.priority(ru, wru), ru) < (store.priority(rv, wrv), rv) {
        Filter::Candidate { root: ru, word: wru, under: rv }
    } else {
        Filter::Candidate { root: rv, word: wrv, under: ru }
    }
}

/// Retry loop for survivors whose seeded CAS lost a race: paper
/// Algorithm 3's loop (re-find both roots, link the smaller, retry on CAS
/// failure), built on the word-carrying climb. No `op_start` — the edge
/// was already counted by its filter.
fn unite_from<P, S>(
    store: &P,
    mut u: usize,
    mut v: usize,
    stats: &mut S,
    record_link: impl Fn(usize, usize),
) -> bool
where
    P: ParentStore + ?Sized,
    S: StatsSink,
{
    loop {
        let wu = store.load_word(u);
        let wv = store.load_word(v);
        stats.read();
        stats.read();
        let (ru, wru) = find_from(store, u, wu, stats);
        let (rv, wrv) = find_from(store, v, wv, stats);
        if ru == rv {
            return false;
        }
        let (child, wc, parent) = if (store.priority(ru, wru), ru) < (store.priority(rv, wrv), rv) {
            (ru, wru, rv)
        } else {
            (rv, wrv, ru)
        };
        if store.cas_from(child, wc, parent) {
            stats.link_ok();
            record_link(child, parent);
            return true;
        }
        stats.link_fail();
        // The loser's root moved: restart the finds from the roots just
        // observed (they are ancestors of the originals, so nothing below
        // them needs re-walking).
        u = ru;
        v = rv;
    }
}

/// Batched `unite` over `edges`, reporting each edge's outcome (its index
/// and whether *this batch* performed the link) into `outcome`. Returns the
/// number of successful links.
///
/// Processes the slice in [`GATHER`]-sized waves: gather the group's
/// first-level words, filter every edge (read-mostly — same-set drops cost
/// no link CAS), then link the group's survivors from their recorded
/// observations. Outcomes are reported exactly once per edge but *not* in
/// index order (same-set edges report during the filter step of their
/// wave).
pub fn unite_batch_sink<P, S>(
    store: &P,
    edges: &[(usize, usize)],
    stats: &mut S,
    record_link: impl Fn(usize, usize),
    mut outcome: impl FnMut(usize, bool),
) -> usize
where
    P: ParentStore + ?Sized,
    S: StatsSink,
{
    let mut links = 0;
    let mut words: Vec<(P::Word, P::Word)> = Vec::with_capacity(GATHER);
    let mut parents: Vec<(P::Word, P::Word)> = Vec::with_capacity(GATHER);
    let mut survivors: Vec<(usize, usize, P::Word, usize)> = Vec::with_capacity(GATHER);
    for (g, group) in edges.chunks(GATHER).enumerate() {
        let base = g * GATHER;
        // Gather wave 1: the group's first-level words.
        words.clear();
        words.extend(group.iter().map(|&(x, y)| (store.load_word(x), store.load_word(y))));
        stats.reads(2 * group.len());
        // Gather wave 2: the words of those words' parents (a root's
        // "parent" is itself — that re-load stays in L1). Still mutually
        // independent, so the second level of every walk overlaps too.
        parents.clear();
        parents.extend(words.iter().map(|&(wx, wy)| {
            (store.load_word(P::parent_of(wx)), store.load_word(P::parent_of(wy)))
        }));
        stats.reads(2 * group.len());
        // Filter: seeded root walks from the gathered words.
        survivors.clear();
        for (k, &(x, y)) in group.iter().enumerate() {
            let (wx, wy) = words[k];
            let (wpx, wpy) = parents[k];
            match filter_edge::<P, S>(store, x, y, wx, wy, wpx, wpy, stats) {
                Filter::Same => outcome(base + k, false),
                Filter::Candidate { root, word, under } => {
                    survivors.push((base + k, root, word, under));
                }
            }
        }
        // Link: one seeded CAS per survivor on the common path.
        for &(i, root, word, under) in &survivors {
            let linked = if store.cas_from(root, word, under) {
                stats.link_ok();
                record_link(root, under);
                true
            } else {
                stats.link_fail();
                unite_from::<P, S>(store, root, under, stats, &record_link)
            };
            links += linked as usize;
            outcome(i, linked);
        }
    }
    links
}

/// Batched `unite` over `edges`; returns the number of successful links.
/// See [`unite_batch_sink`] for the two-pass structure.
pub fn unite_batch<P, S>(
    store: &P,
    edges: &[(usize, usize)],
    stats: &mut S,
    record_link: impl Fn(usize, usize),
) -> usize
where
    P: ParentStore + ?Sized,
    S: StatsSink,
{
    unite_batch_sink::<P, S>(store, edges, stats, record_link, |_, _| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find::TwoTrySplit;
    use crate::ops;
    use crate::store::{DsuStore, FlatStore, PackedStore};

    fn batch_on<P: ParentStore + DsuStore>(store: &P, edges: &[(usize, usize)]) -> usize {
        unite_batch(store, edges, &mut (), |_, _| {})
    }

    #[test]
    fn batch_links_and_filters_both_layouts() {
        let flat = FlatStore::with_seed(8, 11);
        assert_eq!(batch_on(&flat, &[(0, 1), (1, 2), (0, 2), (3, 3)]), 2);
        assert!(ops::same_set::<TwoTrySplit, _, _>(&flat, 0, 2, &mut ()));
        assert!(!ops::same_set::<TwoTrySplit, _, _>(&flat, 0, 3, &mut ()));
        let packed = PackedStore::with_seed(8, 11);
        assert_eq!(batch_on(&packed, &[(0, 1), (1, 2), (0, 2), (3, 3)]), 2);
        assert!(ops::same_set::<TwoTrySplit, _, _>(&packed, 0, 2, &mut ()));
    }

    #[test]
    fn duplicate_edges_in_one_batch_link_once() {
        let store = PackedStore::with_seed(4, 7);
        // Both duplicates survive the filter pass (no links happen during
        // it); the link pass CAS-succeeds once and falls back to a same-set
        // verdict for the second copy.
        assert_eq!(batch_on(&store, &[(0, 1), (0, 1), (1, 0)]), 1);
    }

    #[test]
    fn empty_and_self_loop_batches() {
        let store = PackedStore::with_seed(4, 1);
        assert_eq!(batch_on(&store, &[]), 0);
        assert_eq!(batch_on(&store, &[(2, 2), (0, 0)]), 0);
        assert_eq!(store.snapshot(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn outcomes_report_every_edge_exactly_once() {
        let store = FlatStore::with_seed(6, 3);
        let edges = [(0, 1), (1, 0), (2, 3), (4, 4), (3, 2), (0, 5)];
        let mut seen = vec![0u32; edges.len()];
        let mut bools = vec![false; edges.len()];
        let links = unite_batch_sink(
            &store,
            &edges,
            &mut (),
            |_, _| {},
            |i, linked| {
                seen[i] += 1;
                bools[i] = linked;
            },
        );
        assert!(seen.iter().all(|&c| c == 1), "each edge reported once: {seen:?}");
        assert_eq!(bools, vec![true, false, true, false, false, true]);
        assert_eq!(links, 3);
    }

    #[test]
    fn record_link_fires_per_successful_link() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let store = PackedStore::with_seed(16, 5);
        let count = AtomicUsize::new(0);
        let edges: Vec<(usize, usize)> = (0..15).map(|i| (i, i + 1)).collect();
        let links = unite_batch(&store, &edges, &mut (), |child, parent| {
            assert!(DsuStore::id_of(&store, child) < DsuStore::id_of(&store, parent));
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(links, 15);
        assert_eq!(count.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn stats_count_each_edge_as_one_op() {
        let store = FlatStore::with_seed(8, 2);
        let mut stats = crate::OpStats::default();
        unite_batch(&store, &[(0, 1), (0, 1), (2, 2)], &mut stats, |_, _| {});
        assert_eq!(stats.ops, 3);
        assert_eq!(stats.links_ok, 1);
    }

    #[test]
    fn batches_larger_than_gather_wave() {
        // A path over many gather waves, one edge per hop: every wave
        // boundary must carry the partial forest over.
        let n = 40 * GATHER + 1;
        let store = FlatStore::with_seed(n, 9);
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        assert_eq!(batch_on(&store, &edges), n - 1);
        assert!(ops::same_set::<TwoTrySplit, _, _>(&store, 0, n - 1, &mut ()));
    }
}

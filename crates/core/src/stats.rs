//! Work accounting.
//!
//! The paper's bounds are about *total work*: the number of primitive steps
//! (shared-memory reads and CASes) summed over all processes. To measure it
//! without perturbing the measured thing, each operation has a `*_with`
//! variant that reports events into a caller-owned [`StatsSink`]. The
//! default sink `()` compiles to nothing; [`OpStats`] is a plain struct of
//! counters the harness keeps per thread and sums afterwards — no shared
//! cache lines, no atomics on the hot path.

/// Receives fine-grained work events from the union-find operations.
///
/// Methods are `&mut self`: a sink belongs to one thread. The unit type `()`
/// implements the trait as a zero-cost no-op.
pub trait StatsSink {
    /// A find-loop iteration started (the unit of "cost" in Theorem 5.1's
    /// accounting: one iteration = one grandparent probe, possibly with
    /// CASes).
    fn loop_iter(&mut self);
    /// A shared parent pointer was read.
    fn read(&mut self);
    /// `n` shared parent pointers were read at once (a batch gather wave).
    fn reads(&mut self, n: usize) {
        for _ in 0..n {
            self.read();
        }
    }
    /// A CAS on a parent pointer succeeded during path compaction.
    fn compact_cas_ok(&mut self);
    /// A CAS on a parent pointer failed during path compaction (the work
    /// Anderson & Woll's analysis ignored; see paper Section 5).
    fn compact_cas_fail(&mut self);
    /// A link CAS succeeded (a `Unite` merged two sets).
    fn link_ok(&mut self);
    /// A link CAS failed (the root moved under the `Unite`'s feet; the
    /// operation restarts its finds).
    fn link_fail(&mut self);
    /// A top-level operation (`same_set` / `unite`) started.
    fn op_start(&mut self);
    /// A `find` traversal started.
    fn find_start(&mut self);
    /// A hot-root cache entry validated: the cached root was still a root,
    /// so a find started (and usually ended) at it instead of walking from
    /// the element (see [`cache`](crate::cache)). Defaulted to a no-op so
    /// sinks that predate the cache keep compiling.
    fn cache_hit(&mut self) {}
    /// A hot-root cache entry failed validation (the cached root was
    /// demoted or re-parented since it was recorded): the entry is dropped
    /// and the find falls back to the normal walk.
    fn cache_stale(&mut self) {}
    /// A batch gather wave issued software prefetches for the *next* wave's
    /// endpoint words (only counted when the `prefetch` feature compiled
    /// the intrinsics in; see [`bulk`](crate::bulk)).
    fn prefetch_wave(&mut self) {}
    /// The ingestion planner dropped `n` intra-batch duplicate edges
    /// before any parent word was read (see [`ingest`](crate::ingest));
    /// each dropped edge still starts one operation and reports a `false`
    /// verdict.
    fn dup_edges_dropped(&mut self, _n: usize) {}
    /// The ingestion planner drained `n` non-empty radix buckets for one
    /// batch (the spillover segment not included).
    fn plan_buckets(&mut self, _n: usize) {}
    /// The ingestion planner deferred `n` cross-bucket edges of one batch
    /// to the spillover pass.
    fn spill_edges(&mut self, _n: usize) {}
    /// An operation is about to re-run its find/link sequence because a
    /// link CAS failed — the retry that follows every
    /// [`link_fail`](StatsSink::link_fail) on a path that loops rather
    /// than falls through. Counted separately from the failure itself so
    /// retry-budget watchdogs ([`RetryBudget`](crate::RetryBudget)) can
    /// bound *progress*, and so fault-attribution reports can compare
    /// retries against injected faults.
    fn cas_retry(&mut self) {}
    /// A fault-injection layer ([`FaultyStore`](crate::FaultyStore))
    /// reports `n` injected faults (spurious CAS failures, delayed loads,
    /// stall windows). Fed from
    /// [`fault_report`](crate::FaultyStore::fault_report) totals by
    /// harness code at quiescence — the store itself never sees a sink.
    /// Exactly zero on unfaulted runs.
    fn faults_injected(&mut self, _n: usize) {}
    /// A [`KeyedDsu`](crate::KeyedDsu) insert claimed a slot and allocated
    /// a fresh dense id for a previously unseen key (the losing side of a
    /// same-key race does *not* report this — exactly one per distinct
    /// key ever).
    fn key_inserted(&mut self) {}
    /// A keyed resolution (insert or lookup) examined `n` id-table slots
    /// before finding its key, claiming a slot, or concluding a miss —
    /// the keyed layer's analogue of find-loop iterations.
    fn key_probe_steps(&mut self, _n: usize) {}
    /// A [`KeyedDsu`](crate::KeyedDsu) shard allocated a fresh
    /// open-addressing segment because every probe window in the existing
    /// ones was occupied — the keyed id table's growth event (doubling
    /// segments; existing entries never move or rehash).
    fn id_table_resize(&mut self) {}
    /// An auto-tuning dispatcher ([`TunedDsu`](crate::TunedDsu)) routed `n`
    /// operations through its sampling prefix — traffic that ran on the
    /// default variant while its counters were being profiled to pick the
    /// post-decision variant.
    fn tuner_samples(&mut self, _n: usize) {}
    /// An auto-tuning dispatcher committed a variant decision and switched
    /// dispatch away from the sampling default (at most one per structure
    /// unless explicitly re-armed; zero when the scorer kept the default).
    fn tuner_switch(&mut self) {}
    /// A `find` traversal reached its root after `n` parent hops (`n = 0`
    /// when the start node was already a root). This is the *path length*
    /// the flatten pass exists to drive toward ≤ 1 — the loads behind the
    /// hops are already counted by [`read`](StatsSink::read), so this is
    /// attribution, not extra access accounting.
    fn find_hops(&mut self, _n: usize) {}
    /// A flatten sweep over the whole store completed (see
    /// [`flatten`](crate::flatten)).
    fn flatten_pass(&mut self) {}
    /// A flatten sweep's pointer-jump CAS succeeded: one element's parent
    /// moved to its observed grandparent (or further, on retries). The CAS
    /// itself is counted by [`compact_cas_ok`](StatsSink::compact_cas_ok).
    fn flatten_jump(&mut self) {}
    /// A flatten sweep's pointer-jump CAS lost a race with a concurrent
    /// unite or compaction (the word changed under it). Harmless — the
    /// sweep re-reads and retries. The CAS is counted by
    /// [`compact_cas_fail`](StatsSink::compact_cas_fail).
    fn flatten_cas_lost(&mut self) {}
    /// A [`VersionedDsu`](crate::VersionedDsu) recorded an O(1) snapshot
    /// (an epoch boundary: segment pointers cloned, the epoch counter
    /// bumped — no cells copied). Exactly zero on unversioned runs.
    fn snapshot_taken(&mut self) {}
    /// An [`EpochStore`](crate::EpochStore) copy-on-wrote one segment: the
    /// first mutation after a snapshot displaced the shared segment node
    /// with a private copy. Fed from
    /// [`epoch_report`](crate::EpochFork::epoch_report) totals by harness
    /// code at quiescence, like [`faults_injected`]. Exactly zero on
    /// unversioned runs.
    ///
    /// [`faults_injected`]: StatsSink::faults_injected
    fn segments_forked(&mut self, _n: usize) {}
    /// A [`VersionedDsu`](crate::VersionedDsu) rolled the forest back to a
    /// recorded snapshot. Exactly zero on unversioned runs.
    fn rollback_done(&mut self) {}
    /// Segment forks copied `n` cells (the actual CoW byte traffic behind
    /// [`segments_forked`](StatsSink::segments_forked); fed from the same
    /// quiescent report). Exactly zero on unversioned runs.
    fn cow_copies(&mut self, _n: usize) {}
}

impl StatsSink for () {
    #[inline(always)]
    fn loop_iter(&mut self) {}
    #[inline(always)]
    fn read(&mut self) {}
    #[inline(always)]
    fn reads(&mut self, _n: usize) {}
    #[inline(always)]
    fn compact_cas_ok(&mut self) {}
    #[inline(always)]
    fn compact_cas_fail(&mut self) {}
    #[inline(always)]
    fn link_ok(&mut self) {}
    #[inline(always)]
    fn link_fail(&mut self) {}
    #[inline(always)]
    fn op_start(&mut self) {}
    #[inline(always)]
    fn find_start(&mut self) {}
    #[inline(always)]
    fn cache_hit(&mut self) {}
    #[inline(always)]
    fn cache_stale(&mut self) {}
    #[inline(always)]
    fn prefetch_wave(&mut self) {}
    #[inline(always)]
    fn dup_edges_dropped(&mut self, _n: usize) {}
    #[inline(always)]
    fn plan_buckets(&mut self, _n: usize) {}
    #[inline(always)]
    fn spill_edges(&mut self, _n: usize) {}
    #[inline(always)]
    fn cas_retry(&mut self) {}
    #[inline(always)]
    fn faults_injected(&mut self, _n: usize) {}
    #[inline(always)]
    fn key_inserted(&mut self) {}
    #[inline(always)]
    fn key_probe_steps(&mut self, _n: usize) {}
    #[inline(always)]
    fn id_table_resize(&mut self) {}
    #[inline(always)]
    fn tuner_samples(&mut self, _n: usize) {}
    #[inline(always)]
    fn tuner_switch(&mut self) {}
    #[inline(always)]
    fn find_hops(&mut self, _n: usize) {}
    #[inline(always)]
    fn flatten_pass(&mut self) {}
    #[inline(always)]
    fn flatten_jump(&mut self) {}
    #[inline(always)]
    fn flatten_cas_lost(&mut self) {}
    #[inline(always)]
    fn snapshot_taken(&mut self) {}
    #[inline(always)]
    fn segments_forked(&mut self, _n: usize) {}
    #[inline(always)]
    fn rollback_done(&mut self) {}
    #[inline(always)]
    fn cow_copies(&mut self, _n: usize) {}
}

/// Plain counters for the events of [`StatsSink`]. Keep one per thread and
/// [`merge`](OpStats::merge) them after the run.
///
/// # Example
///
/// ```
/// use concurrent_dsu::{Dsu, OpStats};
///
/// let dsu: Dsu = Dsu::new(16);
/// let mut stats = OpStats::default();
/// dsu.unite_with(0, 1, &mut stats);
/// dsu.same_set_with(0, 1, &mut stats);
/// assert_eq!(stats.ops, 2);
/// assert_eq!(stats.links_ok, 1);
/// assert!(stats.reads > 0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Top-level operations started.
    pub ops: u64,
    /// `find` traversals started.
    pub finds: u64,
    /// Find-loop iterations (the paper's unit of find cost).
    pub loop_iters: u64,
    /// Shared parent-pointer reads.
    pub reads: u64,
    /// Successful compaction CASes (pointer updates).
    pub compact_cas_ok: u64,
    /// Failed compaction CASes.
    pub compact_cas_fail: u64,
    /// Successful link CASes.
    pub links_ok: u64,
    /// Failed link CASes.
    pub links_fail: u64,
    /// Hot-root cache validations that succeeded (the cached root was
    /// still a root; the find started from it).
    pub cache_hits: u64,
    /// Hot-root cache validations that failed (the cached root had been
    /// demoted; the entry was dropped and the walk fell back).
    pub cache_stale: u64,
    /// Gather waves that issued software prefetches for the next wave
    /// (nonzero only under the `prefetch` feature).
    pub prefetch_waves: u64,
    /// Intra-batch duplicate edges the ingestion planner dropped before
    /// they touched the store (each still counted in `ops`, verdict
    /// `false`).
    pub dup_edges_dropped: u64,
    /// Non-empty radix buckets the ingestion planner drained, summed over
    /// all planned batches (the spillover segments not included).
    pub bucket_count: u64,
    /// Cross-bucket edges the ingestion planner deferred to spillover
    /// passes.
    pub spill_edges: u64,
    /// Find/link retries after failed link CASes (each follows a
    /// `links_fail` on a looping path; bounded by retry-budget watchdogs).
    pub cas_retries: u64,
    /// Faults injected by a fault-injection layer, as reported at
    /// quiescence by harness code. Exactly zero on unfaulted runs.
    pub faults_injected: u64,
    /// Distinct keys inserted into a keyed id table (one per claim-winning
    /// insert; same-key races count once).
    pub keys_inserted: u64,
    /// Id-table slots examined by keyed resolutions (the keyed layer's
    /// walk cost; compare against `reads` to see where a keyed workload
    /// spends its memory traffic).
    pub key_probe_steps: u64,
    /// Open-addressing segments allocated by keyed id-table shards after
    /// construction (doubling growth events; entries never move).
    pub id_table_resizes: u64,
    /// Operations an auto-tuning dispatcher routed through its sampling
    /// prefix before deciding on a variant.
    pub tuner_samples: u64,
    /// Variant switches an auto-tuning dispatcher committed (zero when the
    /// scorer kept the sampling default).
    pub tuner_switches: u64,
    /// Parent hops summed over all `find` traversals (path length; the
    /// hops' loads are already in `reads`). `find_hops / finds` is the mean
    /// observed tree depth — the quantity a flatten pass drives toward ≤ 1.
    pub find_hops: u64,
    /// Completed flatten sweeps over the whole store.
    pub flatten_passes: u64,
    /// Successful pointer-jump CASes performed by flatten sweeps (each also
    /// counted in `compact_cas_ok`).
    pub flatten_jumps: u64,
    /// Flatten pointer-jump CASes lost to concurrent mutators (each also
    /// counted in `compact_cas_fail`).
    pub flatten_cas_lost: u64,
    /// O(1) snapshots recorded by versioned structures (epoch boundaries;
    /// no cells copied at snapshot time). Exactly zero on unversioned runs.
    pub snapshots_taken: u64,
    /// Segments copy-on-write-forked (first mutation of a shared segment
    /// after a snapshot). Exactly zero on unversioned runs.
    pub segments_forked: u64,
    /// Rollbacks to a recorded snapshot. Exactly zero on unversioned runs.
    pub rollbacks: u64,
    /// Cells copied by segment forks — the deferred CoW cost the O(1)
    /// snapshots push onto first-mutation. Exactly zero on unversioned
    /// runs.
    pub cow_copies: u64,
}

impl OpStats {
    /// Sum of all shared-memory accesses (reads + all CASes): the paper's
    /// "total number of primitive steps" up to the constant local work per
    /// access.
    pub fn memory_accesses(&self) -> u64 {
        self.reads + self.compact_cas_ok + self.compact_cas_fail + self.links_ok + self.links_fail
    }

    /// All CAS attempts, successful or not.
    pub fn cas_attempts(&self) -> u64 {
        self.compact_cas_ok + self.compact_cas_fail + self.links_ok + self.links_fail
    }

    /// Adds another thread's counters into this one.
    pub fn merge(&mut self, other: &OpStats) {
        self.ops += other.ops;
        self.finds += other.finds;
        self.loop_iters += other.loop_iters;
        self.reads += other.reads;
        self.compact_cas_ok += other.compact_cas_ok;
        self.compact_cas_fail += other.compact_cas_fail;
        self.links_ok += other.links_ok;
        self.links_fail += other.links_fail;
        self.cache_hits += other.cache_hits;
        self.cache_stale += other.cache_stale;
        self.prefetch_waves += other.prefetch_waves;
        self.dup_edges_dropped += other.dup_edges_dropped;
        self.bucket_count += other.bucket_count;
        self.spill_edges += other.spill_edges;
        self.cas_retries += other.cas_retries;
        self.faults_injected += other.faults_injected;
        self.keys_inserted += other.keys_inserted;
        self.key_probe_steps += other.key_probe_steps;
        self.id_table_resizes += other.id_table_resizes;
        self.tuner_samples += other.tuner_samples;
        self.tuner_switches += other.tuner_switches;
        self.find_hops += other.find_hops;
        self.flatten_passes += other.flatten_passes;
        self.flatten_jumps += other.flatten_jumps;
        self.flatten_cas_lost += other.flatten_cas_lost;
        self.snapshots_taken += other.snapshots_taken;
        self.segments_forked += other.segments_forked;
        self.rollbacks += other.rollbacks;
        self.cow_copies += other.cow_copies;
    }

    /// Mean find-loop iterations per operation (`NaN` if no ops ran).
    pub fn iters_per_op(&self) -> f64 {
        self.loop_iters as f64 / self.ops as f64
    }

    /// Mean parent hops per `find` — the observed tree depth (`NaN` if no
    /// finds ran). The adaptive flatten trigger compares this against its
    /// threshold (see [`FlattenPolicy`](crate::FlattenPolicy)).
    pub fn hops_per_find(&self) -> f64 {
        self.find_hops as f64 / self.finds as f64
    }
}

impl StatsSink for OpStats {
    #[inline]
    fn loop_iter(&mut self) {
        self.loop_iters += 1;
    }
    #[inline]
    fn read(&mut self) {
        self.reads += 1;
    }
    #[inline]
    fn reads(&mut self, n: usize) {
        self.reads += n as u64;
    }
    #[inline]
    fn compact_cas_ok(&mut self) {
        self.compact_cas_ok += 1;
    }
    #[inline]
    fn compact_cas_fail(&mut self) {
        self.compact_cas_fail += 1;
    }
    #[inline]
    fn link_ok(&mut self) {
        self.links_ok += 1;
    }
    #[inline]
    fn link_fail(&mut self) {
        self.links_fail += 1;
    }
    #[inline]
    fn op_start(&mut self) {
        self.ops += 1;
    }
    #[inline]
    fn find_start(&mut self) {
        self.finds += 1;
    }
    #[inline]
    fn cache_hit(&mut self) {
        self.cache_hits += 1;
    }
    #[inline]
    fn cache_stale(&mut self) {
        self.cache_stale += 1;
    }
    #[inline]
    fn prefetch_wave(&mut self) {
        self.prefetch_waves += 1;
    }
    #[inline]
    fn dup_edges_dropped(&mut self, n: usize) {
        self.dup_edges_dropped += n as u64;
    }
    #[inline]
    fn plan_buckets(&mut self, n: usize) {
        self.bucket_count += n as u64;
    }
    #[inline]
    fn spill_edges(&mut self, n: usize) {
        self.spill_edges += n as u64;
    }
    #[inline]
    fn cas_retry(&mut self) {
        self.cas_retries += 1;
    }
    #[inline]
    fn faults_injected(&mut self, n: usize) {
        self.faults_injected += n as u64;
    }
    #[inline]
    fn key_inserted(&mut self) {
        self.keys_inserted += 1;
    }
    #[inline]
    fn key_probe_steps(&mut self, n: usize) {
        self.key_probe_steps += n as u64;
    }
    #[inline]
    fn id_table_resize(&mut self) {
        self.id_table_resizes += 1;
    }
    #[inline]
    fn tuner_samples(&mut self, n: usize) {
        self.tuner_samples += n as u64;
    }
    #[inline]
    fn tuner_switch(&mut self) {
        self.tuner_switches += 1;
    }
    #[inline]
    fn find_hops(&mut self, n: usize) {
        self.find_hops += n as u64;
    }
    #[inline]
    fn flatten_pass(&mut self) {
        self.flatten_passes += 1;
    }
    #[inline]
    fn flatten_jump(&mut self) {
        self.flatten_jumps += 1;
    }
    #[inline]
    fn flatten_cas_lost(&mut self) {
        self.flatten_cas_lost += 1;
    }
    #[inline]
    fn snapshot_taken(&mut self) {
        self.snapshots_taken += 1;
    }
    #[inline]
    fn segments_forked(&mut self, n: usize) {
        self.segments_forked += n as u64;
    }
    #[inline]
    fn rollback_done(&mut self) {
        self.rollbacks += 1;
    }
    #[inline]
    fn cow_copies(&mut self, n: usize) {
        self.cow_copies += n as u64;
    }
}

/// Summary of how a per-shard count (roots, cells, traffic) spreads across
/// the shards of a sharded store — the report type behind
/// [`ShardReport::root_skew`](crate::store::ShardReport::root_skew).
///
/// `imbalance` is the headline number: `max / mean`, so `1.0` means the
/// shards are perfectly balanced and `S` (the shard count) means one shard
/// carries everything. An empty or all-zero count vector reports `1.0` —
/// nothing is imbalanced when there is nothing to balance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSkew {
    /// Number of shards summarized.
    pub shards: usize,
    /// Smallest per-shard count.
    pub min: u64,
    /// Largest per-shard count.
    pub max: u64,
    /// Mean per-shard count.
    pub mean: f64,
    /// `max / mean` (`1.0` when the mean is zero): how much hotter the
    /// hottest shard is than a perfectly balanced one.
    pub imbalance: f64,
}

impl ShardSkew {
    /// Summarizes one count per shard.
    pub fn from_counts(counts: impl IntoIterator<Item = u64>) -> Self {
        let (mut shards, mut total) = (0usize, 0u64);
        let (mut min, mut max) = (u64::MAX, 0u64);
        for c in counts {
            shards += 1;
            total += c;
            min = min.min(c);
            max = max.max(c);
        }
        if shards == 0 || total == 0 {
            return ShardSkew { shards, min: 0, max, mean: 0.0, imbalance: 1.0 };
        }
        let mean = total as f64 / shards as f64;
        ShardSkew { shards, min, max, mean, imbalance: max as f64 / mean }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_sink_is_inert() {
        let mut sink = ();
        sink.loop_iter();
        sink.read();
        sink.link_ok();
        // Nothing to assert beyond "it compiles and runs".
    }

    #[test]
    fn opstats_counts_and_merges() {
        let mut a = OpStats::default();
        a.op_start();
        a.find_start();
        a.loop_iter();
        a.read();
        a.read();
        a.compact_cas_ok();
        a.link_fail();
        assert_eq!(a.ops, 1);
        assert_eq!(a.reads, 2);
        assert_eq!(a.memory_accesses(), 4);
        assert_eq!(a.cas_attempts(), 2);

        let mut b = OpStats::default();
        b.op_start();
        b.link_ok();
        b.merge(&a);
        assert_eq!(b.ops, 2);
        assert_eq!(b.links_ok, 1);
        assert_eq!(b.links_fail, 1);
        assert_eq!(b.reads, 2);
    }

    #[test]
    fn shard_skew_balanced_and_hot() {
        let balanced = ShardSkew::from_counts([5, 5, 5, 5]);
        assert_eq!(balanced.shards, 4);
        assert_eq!((balanced.min, balanced.max), (5, 5));
        assert!((balanced.imbalance - 1.0).abs() < 1e-12);

        let hot = ShardSkew::from_counts([12, 0, 0, 0]);
        assert_eq!((hot.min, hot.max), (0, 12));
        assert!((hot.mean - 3.0).abs() < 1e-12);
        assert!((hot.imbalance - 4.0).abs() < 1e-12, "one shard carries all -> imbalance = S");

        assert!((ShardSkew::from_counts([]).imbalance - 1.0).abs() < 1e-12);
        assert!((ShardSkew::from_counts([0, 0]).imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cache_and_prefetch_counters_count_and_merge() {
        let mut a = OpStats::default();
        a.cache_hit();
        a.cache_hit();
        a.cache_stale();
        a.prefetch_wave();
        assert_eq!((a.cache_hits, a.cache_stale, a.prefetch_waves), (2, 1, 1));
        // Cache probes are plain loads already counted via read(); they do
        // not inflate the access totals on their own.
        assert_eq!(a.memory_accesses(), 0);
        let mut b = OpStats::default();
        b.cache_stale();
        b.merge(&a);
        assert_eq!((b.cache_hits, b.cache_stale, b.prefetch_waves), (2, 2, 1));
        // The unit sink accepts the new events too.
        let mut unit = ();
        unit.cache_hit();
        unit.cache_stale();
        unit.prefetch_wave();
    }

    #[test]
    fn planner_counters_count_and_merge() {
        let mut a = OpStats::default();
        a.dup_edges_dropped(3);
        a.plan_buckets(4);
        a.spill_edges(2);
        a.plan_buckets(1);
        assert_eq!((a.dup_edges_dropped, a.bucket_count, a.spill_edges), (3, 5, 2));
        // Planner events are bookkeeping, not shared-memory accesses.
        assert_eq!(a.memory_accesses(), 0);
        let mut b = OpStats::default();
        b.spill_edges(1);
        b.merge(&a);
        assert_eq!((b.dup_edges_dropped, b.bucket_count, b.spill_edges), (3, 5, 3));
        // The unit sink accepts the new events too.
        let mut unit = ();
        unit.dup_edges_dropped(1);
        unit.plan_buckets(1);
        unit.spill_edges(1);
    }

    #[test]
    fn retry_and_fault_counters_count_and_merge() {
        let mut a = OpStats::default();
        a.link_fail();
        a.cas_retry();
        a.cas_retry();
        a.faults_injected(5);
        assert_eq!((a.cas_retries, a.faults_injected), (2, 5));
        // Retries and injected-fault tallies are bookkeeping; the accesses
        // they describe are already counted by link_fail/read.
        assert_eq!(a.memory_accesses(), 1);
        let mut b = OpStats::default();
        b.cas_retry();
        b.merge(&a);
        assert_eq!((b.cas_retries, b.faults_injected), (3, 5));
        // The unit sink accepts the new events too.
        let mut unit = ();
        unit.cas_retry();
        unit.faults_injected(1);
    }

    #[test]
    fn keyed_counters_count_and_merge() {
        let mut a = OpStats::default();
        a.key_inserted();
        a.key_inserted();
        a.key_probe_steps(5);
        a.id_table_resize();
        assert_eq!((a.keys_inserted, a.key_probe_steps, a.id_table_resizes), (2, 5, 1));
        // Keyed-table probes are bookkeeping here; the slot loads they
        // describe live outside the parent store's access totals.
        assert_eq!(a.memory_accesses(), 0);
        let mut b = OpStats::default();
        b.key_probe_steps(2);
        b.merge(&a);
        assert_eq!((b.keys_inserted, b.key_probe_steps, b.id_table_resizes), (2, 7, 1));
        // The unit sink accepts the new events too.
        let mut unit = ();
        unit.key_inserted();
        unit.key_probe_steps(1);
        unit.id_table_resize();
    }

    #[test]
    fn tuner_counters_count_and_merge() {
        let mut a = OpStats::default();
        a.tuner_samples(100);
        a.tuner_samples(28);
        a.tuner_switch();
        assert_eq!((a.tuner_samples, a.tuner_switches), (128, 1));
        // Tuner events are dispatch bookkeeping, not shared-memory
        // accesses — the sampled ops' own reads/CASes are counted by the
        // variant that ran them.
        assert_eq!(a.memory_accesses(), 0);
        let mut b = OpStats::default();
        b.tuner_switch();
        b.merge(&a);
        assert_eq!((b.tuner_samples, b.tuner_switches), (128, 2));
        // The unit sink accepts the new events too.
        let mut unit = ();
        unit.tuner_samples(1);
        unit.tuner_switch();
    }

    #[test]
    fn flatten_counters_count_and_merge() {
        let mut a = OpStats::default();
        a.find_start();
        a.find_start();
        a.find_hops(3);
        a.find_hops(0);
        a.flatten_pass();
        a.flatten_jump();
        a.flatten_jump();
        a.flatten_cas_lost();
        assert_eq!(
            (a.find_hops, a.flatten_passes, a.flatten_jumps, a.flatten_cas_lost),
            (3, 1, 2, 1)
        );
        assert!((a.hops_per_find() - 1.5).abs() < 1e-12);
        // Hops and flatten tallies are attribution bookkeeping; the loads
        // and CASes they describe are already counted by read /
        // compact_cas_ok / compact_cas_fail.
        assert_eq!(a.memory_accesses(), 0);
        let mut b = OpStats::default();
        b.flatten_cas_lost();
        b.merge(&a);
        assert_eq!(
            (b.find_hops, b.flatten_passes, b.flatten_jumps, b.flatten_cas_lost),
            (3, 1, 2, 2)
        );
        // The unit sink accepts the new events too.
        let mut unit = ();
        unit.find_hops(1);
        unit.flatten_pass();
        unit.flatten_jump();
        unit.flatten_cas_lost();
    }

    #[test]
    fn epoch_counters_count_and_merge() {
        let mut a = OpStats::default();
        a.snapshot_taken();
        a.snapshot_taken();
        a.segments_forked(3);
        a.rollback_done();
        a.cow_copies(128);
        assert_eq!(
            (a.snapshots_taken, a.segments_forked, a.rollbacks, a.cow_copies),
            (2, 3, 1, 128)
        );
        // Epoch events are versioning bookkeeping, not shared-memory
        // accesses — the fork copies' loads/stores happen outside the
        // ParentStore access contract the paper's work bounds count.
        assert_eq!(a.memory_accesses(), 0);
        let mut b = OpStats::default();
        b.rollback_done();
        b.merge(&a);
        assert_eq!(
            (b.snapshots_taken, b.segments_forked, b.rollbacks, b.cow_copies),
            (2, 3, 2, 128)
        );
        // The unit sink accepts the new events too.
        let mut unit = ();
        unit.snapshot_taken();
        unit.segments_forked(1);
        unit.rollback_done();
        unit.cow_copies(1);
    }

    #[test]
    fn iters_per_op() {
        let mut s = OpStats::default();
        s.op_start();
        s.op_start();
        s.loop_iter();
        s.loop_iter();
        s.loop_iter();
        assert!((s.iters_per_op() - 1.5).abs() < 1e-12);
    }
}

//! The concurrent `Find` variants (paper Algorithms 1, 4, 5).
//!
//! A find walks parent pointers from a node to a root. With compaction, it
//! also tries to swing each visited node's parent to its grandparent with a
//! CAS; a failed CAS means another process got there first, which is fine —
//! every parent change replaces a parent by one of its proper ancestors in
//! the union forest (Lemma 3.1), so compaction can never break reachability.
//!
//! The paper chooses *splitting* over halving in the concurrent setting
//! because two processes doing halving in lockstep simulate one process
//! doing splitting (Section 3), so halving cannot win; we still provide
//! [`Halving`] for the ablation experiment that demonstrates this.

use crate::stats::StatsSink;
use crate::store::ParentStore;

mod sealed {
    /// Prevents downstream crates from implementing [`super::FindPolicy`]:
    /// the set of policies is fixed by the paper, and sealing lets us evolve
    /// the trait without breaking users (C-SEALED).
    pub trait Sealed {}
}

/// A strategy for the concurrent `Find` traversal.
///
/// This trait is **sealed**: the implementations are exactly the paper's
/// variants ([`NoCompaction`], [`OneTrySplit`], [`TwoTrySplit`]) plus
/// [`Halving`] for ablations.
pub trait FindPolicy: sealed::Sealed + Send + Sync + 'static {
    /// Short name used in experiment tables (e.g. `"two-try"`).
    const NAME: &'static str;

    /// Walks from `x` to a node that was a root at the moment its parent
    /// word was read (the linearization point of the find), compacting the
    /// path per policy. Returns the root *and the word it was observed
    /// with*, so callers (notably `Unite`) can CAS against or read
    /// priorities from that exact observation without re-loading.
    fn find<P: ParentStore + ?Sized, S: StatsSink>(
        store: &P,
        x: usize,
        stats: &mut S,
    ) -> (usize, P::Word);

    /// One early-termination round (the body of the `while` loop in paper
    /// Algorithms 6/7 after the return checks): performs this policy's
    /// compaction step(s) at `u` and returns the next current node.
    ///
    /// The caller is responsible for the root/equality checks; `advance` on
    /// a root returns the root itself.
    fn advance<P: ParentStore + ?Sized, S: StatsSink>(store: &P, u: usize, stats: &mut S) -> usize;
}

/// Paper Algorithm 1: follow parent pointers to the root, never writing.
///
/// Work per find is the current depth of the node; Theorem 4.3 still gives
/// `O(log n)` w.h.p. thanks to randomized linking alone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoCompaction;

impl sealed::Sealed for NoCompaction {}

impl FindPolicy for NoCompaction {
    const NAME: &'static str = "no-compaction";

    fn find<P: ParentStore + ?Sized, S: StatsSink>(
        store: &P,
        x: usize,
        stats: &mut S,
    ) -> (usize, P::Word) {
        stats.find_start();
        let mut u = x;
        let mut hops = 0;
        loop {
            stats.loop_iter();
            let wu = store.load_word(u);
            stats.read();
            let v = P::parent_of(wu);
            if v == u {
                stats.find_hops(hops);
                return (u, wu);
            }
            u = v;
            hops += 1;
        }
    }

    fn advance<P: ParentStore + ?Sized, S: StatsSink>(store: &P, u: usize, stats: &mut S) -> usize {
        stats.loop_iter();
        let v = store.load_parent(u);
        stats.read();
        v
    }
}

/// Paper Algorithm 4: *one-try splitting*. Each loop iteration reads
/// `v = u.parent` and `w = v.parent`; if `v` is a root it is returned,
/// otherwise one CAS tries to swing `u.parent` from `v` to `w` and the walk
/// advances to `v` regardless of the CAS outcome.
///
/// Expected total work `O(m(α(n, m/np²) + log(np²/m + 1)))` (Theorem 5.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OneTrySplit;

impl sealed::Sealed for OneTrySplit {}

impl FindPolicy for OneTrySplit {
    const NAME: &'static str = "one-try";

    fn find<P: ParentStore + ?Sized, S: StatsSink>(
        store: &P,
        x: usize,
        stats: &mut S,
    ) -> (usize, P::Word) {
        stats.find_start();
        let mut u = x;
        let mut hops = 0;
        loop {
            stats.loop_iter();
            let wu = store.load_word(u);
            stats.read();
            let v = P::parent_of(wu);
            let wv = store.load_word(v);
            stats.read();
            let w = P::parent_of(wv);
            if v == w {
                stats.find_hops(hops + usize::from(v != u));
                return (v, wv);
            }
            if store.cas_from(u, wu, w) {
                stats.compact_cas_ok();
            } else {
                stats.compact_cas_fail();
            }
            u = v;
            hops += 1;
        }
    }

    fn advance<P: ParentStore + ?Sized, S: StatsSink>(store: &P, u: usize, stats: &mut S) -> usize {
        stats.loop_iter();
        split_step(store, u, stats)
    }
}

/// Paper Algorithm 5: *two-try splitting*. Like [`OneTrySplit`] but each
/// parent update is attempted twice before the walk advances, which tightens
/// the work bound to `Θ(m(α(n, m/np) + log(np/m + 1)))` (Theorem 5.1) — the
/// paper's headline result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TwoTrySplit;

impl sealed::Sealed for TwoTrySplit {}

impl FindPolicy for TwoTrySplit {
    const NAME: &'static str = "two-try";

    fn find<P: ParentStore + ?Sized, S: StatsSink>(
        store: &P,
        x: usize,
        stats: &mut S,
    ) -> (usize, P::Word) {
        stats.find_start();
        let mut u = x;
        let mut hops = 0;
        loop {
            stats.loop_iter();
            let mut v = 0;
            for _ in 0..2 {
                let wu = store.load_word(u);
                stats.read();
                v = P::parent_of(wu);
                let wv = store.load_word(v);
                stats.read();
                let w = P::parent_of(wv);
                if v == w {
                    stats.find_hops(hops + usize::from(v != u));
                    return (v, wv);
                }
                if store.cas_from(u, wu, w) {
                    stats.compact_cas_ok();
                } else {
                    stats.compact_cas_fail();
                }
            }
            u = v;
            hops += 1;
        }
    }

    fn advance<P: ParentStore + ?Sized, S: StatsSink>(store: &P, u: usize, stats: &mut S) -> usize {
        stats.loop_iter();
        let mut z = u;
        for _ in 0..2 {
            z = split_step(store, u, stats);
        }
        z
    }
}

/// Concurrent path halving, the compaction Anderson & Woll used: after the
/// grandparent probe and CAS, the walk jumps to the *grandparent* rather
/// than the parent. Section 3 of the paper shows halving cannot beat
/// splitting concurrently; this policy exists so experiment E6/E12 can show
/// it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Halving;

impl sealed::Sealed for Halving {}

impl FindPolicy for Halving {
    const NAME: &'static str = "halving";

    fn find<P: ParentStore + ?Sized, S: StatsSink>(
        store: &P,
        x: usize,
        stats: &mut S,
    ) -> (usize, P::Word) {
        stats.find_start();
        let mut u = x;
        let mut hops = 0;
        loop {
            stats.loop_iter();
            let wu = store.load_word(u);
            stats.read();
            let v = P::parent_of(wu);
            let wv = store.load_word(v);
            stats.read();
            let w = P::parent_of(wv);
            if v == w {
                stats.find_hops(hops + usize::from(v != u));
                return (v, wv);
            }
            if store.cas_from(u, wu, w) {
                stats.compact_cas_ok();
            } else {
                stats.compact_cas_fail();
            }
            // Jump two levels: w is an ancestor of u in the union forest
            // whether or not the CAS succeeded (Lemma 3.1).
            u = w;
            hops += 2;
        }
    }

    fn advance<P: ParentStore + ?Sized, S: StatsSink>(store: &P, u: usize, stats: &mut S) -> usize {
        stats.loop_iter();
        let v = store.load_parent(u);
        stats.read();
        let w = store.load_parent(v);
        stats.read();
        if v == w {
            return v;
        }
        if store.cas_parent(u, v, w) {
            stats.compact_cas_ok();
        } else {
            stats.compact_cas_fail();
        }
        w
    }
}

/// Concurrent two-pass **path compression** — the Section 6 conjecture.
///
/// The paper conjectures that "appropriate concurrent versions of
/// compression will have the bounds of Theorems 5.1 and 5.2" while noting
/// splitting is likely the method of choice (compression needs two passes
/// and is not purely local). This is such an appropriate version:
///
/// 1. First pass walks to a root `r`, recording each `(node, parent)` pair
///    it read.
/// 2. Second pass CASes every recorded node's parent from the *recorded*
///    value to `r`.
///
/// Expecting the recorded parent is what keeps Lemma 3.1 intact: the CAS
/// succeeds only if the parent is unchanged since the first pass, and `r`
/// was read as an ancestor of that exact parent, so every successful update
/// still replaces a parent by a proper union-forest ancestor. If another
/// process moved the parent meanwhile, the CAS fails and we simply skip —
/// one try per node, like [`OneTrySplit`].
///
/// Unlike the other policies this one allocates (the recorded path), which
/// is the concurrent face of the paper's "compression requires two passes
/// over the find path".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Compress;

impl sealed::Sealed for Compress {}

impl FindPolicy for Compress {
    const NAME: &'static str = "compress";

    fn find<P: ParentStore + ?Sized, S: StatsSink>(
        store: &P,
        x: usize,
        stats: &mut S,
    ) -> (usize, P::Word) {
        stats.find_start();
        // Pass 1: locate a root, remembering the words the parents were
        // read from (pass 2 CASes against these exact observations).
        let mut path: Vec<(usize, P::Word)> = Vec::new();
        let mut r = x;
        let root_word = loop {
            stats.loop_iter();
            let wr = store.load_word(r);
            stats.read();
            let p = P::parent_of(wr);
            if p == r {
                break wr;
            }
            path.push((r, wr));
            r = p;
        };
        stats.find_hops(path.len());
        // Pass 2: swing everything at the root (skip the node whose parent
        // already is the root).
        for &(u, wu) in &path {
            if P::parent_of(wu) != r {
                if store.cas_from(u, wu, r) {
                    stats.compact_cas_ok();
                } else {
                    stats.compact_cas_fail();
                }
            }
        }
        (r, root_word)
    }

    fn advance<P: ParentStore + ?Sized, S: StatsSink>(store: &P, u: usize, stats: &mut S) -> usize {
        // Compression is not local, so early-termination rounds fall back
        // to a single splitting step (the paper's "method of choice" for
        // local compaction).
        stats.loop_iter();
        split_step(store, u, stats)
    }
}

/// One splitting step at `u` (the body of the `do twice` in Algorithms 6/7):
/// `z ← u.parent; w ← z.parent; CAS(u.parent, z, w)`; returns `z`.
///
/// When `z` is a root (`z == w`) the paper's CAS would write the value
/// already present; we skip that degenerate CAS (pure optimization, no
/// semantic difference).
fn split_step<P: ParentStore + ?Sized, S: StatsSink>(store: &P, u: usize, stats: &mut S) -> usize {
    let wu = store.load_word(u);
    stats.read();
    let z = P::parent_of(wu);
    let wz = store.load_word(z);
    stats.read();
    let w = P::parent_of(wz);
    if z != w {
        if store.cas_from(u, wu, w) {
            stats.compact_cas_ok();
        } else {
            stats.compact_cas_fail();
        }
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::FlatStore;
    use std::sync::atomic::Ordering;

    /// Builds a path 0 -> 1 -> ... -> n-1 (n-1 is the root).
    fn path_store(n: usize) -> FlatStore {
        let store = FlatStore::new(n);
        for i in 0..n - 1 {
            store.parent_cell(i).store(i + 1, Ordering::Relaxed);
        }
        store
    }

    #[test]
    fn no_compaction_finds_root_and_writes_nothing() {
        let store = path_store(8);
        let mut stats = crate::OpStats::default();
        assert_eq!(NoCompaction::find(&store, 0, &mut stats).0, 7);
        assert_eq!(stats.compact_cas_ok + stats.compact_cas_fail, 0);
        assert_eq!(store.snapshot(), vec![1, 2, 3, 4, 5, 6, 7, 7]);
        assert_eq!(stats.reads, 8); // one read per node incl. root self-loop
    }

    #[test]
    fn one_try_split_compacts_every_visited_node() {
        let store = path_store(8);
        let mut stats = crate::OpStats::default();
        assert_eq!(OneTrySplit::find(&store, 0, &mut stats).0, 7);
        // Sequentially, splitting sets parent[u] to its grandparent for
        // every non-(root/child-of-root) node on the path.
        assert_eq!(store.snapshot(), vec![2, 3, 4, 5, 6, 7, 7, 7]);
        assert_eq!(stats.compact_cas_fail, 0, "uncontended CAS never fails");
        assert!(stats.compact_cas_ok > 0);
    }

    #[test]
    fn two_try_split_compacts_twice_per_iteration_when_uncontended() {
        let a = path_store(9);
        let b = path_store(9);
        let mut s = ();
        assert_eq!(TwoTrySplit::find(&a, 0, &mut s).0, 8);
        assert_eq!(OneTrySplit::find(&b, 0, &mut s).0, 8);
        // Uncontended, the first try always succeeds, so two-try's second
        // try sees the already-updated parent and splits once more: node 0
        // ends two grandparents up, versus one for one-try.
        assert_eq!(a.snapshot()[0], 3);
        assert_eq!(b.snapshot()[0], 2);
    }

    #[test]
    fn halving_updates_alternate_nodes() {
        let store = path_store(9);
        let mut stats = crate::OpStats::default();
        assert_eq!(Halving::find(&store, 0, &mut stats).0, 8);
        // Visited nodes 0, 2, 4, 6 get halved; 1, 3, 5 untouched.
        assert_eq!(store.snapshot(), vec![2, 2, 4, 4, 6, 6, 8, 8, 8]);
    }

    #[test]
    fn find_on_root_returns_immediately() {
        let store = FlatStore::new(3);
        let mut s = ();
        assert_eq!(NoCompaction::find(&store, 1, &mut s).0, 1);
        assert_eq!(OneTrySplit::find(&store, 1, &mut s).0, 1);
        assert_eq!(TwoTrySplit::find(&store, 1, &mut s).0, 1);
        assert_eq!(Halving::find(&store, 1, &mut s).0, 1);
    }

    #[test]
    fn advance_on_root_stays_put() {
        let store = FlatStore::new(2);
        let mut s = ();
        assert_eq!(NoCompaction::advance(&store, 0, &mut s), 0);
        assert_eq!(OneTrySplit::advance(&store, 0, &mut s), 0);
        assert_eq!(TwoTrySplit::advance(&store, 0, &mut s), 0);
        assert_eq!(Halving::advance(&store, 0, &mut s), 0);
    }

    #[test]
    fn advance_moves_one_step_for_splitting() {
        let store = path_store(8);
        let mut s = ();
        // One-try advance: z = parent(0) = 1.
        assert_eq!(OneTrySplit::advance(&store, 0, &mut s), 1);
        // parent(0) was CASed to 2.
        assert_eq!(store.load_parent(0), 2);
    }

    #[test]
    fn advance_moves_two_steps_for_halving() {
        let store = path_store(8);
        let mut s = ();
        assert_eq!(Halving::advance(&store, 0, &mut s), 2);
        assert_eq!(store.load_parent(0), 2);
    }

    #[test]
    fn two_try_advance_performs_two_splits() {
        let store = path_store(8);
        let mut stats = crate::OpStats::default();
        let z = TwoTrySplit::advance(&store, 0, &mut stats);
        // First split: parent(0): 1 -> 2, z = 1. Second: parent(0): 2 -> 3,
        // z = 2 (reads fresh parent both times).
        assert_eq!(z, 2);
        assert_eq!(store.load_parent(0), 3);
        assert_eq!(stats.compact_cas_ok, 2);
    }

    #[test]
    fn every_policy_terminates_under_concurrent_mutation() {
        // Stress: many threads find from random nodes of a long path; all
        // must terminate and return the root.
        use std::sync::Arc;
        let store = Arc::new(path_store(1 << 12));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    let mut s = ();
                    for i in 0..(1 << 12) {
                        let start = (i * 2654435761usize + t * 97) % (1 << 12);
                        match t % 4 {
                            0 => assert_eq!(
                                NoCompaction::find(&*store, start, &mut s).0,
                                (1 << 12) - 1
                            ),
                            1 => assert_eq!(
                                OneTrySplit::find(&*store, start, &mut s).0,
                                (1 << 12) - 1
                            ),
                            2 => assert_eq!(
                                TwoTrySplit::find(&*store, start, &mut s).0,
                                (1 << 12) - 1
                            ),
                            _ => assert_eq!(Halving::find(&*store, start, &mut s).0, (1 << 12) - 1),
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn find_hops_measure_walk_length() {
        // Path 0 -> 1 -> ... -> 7: a plain walk from 0 is 7 hops, and so
        // is a compressing one (pass 1 walks the whole path).
        let mut s = crate::OpStats::default();
        NoCompaction::find(&path_store(8), 0, &mut s);
        assert_eq!(s.find_hops, 7);
        let mut s = crate::OpStats::default();
        OneTrySplit::find(&path_store(8), 0, &mut s);
        assert_eq!(s.find_hops, 7);
        let mut s = crate::OpStats::default();
        Compress::find(&path_store(8), 0, &mut s);
        assert_eq!(s.find_hops, 7);
        // Level-skipping walks (halving, two-try's second try) report the
        // steps they actually took, not the original depth.
        let mut s = crate::OpStats::default();
        TwoTrySplit::find(&path_store(8), 0, &mut s);
        assert!(s.find_hops >= 3 && s.find_hops <= 7, "{}", s.find_hops);
        // A find that starts at a root is zero hops under every policy.
        let store = FlatStore::new(3);
        let mut s = crate::OpStats::default();
        NoCompaction::find(&store, 1, &mut s);
        OneTrySplit::find(&store, 1, &mut s);
        TwoTrySplit::find(&store, 1, &mut s);
        Halving::find(&store, 1, &mut s);
        Compress::find(&store, 1, &mut s);
        assert_eq!(s.find_hops, 0);
        assert_eq!(s.finds, 5);
        // Depth-1 finds are exactly one hop — the post-flatten shape.
        let store = path_store(2);
        let mut s = crate::OpStats::default();
        NoCompaction::find(&store, 0, &mut s);
        TwoTrySplit::find(&store, 0, &mut s);
        assert_eq!(s.find_hops, 2);
    }

    #[test]
    fn policy_names() {
        assert_eq!(NoCompaction::NAME, "no-compaction");
        assert_eq!(OneTrySplit::NAME, "one-try");
        assert_eq!(TwoTrySplit::NAME, "two-try");
        assert_eq!(Halving::NAME, "halving");
        assert_eq!(Compress::NAME, "compress");
    }

    #[test]
    fn compress_flattens_whole_path_uncontended() {
        let store = path_store(8);
        let mut stats = crate::OpStats::default();
        assert_eq!(Compress::find(&store, 0, &mut stats).0, 7);
        // Every node on the path now points straight at the root (node 6
        // already did).
        assert_eq!(store.snapshot(), vec![7, 7, 7, 7, 7, 7, 7, 7]);
        assert_eq!(stats.compact_cas_ok, 6);
        assert_eq!(stats.compact_cas_fail, 0);
        // A second find is all root-probe, no CASes.
        let mut stats2 = crate::OpStats::default();
        assert_eq!(Compress::find(&store, 0, &mut stats2).0, 7);
        assert_eq!(stats2.cas_attempts(), 0);
        assert_eq!(stats2.reads, 2);
    }

    #[test]
    fn compress_skips_changed_parents() {
        use std::sync::atomic::Ordering;
        // Simulate a racing update between the two passes by doing pass 1
        // manually: start a find, then mutate, then check the stale CAS
        // fails gracefully. Easiest deterministic equivalent: run a find
        // concurrently with heavy mutation and just require termination +
        // a root result (exercised more in the stress test below).
        let store = path_store(16);
        store.parent_cell(0).store(5, Ordering::SeqCst);
        let mut s = ();
        let r = Compress::find(&store, 0, &mut s).0;
        assert_eq!(r, 15);
        assert_eq!(store.load_parent(0), 15);
    }

    #[test]
    fn compress_terminates_under_concurrent_mutation() {
        use std::sync::Arc;
        let store = Arc::new(path_store(1 << 10));
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    let mut s = ();
                    for i in 0..2000 {
                        let start = (i * 37 + t * 131) % (1 << 10);
                        assert_eq!(Compress::find(&*store, start, &mut s).0, (1 << 10) - 1);
                    }
                });
            }
        });
        // Everything should be fully flattened by now.
        let snap = store.snapshot();
        assert!(snap.iter().all(|&p| p == (1 << 10) - 1));
    }

    #[test]
    fn compress_advance_is_a_split_step() {
        let store = path_store(8);
        let mut s = ();
        assert_eq!(Compress::advance(&store, 0, &mut s), 1);
        assert_eq!(store.load_parent(0), 2);
    }
}

//! Parent-pointer storage: the packed single-word store, the flat two-array
//! store, and the memory-ordering contract of the hot path.
//!
//! # Why storage is a type parameter
//!
//! The paper's algorithms touch shared state only through single-word reads
//! and CASes of parent pointers, plus reads of each element's *immutable*
//! random id. Everything else — where those words live, whether the id
//! travels with the parent, which memory orderings the accesses use — is a
//! layout decision the algorithms never observe. [`ParentStore`] abstracts
//! the mutable word, [`DsuStore`] bundles it with the random order, and
//! [`Dsu`](crate::Dsu) is generic over the bundle.
//!
//! # The packed layout ([`PackedStore`], the default)
//!
//! One `AtomicU64` per element:
//!
//! ```text
//!   63            32 31             0
//!  +----------------+----------------+
//!  |   random id    |  parent index  |
//!  +----------------+----------------+
//!      immutable          mutable
//! ```
//!
//! A find reads the parent *and* the linking priority of a node in one
//! load, eight elements share a cache line, and the whole structure is one
//! 8-byte word per element — half the footprint of the flat layout's
//! parent-array-plus-id-array. `Unite` compares root priorities straight
//! from the packed words; there is no side array to miss on. Because the
//! high 32 bits never change after construction, a CAS that only moves the
//! parent can reconstruct the full expected/new words from any read of the
//! cell, and the id bits can be read at any ordering.
//!
//! **Universe bound:** both halves are 32 bits, so the packed layout
//! supports at most `2^32` elements ([`PackedStore::MAX_UNIVERSE`]).
//! Constructing a larger universe panics with a clear message — use
//! `Dsu<F, FlatStore>` for universes beyond the bound (the flat layout
//! stores full-width words).
//!
//! # The flat layout ([`FlatStore`])
//!
//! The direct translation of the paper: an `AtomicUsize` parent slab plus a
//! separate random-permutation id array. Full `usize` range, one extra
//! cache-line touch whenever an operation needs an id. Kept as the
//! reference layout, the `n > 2^32` fallback, and the baseline the packed
//! store is benchmarked against.
//!
//! # Memory orderings (and the `strict-sc` feature)
//!
//! The paper's APRAM model assumes sequentially consistent single-word
//! registers, but its proofs lean only on the *per-cell* modification order
//! of the parent words, never on a global total order of unrelated
//! accesses:
//!
//! * Lemma 3.1 (parents strictly increase in the random order) is a
//!   property of each cell's CAS history in isolation — every successful
//!   CAS is justified by a value read from that same cell, which
//!   [`Ordering::Relaxed`] already guarantees (cache coherence).
//! * Linearizability (Lemma 3.2) needs a find that reaches a root to have
//!   seen every link CAS on the path it walked. A successful link/compact
//!   CAS publishes with **`Release`** ([`CAS_SUCCESS`]) and every traversal
//!   read is an **`Acquire`** load ([`LOAD`]), so walking `u → parent(u)`
//!   synchronizes-with the CAS that installed that parent: the classic
//!   message-passing pattern, applied edge by edge up the tree.
//! * A *failed* CAS publishes nothing — it only tells the caller "retry or
//!   move on" — so its failure ordering is **`Relaxed`** ([`CAS_FAILURE`]).
//!   Likewise the statistics counters ([`STAT`]) are mere tallies.
//!
//! One honest caveat: the per-path message-passing argument above covers
//! the orderings each operation *relies on*, but Release/Acquire alone does
//! not forbid IRIW-style outcomes (two readers disagreeing about the order
//! of two independent links), which full linearizability of query-only
//! histories formally needs. On multi-copy-atomic hardware — x86-64 and
//! ARMv8, every tier-1 Rust target — such outcomes cannot occur, so the
//! default build is linearizable there; on non-multi-copy-atomic machines
//! (e.g. POWER) the paper-exact guarantee needs the `strict-sc` build,
//! which pins every access back to `SeqCst` and restores the literal APRAM
//! translation for model-fidelity experiments (`e12_cas_anatomy`, the
//! APRAM cross-checks). The test suite passes under both configurations,
//! and `tests/packed_vs_flat.rs` cross-checks the two layouts operation by
//! operation.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::order::{IdOrder, PermutationOrder};

/// Ordering of every traversal load of a parent word: `Acquire`, so a read
/// of a parent installed by a `Release` CAS also sees the writes that
/// preceded the CAS (`SeqCst` under `strict-sc`).
#[cfg(not(feature = "strict-sc"))]
pub const LOAD: Ordering = Ordering::Acquire;
/// Ordering of every traversal load of a parent word (strict-sc: `SeqCst`).
#[cfg(feature = "strict-sc")]
pub const LOAD: Ordering = Ordering::SeqCst;

/// Success ordering of link and compaction CASes: `Release`, publishing the
/// new parent edge to subsequent `Acquire` traversals (`SeqCst` under
/// `strict-sc`).
#[cfg(not(feature = "strict-sc"))]
pub const CAS_SUCCESS: Ordering = Ordering::Release;
/// Success ordering of link and compaction CASes (strict-sc: `SeqCst`).
#[cfg(feature = "strict-sc")]
pub const CAS_SUCCESS: Ordering = Ordering::SeqCst;

/// Failure ordering of link and compaction CASes: `Relaxed` — a failed CAS
/// publishes nothing and the loser re-reads with [`LOAD`] anyway (`SeqCst`
/// under `strict-sc`).
#[cfg(not(feature = "strict-sc"))]
pub const CAS_FAILURE: Ordering = Ordering::Relaxed;
/// Failure ordering of link and compaction CASes (strict-sc: `SeqCst`).
#[cfg(feature = "strict-sc")]
pub const CAS_FAILURE: Ordering = Ordering::SeqCst;

/// Ordering for reads of immutable id bits and for statistic counters:
/// `Relaxed` — ids never change after construction and counters are
/// tallies, not synchronization (`SeqCst` under `strict-sc`).
#[cfg(not(feature = "strict-sc"))]
pub const STAT: Ordering = Ordering::Relaxed;
/// Ordering for immutable-id reads and statistic counters (strict-sc:
/// `SeqCst`).
#[cfg(feature = "strict-sc")]
pub const STAT: Ordering = Ordering::SeqCst;

/// `true` when the `strict-sc` feature pinned all orderings to `SeqCst`.
pub const fn strict_sc() -> bool {
    cfg!(feature = "strict-sc")
}

/// A table of atomic parent words indexed by element.
///
/// The *word* ([`ParentStore::Word`]) is the store's unit of atomicity:
/// the raw `u64` for the packed layout, the bare parent `usize` for the
/// flat one. The traversal loop works on words — one load yields both the
/// next parent ([`parent_of`](ParentStore::parent_of)) and, in the packed
/// layout, the element's linking priority — and every CAS expects the
/// *exact word previously seen* ([`cas_from`](ParentStore::cas_from)), so
/// no layout ever needs a second read to reconstruct its CAS operands.
///
/// Implementations must expose, for each existing element, one logical
/// cell with a coherent modification order, and must only be asked about
/// elements that exist (callers bounds-check first; implementations may
/// panic otherwise).
pub trait ParentStore: Send + Sync {
    /// The atomically accessed unit (parent index plus any inline fields).
    type Word: Copy + PartialEq;

    /// Loads the word of `i` ([`LOAD`] ordering).
    fn load_word(&self, i: usize) -> Self::Word;

    /// The parent index carried by a word.
    fn parent_of(w: Self::Word) -> usize;

    /// CASes `i`'s cell from exactly `seen` to the word carrying
    /// `new_parent` (and `seen`'s immutable fields); `true` on success
    /// ([`CAS_SUCCESS`] / [`CAS_FAILURE`] orderings).
    fn cas_from(&self, i: usize, seen: Self::Word, new_parent: usize) -> bool;

    /// The linking priority of element `i` as carried by its word `w` —
    /// free for packed layouts, an id lookup for flat ones.
    ///
    /// Contract: `(priority(u, wu), u) < (priority(v, wv), v)` must agree
    /// with the store's [`IdOrder`] — i.e. the
    /// index breaks priority ties — so `Unite` may link by priority
    /// without consulting the order again.
    fn priority(&self, i: usize, w: Self::Word) -> u64;

    /// Convenience: the parent of `i` ([`LOAD`] ordering).
    #[inline]
    fn load_parent(&self, i: usize) -> usize {
        Self::parent_of(self.load_word(i))
    }

    /// CASes the parent of `i` from `old` to `new` by value; `true` on
    /// success. Used by call sites that have no previously seen word (the
    /// blind link of early-termination `Unite`); packed layouts pay one
    /// extra (cache-hot) read here to learn the immutable id bits.
    #[inline]
    fn cas_parent(&self, i: usize, old: usize, new: usize) -> bool {
        let seen = self.load_word(i);
        Self::parent_of(seen) == old && self.cas_from(i, seen, new)
    }

    /// `true` iff `u` precedes `v` in the store's random linking order —
    /// the `(priority, index)` comparison of the [`priority`] contract.
    /// This is the *only* order the concurrent operations consult, so a
    /// store can never be driven by two disagreeing orders.
    ///
    /// [`priority`]: ParentStore::priority
    #[inline]
    fn precedes(&self, u: usize, v: usize) -> bool {
        (self.priority(u, self.load_word(u)), u) < (self.priority(v, self.load_word(v)), v)
    }
}

/// A [`ParentStore`] bundled with the random total order on its elements —
/// everything [`Dsu`](crate::Dsu) needs from its storage type parameter.
pub trait DsuStore: ParentStore + IdOrder {
    /// Short layout name for reports (e.g. `"packed"`, `"flat"`).
    const NAME: &'static str;

    /// `n` singleton cells (`parent[i] == i`) with ids drawn as a uniform
    /// random permutation of `0..n` seeded by `seed`.
    ///
    /// Two stores built with the same `(n, seed)` — of *any* layout —
    /// assign identical ids, so layouts are interchangeable mid-experiment.
    fn with_seed(n: usize, seed: u64) -> Self;

    /// Number of cells.
    fn len(&self) -> usize;

    /// `true` when the store has no cells.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The random id (position in the random total order) of element `u`.
    fn id_of(&self, u: usize) -> u64;

    /// A non-atomic snapshot of all parents. Only meaningful at quiescence;
    /// used by tests and offline analysis.
    fn snapshot(&self) -> Vec<usize>;
}

// ---------------------------------------------------------------------------
// Packed store
// ---------------------------------------------------------------------------

/// Low half of a packed word: the mutable parent index (shared by
/// [`PackedStore`] and the growable packed segments).
pub(crate) const PARENT_MASK: u64 = 0xFFFF_FFFF;
/// Bit offset of the immutable id half of a packed word.
pub(crate) const ID_SHIFT: u32 = 32;

/// Packs an id/parent pair into one word (shared by both packed layouts).
#[inline]
pub(crate) const fn pack_word(id: u64, parent: usize) -> u64 {
    (id << ID_SHIFT) | parent as u64
}

/// The parent index carried by a packed word.
#[inline]
pub(crate) const fn packed_parent(w: u64) -> usize {
    (w & PARENT_MASK) as usize
}

/// The id carried by a packed word.
#[inline]
pub(crate) const fn packed_id(w: u64) -> u64 {
    w >> ID_SHIFT
}

/// The word `seen` with its parent half replaced by `new_parent` (id half
/// untouched — ids are immutable, so this is the CAS replacement word).
#[inline]
pub(crate) const fn packed_with_parent(seen: u64, new_parent: usize) -> u64 {
    (seen & !PARENT_MASK) | new_parent as u64
}

/// The packed single-word store: parent index in the low 32 bits, random id
/// in the high 32 (see the module docs for layout and ordering rationale).
///
/// The default store of [`Dsu`](crate::Dsu); supports universes up to
/// [`PackedStore::MAX_UNIVERSE`] elements.
pub struct PackedStore {
    words: Box<[AtomicU64]>,
}

impl std::fmt::Debug for PackedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackedStore").field("len", &self.words.len()).finish()
    }
}

impl PackedStore {
    /// Largest universe the 32-bit parent/id halves can address.
    pub const MAX_UNIVERSE: u64 = 1 << 32;

    /// `n` singleton cells with permutation ids (see [`DsuStore::with_seed`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`PackedStore::MAX_UNIVERSE`].
    pub fn with_seed(n: usize, seed: u64) -> Self {
        assert!(
            n as u64 <= Self::MAX_UNIVERSE,
            "PackedStore packs parent and id into 32 bits each and supports at most 2^32 \
             elements, but n = {n}; use the flat layout (`Dsu<_, FlatStore>`) for larger \
             universes"
        );
        let order = PermutationOrder::new(n, seed);
        let words = (0..n).map(|i| AtomicU64::new(pack_word(order.id_of(i), i))).collect();
        PackedStore { words }
    }
}

impl ParentStore for PackedStore {
    type Word = u64;

    #[inline]
    fn load_word(&self, i: usize) -> u64 {
        self.words[i].load(LOAD)
    }

    #[inline]
    fn parent_of(w: u64) -> usize {
        packed_parent(w)
    }

    #[inline]
    fn cas_from(&self, i: usize, seen: u64, new_parent: usize) -> bool {
        // The id half never changes, so `seen`'s high bits are the id bits
        // of the replacement word too — no re-read needed.
        self.words[i]
            .compare_exchange(seen, packed_with_parent(seen, new_parent), CAS_SUCCESS, CAS_FAILURE)
            .is_ok()
    }

    #[inline]
    fn priority(&self, _i: usize, w: u64) -> u64 {
        packed_id(w)
    }
}

impl IdOrder for PackedStore {
    #[inline]
    fn less(&self, u: usize, v: usize) -> bool {
        // Priorities come straight from the packed words — no side array.
        packed_id(self.words[u].load(STAT)) < packed_id(self.words[v].load(STAT))
    }
}

impl DsuStore for PackedStore {
    const NAME: &'static str = "packed";

    fn with_seed(n: usize, seed: u64) -> Self {
        PackedStore::with_seed(n, seed)
    }

    fn len(&self) -> usize {
        self.words.len()
    }

    fn id_of(&self, u: usize) -> u64 {
        packed_id(self.words[u].load(STAT))
    }

    fn snapshot(&self) -> Vec<usize> {
        self.words.iter().map(|w| packed_parent(w.load(Ordering::Relaxed))).collect()
    }
}

// ---------------------------------------------------------------------------
// Flat store
// ---------------------------------------------------------------------------

/// The flat two-array store: an `AtomicUsize` parent slab plus a separate
/// permutation id array. Full `usize` universe range; the reference layout
/// the packed store is cross-checked and benchmarked against.
#[derive(Debug)]
pub struct FlatStore {
    parents: Box<[AtomicUsize]>,
    order: PermutationOrder,
}

impl FlatStore {
    /// Seed used by [`FlatStore::new`] (tests that don't care about ids).
    const DEFAULT_SEED: u64 = 0;

    /// `n` singleton cells (`parent[i] == i`) with a default id seed.
    pub fn new(n: usize) -> Self {
        Self::with_seed(n, Self::DEFAULT_SEED)
    }

    /// `n` singleton cells with permutation ids (see [`DsuStore::with_seed`]).
    pub fn with_seed(n: usize, seed: u64) -> Self {
        FlatStore {
            parents: (0..n).map(AtomicUsize::new).collect(),
            order: PermutationOrder::new(n, seed),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// `true` when the store has no cells.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// The atomic parent cell of element `i` — for tests and simulators
    /// that build forests directly.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not an existing element.
    pub fn parent_cell(&self, i: usize) -> &AtomicUsize {
        &self.parents[i]
    }

    /// A non-atomic snapshot of all parents (quiescence only).
    pub fn snapshot(&self) -> Vec<usize> {
        self.parents.iter().map(|p| p.load(Ordering::Relaxed)).collect()
    }
}

impl ParentStore for FlatStore {
    type Word = usize;

    #[inline]
    fn load_word(&self, i: usize) -> usize {
        self.parents[i].load(LOAD)
    }

    #[inline]
    fn parent_of(w: usize) -> usize {
        w
    }

    #[inline]
    fn cas_from(&self, i: usize, seen: usize, new_parent: usize) -> bool {
        self.parents[i].compare_exchange(seen, new_parent, CAS_SUCCESS, CAS_FAILURE).is_ok()
    }

    #[inline]
    fn cas_parent(&self, i: usize, old: usize, new: usize) -> bool {
        // The word *is* the parent — CAS directly, no pre-read.
        self.cas_from(i, old, new)
    }

    #[inline]
    fn priority(&self, i: usize, _w: usize) -> u64 {
        self.order.id_of(i)
    }

    #[inline]
    fn precedes(&self, u: usize, v: usize) -> bool {
        // The default would load both parent words only to discard them
        // (flat priorities live in the id array); go straight to the order.
        self.order.less(u, v)
    }
}

impl IdOrder for FlatStore {
    fn less(&self, u: usize, v: usize) -> bool {
        self.order.less(u, v)
    }
}

impl DsuStore for FlatStore {
    const NAME: &'static str = "flat";

    fn with_seed(n: usize, seed: u64) -> Self {
        FlatStore::with_seed(n, seed)
    }

    fn len(&self) -> usize {
        self.parents.len()
    }

    fn id_of(&self, u: usize) -> u64 {
        self.order.id_of(u)
    }

    fn snapshot(&self) -> Vec<usize> {
        FlatStore::snapshot(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_store_starts_as_singletons() {
        let s = FlatStore::new(5);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        for i in 0..5 {
            assert_eq!(s.load_parent(i), i);
        }
        assert_eq!(s.snapshot(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn packed_store_starts_as_singletons() {
        let s = PackedStore::with_seed(5, 7);
        assert_eq!(DsuStore::len(&s), 5);
        for i in 0..5 {
            assert_eq!(s.load_parent(i), i);
        }
        assert_eq!(DsuStore::snapshot(&s), vec![0, 1, 2, 3, 4]);
    }

    fn exercise_cas<P: ParentStore>(s: &P) {
        assert!(s.cas_parent(0, 0, 2));
        assert!(!s.cas_parent(0, 0, 1), "stale expected value must fail");
        assert_eq!(s.load_parent(0), 2);
        // Word-exact CAS: a stale word fails, the current one succeeds.
        let seen = s.load_word(0);
        assert_eq!(P::parent_of(seen), 2);
        assert!(s.cas_from(0, seen, 1));
        assert!(!s.cas_from(0, seen, 0), "stale word must fail");
        assert_eq!(s.load_parent(0), 1);
    }

    #[test]
    fn cas_succeeds_once_both_layouts() {
        exercise_cas(&FlatStore::new(3));
        exercise_cas(&PackedStore::with_seed(3, 0));
    }

    #[test]
    fn packed_ids_survive_parent_changes() {
        let s = PackedStore::with_seed(8, 3);
        let ids_before: Vec<u64> = (0..8).map(|i| s.id_of(i)).collect();
        assert!(s.cas_parent(2, 2, 5));
        assert!(s.cas_parent(5, 5, 7));
        let ids_after: Vec<u64> = (0..8).map(|i| s.id_of(i)).collect();
        assert_eq!(ids_before, ids_after, "ids are immutable under parent CASes");
        assert_eq!(s.load_parent(2), 5);
    }

    #[test]
    fn packed_and_flat_assign_identical_ids() {
        let flat = FlatStore::with_seed(64, 99);
        let packed = PackedStore::with_seed(64, 99);
        for i in 0..64 {
            assert_eq!(DsuStore::id_of(&flat, i), DsuStore::id_of(&packed, i));
        }
        // And therefore the same linking order.
        for u in 0..64 {
            for v in 0..64 {
                assert_eq!(IdOrder::less(&flat, u, v), IdOrder::less(&packed, u, v));
            }
        }
    }

    #[test]
    fn packed_ids_are_a_permutation() {
        let s = PackedStore::with_seed(100, 5);
        let mut seen = [false; 100];
        for i in 0..100 {
            let id = s.id_of(i) as usize;
            assert!(id < 100 && !seen[id], "id {id} out of range or duplicated");
            seen[id] = true;
        }
    }

    #[test]
    #[should_panic(expected = "at most 2^32")]
    fn packed_store_rejects_oversized_universe() {
        // Keep the allocation from actually happening: the bound check
        // fires before any memory is touched.
        let _ = PackedStore::with_seed(PackedStore::MAX_UNIVERSE as usize + 1, 0);
    }

    #[test]
    fn empty_stores() {
        assert!(FlatStore::new(0).is_empty());
        assert!(DsuStore::is_empty(&PackedStore::with_seed(0, 0)));
        assert_eq!(FlatStore::new(0).snapshot(), Vec::<usize>::new());
    }

    #[test]
    fn orderings_match_feature() {
        if strict_sc() {
            assert_eq!(LOAD, Ordering::SeqCst);
            assert_eq!(CAS_SUCCESS, Ordering::SeqCst);
            assert_eq!(CAS_FAILURE, Ordering::SeqCst);
            assert_eq!(STAT, Ordering::SeqCst);
        } else {
            assert_eq!(LOAD, Ordering::Acquire);
            assert_eq!(CAS_SUCCESS, Ordering::Release);
            assert_eq!(CAS_FAILURE, Ordering::Relaxed);
            assert_eq!(STAT, Ordering::Relaxed);
        }
    }
}

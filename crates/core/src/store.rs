//! Parent-pointer storage abstraction.
//!
//! The paper's algorithms touch shared state only through single-word reads
//! and CASes of parent pointers. Abstracting *where* those words live lets
//! the fixed-universe [`Dsu`](crate::Dsu) (one flat slab) and the growable
//! [`GrowableDsu`](crate::GrowableDsu) (a segment directory) share a single
//! implementation of every algorithm.

use std::sync::atomic::{AtomicUsize, Ordering};

/// The memory ordering used for every shared-memory access.
///
/// The APRAM model assumes sequentially consistent single-word registers;
/// `SeqCst` is the direct translation. On x86-64 the only instruction-level
/// cost over `Acquire`/`Release` is on plain stores, which these algorithms
/// never perform (all writes are CASes), so fidelity is effectively free.
pub const ORDERING: Ordering = Ordering::SeqCst;

/// A table of atomic parent pointers indexed by element.
///
/// Implementations must return the *same* atomic cell for the same index for
/// the lifetime of the store, and must only be asked about elements that
/// exist (callers bounds-check first).
pub trait ParentStore: Send + Sync {
    /// The atomic parent cell of element `i`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `i` is not an existing element.
    fn parent_cell(&self, i: usize) -> &AtomicUsize;

    /// Convenience: load the parent of `i` with the model ordering.
    fn load_parent(&self, i: usize) -> usize {
        self.parent_cell(i).load(ORDERING)
    }

    /// Convenience: CAS the parent of `i` from `old` to `new`; `true` on
    /// success.
    fn cas_parent(&self, i: usize, old: usize, new: usize) -> bool {
        self.parent_cell(i)
            .compare_exchange(old, new, ORDERING, ORDERING)
            .is_ok()
    }
}

/// A flat slab of parent pointers for a fixed universe `0..n`.
#[derive(Debug)]
pub struct FlatStore {
    parents: Box<[AtomicUsize]>,
}

impl FlatStore {
    /// `n` singleton cells (`parent[i] == i`).
    pub fn new(n: usize) -> Self {
        FlatStore { parents: (0..n).map(AtomicUsize::new).collect() }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// `true` when the store has no cells.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// A non-atomic snapshot of all parents. Only meaningful when no other
    /// thread is mutating (quiescence); used by tests and offline analysis.
    pub fn snapshot(&self) -> Vec<usize> {
        self.parents.iter().map(|p| p.load(Ordering::Relaxed)).collect()
    }
}

impl ParentStore for FlatStore {
    fn parent_cell(&self, i: usize) -> &AtomicUsize {
        &self.parents[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_store_starts_as_singletons() {
        let s = FlatStore::new(5);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        for i in 0..5 {
            assert_eq!(s.load_parent(i), i);
        }
        assert_eq!(s.snapshot(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cas_succeeds_once() {
        let s = FlatStore::new(3);
        assert!(s.cas_parent(0, 0, 2));
        assert!(!s.cas_parent(0, 0, 1), "stale expected value must fail");
        assert_eq!(s.load_parent(0), 2);
    }

    #[test]
    fn empty_store() {
        let s = FlatStore::new(0);
        assert!(s.is_empty());
        assert_eq!(s.snapshot(), Vec::<usize>::new());
    }
}

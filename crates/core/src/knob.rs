//! One-time diagnostics for `DSU_*` environment knobs.
//!
//! Every runtime knob in this crate degrades gracefully: an unrecognized
//! `DSU_TUNER` or `DSU_FLATTEN` value falls back to a documented default
//! rather than aborting the host process. Graceful degradation must not be
//! *silent* degradation, though — an operator who typo'd `DSU_FLATTEN=hosp=2`
//! would otherwise run a different configuration than the one they asked
//! for, with nothing in any log to say so. This module provides the loud
//! part: a once-per-variable stderr warning, emitted by the `from_env`
//! readers (never by the programmatic `parse` functions, whose silent
//! fallback is part of their documented contract).
//!
//! Once-per-variable (not once-per-call) because knobs are read at
//! structure construction: a benchmark building thousands of structures
//! must not emit thousands of identical lines.

use std::collections::BTreeSet;
use std::sync::Mutex;

/// Variables that have already warned this process. A `Mutex<BTreeSet>`
/// rather than per-knob `Once` statics so new knobs need no new state, and
/// so tests can exercise the gate with synthetic variable names.
static WARNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

/// The exact text [`warn_unrecognized`] prints — split out so tests can
/// pin the message without capturing stderr.
pub fn unrecognized_message(var: &str, value: &str, expected: &str, fallback: &str) -> String {
    format!(
        "warning: unrecognized {var}={value:?}; expected {expected} — \
         falling back to `{fallback}` (this warning prints once per variable)"
    )
}

/// Prints [`unrecognized_message`] to stderr the *first* time it is called
/// for `var` in this process; later calls for the same variable are silent
/// no-ops. Returns whether this call printed.
pub fn warn_unrecognized(var: &'static str, value: &str, expected: &str, fallback: &str) -> bool {
    let mut warned = WARNED.lock().unwrap_or_else(|e| e.into_inner());
    if !warned.insert(var) {
        return false;
    }
    eprintln!("{}", unrecognized_message(var, value, expected, fallback));
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_names_variable_value_grammar_and_fallback() {
        let msg =
            unrecognized_message("DSU_FLATTEN", "hosp=2", "off|auto|every=<k>|hops=<x>", "auto");
        assert!(msg.contains("DSU_FLATTEN"), "{msg}");
        assert!(msg.contains("hosp=2"), "{msg}");
        assert!(msg.contains("every=<k>"), "{msg}");
        assert!(msg.contains("`auto`"), "{msg}");
        assert!(msg.contains("once per variable"), "{msg}");
    }

    #[test]
    fn warns_once_per_variable() {
        // Synthetic names: the registry is process-global, and other tests
        // in this binary may legitimately warn for the real knobs.
        assert!(warn_unrecognized("DSU_TEST_KNOB_A", "bogus", "off|auto", "auto"));
        assert!(!warn_unrecognized("DSU_TEST_KNOB_A", "bogus", "off|auto", "auto"));
        assert!(!warn_unrecognized("DSU_TEST_KNOB_A", "other-bogus", "off|auto", "auto"));
        // A different variable gets its own first warning.
        assert!(warn_unrecognized("DSU_TEST_KNOB_B", "bogus", "off|auto", "auto"));
    }
}

//! The batch ingestion planner: reorder and thin an edge burst *before* it
//! touches the forest.
//!
//! `BENCH_PR2`/`BENCH_PR4` locate the batch path's remaining cost
//! precisely: once the parent store exceeds the last-level cache, each
//! gather wave's loads are random-access DRAM misses spread over the whole
//! universe — the waves overlap the misses, but nothing *removes* them.
//! Two stream-side levers do, both pointed at by Fedorov et al.'s bucketed
//! batch processing (*Provably-Efficient and Internally-Deterministic
//! Parallel Union-Find*) and the Alistarh–Fedorov–Koval survey:
//!
//! 1. **Radix bucketing.** Partition the batch's edges into power-of-two
//!    *index* buckets by their endpoints' high bits (the same contiguous
//!    high-bit blocks [`ShardedStore`](crate::ShardedStore) shards the
//!    universe into, so buckets can be sized to align with slab
//!    boundaries) and drain one bucket at a time through the existing
//!    gather waves. Every load a bucket issues then lands inside one small
//!    index range — resident after the first touch — instead of sampling
//!    the whole store.
//! 2. **Intra-batch dedup.** Duplicate edges (same unordered endpoint
//!    pair) are common in Zipf-hot streams and `repeat_within_burst` /
//!    `duplicate_fraction` traces, and every duplicate currently pays two
//!    full root walks just to discover what the batch already knows. A
//!    seeded hash set on canonicalized `(min, max)` pairs drops them
//!    before any parent word is read; their verdict is `false` by
//!    construction (their first occurrence runs earlier in the same call,
//!    after which the endpoints are connected for good).
//!
//! Edges whose endpoints fall in *different* buckets go to a **spillover
//! pass** that runs after all buckets, in the edges' original relative
//! order. The resulting execution order — bucket 0's edges (original
//! relative order), bucket 1's, ..., then the spill — is a deterministic
//! function of the batch and the [`PlanTuning`] alone, never of thread
//! count or store layout.
//!
//! # Verdict semantics: the plan order is the contract
//!
//! Reordering a batch necessarily reorders which edge of a cycle gets the
//! `true` verdict (process `(0,1), (1,2), (0,2)` in any order: always two
//! `true`s and one `false`, but *which* edge reports `false` depends on
//! the order). The planned path therefore guarantees, single-threaded:
//!
//! * per-edge verdicts **bit-identical to a per-op `unite` loop over the
//!   plan's execution order** ([`BatchPlan::execution_order`]), with every
//!   dropped duplicate reporting `false` — proptested on all three layouts
//!   under both ordering modes in `tests/batch_semantics.rs`;
//! * the final partition, the set count, and the *number* of links
//!   identical to per-op execution in the **original** order (set union is
//!   confluent — these are order-invariant).
//!
//! Count-only entry points ([`Dsu::unite_batch`](crate::Dsu::unite_batch),
//! the graph pipeline's ingestion loops) observe nothing but the
//! order-invariant quantities, so for them planning is semantically
//! invisible; per-edge-verdict entry points
//! ([`Dsu::unite_batch_results`](crate::Dsu::unite_batch_results)) keep
//! the unplanned original-order path unless the caller explicitly asks for
//! [`unite_batch_planned_results`](crate::Dsu::unite_batch_planned_results).
//!
//! # Ingestion-plan selection
//!
//! Mirroring the layout-selection guide in [`store`](crate::store):
//!
//! * **Bucketing pays when the parent store is much larger than the
//!   last-level cache** (`n ≥ 2^22`, 32 MB packed) *and* batches are large
//!   enough that a bucket's edges re-touch its index range (hundreds of
//!   edges per resident bucket). That is exactly the regime where
//!   `BENCH_PR2` measured the unplanned batch path's win topping out at
//!   1.12–1.34x: the residual was the DRAM misses bucketing removes.
//! * **Bucketing loses on cache-resident stores or tiny batches**: the
//!   planning pass (a hash probe and a counting sort per edge) is pure
//!   overhead when the store already fits in cache, and a batch with a
//!   handful of edges per bucket gains no locality. `BENCH_PR5.json`
//!   records the measured verdict on the bench host.
//! * **Dedup pays in proportion to the duplicate rate** — each dropped
//!   duplicate saves two root walks and costs one L1-resident hash probe —
//!   and is harmless at zero duplicates. It stays on by default inside the
//!   planner ([`PlanTuning::dedup`] turns it off for attribution runs).
//!
//! The planner is **opt-in**: [`Dsu::unite_batch_planned`] /
//! [`BatchTuning::planned`](crate::BatchTuning::planned) select it
//! explicitly, and the `DSU_BATCH_PLAN` environment variable (the same
//! deployment escape hatch as `DSU_SHARDS` / `DSU_CACHE_SLOTS`) flips the
//! count-only default paths to planned without a code change — CI runs the
//! full workspace in that configuration.
//!
//! [`Dsu::unite_batch_planned`]: crate::Dsu::unite_batch_planned

use std::sync::OnceLock;

use crate::order::splitmix64;

/// Seed of the dedup hash (mixed into every canonical pair before
/// probing), fixed so plans are reproducible run to run.
const DEDUP_SEED: u64 = 0x6275_636b_6574_2135; // "bucket!5"

/// Hard cap on the number of radix buckets a plan may create (`2^12`):
/// past a few thousand buckets the per-bucket batches get too small to
/// amortize a gather wave and the plan's counting-sort scratch stops
/// being L1-friendly. When a batch's endpoints span more blocks than
/// this, the effective bucket width is raised until they fit.
pub const MAX_BUCKETS_LOG2: u32 = 12;

/// How a [`BatchPlan`] is built: bucket geometry and dedup.
///
/// `Default`/[`new`](PlanTuning::new) is the measured-general
/// configuration: auto bucket width
/// ([`DEFAULT_BUCKET_ELEMS_LOG2`](PlanTuning::DEFAULT_BUCKET_ELEMS_LOG2)),
/// dedup on. Plans are a deterministic function of `(edges, tuning)` —
/// nothing here consults the machine.
///
/// # Example
///
/// ```
/// use concurrent_dsu::ingest::PlanTuning;
///
/// let t = PlanTuning::new().bucket_elems_log2(20).dedup(false);
/// assert_eq!(t.bucket_elems_log2, Some(20));
/// assert!(!t.dedup);
/// assert_eq!(PlanTuning::default(), PlanTuning::new());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanTuning {
    /// log2 of the elements each bucket spans (`bucket(i) = i >> bits`).
    /// `None` (the default) uses
    /// [`DEFAULT_BUCKET_ELEMS_LOG2`](PlanTuning::DEFAULT_BUCKET_ELEMS_LOG2).
    /// Set it explicitly to align buckets with a
    /// [`ShardedStore`](crate::ShardedStore)'s slabs: shard capacity is a
    /// power of two, so any `bits ≤ log2(capacity)` keeps every bucket
    /// inside one slab. Either way the effective width is raised as
    /// needed to respect [`MAX_BUCKETS_LOG2`].
    pub bucket_elems_log2: Option<u32>,
    /// Drop intra-batch duplicate edges (canonicalized `(min, max)`
    /// pairs) before they touch the store. On by default; turning it off
    /// isolates the bucketing effect in A/B runs.
    pub dedup: bool,
}

impl PlanTuning {
    /// Default bucket width: `2^18` elements per bucket — 2 MB of packed
    /// parent words, comfortably resident in a per-core L2 while a bucket
    /// drains, and 16 buckets at the `n = 2^22` benchmark size.
    pub const DEFAULT_BUCKET_ELEMS_LOG2: u32 = 18;

    /// The default tuning (same as `Default::default()`, usable in const
    /// contexts).
    pub const fn new() -> Self {
        PlanTuning { bucket_elems_log2: None, dedup: true }
    }

    /// Replaces the bucket width (log2 of elements per bucket).
    pub fn bucket_elems_log2(mut self, bits: u32) -> Self {
        self.bucket_elems_log2 = Some(bits);
        self
    }

    /// Enables or disables intra-batch dedup.
    pub fn dedup(mut self, on: bool) -> Self {
        self.dedup = on;
        self
    }

    /// The effective bucket shift for a batch whose largest endpoint is
    /// `max_endpoint`: the requested (or default) width, raised until the
    /// bucket count respects [`MAX_BUCKETS_LOG2`] and clamped below the
    /// word width (a `>= usize::BITS` request would be a shift overflow;
    /// `usize::BITS - 1` already puts every possible index in bucket 0).
    /// Deterministic per batch — it depends on the batch's own endpoints,
    /// not the universe.
    fn resolve_bits(&self, max_endpoint: usize) -> u32 {
        let bits = self.bucket_elems_log2.unwrap_or(Self::DEFAULT_BUCKET_ELEMS_LOG2);
        // Smallest width whose bucket count for this batch is within the
        // cap: indices go up to max_endpoint, so buckets = (max >> bits) + 1.
        let needed = (usize::BITS - max_endpoint.leading_zeros()).saturating_sub(MAX_BUCKETS_LOG2);
        bits.max(needed).min(usize::BITS - 1)
    }
}

impl Default for PlanTuning {
    fn default() -> Self {
        Self::new()
    }
}

/// The planner configuration the `DSU_BATCH_PLAN` environment variable
/// selects for the count-only default batch paths: unset (or `0`/empty)
/// means unplanned, anything else means [`PlanTuning::new`]. Read once
/// per process.
pub fn env_planner() -> Option<PlanTuning> {
    static PLAN: OnceLock<Option<PlanTuning>> = OnceLock::new();
    *PLAN.get_or_init(|| match std::env::var("DSU_BATCH_PLAN") {
        Ok(v) if !v.is_empty() && v != "0" => Some(PlanTuning::new()),
        _ => None,
    })
}

/// Marker tag for edges whose endpoints land in different buckets.
const SPILL: usize = usize::MAX;
/// Marker tag for dropped duplicate edges.
const DROPPED: usize = usize::MAX - 1;

/// A built ingestion plan: the batch's edges reordered bucket-major (each
/// bucket in original relative order), followed by the cross-bucket
/// spillover, with intra-batch duplicates dropped. See the [module
/// docs](self) for what the plan guarantees and when it pays.
///
/// # Example
///
/// ```
/// use concurrent_dsu::ingest::{BatchPlan, PlanTuning};
///
/// // Two index blocks of 4: (0,1) and (5,6) are block-local, (1,6)
/// // crosses, and the second (0,1) is a duplicate.
/// let edges = [(0, 1), (5, 6), (1, 6), (1, 0)];
/// let plan = BatchPlan::build(&edges, PlanTuning::new().bucket_elems_log2(2));
/// assert_eq!(plan.bucket_count(), 2);
/// assert_eq!(plan.spill_edges(), 1);
/// assert_eq!(plan.dropped(), &[3]);
/// let order: Vec<usize> = plan.execution_order().map(|(i, _)| i).collect();
/// assert_eq!(order, vec![0, 1, 2]); // buckets ascending, spill last
/// ```
#[derive(Debug, Clone)]
pub struct BatchPlan {
    /// Kept edges, bucket-major then spill; each segment preserves the
    /// batch's original relative order.
    edges: Vec<(usize, usize)>,
    /// Original batch index of each planned edge.
    orig: Vec<usize>,
    /// Half-open ranges into `edges`/`orig`: one per non-empty bucket in
    /// ascending bucket order, then (if any) the spill segment last.
    ranges: Vec<std::ops::Range<usize>>,
    /// Original indices of dropped duplicates (ascending).
    dups: Vec<usize>,
    /// Number of non-empty buckets (excludes the spill segment).
    buckets: usize,
    /// Number of cross-bucket edges in the spill segment.
    spill: usize,
}

impl BatchPlan {
    /// Plans `edges`: dedups (if enabled), radix-partitions by endpoint
    /// high bits, and lays the kept edges out bucket-major with the spill
    /// segment last. `O(edges)` time and scratch; no parent word is
    /// touched.
    pub fn build(edges: &[(usize, usize)], tuning: PlanTuning) -> BatchPlan {
        if edges.is_empty() {
            return BatchPlan {
                edges: Vec::new(),
                orig: Vec::new(),
                ranges: Vec::new(),
                dups: Vec::new(),
                buckets: 0,
                spill: 0,
            };
        }
        let max_endpoint = edges.iter().map(|&(x, y)| x.max(y)).max().unwrap_or(0);
        let bits = tuning.resolve_bits(max_endpoint);
        let nb = (max_endpoint >> bits) + 1;

        // Pass 1: classify every edge — its bucket, SPILL, or DROPPED —
        // and count per tag for the stable counting sort.
        let mut dedup = tuning.dedup.then(|| DedupSet::with_capacity(edges.len()));
        let mut tags: Vec<usize> = Vec::with_capacity(edges.len());
        let mut counts = vec![0usize; nb + 1]; // last slot: spill
        let mut dups = Vec::new();
        for (i, &(x, y)) in edges.iter().enumerate() {
            let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
            if let Some(set) = dedup.as_mut() {
                if !set.insert(lo, hi) {
                    tags.push(DROPPED);
                    dups.push(i);
                    continue;
                }
            }
            let (bl, bh) = (lo >> bits, hi >> bits);
            let tag = if bl == bh { bl } else { SPILL };
            counts[if tag == SPILL { nb } else { tag }] += 1;
            tags.push(tag);
        }

        // Prefix-sum the counts into segment offsets, remembering each
        // non-empty segment's range.
        let kept = edges.len() - dups.len();
        let mut ranges = Vec::new();
        let mut buckets = 0usize;
        let mut offset = 0usize;
        let mut starts = vec![0usize; nb + 1];
        for (b, &c) in counts.iter().enumerate() {
            starts[b] = offset;
            if c > 0 {
                ranges.push(offset..offset + c);
                if b < nb {
                    buckets += 1;
                }
            }
            offset += c;
        }
        let spill = counts[nb];

        // Pass 2: stable scatter into the planned layout.
        let mut planned = vec![(0usize, 0usize); kept];
        let mut orig = vec![0usize; kept];
        for (i, (&tag, &edge)) in tags.iter().zip(edges).enumerate() {
            if tag == DROPPED {
                continue;
            }
            let slot = &mut starts[if tag == SPILL { nb } else { tag }];
            planned[*slot] = edge;
            orig[*slot] = i;
            *slot += 1;
        }

        BatchPlan { edges: planned, orig, ranges, dups, buckets, spill }
    }

    /// Number of non-empty radix buckets (the spill segment not
    /// included) — the per-plan value behind the `bucket_count` counter.
    pub fn bucket_count(&self) -> usize {
        self.buckets
    }

    /// Number of cross-bucket edges deferred to the spillover pass.
    pub fn spill_edges(&self) -> usize {
        self.spill
    }

    /// Number of intra-batch duplicates dropped.
    pub fn dup_edges(&self) -> usize {
        self.dups.len()
    }

    /// Number of edges the plan will actually execute (batch minus drops).
    pub fn planned_len(&self) -> usize {
        self.edges.len()
    }

    /// Original indices of the dropped duplicate edges (each reports a
    /// `false` verdict — its first occurrence executes earlier in the
    /// same plan).
    pub fn dropped(&self) -> &[usize] {
        &self.dups
    }

    /// The kept edges in execution order, each with its original batch
    /// index — the deterministic order the verdict contract is stated
    /// against (see the [module docs](self)): buckets in ascending index
    /// order, then the spillover, each segment in original relative
    /// order.
    pub fn execution_order(&self) -> impl Iterator<Item = (usize, (usize, usize))> + '_ {
        self.orig.iter().copied().zip(self.edges.iter().copied())
    }

    /// The planned edge segments (`&[(x, y)]` slices) in execution order —
    /// what the executor feeds, one at a time, to the gather-wave batch
    /// loop — paired with the original indices of their edges.
    pub(crate) fn segments(&self) -> impl Iterator<Item = (&[(usize, usize)], &[usize])> + '_ {
        self.ranges.iter().map(move |r| (&self.edges[r.clone()], &self.orig[r.clone()]))
    }
}

/// A tiny seeded open-addressing set of canonical endpoint pairs, sized
/// for one batch (2x the edge count, power of two) and thrown away with
/// the plan. Linear probing; a slot is free while it holds the sentinel.
struct DedupSet {
    slots: Vec<(usize, usize)>,
    mask: usize,
}

/// Free-slot sentinel: no canonical pair can be it, because `lo <= hi`
/// fails for `(MAX, MAX - 1)`.
const FREE: (usize, usize) = (usize::MAX, usize::MAX - 1);

impl DedupSet {
    fn with_capacity(edges: usize) -> DedupSet {
        let cap = (2 * edges.max(1)).next_power_of_two();
        DedupSet { slots: vec![FREE; cap], mask: cap - 1 }
    }

    /// Inserts the canonical pair `(lo, hi)`; `false` if already present.
    fn insert(&mut self, lo: usize, hi: usize) -> bool {
        let h = splitmix64((lo as u64) ^ splitmix64((hi as u64) ^ DEDUP_SEED));
        let mut i = (h as usize) & self.mask;
        loop {
            let slot = self.slots[i];
            if slot == FREE {
                self.slots[i] = (lo, hi);
                return true;
            }
            if slot == (lo, hi) {
                return false;
            }
            i = (i + 1) & self.mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan() {
        let plan = BatchPlan::build(&[], PlanTuning::new());
        assert_eq!(plan.planned_len(), 0);
        assert_eq!(plan.bucket_count(), 0);
        assert_eq!(plan.spill_edges(), 0);
        assert_eq!(plan.dup_edges(), 0);
        assert!(plan.execution_order().next().is_none());
    }

    #[test]
    fn every_edge_lands_exactly_once() {
        let edges: Vec<(usize, usize)> =
            (0..500).map(|i| ((i * 7919) % 300, (i * 104729 + 5) % 300)).collect();
        let plan = BatchPlan::build(&edges, PlanTuning::new().bucket_elems_log2(6));
        let mut seen = vec![0u32; edges.len()];
        for (i, e) in plan.execution_order() {
            assert_eq!(e, edges[i], "edge content preserved");
            seen[i] += 1;
        }
        for &i in plan.dropped() {
            seen[i] += 1;
        }
        assert!(seen.iter().all(|&c| c == 1), "partition of indices: {seen:?}");
        assert_eq!(plan.planned_len() + plan.dup_edges(), edges.len());
    }

    #[test]
    fn buckets_are_block_local_and_ordered() {
        let bits = 3; // blocks of 8
        let edges = [(17, 18), (0, 1), (1, 2), (16, 23), (2, 9), (40, 41)];
        let plan = BatchPlan::build(&edges, PlanTuning::new().bucket_elems_log2(bits));
        assert_eq!(plan.bucket_count(), 3); // blocks 0, 2, 5
        assert_eq!(plan.spill_edges(), 1); // (2, 9)
        let order: Vec<usize> = plan.execution_order().map(|(i, _)| i).collect();
        // Block 0: edges 1, 2 (original relative order); block 2: 0, 3;
        // block 5: 5; spill last: 4.
        assert_eq!(order, vec![1, 2, 0, 3, 5, 4]);
        // Every same-bucket segment really is block-local.
        for (seg, _) in plan.segments().take(plan.bucket_count()) {
            let block = seg[0].0 >> bits;
            for &(x, y) in seg {
                assert_eq!(x >> bits, block);
                assert_eq!(y >> bits, block);
            }
        }
    }

    #[test]
    fn dedup_canonicalizes_and_keeps_first() {
        let edges = [(3, 7), (7, 3), (3, 7), (7, 7), (7, 7), (5, 5)];
        let plan = BatchPlan::build(&edges, PlanTuning::new());
        assert_eq!(plan.dropped(), &[1, 2, 4]);
        let kept: Vec<usize> = plan.execution_order().map(|(i, _)| i).collect();
        assert_eq!(kept, vec![0, 3, 5]);
    }

    #[test]
    fn dedup_off_keeps_everything() {
        let edges = [(3, 7), (7, 3), (3, 7)];
        let plan = BatchPlan::build(&edges, PlanTuning::new().dedup(false));
        assert_eq!(plan.dup_edges(), 0);
        assert_eq!(plan.planned_len(), 3);
    }

    #[test]
    fn single_bucket_preserves_original_order() {
        let edges: Vec<(usize, usize)> = (0..100).map(|i| (i % 40, (i * 13 + 1) % 40)).collect();
        // Huge bucket: everything block-local, nothing spills.
        let plan = BatchPlan::build(&edges, PlanTuning::new().bucket_elems_log2(32).dedup(false));
        assert_eq!(plan.bucket_count(), 1);
        assert_eq!(plan.spill_edges(), 0);
        let order: Vec<usize> = plan.execution_order().map(|(i, _)| i).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn width_zero_spills_every_distinct_pair_in_order() {
        let edges = [(0, 1), (2, 3), (1, 2)];
        let plan = BatchPlan::build(&edges, PlanTuning::new().bucket_elems_log2(0));
        assert_eq!(plan.bucket_count(), 0);
        assert_eq!(plan.spill_edges(), 3);
        let order: Vec<usize> = plan.execution_order().map(|(i, _)| i).collect();
        assert_eq!(order, vec![0, 1, 2], "spill preserves original relative order");
    }

    #[test]
    fn bucket_cap_raises_the_width() {
        // A width-0 request over endpoints up to 2^20 would want 2^20
        // buckets; the cap forces the width up to 2^20 / 2^12 = 2^8.
        let edges = [(0, 1), (1 << 20, (1 << 20) + 1)];
        let t = PlanTuning::new().bucket_elems_log2(0);
        assert_eq!(t.resolve_bits(1 << 20), 21 - MAX_BUCKETS_LOG2);
        let plan = BatchPlan::build(&edges, t);
        // Both edges are block-local at the raised width.
        assert_eq!(plan.bucket_count(), 2);
        assert_eq!(plan.spill_edges(), 0);
    }

    #[test]
    fn oversized_width_requests_clamp_instead_of_overflowing() {
        // A >= word-width request must not shift-overflow; it degrades to
        // the widest representable bucket (everything block-local).
        for bits in [usize::BITS - 1, usize::BITS, usize::BITS + 7] {
            let t = PlanTuning::new().bucket_elems_log2(bits);
            assert_eq!(t.resolve_bits(usize::MAX - 1), usize::BITS - 1, "requested {bits}");
            let plan = BatchPlan::build(&[(0, 1), (2, 3)], t);
            assert_eq!(plan.bucket_count(), 1, "requested {bits}");
            assert_eq!(plan.spill_edges(), 0);
        }
    }

    #[test]
    fn plans_are_deterministic() {
        let edges: Vec<(usize, usize)> =
            (0..300).map(|i| ((i * 31) % 1000, (i * 57 + 3) % 1000)).collect();
        let a = BatchPlan::build(&edges, PlanTuning::new());
        let b = BatchPlan::build(&edges, PlanTuning::new());
        assert_eq!(
            a.execution_order().collect::<Vec<_>>(),
            b.execution_order().collect::<Vec<_>>()
        );
        assert_eq!(a.dropped(), b.dropped());
    }

    #[test]
    fn dedup_set_survives_collision_chains() {
        let mut set = DedupSet::with_capacity(4); // 8 slots, plenty of probing
        for i in 0..6 {
            assert!(set.insert(i, i + 100));
        }
        for i in 0..6 {
            assert!(!set.insert(i, i + 100), "pair {i} must be found again");
        }
        assert!(set.insert(0, 101), "different pair is not a duplicate");
    }

    #[test]
    fn env_planner_parses_like_the_other_knobs() {
        // Can't mutate the environment of a parallel test run safely; just
        // pin the parse contract on the value already in place.
        let expect = match std::env::var("DSU_BATCH_PLAN") {
            Ok(v) if !v.is_empty() && v != "0" => Some(PlanTuning::new()),
            _ => None,
        };
        assert_eq!(env_planner(), expect);
    }
}

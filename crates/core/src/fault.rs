//! Deterministic fault injection for the parent store.
//!
//! The paper's correctness claims — Lemma 3.2 linearizability and lock-free
//! progress — must hold under every adversary the APRAM model admits:
//! spurious CAS failures, arbitrarily stale-by-the-time-you-use-it reads,
//! and threads that stall for unbounded stretches. This module makes those
//! adversaries *injectable* on the real threaded implementation, so the
//! native stress suite can exercise exactly the failure modes the proofs
//! must survive instead of only the interleavings one machine happens to
//! produce.
//!
//! # Design: a decorator, not a hook
//!
//! [`FaultyStore`] wraps any [`ParentStore`]/[`DsuStore`] layout
//! (packed/flat/sharded, fixed or growable) and perturbs its primitive
//! operations according to a seeded [`FaultPlan`]. It is a separate *type*,
//! not an optional branch in the store hot paths: production
//! monomorphizations (`Dsu<F, PackedStore>` etc.) never see a fault check,
//! so the layer is zero-cost when unused — the PR 4 lesson that optional
//! hooks threaded through the hot loop tax the common case, applied to
//! testing machinery.
//!
//! # What may legally be injected
//!
//! Each injected fault must be an execution the store contract already
//! allows, otherwise a "failure" would refute nothing:
//!
//! * **Spurious CAS failure** — [`ParentStore::cas_from`] returns `false`
//!   without attempting the CAS. Legal: indistinguishable from losing a
//!   race to a rival CAS that was immediately superseded (and LL/SC
//!   hardware fails spuriously for real). Every caller already has a retry
//!   or fall-back path for CAS failure.
//! * **Delayed ("extra-stale") loads** — [`ParentStore::load_word`]
//!   performs the real load, then spins for a bounded while before
//!   returning, so the value is maximally stale by the time the caller
//!   acts on it. Legal: equivalent to the OS preempting the thread right
//!   after the load. Note the injection is load-*then*-delay; returning a
//!   genuinely old value from a *re*-read would violate the per-cell
//!   coherence (modification order) that Lemma 3.1 leans on, and is
//!   exactly the bug [`BrokenStore`]-style canaries exist to catch.
//! * **Stall windows** — every [`FaultPlan::stall_period`]-th decision a
//!   thread spins for a long stretch, simulating descheduling. Legal:
//!   wait-freedom promises progress regardless of scheduling.
//!
//! Because injected CAS failures leave the forest untouched and delayed
//! loads return current values, a faulted structure reaches the same
//! partition as an unfaulted one and every per-edge verdict contract
//! (batch/planned/cached ≡ per-op) survives arbitrary fault rates —
//! `tests/fault_semantics.rs` proptests exactly that, and the native
//! linearizability suite checks timed histories recorded under faults.
//!
//! # Determinism
//!
//! Fault decisions are a pure function of `(plan.seed, thread slot,
//! per-thread decision counter)` via [`splitmix64`]: each thread draws a
//! reproducible decision *sequence*. (Cross-thread interleaving remains as
//! nondeterministic as the scheduler makes it — determinism here means a
//! failing seed reproduces the same per-thread fault pattern, which in
//! practice re-trips the same bug within a few runs.) Thread slots are
//! assigned in first-use order from a process-global counter.
//!
//! # Termination under faults
//!
//! A spurious CAS failure sends the caller back around its retry loop, so
//! rates must stay below 1 or a single `unite` could retry forever. The
//! decision counter advances on every draw, so each retry gets a fresh
//! pseudo-random draw: for any rate `r < 1` the probability that a retry
//! loop spins `k` times is at most `r^k` — termination with probability 1,
//! with geometrically bounded expected retries. [`FaultPlan`] clamps rates
//! to [`FaultPlan::MAX_RATE`] accordingly, and [`RetryBudget`] converts
//! "retries anyway" (a genuine progress bug) into a fast panic with a
//! diagnostic dump instead of a hung CI job.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::thread;
use std::time::Duration;

use crate::order::{splitmix64, IdOrder};
use crate::stats::{OpStats, StatsSink};
use crate::store::{DsuStore, ParentStore};

/// Environment variable read by [`FaultPlan::from_env`]: the plan seed
/// (decimal or `0x`-prefixed hex; default `0`).
pub const ENV_FAULT_SEED: &str = "DSU_FAULT_SEED";
/// Environment variable read by [`FaultPlan::from_env`]: the fault rate in
/// `[0, 1)` applied to both CAS failures and delayed loads (default `0`,
/// i.e. no faults).
pub const ENV_FAULT_RATE: &str = "DSU_FAULT_RATE";

/// A deterministic, seeded schedule of injectable faults.
///
/// The plan is plain data: copy it into a [`FaultyStore`], print it in a
/// failure report, rebuild it from a report to reproduce. `rate(seed, r)`
/// is the everyday constructor; [`FaultPlan::from_env`] wires the
/// `DSU_FAULT_SEED` / `DSU_FAULT_RATE` knobs so existing binaries can be
/// run under chaos without recompilation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the decision stream. Same seed + same per-thread operation
    /// sequence → same per-thread fault pattern.
    pub seed: u64,
    /// Probability in `[0, MAX_RATE]` that a `cas_from` fails spuriously
    /// (returns `false` without attempting the CAS).
    pub cas_fail_rate: f64,
    /// Probability in `[0, MAX_RATE]` that a `load_word` spins after the
    /// load, so the returned value is stale by the time it is used.
    pub stale_load_rate: f64,
    /// Upper bound on the per-delayed-load spin, in spin-loop hints; the
    /// actual spin is drawn in `1..=max_spin` from the decision stream.
    pub max_spin: u32,
    /// Every `stall_period`-th decision the deciding thread stalls for
    /// [`stall_spins`](FaultPlan::stall_spins) hints (`0` disables stall
    /// windows).
    pub stall_period: u64,
    /// Length of one stall window, in spin-loop hints.
    pub stall_spins: u32,
}

impl FaultPlan {
    /// Upper clamp on both rates: keeps retry loops geometrically bounded
    /// (see the module docs on termination) while still allowing brutal
    /// schedules — at 0.9, one `unite` in ~10⁶ retries a dozen times.
    pub const MAX_RATE: f64 = 0.9;

    /// The all-zero plan: no faults, no delays, no stalls.
    pub fn off() -> Self {
        FaultPlan {
            seed: 0,
            cas_fail_rate: 0.0,
            stale_load_rate: 0.0,
            max_spin: 0,
            stall_period: 0,
            stall_spins: 0,
        }
    }

    /// A plan injecting spurious CAS failures *and* delayed loads at
    /// `rate` (clamped to `[0, MAX_RATE]`), with short delay spins and a
    /// stall window every 1024 decisions — the configuration the chaos
    /// suite sweeps.
    pub fn rate(seed: u64, rate: f64) -> Self {
        let r = rate.clamp(0.0, Self::MAX_RATE);
        FaultPlan {
            seed,
            cas_fail_rate: r,
            stale_load_rate: r,
            max_spin: 64,
            stall_period: if r > 0.0 { 1024 } else { 0 },
            stall_spins: 4096,
        }
    }

    /// `true` when the plan can never inject anything.
    pub fn is_off(&self) -> bool {
        self.cas_fail_rate == 0.0 && self.stale_load_rate == 0.0 && self.stall_period == 0
    }

    /// Builds a plan from the `DSU_FAULT_SEED` / `DSU_FAULT_RATE`
    /// environment variables. Unset or unparsable variables default to
    /// seed `0` and rate `0.0` — i.e. the default environment yields
    /// [`FaultPlan::off`], so `FaultyStore::with_seed` built without
    /// explicit chaos knobs injects nothing.
    pub fn from_env() -> Self {
        let seed = std::env::var(ENV_FAULT_SEED).ok().and_then(|s| parse_u64(&s)).unwrap_or(0);
        let rate = std::env::var(ENV_FAULT_RATE)
            .ok()
            .and_then(|s| s.trim().parse::<f64>().ok())
            .unwrap_or(0.0);
        if rate > 0.0 {
            FaultPlan::rate(seed, rate)
        } else {
            FaultPlan { seed, ..FaultPlan::off() }
        }
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// Counts of faults a [`FaultyStore`] actually injected, by kind.
///
/// Read it after a run via [`FaultyStore::fault_report`] and feed
/// [`total`](FaultReport::total) to
/// [`StatsSink::faults_injected`] to
/// attribute observed retries to injection rather than genuine contention.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// CASes failed spuriously (returned `false` without attempting).
    pub spurious_cas_failures: u64,
    /// Loads delayed after reading (the "extra-stale" injection).
    pub delayed_loads: u64,
    /// Stall windows executed.
    pub stalls: u64,
}

impl FaultReport {
    /// All injected faults of any kind.
    pub fn total(&self) -> u64 {
        self.spurious_cas_failures + self.delayed_loads + self.stalls
    }
}

// Thread-slot assignment for the decision stream: each OS thread gets a
// small integer in first-use order, process-wide. Process-wide (rather than
// per-store) keeps the thread-local state trivial; determinism is per
// thread spawn order, which test harnesses control.
static NEXT_SLOT: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static SLOT: std::cell::Cell<u64> = const { std::cell::Cell::new(u64::MAX) };
    static DECISIONS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// One draw from the per-thread decision stream: a well-mixed 64-bit hash
/// of `(seed, thread slot, decision index)`, plus the decision index it
/// consumed (for stall-period checks).
#[inline]
fn draw(seed: u64) -> (u64, u64) {
    let slot = SLOT.with(|s| {
        let v = s.get();
        if v != u64::MAX {
            v
        } else {
            let v = NEXT_SLOT.fetch_add(1, Ordering::Relaxed);
            s.set(v);
            v
        }
    });
    let n = DECISIONS.with(|d| {
        let n = d.get();
        d.set(n.wrapping_add(1));
        n
    });
    let h = splitmix64(
        seed ^ splitmix64(slot.wrapping_add(0x5EED)) ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    (h, n)
}

/// Maps a hash to a uniform draw in `[0, 1)`.
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn spin(hints: u32) {
    for _ in 0..hints {
        std::hint::spin_loop();
    }
}

/// A [`ParentStore`]/[`DsuStore`] decorator that injects the faults of a
/// [`FaultPlan`] into every primitive access — see the module docs for the
/// legality argument per fault kind and the determinism contract.
///
/// Wraps any layout: `FaultyStore<PackedStore>`, `FaultyStore<FlatStore>`,
/// `FaultyStore<ShardedStore>` all implement [`DsuStore`], so
/// `Dsu::from_store(FaultyStore::with_plan(store, plan))` drops chaos under
/// the full algorithm stack — per-op, batch, planned, and cached paths
/// alike — without touching any of them.
///
/// As a `DsuStore` in its own right (`NAME = "faulty"`),
/// `FaultyStore::<S>::with_seed(n, seed)` builds the inner store with that
/// seed and takes its plan from the environment
/// ([`FaultPlan::from_env`]), which is how `DSU_FAULT_*` reach binaries
/// that are merely generic over the store.
pub struct FaultyStore<S> {
    inner: S,
    plan: FaultPlan,
    // Precomputed plan predicates: the hot path tests one byte and jumps
    // over an outlined `#[cold]` injection body, so an off plan costs a
    // predictable never-taken branch per access — nothing else.
    inject_loads: bool,
    inject_cas: bool,
    spurious_cas_failures: AtomicU64,
    delayed_loads: AtomicU64,
    stalls: AtomicU64,
}

impl<S> FaultyStore<S> {
    /// Wraps `inner`, injecting per `plan`.
    pub fn with_plan(inner: S, plan: FaultPlan) -> Self {
        FaultyStore {
            inner,
            plan,
            inject_loads: plan.stale_load_rate > 0.0 || plan.stall_period > 0,
            inject_cas: plan.cas_fail_rate > 0.0,
            spurious_cas_failures: AtomicU64::new(0),
            delayed_loads: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Exclusive access to the wrapped store, for forwarding quiescent
    /// epoch transitions (see
    /// [`EpochFork`](crate::epoch::EpochFork)'s `&mut self` methods).
    pub(crate) fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwraps, discarding the fault state.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The plan this store injects by.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Injected-fault counts so far (monotone; read at quiescence for
    /// exact attribution).
    pub fn fault_report(&self) -> FaultReport {
        FaultReport {
            spurious_cas_failures: self.spurious_cas_failures.load(Ordering::Relaxed),
            delayed_loads: self.delayed_loads.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
        }
    }

    /// Draws one decision and runs the stall-window check shared by all
    /// injection sites; returns the hash for the caller's rate check.
    #[inline]
    fn decide(&self) -> u64 {
        let (h, n) = draw(self.plan.seed);
        if self.plan.stall_period > 0 && n % self.plan.stall_period == self.plan.stall_period - 1 {
            self.stalls.fetch_add(1, Ordering::Relaxed);
            spin(self.plan.stall_spins);
        }
        h
    }
}

impl<S> FaultyStore<S> {
    /// The load-side injection body, outlined so the off-path `load_word`
    /// is the inner load plus one never-taken branch.
    #[cold]
    #[inline(never)]
    fn faulted_load(&self) {
        // Load *then* delay: the value was current when read and is stale
        // by the time the caller acts on it — a legal preemption, unlike
        // serving an old value from a re-read (see module docs).
        if self.plan.stale_load_rate > 0.0 {
            let h = self.decide();
            if unit(h) < self.plan.stale_load_rate {
                self.delayed_loads.fetch_add(1, Ordering::Relaxed);
                spin((h >> 32) as u32 % self.plan.max_spin.max(1) + 1);
            }
        } else {
            self.decide();
        }
    }

    /// The CAS-side injection decision, outlined for the same reason.
    #[cold]
    #[inline(never)]
    fn spurious_cas(&self) -> bool {
        if unit(self.decide()) < self.plan.cas_fail_rate {
            // Spurious failure: report defeat without attempting. The
            // cell is untouched, so the caller's retry logic sees exactly
            // a lost race whose winner was immediately superseded.
            self.spurious_cas_failures.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }
}

impl<S: ParentStore> ParentStore for FaultyStore<S> {
    type Word = S::Word;

    #[inline(always)]
    fn load_word(&self, i: usize) -> S::Word {
        let w = self.inner.load_word(i);
        if self.inject_loads {
            self.faulted_load();
        }
        w
    }

    #[inline(always)]
    fn parent_of(w: S::Word) -> usize {
        S::parent_of(w)
    }

    #[inline(always)]
    fn cas_from(&self, i: usize, seen: S::Word, new_parent: usize) -> bool {
        if self.inject_cas && self.spurious_cas() {
            return false;
        }
        self.inner.cas_from(i, seen, new_parent)
    }

    #[inline(always)]
    fn priority(&self, i: usize, w: S::Word) -> u64 {
        self.inner.priority(i, w)
    }

    #[inline(always)]
    fn prefetch(&self, i: usize) {
        self.inner.prefetch(i);
    }

    #[inline(always)]
    fn rank_of(w: S::Word) -> u64 {
        S::rank_of(w)
    }

    #[inline(always)]
    fn try_bump_rank(&self, i: usize, rank: u64) -> bool {
        // A spurious bump failure is always legal — callers treat the bump
        // as best-effort — so route it through the same CAS chaos.
        if self.inject_cas && self.spurious_cas() {
            return false;
        }
        self.inner.try_bump_rank(i, rank)
    }
}

impl<S: IdOrder> IdOrder for FaultyStore<S> {
    #[inline]
    fn less(&self, u: usize, v: usize) -> bool {
        self.inner.less(u, v)
    }
}

impl<S: DsuStore> DsuStore for FaultyStore<S> {
    const NAME: &'static str = "faulty";

    fn with_seed(n: usize, seed: u64) -> Self {
        FaultyStore::with_plan(S::with_seed(n, seed), FaultPlan::from_env())
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn id_of(&self, u: usize) -> u64 {
        self.inner.id_of(u)
    }

    fn snapshot(&self) -> Vec<usize> {
        self.inner.snapshot()
    }
}

/// A deliberately **incorrect** store: `cas_from` ignores the expected
/// word and installs the new parent unconditionally (retrying any real CAS
/// race until the write lands), always claiming success.
///
/// This is the regression canary for the whole chaos apparatus. The broken
/// CAS still only installs parents larger in the random order than the
/// overwritten root's own id, so trees stay acyclic and operations
/// terminate — the breakage is *silent*: an unconditional install can
/// overwrite a rival's already-installed link (a lost update), splitting
/// sets that were merged, which yields double-`true` unites and `same_set`
/// answers that revert. A checker that fails to refute
/// `BrokenStore`-recorded histories, or a stress harness whose invariants
/// miss the lost links, is itself broken — `tests/native_linearizability.rs`
/// asserts the refutation actually happens.
pub struct BrokenStore<S> {
    inner: S,
}

impl<S> BrokenStore<S> {
    /// Wraps `inner` with the broken CAS.
    pub fn new(inner: S) -> Self {
        BrokenStore { inner }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: ParentStore> ParentStore for BrokenStore<S> {
    type Word = S::Word;

    #[inline]
    fn load_word(&self, i: usize) -> S::Word {
        self.inner.load_word(i)
    }

    #[inline]
    fn parent_of(w: S::Word) -> usize {
        S::parent_of(w)
    }

    #[inline]
    fn cas_from(&self, i: usize, _seen: S::Word, new_parent: usize) -> bool {
        // The bug: install unconditionally, ignoring what the caller saw.
        let mut w = self.inner.load_word(i);
        loop {
            if self.inner.cas_from(i, w, new_parent) {
                return true;
            }
            w = self.inner.load_word(i);
        }
    }

    #[inline]
    fn priority(&self, i: usize, w: S::Word) -> u64 {
        self.inner.priority(i, w)
    }

    #[inline]
    fn rank_of(w: S::Word) -> u64 {
        S::rank_of(w)
    }

    #[inline]
    fn try_bump_rank(&self, i: usize, rank: u64) -> bool {
        self.inner.try_bump_rank(i, rank)
    }
}

impl<S: IdOrder> IdOrder for BrokenStore<S> {
    #[inline]
    fn less(&self, u: usize, v: usize) -> bool {
        self.inner.less(u, v)
    }
}

impl<S: DsuStore> DsuStore for BrokenStore<S> {
    const NAME: &'static str = "broken";

    fn with_seed(n: usize, seed: u64) -> Self {
        BrokenStore::new(S::with_seed(n, seed))
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn id_of(&self, u: usize) -> u64 {
        self.inner.id_of(u)
    }

    fn snapshot(&self) -> Vec<usize> {
        self.inner.snapshot()
    }
}

/// A [`StatsSink`] wrapper that bounds CAS retries: when
/// [`cas_retry`](StatsSink::cas_retry) events exceed `budget`, it panics
/// with a full counter dump instead of letting a livelocked retry loop
/// spin until the CI job times out.
///
/// Wrap the per-thread [`OpStats`] of a stress test:
///
/// ```
/// use concurrent_dsu::{Dsu, RetryBudget};
///
/// let dsu: Dsu = Dsu::new(64);
/// let mut sink = RetryBudget::new("doc stress", 10_000);
/// for i in 0..63 {
///     dsu.unite_with(i, i + 1, &mut sink);
/// }
/// assert_eq!(sink.stats().links_ok, 63);
/// assert_eq!(sink.stats().cas_retries, 0);
/// ```
///
/// The budget is per sink (i.e. per thread). Under an injection plan of
/// rate `r`, expected retries per link are `r / (1 - r)`; budget a
/// generous multiple of `ops × r / (1 - r)` so only genuine
/// non-termination trips it.
pub struct RetryBudget {
    label: &'static str,
    budget: u64,
    stats: OpStats,
}

impl RetryBudget {
    /// A sink that panics after `budget` retries, labeling the dump with
    /// `label` (typically the test name).
    pub fn new(label: &'static str, budget: u64) -> Self {
        RetryBudget { label, budget, stats: OpStats::default() }
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> &OpStats {
        &self.stats
    }

    /// Consumes the sink, returning its counters for merging.
    pub fn into_stats(self) -> OpStats {
        self.stats
    }
}

impl StatsSink for RetryBudget {
    #[inline]
    fn loop_iter(&mut self) {
        self.stats.loop_iter();
    }
    #[inline]
    fn read(&mut self) {
        self.stats.read();
    }
    #[inline]
    fn reads(&mut self, n: usize) {
        StatsSink::reads(&mut self.stats, n);
    }
    #[inline]
    fn compact_cas_ok(&mut self) {
        self.stats.compact_cas_ok();
    }
    #[inline]
    fn compact_cas_fail(&mut self) {
        self.stats.compact_cas_fail();
    }
    #[inline]
    fn link_ok(&mut self) {
        self.stats.link_ok();
    }
    #[inline]
    fn link_fail(&mut self) {
        self.stats.link_fail();
    }
    #[inline]
    fn op_start(&mut self) {
        self.stats.op_start();
    }
    #[inline]
    fn find_start(&mut self) {
        self.stats.find_start();
    }
    #[inline]
    fn cache_hit(&mut self) {
        self.stats.cache_hit();
    }
    #[inline]
    fn cache_stale(&mut self) {
        self.stats.cache_stale();
    }
    #[inline]
    fn prefetch_wave(&mut self) {
        self.stats.prefetch_wave();
    }
    #[inline]
    fn dup_edges_dropped(&mut self, n: usize) {
        self.stats.dup_edges_dropped(n);
    }
    #[inline]
    fn plan_buckets(&mut self, n: usize) {
        self.stats.plan_buckets(n);
    }
    #[inline]
    fn spill_edges(&mut self, n: usize) {
        self.stats.spill_edges(n);
    }
    fn cas_retry(&mut self) {
        self.stats.cas_retry();
        if self.stats.cas_retries > self.budget {
            panic!(
                "retry budget exceeded in `{}`: {} CAS retries > budget {} — \
                 livelock or lost progress guarantee; counters: {:#?}",
                self.label, self.stats.cas_retries, self.budget, self.stats
            );
        }
    }
    #[inline]
    fn faults_injected(&mut self, n: usize) {
        self.stats.faults_injected(n);
    }
    #[inline]
    fn snapshot_taken(&mut self) {
        self.stats.snapshot_taken();
    }
    #[inline]
    fn segments_forked(&mut self, n: usize) {
        self.stats.segments_forked(n);
    }
    #[inline]
    fn rollback_done(&mut self) {
        self.stats.rollback_done();
    }
    #[inline]
    fn cow_copies(&mut self, n: usize) {
        self.stats.cow_copies(n);
    }
}

/// A wall-clock watchdog for threaded stress tests: if the guarded scope
/// has not [dropped the watchdog](Drop) within `timeout`, a monitor thread
/// prints a diagnostic report and **aborts the process** — a progress bug
/// hangs CI for seconds, with counters on stderr, instead of eating the
/// whole job's time limit in silence.
///
/// ```
/// use concurrent_dsu::TestWatchdog;
/// use std::time::Duration;
///
/// let wd = TestWatchdog::arm("doc test", Duration::from_secs(60));
/// // ... threaded stress work ...
/// drop(wd); // disarms; dropping at end of scope is enough
/// ```
///
/// [`arm_with`](TestWatchdog::arm_with) takes a report closure (run on the
/// monitor thread at trip time) for dumping shared progress counters —
/// ops completed, a [`FaultyStore::fault_report`], whatever the test can
/// observe through an `Arc`.
pub struct TestWatchdog {
    disarm: Option<mpsc::Sender<()>>,
    monitor: Option<thread::JoinHandle<()>>,
}

impl TestWatchdog {
    /// Arms a watchdog with no extra report.
    pub fn arm(name: &str, timeout: Duration) -> Self {
        Self::arm_with(name, timeout, String::new)
    }

    /// Arms a watchdog whose trip message includes `report()`'s output.
    pub fn arm_with<R>(name: &str, timeout: Duration, report: R) -> Self
    where
        R: Fn() -> String + Send + 'static,
    {
        let (tx, rx) = mpsc::channel::<()>();
        let name = name.to_owned();
        let monitor = thread::spawn(move || {
            // Disarm = sender dropped (Disconnected). Timeout = trip.
            if let Err(RecvTimeoutError::Timeout) = rx.recv_timeout(timeout) {
                eprintln!(
                    "WATCHDOG TRIPPED: `{name}` still running after {timeout:?} — \
                     aborting the process (suspected livelock / lost wakeup).\n{}",
                    report()
                );
                std::process::abort();
            }
        });
        TestWatchdog { disarm: Some(tx), monitor: Some(monitor) }
    }
}

impl Drop for TestWatchdog {
    fn drop(&mut self) {
        drop(self.disarm.take());
        if let Some(m) = self.monitor.take() {
            let _ = m.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find::TwoTrySplit;
    use crate::store::{FlatStore, PackedStore};
    use crate::Dsu;

    #[test]
    fn off_plan_injects_nothing() {
        let store = FaultyStore::with_plan(PackedStore::with_seed(64, 7), FaultPlan::off());
        let dsu: Dsu<TwoTrySplit, _> = Dsu::from_store(store);
        for i in 0..63 {
            assert!(dsu.unite(i, i + 1));
        }
        assert!(dsu.same_set(0, 63));
        let report = dsu.store().fault_report();
        assert_eq!(report, FaultReport::default(), "off plan must inject zero faults");
        assert_eq!(report.total(), 0);
    }

    #[test]
    fn faulted_run_terminates_with_identical_partition() {
        let n = 256;
        let seed = 42;
        let plan = FaultPlan::rate(1, 0.5);
        assert!(!plan.is_off());
        let faulted: Dsu<TwoTrySplit, _> =
            Dsu::from_store(FaultyStore::with_plan(PackedStore::with_seed(n, seed), plan));
        let plain: Dsu<TwoTrySplit, PackedStore> = Dsu::with_seed(n, seed);
        for i in 0..n - 1 {
            if i % 3 != 2 {
                assert_eq!(faulted.unite(i, i + 1), plain.unite(i, i + 1));
            }
            assert_eq!(faulted.same_set(0, i), plain.same_set(0, i));
        }
        let report = faulted.store().fault_report();
        assert!(report.spurious_cas_failures > 0, "rate 0.5 must actually fire: {report:?}");
        assert!(report.delayed_loads > 0, "{report:?}");
    }

    #[test]
    fn decision_stream_is_deterministic_per_thread() {
        // Two draws with the same (seed, slot, counter) agree; the stream
        // itself advances the counter, so consecutive draws differ.
        let a: Vec<u64> = (0..16).map(|_| draw(99).0).collect();
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "draws must not repeat trivially");
        // Rates map into [0, 1).
        for h in a {
            let u = unit(h);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn plan_from_rate_clamps() {
        let p = FaultPlan::rate(0, 5.0);
        assert!(p.cas_fail_rate <= FaultPlan::MAX_RATE);
        let q = FaultPlan::rate(0, -1.0);
        assert_eq!(q.cas_fail_rate, 0.0);
    }

    #[test]
    fn broken_store_loses_updates_under_canary_schedule() {
        // Deterministic single-threaded demonstration of the lost update:
        // CAS u's cell twice from the same stale word — a correct store
        // rejects the second install, the broken one overwrites the first.
        let correct = PackedStore::with_seed(8, 3);
        let broken = BrokenStore::new(PackedStore::with_seed(8, 3));
        let wc = correct.load_word(0);
        let wb = broken.load_word(0);
        assert!(correct.cas_from(0, wc, 1));
        assert!(broken.cas_from(0, wb, 1));
        // Stale second CAS: correct store refuses, broken store "succeeds"
        // and silently overwrites parent 1 with parent 2 — the lost link.
        assert!(!correct.cas_from(0, wc, 2));
        assert!(broken.cas_from(0, wb, 2));
        assert_eq!(correct.load_parent(0), 1);
        assert_eq!(broken.load_parent(0), 2, "the update installing parent 1 was lost");
    }

    #[test]
    fn retry_budget_counts_and_trips() {
        let mut sink = RetryBudget::new("unit", 3);
        sink.op_start();
        for _ in 0..3 {
            sink.link_fail();
            sink.cas_retry();
        }
        assert_eq!(sink.stats().cas_retries, 3);
        let trip = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sink.cas_retry();
        }));
        let err = trip.expect_err("4th retry must exceed budget 3");
        let msg = err.downcast_ref::<String>().expect("panic carries a String");
        assert!(msg.contains("retry budget exceeded"), "{msg}");
        assert!(msg.contains("cas_retries: 4"), "dump must include counters: {msg}");
    }

    #[test]
    fn watchdog_disarms_cleanly() {
        let wd = TestWatchdog::arm("disarm test", Duration::from_secs(600));
        drop(wd); // must return promptly, not wait out the timeout
        let wd2 = TestWatchdog::arm_with("disarm test 2", Duration::from_secs(600), || {
            "report".to_owned()
        });
        drop(wd2);
    }

    #[test]
    fn env_plan_defaults_off() {
        // The test runner environment does not set DSU_FAULT_RATE; guard
        // against accidentally-faulted default builds. (If a chaos CI job
        // ever exports the knob globally, this test is the tripwire.)
        if std::env::var(ENV_FAULT_RATE).is_err() {
            assert!(FaultPlan::from_env().is_off());
        }
        assert_eq!(parse_u64("0x10"), Some(16));
        assert_eq!(parse_u64(" 12 "), Some(12));
        assert_eq!(parse_u64("nope"), None);
    }

    #[test]
    fn faulty_store_delegates_ids_and_snapshot() {
        let inner = FlatStore::with_seed(32, 11);
        let ids: Vec<u64> = (0..32).map(|i| DsuStore::id_of(&inner, i)).collect();
        let faulty = FaultyStore::with_plan(FlatStore::with_seed(32, 11), FaultPlan::rate(2, 0.3));
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(DsuStore::id_of(&faulty, i), id);
        }
        assert_eq!(DsuStore::len(&faulty), 32);
        assert_eq!(faulty.snapshot(), (0..32).collect::<Vec<_>>());
        assert_eq!(<FaultyStore<FlatStore> as DsuStore>::NAME, "faulty");
        assert_eq!(<BrokenStore<FlatStore> as DsuStore>::NAME, "broken");
    }
}

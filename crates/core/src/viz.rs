//! Forest visualization: render parent-pointer snapshots as Graphviz DOT
//! or indented ASCII trees.
//!
//! Union-find bugs are tree-shape bugs; being able to *look* at the forest
//! — compare the compressed forest against the union forest, watch
//! splitting shorten paths — is worth more than another counter. Both
//! renderers take plain `&[usize]` snapshots
//! ([`Dsu::parents_snapshot`](crate::Dsu::parents_snapshot) /
//! [`Dsu::union_forest_snapshot`](crate::Dsu::union_forest_snapshot)), so
//! they work for any structure in the workspace and for the APRAM
//! simulator's memories alike.

/// Renders a parent forest in Graphviz DOT, children pointing at parents.
///
/// Roots are drawn as double circles. `labels` supplies an optional
/// annotation per node (e.g. the random id); pass `|_| None` for plain
/// node numbers.
///
/// # Panics
///
/// Panics if a parent pointer is out of range.
///
/// # Example
///
/// ```
/// use concurrent_dsu::{viz, Dsu};
///
/// let dsu: Dsu = Dsu::new(4);
/// dsu.unite(0, 1);
/// let dot = viz::to_dot(&dsu.parents_snapshot(), |v| Some(format!("id {}", dsu.id_of(v))));
/// assert!(dot.starts_with("digraph forest {"));
/// assert!(dot.contains("->"));
/// ```
pub fn to_dot(parent: &[usize], labels: impl Fn(usize) -> Option<String>) -> String {
    let mut out = String::from("digraph forest {\n  rankdir=BT;\n");
    for (v, &p) in parent.iter().enumerate() {
        assert!(p < parent.len(), "parent {p} of {v} out of range");
        let label = match labels(v) {
            Some(extra) => format!("{v}\\n{extra}"),
            None => v.to_string(),
        };
        let shape = if p == v { "doublecircle" } else { "circle" };
        out.push_str(&format!("  n{v} [label=\"{label}\", shape={shape}];\n"));
        if p != v {
            out.push_str(&format!("  n{v} -> n{p};\n"));
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a parent forest as indented ASCII, one tree per root, children
/// sorted ascending:
///
/// ```text
/// 3
/// ├── 0
/// │   └── 2
/// └── 1
/// ```
///
/// # Panics
///
/// Panics if a parent pointer is out of range or the "forest" contains a
/// cycle.
pub fn to_ascii(parent: &[usize]) -> String {
    let n = parent.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut roots = Vec::new();
    for (v, &p) in parent.iter().enumerate() {
        assert!(p < n, "parent {p} of {v} out of range");
        if p == v {
            roots.push(v);
        } else {
            children[p].push(v);
        }
    }
    let mut out = String::new();
    let mut emitted = 0usize;
    for &root in &roots {
        out.push_str(&root.to_string());
        out.push('\n');
        emitted += 1;
        emit_children(&children, root, "", &mut out, &mut emitted);
    }
    assert_eq!(emitted, n, "cycle detected: not all nodes reachable from roots");
    out
}

fn emit_children(
    children: &[Vec<usize>],
    node: usize,
    prefix: &str,
    out: &mut String,
    emitted: &mut usize,
) {
    let kids = &children[node];
    for (i, &kid) in kids.iter().enumerate() {
        let last = i + 1 == kids.len();
        out.push_str(prefix);
        out.push_str(if last { "└── " } else { "├── " });
        out.push_str(&kid.to_string());
        out.push('\n');
        *emitted += 1;
        let next_prefix = format!("{prefix}{}", if last { "    " } else { "│   " });
        emit_children(children, kid, &next_prefix, out, emitted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_marks_roots_and_edges() {
        // 0 -> 2, 1 -> 2, 2 root, 3 root.
        let dot = to_dot(&[2, 2, 2, 3], |_| None);
        assert!(dot.contains("n0 -> n2;"));
        assert!(dot.contains("n1 -> n2;"));
        assert!(!dot.contains("n2 -> "));
        assert!(dot.contains("n2 [label=\"2\", shape=doublecircle];"));
        assert!(dot.contains("n3 [label=\"3\", shape=doublecircle];"));
    }

    #[test]
    fn dot_includes_labels() {
        let dot = to_dot(&[1, 1], |v| Some(format!("x{v}")));
        assert!(dot.contains("0\\nx0"));
    }

    #[test]
    fn ascii_draws_nested_trees() {
        // 3 is root of {0, 1, 2}: 0 -> 3, 1 -> 3, 2 -> 0.
        let art = to_ascii(&[3, 3, 0, 3]);
        let expected = "3\n├── 0\n│   └── 2\n└── 1\n";
        assert_eq!(art, expected);
    }

    #[test]
    fn ascii_multiple_roots() {
        let art = to_ascii(&[0, 1, 2]);
        assert_eq!(art, "0\n1\n2\n");
    }

    #[test]
    fn ascii_empty() {
        assert_eq!(to_ascii(&[]), "");
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn ascii_detects_cycles() {
        // 0 -> 1 -> 0 is not a forest.
        to_ascii(&[1, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dot_bounds_check() {
        to_dot(&[5], |_| None);
    }

    #[test]
    fn renders_real_structure() {
        let dsu: crate::Dsu = crate::Dsu::new(6);
        dsu.unite(0, 1);
        dsu.unite(2, 3);
        dsu.unite(0, 2);
        let snapshot = dsu.parents_snapshot();
        let art = to_ascii(&snapshot);
        // 6 nodes, one line each.
        assert_eq!(art.lines().count(), 6);
        let dot = to_dot(&snapshot, |v| Some(dsu.id_of(v).to_string()));
        // Three links happened, so exactly three nodes are non-roots.
        assert_eq!(dot.matches(" -> ").count(), 3);
    }
}

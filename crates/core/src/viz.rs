//! Forest visualization: render parent-pointer snapshots as Graphviz DOT
//! or indented ASCII trees.
//!
//! Union-find bugs are tree-shape bugs; being able to *look* at the forest
//! — compare the compressed forest against the union forest, watch
//! splitting shorten paths — is worth more than another counter. Both
//! renderers take plain `&[usize]` snapshots
//! ([`Dsu::parents_snapshot`](crate::Dsu::parents_snapshot) /
//! [`Dsu::union_forest_snapshot`](crate::Dsu::union_forest_snapshot)), so
//! they work for any structure in the workspace and for the APRAM
//! simulator's memories alike.

/// Renders a parent forest in Graphviz DOT, children pointing at parents.
///
/// Roots are drawn as double circles. `labels` supplies an optional
/// annotation per node (e.g. the random id); pass `|_| None` for plain
/// node numbers.
///
/// # Panics
///
/// Panics if a parent pointer is out of range.
///
/// # Example
///
/// ```
/// use concurrent_dsu::{viz, Dsu};
///
/// let dsu: Dsu = Dsu::new(4);
/// dsu.unite(0, 1);
/// let dot = viz::to_dot(&dsu.parents_snapshot(), |v| Some(format!("id {}", dsu.id_of(v))));
/// assert!(dot.starts_with("digraph forest {"));
/// assert!(dot.contains("->"));
/// ```
pub fn to_dot(parent: &[usize], labels: impl Fn(usize) -> Option<String>) -> String {
    let mut out = String::from("digraph forest {\n  rankdir=BT;\n");
    for (v, &p) in parent.iter().enumerate() {
        assert!(p < parent.len(), "parent {p} of {v} out of range");
        let label = match labels(v) {
            Some(extra) => format!("{v}\\n{extra}"),
            None => v.to_string(),
        };
        let shape = if p == v { "doublecircle" } else { "circle" };
        out.push_str(&format!("  n{v} [label=\"{label}\", shape={shape}];\n"));
        if p != v {
            out.push_str(&format!("  n{v} -> n{p};\n"));
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a parent forest as indented ASCII, one tree per root, children
/// sorted ascending:
///
/// ```text
/// 3
/// ├── 0
/// │   └── 2
/// └── 1
/// ```
///
/// # Panics
///
/// Panics if a parent pointer is out of range or the "forest" contains a
/// cycle.
pub fn to_ascii(parent: &[usize]) -> String {
    let n = parent.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut roots = Vec::new();
    for (v, &p) in parent.iter().enumerate() {
        assert!(p < n, "parent {p} of {v} out of range");
        if p == v {
            roots.push(v);
        } else {
            children[p].push(v);
        }
    }
    let mut out = String::new();
    let mut emitted = 0usize;
    for &root in &roots {
        out.push_str(&root.to_string());
        out.push('\n');
        emitted += 1;
        emit_children(&children, root, "", &mut out, &mut emitted);
    }
    assert_eq!(emitted, n, "cycle detected: not all nodes reachable from roots");
    out
}

fn emit_children(
    children: &[Vec<usize>],
    node: usize,
    prefix: &str,
    out: &mut String,
    emitted: &mut usize,
) {
    let kids = &children[node];
    for (i, &kid) in kids.iter().enumerate() {
        let last = i + 1 == kids.len();
        out.push_str(prefix);
        out.push_str(if last { "└── " } else { "├── " });
        out.push_str(&kid.to_string());
        out.push('\n');
        *emitted += 1;
        let next_prefix = format!("{prefix}{}", if last { "    " } else { "│   " });
        emit_children(children, kid, &next_prefix, out, emitted);
    }
}

/// [`to_ascii`] plus a trailing [`DepthHistogram::summary`] line — the
/// forest dump to reach for when tree *shape* (not just membership) is the
/// question, e.g. before/after a [`flatten`](crate::flatten) sweep.
///
/// # Panics
///
/// Panics if a parent pointer is out of range or the "forest" contains a
/// cycle.
pub fn forest_report(parent: &[usize]) -> String {
    format!("{}{}\n", to_ascii(parent), depth_histogram(parent).summary())
}

/// Depth distribution of a parent forest: how far each node sits from its
/// root, as a histogram plus max/mean — the shape summary a maintenance
/// pass (see [`flatten`](crate::flatten)) is judged by.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthHistogram {
    /// `buckets[d]` = number of nodes at depth exactly `d` (roots are
    /// depth 0); length is `max + 1`, empty for an empty forest.
    pub buckets: Vec<usize>,
    /// Deepest node's depth.
    pub max: usize,
    /// Mean depth over all nodes (0.0 for an empty forest).
    pub mean: f64,
}

impl DepthHistogram {
    /// Number of nodes deeper than 1 — exactly zero after a quiesced
    /// flatten sweep.
    pub fn nodes_deeper_than_one(&self) -> usize {
        self.buckets.iter().skip(2).sum()
    }

    /// One-line render for forest dumps and diagnostics, e.g.
    /// `depth max 3 mean 1.250 | 0:2 1:3 2:2 3:1`.
    pub fn summary(&self) -> String {
        let spread: Vec<String> =
            self.buckets.iter().enumerate().map(|(d, c)| format!("{d}:{c}")).collect();
        format!("depth max {} mean {:.3} | {}", self.max, self.mean, spread.join(" "))
    }
}

/// Computes the [`DepthHistogram`] of a parent snapshot in `O(n)` via
/// memoized root walks.
///
/// # Panics
///
/// Panics if a parent pointer is out of range or the "forest" contains a
/// cycle.
pub fn depth_histogram(parent: &[usize]) -> DepthHistogram {
    let n = parent.len();
    const UNKNOWN: usize = usize::MAX;
    let mut depth = vec![UNKNOWN; n];
    let mut path = Vec::new();
    for start in 0..n {
        let mut v = start;
        while depth[v] == UNKNOWN {
            assert!(parent[v] < n, "parent {} of {v} out of range", parent[v]);
            if parent[v] == v {
                depth[v] = 0;
                break;
            }
            path.push(v);
            assert!(path.len() <= n, "cycle detected at {v}");
            v = parent[v];
        }
        while let Some(u) = path.pop() {
            depth[u] = depth[parent[u]] + 1;
        }
    }
    let max = depth.iter().copied().max().unwrap_or(0);
    let mut buckets = vec![0usize; if n == 0 { 0 } else { max + 1 }];
    for &d in &depth {
        buckets[d] += 1;
    }
    let mean = if n == 0 { 0.0 } else { depth.iter().sum::<usize>() as f64 / n as f64 };
    DepthHistogram { buckets, max, mean }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_marks_roots_and_edges() {
        // 0 -> 2, 1 -> 2, 2 root, 3 root.
        let dot = to_dot(&[2, 2, 2, 3], |_| None);
        assert!(dot.contains("n0 -> n2;"));
        assert!(dot.contains("n1 -> n2;"));
        assert!(!dot.contains("n2 -> "));
        assert!(dot.contains("n2 [label=\"2\", shape=doublecircle];"));
        assert!(dot.contains("n3 [label=\"3\", shape=doublecircle];"));
    }

    #[test]
    fn dot_includes_labels() {
        let dot = to_dot(&[1, 1], |v| Some(format!("x{v}")));
        assert!(dot.contains("0\\nx0"));
    }

    #[test]
    fn ascii_draws_nested_trees() {
        // 3 is root of {0, 1, 2}: 0 -> 3, 1 -> 3, 2 -> 0.
        let art = to_ascii(&[3, 3, 0, 3]);
        let expected = "3\n├── 0\n│   └── 2\n└── 1\n";
        assert_eq!(art, expected);
    }

    #[test]
    fn ascii_multiple_roots() {
        let art = to_ascii(&[0, 1, 2]);
        assert_eq!(art, "0\n1\n2\n");
    }

    #[test]
    fn ascii_empty() {
        assert_eq!(to_ascii(&[]), "");
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn ascii_detects_cycles() {
        // 0 -> 1 -> 0 is not a forest.
        to_ascii(&[1, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dot_bounds_check() {
        to_dot(&[5], |_| None);
    }

    #[test]
    fn depth_histogram_counts_shape() {
        // 3 root of {0, 1, 2}: 0 -> 3, 1 -> 3, 2 -> 0; plus singleton 4.
        let h = depth_histogram(&[3, 3, 0, 3, 4]);
        assert_eq!(h.buckets, vec![2, 2, 1]);
        assert_eq!(h.max, 2);
        assert!((h.mean - 4.0 / 5.0).abs() < 1e-12);
        assert_eq!(h.nodes_deeper_than_one(), 1);
        assert_eq!(h.summary(), "depth max 2 mean 0.800 | 0:2 1:2 2:1");
    }

    #[test]
    fn depth_histogram_empty_and_flat() {
        let empty = depth_histogram(&[]);
        assert_eq!((empty.max, empty.mean, empty.nodes_deeper_than_one()), (0, 0.0, 0));
        let flat = depth_histogram(&[1, 1, 1]);
        assert_eq!(flat.nodes_deeper_than_one(), 0);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn depth_histogram_detects_cycles() {
        depth_histogram(&[1, 0]);
    }

    #[test]
    fn flattened_forest_has_zero_deep_nodes() {
        // The satellite contract: after a quiesced flatten, the histogram
        // reports *exactly zero* nodes deeper than 1.
        let dsu: crate::Dsu = crate::Dsu::new(64);
        for i in 1..64 {
            dsu.unite(0, i);
        }
        dsu.flatten();
        let h = depth_histogram(&dsu.parents_snapshot());
        assert_eq!(h.nodes_deeper_than_one(), 0, "{}", h.summary());
        assert!(h.max <= 1);
        let report = forest_report(&dsu.parents_snapshot());
        assert!(report.trim_end().ends_with(&h.summary()), "{report}");
    }

    #[test]
    fn renders_real_structure() {
        let dsu: crate::Dsu = crate::Dsu::new(6);
        dsu.unite(0, 1);
        dsu.unite(2, 3);
        dsu.unite(0, 2);
        let snapshot = dsu.parents_snapshot();
        let art = to_ascii(&snapshot);
        // 6 nodes, one line each.
        assert_eq!(art.lines().count(), 6);
        let dot = to_dot(&snapshot, |v| Some(dsu.id_of(v).to_string()));
        // Three links happened, so exactly three nodes are non-roots.
        assert_eq!(dot.matches(" -> ").count(), 3);
    }
}

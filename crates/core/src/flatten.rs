//! The flatten pass: store-ordered pointer-jumping sweeps that drive every
//! tree to depth ≤ 1, so steady-state finds are a single load.
//!
//! # Why a sweep, not more per-find compaction
//!
//! Every compaction policy in [`find`](crate::find) pays its loads on the
//! *serial* find path: each probe is a dependent pointer chase, and five
//! PRs of locality bets (ROADMAP "Recent") showed that adding anything to
//! that chase loses. A flatten sweep is the opposite shape: it scans the
//! parent array *sequentially* in store order — independent loads the
//! hardware prefetcher streams at DRAM bandwidth — and pointer-jumps each
//! element until its parent is a root. After a quiesced sweep every tree
//! has depth ≤ 1 and every subsequent find is one load (asserted by
//! `tests/flatten_semantics.rs` on every layout). The structure follows
//! the wave/flattening phase of "Provably-Efficient and
//! Internally-Deterministic Parallel Union-Find" (arXiv 2304.09331);
//! the adaptive trigger follows the path-length-counter heuristics of the
//! journal version of the source paper (arXiv 2003.01203).
//!
//! # Safety under concurrency
//!
//! The sweep uses the same primitives as the find policies: [`LOAD`]
//! (Acquire) word loads and word-exact [`cas_from`]. Each jump CASes
//! element `i` from its observed word to `i`'s observed *grandparent* — a
//! proper union-forest ancestor of the observed parent (Lemma 3.1), so a
//! successful jump preserves exactly the invariant every compaction CAS
//! preserves and concurrent `unite` / `same_set` verdicts are unaffected
//! (proptested in `tests/flatten_semantics.rs`). A lost CAS just means a
//! concurrent mutator moved the element first; the sweep re-reads and
//! retries, and every retry strictly climbs the random order, so each
//! element terminates.
//!
//! [`LOAD`]: crate::store::LOAD
//! [`cas_from`]: crate::store::ParentStore::cas_from
//!
//! # Scheduling
//!
//! [`flatten_runs_parallel`] carves the store's scan surface
//! ([`DsuStore::scan_ranges`](crate::store::DsuStore::scan_ranges) /
//! [`GrowableStore::scan_runs`](crate::growable::GrowableStore::scan_runs))
//! into chunks and has workers claim them from a shared atomic cursor —
//! the same dynamic chunk-cursor shape as the graph crate's chunked edge
//! ingestion, because chunks near hot roots finish at very different
//! speeds. Chunks never straddle a [`ScanRun`], so a sharded sweep stays
//! slab-local.
//!
//! # When to run it
//!
//! Only between (or concurrently with, but paid against) traffic that will
//! amortize it: the sweep is O(n) loads plus a CAS per deep element. The
//! [`FlattenPolicy`] trigger automates the decision from observed depth;
//! `BENCH_PR9.json` (`flatten_ab`) measures where the trade pays.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::stats::{OpStats, StatsSink};
use crate::store::{ParentStore, ScanRun};

/// Elements per parallel-sweep chunk. Coarser than the edge-ingestion
/// chunk (1024): sweep work per element is two streamed loads in the
/// common flat case, so smaller chunks would be all cursor traffic.
pub const DEFAULT_FLATTEN_CHUNK: usize = 4096;

/// Default mean-observed-depth threshold for [`FlattenPolicy::Auto`]:
/// between 1 (perfectly flat) and 2; past ~1.75 a sweep typically buys
/// back its cost on the next query burst (see `BENCH_PR9.json`).
pub const AUTO_HOPS_THRESHOLD: f64 = 1.75;

/// Elements probed by one adaptive-trigger depth sample.
const TRIGGER_SAMPLES: usize = 32;

/// Pointer-jumps one element until its observed parent is an observed
/// root. Loads and CASes report through the ordinary `read` /
/// `compact_cas_*` events (keeping `memory_accesses()` honest);
/// `flatten_jump` / `flatten_cas_lost` attribute them to the sweep.
#[inline]
pub fn flatten_element<P: ParentStore + ?Sized, S: StatsSink>(store: &P, i: usize, stats: &mut S) {
    loop {
        let wu = store.load_word(i);
        stats.read();
        let p = P::parent_of(wu);
        if p == i {
            return; // i is a root.
        }
        let wp = store.load_word(p);
        stats.read();
        let g = P::parent_of(wp);
        if g == p {
            return; // p was observed a root: depth ≤ 1 right now.
        }
        // Same jump as split_step's CAS: g is a proper union-forest
        // ancestor of i's observed parent, so linking verdicts cannot
        // change. Success or not, re-read — on success the new parent g
        // may itself have a parent; on failure someone moved i first.
        if store.cas_from(i, wu, g) {
            stats.compact_cas_ok();
            stats.flatten_jump();
        } else {
            stats.compact_cas_fail();
            stats.flatten_cas_lost();
        }
    }
}

/// One sequential sweep over `runs`, in order (see [`flatten_element`] for
/// the per-element contract). Reports one `flatten_pass` on completion.
pub fn flatten_runs<P: ParentStore + ?Sized, S: StatsSink>(
    store: &P,
    runs: &[ScanRun],
    stats: &mut S,
) {
    for run in runs {
        for j in 0..run.count {
            flatten_element(store, run.at(j), stats);
        }
    }
    stats.flatten_pass();
}

/// Splits runs into chunks of at most [`DEFAULT_FLATTEN_CHUNK`] elements,
/// never straddling a run (so sharded sweeps stay slab-local).
fn chunk_runs(runs: &[ScanRun]) -> Vec<ScanRun> {
    let mut chunks = Vec::new();
    for run in runs {
        let mut j = 0;
        while j < run.count {
            let count = DEFAULT_FLATTEN_CHUNK.min(run.count - j);
            chunks.push(ScanRun { base: run.at(j), stride: run.stride, count });
            j += count;
        }
    }
    chunks
}

/// A parallel sweep over `runs` on `threads` workers claiming chunks from
/// a shared cursor (dynamic scheduling — chunks near hot roots cost
/// different amounts). Returns the merged per-worker counters, including
/// exactly one `flatten_passes`.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn flatten_runs_parallel<P: ParentStore + Sync + ?Sized>(
    store: &P,
    runs: &[ScanRun],
    threads: usize,
) -> OpStats {
    assert!(threads > 0, "a parallel flatten needs at least one worker");
    let chunks = chunk_runs(runs);
    let cursor = AtomicUsize::new(0);
    let mut total = OpStats::default();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let (cursor, chunks) = (&cursor, &chunks);
                scope.spawn(move || {
                    let mut stats = OpStats::default();
                    loop {
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(chunk) = chunks.get(c) else { break };
                        for j in 0..chunk.count {
                            flatten_element(store, chunk.at(j), &mut stats);
                        }
                    }
                    stats
                })
            })
            .collect();
        for w in workers {
            total.merge(&w.join().expect("flatten worker panicked"));
        }
    });
    total.flatten_pass();
    total
}

/// Mean observed depth of `samples` elements stride-spread over `0..len`,
/// each walked to its root with plain loads (no compaction, walk capped at
/// 64 hops) — the cheap probe behind the adaptive trigger. `0.0` for an
/// empty universe.
pub fn sampled_mean_depth<P: ParentStore + ?Sized>(store: &P, len: usize, samples: usize) -> f64 {
    if len == 0 || samples == 0 {
        return 0.0;
    }
    let samples = samples.min(len);
    let stride = len / samples;
    let mut hops = 0usize;
    for s in 0..samples {
        let mut u = s * stride;
        for _ in 0..64 {
            let p = store.load_parent(u);
            if p == u {
                break;
            }
            hops += 1;
            u = p;
        }
    }
    hops as f64 / samples as f64
}

/// When an adaptive structure runs a flatten sweep (the `DSU_FLATTEN`
/// knob; read at construction, never per operation).
///
/// The default is [`Off`](FlattenPolicy::Off): per house rules an
/// optimization is opt-in until its A/B wins, and the sweep's O(n) cost
/// only amortizes under query-heavy traffic (`BENCH_PR9.json`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FlattenPolicy {
    /// Never flatten automatically (explicit `flatten()` calls still work).
    #[default]
    Off,
    /// Flatten after every `k`-th ingested batch (`k ≥ 1`).
    EveryKBatches(usize),
    /// After each batch, probe the mean observed depth of a small element
    /// sample and flatten when it exceeds this threshold.
    HopsThreshold(f64),
    /// [`HopsThreshold`](FlattenPolicy::HopsThreshold) at
    /// [`AUTO_HOPS_THRESHOLD`].
    Auto,
}

impl FlattenPolicy {
    /// Parses the `DSU_FLATTEN` environment variable: `off`, `auto`,
    /// `every=<k>`, or `hops=<x>`. Unset means [`Off`](FlattenPolicy::Off);
    /// a set-but-unrecognized value degrades to
    /// [`Auto`](FlattenPolicy::Auto) (the operator asked for *something*),
    /// mirroring `DSU_TUNER`'s graceful degradation — loudly: the first
    /// degradation warns on stderr ([`knob`](crate::knob)).
    pub fn from_env() -> Self {
        match std::env::var("DSU_FLATTEN") {
            Ok(v) => Self::parse_recognized(&v).unwrap_or_else(|| {
                crate::knob::warn_unrecognized(
                    "DSU_FLATTEN",
                    &v,
                    "off | auto | every=<k≥1> | hops=<x> with x > 0",
                    "auto",
                );
                FlattenPolicy::Auto
            }),
            Err(_) => FlattenPolicy::Off,
        }
    }

    /// Parses a policy string (the `DSU_FLATTEN` grammar above);
    /// unrecognized values degrade to [`Auto`](FlattenPolicy::Auto)
    /// silently — the programmatic contract. Use
    /// [`parse_recognized`](FlattenPolicy::parse_recognized) to detect the
    /// degradation.
    pub fn parse(v: &str) -> Self {
        Self::parse_recognized(v).unwrap_or(FlattenPolicy::Auto)
    }

    /// [`parse`](FlattenPolicy::parse) distinguishing recognized values
    /// from the degradation fallback: `None` iff `v` is not in the
    /// grammar.
    pub fn parse_recognized(v: &str) -> Option<Self> {
        let v = v.trim();
        if v.eq_ignore_ascii_case("off") {
            return Some(FlattenPolicy::Off);
        }
        if v.eq_ignore_ascii_case("auto") {
            return Some(FlattenPolicy::Auto);
        }
        if let Some(k) = v.strip_prefix("every=") {
            if let Ok(k) = k.parse::<usize>() {
                if k >= 1 {
                    return Some(FlattenPolicy::EveryKBatches(k));
                }
            }
        }
        if let Some(t) = v.strip_prefix("hops=") {
            if let Ok(t) = t.parse::<f64>() {
                if t.is_finite() && t > 0.0 {
                    return Some(FlattenPolicy::HopsThreshold(t));
                }
            }
        }
        None
    }
}

/// The per-structure adaptive-trigger state: the policy plus a batch
/// counter ([`Dsu`](crate::Dsu) / [`GrowableDsu`](crate::GrowableDsu) hold
/// one and consult it after every ingested batch).
#[derive(Debug)]
pub struct FlattenTrigger {
    policy: FlattenPolicy,
    batches: AtomicUsize,
}

impl FlattenTrigger {
    /// A trigger running `policy`.
    pub fn new(policy: FlattenPolicy) -> Self {
        FlattenTrigger { policy, batches: AtomicUsize::new(0) }
    }

    /// A trigger configured from `DSU_FLATTEN`
    /// ([`FlattenPolicy::from_env`]).
    pub fn from_env() -> Self {
        Self::new(FlattenPolicy::from_env())
    }

    /// The policy this trigger runs.
    pub fn policy(&self) -> FlattenPolicy {
        self.policy
    }

    /// Replaces the policy (construction-time configuration; the batch
    /// counter is preserved).
    pub fn set_policy(&mut self, policy: FlattenPolicy) {
        self.policy = policy;
    }

    /// Records one completed batch and decides whether to flatten now.
    /// `sample_depth` is only called by the depth-probing policies.
    pub fn batch_done(&self, sample_depth: impl FnOnce() -> f64) -> bool {
        match self.policy {
            FlattenPolicy::Off => false,
            FlattenPolicy::EveryKBatches(k) => {
                (self.batches.fetch_add(1, Ordering::Relaxed) + 1).is_multiple_of(k)
            }
            FlattenPolicy::HopsThreshold(t) => {
                self.batches.fetch_add(1, Ordering::Relaxed);
                sample_depth() > t
            }
            FlattenPolicy::Auto => {
                self.batches.fetch_add(1, Ordering::Relaxed);
                sample_depth() > AUTO_HOPS_THRESHOLD
            }
        }
    }

    /// Batches recorded so far (diagnostics).
    pub fn batches_seen(&self) -> usize {
        self.batches.load(Ordering::Relaxed)
    }
}

/// The depth-probe closure the wrappers hand to
/// [`FlattenTrigger::batch_done`]: [`sampled_mean_depth`] at the trigger's
/// sample budget.
pub(crate) fn trigger_probe<P: ParentStore + ?Sized>(store: &P, len: usize) -> f64 {
    sampled_mean_depth(store, len, TRIGGER_SAMPLES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{DsuStore, FlatStore};
    use std::sync::atomic::Ordering;

    /// Builds a path 0 -> 1 -> ... -> n-1 (n-1 is the root).
    fn path_store(n: usize) -> FlatStore {
        let store = FlatStore::new(n);
        for i in 0..n - 1 {
            store.parent_cell(i).store(i + 1, Ordering::Relaxed);
        }
        store
    }

    fn max_depth(parent: &[usize]) -> usize {
        (0..parent.len())
            .map(|mut u| {
                let mut d = 0;
                while parent[u] != u {
                    u = parent[u];
                    d += 1;
                }
                d
            })
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn parse_recognized_detects_degradation() {
        assert_eq!(FlattenPolicy::parse_recognized("off"), Some(FlattenPolicy::Off));
        assert_eq!(FlattenPolicy::parse_recognized("AUTO"), Some(FlattenPolicy::Auto));
        assert_eq!(
            FlattenPolicy::parse_recognized("every=3"),
            Some(FlattenPolicy::EveryKBatches(3))
        );
        assert_eq!(
            FlattenPolicy::parse_recognized("hops=1.5"),
            Some(FlattenPolicy::HopsThreshold(1.5))
        );
        // The unrecognized shapes that used to degrade silently.
        for bogus in ["hosp=2", "every=0", "hops=-1", "hops=inf", "", "42"] {
            assert_eq!(FlattenPolicy::parse_recognized(bogus), None, "{bogus:?}");
            // The silent programmatic fallback is unchanged.
            assert_eq!(FlattenPolicy::parse(bogus), FlattenPolicy::Auto, "{bogus:?}");
        }
    }

    #[test]
    fn flatten_element_flattens_one_path_node() {
        let store = path_store(8);
        let mut stats = OpStats::default();
        flatten_element(&store, 0, &mut stats);
        // 0's parent must now be the root, reached by repeated jumps.
        assert_eq!(store.load_parent(0), 7);
        assert!(stats.flatten_jumps > 0);
        assert_eq!(stats.flatten_cas_lost, 0, "uncontended jumps never lose");
        assert_eq!(stats.compact_cas_ok, stats.flatten_jumps);
        // Root and depth-1 elements are no-ops.
        let mut quiet = OpStats::default();
        flatten_element(&store, 7, &mut quiet);
        flatten_element(&store, 6, &mut quiet);
        assert_eq!(quiet.cas_attempts(), 0);
    }

    #[test]
    fn sequential_flatten_reaches_depth_one() {
        let store = path_store(64);
        let mut stats = OpStats::default();
        flatten_runs(
            &store,
            &store.scan_ranges().into_iter().map(ScanRun::contiguous).collect::<Vec<_>>(),
            &mut stats,
        );
        assert_eq!(stats.flatten_passes, 1);
        let snap = store.snapshot();
        assert!(max_depth(&snap) <= 1, "post-flatten max depth: {}", max_depth(&snap));
        // A second pass is pure reads: nothing left to jump.
        let mut again = OpStats::default();
        flatten_runs(&store, &[ScanRun::contiguous(0..64)], &mut again);
        assert_eq!(again.flatten_jumps, 0);
        assert_eq!(again.cas_attempts(), 0);
    }

    #[test]
    fn parallel_flatten_reaches_depth_one() {
        for threads in [1, 2, 4] {
            let store = path_store(1 << 12);
            let stats = flatten_runs_parallel(&store, &[ScanRun::contiguous(0..1 << 12)], threads);
            assert_eq!(stats.flatten_passes, 1);
            assert!(stats.flatten_jumps > 0);
            let snap = store.snapshot();
            assert!(max_depth(&snap) <= 1, "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        flatten_runs_parallel(&FlatStore::new(4), &[ScanRun::contiguous(0..4)], 0);
    }

    #[test]
    fn chunks_respect_run_boundaries() {
        let runs = [
            ScanRun { base: 0, stride: 1, count: DEFAULT_FLATTEN_CHUNK + 7 },
            ScanRun { base: 100_000, stride: 4, count: 3 },
        ];
        let chunks = chunk_runs(&runs);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].count, DEFAULT_FLATTEN_CHUNK);
        assert_eq!(chunks[1], ScanRun { base: DEFAULT_FLATTEN_CHUNK, stride: 1, count: 7 });
        assert_eq!(chunks[2], runs[1]);
        let total: usize = chunks.iter().map(|c| c.count).sum();
        assert_eq!(total, runs.iter().map(|r| r.count).sum::<usize>());
    }

    #[test]
    fn sampled_depth_tracks_the_forest() {
        assert_eq!(sampled_mean_depth(&FlatStore::new(16), 16, 8), 0.0);
        let deep = path_store(64);
        assert!(sampled_mean_depth(&deep, 64, 8) > 1.0);
        assert_eq!(sampled_mean_depth(&FlatStore::new(0), 0, 8), 0.0);
    }

    #[test]
    fn policy_parsing() {
        assert_eq!(FlattenPolicy::parse("off"), FlattenPolicy::Off);
        assert_eq!(FlattenPolicy::parse("OFF"), FlattenPolicy::Off);
        assert_eq!(FlattenPolicy::parse("auto"), FlattenPolicy::Auto);
        assert_eq!(FlattenPolicy::parse("every=3"), FlattenPolicy::EveryKBatches(3));
        assert_eq!(FlattenPolicy::parse("hops=2.5"), FlattenPolicy::HopsThreshold(2.5));
        // Degenerate and unrecognized values degrade to Auto.
        assert_eq!(FlattenPolicy::parse("every=0"), FlattenPolicy::Auto);
        assert_eq!(FlattenPolicy::parse("hops=-1"), FlattenPolicy::Auto);
        assert_eq!(FlattenPolicy::parse("bogus"), FlattenPolicy::Auto);
        assert_eq!(FlattenPolicy::default(), FlattenPolicy::Off);
    }

    #[test]
    fn trigger_every_k() {
        let t = FlattenTrigger::new(FlattenPolicy::EveryKBatches(3));
        let fired: Vec<bool> = (0..6).map(|_| t.batch_done(|| unreachable!())).collect();
        assert_eq!(fired, [false, false, true, false, false, true]);
        assert_eq!(t.batches_seen(), 6);
    }

    #[test]
    fn trigger_off_and_thresholds() {
        let t = FlattenTrigger::new(FlattenPolicy::Off);
        assert!(!t.batch_done(|| unreachable!()));
        assert_eq!(t.batches_seen(), 0);

        let t = FlattenTrigger::new(FlattenPolicy::HopsThreshold(2.0));
        assert!(!t.batch_done(|| 1.5));
        assert!(t.batch_done(|| 2.5));

        let mut t = FlattenTrigger::new(FlattenPolicy::Auto);
        assert!(!t.batch_done(|| AUTO_HOPS_THRESHOLD - 0.5));
        assert!(t.batch_done(|| AUTO_HOPS_THRESHOLD + 0.5));
        t.set_policy(FlattenPolicy::Off);
        assert_eq!(t.policy(), FlattenPolicy::Off);
        assert!(!t.batch_done(|| unreachable!()));
    }
}

//! A growing universe: `MakeSet` support (paper Section 3 remark, Section 7).
//!
//! The fixed-universe [`Dsu`](crate::Dsu) assumes all `n` elements and their
//! random order exist up front. [`GrowableDsu`] removes that assumption:
//! [`make_set`](GrowableDsu::make_set) creates fresh elements concurrently
//! with ongoing operations, and ids are generated *on the fly* by hashing
//! the element index (the paper's Section 7 suggestion: draw from a universe
//! large enough that ties are negligible, plus a tie-breaking rule — here
//! the index itself).
//!
//! As the paper notes, in an unbounded universe the algorithms are
//! *lock-free* rather than wait-free: an operation could in principle chase
//! a set that keeps growing. Storage is a directory of at most
//! `usize::BITS` doubling segments; operations on existing elements never
//! move memory, and allocating a new segment (which happens at most 64
//! times ever) is the only place a thread can briefly wait for another.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::find::{FindPolicy, TwoTrySplit};
use crate::ops;
use crate::order::HashOrder;
use crate::stats::StatsSink;
use crate::store::ParentStore;
use crate::ConcurrentUnionFind;
// (ParentStore is used both as the trait bound and for SegmentedStore's impl.)

const SEGMENTS: usize = usize::BITS as usize;

/// Maps element `e` to `(segment, offset)`: segment `s` holds the `2^s`
/// elements `2^s - 1 ..= 2^(s+1) - 2`.
fn locate(e: usize) -> (usize, usize) {
    let s = (usize::BITS - 1 - (e + 1).leading_zeros()) as usize;
    (s, e + 1 - (1 << s))
}

/// The segment directory. Lives in its own type so the shared algorithm
/// code (generic over [`ParentStore`]) can use it directly.
struct SegmentedStore {
    segments: [OnceLock<Box<[AtomicUsize]>>; SEGMENTS],
}

impl SegmentedStore {
    fn new() -> Self {
        SegmentedStore { segments: std::array::from_fn(|_| OnceLock::new()) }
    }

    /// Ensures the segment containing `e` exists (allocating and
    /// self-initializing it if needed) and returns its cell.
    fn ensure_cell(&self, e: usize) -> &AtomicUsize {
        let (s, off) = locate(e);
        let seg = self.segments[s].get_or_init(|| {
            let base = (1usize << s) - 1;
            (0..1usize << s).map(|j| AtomicUsize::new(base + j)).collect()
        });
        &seg[off]
    }
}

impl ParentStore for SegmentedStore {
    fn parent_cell(&self, i: usize) -> &AtomicUsize {
        let (s, off) = locate(i);
        let seg = self.segments[s]
            .get()
            .expect("element's segment not allocated: use indices returned by make_set");
        &seg[off]
    }
}

/// A concurrent union-find whose universe grows via
/// [`make_set`](GrowableDsu::make_set) (paper Section 3 remark), with
/// on-the-fly random ids (paper Section 7).
///
/// # Element lifetime contract
///
/// An element index may be passed to operations once the `make_set` that
/// returned it has returned (happens-before via the index handoff). Reading
/// [`len`](GrowableDsu::len) and then touching every index below it is only
/// guaranteed at quiescence, because another thread's `make_set` may have
/// reserved an index it is still initializing.
///
/// # Example
///
/// ```
/// use concurrent_dsu::GrowableDsu;
///
/// let dsu: GrowableDsu = GrowableDsu::new();
/// let a = dsu.make_set();
/// let b = dsu.make_set();
/// assert!(!dsu.same_set(a, b));
/// assert!(dsu.unite(a, b));
/// assert!(dsu.same_set(a, b));
/// let c = dsu.make_set();
/// assert!(!dsu.same_set(a, c));
/// ```
pub struct GrowableDsu<F: FindPolicy = TwoTrySplit> {
    store: SegmentedStore,
    order: HashOrder,
    count: AtomicUsize,
    links: AtomicUsize,
    _policy: std::marker::PhantomData<F>,
}

impl<F: FindPolicy> std::fmt::Debug for GrowableDsu<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GrowableDsu")
            .field("len", &self.len())
            .field("set_count", &self.set_count())
            .field("policy", &F::NAME)
            .finish()
    }
}

impl<F: FindPolicy> Default for GrowableDsu<F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F: FindPolicy> GrowableDsu<F> {
    /// Default seed for the on-the-fly id hash.
    pub const DEFAULT_SEED: u64 = 0x6d61_6b65_5f73_6574; // "make_set"

    /// An empty universe with the default id seed.
    pub fn new() -> Self {
        Self::with_seed(Self::DEFAULT_SEED)
    }

    /// An empty universe whose random order is salted by `seed`.
    pub fn with_seed(seed: u64) -> Self {
        GrowableDsu {
            store: SegmentedStore::new(),
            order: HashOrder::new(seed),
            count: AtomicUsize::new(0),
            links: AtomicUsize::new(0),
            _policy: std::marker::PhantomData,
        }
    }

    /// An universe pre-populated with `n` singleton elements `0..n`.
    pub fn with_initial(n: usize) -> Self {
        let dsu = Self::new();
        for _ in 0..n {
            dsu.make_set();
        }
        dsu
    }

    /// Creates a fresh singleton set and returns its element index.
    /// Indices are dense: the `k`-th `make_set` overall returns `k - 1`.
    pub fn make_set(&self) -> usize {
        let e = self.count.fetch_add(1, Ordering::SeqCst);
        self.store.ensure_cell(e);
        e
    }

    /// Number of elements created so far.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::SeqCst)
    }

    /// `true` before the first `make_set`.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of disjoint sets right now.
    pub fn set_count(&self) -> usize {
        self.len() - self.links.load(Ordering::SeqCst)
    }

    /// The name of the find policy, for reports.
    pub fn policy_name(&self) -> &'static str {
        F::NAME
    }

    fn check(&self, x: usize) {
        assert!(x < self.len(), "element {x} out of range (len {})", self.len());
    }

    /// Root of the tree containing `x` (see the staleness caveat on
    /// [`ConcurrentUnionFind::find`]).
    ///
    /// [`ConcurrentUnionFind::find`]: crate::ConcurrentUnionFind::find
    ///
    /// # Panics
    ///
    /// Panics if `x` was not returned by a completed `make_set`.
    pub fn find(&self, x: usize) -> usize {
        self.find_with(x, &mut ())
    }

    /// [`find`](GrowableDsu::find) reporting work into `stats`.
    pub fn find_with<S: StatsSink>(&self, x: usize, stats: &mut S) -> usize {
        self.check(x);
        F::find(&self.store, x, stats)
    }

    /// `true` iff `x` and `y` are in the same set at the linearization
    /// point (paper Algorithm 2).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` was not returned by a completed `make_set`.
    pub fn same_set(&self, x: usize, y: usize) -> bool {
        self.same_set_with(x, y, &mut ())
    }

    /// [`same_set`](GrowableDsu::same_set) reporting work into `stats`.
    pub fn same_set_with<S: StatsSink>(&self, x: usize, y: usize, stats: &mut S) -> bool {
        self.check(x);
        self.check(y);
        ops::same_set::<F, _, _, _>(&self.store, &self.order, x, y, stats)
    }

    /// Unites the sets containing `x` and `y`; `true` iff this call linked
    /// (paper Algorithm 3).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` was not returned by a completed `make_set`.
    pub fn unite(&self, x: usize, y: usize) -> bool {
        self.unite_with(x, y, &mut ())
    }

    /// [`unite`](GrowableDsu::unite) reporting work into `stats`.
    pub fn unite_with<S: StatsSink>(&self, x: usize, y: usize, stats: &mut S) -> bool {
        self.check(x);
        self.check(y);
        ops::unite::<F, _, _, _>(&self.store, &self.order, x, y, stats, |_, _| {
            self.links.fetch_add(1, Ordering::Relaxed);
        })
    }

    /// `SameSet` with early termination (paper Algorithm 6).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` was not returned by a completed `make_set`.
    pub fn same_set_early(&self, x: usize, y: usize) -> bool {
        self.check(x);
        self.check(y);
        ops::same_set_early::<F, _, _, _>(&self.store, &self.order, x, y, &mut ())
    }

    /// `Unite` with early termination (paper Algorithm 7).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` was not returned by a completed `make_set`.
    pub fn unite_early(&self, x: usize, y: usize) -> bool {
        self.check(x);
        self.check(y);
        ops::unite_early::<F, _, _, _>(&self.store, &self.order, x, y, &mut (), |_, _| {
            self.links.fetch_add(1, Ordering::Relaxed);
        })
    }

    /// Canonical labels for all current elements; call only at quiescence.
    pub fn labels_snapshot(&self) -> Vec<usize> {
        let mut labels: Vec<usize> = (0..self.len()).map(|i| self.find(i)).collect();
        for i in 0..labels.len() {
            labels[i] = labels[labels[i]];
        }
        labels
    }
}

impl<F: FindPolicy> ConcurrentUnionFind for GrowableDsu<F> {
    fn len(&self) -> usize {
        GrowableDsu::len(self)
    }

    fn same_set(&self, x: usize, y: usize) -> bool {
        GrowableDsu::same_set(self, x, y)
    }

    fn unite(&self, x: usize, y: usize) -> bool {
        GrowableDsu::unite(self, x, y)
    }

    fn find(&self, x: usize) -> usize {
        GrowableDsu::find(self, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sequential_dsu::{NaiveDsu, Partition};

    #[test]
    fn locate_covers_segments_densely() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(1), (1, 0));
        assert_eq!(locate(2), (1, 1));
        assert_eq!(locate(3), (2, 0));
        assert_eq!(locate(6), (2, 3));
        assert_eq!(locate(7), (3, 0));
        // Dense and in-bounds for a big range.
        for e in 0..10_000 {
            let (s, off) = locate(e);
            assert!(off < (1 << s));
            // Inverse mapping.
            assert_eq!((1 << s) - 1 + off, e);
        }
    }

    #[test]
    fn make_set_returns_dense_indices() {
        let dsu: GrowableDsu = GrowableDsu::new();
        for expect in 0..100 {
            assert_eq!(dsu.make_set(), expect);
        }
        assert_eq!(dsu.len(), 100);
        assert_eq!(dsu.set_count(), 100);
    }

    #[test]
    fn basic_semantics() {
        let dsu: GrowableDsu = GrowableDsu::with_initial(4);
        assert!(dsu.unite(0, 1));
        assert!(!dsu.unite(1, 0));
        assert!(dsu.same_set(0, 1));
        assert!(!dsu.same_set(0, 2));
        assert!(dsu.unite_early(2, 3));
        assert!(dsu.same_set_early(3, 2));
        assert_eq!(dsu.set_count(), 2);
    }

    #[test]
    fn interleaved_make_set_and_unite_single_thread() {
        let dsu: GrowableDsu = GrowableDsu::new();
        let mut oracle = NaiveDsu::new(0);
        let mut ids = Vec::new();
        for round in 0..50 {
            let e = dsu.make_set();
            ids.push(e);
            // Mirror in oracle by rebuilding with one more element.
            let mut bigger = NaiveDsu::new(ids.len());
            for x in 0..ids.len() - 1 {
                for y in 0..ids.len() - 1 {
                    if x < y && oracle.same_set(x, y) {
                        bigger.unite(x, y);
                    }
                }
            }
            oracle = bigger;
            if round > 0 {
                let a = e % round.max(1);
                assert_eq!(dsu.unite(a, e), oracle.unite(a, e));
                assert_eq!(dsu.same_set(a, e), oracle.same_set(a, e));
            }
        }
        assert_eq!(dsu.set_count(), oracle.set_count());
        assert_eq!(
            Partition::from_labels(&dsu.labels_snapshot()),
            oracle.partition()
        );
    }

    #[test]
    fn concurrent_growth_and_churn() {
        let dsu: GrowableDsu = GrowableDsu::new();
        let handles_per_thread = 2000;
        let threads = 8;
        let all: Vec<Vec<usize>> = std::thread::scope(|s| {
            let mut js = Vec::new();
            for t in 0..threads {
                let dsu = &dsu;
                js.push(s.spawn(move || {
                    use rand::{Rng, SeedableRng};
                    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(t as u64);
                    let mut mine = Vec::new();
                    for _ in 0..handles_per_thread {
                        let e = dsu.make_set();
                        mine.push(e);
                        if mine.len() >= 2 && rng.gen_bool(0.7) {
                            let a = mine[rng.gen_range(0..mine.len())];
                            let b = mine[rng.gen_range(0..mine.len())];
                            dsu.unite(a, b);
                            dsu.same_set(a, b);
                        }
                    }
                    mine
                }));
            }
            js.into_iter().map(|j| j.join().unwrap()).collect()
        });
        // All indices are distinct and dense.
        let mut seen: Vec<usize> = all.into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen.len(), threads * handles_per_thread);
        for (i, &e) in seen.iter().enumerate() {
            assert_eq!(i, e);
        }
        assert_eq!(dsu.len(), threads * handles_per_thread);
        // Labels are a consistent partition.
        let labels = dsu.labels_snapshot();
        let _ = Partition::from_labels(&labels);
    }

    #[test]
    fn segment_boundaries_are_seamless() {
        // Unions that straddle segment boundaries (3->4, 7->8, ...).
        let dsu: GrowableDsu = GrowableDsu::with_initial(1 << 10);
        for s in 1..10 {
            let boundary = (1usize << s) - 1;
            dsu.unite(boundary - 1, boundary);
        }
        for s in 1..10 {
            let boundary = (1usize << s) - 1;
            assert!(dsu.same_set(boundary - 1, boundary));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unmade_elements_are_rejected() {
        let dsu: GrowableDsu = GrowableDsu::new();
        dsu.make_set();
        dsu.same_set(0, 1);
    }

    #[test]
    fn debug_format() {
        let dsu: GrowableDsu = GrowableDsu::with_initial(2);
        let s = format!("{dsu:?}");
        assert!(s.contains("GrowableDsu"));
        assert!(s.contains("two-try"));
    }

    #[test]
    fn default_is_empty() {
        let dsu: GrowableDsu = GrowableDsu::default();
        assert!(dsu.is_empty());
    }
}

//! A growing universe: `MakeSet` support (paper Section 3 remark, Section 7).
//!
//! The fixed-universe [`Dsu`](crate::Dsu) assumes all `n` elements and their
//! random order exist up front. [`GrowableDsu`] removes that assumption:
//! [`make_set`](GrowableDsu::make_set) creates fresh elements concurrently
//! with ongoing operations, and ids are generated *on the fly* by hashing
//! the element index (the paper's Section 7 suggestion: draw from a universe
//! large enough that ties are negligible, plus a tie-breaking rule — here
//! the index itself).
//!
//! As the paper notes, in an unbounded universe the algorithms are
//! *lock-free* rather than wait-free: an operation could in principle chase
//! a set that keeps growing. Storage is a directory of at most
//! `usize::BITS` doubling segments; operations on existing elements never
//! move memory, and allocating a new segment (which happens at most 64
//! times ever) is the only place a thread can briefly wait for another.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::bulk::{self, BatchTuning};
use crate::cache::{self, RootCache};
use crate::find::{FindPolicy, TwoTrySplit};
use crate::flatten::{self, FlattenPolicy, FlattenTrigger};
use crate::ingest::PlanTuning;
use crate::ops;
use crate::order::{splitmix64, HashOrder, IdOrder, LinkPolicy};
use crate::stats::{OpStats, StatsSink};
use crate::store::{self, ParentStore};
use crate::ConcurrentUnionFind;

pub(crate) const SEGMENTS: usize = usize::BITS as usize;

/// Maps element `e` to `(segment, offset)`: segment `s` holds the `2^s`
/// elements `2^s - 1 ..= 2^(s+1) - 2`. (Shared with the sharded growable
/// layout, which applies it per shard.)
pub(crate) fn locate(e: usize) -> (usize, usize) {
    let s = (usize::BITS - 1 - (e + 1).leading_zeros()) as usize;
    (s, e + 1 - (1 << s))
}

/// A [`ParentStore`] whose universe grows one element at a time, bundled
/// with its on-the-fly random order — everything
/// [`GrowableDsu`] needs from its storage type parameter.
///
/// Both implementations keep a directory of at most `usize::BITS` doubling
/// segments, so cells never move and growth is lock-free.
pub trait GrowableStore: ParentStore + IdOrder {
    /// Short layout name for reports (e.g. `"packed-seg"`, `"flat-seg"`).
    const NAME: &'static str;

    /// An empty store whose random ids are salted by `seed`.
    fn with_seed(seed: u64) -> Self;

    /// Ensures element `e`'s cell exists and is initialized as a singleton
    /// (`parent == e`). Called exactly once per element, by `make_set`,
    /// *before* the element index is published.
    fn ensure(&self, e: usize);

    /// Scan units covering the *allocated* cells among `0..len`, each
    /// walking one segment of one allocation in order — the growable
    /// counterpart of [`DsuStore::scan_ranges`](crate::store::DsuStore::scan_ranges),
    /// consumed by the [`flatten`] sweep.
    ///
    /// Implementations must skip unallocated segments (a concurrent
    /// `make_set` may have reserved an index it is still initializing, so
    /// a sweep must never assume every index below a `len()` snapshot is
    /// backed yet) and may include allocated cells at or above `len` —
    /// those are untouched singletons, and flattening a singleton is a
    /// no-op.
    fn scan_runs(&self, len: usize) -> Vec<crate::store::ScanRun> {
        if len == 0 {
            return Vec::new();
        }
        vec![crate::store::ScanRun::contiguous(0..len)]
    }
}

/// The flat growable layout: `AtomicUsize` parent segments, ids computed on
/// demand by hashing the index ([`HashOrder`]) — nothing id-related is
/// stored.
pub struct SegmentedStore {
    segments: [OnceLock<Box<[AtomicUsize]>>; SEGMENTS],
    order: HashOrder,
}

impl SegmentedStore {
    fn cell(&self, i: usize) -> &AtomicUsize {
        let (s, off) = locate(i);
        let seg = self.segments[s]
            .get()
            .expect("element's segment not allocated: use indices returned by make_set");
        &seg[off]
    }
}

impl ParentStore for SegmentedStore {
    type Word = usize;

    #[inline]
    fn load_word(&self, i: usize) -> usize {
        self.cell(i).load(store::LOAD)
    }

    #[inline]
    fn parent_of(w: usize) -> usize {
        w
    }

    #[inline]
    fn cas_from(&self, i: usize, seen: usize, new_parent: usize) -> bool {
        self.cell(i)
            .compare_exchange(seen, new_parent, store::CAS_SUCCESS, store::CAS_FAILURE)
            .is_ok()
    }

    #[inline]
    fn cas_parent(&self, i: usize, old: usize, new: usize) -> bool {
        self.cas_from(i, old, new)
    }

    #[inline]
    fn priority(&self, i: usize, _w: usize) -> u64 {
        // The full 64-bit hash; HashOrder's tie-break is the index, which
        // is exactly the ParentStore::priority contract.
        self.order.key_of(i).0
    }

    #[inline]
    fn precedes(&self, u: usize, v: usize) -> bool {
        // Ids are computed from the index, not stored: skip the default's
        // parent-word loads and compare hashes directly.
        self.order.less(u, v)
    }

    #[inline]
    fn prefetch(&self, i: usize) {
        store::prefetch_read(self.cell(i) as *const AtomicUsize);
    }
}

impl IdOrder for SegmentedStore {
    fn less(&self, u: usize, v: usize) -> bool {
        self.order.less(u, v)
    }
}

impl GrowableStore for SegmentedStore {
    const NAME: &'static str = "flat-seg";

    fn with_seed(seed: u64) -> Self {
        SegmentedStore {
            segments: std::array::from_fn(|_| OnceLock::new()),
            order: HashOrder::new(seed),
        }
    }

    fn ensure(&self, e: usize) {
        let (s, off) = locate(e);
        let seg = self.segments[s].get_or_init(|| {
            let base = (1usize << s) - 1;
            (0..1usize << s).map(|j| AtomicUsize::new(base + j)).collect()
        });
        debug_assert_eq!(seg[off].load(Ordering::Relaxed), e);
    }

    fn scan_runs(&self, len: usize) -> Vec<crate::store::ScanRun> {
        segment_scan_runs(len, |s| self.segments[s].get().is_some())
    }
}

/// Shared segment-directory scan geometry: one stride-1 run per *allocated*
/// segment (segment `s` holds elements `2^s - 1 ..= 2^(s+1) - 2`), clipped
/// to `len`.
pub(crate) fn segment_scan_runs(
    len: usize,
    allocated: impl Fn(usize) -> bool,
) -> Vec<crate::store::ScanRun> {
    let mut runs = Vec::new();
    for s in 0..SEGMENTS {
        let base = (1usize << s) - 1;
        if base >= len {
            break;
        }
        if !allocated(s) {
            continue;
        }
        let count = (1usize << s).min(len - base);
        runs.push(crate::store::ScanRun { base, stride: 1, count });
    }
    runs
}

/// The packed growable layout: `AtomicU64` parent segments carrying a
/// 32-bit hash id in the high half (the paper's Section 7 "universe large
/// enough that ties are rare" suggestion, with the element index breaking
/// the rare ties), so traversal and priority comparison touch one word —
/// same trade as [`PackedStore`](crate::store::PackedStore), including the
/// `2^32`-element bound.
pub struct PackedSegmentedStore {
    segments: [OnceLock<Box<[AtomicU64]>>; SEGMENTS],
    salt: u64,
}

impl PackedSegmentedStore {
    /// The packed word a fresh singleton `e` is born with.
    fn singleton_word(&self, e: usize) -> u64 {
        // Top 32 bits of SplitMix64: the best-mixed half.
        let id = splitmix64((e as u64).wrapping_add(self.salt)) >> 32;
        store::pack_word(id, e)
    }

    fn cell(&self, i: usize) -> &AtomicU64 {
        let (s, off) = locate(i);
        let seg = self.segments[s]
            .get()
            .expect("element's segment not allocated: use indices returned by make_set");
        &seg[off]
    }

    /// The `(hash id, index)` priority key of `i`, read from its word.
    fn key(&self, i: usize) -> (u64, usize) {
        (store::packed_id(self.cell(i).load(store::STAT)), i)
    }
}

impl ParentStore for PackedSegmentedStore {
    type Word = u64;

    #[inline]
    fn load_word(&self, i: usize) -> u64 {
        self.cell(i).load(store::LOAD)
    }

    #[inline]
    fn parent_of(w: u64) -> usize {
        store::packed_parent(w)
    }

    #[inline]
    fn cas_from(&self, i: usize, seen: u64, new_parent: usize) -> bool {
        self.cell(i)
            .compare_exchange(
                seen,
                store::packed_with_parent(seen, new_parent),
                store::CAS_SUCCESS,
                store::CAS_FAILURE,
            )
            .is_ok()
    }

    #[inline]
    fn priority(&self, _i: usize, w: u64) -> u64 {
        store::packed_id(w)
    }

    #[inline]
    fn prefetch(&self, i: usize) {
        store::prefetch_read(self.cell(i) as *const AtomicU64);
    }
}

impl IdOrder for PackedSegmentedStore {
    fn less(&self, u: usize, v: usize) -> bool {
        // 32-bit hash ids can collide; the index tie-break keeps the order
        // total (paper Section 7's tie-breaking rule).
        self.key(u) < self.key(v)
    }
}

impl GrowableStore for PackedSegmentedStore {
    const NAME: &'static str = "packed-seg";

    fn with_seed(seed: u64) -> Self {
        PackedSegmentedStore { segments: std::array::from_fn(|_| OnceLock::new()), salt: seed }
    }

    fn ensure(&self, e: usize) {
        assert!(
            (e as u64) < (1 << 32),
            "PackedSegmentedStore packs parent and id into 32 bits each and supports at most \
             2^32 elements, but make_set would create element {e}; use \
             GrowableDsu<_, SegmentedStore> for larger universes"
        );
        let (s, off) = locate(e);
        let seg = self.segments[s].get_or_init(|| {
            let base = (1usize << s) - 1;
            (0..1usize << s).map(|j| AtomicU64::new(self.singleton_word(base + j))).collect()
        });
        debug_assert_eq!(store::packed_parent(seg[off].load(Ordering::Relaxed)), e);
    }

    fn scan_runs(&self, len: usize) -> Vec<crate::store::ScanRun> {
        segment_scan_runs(len, |s| self.segments[s].get().is_some())
    }
}

/// A concurrent union-find whose universe grows via
/// [`make_set`](GrowableDsu::make_set) (paper Section 3 remark), with
/// on-the-fly random ids (paper Section 7).
///
/// # Element lifetime contract
///
/// An element index may be passed to operations once the `make_set` that
/// returned it has returned (happens-before via the index handoff). Reading
/// [`len`](GrowableDsu::len) and then touching every index below it is only
/// guaranteed at quiescence, because another thread's `make_set` may have
/// reserved an index it is still initializing.
///
/// # Example
///
/// ```
/// use concurrent_dsu::GrowableDsu;
///
/// let dsu: GrowableDsu = GrowableDsu::new();
/// let a = dsu.make_set();
/// let b = dsu.make_set();
/// assert!(!dsu.same_set(a, b));
/// assert!(dsu.unite(a, b));
/// assert!(dsu.same_set(a, b));
/// let c = dsu.make_set();
/// assert!(!dsu.same_set(a, c));
/// ```
pub struct GrowableDsu<
    F: FindPolicy = TwoTrySplit,
    S: GrowableStore = crate::DefaultGrowableStore,
    L: LinkPolicy = crate::DefaultLink,
> {
    store: S,
    count: AtomicUsize,
    links: AtomicUsize,
    /// Adaptive flatten trigger, consulted after every ingested batch
    /// (configured by `DSU_FLATTEN` at construction; default off).
    flatten: FlattenTrigger,
    _policy: std::marker::PhantomData<(F, L)>,
}

impl<F: FindPolicy, S: GrowableStore, L: LinkPolicy> std::fmt::Debug for GrowableDsu<F, S, L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GrowableDsu")
            .field("len", &self.len())
            .field("set_count", &self.set_count())
            .field("policy", &F::NAME)
            .field("store", &S::NAME)
            .field("link", &L::NAME)
            .finish()
    }
}

impl<F: FindPolicy, S: GrowableStore, L: LinkPolicy> Default for GrowableDsu<F, S, L> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F: FindPolicy, S: GrowableStore, L: LinkPolicy> GrowableDsu<F, S, L> {
    /// Default seed for the on-the-fly id hash.
    pub const DEFAULT_SEED: u64 = 0x6d61_6b65_5f73_6574; // "make_set"

    /// An empty universe with the default id seed.
    pub fn new() -> Self {
        Self::with_seed(Self::DEFAULT_SEED)
    }

    /// An empty universe whose random order is salted by `seed`.
    pub fn with_seed(seed: u64) -> Self {
        Self::from_store(S::with_seed(seed))
    }

    /// Wraps an already-constructed (still empty) store — the entry point
    /// for stores whose constructors take more than a seed, such as a
    /// [`ShardedSegmentedStore`](crate::ShardedSegmentedStore) with an
    /// explicit [`ShardSpec`](crate::ShardSpec).
    pub fn from_store(store: S) -> Self {
        GrowableDsu {
            store,
            count: AtomicUsize::new(0),
            links: AtomicUsize::new(0),
            flatten: FlattenTrigger::from_env(),
            _policy: std::marker::PhantomData,
        }
    }

    /// An universe pre-populated with `n` singleton elements `0..n`.
    pub fn with_initial(n: usize) -> Self {
        let dsu = Self::new();
        for _ in 0..n {
            dsu.make_set();
        }
        dsu
    }

    /// Creates a fresh singleton set and returns its element index.
    /// Indices are dense: the `k`-th `make_set` overall returns `k - 1`.
    ///
    /// # Panics
    ///
    /// Panics if the storage layout cannot address the new element (the
    /// default [`PackedSegmentedStore`] supports at most `2^32`).
    pub fn make_set(&self) -> usize {
        let e = self.count.fetch_add(1, Ordering::SeqCst);
        self.store.ensure(e);
        e
    }

    /// Number of elements created so far.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::SeqCst)
    }

    /// `true` before the first `make_set`.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of disjoint sets right now.
    pub fn set_count(&self) -> usize {
        self.len() - self.links.load(store::STAT)
    }

    /// The underlying store — for layout-specific diagnostics (a
    /// [`FaultyStore`](crate::FaultyStore)'s
    /// [`fault_report`](crate::FaultyStore::fault_report), an
    /// [`EpochStore`](crate::EpochStore)'s
    /// [`epoch_report`](crate::epoch::EpochFork::epoch_report)), mirroring
    /// [`Dsu::store`](crate::Dsu::store).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Exclusive store access for quiescent epoch transitions
    /// ([`EpochFork::fork_point`](crate::epoch::EpochFork::fork_point) and
    /// friends take `&mut self` so the borrow checker enforces the
    /// quiescence they require).
    pub(crate) fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Restores the element and link counters to a recorded quiescent
    /// state — the [`VersionedDsu`](crate::VersionedDsu) rollback hook,
    /// paired with the store-level segment restore. Caller must be
    /// quiescent and `links <= len`.
    pub(crate) fn restore_counters(&self, len: usize, links: usize) {
        debug_assert!(links <= len);
        self.count.store(len, Ordering::SeqCst);
        self.links.store(links, Ordering::SeqCst);
    }

    /// The name of the find policy, for reports.
    pub fn policy_name(&self) -> &'static str {
        F::NAME
    }

    /// The name of the storage layout (e.g. `"packed-seg"`), for reports.
    pub fn store_name(&self) -> &'static str {
        S::NAME
    }

    /// The name of the link policy (e.g. `"random"`), for reports. Note
    /// the growable layouts carry no rank word, so
    /// [`RankLink`](crate::RankLink) on them degenerates to index linking
    /// (see [`ParentStore::rank_of`]).
    pub fn link_name(&self) -> &'static str {
        L::NAME
    }

    fn check(&self, x: usize) {
        assert!(x < self.len(), "element {x} out of range (len {})", self.len());
    }

    /// Root of the tree containing `x` (see the staleness caveat on
    /// [`ConcurrentUnionFind::find`]).
    ///
    /// [`ConcurrentUnionFind::find`]: crate::ConcurrentUnionFind::find
    ///
    /// # Panics
    ///
    /// Panics if `x` was not returned by a completed `make_set`.
    pub fn find(&self, x: usize) -> usize {
        self.find_with(x, &mut ())
    }

    /// [`find`](GrowableDsu::find) reporting work into `stats`.
    pub fn find_with<Sk: StatsSink>(&self, x: usize, stats: &mut Sk) -> usize {
        self.check(x);
        F::find(&self.store, x, stats).0
    }

    /// `true` iff `x` and `y` are in the same set at the linearization
    /// point (paper Algorithm 2).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` was not returned by a completed `make_set`.
    pub fn same_set(&self, x: usize, y: usize) -> bool {
        self.same_set_with(x, y, &mut ())
    }

    /// [`same_set`](GrowableDsu::same_set) reporting work into `stats`.
    pub fn same_set_with<Sk: StatsSink>(&self, x: usize, y: usize, stats: &mut Sk) -> bool {
        self.check(x);
        self.check(y);
        ops::same_set::<F, _, _>(&self.store, x, y, stats)
    }

    /// Unites the sets containing `x` and `y`; `true` iff this call linked
    /// (paper Algorithm 3).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` was not returned by a completed `make_set`.
    pub fn unite(&self, x: usize, y: usize) -> bool {
        self.unite_with(x, y, &mut ())
    }

    /// [`unite`](GrowableDsu::unite) reporting work into `stats`.
    pub fn unite_with<Sk: StatsSink>(&self, x: usize, y: usize, stats: &mut Sk) -> bool {
        self.check(x);
        self.check(y);
        ops::unite::<F, L, _, _>(&self.store, x, y, stats, |_, _| {
            self.links.fetch_add(1, Ordering::Relaxed);
        })
    }

    /// Batched [`unite`](GrowableDsu::unite) over an edge slice (see the
    /// [`bulk`] module): filter pass, then word-seeded link
    /// pass. Returns the number of successful links. Like
    /// [`Dsu::unite_batch`](crate::Dsu::unite_batch), this count-only
    /// entry point honors the `DSU_BATCH_PLAN` environment variable
    /// ([`bulk::runtime_default_tuning`]) — planning never changes what it
    /// reports.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint was not returned by a completed `make_set`.
    pub fn unite_batch(&self, edges: &[(usize, usize)]) -> usize {
        self.unite_batch_tuned_with(edges, bulk::runtime_default_tuning(), None, &mut ())
    }

    /// [`unite_batch`](GrowableDsu::unite_batch) routed through the
    /// ingestion planner ([`ingest`](crate::ingest)) at the default
    /// [`PlanTuning`] — the growable counterpart of
    /// [`Dsu::unite_batch_planned`](crate::Dsu::unite_batch_planned).
    ///
    /// # Panics
    ///
    /// Panics if any endpoint was not returned by a completed `make_set`.
    pub fn unite_batch_planned(&self, edges: &[(usize, usize)]) -> usize {
        self.unite_batch_planned_with(edges, &mut ())
    }

    /// [`unite_batch_planned`](GrowableDsu::unite_batch_planned)
    /// reporting work (including the planner counters) into `stats`.
    pub fn unite_batch_planned_with<Sk: StatsSink>(
        &self,
        edges: &[(usize, usize)],
        stats: &mut Sk,
    ) -> usize {
        self.unite_batch_tuned_with(
            edges,
            BatchTuning::new().planned(PlanTuning::new()),
            None,
            stats,
        )
    }

    /// [`unite_batch`](GrowableDsu::unite_batch) that also reports each
    /// edge's link verdict.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint was not returned by a completed `make_set`.
    pub fn unite_batch_results(&self, edges: &[(usize, usize)]) -> Vec<bool> {
        for &(x, y) in edges {
            self.check(x);
            self.check(y);
        }
        let mut results = vec![false; edges.len()];
        bulk::unite_batch_sink::<L, _, _>(
            &self.store,
            edges,
            &mut (),
            |_, _| {
                self.links.fetch_add(1, Ordering::Relaxed);
            },
            |i, linked| results[i] = linked,
        );
        self.maybe_flatten(&mut ());
        results
    }

    /// `SameSet` with early termination (paper Algorithm 6).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` was not returned by a completed `make_set`.
    pub fn same_set_early(&self, x: usize, y: usize) -> bool {
        self.check(x);
        self.check(y);
        ops::same_set_early::<F, L, _, _>(&self.store, x, y, &mut ())
    }

    /// `Unite` with early termination (paper Algorithm 7).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` was not returned by a completed `make_set`.
    pub fn unite_early(&self, x: usize, y: usize) -> bool {
        self.check(x);
        self.check(y);
        ops::unite_early::<F, L, _, _>(&self.store, x, y, &mut (), |_, _| {
            self.links.fetch_add(1, Ordering::Relaxed);
        })
    }

    /// [`unite_batch`](GrowableDsu::unite_batch) with explicit
    /// [`BatchTuning`] and an optional caller-owned hot-root cache — the
    /// growable counterpart of
    /// [`Dsu::unite_batch_tuned_with`](crate::Dsu::unite_batch_tuned_with).
    ///
    /// # Panics
    ///
    /// Panics if any endpoint was not returned by a completed `make_set`.
    pub fn unite_batch_tuned_with<Sk: StatsSink>(
        &self,
        edges: &[(usize, usize)],
        tuning: BatchTuning,
        cache: Option<&mut RootCache>,
        stats: &mut Sk,
    ) -> usize {
        for &(x, y) in edges {
            self.check(x);
            self.check(y);
        }
        let linked = bulk::unite_batch_sink_tuned::<L, _, _>(
            &self.store,
            edges,
            tuning,
            cache,
            stats,
            |_, _| {
                self.links.fetch_add(1, Ordering::Relaxed);
            },
            |_, _| {},
        );
        self.maybe_flatten(stats);
        linked
    }

    // ----- Flatten maintenance pass (see the [`flatten`] module) -----

    /// One sequential store-ordered flatten sweep over every element
    /// created so far: pointer-jumps until the forest has depth ≤ 1. Safe
    /// concurrently with ongoing operations (and with `make_set`: the scan
    /// covers only segments already allocated, and an index reserved but
    /// not yet initialized lives in such a segment only as a root-shaped
    /// singleton, for which the sweep is a no-op).
    pub fn flatten(&self) {
        self.flatten_with(&mut ());
    }

    /// [`flatten`](GrowableDsu::flatten) reporting work into a
    /// [`StatsSink`].
    pub fn flatten_with<Sk: StatsSink>(&self, stats: &mut Sk) {
        flatten::flatten_runs(&self.store, &self.store.scan_runs(self.len()), stats);
    }

    /// Parallel flatten sweep over `threads` workers; returns the merged
    /// per-worker counters.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn flatten_parallel(&self, threads: usize) -> OpStats {
        flatten::flatten_runs_parallel(&self.store, &self.store.scan_runs(self.len()), threads)
    }

    /// The active [`FlattenPolicy`].
    pub fn flatten_policy(&self) -> FlattenPolicy {
        self.flatten.policy()
    }

    /// Replaces the flatten policy.
    pub fn set_flatten_policy(&mut self, policy: FlattenPolicy) {
        self.flatten.set_policy(policy);
    }

    /// Consulted after every ingested batch; see [`Dsu`](crate::Dsu)'s
    /// counterpart.
    fn maybe_flatten<Sk: StatsSink>(&self, stats: &mut Sk) {
        if self.flatten.batch_done(|| flatten::trigger_probe(&self.store, self.len())) {
            self.flatten_with(stats);
        }
    }

    /// Opens a hot-root cache session — the growable counterpart of
    /// [`Dsu::cached`](crate::Dsu::cached). One handle per thread; results
    /// are identical to the plain operations. Capacity follows
    /// [`RootCache::default`] (honoring `DSU_CACHE_SLOTS`).
    pub fn cached(&self) -> GrowableCachedHandle<'_, F, S, L> {
        GrowableCachedHandle { dsu: self, cache: RootCache::default() }
    }

    /// [`cached`](GrowableDsu::cached) with an explicit cache capacity
    /// (slots, rounded up to a power of two).
    pub fn cached_with_capacity(&self, capacity: usize) -> GrowableCachedHandle<'_, F, S, L> {
        GrowableCachedHandle { dsu: self, cache: RootCache::with_capacity(capacity) }
    }

    /// Canonical labels for all current elements; call only at quiescence.
    pub fn labels_snapshot(&self) -> Vec<usize> {
        let mut labels: Vec<usize> = (0..self.len()).map(|i| self.find(i)).collect();
        for i in 0..labels.len() {
            labels[i] = labels[labels[i]];
        }
        labels
    }
}

/// A thread-private hot-root cache session over a [`GrowableDsu`] (from
/// [`GrowableDsu::cached`]) — the growable counterpart of
/// [`CachedHandle`](crate::CachedHandle), with the same
/// verdicts-identical contract. Elements created by `make_set` *after*
/// the handle was opened are usable through it immediately (the cache
/// simply has no entries for them yet).
pub struct GrowableCachedHandle<
    'a,
    F: FindPolicy = TwoTrySplit,
    S: GrowableStore = crate::DefaultGrowableStore,
    L: LinkPolicy = crate::DefaultLink,
> {
    dsu: &'a GrowableDsu<F, S, L>,
    cache: RootCache,
}

impl<F: FindPolicy, S: GrowableStore, L: LinkPolicy> std::fmt::Debug
    for GrowableCachedHandle<'_, F, S, L>
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GrowableCachedHandle")
            .field("dsu", self.dsu)
            .field("cache_capacity", &self.cache.capacity())
            .finish()
    }
}

impl<'a, F: FindPolicy, S: GrowableStore, L: LinkPolicy> GrowableCachedHandle<'a, F, S, L> {
    /// The structure this session operates on.
    pub fn dsu(&self) -> &'a GrowableDsu<F, S, L> {
        self.dsu
    }

    /// Empties the session's cache. Never required for correctness.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Root of the tree containing `x` via the cache (same contract as
    /// [`GrowableDsu::find`]).
    ///
    /// # Panics
    ///
    /// Panics if `x` was not returned by a completed `make_set`.
    pub fn find(&mut self, x: usize) -> usize {
        self.dsu.check(x);
        cache::find_cached::<F, _, _>(&self.dsu.store, &mut self.cache, x, &mut ()).0
    }

    /// [`GrowableDsu::same_set`] with cached finds — identical verdicts.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` was not returned by a completed `make_set`.
    pub fn same_set(&mut self, x: usize, y: usize) -> bool {
        self.dsu.check(x);
        self.dsu.check(y);
        cache::same_set_cached::<F, _, _>(&self.dsu.store, &mut self.cache, x, y, &mut ())
    }

    /// [`GrowableDsu::unite`] with cached finds — identical verdicts.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` was not returned by a completed `make_set`.
    pub fn unite(&mut self, x: usize, y: usize) -> bool {
        self.dsu.check(x);
        self.dsu.check(y);
        cache::unite_cached::<F, L, _, _>(
            &self.dsu.store,
            &mut self.cache,
            x,
            y,
            &mut (),
            |_, _| {
                self.dsu.links.fetch_add(1, Ordering::Relaxed);
            },
        )
    }

    /// [`GrowableDsu::unite_batch`] with the session's cache carried
    /// across calls.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint was not returned by a completed `make_set`.
    pub fn unite_batch(&mut self, edges: &[(usize, usize)]) -> usize {
        self.dsu.unite_batch_tuned_with(
            edges,
            BatchTuning::default(),
            Some(&mut self.cache),
            &mut (),
        )
    }
}

impl<F: FindPolicy, S: GrowableStore, L: LinkPolicy> ConcurrentUnionFind for GrowableDsu<F, S, L> {
    fn len(&self) -> usize {
        GrowableDsu::len(self)
    }

    fn same_set(&self, x: usize, y: usize) -> bool {
        GrowableDsu::same_set(self, x, y)
    }

    fn unite(&self, x: usize, y: usize) -> bool {
        GrowableDsu::unite(self, x, y)
    }

    fn unite_batch(&self, edges: &[(usize, usize)]) -> usize {
        GrowableDsu::unite_batch(self, edges)
    }

    fn unite_batch_cached(&self, edges: &[(usize, usize)], cache: &mut RootCache) -> usize {
        self.unite_batch_tuned_with(edges, BatchTuning::default(), Some(cache), &mut ())
    }

    fn unite_batch_planned(&self, edges: &[(usize, usize)]) -> usize {
        GrowableDsu::unite_batch_planned(self, edges)
    }

    fn find(&self, x: usize) -> usize {
        GrowableDsu::find(self, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sequential_dsu::{NaiveDsu, Partition};

    #[test]
    fn locate_covers_segments_densely() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(1), (1, 0));
        assert_eq!(locate(2), (1, 1));
        assert_eq!(locate(3), (2, 0));
        assert_eq!(locate(6), (2, 3));
        assert_eq!(locate(7), (3, 0));
        // Dense and in-bounds for a big range.
        for e in 0..10_000 {
            let (s, off) = locate(e);
            assert!(off < (1 << s));
            // Inverse mapping.
            assert_eq!((1 << s) - 1 + off, e);
        }
    }

    #[test]
    fn make_set_returns_dense_indices() {
        let dsu: GrowableDsu = GrowableDsu::new();
        for expect in 0..100 {
            assert_eq!(dsu.make_set(), expect);
        }
        assert_eq!(dsu.len(), 100);
        assert_eq!(dsu.set_count(), 100);
    }

    #[test]
    fn basic_semantics() {
        let dsu: GrowableDsu = GrowableDsu::with_initial(4);
        assert!(dsu.unite(0, 1));
        assert!(!dsu.unite(1, 0));
        assert!(dsu.same_set(0, 1));
        assert!(!dsu.same_set(0, 2));
        assert!(dsu.unite_early(2, 3));
        assert!(dsu.same_set_early(3, 2));
        assert_eq!(dsu.set_count(), 2);
    }

    #[test]
    fn interleaved_make_set_and_unite_single_thread() {
        let dsu: GrowableDsu = GrowableDsu::new();
        let mut oracle = NaiveDsu::new(0);
        let mut ids = Vec::new();
        for round in 0..50 {
            let e = dsu.make_set();
            ids.push(e);
            // Mirror in oracle by rebuilding with one more element.
            let mut bigger = NaiveDsu::new(ids.len());
            for x in 0..ids.len() - 1 {
                for y in 0..ids.len() - 1 {
                    if x < y && oracle.same_set(x, y) {
                        bigger.unite(x, y);
                    }
                }
            }
            oracle = bigger;
            if round > 0 {
                let a = e % round.max(1);
                assert_eq!(dsu.unite(a, e), oracle.unite(a, e));
                assert_eq!(dsu.same_set(a, e), oracle.same_set(a, e));
            }
        }
        assert_eq!(dsu.set_count(), oracle.set_count());
        assert_eq!(Partition::from_labels(&dsu.labels_snapshot()), oracle.partition());
    }

    #[test]
    fn concurrent_growth_and_churn() {
        let dsu: GrowableDsu = GrowableDsu::new();
        let handles_per_thread = 2000;
        let threads = 8;
        let all: Vec<Vec<usize>> = std::thread::scope(|s| {
            let mut js = Vec::new();
            for t in 0..threads {
                let dsu = &dsu;
                js.push(s.spawn(move || {
                    use rand::{Rng, SeedableRng};
                    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(t as u64);
                    let mut mine = Vec::new();
                    for _ in 0..handles_per_thread {
                        let e = dsu.make_set();
                        mine.push(e);
                        if mine.len() >= 2 && rng.gen_bool(0.7) {
                            let a = mine[rng.gen_range(0..mine.len())];
                            let b = mine[rng.gen_range(0..mine.len())];
                            dsu.unite(a, b);
                            dsu.same_set(a, b);
                        }
                    }
                    mine
                }));
            }
            js.into_iter().map(|j| j.join().unwrap()).collect()
        });
        // All indices are distinct and dense.
        let mut seen: Vec<usize> = all.into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen.len(), threads * handles_per_thread);
        for (i, &e) in seen.iter().enumerate() {
            assert_eq!(i, e);
        }
        assert_eq!(dsu.len(), threads * handles_per_thread);
        // Labels are a consistent partition.
        let labels = dsu.labels_snapshot();
        let _ = Partition::from_labels(&labels);
    }

    #[test]
    fn unite_batch_matches_per_op() {
        let batched: GrowableDsu = GrowableDsu::with_initial(32);
        let per_op: GrowableDsu = GrowableDsu::with_initial(32);
        let edges: Vec<(usize, usize)> =
            (0..100).map(|i| ((i * 13) % 32, (i * 7 + 1) % 32)).collect();
        let results = batched.unite_batch_results(&edges);
        let expected: Vec<bool> = edges.iter().map(|&(x, y)| per_op.unite(x, y)).collect();
        assert_eq!(results, expected);
        assert_eq!(batched.set_count(), per_op.set_count());
        let recount: GrowableDsu = GrowableDsu::with_initial(32);
        assert_eq!(recount.unite_batch(&edges), expected.iter().filter(|&&b| b).count());
    }

    #[test]
    fn planned_batch_matches_per_op_invariants() {
        let planned: GrowableDsu = GrowableDsu::with_initial(32);
        let per_op: GrowableDsu = GrowableDsu::with_initial(32);
        // Dup-heavy modular stream: the planner drops repeats, the
        // invariants must not move.
        let edges: Vec<(usize, usize)> =
            (0..120).map(|i| ((i * 13) % 32, (i * 7 + 1) % 32)).collect();
        let links = planned.unite_batch_planned(&edges);
        let expected = edges.iter().filter(|&&(x, y)| per_op.unite(x, y)).count();
        assert_eq!(links, expected);
        assert_eq!(planned.set_count(), per_op.set_count());
        assert_eq!(
            Partition::from_labels(&planned.labels_snapshot()),
            Partition::from_labels(&per_op.labels_snapshot())
        );
        let mut stats = crate::OpStats::default();
        let rerun: GrowableDsu = GrowableDsu::with_initial(32);
        rerun.unite_batch_planned_with(&edges, &mut stats);
        assert_eq!(stats.ops, 120, "dropped duplicates still count as ops");
        assert!(stats.dup_edges_dropped > 0, "modular stream repeats pairs: {stats:?}");
    }

    #[test]
    fn segment_boundaries_are_seamless() {
        // Unions that straddle segment boundaries (3->4, 7->8, ...).
        let dsu: GrowableDsu = GrowableDsu::with_initial(1 << 10);
        for s in 1..10 {
            let boundary = (1usize << s) - 1;
            dsu.unite(boundary - 1, boundary);
        }
        for s in 1..10 {
            let boundary = (1usize << s) - 1;
            assert!(dsu.same_set(boundary - 1, boundary));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unmade_elements_are_rejected() {
        let dsu: GrowableDsu = GrowableDsu::new();
        dsu.make_set();
        dsu.same_set(0, 1);
    }

    #[test]
    fn debug_format() {
        let dsu: GrowableDsu = GrowableDsu::with_initial(2);
        let s = format!("{dsu:?}");
        assert!(s.contains("GrowableDsu"));
        assert!(s.contains("two-try"));
    }

    /// The packed growable layout's `2^32` bound check must both state the
    /// bound and point at the flat growable fallback. (Regression: this
    /// message previously had no test at all.)
    #[test]
    fn packed_seg_oversize_panic_names_the_flat_fallback() {
        let store = <PackedSegmentedStore as GrowableStore>::with_seed(0);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.ensure(1 << 32);
        }))
        .expect_err("element 2^32 must be rejected");
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("at most"), "panic must state the bound: {msg}");
        assert!(
            msg.contains("SegmentedStore"),
            "panic must point at the flat growable layout: {msg}"
        );
        // (Not exercising 2^32 - 1 itself: ensure() allocates the whole
        // containing segment — gigabytes for the top one. The bound check
        // fires before any allocation, which is the property under test.)
    }

    #[test]
    fn default_is_empty() {
        let dsu: GrowableDsu = GrowableDsu::default();
        assert!(dsu.is_empty());
    }

    /// Max walk length to a root over the first `len` elements (plain
    /// quiescent reads; test-only).
    fn max_depth<S: GrowableStore>(store: &S, len: usize) -> usize {
        (0..len)
            .map(|i| {
                let mut u = i;
                let mut d = 0;
                loop {
                    let p = store.load_parent(u);
                    if p == u {
                        break d;
                    }
                    u = p;
                    d += 1;
                }
            })
            .max()
            .unwrap_or(0)
    }

    /// NoCompaction + index linking over chain unites builds the full
    /// path 0→1→…→n-1 deterministically (same trick as the fixed-universe
    /// flatten tests).
    fn deep_chain<S: GrowableStore>(
        n: usize,
    ) -> GrowableDsu<crate::find::NoCompaction, S, crate::order::IndexLink> {
        let dsu = GrowableDsu::with_initial(n);
        for i in 1..n {
            dsu.unite(0, i);
        }
        assert!(max_depth(&dsu.store, n) > 1, "{}: chain failed to build depth", S::NAME);
        dsu
    }

    #[test]
    fn flatten_reaches_depth_one_on_every_growable_layout() {
        fn check<S: GrowableStore>() {
            let n = 200;
            let dsu = deep_chain::<S>(n);
            dsu.flatten();
            assert!(max_depth(&dsu.store, n) <= 1, "{}: flatten left depth > 1", S::NAME);
            assert_eq!(dsu.set_count(), 1, "{}: flatten changed the partition", S::NAME);
            assert!(dsu.same_set(0, n - 1));
            // New elements after a flatten are untouched singletons.
            let e = dsu.make_set();
            assert!(!dsu.same_set(0, e));
        }
        check::<SegmentedStore>();
        check::<PackedSegmentedStore>();
        check::<crate::ShardedSegmentedStore>();
    }

    #[test]
    fn parallel_flatten_on_growable_layouts() {
        let n = 300;
        let dsu = deep_chain::<PackedSegmentedStore>(n);
        let stats = dsu.flatten_parallel(4);
        assert_eq!(stats.flatten_passes, 1);
        assert!(stats.flatten_jumps > 0);
        assert!(max_depth(&dsu.store, n) <= 1);
    }

    #[test]
    fn flatten_trigger_fires_through_growable_batches() {
        let mut dsu = deep_chain::<SegmentedStore>(64);
        dsu.set_flatten_policy(FlattenPolicy::EveryKBatches(1));
        dsu.unite_batch(&[]);
        assert!(max_depth(&dsu.store, 64) <= 1, "every-1 trigger did not fire");

        let mut dsu = deep_chain::<SegmentedStore>(64);
        dsu.set_flatten_policy(FlattenPolicy::Off);
        dsu.unite_batch(&[]);
        assert!(max_depth(&dsu.store, 64) > 1, "Off must never flatten");
    }
}

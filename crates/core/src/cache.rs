//! The hot-root cache: start finds at a recently observed root instead of
//! walking from the element.
//!
//! On skewed workloads (Zipf endpoints, burst arrivals, graph hubs) a few
//! roots absorb most of the traffic, and every operation on a hot set pays
//! the same serial pointer chase to rediscover the same root. PR 3's
//! sharded A/B measured how expensive that chase is: one extra *dependent*
//! load per hop cost 0.6x throughput, because the walk is the one part of
//! the operation the memory system cannot overlap. The cheapest way to
//! shorten it is to remember where it ended last time — the practical win
//! Alistarh, Fedorov & Koval report across machines in *In Search of the
//! Fastest Concurrent Union-Find Algorithm*.
//!
//! [`RootCache`] is a small, direct-mapped, thread-private table mapping
//! `element → the root it was last observed under`. A cached find probes
//! it first; on a hit it performs **one** load — the cached root's current
//! word — and validates it:
//!
//! * still a root (`parent == self`): the walk is over before it started.
//!   The load is the find's linearization point, exactly as if a normal
//!   walk had just arrived at the root; the word it returned is the
//!   observation any link CAS is issued against, so nothing downstream
//!   can act on staleness the CAS would not catch.
//! * demoted or re-parented since: the entry is dropped
//!   ([`StatsSink::cache_stale`]) and the find falls back to the normal
//!   walk, whose result replaces the entry.
//!
//! # Why acting on a cache entry is sound
//!
//! A cache entry is nothing but an *older observation* of the forest —
//! "at some past moment, `r` was `x`'s root". Roots only stop being roots
//! by being linked under a larger-id node (Jayanti–Tarjan Lemma 3.1), and
//! `x`'s tree only changes by other roots linking *into* it or by its own
//! root being demoted. So if the validation load still shows `r` as a
//! root, `r` is *still* `x`'s root at that load — the entry being old is
//! invisible. If `r` was demoted meanwhile, validation fails and we never
//! act on the entry. Either way, callers that link still CAS against the
//! exact word the validation load returned, the same
//! observe-then-CAS-the-observation discipline every other path in this
//! crate follows; a single-threaded cached execution therefore returns
//! verdicts bit-identical to an uncached one (proptested in
//! `tests/cache_semantics.rs` on all three layouts), and concurrent
//! executions stay linearizable for free.
//!
//! The cache stores only `(element, root)` index pairs — no words. The
//! validation load has to happen anyway (it *is* the linearization point),
//! and it returns a fresher word than any stored one, so storing words
//! would buy nothing and tie the table to one store's word type. Keeping
//! it word-agnostic lets one cache type serve every layout, which is what
//! allows [`ConcurrentUnionFind::unite_batch_cached`] to exist on the
//! trait rather than on each structure.
//!
//! # Using it
//!
//! Per-op loops hold a session handle ([`Dsu::cached`] /
//! [`GrowableDsu::cached`]); batch ingestion threads pass a cache to
//! [`unite_batch_cached`] or
//! [`Dsu::unite_batch_tuned_with`](crate::Dsu::unite_batch_tuned_with).
//! Every surface is **opt-in**: plain `Dsu::unite_batch` runs *without* a
//! cache (its gather waves already preload the levels a hit would skip,
//! and the cache measured as a loss there — `BENCH_PR4.json` and the
//! [`store`](crate::store) module's "when does the root cache pay"
//! section). The table is deliberately tiny (8 KB at the default 512
//! slots — safely L1-resident; `DSU_CACHE_SLOTS` overrides) and
//! direct-mapped: a wrong-slot collision just overwrites, costing a
//! future miss, never correctness.
//!
//! [`ConcurrentUnionFind::unite_batch_cached`]:
//!     crate::ConcurrentUnionFind::unite_batch_cached
//! [`unite_batch_cached`]: crate::ConcurrentUnionFind::unite_batch_cached
//! [`Dsu::cached`]: crate::Dsu::cached
//! [`GrowableDsu::cached`]: crate::GrowableDsu::cached
//! [`StatsSink::cache_stale`]: crate::stats::StatsSink::cache_stale

use crate::find::FindPolicy;
use crate::order::LinkPolicy;
use crate::stats::StatsSink;
use crate::store::ParentStore;

/// Sentinel key marking an empty cache slot (no element can be
/// `usize::MAX`: stores address at most `2^32` or `isize::MAX` elements).
const EMPTY: usize = usize::MAX;

/// A direct-mapped, thread-private table of `element → last observed root`
/// entries (see the [module docs](self) for semantics and soundness).
///
/// Deliberately word-agnostic — entries are index pairs — so one cache
/// type serves every [`ParentStore`] layout and can travel through the
/// [`ConcurrentUnionFind`](crate::ConcurrentUnionFind) trait.
///
/// **A cache belongs to one structure as well as one thread.** Entries
/// are observations of a *particular* forest; validation only re-checks
/// "is the cached root still a root", which a different structure can
/// satisfy by coincidence (wrong results) or violate by bounds (panic).
/// Never feed a cache populated against one union-find into another —
/// the session handles ([`Dsu::cached`](crate::Dsu::cached)) enforce this
/// by owning their cache; callers of the raw
/// [`unite_batch_cached`](crate::ConcurrentUnionFind::unite_batch_cached)
/// surface must keep one cache per `(thread, structure)` pair, or
/// [`clear`](RootCache::clear) between structures.
#[derive(Debug, Clone)]
pub struct RootCache {
    /// `(key, root)` per slot; `key == EMPTY` marks a free slot.
    slots: Box<[(usize, usize)]>,
    /// `slots.len() - 1` (capacity is a power of two).
    mask: usize,
    /// Right-shift that maps the Fibonacci-hashed key to a slot index.
    shift: u32,
}

impl Default for RootCache {
    /// [`RootCache::DEFAULT_CAPACITY`] slots, overridable with the
    /// `DSU_CACHE_SLOTS` environment variable (a positive integer) — the
    /// same deployment-tuning escape hatch `DSU_SHARDS` gives the sharded
    /// store, so the capacity/footprint trade can be swept without a code
    /// change.
    fn default() -> Self {
        let slots = std::env::var("DSU_CACHE_SLOTS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&s| s > 0)
            .unwrap_or(Self::DEFAULT_CAPACITY);
        Self::with_capacity(slots)
    }
}

impl RootCache {
    /// Default slot count: 512 slots x 16 B = 8 KB, small enough to stay
    /// L1-resident next to the wave scratch yet wide enough that a Zipf
    /// burst's hot set maps without pathological thrashing.
    pub const DEFAULT_CAPACITY: usize = 512;

    /// A cache with `capacity` slots, rounded up to a power of two
    /// (minimum 1). Capacity trades hit rate against the cache's own
    /// footprint; it never affects results.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1).next_power_of_two();
        RootCache {
            slots: vec![(EMPTY, 0); capacity].into_boxed_slice(),
            mask: capacity - 1,
            shift: 64 - capacity.trailing_zeros(),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn slot_of(&self, x: usize) -> usize {
        // Fibonacci hashing: consecutive element indices (the common
        // graph-pipeline shape) spread across slots instead of marching
        // through them in lockstep with their neighbors. The `& 63` keeps
        // the degenerate 1-slot cache (shift 64) defined — its mask sends
        // everything to slot 0 anyway.
        ((x as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (self.shift & 63)) as usize & self.mask
    }

    /// The root `x` was last observed under, if the entry survives.
    /// **Unvalidated**: callers must re-load the root's word and check it
    /// is still a root before acting (that load is the linearization
    /// point — see [`find_cached`]).
    #[inline]
    pub fn get(&self, x: usize) -> Option<usize> {
        let (key, root) = self.slots[self.slot_of(x)];
        (key == x).then_some(root)
    }

    /// Records that `x` was just observed to have root `root`, evicting
    /// whatever shared the slot.
    #[inline]
    pub fn insert(&mut self, x: usize, root: usize) {
        self.slots[self.slot_of(x)] = (x, root);
    }

    /// Drops `x`'s entry if present (used when validation fails; a
    /// subsequent [`insert`](RootCache::insert) would overwrite anyway,
    /// but dropping eagerly keeps a stale entry from being re-validated
    /// by a retry loop that aborts between the two).
    #[inline]
    pub fn evict(&mut self, x: usize) {
        let slot = self.slot_of(x);
        if self.slots[slot].0 == x {
            self.slots[slot] = (EMPTY, 0);
        }
    }

    /// Empties the cache (e.g. between phases whose hot sets differ).
    pub fn clear(&mut self) {
        self.slots.fill((EMPTY, 0));
    }
}

/// [`FindPolicy::find`] accelerated by a [`RootCache`]: on a validated hit
/// the find is a single load of the cached root's word; otherwise the
/// policy's normal walk runs and its result is cached. Returns the root
/// *and the word it was observed with*, exactly like `F::find`, so callers
/// CAS against the validated observation.
///
/// Same contract as the uncached find: the returned node was a root at the
/// moment its word was read, and `x` was in its tree at that moment (the
/// module docs give the argument for why an old entry cannot break this).
#[inline]
pub fn find_cached<F, P, S>(
    store: &P,
    cache: &mut RootCache,
    x: usize,
    stats: &mut S,
) -> (usize, P::Word)
where
    F: FindPolicy,
    P: ParentStore + ?Sized,
    S: StatsSink,
{
    if let Some(r) = cache.get(x) {
        let w = store.load_word(r);
        stats.read();
        if P::parent_of(w) == r {
            stats.cache_hit();
            return (r, w);
        }
        stats.cache_stale();
        cache.evict(x);
    }
    let (r, w) = F::find(store, x, stats);
    cache.insert(x, r);
    (r, w)
}

/// Paper Algorithm 2 (`SameSet`) with cached finds — the body of
/// [`CachedHandle::same_set`](crate::dsu::CachedHandle::same_set). Verdict
/// semantics are identical to [`ops::same_set`](crate::ops::same_set): the
/// cache only changes where each find *starts*.
pub fn same_set_cached<F, P, S>(
    store: &P,
    cache: &mut RootCache,
    x: usize,
    y: usize,
    stats: &mut S,
) -> bool
where
    F: FindPolicy,
    P: ParentStore + ?Sized,
    S: StatsSink,
{
    stats.op_start();
    let mut u = x;
    let mut v = y;
    loop {
        u = find_cached::<F, P, S>(store, cache, u, stats).0;
        v = find_cached::<F, P, S>(store, cache, v, stats).0;
        if u == v {
            return true;
        }
        // u was a root during its (possibly cached) find; if it still is,
        // u and v were simultaneously roots of different trees.
        let up = store.load_parent(u);
        stats.read();
        if up == u {
            return false;
        }
    }
}

/// Paper Algorithm 3 (`Unite`) with cached finds — the body of
/// [`CachedHandle::unite`](crate::dsu::CachedHandle::unite). The link CAS
/// expects the exact word the cached find's validation load returned, so a
/// stale entry can fail a CAS (and retry with fresh finds) but never
/// corrupt a link. Link direction follows the handle's [`LinkPolicy`],
/// keyed off those validated words — the same word-exactness the uncached
/// [`ops::unite`](crate::ops::unite) relies on.
pub fn unite_cached<F, L, P, S>(
    store: &P,
    cache: &mut RootCache,
    x: usize,
    y: usize,
    stats: &mut S,
    record_link: impl Fn(usize, usize),
) -> bool
where
    F: FindPolicy,
    L: LinkPolicy,
    P: ParentStore + ?Sized,
    S: StatsSink,
{
    stats.op_start();
    let mut u = x;
    let mut v = y;
    loop {
        let (ru, wu) = find_cached::<F, P, S>(store, cache, u, stats);
        let (rv, wv) = find_cached::<F, P, S>(store, cache, v, stats);
        u = ru;
        v = rv;
        if u == v {
            return false;
        }
        let (child, wc, parent) =
            if L::key(store, u, wu) < L::key(store, v, wv) { (u, wu, v) } else { (v, wv, u) };
        if store.cas_from(child, wc, parent) {
            stats.link_ok();
            record_link(child, parent);
            L::on_linked(store, wc, parent);
            // The loser of the link is no longer a root; keep the cache
            // from offering it for validation again (validation would
            // catch it, but the evict saves that wasted load).
            cache.evict(child);
            return true;
        }
        stats.link_fail();
        cache.evict(child);
        stats.cas_retry();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find::TwoTrySplit;
    use crate::order::RandomLink;
    use crate::store::{DsuStore, FlatStore, PackedStore};
    use crate::OpStats;
    use std::sync::atomic::Ordering;

    #[test]
    fn capacity_rounds_up_and_indexes_in_bounds() {
        for cap in [0, 1, 3, 64, 100] {
            let c = RootCache::with_capacity(cap);
            assert!(c.capacity().is_power_of_two());
            assert!(c.capacity() >= cap.max(1));
            for x in 0..10_000 {
                assert!(c.slot_of(x) < c.capacity());
            }
        }
        assert_eq!(RootCache::default().capacity(), RootCache::DEFAULT_CAPACITY);
    }

    #[test]
    fn insert_get_evict_clear() {
        let mut c = RootCache::with_capacity(8);
        assert_eq!(c.get(3), None);
        c.insert(3, 7);
        assert_eq!(c.get(3), Some(7));
        c.insert(3, 9);
        assert_eq!(c.get(3), Some(9), "re-insert overwrites");
        c.evict(3);
        assert_eq!(c.get(3), None);
        c.evict(3); // evicting a missing key is a no-op
        c.insert(1, 1);
        c.clear();
        assert_eq!(c.get(1), None);
    }

    #[test]
    fn colliding_keys_overwrite_not_corrupt() {
        let mut c = RootCache::with_capacity(1); // every key collides
        c.insert(10, 11);
        c.insert(20, 21);
        assert_eq!(c.get(10), None, "evicted by the collision");
        assert_eq!(c.get(20), Some(21));
    }

    #[test]
    fn cached_find_hits_after_first_walk() {
        let store = FlatStore::new(8);
        // Path 0 -> 1 -> 2 (2 is root).
        store.parent_cell(0).store(1, Ordering::Relaxed);
        store.parent_cell(1).store(2, Ordering::Relaxed);
        let mut cache = RootCache::default();
        let mut stats = OpStats::default();
        let (r, _) = find_cached::<TwoTrySplit, _, _>(&store, &mut cache, 0, &mut stats);
        assert_eq!(r, 2);
        assert_eq!(stats.cache_hits, 0);
        // Second find: one validation load, no walk.
        let before = stats.reads;
        let (r2, _) = find_cached::<TwoTrySplit, _, _>(&store, &mut cache, 0, &mut stats);
        assert_eq!(r2, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.reads, before + 1, "a hit costs exactly one load");
    }

    #[test]
    fn demoted_root_invalidates_entry() {
        let store = PackedStore::with_seed(8, 42);
        let mut cache = RootCache::default();
        let mut stats = OpStats::default();
        let (r, w) = find_cached::<TwoTrySplit, _, _>(&store, &mut cache, 0, &mut stats);
        assert_eq!(r, 0);
        // Demote the cached root by linking it under another node, as a
        // concurrent unite would.
        assert!(store.cas_from(r, w, 5));
        let (r2, _) = find_cached::<TwoTrySplit, _, _>(&store, &mut cache, 0, &mut stats);
        assert_eq!(r2, 5, "stale entry dropped, walk found the new root");
        assert_eq!(stats.cache_stale, 1);
        assert_eq!(cache.get(0), Some(5), "fallback result re-cached");
    }

    #[test]
    fn cached_ops_agree_with_uncached_single_threaded() {
        use crate::ops;
        let n = 64;
        let cached_store = PackedStore::with_seed(n, 9);
        let plain_store = PackedStore::with_seed(n, 9);
        let mut cache = RootCache::with_capacity(16); // tiny: force evictions
        let mut s = ();
        for i in 0..200usize {
            let x = (i * 37) % n;
            let y = (i * 101 + 3) % n;
            if i % 3 == 0 {
                let a = unite_cached::<TwoTrySplit, RandomLink, _, _>(
                    &cached_store,
                    &mut cache,
                    x,
                    y,
                    &mut s,
                    |_, _| {},
                );
                let b = ops::unite::<TwoTrySplit, RandomLink, _, _>(
                    &plain_store,
                    x,
                    y,
                    &mut s,
                    |_, _| {},
                );
                assert_eq!(a, b, "unite diverged at step {i}");
            } else {
                let a =
                    same_set_cached::<TwoTrySplit, _, _>(&cached_store, &mut cache, x, y, &mut s);
                let b = ops::same_set::<TwoTrySplit, _, _>(&plain_store, x, y, &mut s);
                assert_eq!(a, b, "same_set diverged at step {i}");
            }
        }
        // Same partition at the end (roots may differ in *where* paths
        // point, never in membership).
        for x in 0..n {
            for y in 0..n {
                assert_eq!(
                    same_set_cached::<TwoTrySplit, _, _>(&cached_store, &mut cache, x, y, &mut s),
                    ops::same_set::<TwoTrySplit, _, _>(&plain_store, x, y, &mut s),
                );
            }
        }
    }

    #[test]
    fn link_ids_still_increase_under_cached_unites() {
        let n = 256;
        let store = PackedStore::with_seed(n, 5);
        let mut cache = RootCache::default();
        let mut s = ();
        for i in 0..n - 1 {
            unite_cached::<TwoTrySplit, RandomLink, _, _>(
                &store,
                &mut cache,
                i,
                i + 1,
                &mut s,
                |c, p| {
                    assert!(DsuStore::id_of(&store, c) < DsuStore::id_of(&store, p));
                },
            );
        }
        for x in 0..n {
            let p = store.load_parent(x);
            if p != x {
                assert!(DsuStore::id_of(&store, x) < DsuStore::id_of(&store, p));
            }
        }
    }
}

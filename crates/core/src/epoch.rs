//! Epoch snapshots and rollback: a versioned DSU over copy-on-write
//! segment forks.
//!
//! The forest is append-only in every other layer of this crate: once a bad
//! batch lands — corrupt upstream data, an aborted speculative merge, a
//! chaos-injected failure mid-ingest — there is no way back short of
//! rebuilding from scratch. This module adds the way back. It follows the
//! delete/undo direction of "A Scalable Concurrent Algorithm for Dynamic
//! Connectivity" (PAPERS.md, arXiv 2105.08098) and the speculative
//! group-union shape of optd's memo merging, grafted onto the growable
//! store's segment directory — which is the natural copy-on-write unit,
//! because segments never move and there are at most `usize::BITS` of them.
//!
//! # The design in one paragraph
//!
//! [`EpochStore`] is the packed growable layout
//! ([`PackedSegmentedStore`](crate::PackedSegmentedStore)'s word format)
//! with each segment behind an `Arc`-counted *segment node* stamped with
//! the epoch it was created in. [`VersionedDsu::snapshot`] is O(segments),
//! i.e. O(1) in the element count: clone the ≤ 64 live segment `Arc`s and
//! bump the epoch counter — no cell is copied. Afterward every recorded
//! segment is *shared*; the first `cas_from` that would write a shared
//! (stale-epoch) segment first **forks** it — copies its cells into a
//! fresh node stamped with the current epoch and swings the directory slot
//! — and only then CASes. Reads never fork. [`VersionedDsu::rollback`]
//! swings the slots back to the recorded nodes (bit-identical: they are
//! the *same cells* the snapshot froze, untouched since — every
//! post-snapshot write went to a fork), and
//! [`VersionedDsu::same_set_at`] answers time-travel queries by walking a
//! retained snapshot's frozen segments.
//!
//! # Concurrency and safety argument
//!
//! Epoch transitions (`snapshot`, `rollback`, `drop_snapshot`) take
//! `&mut self` on the [`VersionedDsu`]; Rust's aliasing rules therefore
//! guarantee **quiescence** — no concurrent operation holds `&self` while
//! an epoch moves. That single structural fact carries the whole proof:
//!
//! * During any `&self` phase the epoch counter and every node's epoch
//!   stamp are frozen, so the hot-path check "node is current ⇒ write
//!   directly, node is stale ⇒ fork first" cannot race with an epoch
//!   change.
//! * A stale node is **never written** during the phase (all writers fork
//!   first, and it was stale from the phase's start), so fork copies and
//!   snapshot reads of stale nodes need no synchronization beyond the
//!   happens-before edge the `&mut` transition itself provides.
//! * Concurrent forks of the same slot are serialized by one mutex (forks
//!   are rare — at most one per segment per epoch); the displaced node's
//!   `Arc` is parked in a graveyard and freed only at the next `&mut`
//!   point, so a racing reader that loaded the old slot pointer can finish
//!   its traversal on the displaced (frozen, still-correct) cells.
//! * Lemma 3.1 (ids strictly increase along parent paths) holds across
//!   fork boundaries unchanged: a fork copies words verbatim, so the
//!   observed-word CAS discipline (`cas_from` against the exact word seen)
//!   keeps ruling out ABA exactly as on the unversioned layouts.
//!
//! # What the unversioned paths pay
//!
//! Nothing. [`EpochStore`] is a separate layout type — `GrowableDsu`'s
//! default stores have no epoch field, no fork branch, no `Arc`; this is
//! the PR 6 decorator lesson applied to versioning. Within `EpochStore`
//! itself the per-CAS overhead is one predictable stale-epoch test; the
//! `store_diag` epoch phase counter-asserts that unversioned runs fork
//! and roll back exactly zero times.
//!
//! # Knob
//!
//! `DSU_EPOCH_EVERY=<k>` makes [`VersionedDsu::ingest_batch`] record an
//! automatic snapshot before every `k`-th batch (`off`/`0`/unset: never) —
//! how CI's `epochs` cell runs the whole core suite with
//! snapshot-every-batch. Unrecognized values warn once on stderr
//! ([`knob`]) and fall back to `off`.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::bulk;
use crate::fault::FaultyStore;
use crate::find::{FindPolicy, TwoTrySplit};
use crate::growable::{locate, segment_scan_runs, GrowableDsu, GrowableStore, SEGMENTS};
use crate::knob;
use crate::order::{splitmix64, IdOrder, LinkPolicy};
use crate::stats::StatsSink;
use crate::store::{self, ParentStore, ScanRun};

/// Environment variable read by [`epoch_every_from_env`] (at
/// [`VersionedDsu`] construction): auto-snapshot cadence in ingested
/// batches. `off`/`0`/unset disables; a positive integer `k` snapshots
/// before every `k`-th [`ingest_batch`](VersionedDsu::ingest_batch).
pub const ENV_EPOCH_EVERY: &str = "DSU_EPOCH_EVERY";

/// Parses a `DSU_EPOCH_EVERY` value. `Some(None)` = recognized, auto
/// snapshots off; `Some(Some(k))` = snapshot before every `k`-th batch;
/// `None` = unrecognized (the `from_env` reader warns and falls back to
/// off; this programmatic parser stays silent by contract).
pub fn parse_epoch_every(v: &str) -> Option<Option<NonZeroUsize>> {
    let v = v.trim();
    if v.eq_ignore_ascii_case("off") || v == "0" {
        return Some(None);
    }
    v.parse::<usize>().ok().and_then(NonZeroUsize::new).map(Some)
}

/// Reads `DSU_EPOCH_EVERY` from the environment (off when unset); a
/// set-but-unrecognized value warns once per process on stderr and falls
/// back to off.
pub fn epoch_every_from_env() -> Option<NonZeroUsize> {
    match std::env::var(ENV_EPOCH_EVERY) {
        Err(_) => None,
        Ok(v) => parse_epoch_every(&v).unwrap_or_else(|| {
            knob::warn_unrecognized(ENV_EPOCH_EVERY, &v, "off | 0 | <k> (positive integer)", "off");
            None
        }),
    }
}

/// One immutable-once-stale segment of cells, stamped with the epoch it
/// was created (allocated or forked) in. The directory holds one strong
/// `Arc` reference per slot; snapshots hold one per recorded segment;
/// displaced nodes park one in the graveyard until the next quiescent
/// point.
struct SegmentNode {
    /// Epoch this node was created in. A node whose stamp differs from the
    /// store's current epoch is *shared* (some snapshot may reference it)
    /// and must be forked before any write.
    epoch: u64,
    cells: Box<[AtomicU64]>,
}

/// Totals of the copy-on-write work an [`EpochStore`] has performed —
/// read at quiescence via [`EpochFork::epoch_report`] and fed to
/// [`StatsSink::segments_forked`] / [`StatsSink::cow_copies`] by harness
/// code, the same protocol as
/// [`FaultyStore::fault_report`](crate::FaultyStore::fault_report).
/// Exactly zero on runs that never snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochReport {
    /// Segments copy-on-write-forked (first write to a shared segment).
    pub segments_forked: u64,
    /// Cells copied by those forks — the deferred cost of O(1) snapshots.
    pub cow_copies: u64,
}

/// An opaque O(1) record of the segment directory at one epoch: the ≤ 64
/// live segment `Arc`s plus the epoch they were frozen at. Produced by
/// [`EpochFork::fork_point`], consumed by [`EpochFork::restore`] and the
/// time-travel readers. Cloning clones `Arc`s, never cells.
#[derive(Clone)]
pub struct SegmentSnapshot {
    /// The epoch whose final state this snapshot records (the counter was
    /// bumped past it as part of taking the snapshot, so every recorded
    /// node is stale — i.e. copy-on-write — from here on).
    epoch: u64,
    segs: Vec<Option<Arc<SegmentNode>>>,
}

impl SegmentSnapshot {
    /// The epoch this snapshot froze.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The recorded parent of element `i` — a plain read of the frozen
    /// cells, valid concurrently with ongoing operations (recorded nodes
    /// are never written; see the module safety argument). `i` must have
    /// existed when the snapshot was taken.
    pub fn parent_of(&self, i: usize) -> usize {
        let (s, off) = locate(i);
        let node = self.segs[s].as_ref().expect("element's segment not recorded in this snapshot");
        store::packed_parent(node.cells[off].load(store::STAT))
    }
}

impl std::fmt::Debug for SegmentSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentSnapshot")
            .field("epoch", &self.epoch)
            .field("segments", &self.segs.iter().filter(|s| s.is_some()).count())
            .finish()
    }
}

/// The segment-fork capability [`VersionedDsu`] requires of its store: the
/// growable-store contract plus epoch bookkeeping, O(1) directory
/// snapshots, and quiescent restore. Implemented natively by
/// [`EpochStore`] and forwarded by
/// [`FaultyStore<S>`](crate::FaultyStore)`, so the chaos suite can inject
/// faults straight through a versioned stack.
///
/// `fork_point` / `restore` / `purge_graveyard` take `&mut self`: they
/// move the epoch, which is only sound at quiescence — the `&mut`
/// requirement makes the compiler enforce exactly that.
pub trait EpochFork: GrowableStore {
    /// The current epoch counter (bumped by every `fork_point`/`restore`).
    fn current_epoch(&self) -> u64;

    /// Records the live segments and opens a new epoch (making every
    /// recorded segment copy-on-write). O(segments); copies no cells.
    /// Also drains the graveyard — `&mut self` is a quiescent point.
    fn fork_point(&mut self) -> SegmentSnapshot;

    /// Swings the directory back to `snap`'s recorded segments (dropping
    /// segments allocated since) and opens a new epoch, so the restored
    /// nodes stay copy-on-write and `snap` remains valid for another
    /// restore.
    fn restore(&mut self, snap: &SegmentSnapshot);

    /// Frees segment nodes displaced by forks since the last quiescent
    /// point. Called automatically by `fork_point`/`restore`; exposed for
    /// long `&self` phases that never snapshot again.
    fn purge_graveyard(&mut self);

    /// Copy-on-write work totals so far (monotone; read at quiescence).
    fn epoch_report(&self) -> EpochReport;

    /// The raw cell words of elements `0..len`, for bit-identical state
    /// comparison in tests. Call only at quiescence.
    fn raw_words(&self, len: usize) -> Vec<u64>;
}

/// The versioned growable layout: packed `id << 32 | parent` words (same
/// format and 2^32-element bound as
/// [`PackedSegmentedStore`](crate::PackedSegmentedStore)) in `Arc`-counted,
/// epoch-stamped segment nodes behind an atomic directory. See the module
/// docs for the copy-on-write protocol and safety argument.
pub struct EpochStore {
    /// Directory: slot `s` holds a raw pointer from `Arc::into_raw` (the
    /// directory owns one strong count per non-null slot), or null while
    /// segment `s` is unallocated.
    slots: [AtomicPtr<SegmentNode>; SEGMENTS],
    epoch: AtomicU64,
    salt: u64,
    /// Serializes forks *and* parks displaced nodes until the next
    /// quiescent point (a racing reader may still be walking a displaced
    /// node's cells; see the module safety argument). Fork traffic is at
    /// most one per segment per epoch, so the lock is cold by design.
    graveyard: Mutex<Vec<Arc<SegmentNode>>>,
    segments_forked: AtomicU64,
    cow_copies: AtomicU64,
}

impl EpochStore {
    /// The packed word a fresh singleton `e` is born with (identical to
    /// [`PackedSegmentedStore`](crate::PackedSegmentedStore)).
    fn singleton_word(&self, e: usize) -> u64 {
        let id = splitmix64((e as u64).wrapping_add(self.salt)) >> 32;
        store::pack_word(id, e)
    }

    /// The live node of segment `s`; panics on an unallocated segment
    /// (same misuse contract as the other growable layouts).
    #[inline]
    fn node(&self, s: usize) -> &SegmentNode {
        let p = self.slots[s].load(store::LOAD);
        assert!(!p.is_null(), "element's segment not allocated: use indices returned by make_set");
        // SAFETY: a non-null slot pointer is a live `Arc::into_raw`; the
        // node outlives this `&self` borrow because displacement parks the
        // Arc in the graveyard, which is drained only at `&mut` points.
        unsafe { &*p }
    }

    #[inline]
    fn cell(&self, i: usize) -> &AtomicU64 {
        let (s, off) = locate(i);
        &self.node(s).cells[off]
    }

    /// The `(hash id, index)` priority key of `i`, read from its word.
    fn key(&self, i: usize) -> (u64, usize) {
        (store::packed_id(self.cell(i).load(store::STAT)), i)
    }

    /// Allocates segment `s` fully initialized as singletons, racing
    /// against other allocators with a null→node CAS (the loser's node is
    /// dropped; every cell is initialized before the pointer publishes).
    #[cold]
    #[inline(never)]
    fn alloc_slot(&self, s: usize) {
        let base = (1usize << s) - 1;
        let cells: Box<[AtomicU64]> =
            (0..1usize << s).map(|j| AtomicU64::new(self.singleton_word(base + j))).collect();
        let node = Arc::new(SegmentNode { epoch: self.epoch.load(store::STAT), cells });
        let raw = Arc::into_raw(node) as *mut SegmentNode;
        if self.slots[s]
            .compare_exchange(std::ptr::null_mut(), raw, store::CAS_SUCCESS, store::CAS_FAILURE)
            .is_err()
        {
            // Lost the allocation race; the winner's node is fully
            // initialized (install is the last step), so just free ours.
            // SAFETY: `raw` came from `Arc::into_raw` above and was not
            // installed anywhere.
            unsafe { drop(Arc::from_raw(raw)) };
        }
    }

    /// The copy-on-write slow path: copies segment `s`'s cells into a
    /// fresh current-epoch node, swings the slot, parks the displaced node
    /// in the graveyard, and returns the writable node. Serialized by the
    /// graveyard mutex; a thread that finds the slot already forked while
    /// it waited returns the rival's node.
    #[cold]
    #[inline(never)]
    fn fork_slot(&self, s: usize) -> &SegmentNode {
        let mut graveyard = self.graveyard.lock().unwrap_or_else(|e| e.into_inner());
        let cur = self.slots[s].load(store::LOAD);
        // SAFETY: non-null (only written elements fork) and kept alive as
        // in `node()`; additionally we hold the fork lock, so no rival can
        // displace it under us.
        let cur_ref = unsafe { &*cur };
        let now = self.epoch.load(store::STAT);
        if cur_ref.epoch == now {
            // A rival forked this slot while we waited on the lock.
            return cur_ref;
        }
        // The stale node is frozen for this whole phase (writers fork
        // first), so plain per-cell loads copy a consistent image.
        let cells: Box<[AtomicU64]> =
            cur_ref.cells.iter().map(|c| AtomicU64::new(c.load(store::STAT))).collect();
        self.segments_forked.fetch_add(1, Ordering::Relaxed);
        self.cow_copies.fetch_add(cells.len() as u64, Ordering::Relaxed);
        let raw = Arc::into_raw(Arc::new(SegmentNode { epoch: now, cells })) as *mut SegmentNode;
        self.slots[s].store(raw, store::CAS_SUCCESS);
        // Park the displaced node: a concurrent reader may have loaded the
        // old pointer before our store and still be walking its cells.
        // SAFETY: `cur` was the directory's strong reference; the slot no
        // longer holds it, the graveyard now does.
        graveyard.push(unsafe { Arc::from_raw(cur) });
        // SAFETY: just installed from `Arc::into_raw`; same lifetime
        // argument as `node()`.
        unsafe { &*raw }
    }

    /// The node of segment `s`, forked to the current epoch if it is
    /// shared — every write goes through here.
    #[inline]
    fn writable_node(&self, s: usize) -> &SegmentNode {
        let node = self.node(s);
        if node.epoch == self.epoch.load(store::STAT) {
            node
        } else {
            self.fork_slot(s)
        }
    }
}

impl Drop for EpochStore {
    fn drop(&mut self) {
        for slot in &mut self.slots {
            let p = *slot.get_mut();
            if !p.is_null() {
                // SAFETY: the directory owns one strong count per
                // non-null slot; reclaim it. Graveyard and snapshot Arcs
                // drop through their own owners.
                unsafe { drop(Arc::from_raw(p)) };
            }
        }
    }
}

impl ParentStore for EpochStore {
    type Word = u64;

    #[inline]
    fn load_word(&self, i: usize) -> u64 {
        self.cell(i).load(store::LOAD)
    }

    #[inline]
    fn parent_of(w: u64) -> usize {
        store::packed_parent(w)
    }

    #[inline]
    fn cas_from(&self, i: usize, seen: u64, new_parent: usize) -> bool {
        let (s, off) = locate(i);
        // Fork before writing a shared segment. A fork copies words
        // verbatim, so `seen` transfers: if the cell still holds `seen`
        // the CAS below succeeds on the fork exactly as it would have on
        // the original, and Lemma 3.1's monotone ids rule out ABA across
        // the copy just as they do across time.
        self.writable_node(s).cells[off]
            .compare_exchange(
                seen,
                store::packed_with_parent(seen, new_parent),
                store::CAS_SUCCESS,
                store::CAS_FAILURE,
            )
            .is_ok()
    }

    #[inline]
    fn priority(&self, _i: usize, w: u64) -> u64 {
        store::packed_id(w)
    }

    #[inline]
    fn prefetch(&self, i: usize) {
        store::prefetch_read(self.cell(i) as *const AtomicU64);
    }
}

impl IdOrder for EpochStore {
    fn less(&self, u: usize, v: usize) -> bool {
        // Same tie-break as the other packed layouts (paper Section 7).
        self.key(u) < self.key(v)
    }
}

impl GrowableStore for EpochStore {
    const NAME: &'static str = "epoch-seg";

    fn with_seed(seed: u64) -> Self {
        EpochStore {
            slots: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            epoch: AtomicU64::new(0),
            salt: seed,
            graveyard: Mutex::new(Vec::new()),
            segments_forked: AtomicU64::new(0),
            cow_copies: AtomicU64::new(0),
        }
    }

    fn ensure(&self, e: usize) {
        assert!(
            (e as u64) < (1 << 32),
            "EpochStore packs parent and id into 32 bits each and supports at most 2^32 \
             elements, but make_set would create element {e}; use GrowableDsu<_, \
             SegmentedStore> for larger universes"
        );
        let (s, _off) = locate(e);
        if self.slots[s].load(store::LOAD).is_null() {
            self.alloc_slot(s);
        }
        // A non-null slot needs nothing: allocation pre-fills *every* cell
        // of the segment as a singleton, and a cell can only have left the
        // singleton state if its element existed — which is also what
        // makes index reuse after a rollback sound (cells at or above the
        // snapshot's len in a recorded node were untouched singletons).
    }

    fn scan_runs(&self, len: usize) -> Vec<ScanRun> {
        segment_scan_runs(len, |s| !self.slots[s].load(store::LOAD).is_null())
    }
}

impl EpochFork for EpochStore {
    fn current_epoch(&self) -> u64 {
        self.epoch.load(store::STAT)
    }

    fn fork_point(&mut self) -> SegmentSnapshot {
        let epoch = *self.epoch.get_mut();
        let segs = self
            .slots
            .iter_mut()
            .map(|slot| {
                let p = *slot.get_mut();
                if p.is_null() {
                    None
                } else {
                    // SAFETY: the directory's strong count keeps `p` live;
                    // mint one more for the snapshot.
                    unsafe {
                        Arc::increment_strong_count(p);
                        Some(Arc::from_raw(p as *const SegmentNode))
                    }
                }
            })
            .collect();
        *self.epoch.get_mut() = epoch + 1;
        self.purge_graveyard();
        SegmentSnapshot { epoch, segs }
    }

    fn restore(&mut self, snap: &SegmentSnapshot) {
        for (slot, rec) in self.slots.iter_mut().zip(&snap.segs) {
            let cur = *slot.get_mut();
            let new = match rec {
                Some(arc) => Arc::into_raw(Arc::clone(arc)) as *mut SegmentNode,
                None => std::ptr::null_mut(),
            };
            *slot.get_mut() = new;
            if !cur.is_null() {
                // SAFETY: reclaiming the directory's previous strong
                // count. When the slot was never forked after the
                // snapshot, `cur == new` and this just undoes the clone
                // above — net zero.
                unsafe { drop(Arc::from_raw(cur)) };
            }
        }
        // Bump the epoch so the restored nodes are stale again: the next
        // write forks, and `snap` stays valid for another restore.
        *self.epoch.get_mut() += 1;
        self.purge_graveyard();
    }

    fn purge_graveyard(&mut self) {
        self.graveyard.get_mut().unwrap_or_else(|e| e.into_inner()).clear();
    }

    fn epoch_report(&self) -> EpochReport {
        EpochReport {
            segments_forked: self.segments_forked.load(Ordering::Relaxed),
            cow_copies: self.cow_copies.load(Ordering::Relaxed),
        }
    }

    fn raw_words(&self, len: usize) -> Vec<u64> {
        (0..len).map(|i| self.cell(i).load(store::STAT)).collect()
    }
}

// Chaos composition: a FaultyStore over an epoch-forking store is itself
// growable and epoch-forking, so `VersionedDsu<F, FaultyStore<EpochStore>>`
// drops injected CAS failures / delayed loads / stalls under the whole
// snapshot → ingest → validate → rollback machinery. Fork copies and
// directory swings go through the inner store directly — injection targets
// the algorithm's primitive accesses, not the versioning bookkeeping.
impl<S: GrowableStore> GrowableStore for FaultyStore<S> {
    const NAME: &'static str = "faulty-seg";

    fn with_seed(seed: u64) -> Self {
        FaultyStore::with_plan(S::with_seed(seed), crate::FaultPlan::from_env())
    }

    fn ensure(&self, e: usize) {
        self.inner().ensure(e);
    }

    fn scan_runs(&self, len: usize) -> Vec<ScanRun> {
        self.inner().scan_runs(len)
    }
}

impl<S: EpochFork> EpochFork for FaultyStore<S> {
    fn current_epoch(&self) -> u64 {
        self.inner().current_epoch()
    }

    fn fork_point(&mut self) -> SegmentSnapshot {
        self.inner_mut().fork_point()
    }

    fn restore(&mut self, snap: &SegmentSnapshot) {
        self.inner_mut().restore(snap);
    }

    fn purge_graveyard(&mut self) {
        self.inner_mut().purge_graveyard();
    }

    fn epoch_report(&self) -> EpochReport {
        self.inner().epoch_report()
    }

    fn raw_words(&self, len: usize) -> Vec<u64> {
        self.inner().raw_words(len)
    }
}

/// A handle naming one recorded snapshot of a [`VersionedDsu`] — returned
/// by [`snapshot`](VersionedDsu::snapshot), consumed by
/// [`rollback`](VersionedDsu::rollback) and the time-travel queries.
/// Plain data; stale handles (dropped or rolled past) make the consuming
/// methods panic rather than silently answer about the wrong version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Epoch(u64);

impl Epoch {
    /// The underlying epoch number (diagnostics; monotonically increasing
    /// per structure).
    pub fn id(self) -> u64 {
        self.0
    }
}

/// Verdict of a speculative [`try_unite_batch`](VersionedDsu::try_unite_batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOutcome {
    /// The validator accepted the post-ingest state; the batch's `linked`
    /// successful links are permanent and the speculation snapshot was
    /// discarded.
    Committed {
        /// Number of edges that performed a link.
        linked: usize,
    },
    /// The validator rejected the post-ingest state; the forest was rolled
    /// back — bit-identical — to the pre-batch snapshot.
    RolledBack,
}

impl BatchOutcome {
    /// `true` on [`Committed`](BatchOutcome::Committed).
    pub fn is_committed(&self) -> bool {
        matches!(self, BatchOutcome::Committed { .. })
    }
}

/// One retained snapshot: the frozen segment directory plus the scalar
/// counters that must travel with it on rollback.
struct SnapRecord {
    epoch: u64,
    len: usize,
    links: usize,
    segs: SegmentSnapshot,
}

/// A [`GrowableDsu`] with O(1) snapshots, rollback, speculative batches,
/// and time-travel queries, over any [`EpochFork`] store (default:
/// [`EpochStore`]).
///
/// Concurrent operations (`unite`, `same_set`, `unite_batch`, `make_set`,
/// time-travel reads) take `&self` and run from many threads exactly like
/// [`GrowableDsu`]'s; epoch transitions (`snapshot`, `rollback`,
/// `try_unite_batch`, `ingest_batch`) take `&mut self`, which is how the
/// compiler enforces the quiescence the copy-on-write protocol needs (see
/// the module docs).
///
/// # Example
///
/// ```
/// use concurrent_dsu::VersionedDsu;
///
/// let mut dsu: VersionedDsu = VersionedDsu::with_initial(4);
/// dsu.unite(0, 1);
/// let before = dsu.snapshot(); // O(1): no cells copied
/// dsu.unite(2, 3);
/// dsu.unite(0, 3);
/// assert_eq!(dsu.set_count(), 1);
/// assert!(!dsu.same_set_at(before, 0, 3)); // time travel
/// dsu.rollback(before); // bit-identical restore
/// assert!(dsu.same_set(0, 1));
/// assert!(!dsu.same_set(2, 3));
/// ```
pub struct VersionedDsu<
    F: FindPolicy = TwoTrySplit,
    S: EpochFork = EpochStore,
    L: LinkPolicy = crate::DefaultLink,
> {
    dsu: GrowableDsu<F, S, L>,
    /// Retained snapshots, epoch-ascending (each `fork_point` bumps).
    snaps: Vec<SnapRecord>,
    snapshots_taken: u64,
    rollbacks: u64,
    /// Auto-snapshot cadence for `ingest_batch` (`DSU_EPOCH_EVERY`).
    every: Option<NonZeroUsize>,
    batches: u64,
    /// Epoch of the snapshot the auto policy currently retains (replaced,
    /// not accumulated, so snapshot-every-batch keeps one live snapshot).
    auto_snap: Option<u64>,
}

impl<F: FindPolicy, S: EpochFork, L: LinkPolicy> Default for VersionedDsu<F, S, L> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F: FindPolicy, S: EpochFork, L: LinkPolicy> std::fmt::Debug for VersionedDsu<F, S, L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VersionedDsu")
            .field("dsu", &self.dsu)
            .field("epoch", &self.dsu.store().current_epoch())
            .field("snapshots", &self.snaps.len())
            .field("snapshots_taken", &self.snapshots_taken)
            .field("rollbacks", &self.rollbacks)
            .finish()
    }
}

impl<F: FindPolicy, S: EpochFork, L: LinkPolicy> VersionedDsu<F, S, L> {
    /// An empty versioned universe (auto-snapshot cadence from
    /// `DSU_EPOCH_EVERY`).
    pub fn new() -> Self {
        Self::from_dsu(GrowableDsu::new())
    }

    /// An empty versioned universe whose random order is salted by `seed`.
    pub fn with_seed(seed: u64) -> Self {
        Self::from_dsu(GrowableDsu::with_seed(seed))
    }

    /// A versioned universe pre-populated with `n` singletons `0..n`.
    pub fn with_initial(n: usize) -> Self {
        Self::from_dsu(GrowableDsu::with_initial(n))
    }

    /// Wraps an already-built growable structure (it keeps its flatten
    /// policy and contents; versioning starts with no snapshots).
    pub fn from_dsu(dsu: GrowableDsu<F, S, L>) -> Self {
        VersionedDsu {
            dsu,
            snaps: Vec::new(),
            snapshots_taken: 0,
            rollbacks: 0,
            every: epoch_every_from_env(),
            batches: 0,
            auto_snap: None,
        }
    }

    /// The wrapped structure — every [`GrowableDsu`] operation (cached
    /// sessions, planned batches, flatten sweeps, stats variants) is
    /// available through it; shared-state mutations it performs are
    /// versioned like any other (they go through the store).
    pub fn dsu(&self) -> &GrowableDsu<F, S, L> {
        &self.dsu
    }

    // ----- Delegated operations (concurrent, &self) -----

    /// See [`GrowableDsu::make_set`]. New elements created after a
    /// snapshot simply don't exist at that snapshot — rolling back
    /// shrinks [`len`](VersionedDsu::len) back and the indices are reused
    /// by later `make_set` calls.
    pub fn make_set(&self) -> usize {
        self.dsu.make_set()
    }

    /// See [`GrowableDsu::len`].
    pub fn len(&self) -> usize {
        self.dsu.len()
    }

    /// `true` before the first `make_set`.
    pub fn is_empty(&self) -> bool {
        self.dsu.is_empty()
    }

    /// See [`GrowableDsu::set_count`].
    pub fn set_count(&self) -> usize {
        self.dsu.set_count()
    }

    /// See [`GrowableDsu::find`].
    pub fn find(&self, x: usize) -> usize {
        self.dsu.find(x)
    }

    /// See [`GrowableDsu::same_set`].
    pub fn same_set(&self, x: usize, y: usize) -> bool {
        self.dsu.same_set(x, y)
    }

    /// See [`GrowableDsu::unite`].
    pub fn unite(&self, x: usize, y: usize) -> bool {
        self.dsu.unite(x, y)
    }

    /// See [`GrowableDsu::unite_batch`]. Does *not* consult the
    /// auto-snapshot policy — that belongs to the `&mut` ingestion path
    /// ([`ingest_batch`](VersionedDsu::ingest_batch)), because snapshots
    /// need quiescence.
    pub fn unite_batch(&self, edges: &[(usize, usize)]) -> usize {
        self.dsu.unite_batch(edges)
    }

    /// See [`GrowableDsu::labels_snapshot`] (quiescent).
    pub fn labels_snapshot(&self) -> Vec<usize> {
        self.dsu.labels_snapshot()
    }

    // ----- Epoch transitions (quiescent, &mut self) -----

    /// Records an O(1) snapshot of the current forest and returns its
    /// handle. Cost: ≤ 64 `Arc` clones and one counter bump — no cells
    /// are copied now; the first post-snapshot write to each segment pays
    /// a one-time copy-on-write fork instead.
    pub fn snapshot(&mut self) -> Epoch {
        self.snapshot_with(&mut ())
    }

    /// [`snapshot`](VersionedDsu::snapshot) reporting the event into
    /// `stats`.
    pub fn snapshot_with<Sk: StatsSink>(&mut self, stats: &mut Sk) -> Epoch {
        let len = self.dsu.len();
        let links = len - self.dsu.set_count();
        let segs = self.dsu.store_mut().fork_point();
        let epoch = segs.epoch();
        self.snaps.push(SnapRecord { epoch, len, links, segs });
        self.snapshots_taken += 1;
        stats.snapshot_taken();
        Epoch(epoch)
    }

    /// Restores the forest to snapshot `at` — bit-identical: the directory
    /// swings back to the *recorded segment nodes themselves*, which no
    /// post-snapshot write touched (they all went to forks). Elements
    /// created since roll away ([`len`](VersionedDsu::len) shrinks back);
    /// snapshots taken after `at` are discarded (they describe an
    /// abandoned future); `at` itself stays valid for further rollbacks
    /// and time-travel queries.
    ///
    /// # Panics
    ///
    /// Panics if `at` was dropped or already rolled past.
    pub fn rollback(&mut self, at: Epoch) {
        self.rollback_with(at, &mut ());
    }

    /// [`rollback`](VersionedDsu::rollback) reporting the event into
    /// `stats`.
    pub fn rollback_with<Sk: StatsSink>(&mut self, at: Epoch, stats: &mut Sk) {
        let idx = self
            .snaps
            .iter()
            .position(|r| r.epoch == at.0)
            .expect("rollback target unknown: the snapshot was dropped or already rolled past");
        self.snaps.truncate(idx + 1);
        if self.auto_snap.is_some_and(|e| e > at.0) {
            self.auto_snap = None;
        }
        let rec = &self.snaps[idx];
        self.dsu.store_mut().restore(&rec.segs);
        self.dsu.restore_counters(rec.len, rec.links);
        self.rollbacks += 1;
        stats.rollback_done();
    }

    /// Forgets snapshot `at`, releasing its segment references (and any
    /// fork graveyard — this is a quiescent point). Later and earlier
    /// snapshots are unaffected. No-op if `at` is already gone.
    pub fn drop_snapshot(&mut self, at: Epoch) {
        if let Some(idx) = self.snaps.iter().position(|r| r.epoch == at.0) {
            self.snaps.remove(idx);
        }
        if self.auto_snap == Some(at.0) {
            self.auto_snap = None;
        }
        self.dsu.store_mut().purge_graveyard();
    }

    /// Handles of every retained snapshot, oldest first.
    pub fn snapshots(&self) -> Vec<Epoch> {
        self.snaps.iter().map(|r| Epoch(r.epoch)).collect()
    }

    /// The snapshot the auto policy (`DSU_EPOCH_EVERY`) currently retains.
    pub fn last_auto_snapshot(&self) -> Option<Epoch> {
        self.auto_snap.map(Epoch)
    }

    /// O(1) snapshots recorded over this structure's lifetime.
    pub fn snapshots_taken(&self) -> u64 {
        self.snapshots_taken
    }

    /// Rollbacks performed over this structure's lifetime.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }

    /// The auto-snapshot cadence in force (`None`: never).
    pub fn snapshot_every(&self) -> Option<NonZeroUsize> {
        self.every
    }

    /// Replaces the auto-snapshot cadence (overriding `DSU_EPOCH_EVERY`).
    pub fn set_snapshot_every(&mut self, every: Option<NonZeroUsize>) {
        self.every = every;
    }

    /// Feeds lifetime totals — snapshots, rollbacks, and the store's
    /// copy-on-write work — into `stats`, the attribution protocol
    /// `store_diag` uses (mirrors
    /// [`TunedDsu::report_into`](crate::TunedDsu::report_into) and
    /// [`FaultyStore::fault_report`](crate::FaultyStore::fault_report)).
    pub fn report_into<Sk: StatsSink>(&self, stats: &mut Sk) {
        for _ in 0..self.snapshots_taken {
            stats.snapshot_taken();
        }
        for _ in 0..self.rollbacks {
            stats.rollback_done();
        }
        let report = self.dsu.store().epoch_report();
        stats.segments_forked(report.segments_forked as usize);
        stats.cow_copies(report.cow_copies as usize);
    }

    /// Speculative batch: snapshot, ingest `edges` through the batch path,
    /// hand the post-ingest structure (and the link count) to `validate`,
    /// and either commit (discarding the snapshot) or roll back
    /// bit-identically. The all-or-nothing ingestion primitive for
    /// untrusted upstream data.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range — *before* any state
    /// changes, per [`GrowableDsu::unite_batch`]'s up-front bounds check.
    pub fn try_unite_batch<V>(&mut self, edges: &[(usize, usize)], validate: V) -> BatchOutcome
    where
        V: FnOnce(&GrowableDsu<F, S, L>, usize) -> bool,
    {
        self.try_unite_batch_with(edges, validate, &mut ())
    }

    /// [`try_unite_batch`](VersionedDsu::try_unite_batch) reporting all
    /// events (snapshot, batch work, possible rollback) into `stats`.
    pub fn try_unite_batch_with<V, Sk>(
        &mut self,
        edges: &[(usize, usize)],
        validate: V,
        stats: &mut Sk,
    ) -> BatchOutcome
    where
        V: FnOnce(&GrowableDsu<F, S, L>, usize) -> bool,
        Sk: StatsSink,
    {
        let at = self.snapshot_with(stats);
        let linked =
            self.dsu.unite_batch_tuned_with(edges, bulk::runtime_default_tuning(), None, stats);
        let verdict = if validate(&self.dsu, linked) {
            BatchOutcome::Committed { linked }
        } else {
            self.rollback_with(at, stats);
            BatchOutcome::RolledBack
        };
        self.drop_snapshot(at);
        verdict
    }

    /// Batch ingestion honoring the auto-snapshot policy
    /// (`DSU_EPOCH_EVERY` / [`set_snapshot_every`]): before every `k`-th
    /// batch the previous auto snapshot is replaced by a fresh one, so a
    /// poisoned batch discovered after the fact can be rolled off via
    /// [`last_auto_snapshot`](VersionedDsu::last_auto_snapshot). With the
    /// policy off this is exactly
    /// [`unite_batch`](VersionedDsu::unite_batch) (plus quiescence).
    ///
    /// [`set_snapshot_every`]: VersionedDsu::set_snapshot_every
    pub fn ingest_batch(&mut self, edges: &[(usize, usize)]) -> usize {
        self.ingest_batch_with(edges, &mut ())
    }

    /// [`ingest_batch`](VersionedDsu::ingest_batch) reporting work into
    /// `stats`.
    pub fn ingest_batch_with<Sk: StatsSink>(
        &mut self,
        edges: &[(usize, usize)],
        stats: &mut Sk,
    ) -> usize {
        if let Some(k) = self.every {
            if self.batches.is_multiple_of(k.get() as u64) {
                if let Some(old) = self.auto_snap.take() {
                    self.drop_snapshot(Epoch(old));
                }
                self.auto_snap = Some(self.snapshot_with(stats).0);
            }
            self.batches += 1;
        }
        self.dsu.unite_batch_tuned_with(edges, bulk::runtime_default_tuning(), None, stats)
    }

    // ----- Time-travel queries (concurrent, &self) -----

    fn record(&self, at: Epoch) -> &SnapRecord {
        self.snaps
            .iter()
            .find(|r| r.epoch == at.0)
            .expect("epoch unknown: the snapshot was dropped or rolled past")
    }

    /// The number of elements that existed at snapshot `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` was dropped or rolled past.
    pub fn len_at(&self, at: Epoch) -> usize {
        self.record(at).len
    }

    /// The root of `x`'s tree *as recorded at snapshot `at`* — a plain
    /// sequential walk over the frozen segments, safe concurrently with
    /// ongoing current-epoch operations. Unlike live
    /// [`find`](VersionedDsu::find), the result is stable: the snapshot
    /// never changes.
    ///
    /// # Panics
    ///
    /// Panics if `at` was dropped or rolled past, or `x` did not exist at
    /// `at`.
    pub fn find_at(&self, at: Epoch, x: usize) -> usize {
        let rec = self.record(at);
        assert!(x < rec.len, "element {x} out of range at epoch {} (len was {})", at.0, rec.len);
        let mut u = x;
        loop {
            let p = rec.segs.parent_of(u);
            if p == u {
                return u;
            }
            u = p;
        }
    }

    /// `true` iff `x` and `y` were in the same set at snapshot `at` — the
    /// time-travel query. Exact (not merely linearizable): the snapshot
    /// is one frozen forest.
    ///
    /// # Panics
    ///
    /// Panics if `at` was dropped or rolled past, or an element did not
    /// exist at `at`.
    pub fn same_set_at(&self, at: Epoch, x: usize, y: usize) -> bool {
        self.find_at(at, x) == self.find_at(at, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::OpStats;
    use sequential_dsu::Partition;

    type VDsu = VersionedDsu<TwoTrySplit, EpochStore, crate::DefaultLink>;

    #[test]
    fn parse_epoch_every_grammar() {
        assert_eq!(parse_epoch_every("off"), Some(None));
        assert_eq!(parse_epoch_every("OFF"), Some(None));
        assert_eq!(parse_epoch_every("0"), Some(None));
        assert_eq!(parse_epoch_every(" 3 "), Some(NonZeroUsize::new(3)));
        assert_eq!(parse_epoch_every("1"), Some(NonZeroUsize::new(1)));
        assert_eq!(parse_epoch_every(""), None);
        assert_eq!(parse_epoch_every("every=2"), None);
        assert_eq!(parse_epoch_every("-1"), None);
        assert_eq!(parse_epoch_every("bogus"), None);
    }

    #[test]
    fn snapshot_rollback_roundtrip_is_bit_identical() {
        let mut dsu = VDsu::with_initial(64);
        for i in 0..32 {
            dsu.unite(i, i + 32);
        }
        let words_before = dsu.dsu().store().raw_words(dsu.len());
        let labels_before = dsu.labels_snapshot();
        let snap = dsu.snapshot();

        // Mutate heavily: new links, new elements, a flatten sweep.
        for i in 0..63 {
            dsu.unite(i, i + 1);
        }
        let extra = dsu.make_set();
        dsu.unite(0, extra);
        dsu.dsu().flatten();
        assert_eq!(dsu.set_count(), 1);

        dsu.rollback(snap);
        assert_eq!(dsu.len(), 64, "rollback must shrink len back");
        assert_eq!(dsu.dsu().store().raw_words(dsu.len()), words_before, "bit-identical restore");
        assert_eq!(dsu.labels_snapshot(), labels_before);
        assert_eq!(dsu.set_count(), 32);
    }

    #[test]
    fn rollback_target_survives_for_repeated_rollbacks() {
        let mut dsu = VDsu::with_initial(8);
        let snap = dsu.snapshot();
        for round in 0..3 {
            dsu.unite(0, 1);
            dsu.unite(2, 3);
            assert_eq!(dsu.set_count(), 6, "round {round}");
            dsu.rollback(snap);
            assert_eq!(dsu.set_count(), 8, "round {round}");
        }
        assert_eq!(dsu.rollbacks(), 3);
    }

    #[test]
    fn time_travel_queries_answer_at_the_snapshot() {
        let mut dsu = VDsu::with_initial(6);
        dsu.unite(0, 1);
        let early = dsu.snapshot();
        dsu.unite(1, 2);
        let late = dsu.snapshot();
        dsu.unite(3, 4);

        assert!(dsu.same_set_at(early, 0, 1));
        assert!(!dsu.same_set_at(early, 0, 2), "0-2 merged after `early`");
        assert!(dsu.same_set_at(late, 0, 2));
        assert!(!dsu.same_set_at(late, 3, 4), "3-4 merged after `late`");
        assert!(dsu.same_set(3, 4), "the live view sees everything");
        assert_eq!(dsu.len_at(early), 6);
        // find_at is stable and self-consistent within a snapshot.
        assert_eq!(dsu.find_at(early, 0), dsu.find_at(early, 1));
    }

    #[test]
    #[should_panic(expected = "out of range at epoch")]
    fn time_travel_rejects_elements_born_after_the_snapshot() {
        let mut dsu = VDsu::with_initial(2);
        let snap = dsu.snapshot();
        let e = dsu.make_set();
        dsu.find_at(snap, e);
    }

    #[test]
    #[should_panic(expected = "dropped or rolled past")]
    fn rollback_discards_later_snapshots() {
        let mut dsu = VDsu::with_initial(4);
        let early = dsu.snapshot();
        dsu.unite(0, 1);
        let late = dsu.snapshot();
        dsu.rollback(early);
        dsu.same_set_at(late, 0, 1); // `late` described an abandoned future
    }

    #[test]
    fn drop_snapshot_releases_and_later_queries_panic() {
        let mut dsu = VDsu::with_initial(4);
        let snap = dsu.snapshot();
        dsu.drop_snapshot(snap);
        dsu.drop_snapshot(snap); // idempotent
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dsu.rollback(snap);
        }))
        .is_err());
    }

    #[test]
    fn cow_counters_attribute_forks_and_nothing_else() {
        let mut dsu = VDsu::with_initial(32);
        for i in 0..16 {
            dsu.unite(i, i + 16);
        }
        let before = dsu.dsu().store().epoch_report();
        assert_eq!(before, EpochReport::default(), "no snapshot -> zero CoW work");

        let snap = dsu.snapshot();
        let mut stats = OpStats::default();
        // First write after the snapshot forks the written segment(s).
        dsu.dsu().unite_with(20, 21, &mut stats);
        let after = dsu.dsu().store().epoch_report();
        assert!(after.segments_forked > 0, "post-snapshot write must fork: {after:?}");
        assert!(after.cow_copies >= after.segments_forked, "forks copy whole segments");

        // Writing the same segment again in the same epoch forks nothing.
        let settled = dsu.dsu().store().epoch_report();
        dsu.dsu().unite(20, 22);
        assert_eq!(dsu.dsu().store().epoch_report(), settled, "second write is fork-free");

        dsu.rollback(snap);
        let mut total = OpStats::default();
        dsu.report_into(&mut total);
        assert_eq!(total.snapshots_taken, 1);
        assert_eq!(total.rollbacks, 1);
        assert_eq!(total.segments_forked, after.segments_forked);
        assert_eq!(total.cow_copies, after.cow_copies);
    }

    #[test]
    fn try_unite_batch_commits_and_rolls_back() {
        let mut dsu = VDsu::with_initial(16);
        let edges: Vec<(usize, usize)> = (0..15).map(|i| (i, i + 1)).collect();

        // Validator rejects: everything rolls back bit-identically.
        let words = dsu.dsu().store().raw_words(dsu.len());
        let outcome = dsu.try_unite_batch(&edges, |_, linked| linked < 10);
        assert_eq!(outcome, BatchOutcome::RolledBack);
        assert!(!outcome.is_committed());
        assert_eq!(dsu.set_count(), 16);
        assert_eq!(dsu.dsu().store().raw_words(dsu.len()), words);
        assert!(dsu.snapshots().is_empty(), "speculation snapshot is cleaned up");

        // Validator accepts: links stick.
        let outcome = dsu.try_unite_batch(&edges, |d, linked| linked == 15 && d.same_set(0, 15));
        assert_eq!(outcome, BatchOutcome::Committed { linked: 15 });
        assert_eq!(dsu.set_count(), 1);
        assert!(dsu.snapshots().is_empty());
    }

    #[test]
    fn ingest_batch_auto_snapshot_policy() {
        let mut dsu = VDsu::with_initial(32);
        assert_eq!(dsu.last_auto_snapshot(), None);
        dsu.set_snapshot_every(NonZeroUsize::new(2));

        dsu.ingest_batch(&[(0, 1)]); // batch 0: snapshots
        let first = dsu.last_auto_snapshot().expect("batch 0 must snapshot");
        dsu.ingest_batch(&[(1, 2)]); // batch 1: no snapshot
        assert_eq!(dsu.last_auto_snapshot(), Some(first));
        dsu.ingest_batch(&[(2, 3)]); // batch 2: replaces the auto snapshot
        let second = dsu.last_auto_snapshot().expect("batch 2 must snapshot");
        assert_ne!(first, second);
        assert_eq!(dsu.snapshots().len(), 1, "auto snapshots replace, not accumulate");

        // Rolling off the last batch via the auto snapshot: 2-3 vanishes,
        // the committed 0-1-2 chain survives.
        dsu.rollback(second);
        assert!(dsu.same_set(0, 2));
        assert!(!dsu.same_set(2, 3));

        dsu.set_snapshot_every(None);
        let snaps = dsu.snapshots().len();
        dsu.ingest_batch(&[(4, 5)]);
        assert_eq!(dsu.snapshots().len(), snaps, "policy off -> no new snapshots");
    }

    #[test]
    fn make_set_after_rollback_reuses_indices_as_singletons() {
        let mut dsu = VDsu::with_initial(4);
        let snap = dsu.snapshot();
        let a = dsu.make_set();
        dsu.unite(0, a);
        assert!(dsu.same_set(0, a));
        dsu.rollback(snap);
        assert_eq!(dsu.len(), 4);
        // The same index comes back — as a fresh singleton, because the
        // recorded segment's cells at or above the snapshot len were
        // untouched singletons.
        let b = dsu.make_set();
        assert_eq!(a, b);
        assert!(!dsu.same_set(0, b));
    }

    #[test]
    fn versioned_growth_crosses_segment_boundaries() {
        // Snapshot with few segments, grow across several boundaries,
        // roll back, regrow: directory slots allocated after the snapshot
        // must be dropped by restore and re-allocatable after.
        let mut dsu = VDsu::with_initial(3); // segments 0..2 live
        let snap = dsu.snapshot();
        for _ in 0..200 {
            dsu.make_set(); // allocates segments 2..8
        }
        dsu.unite(0, 150);
        dsu.rollback(snap);
        assert_eq!(dsu.len(), 3);
        for _ in 0..200 {
            dsu.make_set();
        }
        assert!(!dsu.same_set(0, 150));
        dsu.unite(0, 150);
        assert!(dsu.same_set(0, 150));
    }

    #[test]
    fn epoch_store_behaves_like_packed_seg_without_snapshots() {
        // Unversioned semantics parity: same seed, same operations, same
        // partition as the reference growable layout.
        let epoch: GrowableDsu<TwoTrySplit, EpochStore> = GrowableDsu::with_seed(77);
        let packed: GrowableDsu<TwoTrySplit, crate::PackedSegmentedStore> =
            GrowableDsu::with_seed(77);
        for _ in 0..100 {
            epoch.make_set();
            packed.make_set();
        }
        for i in 0..99 {
            let (x, y) = ((i * 13) % 100, (i * 29 + 1) % 100);
            assert_eq!(epoch.unite(x, y), packed.unite(x, y), "edge {i}");
            assert_eq!(epoch.same_set(0, y), packed.same_set(0, y));
        }
        assert_eq!(
            Partition::from_labels(&epoch.labels_snapshot()),
            Partition::from_labels(&packed.labels_snapshot())
        );
        assert_eq!(epoch.store().epoch_report(), EpochReport::default());
    }

    #[test]
    fn faulty_epoch_store_composes() {
        // FaultyStore<EpochStore> must version and inject at once.
        let plan = crate::FaultPlan::rate(5, 0.3);
        let store = FaultyStore::with_plan(<EpochStore as GrowableStore>::with_seed(9), plan);
        let mut dsu: VersionedDsu<TwoTrySplit, FaultyStore<EpochStore>> =
            VersionedDsu::from_dsu(GrowableDsu::from_store(store));
        for _ in 0..32 {
            dsu.make_set();
        }
        for i in 0..16 {
            dsu.unite(i, i + 16);
        }
        let words = dsu.dsu().store().raw_words(dsu.len());
        let outcome = dsu.try_unite_batch(&[(0, 1), (2, 3)], |_, _| false);
        assert_eq!(outcome, BatchOutcome::RolledBack);
        assert_eq!(dsu.dsu().store().raw_words(dsu.len()), words, "chaos rollback bit-identical");
        assert!(
            dsu.dsu().store().fault_report().total() > 0,
            "rate 0.3 must actually inject through the versioned stack"
        );
        assert_eq!(<FaultyStore<EpochStore> as GrowableStore>::NAME, "faulty-seg");
    }

    #[test]
    fn concurrent_phase_between_snapshots() {
        // Threads hammer unites/queries/make_sets between two quiescent
        // epoch transitions; the snapshot taken before the storm must
        // still answer exactly and restore exactly.
        let mut dsu = VDsu::with_initial(256);
        for i in 0..128 {
            dsu.unite(i, i + 128);
        }
        let labels_before = dsu.labels_snapshot();
        let snap = dsu.snapshot();
        std::thread::scope(|s| {
            for t in 0..4 {
                let dsu = &dsu;
                s.spawn(move || {
                    for i in 0..512usize {
                        let (x, y) = ((i * 7 + t * 31) % 256, (i * 13 + 5) % 256);
                        dsu.unite(x, y);
                        dsu.same_set(x, y);
                        // Time-travel reads race with the writers by design.
                        let _ = dsu.same_set_at(snap, x, y);
                    }
                });
            }
        });
        dsu.rollback(snap);
        assert_eq!(dsu.labels_snapshot(), labels_before);
    }
}

//! Keyed-layer semantics: `KeyedDsu` agrees with a sequential
//! `HashMap<K, usize>` + union-find oracle, on every growable layout.
//!
//! The keyed layer adds exactly one thing to the core — a lock-free
//! key → dense-id table — so its contract is exactly one thing: every
//! operation behaves as if the key were first looked up in a sequential
//! map and the operation then ran on the dense core. Single-threaded,
//! verdicts must match the oracle op for op on all three growable layouts
//! (packed-seg, flat-seg, sharded-seg; CI re-runs the suite under
//! `--features strict-sc` for the SeqCst translation). Under concurrency,
//! the table's one hard promise — **at most one id per distinct key, no
//! matter how many threads race the first insert** — is stress-tested
//! directly, including the insert-vs-merge race on the same unseen key.

use concurrent_dsu::growable::GrowableStore;
use concurrent_dsu::{
    KeyedDsu, PackedSegmentedStore, SegmentedStore, ShardSpec, ShardedSegmentedStore, TestWatchdog,
    TwoTrySplit,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::Duration;

/// The sequential reference: a plain map in front of a plain forest —
/// the structure every keyed operation must be indistinguishable from.
#[derive(Default)]
struct Oracle {
    ids: HashMap<String, usize>,
    parent: Vec<usize>,
}

impl Oracle {
    fn id_of(&mut self, key: &str) -> usize {
        if let Some(&id) = self.ids.get(key) {
            return id;
        }
        let id = self.parent.len();
        self.ids.insert(key.to_owned(), id);
        self.parent.push(id);
        id
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn merge(&mut self, a: &str, b: &str) -> bool {
        let (ia, ib) = (self.id_of(a), self.id_of(b));
        let (ra, rb) = (self.find(ia), self.find(ib));
        if ra == rb {
            return false;
        }
        self.parent[ra] = rb;
        true
    }

    fn same_set(&mut self, a: &str, b: &str) -> bool {
        match (self.ids.get(a).copied(), self.ids.get(b).copied()) {
            (Some(ia), Some(ib)) => self.find(ia) == self.find(ib),
            _ => a == b,
        }
    }

    fn set_count(&mut self) -> usize {
        let n = self.parent.len();
        (0..n).filter(|&i| self.find(i) == i).count()
    }
}

/// `(a, b, kind)` triples over a small key universe: kind 0 = merge,
/// 1 = same-set query, 2 = plain insert of `a`. Small universes maximize
/// revisits (the id table's lookup path) while fresh keys keep arriving
/// (the claim path).
fn ops_strategy(keys: usize, max_len: usize) -> impl Strategy<Value = Vec<(usize, usize, usize)>> {
    prop::collection::vec((0..keys, 0..keys, 0..3usize), 0..max_len)
}

fn key(i: usize) -> String {
    format!("key-{i:04}")
}

/// One layout's single-threaded run against the oracle, op for op, plus
/// the id-table invariants (dense ids, stable `get`, exact `key_count`).
fn exercise_layout<S: GrowableStore>(ops: &[(usize, usize, usize)], seed: u64) {
    let dsu: KeyedDsu<String, TwoTrySplit, S> = KeyedDsu::with_seed(seed);
    let mut oracle = Oracle::default();
    for (i, &(a, b, kind)) in ops.iter().enumerate() {
        let (ka, kb) = (key(a), key(b));
        match kind {
            0 => assert_eq!(dsu.merge_keys(&ka, &kb), oracle.merge(&ka, &kb), "merge #{i}"),
            1 => assert_eq!(dsu.same_set(&ka, &kb), oracle.same_set(&ka, &kb), "query #{i}"),
            _ => {
                dsu.insert(&ka);
                oracle.id_of(&ka);
            }
        }
    }
    // Same key population, and every oracle verdict reproducible post hoc.
    assert_eq!(dsu.key_count(), oracle.ids.len());
    assert_eq!(dsu.set_count(), oracle.set_count());
    let entries: Vec<(String, usize)> = oracle.ids.iter().map(|(k, &id)| (k.clone(), id)).collect();
    for (k, _) in &entries {
        let id = dsu.get(k).expect("every oracle key is present");
        assert!(id < entries.len(), "ids must be dense 0..key_count");
    }
    // The keyed ids and the oracle ids name the same entities: their
    // same-set relations agree for every key pair.
    for (ka, ia) in &entries {
        for (kb, ib) in &entries {
            assert_eq!(
                dsu.same_set(ka, kb),
                oracle.find(*ia) == oracle.find(*ib),
                "post-hoc disagreement on ({ka}, {kb})"
            );
        }
    }
    // Unseen keys stayed unseen.
    assert_eq!(dsu.get(&"never-inserted".to_string()), None);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Oracle equivalence on all three growable layouts — arbitrary op
    /// mixes, arbitrary seeds.
    #[test]
    fn keyed_matches_oracle_all_layouts(ops in ops_strategy(24, 120), seed in any::<u64>()) {
        exercise_layout::<PackedSegmentedStore>(&ops, seed);
        exercise_layout::<SegmentedStore>(&ops, seed);
        exercise_layout::<ShardedSegmentedStore>(&ops, seed);
    }

    /// The batch entry points are observationally identical to per-op
    /// loops: same link count, same query verdicts, same final structure.
    #[test]
    fn keyed_batch_matches_per_op(pairs in prop::collection::vec((0..32usize, 0..32usize), 0..160), seed in any::<u64>()) {
        let edges: Vec<(String, String)> = pairs.iter().map(|&(a, b)| (key(a), key(b))).collect();
        let batched: KeyedDsu<String> = KeyedDsu::with_seed(seed);
        let per_op: KeyedDsu<String> = KeyedDsu::with_seed(seed);
        let links = batched.merge_keys_batch(&edges);
        let expected = edges.iter().filter(|(a, b)| per_op.merge_keys(a, b)).count();
        prop_assert_eq!(links, expected, "link counts diverged");
        prop_assert_eq!(batched.key_count(), per_op.key_count());
        prop_assert_eq!(batched.set_count(), per_op.set_count());
        let queries: Vec<(String, String)> =
            (0..40).map(|i| (key(i % 36), key((i * 7 + 3) % 36))).collect();
        let lhs = batched.same_set_batch(&queries);
        let rhs: Vec<bool> = queries.iter().map(|(a, b)| per_op.same_set(a, b)).collect();
        prop_assert_eq!(lhs, rhs, "query verdicts diverged");
    }

    /// Keyed operations through the sparse-u64 window: ids assigned over a
    /// universe scattered across the whole word range still resolve
    /// consistently (the table never assumes key locality).
    #[test]
    fn sparse_u64_keys_resolve_consistently(pairs in prop::collection::vec((0..40u64, 0..40u64), 0..120)) {
        let scatter = |k: u64| k.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31);
        let dsu: KeyedDsu<u64> = KeyedDsu::new();
        let mut oracle = Oracle::default();
        for &(a, b) in &pairs {
            let (sa, sb) = (scatter(a), scatter(b));
            prop_assert_eq!(
                dsu.merge_keys(&sa, &sb),
                oracle.merge(&format!("{sa}"), &format!("{sb}"))
            );
        }
        prop_assert_eq!(dsu.key_count(), oracle.ids.len());
        prop_assert_eq!(dsu.set_count(), oracle.set_count());
    }
}

/// The table's core concurrent promise, attacked directly: many threads
/// insert the **same unseen key** through a barrier, every round. All
/// must observe one id, and the table must allocate exactly one dense id
/// per round.
#[test]
fn racing_inserts_of_the_same_key_agree_on_one_id() {
    let _wd = TestWatchdog::arm(
        "racing_inserts_of_the_same_key_agree_on_one_id",
        Duration::from_secs(120),
    );
    const THREADS: usize = 8;
    const ROUNDS: usize = 500;
    // A single shard concentrates every race on one probe path — the
    // worst case for the claim CAS.
    for shards in [1, 4] {
        let dsu: KeyedDsu<String> = KeyedDsu::with_spec(11, ShardSpec::with_shards(shards));
        let barrier = Barrier::new(THREADS);
        let disagreements = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let dsu = &dsu;
                let barrier = &barrier;
                let disagreements = &disagreements;
                s.spawn(move || {
                    for r in 0..ROUNDS {
                        let k = format!("round-{r}");
                        barrier.wait();
                        let id = dsu.insert(&k);
                        // Everyone re-reads after the race: get must agree
                        // with what insert returned, forever.
                        if dsu.get(&k) != Some(id) {
                            disagreements.fetch_add(1, Ordering::Relaxed);
                        }
                        let _ = t;
                    }
                });
            }
        });
        assert_eq!(disagreements.load(Ordering::Relaxed), 0, "insert/get id disagreement");
        assert_eq!(
            dsu.key_count(),
            ROUNDS,
            "{shards}-shard table allocated duplicate ids for a racing key"
        );
        // Dense: every id in 0..ROUNDS is some round's id, exactly once.
        let mut seen = vec![false; ROUNDS];
        for r in 0..ROUNDS {
            let id = dsu.get(&format!("round-{r}")).expect("inserted");
            assert!(!seen[id], "id {id} assigned twice");
            seen[id] = true;
        }
    }
}

/// The insert-vs-merge race on the same unseen key: while one thread
/// inserts `fresh-r`, another simultaneously merges it with an anchor.
/// Whatever the interleaving, afterwards both name the same entity: the
/// insert's id must be in the anchor's set.
#[test]
fn concurrent_insert_vs_merge_of_same_unseen_key() {
    let _wd = TestWatchdog::arm(
        "concurrent_insert_vs_merge_of_same_unseen_key",
        Duration::from_secs(120),
    );
    const ROUNDS: usize = 800;
    let dsu: KeyedDsu<String> = KeyedDsu::new();
    let anchor = "anchor".to_string();
    dsu.insert(&anchor);
    let barrier = Barrier::new(2);
    let inserted_ids: Vec<AtomicUsize> =
        (0..ROUNDS).map(|_| AtomicUsize::new(usize::MAX)).collect();
    std::thread::scope(|s| {
        {
            let dsu = &dsu;
            let barrier = &barrier;
            let inserted_ids = &inserted_ids;
            s.spawn(move || {
                for (r, slot) in inserted_ids.iter().enumerate() {
                    let k = format!("fresh-{r}");
                    barrier.wait();
                    slot.store(dsu.insert(&k), Ordering::Relaxed);
                }
            });
        }
        {
            let dsu = &dsu;
            let barrier = &barrier;
            let anchor = &anchor;
            s.spawn(move || {
                for r in 0..ROUNDS {
                    let k = format!("fresh-{r}");
                    barrier.wait();
                    dsu.merge_keys(&k, anchor);
                }
            });
        }
    });
    // One id per key (the insert's and the merge's resolutions converged),
    // and every round's key ended up united with the anchor.
    assert_eq!(dsu.key_count(), ROUNDS + 1);
    for (r, slot) in inserted_ids.iter().enumerate() {
        let k = format!("fresh-{r}");
        let id = slot.load(Ordering::Relaxed);
        assert_eq!(dsu.get(&k), Some(id), "round {r}: merge minted a second id");
        assert!(dsu.same_set(&k, &anchor), "round {r}: merge lost");
    }
    assert_eq!(dsu.set_count(), 1);
}

/// Full-mix stress on every layout: threads share one keyed structure and
/// race inserts, merges, queries, and batches over an overlapping key
/// range; the final partition must equal a sequential replay's.
#[test]
fn threaded_keyed_stress_matches_sequential_replay() {
    let _wd = TestWatchdog::arm(
        "threaded_keyed_stress_matches_sequential_replay",
        Duration::from_secs(120),
    );
    fn run<S: GrowableStore>() {
        const THREADS: usize = 4;
        let keys = 96usize;
        let per_thread: Vec<Vec<(String, String)>> = (0..THREADS)
            .map(|t| {
                (0..800)
                    .map(|i| {
                        let a = (i * 7919 + t * 131) % keys;
                        let b = (i * 104729 + t * 17 + 5) % keys;
                        (key(a), key(b))
                    })
                    .collect()
            })
            .collect();
        let dsu: KeyedDsu<String, TwoTrySplit, S> = KeyedDsu::with_seed(23);
        std::thread::scope(|s| {
            for (t, ops) in per_thread.iter().enumerate() {
                let dsu = &dsu;
                s.spawn(move || {
                    for (i, (a, b)) in ops.iter().enumerate() {
                        match i % 4 {
                            0 => {
                                dsu.merge_keys(a, b);
                            }
                            1 => {
                                dsu.same_set(a, b);
                            }
                            2 => {
                                dsu.insert(a);
                            }
                            // One thread per stripe drives the batch path.
                            _ if t % 2 == 0 => {
                                dsu.merge_keys_batch(std::slice::from_ref(&(a.clone(), b.clone())));
                            }
                            _ => {
                                dsu.merge_keys(b, a);
                            }
                        }
                    }
                });
            }
        });
        let mut oracle = Oracle::default();
        for ops in &per_thread {
            for (i, (a, b)) in ops.iter().enumerate() {
                match i % 4 {
                    1 => {}
                    2 => {
                        oracle.id_of(a);
                    }
                    _ => {
                        oracle.merge(a, b);
                    }
                }
            }
        }
        assert_eq!(dsu.key_count(), oracle.ids.len());
        assert_eq!(dsu.set_count(), oracle.set_count());
        let all_keys: Vec<String> = oracle.ids.keys().cloned().collect();
        for ka in &all_keys {
            for kb in &all_keys {
                assert_eq!(dsu.same_set(ka, kb), oracle.same_set(ka, kb), "({ka}, {kb})");
            }
        }
    }
    run::<PackedSegmentedStore>();
    run::<SegmentedStore>();
    run::<ShardedSegmentedStore>();
}

/// Growth under contention: enough racing fresh keys to force segment
/// allocation in every shard while other threads read — ids stay unique
/// and the resize counter reconciles with the structure's own count.
#[test]
fn concurrent_growth_keeps_ids_unique() {
    let _wd = TestWatchdog::arm("concurrent_growth_keeps_ids_unique", Duration::from_secs(120));
    const THREADS: usize = 4;
    const PER_THREAD: usize = 4_000;
    let dsu: KeyedDsu<u64> = KeyedDsu::with_spec(5, ShardSpec::with_shards(2));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let dsu = &dsu;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    // Half the keys are thread-private, half contended.
                    let k = if i % 2 == 0 { (t * PER_THREAD + i) as u64 } else { i as u64 };
                    dsu.insert(&k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                }
            });
        }
    });
    let distinct: std::collections::HashSet<u64> = (0..THREADS)
        .flat_map(|t| {
            (0..PER_THREAD).map(move |i| {
                let k = if i % 2 == 0 { (t * PER_THREAD + i) as u64 } else { i as u64 };
                k.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            })
        })
        .collect();
    assert_eq!(dsu.key_count(), distinct.len());
    assert_eq!(dsu.dsu().len(), distinct.len(), "make_set ran once per distinct key");
    let mut seen = vec![false; distinct.len()];
    for k in &distinct {
        let id = dsu.get(k).expect("present");
        assert!(!seen[id], "duplicate id {id}");
        seen[id] = true;
    }
    assert!(dsu.id_table_resizes() > 0, "this volume must have grown the table");
}

//! Hot-root cache semantics: cached finds agree with uncached finds.
//!
//! The cache layer (`src/cache.rs`) may change *where* a find starts —
//! never what any operation returns. Single-threaded, a cached execution's
//! per-op verdicts must be bit-identical to an uncached one's, on all
//! three fixed-universe layouts (packed, flat, sharded), under the default
//! per-access orderings and under `--features strict-sc` (CI runs every
//! combination via the store/ordering matrix). Under concurrency, cached
//! results must stay linearizable even while other threads' links
//! invalidate cache entries mid-batch — the adversarial tests at the
//! bottom exercise exactly that race.

use concurrent_dsu::bulk::{unite_batch_sink_tuned, BatchTuning, WaveDepth};
use concurrent_dsu::{
    Dsu, DsuStore, FlatStore, GrowableDsu, PackedStore, RootCache, ShardedStore, TwoTrySplit,
};
use proptest::prelude::*;
use sequential_dsu::{NaiveDsu, Partition};

fn edges_strategy(n: usize, max_len: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0..n, 0..n), 0..max_len)
}

/// Per-edge verdicts of the tuned batch path on a raw store, under an
/// explicit tuning and cache.
fn batch_verdicts<S: DsuStore>(
    store: &S,
    edges: &[(usize, usize)],
    tuning: BatchTuning,
    cache: Option<&mut RootCache>,
) -> Vec<bool> {
    let mut verdicts = vec![false; edges.len()];
    // DefaultLink, not a pinned policy: the per-op reference this is
    // compared against is a default `Dsu`, which floats with the
    // `default-link-index` feature — both sides must float together.
    unite_batch_sink_tuned::<concurrent_dsu::DefaultLink, _, _>(
        store,
        edges,
        tuning,
        cache,
        &mut (),
        |_, _| {},
        |i, linked| verdicts[i] = linked,
    );
    verdicts
}

/// Single-threaded cached-vs-uncached agreement on one layout: per-op
/// session verdicts, batch verdicts at every tuning, and the final
/// partition all match the uncached per-op execution bit for bit.
fn exercise_layout<S: DsuStore>(edges: &[(usize, usize)], n: usize, seed: u64) {
    // Uncached per-op reference.
    let per_op: Dsu<TwoTrySplit, S> = Dsu::with_seed(n, seed);
    let expected: Vec<bool> = edges.iter().map(|&(x, y)| per_op.unite(x, y)).collect();

    // Cached per-op session (tiny cache: evictions and collisions on).
    let cached: Dsu<TwoTrySplit, S> = Dsu::with_seed(n, seed);
    let mut session = cached.cached_with_capacity(16);
    let got: Vec<bool> = edges.iter().map(|&(x, y)| session.unite(x, y)).collect();
    assert_eq!(got, expected, "cached per-op verdicts diverged");
    assert_eq!(cached.set_count(), per_op.set_count());
    assert_eq!(
        Partition::from_labels(&cached.labels_snapshot()),
        Partition::from_labels(&per_op.labels_snapshot())
    );
    // Cached same_set agrees everywhere afterwards.
    for x in (0..n).step_by(3) {
        for y in (0..n).step_by(5) {
            assert_eq!(session.same_set(x, y), per_op.same_set(x, y));
        }
    }

    // Batch path: every (depth, cache) tuning returns the same per-edge
    // verdicts as uncached per-op unite.
    for depth in [WaveDepth::Two, WaveDepth::Three] {
        for cache_on in [false, true] {
            let store = S::with_seed(n, seed);
            let mut cache = RootCache::with_capacity(32);
            let verdicts = batch_verdicts(
                &store,
                edges,
                BatchTuning::new().wave_depth(depth),
                cache_on.then_some(&mut cache),
            );
            assert_eq!(
                verdicts, expected,
                "batch verdicts diverged at depth {depth:?}, cache {cache_on}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cached executions are observationally identical to uncached ones on
    /// all three layouts — arbitrary edge lists, arbitrary seeds.
    #[test]
    fn cached_matches_uncached_all_layouts(edges in edges_strategy(24, 160), seed in any::<u64>()) {
        exercise_layout::<PackedStore>(&edges, 24, seed);
        exercise_layout::<FlatStore>(&edges, 24, seed);
        exercise_layout::<ShardedStore>(&edges, 24, seed);
    }

    /// A cached session interleaving queries and unites agrees with the
    /// naive oracle op for op (the strongest single-threaded statement:
    /// verdicts are partition-determined and the cache must not perturb
    /// the partition mid-stream).
    #[test]
    fn cached_session_tracks_oracle(ops in prop::collection::vec((0..20usize, 0..20usize, any::<bool>()), 0..150)) {
        let dsu: Dsu = Dsu::with_seed(20, 7);
        let mut session = dsu.cached_with_capacity(8);
        let mut oracle = NaiveDsu::new(20);
        for (i, &(x, y, is_unite)) in ops.iter().enumerate() {
            if is_unite {
                prop_assert_eq!(session.unite(x, y), oracle.unite(x, y), "unite diverged at op {}", i);
            } else {
                prop_assert_eq!(session.same_set(x, y), oracle.same_set(x, y), "same_set diverged at op {}", i);
            }
        }
        prop_assert_eq!(dsu.set_count(), oracle.set_count());
    }

    /// The growable structure's cached session agrees with its uncached
    /// per-op path (both segmented layouts run via the CI feature matrix).
    #[test]
    fn growable_cached_matches_per_op(edges in edges_strategy(16, 100), seed in any::<u64>()) {
        let cached: GrowableDsu = GrowableDsu::with_seed(seed);
        let per_op: GrowableDsu = GrowableDsu::with_seed(seed);
        for _ in 0..16 {
            cached.make_set();
            per_op.make_set();
        }
        let mut session = cached.cached_with_capacity(8);
        for &(x, y) in &edges {
            prop_assert_eq!(session.unite(x, y), per_op.unite(x, y));
        }
        prop_assert_eq!(cached.set_count(), per_op.set_count());
        let batch: GrowableDsu = GrowableDsu::with_seed(seed);
        for _ in 0..16 {
            batch.make_set();
        }
        let mut bsession = batch.cached();
        bsession.unite_batch(&edges);
        prop_assert_eq!(batch.set_count(), per_op.set_count());
    }
}

/// Adversarial invalidation: one thread ingests bursts through a cached
/// session while other threads race per-op unites over the *same* hot
/// elements, demoting cached roots mid-batch. Every validation that
/// passes is a genuine root observation, so the final partition must equal
/// the connected components of all edges combined, and the link counts
/// must balance exactly.
#[test]
fn concurrent_unites_invalidate_cache_mid_batch() {
    let _wd = concurrent_dsu::TestWatchdog::arm(
        "concurrent_unites_invalidate_cache_mid_batch",
        std::time::Duration::from_secs(120),
    );
    let n = 1 << 10;
    // Zipf-flavored: low indices are hot, so the cached session and the
    // adversary threads keep fighting over the same roots.
    let hot = |i: usize| (i * i) % 61;
    let session_edges: Vec<(usize, usize)> =
        (0..4 * n).map(|i| (hot(i), (i * 2654435761) % n)).collect();
    let adversary_edges: Vec<(usize, usize)> =
        (0..4 * n).map(|i| (hot(i + 7), (i * 40503 + 11) % n)).collect();
    fn run<S: DsuStore>(
        n: usize,
        session_edges: &[(usize, usize)],
        adversary_edges: &[(usize, usize)],
    ) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // RandomLink pinned: the Lemma 3.1 assert below is about *random
        // ids*, which the `default-link-index` CI cell would otherwise
        // retarget.
        let dsu: Dsu<TwoTrySplit, S, concurrent_dsu::RandomLink> = Dsu::with_seed(n, 3);
        let links = AtomicUsize::new(0);
        std::thread::scope(|s| {
            // The cached ingester: bursts of 100 through a persistent
            // session cache that the adversaries keep invalidating.
            {
                let dsu = &dsu;
                let links = &links;
                s.spawn(move || {
                    let mut session = dsu.cached();
                    let mut local = 0;
                    for burst in session_edges.chunks(100) {
                        local += session.unite_batch(burst);
                    }
                    links.fetch_add(local, Ordering::Relaxed);
                });
            }
            // Adversaries: per-op unites (and cached per-op unites) over
            // overlapping hot elements.
            for (t, chunk) in adversary_edges.chunks(adversary_edges.len() / 4 + 1).enumerate() {
                let dsu = &dsu;
                let links = &links;
                s.spawn(move || {
                    let mut local = 0;
                    if t % 2 == 0 {
                        for &(x, y) in chunk {
                            local += dsu.unite(x, y) as usize;
                        }
                    } else {
                        let mut session = dsu.cached_with_capacity(64);
                        for &(x, y) in chunk {
                            local += session.unite(x, y) as usize;
                        }
                    }
                    links.fetch_add(local, Ordering::Relaxed);
                });
            }
        });
        let mut oracle = NaiveDsu::new(n);
        for &(x, y) in session_edges.iter().chain(adversary_edges) {
            oracle.unite(x, y);
        }
        assert_eq!(Partition::from_labels(&dsu.labels_snapshot()), oracle.partition());
        assert_eq!(dsu.set_count(), oracle.set_count());
        // Exactly one `true` per performed link, across every path.
        assert_eq!(links.load(Ordering::Relaxed), n - oracle.set_count());
        // Lemma 3.1 survives cached links.
        let parents = dsu.parents_snapshot();
        for (x, &p) in parents.iter().enumerate() {
            if p != x {
                assert!(dsu.id_of(x) < dsu.id_of(p));
            }
        }
    }
    run::<PackedStore>(n, &session_edges, &adversary_edges);
    run::<FlatStore>(n, &session_edges, &adversary_edges);
    run::<ShardedStore>(n, &session_edges, &adversary_edges);
}

/// Stress: every thread owns a cached session over the same structure;
/// confluence must hold exactly as for plain operations.
#[test]
fn many_cached_sessions_stress() {
    let _wd = concurrent_dsu::TestWatchdog::arm(
        "many_cached_sessions_stress",
        std::time::Duration::from_secs(120),
    );
    let n = 1 << 11;
    let dsu: Dsu = Dsu::new(n);
    let edges: Vec<(usize, usize)> =
        (0..6 * n).map(|i| ((i * 7919) % n, (i * 104729 + 5) % n)).collect();
    std::thread::scope(|s| {
        for chunk in edges.chunks(edges.len() / 8 + 1) {
            let dsu = &dsu;
            s.spawn(move || {
                let mut session = dsu.cached();
                for (i, &(x, y)) in chunk.iter().enumerate() {
                    if i % 3 == 0 {
                        session.same_set(x, y);
                    } else {
                        session.unite(x, y);
                    }
                    if i % 511 == 0 {
                        session.clear_cache();
                    }
                }
            });
        }
    });
    // Finish the merge single-threaded so the oracle comparison is exact.
    let mut session = dsu.cached();
    for &(x, y) in &edges {
        session.unite(x, y);
    }
    let mut oracle = NaiveDsu::new(n);
    for &(x, y) in &edges {
        oracle.unite(x, y);
    }
    assert_eq!(Partition::from_labels(&dsu.labels_snapshot()), oracle.partition());
    assert_eq!(dsu.set_count(), oracle.set_count());
}

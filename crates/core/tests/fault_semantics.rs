//! Fault injection must be *invisible* to results: a store wrapped in
//! `FaultyStore` with any legal plan reaches the same verdicts, the same
//! set counts, and the same partition as the bare store.
//!
//! Why this must hold (and is therefore worth proptesting): a spurious CAS
//! failure leaves the cell untouched, so the caller retries against an
//! unchanged forest; a delayed load returns a value that was current when
//! read; a stall window is just a slow thread. Single-threaded, each of
//! these is a no-op with extra steps — so every verdict contract the repo
//! maintains (batch, planned, cached ≡ per-op `unite`) must survive
//! arbitrary fault rates, on all three layouts. CI runs this file under
//! the default orderings and `--features strict-sc`, like the other
//! semantics suites.
//!
//! The flip side — counters must be exactly zero when nothing is injected —
//! is asserted at the bottom: an unfaulted single-threaded run has no
//! rival threads and no injections, so `cas_retries == 0` and
//! `faults_injected == 0`, which is what lets `store_diag`'s
//! fault-attribution section treat any nonzero value as meaningful.

use concurrent_dsu::{
    Dsu, DsuStore, FaultPlan, FaultyStore, FlatStore, OpStats, PackedStore, ShardedStore,
    StatsSink, TwoTrySplit,
};
use proptest::prelude::*;

fn edges_strategy(n: usize, max_len: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0..n, 0..n), 0..max_len)
}

/// A faulted `Dsu` over layout `S` with the given plan.
fn faulted<S: DsuStore>(n: usize, seed: u64, plan: FaultPlan) -> Dsu<TwoTrySplit, FaultyStore<S>> {
    Dsu::from_store(FaultyStore::with_plan(S::with_seed(n, seed), plan))
}

/// Runs the full contract for one layout: per-op, batch, planned, and
/// cached execution on a faulted store must be bit-identical to per-op
/// `unite` on the bare store.
fn check_layout<S: DsuStore>(edges: &[(usize, usize)], n: usize, seed: u64, plan: FaultPlan) {
    let per_op: Dsu<TwoTrySplit, S> = Dsu::with_seed(n, seed);
    let expected: Vec<bool> = edges.iter().map(|&(x, y)| per_op.unite(x, y)).collect();

    // Per-op under faults.
    let f = faulted::<S>(n, seed, plan);
    let got: Vec<bool> = edges.iter().map(|&(x, y)| f.unite(x, y)).collect();
    assert_eq!(got, expected, "faulted per-op verdicts diverged ({})", S::NAME);
    assert_eq!(f.set_count(), per_op.set_count());
    assert_eq!(f.labels_snapshot(), per_op.labels_snapshot());

    // Batch under faults.
    let fb = faulted::<S>(n, seed, plan);
    assert_eq!(fb.unite_batch_results(edges), expected, "faulted batch diverged ({})", S::NAME);
    assert_eq!(fb.set_count(), per_op.set_count());

    // Planned batch under faults: verdicts follow the plan's execution
    // order (the `ingest` contract), which is itself fault-independent, so
    // planned-under-faults must equal planned-without-faults bit for bit.
    let planned_plain: Dsu<TwoTrySplit, S> = Dsu::with_seed(n, seed);
    let expected_planned = planned_plain.unite_batch_planned_results(edges);
    let fp = faulted::<S>(n, seed, plan);
    assert_eq!(
        fp.unite_batch_planned_results(edges),
        expected_planned,
        "faulted planned batch diverged ({})",
        S::NAME
    );
    assert_eq!(fp.set_count(), per_op.set_count());

    // Cached session under faults.
    let fc = faulted::<S>(n, seed, plan);
    let mut session = fc.cached();
    let got_cached: Vec<bool> = edges.iter().map(|&(x, y)| session.unite(x, y)).collect();
    assert_eq!(got_cached, expected, "faulted cached verdicts diverged ({})", S::NAME);
    drop(session);
    assert_eq!(fc.set_count(), per_op.set_count());
    assert_eq!(fc.labels_snapshot(), per_op.labels_snapshot());

    // With a meaningful workload and rate 0.5, the probability that not a
    // single fault fired across four full executions is (1-r)^accesses —
    // astronomically small for ≥ 32 edges. Guard so the injector cannot
    // silently rot into a no-op.
    if edges.len() >= 32 {
        let injected: u64 =
            [&f.store().fault_report(), &fb.store().fault_report()].iter().map(|r| r.total()).sum();
        assert!(
            injected > 0,
            "fault rate {} never fired over {} edges",
            plan.cas_fail_rate,
            edges.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Verdict contract under a midrange fault plan, all three layouts.
    #[test]
    fn faulted_runs_match_unfaulted(edges in edges_strategy(24, 160), seed in any::<u64>()) {
        let plan = FaultPlan::rate(seed ^ 0xFA17, 0.5);
        check_layout::<PackedStore>(&edges, 24, seed, plan);
        check_layout::<FlatStore>(&edges, 24, seed, plan);
        check_layout::<ShardedStore>(&edges, 24, seed, plan);
    }

    /// The clamp boundary: MAX_RATE is the most hostile legal plan and
    /// must still terminate promptly and agree (packed layout, fewer
    /// cases — each run retries a lot by design).
    #[test]
    fn max_rate_still_terminates_and_agrees(edges in edges_strategy(12, 48), seed in any::<u64>()) {
        let plan = FaultPlan::rate(seed, FaultPlan::MAX_RATE);
        check_layout::<PackedStore>(&edges, 12, seed, plan);
    }
}

/// Zero-fault runs must report exactly zero: no injected faults (off plan)
/// and, single-threaded, no retries — the baseline that makes nonzero
/// counters in `store_diag`'s fault-attribution section meaningful.
#[test]
fn unfaulted_counters_are_exactly_zero() {
    let n = 512;
    let dsu: Dsu<TwoTrySplit, FaultyStore<PackedStore>> =
        Dsu::from_store(FaultyStore::with_plan(PackedStore::with_seed(n, 9), FaultPlan::off()));
    let mut stats = OpStats::default();
    for i in 0..n - 1 {
        dsu.unite_with(i, i + 1, &mut stats);
        dsu.same_set_with(0, i, &mut stats);
    }
    let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    dsu.unite_batch(&edges);
    let report = dsu.store().fault_report();
    assert_eq!(report.total(), 0, "off plan injected faults: {report:?}");
    assert_eq!(stats.faults_injected, 0);
    assert_eq!(stats.cas_retries, 0, "single-threaded unfaulted run cannot retry");
    assert_eq!(stats.links_fail, 0);
}

/// The same workload under a faulted plan shows the attribution the diag
/// section relies on: spurious link-CAS failures surface as `links_fail`
/// *and* `cas_retries`, and the store's report explains them.
#[test]
fn faulted_counters_attribute_retries() {
    let n = 512;
    let dsu: Dsu<TwoTrySplit, FaultyStore<PackedStore>> = Dsu::from_store(FaultyStore::with_plan(
        PackedStore::with_seed(n, 9),
        FaultPlan::rate(7, 0.5),
    ));
    let mut stats = OpStats::default();
    for i in 0..n - 1 {
        dsu.unite_with(i, i + 1, &mut stats);
    }
    let report = dsu.store().fault_report();
    assert!(report.spurious_cas_failures > 0, "{report:?}");
    assert!(stats.cas_retries > 0, "injected link failures must surface as retries");
    assert_eq!(
        stats.links_fail, stats.cas_retries,
        "single-threaded, every retry stems from a (here: injected) link failure"
    );
    // Feed the report through the sink the way harness code does.
    stats.faults_injected(report.total() as usize);
    assert_eq!(stats.faults_injected, report.total());
    // Single-threaded there is no genuine contention: every failed link
    // CAS must be an injected one.
    assert!(
        stats.links_fail <= report.spurious_cas_failures,
        "links_fail {} > injected spurious failures {}",
        stats.links_fail,
        report.spurious_cas_failures
    );
    assert_eq!(dsu.set_count(), 1, "the ring still fully merged under faults");
}

//! Property tests: the concurrent algorithms, run single-threaded, must be
//! *exactly* a sequential union-find — every return value and the final
//! partition agree with the naive oracle, for every (find × link) policy
//! pair and both the standard and early-termination operations. Linking
//! and compaction change tree shapes, never semantics.
//!
//! The store axis rides on `DefaultStore` so CI's layout matrix
//! (`default-store-flat` / `default-store-sharded`) and ordering matrix
//! (`strict-sc`) multiply these properties across every layout without
//! code changes; `RankedStore` is exercised explicitly because no feature
//! retargets the default onto it.

use concurrent_dsu::{
    Compress, Dsu, FindPolicy, Halving, IndexLink, LinkPolicy, NoCompaction, OneTrySplit,
    RandomLink, RankLink, RankedStore, TwoTrySplit,
};
use proptest::prelude::*;
use sequential_dsu::{NaiveDsu, Partition};

#[derive(Debug, Clone, Copy)]
enum Op {
    Unite(usize, usize),
    SameSet(usize, usize),
}

fn ops_strategy(n: usize, max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0..n, 0..n, prop::bool::ANY).prop_map(
            |(x, y, u)| {
                if u {
                    Op::Unite(x, y)
                } else {
                    Op::SameSet(x, y)
                }
            },
        ),
        0..max_len,
    )
}

fn check_policy<F: FindPolicy, S: concurrent_dsu::DsuStore, L: LinkPolicy>(
    n: usize,
    seed: u64,
    ops: &[Op],
    early: bool,
) {
    let dsu: Dsu<F, S, L> = Dsu::with_seed(n, seed);
    let mut oracle = NaiveDsu::new(n);
    for &op in ops {
        match op {
            Op::Unite(x, y) => {
                let got = if early { dsu.unite_early(x, y) } else { dsu.unite(x, y) };
                assert_eq!(
                    got,
                    oracle.unite(x, y),
                    "unite({x},{y}) diverged ({}/{})",
                    F::NAME,
                    L::NAME
                );
            }
            Op::SameSet(x, y) => {
                let got = if early { dsu.same_set_early(x, y) } else { dsu.same_set(x, y) };
                assert_eq!(
                    got,
                    oracle.same_set(x, y),
                    "same_set({x},{y}) diverged ({}/{})",
                    F::NAME,
                    L::NAME
                );
            }
        }
    }
    assert_eq!(dsu.set_count(), oracle.set_count());
    assert_eq!(Partition::from_labels(&dsu.labels_snapshot()), oracle.partition());
}

/// Every find policy under one link policy, on one store layout.
fn check_find_axis<S: concurrent_dsu::DsuStore, L: LinkPolicy>(
    n: usize,
    seed: u64,
    ops: &[Op],
    early: bool,
) {
    check_policy::<NoCompaction, S, L>(n, seed, ops, early);
    check_policy::<OneTrySplit, S, L>(n, seed, ops, early);
    check_policy::<TwoTrySplit, S, L>(n, seed, ops, early);
    check_policy::<Halving, S, L>(n, seed, ops, early);
    check_policy::<Compress, S, L>(n, seed, ops, early);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every (find × link) pair is oracle-equivalent — 5 finds × 3 links
    /// on the default layout (CI's store/ordering matrix multiplies this
    /// across packed/flat/sharded × default/strict-sc), plus the rank-word
    /// layout where `RankLink`'s mutable keys are actually live.
    #[test]
    fn sequential_equivalence_all_policies(
        ops in ops_strategy(20, 100),
        seed in any::<u64>(),
        early in any::<bool>(),
    ) {
        check_find_axis::<concurrent_dsu::DefaultStore, RandomLink>(20, seed, &ops, early);
        check_find_axis::<concurrent_dsu::DefaultStore, IndexLink>(20, seed, &ops, early);
        check_find_axis::<concurrent_dsu::DefaultStore, RankLink>(20, seed, &ops, early);
        check_find_axis::<RankedStore, RankLink>(20, seed, &ops, early);
        check_find_axis::<RankedStore, RandomLink>(20, seed, &ops, early);
    }

    /// Lemma 3.1 invariants hold after any single-threaded history: ids
    /// strictly increase along parent paths, and compaction only replaces
    /// parents by union-forest ancestors.
    #[test]
    fn lemma_3_1_invariants(ops in ops_strategy(24, 120), seed in any::<u64>()) {
        // RandomLink pinned: the id-order clause of Lemma 3.1 is a
        // statement about random ids, not whatever `DefaultLink` floats to.
        let dsu: Dsu<TwoTrySplit, concurrent_dsu::DefaultStore, RandomLink> =
            Dsu::with_seed(24, seed);
        for &op in &ops {
            match op {
                Op::Unite(x, y) => { dsu.unite(x, y); }
                Op::SameSet(x, y) => { dsu.same_set(x, y); }
            }
        }
        let parents = dsu.parents_snapshot();
        let forest = dsu.union_forest_snapshot();
        for (x, &p) in parents.iter().enumerate() {
            if p != x {
                prop_assert!(dsu.id_of(x) < dsu.id_of(p));
                // The current parent must be an ancestor of x in the union
                // forest (Lemma 3.1's compaction clause).
                let mut u = x;
                let mut found = false;
                for _ in 0..24 {
                    u = forest[u];
                    if u == p { found = true; break; }
                    if forest[u] == u { break; }
                }
                prop_assert!(found, "parent {} of {} is not a union-forest ancestor", p, x);
            }
        }
    }

    /// The growable structure with interleaved make_set matches an oracle
    /// grown in lockstep.
    #[test]
    fn growable_matches_growing_oracle(
        script in prop::collection::vec((0u8..3, any::<u64>()), 1..150),
        seed in any::<u64>(),
    ) {
        let dsu: concurrent_dsu::GrowableDsu = concurrent_dsu::GrowableDsu::with_seed(seed);
        let mut labels: Vec<usize> = Vec::new(); // naive growing oracle
        for (kind, r) in script {
            match kind {
                0 => {
                    let e = dsu.make_set();
                    prop_assert_eq!(e, labels.len());
                    labels.push(e);
                }
                1 if !labels.is_empty() => {
                    let n = labels.len();
                    let x = (r as usize) % n;
                    let y = (r as usize / n.max(1)) % n;
                    let expected = labels[x] != labels[y];
                    if expected {
                        let (from, to) = (labels[x], labels[y]);
                        for l in labels.iter_mut() {
                            if *l == from { *l = to; }
                        }
                    }
                    prop_assert_eq!(dsu.unite(x, y), expected);
                }
                _ if !labels.is_empty() => {
                    let n = labels.len();
                    let x = (r as usize) % n;
                    let y = (r as usize / n.max(1)) % n;
                    prop_assert_eq!(dsu.same_set(x, y), labels[x] == labels[y]);
                }
                _ => {}
            }
        }
    }
}

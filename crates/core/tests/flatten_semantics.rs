//! Flatten-pass semantics: a sweep changes tree *shape*, never any
//! verdict.
//!
//! The flatten pass (`src/flatten.rs`) pointer-jumps elements to their
//! grandparents with the same observed-word CAS discipline as in-path
//! compaction, so its safety argument is Lemma 3.1's: every parent change
//! replaces a parent with a proper union-forest ancestor. What must hold —
//! and is therefore proptested and stress-tested here, on every fixed and
//! growable layout (the CI store/ordering matrix re-runs this suite under
//! `--features strict-sc` and the non-default stores) — is:
//!
//! 1. **Verdict equivalence.** `unite` / `same_set` streams interleaved
//!    with sweeps agree op-for-op with the sequential oracle, and a
//!    sweep racing concurrent unites leaves exactly the partition the
//!    edges imply.
//! 2. **Quiesced depth ≤ 1.** After a sweep with no concurrent writers,
//!    every parent is a root: steady-state finds are O(1).
//! 3. **Chaos.** Both properties survive a `FaultyStore` injecting
//!    spurious CAS failures and delayed loads under the sweep.

use concurrent_dsu::{
    Dsu, DsuStore, FaultPlan, FaultyStore, FlatStore, GrowableDsu, PackedSegmentedStore,
    PackedStore, RankedStore, SegmentedStore, ShardedSegmentedStore, ShardedStore, TestWatchdog,
    TwoTrySplit,
};
use proptest::prelude::*;
use sequential_dsu::{NaiveDsu, Partition};
use std::time::Duration;

/// Max walk length to a root over a quiesced parent snapshot.
fn max_depth(parent: &[usize]) -> usize {
    (0..parent.len())
        .map(|i| {
            let mut u = i;
            let mut d = 0;
            while parent[u] != u {
                u = parent[u];
                d += 1;
                assert!(d <= parent.len(), "cycle through {i}");
            }
            d
        })
        .max()
        .unwrap_or(0)
}

/// One layout's single-threaded run of an op stream with sweeps mixed in,
/// checked op-for-op against the oracle, then swept once more at
/// quiescence and checked for depth ≤ 1.
fn exercise_layout<S: DsuStore>(ops: &[(usize, usize, u8)], n: usize, seed: u64) {
    let dsu: Dsu<TwoTrySplit, S> = Dsu::with_seed(n, seed);
    let mut oracle = NaiveDsu::new(n);
    for (i, &(x, y, kind)) in ops.iter().enumerate() {
        match kind {
            0 => assert_eq!(dsu.unite(x, y), oracle.unite(x, y), "{}: unite @{i}", S::NAME),
            1 => {
                assert_eq!(dsu.same_set(x, y), oracle.same_set(x, y), "{}: same_set @{i}", S::NAME)
            }
            // A sweep between any two operations must be invisible.
            _ => dsu.flatten(),
        }
    }
    dsu.flatten();
    assert!(max_depth(&dsu.parents_snapshot()) <= 1, "{}: quiesced sweep left depth", S::NAME);
    assert_eq!(
        Partition::from_labels(&dsu.labels_snapshot()),
        oracle.partition(),
        "{}: partition diverged",
        S::NAME
    );
}

fn ops_strategy(n: usize, max_len: usize) -> impl Strategy<Value = Vec<(usize, usize, u8)>> {
    prop::collection::vec((0..n, 0..n, 0..3u8), 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sweeps interleaved anywhere in an op stream never change a verdict,
    /// on every fixed-universe layout (ranked included: flatten's CAS goes
    /// through the packed rank+parent word there).
    #[test]
    fn flatten_is_invisible_to_verdicts(ops in ops_strategy(24, 120), seed in any::<u64>()) {
        exercise_layout::<PackedStore>(&ops, 24, seed);
        exercise_layout::<FlatStore>(&ops, 24, seed);
        exercise_layout::<ShardedStore>(&ops, 24, seed);
        exercise_layout::<RankedStore>(&ops, 24, seed);
    }

    /// Same statement for the growable layouts, with make_sets mixed into
    /// the stream so sweeps run against a universe that grows under them.
    #[test]
    fn growable_flatten_is_invisible(ops in ops_strategy(16, 100), seed in any::<u64>()) {
        fn run<S: concurrent_dsu::GrowableStore>(ops: &[(usize, usize, u8)], seed: u64) {
            let dsu: GrowableDsu<TwoTrySplit, S> = GrowableDsu::with_seed(seed);
            let mut oracle = NaiveDsu::new(16);
            for _ in 0..16 {
                dsu.make_set();
            }
            // The stream only touches 0..16; elements made after a sweep
            // stay singletons, so they offset set_count exactly.
            let mut extra = 0usize;
            for &(x, y, kind) in ops {
                match kind {
                    0 => assert_eq!(dsu.unite(x, y), oracle.unite(x, y), "{}", S::NAME),
                    1 => assert_eq!(dsu.same_set(x, y), oracle.same_set(x, y), "{}", S::NAME),
                    _ => {
                        dsu.flatten();
                        // Grow mid-stream: sweeps must keep ignoring
                        // indices beyond their len snapshot.
                        dsu.make_set();
                        extra += 1;
                    }
                }
            }
            assert_eq!(dsu.set_count(), oracle.set_count() + extra, "{}", S::NAME);
        }
        run::<SegmentedStore>(&ops, seed);
        run::<PackedSegmentedStore>(&ops, seed);
        run::<ShardedSegmentedStore>(&ops, seed);
    }
}

/// Concurrent stress: writer threads race per-op unites and queries while
/// a maintenance thread sweeps continuously (alternating sequential and
/// parallel sweeps). The final partition must equal the oracle's, link
/// verdicts must balance exactly, and Lemma 3.1's id ordering must hold on
/// the final parents — a flatten jump writes a *grandparent*, which the
/// lemma says is id-above the parent it replaces.
#[test]
fn flatten_races_unites_on_every_layout() {
    let _wd = TestWatchdog::arm("flatten_races_unites_on_every_layout", Duration::from_secs(120));
    fn run<S: DsuStore>() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = 1 << 10;
        // RandomLink pinned: the id-ordering assert below is about random
        // ids, which the `default-link-index` CI cell would retarget.
        let dsu: Dsu<TwoTrySplit, S, concurrent_dsu::RandomLink> = Dsu::with_seed(n, 9);
        let edges: Vec<(usize, usize)> =
            (0..6 * n).map(|i| ((i * 2654435761) % n, (i * 40503 + 11) % n)).collect();
        let links = AtomicUsize::new(0);
        let chunks: Vec<_> = edges.chunks(edges.len() / 4 + 1).collect();
        let writers = AtomicUsize::new(chunks.len());
        std::thread::scope(|s| {
            for chunk in chunks {
                let dsu = &dsu;
                let links = &links;
                let writers = &writers;
                s.spawn(move || {
                    let mut local = 0;
                    for (i, &(x, y)) in chunk.iter().enumerate() {
                        if i % 3 == 0 {
                            dsu.same_set(x, y);
                        } else {
                            local += dsu.unite(x, y) as usize;
                        }
                    }
                    links.fetch_add(local, Ordering::Relaxed);
                    writers.fetch_sub(1, Ordering::Release);
                });
            }
            {
                let dsu = &dsu;
                let writers = &writers;
                // The sweeper runs until every writer has retired, so
                // sweeps genuinely overlap the whole unite stream.
                s.spawn(move || {
                    let mut sweeps = 0usize;
                    while writers.load(Ordering::Acquire) > 0 {
                        if sweeps.is_multiple_of(2) {
                            dsu.flatten();
                        } else {
                            dsu.flatten_parallel(2);
                        }
                        sweeps += 1;
                    }
                });
            }
        });
        let mut oracle = NaiveDsu::new(n);
        for &(x, y) in &edges {
            oracle.unite(x, y);
        }
        assert_eq!(Partition::from_labels(&dsu.labels_snapshot()), oracle.partition());
        assert_eq!(dsu.set_count(), oracle.set_count());
        assert_eq!(links.load(Ordering::Relaxed), n - oracle.set_count());
        // Lemma 3.1 survives grandparent jumps.
        let parents = dsu.parents_snapshot();
        for (x, &p) in parents.iter().enumerate() {
            if p != x {
                assert!(dsu.id_of(x) < dsu.id_of(p), "id inversion {x} -> {p}");
            }
        }
        // And a final quiesced sweep reaches the O(1)-find state.
        dsu.flatten();
        assert!(max_depth(&dsu.parents_snapshot()) <= 1, "{}", S::NAME);
    }
    run::<PackedStore>();
    run::<FlatStore>();
    run::<ShardedStore>();
    run::<RankedStore>();
}

/// The growable counterpart: sweeps race unites *and* make_sets, so the
/// sweep's len snapshot is perpetually stale. Everything it skips is a
/// not-yet-linked singleton, so no verdict can change.
#[test]
fn flatten_races_growth() {
    let _wd = TestWatchdog::arm("flatten_races_growth", Duration::from_secs(120));
    let dsu: GrowableDsu = GrowableDsu::new();
    let base = 1 << 9;
    for _ in 0..base {
        dsu.make_set();
    }
    std::thread::scope(|s| {
        {
            let dsu = &dsu;
            s.spawn(move || {
                for i in 0..base - 1 {
                    dsu.unite(i, i + 1);
                    if i % 64 == 0 {
                        dsu.make_set();
                    }
                }
            });
        }
        {
            let dsu = &dsu;
            s.spawn(move || {
                for _ in 0..32 {
                    dsu.flatten();
                    dsu.flatten_parallel(2);
                }
            });
        }
    });
    assert!(dsu.same_set(0, base - 1));
    dsu.flatten();
    let fresh = dsu.make_set();
    assert!(!dsu.same_set(0, fresh), "a post-sweep make_set must be a singleton");
}

/// Chaos cell: the race above on a `FaultyStore` injecting spurious CAS
/// failures, delayed loads, and stalls into every path — sweeps included.
/// A spurious failure at a flatten CAS just re-runs the jump; nothing may
/// change verdicts or the final partition.
#[test]
fn flatten_races_unites_under_faults() {
    let _wd = TestWatchdog::arm("flatten_races_unites_under_faults", Duration::from_secs(120));
    use std::sync::atomic::{AtomicUsize, Ordering};
    let n = 1 << 9;
    let dsu: Dsu<TwoTrySplit, FaultyStore<PackedStore>> = Dsu::from_store(FaultyStore::with_plan(
        PackedStore::with_seed(n, 0xF1A7),
        FaultPlan::rate(0xF1A7, 0.05),
    ));
    let edges: Vec<(usize, usize)> =
        (0..4 * n).map(|i| ((i * 7919) % n, (i * 104729 + 5) % n)).collect();
    let chunks: Vec<_> = edges.chunks(edges.len() / 3 + 1).collect();
    let writers = AtomicUsize::new(chunks.len());
    std::thread::scope(|s| {
        for chunk in chunks {
            let dsu = &dsu;
            let writers = &writers;
            s.spawn(move || {
                for &(x, y) in chunk {
                    dsu.unite(x, y);
                }
                writers.fetch_sub(1, Ordering::Release);
            });
        }
        {
            let dsu = &dsu;
            let writers = &writers;
            s.spawn(move || {
                while writers.load(Ordering::Acquire) > 0 {
                    dsu.flatten();
                }
            });
        }
    });
    let mut oracle = NaiveDsu::new(n);
    for &(x, y) in &edges {
        oracle.unite(x, y);
    }
    assert_eq!(Partition::from_labels(&dsu.labels_snapshot()), oracle.partition());
    assert_eq!(dsu.set_count(), oracle.set_count());
    assert!(dsu.store().fault_report().total() > 0, "chaos cell must actually inject");
    dsu.flatten();
    assert!(max_depth(&dsu.parents_snapshot()) <= 1);
}

//! Batch-ingestion semantics: `unite_batch` is observationally identical to
//! a one-at-a-time `unite` loop.
//!
//! The batch path (`src/bulk.rs`) reorders work internally — gather waves,
//! a filter step, seeded link CASes, a retry fallback — but almost none of
//! that may be visible: single-threaded, the per-edge verdicts, the link
//! count, the set count, and the final partition must match the per-op
//! execution edge for edge, on both parent-store layouts. (The one
//! permitted difference is the union forest's shape — see the note inside
//! `batch_matches_sequential_unite`.) These tests run under the default
//! per-access orderings and under `--features strict-sc` (CI runs both),
//! the same dual configuration the packed-vs-flat cross-checks use.

use concurrent_dsu::{Dsu, FlatStore, GrowableDsu, PackedStore, ShardedStore, TwoTrySplit};
use proptest::prelude::*;
use sequential_dsu::{NaiveDsu, Partition};

fn edges_strategy(n: usize, max_len: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0..n, 0..n), 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For arbitrary edge lists, batched ingestion produces the same
    /// per-edge verdicts and the same partition as sequential per-op
    /// `unite`, on all three layouts (packed, flat, sharded).
    #[test]
    fn batch_matches_sequential_unite(edges in edges_strategy(24, 200), seed in any::<u64>()) {
        let n = 24;
        let packed_batch: Dsu<TwoTrySplit, PackedStore> = Dsu::with_seed(n, seed);
        let flat_batch: Dsu<TwoTrySplit, FlatStore> = Dsu::with_seed(n, seed);
        let sharded_batch: Dsu<TwoTrySplit, ShardedStore> = Dsu::with_seed(n, seed);
        let per_op: Dsu<TwoTrySplit, PackedStore> = Dsu::with_seed(n, seed);
        let mut oracle = NaiveDsu::new(n);

        let packed_results = packed_batch.unite_batch_results(&edges);
        let flat_results = flat_batch.unite_batch_results(&edges);
        let sharded_results = sharded_batch.unite_batch_results(&edges);
        let expected: Vec<bool> = edges.iter().map(|&(x, y)| per_op.unite(x, y)).collect();
        let oracle_results: Vec<bool> = edges.iter().map(|&(x, y)| oracle.unite(x, y)).collect();

        prop_assert_eq!(&packed_results, &expected, "packed batch diverged from per-op");
        prop_assert_eq!(&flat_results, &expected, "flat batch diverged from per-op");
        prop_assert_eq!(&sharded_results, &expected, "sharded batch diverged from per-op");
        prop_assert_eq!(&expected, &oracle_results, "per-op diverged from the naive oracle");

        prop_assert_eq!(packed_batch.set_count(), oracle.set_count());
        prop_assert_eq!(flat_batch.set_count(), oracle.set_count());
        prop_assert_eq!(sharded_batch.set_count(), oracle.set_count());
        prop_assert_eq!(
            Partition::from_labels(&packed_batch.labels_snapshot()),
            oracle.partition()
        );
        prop_assert_eq!(
            Partition::from_labels(&flat_batch.labels_snapshot()),
            oracle.partition()
        );
        prop_assert_eq!(
            Partition::from_labels(&sharded_batch.labels_snapshot()),
            oracle.partition()
        );
        // Identical ids and the same deterministic batch schedule imply
        // identical union forests across *layouts*. (The forest may differ
        // from the per-op run's: a batch link may attach a root under a
        // node an earlier link of the same wave already demoted — paper
        // Algorithm 7's "link under any larger-id node" case — which
        // changes the forest shape but never the partition.)
        prop_assert_eq!(packed_batch.union_forest_snapshot(), flat_batch.union_forest_snapshot());
        prop_assert_eq!(
            packed_batch.union_forest_snapshot(),
            sharded_batch.union_forest_snapshot()
        );
        // Ids still strictly increase along every batch-built parent path.
        let parents = packed_batch.parents_snapshot();
        for (x, &p) in parents.iter().enumerate() {
            if p != x {
                prop_assert!(packed_batch.id_of(x) < packed_batch.id_of(p));
            }
        }
    }

    /// The link count returned by `unite_batch` equals the number of `true`
    /// verdicts, however the edges are split into sub-batches.
    #[test]
    fn batch_splitting_is_invisible(edges in edges_strategy(16, 120), split in 1..40usize) {
        let n = 16;
        let whole: Dsu<TwoTrySplit, PackedStore> = Dsu::with_seed(n, 7);
        let split_dsu: Dsu<TwoTrySplit, PackedStore> = Dsu::with_seed(n, 7);
        let whole_links = whole.unite_batch(&edges);
        let mut split_links = 0;
        for chunk in edges.chunks(split) {
            split_links += split_dsu.unite_batch(chunk);
        }
        prop_assert_eq!(whole_links, split_links);
        prop_assert_eq!(whole.set_count(), split_dsu.set_count());
        prop_assert_eq!(
            Partition::from_labels(&whole.labels_snapshot()),
            Partition::from_labels(&split_dsu.labels_snapshot())
        );
    }

    /// The growable structure's batch path agrees with its per-op path on
    /// both segmented layouts.
    #[test]
    fn growable_batch_matches_per_op(edges in edges_strategy(16, 100), seed in any::<u64>()) {
        let batched: GrowableDsu = GrowableDsu::with_seed(seed);
        let per_op: GrowableDsu = GrowableDsu::with_seed(seed);
        for _ in 0..16 {
            batched.make_set();
            per_op.make_set();
        }
        let results = batched.unite_batch_results(&edges);
        let expected: Vec<bool> = edges.iter().map(|&(x, y)| per_op.unite(x, y)).collect();
        prop_assert_eq!(results, expected);
        prop_assert_eq!(batched.set_count(), per_op.set_count());
    }
}

/// Concurrent batch ingestion: threads race `unite_batch` calls over
/// shuffled sub-batches; the final partition must equal the connected
/// components of the whole edge set (set union is confluent), on both
/// layouts, and the returned link counts must sum to the total number of
/// links performed.
#[test]
fn concurrent_batches_match_components_oracle() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let n = 1 << 11;
    let edges: Vec<(usize, usize)> =
        (0..4 * n).map(|i| ((i * 2654435761) % n, (i * 40503 + 11) % n)).collect();
    let packed: Dsu<TwoTrySplit, PackedStore> = Dsu::with_seed(n, 3);
    let flat: Dsu<TwoTrySplit, FlatStore> = Dsu::with_seed(n, 3);
    let links = AtomicUsize::new(0);
    for run in 0..2 {
        std::thread::scope(|s| {
            for chunk in edges.chunks(edges.len() / 8 + 1) {
                let packed = &packed;
                let flat = &flat;
                let links = &links;
                s.spawn(move || {
                    let l =
                        if run == 0 { packed.unite_batch(chunk) } else { flat.unite_batch(chunk) };
                    links.fetch_add(l, Ordering::Relaxed);
                });
            }
        });
    }
    let mut oracle = NaiveDsu::new(n);
    for &(x, y) in &edges {
        oracle.unite(x, y);
    }
    assert_eq!(Partition::from_labels(&packed.labels_snapshot()), oracle.partition());
    assert_eq!(Partition::from_labels(&flat.labels_snapshot()), oracle.partition());
    assert_eq!(packed.set_count(), oracle.set_count());
    assert_eq!(flat.set_count(), oracle.set_count());
    // Each layout's run performed exactly n - set_count links in total.
    assert_eq!(links.load(Ordering::Relaxed), 2 * (n - oracle.set_count()));
    // Lemma 3.1 survives the batch path's seeded CASes.
    let parents = packed.parents_snapshot();
    for (x, &p) in parents.iter().enumerate() {
        if p != x {
            assert!(packed.id_of(x) < packed.id_of(p));
        }
    }
}

/// Mixed ingestion: per-op and batched calls racing on the same structure
/// still yield the oracle partition.
#[test]
fn mixed_per_op_and_batched_ingestion() {
    let n = 1 << 10;
    let edges: Vec<(usize, usize)> =
        (0..3 * n).map(|i| ((i * 7919) % n, (i * 104729 + 5) % n)).collect();
    let dsu: Dsu<TwoTrySplit, PackedStore> = Dsu::new(n);
    std::thread::scope(|s| {
        for (t, chunk) in edges.chunks(edges.len() / 6 + 1).enumerate() {
            let dsu = &dsu;
            s.spawn(move || {
                if t % 2 == 0 {
                    dsu.unite_batch(chunk);
                } else {
                    for &(x, y) in chunk {
                        dsu.unite(x, y);
                    }
                }
            });
        }
    });
    let mut oracle = NaiveDsu::new(n);
    for &(x, y) in &edges {
        oracle.unite(x, y);
    }
    assert_eq!(Partition::from_labels(&dsu.labels_snapshot()), oracle.partition());
    assert_eq!(dsu.set_count(), oracle.set_count());
}

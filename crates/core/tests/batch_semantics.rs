//! Batch-ingestion semantics: `unite_batch` is observationally identical to
//! a one-at-a-time `unite` loop.
//!
//! The batch path (`src/bulk.rs`) reorders work internally — gather waves,
//! a filter step, seeded link CASes, a retry fallback — but almost none of
//! that may be visible: single-threaded, the per-edge verdicts, the link
//! count, the set count, and the final partition must match the per-op
//! execution edge for edge, on both parent-store layouts. (The one
//! permitted difference is the union forest's shape — see the note inside
//! `batch_matches_sequential_unite`.) These tests run under the default
//! per-access orderings and under `--features strict-sc` (CI runs both),
//! the same dual configuration the packed-vs-flat cross-checks use.

use concurrent_dsu::{
    BatchPlan, DefaultLink, Dsu, DsuStore, FlatStore, GrowableDsu, PackedStore, PlanTuning,
    RandomLink, ShardedStore, TwoTrySplit,
};
use proptest::prelude::*;
use sequential_dsu::{NaiveDsu, Partition};

fn edges_strategy(n: usize, max_len: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0..n, 0..n), 0..max_len)
}

/// The planned path's verdict oracle: per-op `unite` over the plan's
/// deterministic execution order (buckets ascending, then spill), with
/// every dropped duplicate reporting `false` — the contract stated in
/// `concurrent_dsu::ingest`. Returns per-edge verdicts indexed as in the
/// original slice.
fn plan_order_oracle<S: DsuStore>(
    per_op: &Dsu<TwoTrySplit, S>,
    edges: &[(usize, usize)],
    tuning: PlanTuning,
) -> Vec<bool> {
    let plan = BatchPlan::build(edges, tuning);
    let mut expected = vec![false; edges.len()];
    for (orig, (x, y)) in plan.execution_order() {
        expected[orig] = per_op.unite(x, y);
    }
    for &i in plan.dropped() {
        expected[i] = false;
    }
    expected
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For arbitrary edge lists, batched ingestion produces the same
    /// per-edge verdicts and the same partition as sequential per-op
    /// `unite`, on all three layouts (packed, flat, sharded).
    #[test]
    fn batch_matches_sequential_unite(edges in edges_strategy(24, 200), seed in any::<u64>()) {
        let n = 24;
        // RandomLink pinned throughout (reference and batch sides alike):
        // the id asserts at the bottom are about *random ids*, which the
        // `default-link-index` CI cell would otherwise retarget.
        let packed_batch: Dsu<TwoTrySplit, PackedStore, RandomLink> = Dsu::with_seed(n, seed);
        let flat_batch: Dsu<TwoTrySplit, FlatStore, RandomLink> = Dsu::with_seed(n, seed);
        let sharded_batch: Dsu<TwoTrySplit, ShardedStore, RandomLink> = Dsu::with_seed(n, seed);
        let per_op: Dsu<TwoTrySplit, PackedStore, RandomLink> = Dsu::with_seed(n, seed);
        let mut oracle = NaiveDsu::new(n);

        let packed_results = packed_batch.unite_batch_results(&edges);
        let flat_results = flat_batch.unite_batch_results(&edges);
        let sharded_results = sharded_batch.unite_batch_results(&edges);
        let expected: Vec<bool> = edges.iter().map(|&(x, y)| per_op.unite(x, y)).collect();
        let oracle_results: Vec<bool> = edges.iter().map(|&(x, y)| oracle.unite(x, y)).collect();

        prop_assert_eq!(&packed_results, &expected, "packed batch diverged from per-op");
        prop_assert_eq!(&flat_results, &expected, "flat batch diverged from per-op");
        prop_assert_eq!(&sharded_results, &expected, "sharded batch diverged from per-op");
        prop_assert_eq!(&expected, &oracle_results, "per-op diverged from the naive oracle");

        prop_assert_eq!(packed_batch.set_count(), oracle.set_count());
        prop_assert_eq!(flat_batch.set_count(), oracle.set_count());
        prop_assert_eq!(sharded_batch.set_count(), oracle.set_count());
        prop_assert_eq!(
            Partition::from_labels(&packed_batch.labels_snapshot()),
            oracle.partition()
        );
        prop_assert_eq!(
            Partition::from_labels(&flat_batch.labels_snapshot()),
            oracle.partition()
        );
        prop_assert_eq!(
            Partition::from_labels(&sharded_batch.labels_snapshot()),
            oracle.partition()
        );
        // Identical ids and the same deterministic batch schedule imply
        // identical union forests across *layouts*. (The forest may differ
        // from the per-op run's: a batch link may attach a root under a
        // node an earlier link of the same wave already demoted — paper
        // Algorithm 7's "link under any larger-id node" case — which
        // changes the forest shape but never the partition.)
        prop_assert_eq!(packed_batch.union_forest_snapshot(), flat_batch.union_forest_snapshot());
        prop_assert_eq!(
            packed_batch.union_forest_snapshot(),
            sharded_batch.union_forest_snapshot()
        );
        // Ids still strictly increase along every batch-built parent path.
        let parents = packed_batch.parents_snapshot();
        for (x, &p) in parents.iter().enumerate() {
            if p != x {
                prop_assert!(packed_batch.id_of(x) < packed_batch.id_of(p));
            }
        }
    }

    /// The link count returned by `unite_batch` equals the number of `true`
    /// verdicts, however the edges are split into sub-batches.
    #[test]
    fn batch_splitting_is_invisible(edges in edges_strategy(16, 120), split in 1..40usize) {
        let n = 16;
        let whole: Dsu<TwoTrySplit, PackedStore> = Dsu::with_seed(n, 7);
        let split_dsu: Dsu<TwoTrySplit, PackedStore> = Dsu::with_seed(n, 7);
        let whole_links = whole.unite_batch(&edges);
        let mut split_links = 0;
        for chunk in edges.chunks(split) {
            split_links += split_dsu.unite_batch(chunk);
        }
        prop_assert_eq!(whole_links, split_links);
        prop_assert_eq!(whole.set_count(), split_dsu.set_count());
        prop_assert_eq!(
            Partition::from_labels(&whole.labels_snapshot()),
            Partition::from_labels(&split_dsu.labels_snapshot())
        );
    }

    /// Planned batch ingestion, for arbitrary edge lists: per-edge
    /// verdicts bit-identical to per-op `unite` over the plan's
    /// deterministic execution order on all three layouts (CI runs this
    /// file under `strict-sc` too), and the order-invariant quantities —
    /// final partition, set count, link count — identical to the
    /// *original-order* naive oracle.
    #[test]
    fn planned_batch_matches_per_op_over_plan_order(
        edges in edges_strategy(24, 200),
        seed in any::<u64>(),
        bucket_bits in 0u32..6,
    ) {
        let n = 24;
        // Small explicit buckets so tiny universes still exercise
        // multi-bucket plans and the spillover pass.
        let tuning = PlanTuning::new().bucket_elems_log2(bucket_bits);
        let batch_tuning =
            concurrent_dsu::BatchTuning::new().planned(tuning);

        let oracle_dsu: Dsu<TwoTrySplit, PackedStore> = Dsu::with_seed(n, seed);
        let expected = plan_order_oracle(&oracle_dsu, &edges, tuning);
        let mut naive = NaiveDsu::new(n);
        for &(x, y) in &edges {
            naive.unite(x, y);
        }

        macro_rules! check_layout {
            ($store:ty, $label:literal) => {{
                use concurrent_dsu::find::FindPolicy;
                let store = <$store as DsuStore>::with_seed(n, seed);
                let mut results = vec![false; edges.len()];
                let links = concurrent_dsu::bulk::unite_batch_sink_tuned::<DefaultLink, _, _>(
                    &store,
                    &edges,
                    batch_tuning,
                    None,
                    &mut (),
                    |_, _| {},
                    |i, linked| results[i] = linked,
                );
                prop_assert_eq!(&results, &expected, concat!($label, " planned verdicts"));
                prop_assert_eq!(
                    links,
                    expected.iter().filter(|&&b| b).count(),
                    concat!($label, " link count")
                );
                let mut labels: Vec<usize> =
                    (0..n).map(|i| TwoTrySplit::find(&store, i, &mut ()).0).collect();
                for i in 0..n {
                    labels[i] = labels[labels[i]];
                }
                prop_assert_eq!(
                    Partition::from_labels(&labels),
                    naive.partition(),
                    concat!($label, " partition")
                );
            }};
        }
        check_layout!(PackedStore, "packed");
        check_layout!(FlatStore, "flat");
        check_layout!(ShardedStore, "sharded");

        // The verdict-reporting planned surface agrees with the oracle
        // bit for bit (default tuning this time — the public entry point).
        let dsu: Dsu<TwoTrySplit, PackedStore> = Dsu::with_seed(n, seed);
        let planned_results = dsu.unite_batch_planned_results(&edges);
        let oracle2: Dsu<TwoTrySplit, PackedStore> = Dsu::with_seed(n, seed);
        let expected_default = plan_order_oracle(&oracle2, &edges, PlanTuning::new());
        prop_assert_eq!(&planned_results, &expected_default, "default-tuning planned results");
        prop_assert_eq!(
            Partition::from_labels(&dsu.labels_snapshot()),
            naive.partition(),
            "default-tuning partition"
        );
    }

    /// The growable structure's batch path agrees with its per-op path on
    /// both segmented layouts.
    #[test]
    fn growable_batch_matches_per_op(edges in edges_strategy(16, 100), seed in any::<u64>()) {
        let batched: GrowableDsu = GrowableDsu::with_seed(seed);
        let per_op: GrowableDsu = GrowableDsu::with_seed(seed);
        for _ in 0..16 {
            batched.make_set();
            per_op.make_set();
        }
        let results = batched.unite_batch_results(&edges);
        let expected: Vec<bool> = edges.iter().map(|&(x, y)| per_op.unite(x, y)).collect();
        prop_assert_eq!(results, expected);
        prop_assert_eq!(batched.set_count(), per_op.set_count());
    }
}

/// Concurrent batch ingestion: threads race `unite_batch` calls over
/// shuffled sub-batches; the final partition must equal the connected
/// components of the whole edge set (set union is confluent), on both
/// layouts, and the returned link counts must sum to the total number of
/// links performed.
#[test]
fn concurrent_batches_match_components_oracle() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let _wd = concurrent_dsu::TestWatchdog::arm(
        "concurrent_batches_match_components_oracle",
        std::time::Duration::from_secs(120),
    );
    let n = 1 << 11;
    let edges: Vec<(usize, usize)> =
        (0..4 * n).map(|i| ((i * 2654435761) % n, (i * 40503 + 11) % n)).collect();
    // RandomLink pinned: the Lemma 3.1 id assert below must not float with
    // the `default-link-index` feature.
    let packed: Dsu<TwoTrySplit, PackedStore, RandomLink> = Dsu::with_seed(n, 3);
    let flat: Dsu<TwoTrySplit, FlatStore, RandomLink> = Dsu::with_seed(n, 3);
    let links = AtomicUsize::new(0);
    for run in 0..2 {
        std::thread::scope(|s| {
            for chunk in edges.chunks(edges.len() / 8 + 1) {
                let packed = &packed;
                let flat = &flat;
                let links = &links;
                s.spawn(move || {
                    let l =
                        if run == 0 { packed.unite_batch(chunk) } else { flat.unite_batch(chunk) };
                    links.fetch_add(l, Ordering::Relaxed);
                });
            }
        });
    }
    let mut oracle = NaiveDsu::new(n);
    for &(x, y) in &edges {
        oracle.unite(x, y);
    }
    assert_eq!(Partition::from_labels(&packed.labels_snapshot()), oracle.partition());
    assert_eq!(Partition::from_labels(&flat.labels_snapshot()), oracle.partition());
    assert_eq!(packed.set_count(), oracle.set_count());
    assert_eq!(flat.set_count(), oracle.set_count());
    // Each layout's run performed exactly n - set_count links in total.
    assert_eq!(links.load(Ordering::Relaxed), 2 * (n - oracle.set_count()));
    // Lemma 3.1 survives the batch path's seeded CASes.
    let parents = packed.parents_snapshot();
    for (x, &p) in parents.iter().enumerate() {
        if p != x {
            assert!(packed.id_of(x) < packed.id_of(p));
        }
    }
}

/// Planned ingestion degenerate shapes: the empty batch, the all-duplicate
/// batch, the single-bucket plan (which must reproduce the unplanned
/// execution verbatim), and the all-spill plan (width-zero buckets:
/// every distinct pair crosses, so the spill pass *is* the batch, in
/// original order).
#[test]
fn planned_degenerate_shapes() {
    let n = 64;
    let seed = 0xD15C;

    // Empty batch: no links, no counters, no panic.
    let dsu: Dsu<TwoTrySplit, PackedStore> = Dsu::with_seed(n, seed);
    let mut stats = concurrent_dsu::OpStats::default();
    assert_eq!(dsu.unite_batch_planned_with(&[], &mut stats), 0);
    assert_eq!(
        (stats.ops, stats.dup_edges_dropped, stats.bucket_count, stats.spill_edges),
        (0, 0, 0, 0)
    );

    // All-dup batch: one link at most, every later copy reports false.
    let dsu: Dsu<TwoTrySplit, PackedStore> = Dsu::with_seed(n, seed);
    let mut stats = concurrent_dsu::OpStats::default();
    let dups = [(3, 9); 10];
    assert_eq!(dsu.unite_batch_planned_with(&dups, &mut stats), 1);
    assert_eq!(stats.dup_edges_dropped, 9);
    assert_eq!(stats.ops, 10);
    let results_dsu: Dsu<TwoTrySplit, PackedStore> = Dsu::with_seed(n, seed);
    let results = results_dsu.unite_batch_planned_results(&dups);
    assert!(results[0]);
    assert!(results[1..].iter().all(|&b| !b), "{results:?}");

    let edges: Vec<(usize, usize)> =
        (0..300).map(|i| ((i * 7919) % n, (i * 104729 + 5) % n)).collect();
    let unplanned: Dsu<TwoTrySplit, PackedStore> = Dsu::with_seed(n, seed);
    let unplanned_results = unplanned.unite_batch_results(&edges);

    // Single bucket (width covers the universe), dedup off: the plan is
    // the identity, so verdicts match the unplanned original-order run
    // bit for bit.
    let one_bucket: Dsu<TwoTrySplit, PackedStore> = Dsu::with_seed(n, seed);
    let tuning = concurrent_dsu::BatchTuning::new()
        .planned(PlanTuning::new().bucket_elems_log2(32).dedup(false));
    let mut results = vec![false; edges.len()];
    one_bucket.unite_batch_tuned_with(&edges, tuning, None, &mut ());
    concurrent_dsu::bulk::unite_batch_sink_tuned::<DefaultLink, _, _>(
        &PackedStore::with_seed(n, seed),
        &edges,
        tuning,
        None,
        &mut (),
        |_, _| {},
        |i, linked| results[i] = linked,
    );
    assert_eq!(results, unplanned_results, "one-bucket plan must be the identity");
    assert_eq!(one_bucket.labels_snapshot(), unplanned.labels_snapshot());

    // All-spill (width 0, dedup off): every distinct pair crosses buckets,
    // the spill segment preserves original order — again identical to the
    // unplanned run.
    let tuning = concurrent_dsu::BatchTuning::new()
        .planned(PlanTuning::new().bucket_elems_log2(0).dedup(false));
    let mut results = vec![false; edges.len()];
    let mut stats = concurrent_dsu::OpStats::default();
    concurrent_dsu::bulk::unite_batch_sink_tuned::<DefaultLink, _, _>(
        &PackedStore::with_seed(n, seed),
        &edges,
        tuning,
        None,
        &mut stats,
        |_, _| {},
        |i, linked| results[i] = linked,
    );
    assert_eq!(results, unplanned_results, "all-spill plan must preserve arrival order");
    assert!(stats.spill_edges > 0);
}

/// Concurrent planned ingestion: racing planned batches still produce the
/// components-oracle partition (plans are per-call and thread-private;
/// the store sees only ordinary filter/link traffic).
#[test]
fn concurrent_planned_batches_match_components_oracle() {
    let _wd = concurrent_dsu::TestWatchdog::arm(
        "concurrent_planned_batches_match_components_oracle",
        std::time::Duration::from_secs(120),
    );
    let n = 1 << 10;
    let edges: Vec<(usize, usize)> =
        (0..4 * n).map(|i| ((i * 2654435761) % n, (i * 40503 + 11) % n)).collect();
    // RandomLink pinned for the id assert at the bottom.
    let dsu: Dsu<TwoTrySplit, PackedStore, RandomLink> = Dsu::with_seed(n, 5);
    std::thread::scope(|s| {
        for chunk in edges.chunks(edges.len() / 8 + 1) {
            let dsu = &dsu;
            s.spawn(move || dsu.unite_batch_planned(chunk));
        }
    });
    let mut oracle = NaiveDsu::new(n);
    for &(x, y) in &edges {
        oracle.unite(x, y);
    }
    assert_eq!(Partition::from_labels(&dsu.labels_snapshot()), oracle.partition());
    assert_eq!(dsu.set_count(), oracle.set_count());
    // Lemma 3.1 survives the planned path's seeded CASes.
    let parents = dsu.parents_snapshot();
    for (x, &p) in parents.iter().enumerate() {
        if p != x {
            assert!(dsu.id_of(x) < dsu.id_of(p));
        }
    }
}

/// Mixed ingestion: per-op and batched calls racing on the same structure
/// still yield the oracle partition.
#[test]
fn mixed_per_op_and_batched_ingestion() {
    let _wd = concurrent_dsu::TestWatchdog::arm(
        "mixed_per_op_and_batched_ingestion",
        std::time::Duration::from_secs(120),
    );
    let n = 1 << 10;
    let edges: Vec<(usize, usize)> =
        (0..3 * n).map(|i| ((i * 7919) % n, (i * 104729 + 5) % n)).collect();
    let dsu: Dsu<TwoTrySplit, PackedStore> = Dsu::new(n);
    std::thread::scope(|s| {
        for (t, chunk) in edges.chunks(edges.len() / 6 + 1).enumerate() {
            let dsu = &dsu;
            s.spawn(move || {
                if t % 2 == 0 {
                    dsu.unite_batch(chunk);
                } else {
                    for &(x, y) in chunk {
                        dsu.unite(x, y);
                    }
                }
            });
        }
    });
    let mut oracle = NaiveDsu::new(n);
    for &(x, y) in &edges {
        oracle.unite(x, y);
    }
    assert_eq!(Partition::from_labels(&dsu.labels_snapshot()), oracle.partition());
    assert_eq!(dsu.set_count(), oracle.set_count());
}

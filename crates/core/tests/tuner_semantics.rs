//! Tuned dispatch semantics: a [`TunedDsu`] is observationally a
//! union-find *across* its mid-stream variant switch.
//!
//! The switch protocol (sample on the default variant while buffering
//! unite edges, then rebuild + replay + swap under the write lock) is
//! only correct if no edge is lost, no verdict double-reports a link, and
//! the partition after the swap equals the partition the sampled
//! structure had — under full concurrency, with threads racing the
//! decision point. These tests pin exactly that, against the sequential
//! oracle, with a watchdog so a deadlocked lock protocol fails loudly
//! instead of eating the CI time limit.

use concurrent_dsu::tune::{DecisionTable, Rule, DEFAULT_VARIANT};
use concurrent_dsu::{ConcurrentUnionFind, OpStats, TestWatchdog, TunedDsu, TunerMode, Variant};
use sequential_dsu::{NaiveDsu, Partition};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// A table whose cache-resident rows pick a non-default variant, so a
/// small-universe test reliably drives the rebuild + replay + swap path.
fn switching_table(to: Variant) -> DecisionTable {
    DecisionTable {
        rules: DecisionTable::builtin().rules.map(|r| Rule { variant: to, ..r }),
        ..DecisionTable::builtin()
    }
}

/// Threads hammer unites and queries while the sample budget runs out
/// under their feet: some operations land before the switch (sampled and
/// buffered), some block on the write lock *during* it, some land after.
/// Confluence of set union gives the exact post-condition: the final
/// partition is the connected components of all edges, every link is
/// reported exactly once, and the tuner switched exactly once.
#[test]
fn concurrent_stress_through_switch_point() {
    let progress = std::sync::Arc::new(AtomicUsize::new(0));
    let _wd = TestWatchdog::arm_with(
        "concurrent_stress_through_switch_point",
        Duration::from_secs(120),
        {
            let progress = std::sync::Arc::clone(&progress);
            move || format!("ops completed before hang: {}", progress.load(Ordering::Relaxed))
        },
    );
    let n = 1 << 11;
    let threads = 8;
    let edges: Vec<(usize, usize)> =
        (0..4 * n).map(|i| ((i * 2654435761) % n, (i * 40503 + 7) % n)).collect();
    for to in ["halving/index", "compress/rank", "no-compaction/random"] {
        let to = Variant::parse(to).unwrap();
        // Budget far below the edge count: the switch happens while every
        // thread is mid-stream.
        let dsu = TunedDsu::with_config(n, 11, TunerMode::Auto, 512, switching_table(to));
        let links = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..threads {
                let dsu = &dsu;
                let links = &links;
                let edges = &edges;
                let progress = &progress;
                s.spawn(move || {
                    let mut local = 0;
                    for (i, &(x, y)) in edges.iter().enumerate() {
                        if i % threads != t {
                            continue;
                        }
                        progress.fetch_add(1, Ordering::Relaxed);
                        // Mix queries in so reads race the swap too.
                        if i % 5 == 0 {
                            dsu.same_set(y, x);
                        }
                        local += dsu.unite(x, y) as usize;
                    }
                    links.fetch_add(local, Ordering::Relaxed);
                });
            }
        });
        let mut oracle = NaiveDsu::new(n);
        for &(x, y) in &edges {
            oracle.unite(x, y);
        }
        assert_eq!(
            Partition::from_labels(&dsu.labels_snapshot()),
            oracle.partition(),
            "partition diverged switching to {to}"
        );
        assert_eq!(dsu.set_count(), oracle.set_count());
        // Exactly one `true` per performed link, across the switch.
        assert_eq!(links.load(Ordering::Relaxed), n - oracle.set_count());
        assert_eq!(dsu.chosen_variant(), to);
        assert_eq!(dsu.tuner_switches(), 1, "exactly one switch to {to}");
        assert!(dsu.tuner_samples() >= 512, "the whole budget was sampled");
        assert!(dsu.committed());
    }
}

/// Batch ingestion through the trait object path crosses the switch point
/// with the same exactness guarantees (the graph pipelines drive tuned
/// structures through `ConcurrentUnionFind`).
#[test]
fn batched_trait_ingestion_through_switch_point() {
    let _wd =
        TestWatchdog::arm("batched_trait_ingestion_through_switch_point", Duration::from_secs(120));
    let n = 1 << 10;
    let edges: Vec<(usize, usize)> =
        (0..4 * n).map(|i| ((i * 7919) % n, (i * 104729 + 5) % n)).collect();
    let to = Variant::parse("halving/index").unwrap();
    let dsu = TunedDsu::with_config(n, 3, TunerMode::Auto, 300, switching_table(to));
    let handle: &dyn ConcurrentUnionFind = &dsu;
    let links = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for chunk in edges.chunks(edges.len() / 4 + 1) {
            let links = &links;
            s.spawn(move || {
                let mut local = 0;
                for burst in chunk.chunks(128) {
                    local += handle.unite_batch(burst);
                }
                links.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    let mut oracle = NaiveDsu::new(n);
    for &(x, y) in &edges {
        oracle.unite(x, y);
    }
    assert_eq!(Partition::from_labels(&dsu.labels_snapshot()), oracle.partition());
    assert_eq!(links.load(Ordering::Relaxed), n - oracle.set_count());
    assert_eq!(dsu.chosen_variant(), to);
    assert_eq!(dsu.tuner_switches(), 1);
}

/// Sampling accounting is exact in the single-threaded case: every
/// pre-decision op is a sample, no post-decision op is, and the stats
/// export matches the accessors.
#[test]
fn sample_accounting_is_exact() {
    let dsu = TunedDsu::with_config(
        64,
        1,
        TunerMode::Auto,
        50,
        switching_table(Variant::parse("one-try/index").unwrap()),
    );
    for i in 0..200usize {
        dsu.unite(i % 64, (i * 7 + 1) % 64);
    }
    assert_eq!(dsu.tuner_samples(), 50);
    let mut stats = OpStats::default();
    dsu.report_into(&mut stats);
    assert_eq!(stats.tuner_samples, 50);
    assert_eq!(stats.tuner_switches, 1);
    assert_ne!(dsu.chosen_variant(), DEFAULT_VARIANT);
}

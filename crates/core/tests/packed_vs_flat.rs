//! Layout cross-checks: `Dsu<_, PackedStore>` and `Dsu<_, FlatStore>` are
//! observationally identical.
//!
//! Both layouts draw ids from the same seeded permutation, so for any seed
//! and single-threaded operation sequence every return value, the set
//! count, and the final partition must agree *exactly* — packing is a
//! layout optimization, never a semantic one. These tests run under both
//! the default per-access orderings and `--features strict-sc` (CI runs
//! both), which is what justifies the relaxed orderings empirically on top
//! of the argument in `src/store.rs`.
//!
//! The multi-threaded stress tests exercise the relaxed link / compaction
//! CAS paths specifically: concurrent unites force link CASes to race with
//! splitting CASes on the same words, and the confluence of set union lets
//! us check the final partition against a sequential oracle no matter how
//! the interleaving went.

use concurrent_dsu::{
    Dsu, DsuStore, FindPolicy, FlatStore, GrowableDsu, PackedSegmentedStore, PackedStore,
    SegmentedStore, TwoTrySplit,
};
use proptest::prelude::*;
use sequential_dsu::{NaiveDsu, Partition};

#[derive(Debug, Clone, Copy)]
enum Op {
    Unite(usize, usize),
    SameSet(usize, usize),
    UniteEarly(usize, usize),
    SameSetEarly(usize, usize),
}

fn ops_strategy(n: usize, max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0..n, 0..n, 0..4usize).prop_map(|(x, y, k)| match k {
            0 => Op::Unite(x, y),
            1 => Op::SameSet(x, y),
            2 => Op::UniteEarly(x, y),
            _ => Op::SameSetEarly(x, y),
        }),
        1..max_len,
    )
}

fn apply<F: FindPolicy, S: DsuStore>(dsu: &Dsu<F, S>, op: Op) -> bool {
    match op {
        Op::Unite(x, y) => dsu.unite(x, y),
        Op::SameSet(x, y) => dsu.same_set(x, y),
        Op::UniteEarly(x, y) => dsu.unite_early(x, y),
        Op::SameSetEarly(x, y) => dsu.same_set_early(x, y),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The packed and flat layouts agree with each other and with the
    /// sequential oracle on every observable of every operation.
    #[test]
    fn packed_and_flat_agree(ops in ops_strategy(24, 120), seed in any::<u64>()) {
        let n = 24;
        let packed: Dsu<TwoTrySplit, PackedStore> = Dsu::with_seed(n, seed);
        let flat: Dsu<TwoTrySplit, FlatStore> = Dsu::with_seed(n, seed);
        let mut oracle = NaiveDsu::new(n);
        for &op in &ops {
            let (p, f) = (apply(&packed, op), apply(&flat, op));
            prop_assert_eq!(p, f, "{:?} diverged between layouts", op);
            let expected = match op {
                Op::Unite(x, y) | Op::UniteEarly(x, y) => oracle.unite(x, y),
                Op::SameSet(x, y) | Op::SameSetEarly(x, y) => oracle.same_set(x, y),
            };
            prop_assert_eq!(p, expected, "{:?} diverged from the oracle", op);
        }
        prop_assert_eq!(packed.set_count(), oracle.set_count());
        prop_assert_eq!(flat.set_count(), oracle.set_count());
        prop_assert_eq!(
            Partition::from_labels(&packed.labels_snapshot()),
            Partition::from_labels(&flat.labels_snapshot())
        );
        // Identical ids imply identical linking decisions, hence identical
        // union forests, not just identical partitions.
        prop_assert_eq!(packed.union_forest_snapshot(), flat.union_forest_snapshot());
    }

    /// Both growable layouts match the oracle (ids differ between layouts —
    /// packed truncates the hash — so forests may differ, but partitions
    /// and every return value must not).
    #[test]
    fn growable_layouts_agree(ops in ops_strategy(16, 100), seed in any::<u64>()) {
        let n = 16;
        let packed: GrowableDsu<TwoTrySplit, PackedSegmentedStore> = GrowableDsu::with_seed(seed);
        let flat: GrowableDsu<TwoTrySplit, SegmentedStore> = GrowableDsu::with_seed(seed);
        let mut oracle = NaiveDsu::new(n);
        for _ in 0..n {
            packed.make_set();
            flat.make_set();
        }
        for &op in &ops {
            let (expected, x, y) = match op {
                Op::Unite(x, y) | Op::UniteEarly(x, y) => (oracle.unite(x, y), x, y),
                Op::SameSet(x, y) | Op::SameSetEarly(x, y) => (oracle.same_set(x, y), x, y),
            };
            let (p, f) = match op {
                Op::Unite(..) => (packed.unite(x, y), flat.unite(x, y)),
                Op::UniteEarly(..) => (packed.unite_early(x, y), flat.unite_early(x, y)),
                Op::SameSet(..) => (packed.same_set(x, y), flat.same_set(x, y)),
                Op::SameSetEarly(..) => (packed.same_set_early(x, y), flat.same_set_early(x, y)),
            };
            prop_assert_eq!(p, expected, "packed growable diverged on {:?}", op);
            prop_assert_eq!(f, expected, "flat growable diverged on {:?}", op);
        }
        prop_assert_eq!(packed.set_count(), oracle.set_count());
        prop_assert_eq!(flat.set_count(), oracle.set_count());
    }
}

/// Concurrent stress on the packed store's relaxed link/compaction CASes:
/// the final partition must equal the connected components of the unite
/// pairs (set union is confluent), and ids must still strictly increase
/// along every parent path (Lemma 3.1).
#[test]
fn packed_concurrent_stress_matches_components() {
    let n = 1 << 12;
    let threads = 8;
    let pairs: Vec<(usize, usize)> =
        (0..2 * n).map(|i| ((i * 2654435761) % n, (i * 40503 + 7) % n)).collect();
    let packed: Dsu<TwoTrySplit, PackedStore> = Dsu::with_seed(n, 99);
    let flat: Dsu<TwoTrySplit, FlatStore> = Dsu::with_seed(n, 99);
    for dsu_run in 0..2 {
        std::thread::scope(|s| {
            for t in 0..threads {
                let packed = &packed;
                let flat = &flat;
                let pairs = &pairs;
                s.spawn(move || {
                    for (i, &(x, y)) in pairs.iter().enumerate() {
                        if i % threads != t {
                            continue;
                        }
                        // Mix queries in so compaction CASes race links.
                        if dsu_run == 0 {
                            packed.unite(x, y);
                            packed.same_set(y, x);
                        } else {
                            flat.unite(x, y);
                            flat.same_set(y, x);
                        }
                    }
                });
            }
        });
    }
    let mut oracle = NaiveDsu::new(n);
    for &(x, y) in &pairs {
        oracle.unite(x, y);
    }
    assert_eq!(Partition::from_labels(&packed.labels_snapshot()), oracle.partition());
    assert_eq!(Partition::from_labels(&flat.labels_snapshot()), oracle.partition());
    assert_eq!(packed.set_count(), oracle.set_count());
    assert_eq!(flat.set_count(), oracle.set_count());
    // Lemma 3.1 on the packed words: every non-root's id is below its
    // parent's id, whatever interleaving the relaxed CASes went through.
    let parents = packed.parents_snapshot();
    for (x, &p) in parents.iter().enumerate() {
        if p != x {
            assert!(packed.id_of(x) < packed.id_of(p));
        }
    }
}

/// Concurrent growth + churn on the packed segmented store.
#[test]
fn packed_growable_concurrent_stress() {
    let dsu: GrowableDsu<TwoTrySplit, PackedSegmentedStore> = GrowableDsu::new();
    let threads = 8;
    let per_thread = 1500;
    std::thread::scope(|s| {
        for t in 0..threads {
            let dsu = &dsu;
            s.spawn(move || {
                let mut mine = Vec::new();
                for i in 0..per_thread {
                    let e = dsu.make_set();
                    mine.push(e);
                    if mine.len() >= 2 {
                        let a = mine[(i * 31 + t) % mine.len()];
                        let b = mine[(i * 17 + 1) % mine.len()];
                        dsu.unite(a, b);
                        dsu.same_set(b, a);
                    }
                }
            });
        }
    });
    assert_eq!(dsu.len(), threads * per_thread);
    // Labels must form a consistent partition.
    let labels = dsu.labels_snapshot();
    let _ = Partition::from_labels(&labels);
    // Every successful link reduced the set count by exactly one.
    assert!(dsu.set_count() >= 1 && dsu.set_count() <= dsu.len());
}

//! Layout cross-checks: `Dsu<_, PackedStore>`, `Dsu<_, FlatStore>`, and
//! `Dsu<_, ShardedStore>` are observationally identical.
//!
//! All three layouts draw ids from the same seeded permutation, so for any
//! seed and single-threaded operation sequence every return value, the set
//! count, and the final partition must agree *exactly* — packing and
//! sharding are layout optimizations, never semantic ones. These tests run
//! under both the default per-access orderings and `--features strict-sc`
//! (CI's matrix runs every layout under both), which is what justifies the
//! relaxed orderings empirically on top of the argument in
//! `src/store/mod.rs`.
//!
//! The multi-threaded stress tests exercise the relaxed link / compaction
//! CAS paths specifically: concurrent unites force link CASes to race with
//! splitting CASes on the same words, and the confluence of set union lets
//! us check the final partition against a sequential oracle no matter how
//! the interleaving went.

use concurrent_dsu::{
    Dsu, DsuStore, FindPolicy, FlatStore, GrowableDsu, PackedSegmentedStore, PackedStore,
    SegmentedStore, ShardSpec, ShardedSegmentedStore, ShardedStore, TestWatchdog, TwoTrySplit,
};
use proptest::prelude::*;
use sequential_dsu::{NaiveDsu, Partition};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Clone, Copy)]
enum Op {
    Unite(usize, usize),
    SameSet(usize, usize),
    UniteEarly(usize, usize),
    SameSetEarly(usize, usize),
}

fn ops_strategy(n: usize, max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0..n, 0..n, 0..4usize).prop_map(|(x, y, k)| match k {
            0 => Op::Unite(x, y),
            1 => Op::SameSet(x, y),
            2 => Op::UniteEarly(x, y),
            _ => Op::SameSetEarly(x, y),
        }),
        1..max_len,
    )
}

fn apply<F: FindPolicy, S: DsuStore>(dsu: &Dsu<F, S>, op: Op) -> bool {
    match op {
        Op::Unite(x, y) => dsu.unite(x, y),
        Op::SameSet(x, y) => dsu.same_set(x, y),
        Op::UniteEarly(x, y) => dsu.unite_early(x, y),
        Op::SameSetEarly(x, y) => dsu.same_set_early(x, y),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The packed, flat, and sharded layouts agree with each other and
    /// with the sequential oracle on every observable of every operation —
    /// find roots, same-set verdicts, unite verdicts, set counts,
    /// partitions, and union forests.
    #[test]
    fn all_layouts_agree(ops in ops_strategy(24, 120), seed in any::<u64>()) {
        let n = 24;
        let packed: Dsu<TwoTrySplit, PackedStore> = Dsu::with_seed(n, seed);
        let flat: Dsu<TwoTrySplit, FlatStore> = Dsu::with_seed(n, seed);
        // A shard count that actually splits 24 elements (auto() would
        // too, but pin it so every machine runs the same shape).
        let sharded: Dsu<TwoTrySplit, ShardedStore> =
            Dsu::from_store(ShardedStore::with_spec(n, seed, ShardSpec::with_shards(4)));
        let mut oracle = NaiveDsu::new(n);
        for &op in &ops {
            let (p, f, s) = (apply(&packed, op), apply(&flat, op), apply(&sharded, op));
            prop_assert_eq!(p, f, "{:?} diverged between packed and flat", op);
            prop_assert_eq!(p, s, "{:?} diverged between packed and sharded", op);
            let expected = match op {
                Op::Unite(x, y) | Op::UniteEarly(x, y) => oracle.unite(x, y),
                Op::SameSet(x, y) | Op::SameSetEarly(x, y) => oracle.same_set(x, y),
            };
            prop_assert_eq!(p, expected, "{:?} diverged from the oracle", op);
        }
        prop_assert_eq!(packed.set_count(), oracle.set_count());
        prop_assert_eq!(flat.set_count(), oracle.set_count());
        prop_assert_eq!(sharded.set_count(), oracle.set_count());
        // Same find roots for every element at quiescence.
        for x in 0..n {
            prop_assert_eq!(packed.find(x), flat.find(x));
            prop_assert_eq!(packed.find(x), sharded.find(x));
        }
        let canonical = Partition::from_labels(&packed.labels_snapshot());
        prop_assert_eq!(&canonical, &Partition::from_labels(&flat.labels_snapshot()));
        prop_assert_eq!(&canonical, &Partition::from_labels(&sharded.labels_snapshot()));
        // Identical ids imply identical linking decisions, hence identical
        // union forests, not just identical partitions.
        prop_assert_eq!(packed.union_forest_snapshot(), flat.union_forest_snapshot());
        prop_assert_eq!(packed.union_forest_snapshot(), sharded.union_forest_snapshot());
    }

    /// All three growable layouts match the oracle. The two packed
    /// growable layouts share the id hash, so their forests match exactly;
    /// the flat one computes full-width ids (packed truncates to 32 bits),
    /// so only observables are compared there.
    #[test]
    fn growable_layouts_agree(ops in ops_strategy(16, 100), seed in any::<u64>()) {
        let n = 16;
        let packed: GrowableDsu<TwoTrySplit, PackedSegmentedStore> = GrowableDsu::with_seed(seed);
        let flat: GrowableDsu<TwoTrySplit, SegmentedStore> = GrowableDsu::with_seed(seed);
        let sharded: GrowableDsu<TwoTrySplit, ShardedSegmentedStore> =
            GrowableDsu::from_store(ShardedSegmentedStore::with_spec(seed, ShardSpec::with_shards(4)));
        let mut oracle = NaiveDsu::new(n);
        for _ in 0..n {
            packed.make_set();
            flat.make_set();
            sharded.make_set();
        }
        for &op in &ops {
            let (expected, x, y) = match op {
                Op::Unite(x, y) | Op::UniteEarly(x, y) => (oracle.unite(x, y), x, y),
                Op::SameSet(x, y) | Op::SameSetEarly(x, y) => (oracle.same_set(x, y), x, y),
            };
            let (p, f, s) = match op {
                Op::Unite(..) => (packed.unite(x, y), flat.unite(x, y), sharded.unite(x, y)),
                Op::UniteEarly(..) =>
                    (packed.unite_early(x, y), flat.unite_early(x, y), sharded.unite_early(x, y)),
                Op::SameSet(..) =>
                    (packed.same_set(x, y), flat.same_set(x, y), sharded.same_set(x, y)),
                Op::SameSetEarly(..) => (
                    packed.same_set_early(x, y),
                    flat.same_set_early(x, y),
                    sharded.same_set_early(x, y),
                ),
            };
            prop_assert_eq!(p, expected, "packed growable diverged on {:?}", op);
            prop_assert_eq!(f, expected, "flat growable diverged on {:?}", op);
            prop_assert_eq!(s, expected, "sharded growable diverged on {:?}", op);
        }
        prop_assert_eq!(packed.set_count(), oracle.set_count());
        prop_assert_eq!(flat.set_count(), oracle.set_count());
        prop_assert_eq!(sharded.set_count(), oracle.set_count());
        // packed-seg and sharded-seg hash ids identically, so they agree
        // on find roots too, not just verdicts.
        for x in 0..n {
            prop_assert_eq!(packed.find(x), sharded.find(x));
        }
    }
}

/// A one-shard `ShardedStore` must be bit-identical to `PackedStore`
/// through a whole `Dsu` operation sequence: identical parent words after
/// every operation, not merely the same answers. (The unit test in
/// `store/sharded.rs` checks raw CAS histories; this covers the real
/// link/compaction traffic.)
#[test]
fn one_shard_dsu_is_bit_identical_to_packed() {
    let n = 200;
    let seed = 0x51AB;
    let packed: Dsu<TwoTrySplit, PackedStore> = Dsu::with_seed(n, seed);
    let sharded: Dsu<TwoTrySplit, ShardedStore> =
        Dsu::from_store(ShardedStore::with_spec(n, seed, ShardSpec::with_shards(1)));
    let edges: Vec<(usize, usize)> =
        (0..3 * n).map(|i| ((i * 7919) % n, (i * 263 + 5) % n)).collect();
    // The id halves are fixed at construction; check them once.
    for u in 0..n {
        assert_eq!(packed.id_of(u), sharded.id_of(u), "id half of word {u}");
    }
    for (i, &(x, y)) in edges.iter().enumerate() {
        match i % 3 {
            0 => assert_eq!(packed.unite(x, y), sharded.unite(x, y)),
            1 => assert_eq!(packed.same_set(x, y), sharded.same_set(x, y)),
            _ => assert_eq!(packed.unite_early(x, y), sharded.unite_early(x, y)),
        }
        // The parent halves must match after *every* operation — same
        // links and same compaction CASes, not just the same answers.
        assert_eq!(packed.parents_snapshot(), sharded.parents_snapshot(), "after op {i}");
    }
    assert_eq!(packed.union_forest_snapshot(), sharded.union_forest_snapshot());
}

/// Concurrent stress on the relaxed link/compaction CASes of all three
/// layouts: the final partition must equal the connected components of the
/// unite pairs (set union is confluent), and ids must still strictly
/// increase along every parent path (Lemma 3.1).
#[test]
fn concurrent_stress_matches_components_all_layouts() {
    let n = 1 << 12;
    let threads = 8;
    // A progress bug (livelocked retry loop, lost wakeup) should hang for
    // seconds and dump progress, not eat the CI job's whole time limit.
    let progress = Arc::new(AtomicUsize::new(0));
    let _wd = TestWatchdog::arm_with(
        "concurrent_stress_matches_components_all_layouts",
        Duration::from_secs(120),
        {
            let progress = Arc::clone(&progress);
            move || format!("ops completed before hang: {}", progress.load(Ordering::Relaxed))
        },
    );
    let pairs: Vec<(usize, usize)> =
        (0..2 * n).map(|i| ((i * 2654435761) % n, (i * 40503 + 7) % n)).collect();
    // RandomLink pinned: the Lemma 3.1 id asserts at the bottom are about
    // *random ids*, which the `default-link-index` CI cell would otherwise
    // retarget.
    use concurrent_dsu::RandomLink;
    let packed: Dsu<TwoTrySplit, PackedStore, RandomLink> = Dsu::with_seed(n, 99);
    let flat: Dsu<TwoTrySplit, FlatStore, RandomLink> = Dsu::with_seed(n, 99);
    let sharded: Dsu<TwoTrySplit, ShardedStore, RandomLink> =
        Dsu::from_store(ShardedStore::with_spec(n, 99, ShardSpec::with_shards(8)));
    for dsu_run in 0..3 {
        std::thread::scope(|s| {
            for t in 0..threads {
                let packed = &packed;
                let flat = &flat;
                let sharded = &sharded;
                let pairs = &pairs;
                let progress = &progress;
                s.spawn(move || {
                    for (i, &(x, y)) in pairs.iter().enumerate() {
                        if i % threads != t {
                            continue;
                        }
                        progress.fetch_add(1, Ordering::Relaxed);
                        // Mix queries in so compaction CASes race links.
                        match dsu_run {
                            0 => {
                                packed.unite(x, y);
                                packed.same_set(y, x);
                            }
                            1 => {
                                flat.unite(x, y);
                                flat.same_set(y, x);
                            }
                            _ => {
                                sharded.unite(x, y);
                                sharded.same_set(y, x);
                            }
                        }
                    }
                });
            }
        });
    }
    let mut oracle = NaiveDsu::new(n);
    for &(x, y) in &pairs {
        oracle.unite(x, y);
    }
    assert_eq!(Partition::from_labels(&packed.labels_snapshot()), oracle.partition());
    assert_eq!(Partition::from_labels(&flat.labels_snapshot()), oracle.partition());
    assert_eq!(Partition::from_labels(&sharded.labels_snapshot()), oracle.partition());
    assert_eq!(packed.set_count(), oracle.set_count());
    assert_eq!(flat.set_count(), oracle.set_count());
    assert_eq!(sharded.set_count(), oracle.set_count());
    // Lemma 3.1 on the packed words of both packed layouts: every
    // non-root's id is below its parent's id, whatever interleaving the
    // relaxed CASes went through.
    fn ids_increase<S: DsuStore>(dsu: &Dsu<TwoTrySplit, S, concurrent_dsu::RandomLink>) {
        for (x, &p) in dsu.parents_snapshot().iter().enumerate() {
            if p != x {
                assert!(dsu.id_of(x) < dsu.id_of(p));
            }
        }
    }
    ids_increase(&packed);
    ids_increase(&sharded);
}

/// Concurrent growth + churn on both packed growable layouts.
#[test]
fn packed_growable_concurrent_stress() {
    let _wd = TestWatchdog::arm("packed_growable_concurrent_stress", Duration::from_secs(120));
    let dsu: GrowableDsu<TwoTrySplit, PackedSegmentedStore> = GrowableDsu::new();
    let sharded: GrowableDsu<TwoTrySplit, ShardedSegmentedStore> =
        GrowableDsu::from_store(ShardedSegmentedStore::with_spec(
            GrowableDsu::<TwoTrySplit, ShardedSegmentedStore>::DEFAULT_SEED,
            ShardSpec::with_shards(4),
        ));
    let threads = 8;
    let per_thread = 1500;
    fn churn<S: concurrent_dsu::GrowableStore>(
        dsu: &GrowableDsu<TwoTrySplit, S>,
        threads: usize,
        per_thread: usize,
    ) {
        std::thread::scope(|s| {
            for t in 0..threads {
                s.spawn(move || {
                    let mut mine = Vec::new();
                    for i in 0..per_thread {
                        let e = dsu.make_set();
                        mine.push(e);
                        if mine.len() >= 2 {
                            let a = mine[(i * 31 + t) % mine.len()];
                            let b = mine[(i * 17 + 1) % mine.len()];
                            dsu.unite(a, b);
                            dsu.same_set(b, a);
                        }
                    }
                });
            }
        });
    }
    churn(&dsu, threads, per_thread);
    churn(&sharded, threads, per_thread);
    for (name, len, labels) in [
        ("packed-seg", dsu.len(), dsu.labels_snapshot()),
        ("sharded-seg", sharded.len(), sharded.labels_snapshot()),
    ] {
        assert_eq!(len, threads * per_thread, "{name}");
        // Labels must form a consistent partition.
        let _ = Partition::from_labels(&labels);
    }
    assert!(dsu.set_count() >= 1 && dsu.set_count() <= dsu.len());
    assert!(sharded.set_count() >= 1 && sharded.set_count() <= sharded.len());
}

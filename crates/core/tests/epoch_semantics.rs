//! Epoch-layer semantics: [`VersionedDsu`]'s snapshot / rollback /
//! time-travel / speculative-batch surface must agree with a *versioned
//! sequential oracle* — a naive label array plus an explicit clone stack,
//! the structure a textbook would write if snapshots were allowed to cost
//! O(n). The whole point of the epoch layer is to be observationally
//! identical to that oracle while paying O(segments) per snapshot.
//!
//! Four cells:
//! * a proptest over full version-DAG scripts (unite / make_set /
//!   snapshot / rollback / drop / time-travel / speculative batch),
//! * bit-identical rollback at the raw-word level (stronger than
//!   partition equality: the restored forest is the *same bytes*),
//! * a watchdogged threaded stress driving concurrent phases between
//!   quiescent snapshot/rollback points,
//! * a chaos cell where every store access runs under `FaultyStore`
//!   injection and rollback must still be exact.
//!
//! CI's `epochs` matrix cell additionally runs the whole core suite over
//! this layer with `DSU_EPOCH_EVERY=1` (snapshot before every batch), in
//! both the default and `strict-sc` orderings.

use std::num::NonZeroUsize;
use std::time::Duration;

use concurrent_dsu::epoch::EpochFork;
use concurrent_dsu::{
    BatchOutcome, Epoch, EpochStore, FaultPlan, FaultyStore, GrowableDsu, GrowableStore,
    RetryBudget, TestWatchdog, TwoTrySplit, VersionedDsu,
};
use proptest::prelude::*;
use proptest::prop_oneof;

type VDsu = VersionedDsu<TwoTrySplit, EpochStore, concurrent_dsu::DefaultLink>;
type ChaosDsu = VersionedDsu<TwoTrySplit, FaultyStore<EpochStore>, concurrent_dsu::DefaultLink>;

/// The versioned sequential oracle: live labels plus a stack of
/// `(epoch, labels)` clones. O(n) per snapshot where the real structure
/// pays O(segments) — which is exactly why the real structure exists.
#[derive(Default)]
struct VersionedOracle {
    labels: Vec<usize>,
    snaps: Vec<(Epoch, Vec<usize>)>,
}

impl VersionedOracle {
    fn make_set(&mut self) -> usize {
        let e = self.labels.len();
        self.labels.push(e);
        e
    }

    fn unite(&mut self, x: usize, y: usize) -> bool {
        let (from, to) = (self.labels[x], self.labels[y]);
        if from == to {
            return false;
        }
        for l in self.labels.iter_mut() {
            if *l == from {
                *l = to;
            }
        }
        true
    }

    fn same_set(&self, x: usize, y: usize) -> bool {
        self.labels[x] == self.labels[y]
    }

    fn set_count(&self) -> usize {
        let mut roots: Vec<usize> = self.labels.clone();
        roots.sort_unstable();
        roots.dedup();
        roots.len()
    }

    fn snapshot(&mut self, at: Epoch) {
        self.snaps.push((at, self.labels.clone()));
    }

    fn rollback(&mut self, at: Epoch) {
        let idx = self.snaps.iter().position(|(e, _)| *e == at).unwrap();
        self.snaps.truncate(idx + 1);
        self.labels = self.snaps[idx].1.clone();
    }

    fn drop_snapshot(&mut self, at: Epoch) {
        self.snaps.retain(|(e, _)| *e != at);
    }

    fn same_set_at(&self, at: Epoch, x: usize, y: usize) -> bool {
        let (_, labels) = self.snaps.iter().find(|(e, _)| *e == at).unwrap();
        labels[x] == labels[y]
    }

    fn len_at(&self, at: Epoch) -> usize {
        self.snaps.iter().find(|(e, _)| *e == at).unwrap().1.len()
    }
}

/// One script step; indices are reduced modulo the live length at
/// execution time so shrinking stays meaningful.
#[derive(Debug, Clone, Copy)]
enum Step {
    MakeSet,
    Unite(usize, usize),
    SameSet(usize, usize),
    Snapshot,
    /// Roll back to the `i`-th retained snapshot (mod the stack height).
    Rollback(usize),
    Drop(usize),
    QueryAt(usize, usize, usize),
    /// Speculative batch of pseudo-random edges; `commit` picks the
    /// validator's verdict up front.
    TryBatch {
        seed: u64,
        commit: bool,
    },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        2 => Just(Step::MakeSet),
        6 => (0usize..64, 0usize..64).prop_map(|(x, y)| Step::Unite(x, y)),
        4 => (0usize..64, 0usize..64).prop_map(|(x, y)| Step::SameSet(x, y)),
        2 => Just(Step::Snapshot),
        2 => (0usize..8).prop_map(Step::Rollback),
        1 => (0usize..8).prop_map(Step::Drop),
        3 => (0usize..8, 0usize..64, 0usize..64).prop_map(|(s, x, y)| Step::QueryAt(s, x, y)),
        2 => (any::<u64>(), any::<bool>()).prop_map(|(seed, commit)| Step::TryBatch { seed, commit }),
    ]
}

fn batch_edges(seed: u64, n: usize) -> Vec<(usize, usize)> {
    (0..8)
        .map(|i| {
            let r = concurrent_dsu::order::splitmix64(seed.wrapping_add(i));
            ((r as usize) % n, ((r >> 32) as usize) % n)
        })
        .collect()
}

fn run_script<S: EpochFork>(
    dsu: &mut VersionedDsu<TwoTrySplit, S, concurrent_dsu::DefaultLink>,
    oracle: &mut VersionedOracle,
    script: &[Step],
) {
    for &step in script {
        let n = oracle.labels.len();
        match step {
            Step::MakeSet => {
                assert_eq!(dsu.make_set(), oracle.make_set());
            }
            Step::Unite(x, y) if n > 0 => {
                let (x, y) = (x % n, y % n);
                assert_eq!(dsu.unite(x, y), oracle.unite(x, y), "unite({x},{y})");
            }
            Step::SameSet(x, y) if n > 0 => {
                let (x, y) = (x % n, y % n);
                assert_eq!(dsu.same_set(x, y), oracle.same_set(x, y), "same_set({x},{y})");
            }
            Step::Snapshot => {
                let at = dsu.snapshot();
                oracle.snapshot(at);
            }
            Step::Rollback(i) => {
                let snaps = dsu.snapshots();
                if !snaps.is_empty() {
                    let at = snaps[i % snaps.len()];
                    dsu.rollback(at);
                    oracle.rollback(at);
                    assert_eq!(dsu.len(), oracle.labels.len(), "rollback len");
                }
            }
            Step::Drop(i) => {
                let snaps = dsu.snapshots();
                if !snaps.is_empty() {
                    let at = snaps[i % snaps.len()];
                    dsu.drop_snapshot(at);
                    oracle.drop_snapshot(at);
                }
            }
            Step::QueryAt(s, x, y) => {
                let snaps = dsu.snapshots();
                if !snaps.is_empty() {
                    let at = snaps[s % snaps.len()];
                    let m = oracle.len_at(at);
                    assert_eq!(dsu.len_at(at), m);
                    if m > 0 {
                        let (x, y) = (x % m, y % m);
                        assert_eq!(
                            dsu.same_set_at(at, x, y),
                            oracle.same_set_at(at, x, y),
                            "same_set_at({:?},{x},{y})",
                            at
                        );
                    }
                }
            }
            Step::TryBatch { seed, commit } if n > 0 => {
                let edges = batch_edges(seed, n);
                let outcome = dsu.try_unite_batch(&edges, |_, _| commit);
                if commit {
                    assert!(outcome.is_committed());
                    for &(x, y) in &edges {
                        oracle.unite(x, y);
                    }
                } else {
                    assert_eq!(outcome, BatchOutcome::RolledBack);
                    // Oracle state is untouched: the whole batch unwound.
                }
            }
            _ => {}
        }
        assert_eq!(dsu.set_count(), oracle.set_count());
        assert_eq!(dsu.snapshots().len(), oracle.snaps.len(), "snapshot stacks diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full version-DAG scripts agree with the clone-stack oracle, step by
    /// step: every unite/query verdict, every time-travel answer, every
    /// post-rollback partition, and the snapshot stacks themselves.
    #[test]
    fn versioned_scripts_match_clone_stack_oracle(
        script in prop::collection::vec(step_strategy(), 1..120),
        seed in any::<u64>(),
        initial in 0usize..24,
    ) {
        let mut dsu = VDsu::with_seed(seed);
        let mut oracle = VersionedOracle::default();
        for _ in 0..initial {
            dsu.make_set();
            oracle.make_set();
        }
        run_script(&mut dsu, &mut oracle, &script);
    }

    /// Rollback is bit-identical, not merely partition-equal: the raw
    /// packed words (hash ids included) after rollback equal the dump
    /// taken before the snapshot, whatever happened in between.
    #[test]
    fn rollback_restores_raw_words_exactly(
        pre in prop::collection::vec((0usize..48, 0usize..48), 0..40),
        post in prop::collection::vec((0usize..48, 0usize..48), 1..60),
        grow in 0usize..80,
        seed in any::<u64>(),
    ) {
        let mut dsu = VDsu::with_seed(seed);
        for _ in 0..48 {
            dsu.make_set();
        }
        for &(x, y) in &pre {
            dsu.unite(x, y);
        }
        let words = dsu.dsu().store().raw_words(dsu.len());
        let at = dsu.snapshot();
        for &(x, y) in &post {
            dsu.unite(x, y);
        }
        for _ in 0..grow {
            dsu.make_set();
        }
        dsu.dsu().flatten();
        dsu.rollback(at);
        prop_assert_eq!(dsu.len(), 48);
        prop_assert_eq!(dsu.dsu().store().raw_words(48), words);
    }

    /// The chaos cell: every store access through `FaultyStore` injection
    /// (spurious CAS failures + delayed loads), and the oracle agreement
    /// plus exact rollback must hold anyway — injected faults are legal
    /// schedules, so they may change tree shapes but never semantics.
    #[test]
    fn versioned_scripts_survive_fault_injection(
        script in prop::collection::vec(step_strategy(), 1..60),
        seed in any::<u64>(),
        rate in 0.05f64..0.5,
    ) {
        let store = FaultyStore::with_plan(
            <EpochStore as GrowableStore>::with_seed(seed),
            FaultPlan::rate(seed ^ 0x9e3779b97f4a7c15, rate),
        );
        let mut dsu: ChaosDsu = VersionedDsu::from_dsu(GrowableDsu::from_store(store));
        let mut oracle = VersionedOracle::default();
        for _ in 0..16 {
            dsu.make_set();
            oracle.make_set();
        }
        run_script(&mut dsu, &mut oracle, &script);
    }
}

/// Threaded stress across quiescent points: alternating phases of
/// concurrent hammering (unites, queries, time-travel reads, growth) and
/// quiescent epoch transitions (snapshot, rollback, speculative batches).
/// Each phase's rollback must restore the exact pre-phase labels; the
/// watchdog converts any livelock into a fast panic.
#[test]
fn threaded_phases_roll_back_exactly() {
    let _wd = TestWatchdog::arm("threaded_phases_roll_back_exactly", Duration::from_secs(120));
    let threads = 4;
    let n = 512;
    let mut dsu = VDsu::with_seed(0xE16);
    for _ in 0..n {
        dsu.make_set();
    }
    for i in 0..n / 4 {
        dsu.unite(i, i + n / 2);
    }

    for phase in 0u64..4 {
        let committed_labels = dsu.labels_snapshot();
        let committed_words = dsu.dsu().store().raw_words(dsu.len());
        let snap = dsu.snapshot();

        std::thread::scope(|s| {
            for t in 0..threads {
                let dsu = &dsu;
                s.spawn(move || {
                    let mut sink = RetryBudget::new("threaded_phases", 1_000_000);
                    for i in 0..2_000u64 {
                        let r = concurrent_dsu::order::splitmix64(
                            phase ^ ((t as u64) << 32) ^ (i << 1) ^ 0xABCD,
                        );
                        let x = (r as usize) % n;
                        let y = ((r >> 24) as usize) % n;
                        match r % 8 {
                            0..=4 => {
                                dsu.dsu().unite_with(x, y, &mut sink);
                            }
                            5 => {
                                dsu.same_set(x, y);
                            }
                            6 => {
                                // Time-travel reads race the writers.
                                let _ = dsu.same_set_at(snap, x, y);
                            }
                            _ => {
                                dsu.find(x);
                            }
                        }
                    }
                });
            }
        });

        // The snapshot answered from frozen state all along…
        assert_eq!(dsu.len_at(snap), n);
        // …and rolling back erases the storm bit-identically.
        dsu.rollback(snap);
        // Words first: labels_snapshot's finds compact paths (legal
        // mutations) and would perturb the bit-identity check.
        assert_eq!(dsu.dsu().store().raw_words(dsu.len()), committed_words, "phase {phase}");
        assert_eq!(dsu.labels_snapshot(), committed_labels, "phase {phase}");
        dsu.drop_snapshot(snap);

        // Commit some real progress between phases so each phase guards a
        // different baseline.
        for i in 0..n / 8 {
            dsu.unite((i * 7 + phase as usize) % n, (i * 13 + 1) % n);
        }
    }
    assert_eq!(dsu.rollbacks(), 4);
}

/// Same shape under fault injection, with per-thread retry budgets: the
/// chaos variant of the threaded cell. Uses a smaller universe and op
/// count because injected retries multiply the work.
#[test]
fn threaded_chaos_phases_roll_back_exactly() {
    let _wd =
        TestWatchdog::arm("threaded_chaos_phases_roll_back_exactly", Duration::from_secs(120));
    let n = 256;
    let store = FaultyStore::with_plan(
        <EpochStore as GrowableStore>::with_seed(0xC4A05),
        FaultPlan::rate(0xC4A05, 0.2),
    );
    let mut dsu: ChaosDsu = VersionedDsu::from_dsu(GrowableDsu::from_store(store));
    for _ in 0..n {
        dsu.make_set();
    }
    for phase in 0u64..3 {
        let committed = dsu.dsu().store().raw_words(dsu.len());
        let snap = dsu.snapshot();
        std::thread::scope(|s| {
            for t in 0..4 {
                let dsu = &dsu;
                s.spawn(move || {
                    let mut sink = RetryBudget::new("threaded_chaos_phases", 1_000_000);
                    for i in 0..1_000u64 {
                        let r = concurrent_dsu::order::splitmix64(phase ^ ((t as u64) << 40) ^ i);
                        let x = (r as usize) % n;
                        let y = ((r >> 20) as usize) % n;
                        if r.is_multiple_of(4) {
                            dsu.same_set(x, y);
                        } else {
                            dsu.dsu().unite_with(x, y, &mut sink);
                        }
                    }
                });
            }
        });
        dsu.rollback(snap);
        assert_eq!(dsu.dsu().store().raw_words(dsu.len()), committed, "phase {phase}");
        dsu.drop_snapshot(snap);
    }
    assert!(
        dsu.dsu().store().fault_report().total() > 0,
        "the chaos cell must actually inject faults"
    );
}

/// The auto-snapshot knob end to end: with `every = 1` each ingested batch
/// is preceded by a replacing snapshot, and the retained handle rolls the
/// most recent batch (and only it) off.
#[test]
fn auto_snapshot_cadence_guards_the_last_batch() {
    let mut dsu = VDsu::with_initial(64);
    dsu.set_snapshot_every(NonZeroUsize::new(1));
    let batches: Vec<Vec<(usize, usize)>> = (0..6)
        .map(|b| (0..8).map(|i| ((b * 8 + i) % 64, (b * 8 + i + 1) % 64)).collect())
        .collect();
    for batch in &batches {
        dsu.ingest_batch(batch);
    }
    assert_eq!(dsu.snapshots_taken(), 6);
    assert_eq!(dsu.snapshots().len(), 1, "auto snapshots replace, never accumulate");
    let guard = dsu.last_auto_snapshot().unwrap();
    let last = *batches.last().unwrap().first().unwrap();
    assert!(dsu.same_set(last.0, last.1));
    dsu.rollback(guard);
    // Everything before the guarded batch survives; the guarded batch's
    // first fresh link is gone.
    assert!(dsu.same_set(0, 1));
    assert!(!dsu.same_set(47, 48), "the guarded batch must roll off");
}

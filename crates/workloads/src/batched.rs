//! Batched edge arrivals: the ingestion-shaped workload.
//!
//! Streaming-graph systems rarely see one edge at a time — edges land in
//! bursts (a log segment, a network buffer, a crawler frontier), and each
//! burst is ingested as a unit. This module generates that shape for the
//! batch-vs-per-op experiments: a sequence of fixed-size edge bursts over
//! `0..n`, with endpoints drawn uniformly or Zipf-skewed (skew concentrates
//! bursts on hub vertices, the regime where early same-set filtering and
//! dynamic chunk scheduling matter most).

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

use crate::gen::{ElementDist, PairSampler};

/// A recipe for a batched edge-arrival trace: universe size, burst count,
/// burst size, endpoint distribution, intra-burst endpoint re-hits, and
/// exact-duplicate injection. Same spec + same seed = same trace.
///
/// # Example
///
/// ```
/// use dsu_workloads::{EdgeBatchSpec, ElementDist};
///
/// let arrivals = EdgeBatchSpec::new(1000, 16, 64)
///     .element_dist(ElementDist::Zipf(1.0))
///     .repeat_within_burst(0.3)
///     .duplicate_fraction(0.2)
///     .generate(7);
/// assert_eq!(arrivals.batches.len(), 16);
/// assert_eq!(arrivals.total_edges(), 16 * 64);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct EdgeBatchSpec {
    n: usize,
    batches: usize,
    batch_size: usize,
    dist: ElementDist,
    repeat: f64,
    duplicate: f64,
}

impl EdgeBatchSpec {
    /// A spec for `batches` bursts of `batch_size` edges each over `0..n`;
    /// endpoints default to uniform with no intra-burst re-hits.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` while the spec would generate edges.
    pub fn new(n: usize, batches: usize, batch_size: usize) -> Self {
        assert!(n > 0 || batches * batch_size == 0, "cannot generate edges over an empty universe");
        EdgeBatchSpec {
            n,
            batches,
            batch_size,
            dist: ElementDist::Uniform,
            repeat: 0.0,
            duplicate: 0.0,
        }
    }

    /// Sets the endpoint distribution.
    pub fn element_dist(mut self, dist: ElementDist) -> Self {
        self.dist = dist;
        self
    }

    /// Sets the intra-burst re-hit probability: each endpoint is, with
    /// probability `p`, replaced by a uniformly chosen endpoint that
    /// already appeared *earlier in the same burst* (the first edge of a
    /// burst is always fresh). This is the temporal-locality axis the
    /// element distribution cannot express — real bursts (a crawler
    /// frontier, a log segment) revisit the entities they just touched —
    /// and it is precisely the shape the hot-root cache's intra-batch
    /// memoization targets: at `p = 0` every endpoint is an independent
    /// draw, at `p → 1` a burst hammers a handful of endpoints.
    ///
    /// `p = 0.0` (the default) leaves the generated stream byte-identical
    /// to specs predating this knob.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn repeat_within_burst(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "re-hit probability must be in [0, 1]");
        self.repeat = p;
        self
    }

    /// Sets the exact-duplicate injection probability: each edge after the
    /// first of a burst is, with probability `p`, replaced *wholesale* by
    /// a copy of a uniformly chosen earlier edge of the same burst. Where
    /// [`repeat_within_burst`](EdgeBatchSpec::repeat_within_burst) re-hits
    /// individual *endpoints* (temporal locality for the hot-root cache),
    /// this knob manufactures byte-identical *pairs* — the shape the
    /// ingestion planner's intra-batch dedup drops — so a dedup win or
    /// loss can be measured independently of Zipf skew (Zipf streams
    /// produce duplicates only as a side effect of endpoint popularity).
    ///
    /// `p = 0.0` (the default) leaves the generated stream byte-identical
    /// to specs predating this knob.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn duplicate_fraction(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "duplicate fraction must be in [0, 1]");
        self.duplicate = p;
        self
    }

    /// Universe size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of bursts.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// Edges per burst.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Materializes the arrival trace for `seed`.
    pub fn generate(&self, seed: u64) -> EdgeBatches {
        use rand::Rng;
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let sampler = PairSampler::new(self.n, self.dist);
        let mut seen: Vec<usize> = Vec::with_capacity(2 * self.batch_size);
        let mut edges_so_far: Vec<(usize, usize)> = Vec::with_capacity(self.batch_size);
        let batches = (0..self.batches)
            .map(|_| {
                seen.clear();
                edges_so_far.clear();
                (0..self.batch_size)
                    .map(|_| {
                        let (mut x, mut y) = sampler.draw(&mut rng);
                        // Intra-burst re-hits: the `repeat == 0.0` guard
                        // keeps the RNG stream (and thus every pre-knob
                        // trace) byte-identical when the knob is unset.
                        if self.repeat > 0.0 && !seen.is_empty() {
                            if rng.gen_bool(self.repeat) {
                                x = seen[rng.gen_range(0..seen.len())];
                            }
                            if rng.gen_bool(self.repeat) {
                                y = seen[rng.gen_range(0..seen.len())];
                            }
                        }
                        // Exact-duplicate injection replaces the whole
                        // edge; same `== 0.0` byte-identity guard.
                        if self.duplicate > 0.0
                            && !edges_so_far.is_empty()
                            && rng.gen_bool(self.duplicate)
                        {
                            (x, y) = edges_so_far[rng.gen_range(0..edges_so_far.len())];
                        }
                        seen.push(x);
                        seen.push(y);
                        edges_so_far.push((x, y));
                        (x, y)
                    })
                    .collect()
            })
            .collect();
        EdgeBatches { n: self.n, batches }
    }
}

/// A materialized batched edge-arrival trace: bursts of endpoint pairs
/// over the universe `0..n`, in arrival order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeBatches {
    /// Universe size; all endpoints are `< n`.
    pub n: usize,
    /// The bursts, in arrival order.
    pub batches: Vec<Vec<(usize, usize)>>,
}

impl EdgeBatches {
    /// Total number of edges across all bursts.
    pub fn total_edges(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }

    /// `true` if the trace carries no edges.
    pub fn is_empty(&self) -> bool {
        self.total_edges() == 0
    }

    /// All edges in arrival order, burst structure flattened away — the
    /// input shape of the per-op ingestion baseline.
    pub fn flatten(&self) -> Vec<(usize, usize)> {
        self.batches.iter().flatten().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_and_shape() {
        let spec = EdgeBatchSpec::new(100, 8, 32);
        let a = spec.generate(5);
        assert_eq!(a, spec.generate(5));
        assert_ne!(a, spec.generate(6));
        assert_eq!(a.batches.len(), 8);
        assert!(a.batches.iter().all(|b| b.len() == 32));
        assert_eq!(a.total_edges(), 256);
        assert_eq!(a.flatten().len(), 256);
        assert!(!a.is_empty());
    }

    #[test]
    fn endpoints_in_range_for_all_dists() {
        for dist in [ElementDist::Uniform, ElementDist::Zipf(1.2), ElementDist::Locality(8)] {
            let a = EdgeBatchSpec::new(41, 6, 50).element_dist(dist).generate(3);
            for &(x, y) in &a.flatten() {
                assert!(x < 41 && y < 41, "{dist:?} emitted ({x}, {y})");
            }
        }
    }

    #[test]
    fn zipf_bursts_are_skewed() {
        let a = EdgeBatchSpec::new(1000, 30, 1000).element_dist(ElementDist::Zipf(1.5)).generate(9);
        let edges = a.flatten();
        let hits_0 = edges.iter().filter(|&&(x, _)| x == 0).count();
        let hits_500 = edges.iter().filter(|&&(x, _)| x == 500).count();
        assert!(hits_0 > 20 * (hits_500 + 1), "0:{hits_0} vs 500:{hits_500}");
    }

    #[test]
    fn repeat_knob_rehits_within_bursts_only() {
        let spec = EdgeBatchSpec::new(100_000, 10, 200).repeat_within_burst(1.0);
        let a = spec.generate(4);
        assert_eq!(a, spec.generate(4), "deterministic under the knob");
        for burst in &a.batches {
            // With p = 1.0 every endpoint after the first edge re-hits an
            // earlier one: each burst touches exactly the two endpoints of
            // its opening edge (drawn uniformly over a huge universe, so a
            // fresh draw colliding by chance is essentially impossible).
            let mut distinct: Vec<usize> = burst.iter().flat_map(|&(x, y)| [x, y]).collect();
            distinct.sort_unstable();
            distinct.dedup();
            assert!(distinct.len() <= 2, "burst leaked fresh endpoints: {distinct:?}");
        }
        // Bursts are independent: consecutive bursts (almost surely) pick
        // different hot pairs.
        assert_ne!(a.batches[0][0], a.batches[1][0]);
    }

    #[test]
    fn zero_repeat_is_byte_identical_to_unset() {
        let base = EdgeBatchSpec::new(500, 6, 40).element_dist(ElementDist::Zipf(1.1));
        assert_eq!(base.generate(9), base.repeat_within_burst(0.0).generate(9));
    }

    #[test]
    fn duplicate_knob_injects_exact_copies_within_bursts() {
        let spec = EdgeBatchSpec::new(100_000, 8, 150).duplicate_fraction(0.5);
        let a = spec.generate(11);
        assert_eq!(a, spec.generate(11), "deterministic under the knob");
        let mut injected = 0usize;
        for burst in &a.batches {
            let mut seen_pairs: Vec<(usize, usize)> = Vec::new();
            for &e in burst {
                if seen_pairs.contains(&e) {
                    injected += 1;
                }
                seen_pairs.push(e);
            }
        }
        // p = 0.5 over 8 bursts x 149 eligible edges: duplicates abound
        // (a fresh uniform pair over 10^5 elements colliding by chance is
        // essentially impossible, so every duplicate is an injected one).
        assert!(injected > 300, "only {injected} duplicates injected");
    }

    #[test]
    fn duplicate_one_makes_each_burst_a_single_edge() {
        let a = EdgeBatchSpec::new(100_000, 5, 60).duplicate_fraction(1.0).generate(3);
        for burst in &a.batches {
            assert!(burst.iter().all(|&e| e == burst[0]), "burst leaked a fresh edge: {burst:?}");
        }
        // Bursts are independent: consecutive bursts pick different edges.
        assert_ne!(a.batches[0][0], a.batches[1][0]);
    }

    #[test]
    fn zero_duplicate_is_byte_identical_to_unset() {
        let base = EdgeBatchSpec::new(500, 6, 40)
            .element_dist(ElementDist::Zipf(1.1))
            .repeat_within_burst(0.25);
        assert_eq!(base.generate(9), base.duplicate_fraction(0.0).generate(9));
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn bad_duplicate_rejected() {
        EdgeBatchSpec::new(10, 1, 1).duplicate_fraction(-0.1);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn bad_repeat_rejected() {
        EdgeBatchSpec::new(10, 1, 1).repeat_within_burst(1.5);
    }

    #[test]
    fn flatten_preserves_arrival_order() {
        let a = EdgeBatchSpec::new(10, 3, 2).generate(1);
        let flat = a.flatten();
        assert_eq!(&flat[0..2], &a.batches[0][..]);
        assert_eq!(&flat[2..4], &a.batches[1][..]);
        assert_eq!(&flat[4..6], &a.batches[2][..]);
    }

    #[test]
    fn empty_trace() {
        let a = EdgeBatchSpec::new(0, 0, 0).generate(2);
        assert!(a.is_empty());
        let b = EdgeBatchSpec::new(5, 0, 64).generate(2);
        assert!(b.is_empty() && b.batches.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty universe")]
    fn nonempty_edges_need_elements() {
        EdgeBatchSpec::new(0, 2, 2);
    }

    #[test]
    fn accessors() {
        let spec = EdgeBatchSpec::new(8, 4, 16);
        assert_eq!(spec.n(), 8);
        assert_eq!(spec.batches(), 4);
        assert_eq!(spec.batch_size(), 16);
    }
}
